// Optical packet switching scenario: loss probability of an N x N slotted
// WDM interconnect as offered load and conversion degree vary — the workload
// the paper's introduction motivates (synchronous optical packet networks).
//
//   packet_switch --n=16 --k=16 --degrees=1,3,5 --loads=0.5,0.7,0.9
//                 --kind=circular --slots=20000 [--hotspot=1.0] [--bursty]
#include <iostream>
#include <string>

#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wdm;

  util::Cli cli("packet_switch",
                "loss vs load for a slotted WDM optical packet switch");
  cli.add_option("n", "8", "number of input/output fibers (N)");
  cli.add_option("k", "8", "wavelengths per fiber (k)");
  cli.add_option("degrees", "1,3,0",
                 "conversion degrees to sweep; 0 means full range (d = k)");
  cli.add_option("loads", "0.5,0.6,0.7,0.8,0.9,0.95",
                 "offered loads per input channel");
  cli.add_option("kind", "circular", "conversion kind: circular|noncircular");
  cli.add_option("slots", "20000", "measured slots per point");
  cli.add_option("warmup", "2000", "warm-up slots discarded");
  cli.add_option("seed", "1", "master seed");
  cli.add_option("hotspot", "0", "Zipf exponent for hotspot destinations");
  cli.add_flag("bursty", "use on-off (bursty) sources instead of Bernoulli");
  cli.add_flag("csv", "emit CSV instead of an aligned table");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<std::int32_t>(cli.get_int("n"));
  const auto k = static_cast<std::int32_t>(cli.get_int("k"));
  const bool circular = cli.get("kind") == "circular";

  util::Table table({"kind", "d", "load", "loss_prob", "wilson_low",
                     "wilson_high", "throughput", "utilization"});
  for (const auto degree : cli.get_int_list("degrees")) {
    const auto d = degree == 0 ? k : static_cast<std::int32_t>(degree);
    const auto scheme =
        circular ? core::ConversionScheme::symmetric(
                       core::ConversionKind::kCircular, k, d)
                 : core::ConversionScheme::symmetric(
                       core::ConversionKind::kNonCircular, k, d);
    for (const double load : cli.get_double_list("loads")) {
      sim::SimulationConfig cfg;
      cfg.interconnect.n_fibers = n;
      cfg.interconnect.scheme = scheme;
      cfg.traffic.load = load;
      if (cli.get_flag("bursty")) {
        cfg.traffic.arrivals = sim::ArrivalProcess::kOnOff;
      }
      if (cli.get_double("hotspot") > 0) {
        cfg.traffic.destinations = sim::DestinationPattern::kHotspot;
        cfg.traffic.hotspot_alpha = cli.get_double("hotspot");
      }
      cfg.slots = static_cast<std::uint64_t>(cli.get_int("slots"));
      cfg.warmup = static_cast<std::uint64_t>(cli.get_int("warmup"));
      cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      const auto r = sim::run_simulation(cfg);
      table.add_row({cli.get("kind"), util::cell(d), util::cell(load, 3),
                     util::cell_prob(r.loss_probability),
                     util::cell_prob(r.loss_wilson_low),
                     util::cell_prob(r.loss_wilson_high),
                     util::cell(r.throughput_per_channel, 4),
                     util::cell(r.utilization, 4)});
    }
  }
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    std::cout << "N = " << n << ", k = " << k << "\n";
    table.print(std::cout);
  }
  return 0;
}
