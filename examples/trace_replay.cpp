// Trace-driven evaluation: capture a workload once, replay it against
// several schedulers, and compare apples to apples — the methodology the
// ablation experiments use, exposed as a runnable tool.
//
//   trace_replay --n=8 --k=8 --load=0.8 --slots=2000 [--save=trace.csv]
//   trace_replay --replay=trace.csv
#include <fstream>
#include <iostream>
#include <sstream>

#include "sim/interconnect.hpp"
#include "sim/trace.hpp"
#include "sim/traffic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wdm;

  util::Cli cli("trace_replay",
                "capture a slot-request trace and replay it across schedulers");
  cli.add_option("n", "8", "fibers (capture mode)");
  cli.add_option("k", "8", "wavelengths (capture mode)");
  cli.add_option("load", "0.8", "offered load (capture mode)");
  cli.add_option("slots", "2000", "slots to capture");
  cli.add_option("seed", "7", "traffic seed");
  cli.add_option("save", "", "write the captured trace to this file");
  cli.add_option("replay", "", "replay an existing trace file instead");
  if (!cli.parse(argc, argv)) return 1;

  sim::Trace trace;
  if (!cli.get("replay").empty()) {
    std::ifstream in(cli.get("replay"));
    if (!in) {
      std::cerr << "cannot open trace: " << cli.get("replay") << "\n";
      return 1;
    }
    trace = sim::read_trace(in);
    std::cout << "Replaying " << cli.get("replay") << ": " << trace.n_fibers
              << " fibers, " << trace.k << " wavelengths, "
              << trace.slots.size() << " slots, " << trace.total_requests()
              << " requests\n\n";
  } else {
    const auto n = static_cast<std::int32_t>(cli.get_int("n"));
    const auto k = static_cast<std::int32_t>(cli.get_int("k"));
    sim::TrafficConfig tcfg;
    tcfg.load = cli.get_double("load");
    sim::TrafficGenerator gen(n, k, tcfg,
                              static_cast<std::uint64_t>(cli.get_int("seed")));
    trace = sim::capture_trace(
        gen, n, k, static_cast<std::uint64_t>(cli.get_int("slots")));
    std::cout << "Captured " << trace.total_requests() << " requests over "
              << trace.slots.size() << " slots\n\n";
    if (!cli.get("save").empty()) {
      std::ofstream out(cli.get("save"));
      sim::write_trace(out, trace);
      std::cout << "Saved to " << cli.get("save") << "\n\n";
    }
  }

  struct Variant {
    const char* label;
    core::Algorithm algorithm;
  };
  const Variant variants[] = {
      {"exact (auto)", core::Algorithm::kAuto},
      {"approx-BFA", core::Algorithm::kApproxBfa},
      {"greedy", core::Algorithm::kGreedyMaximal},
      {"hopcroft-karp", core::Algorithm::kHopcroftKarp},
  };

  util::Table table({"scheduler", "granted", "rejected", "loss_prob"});
  for (const auto& variant : variants) {
    sim::InterconnectConfig icfg;
    icfg.n_fibers = trace.n_fibers;
    icfg.scheme = core::ConversionScheme::circular(trace.k, 1, 1);
    icfg.algorithm = variant.algorithm;
    sim::Interconnect interconnect(icfg);
    std::uint64_t granted = 0, rejected = 0, arrivals = 0;
    for (const auto& stats : sim::replay_trace(trace, interconnect)) {
      granted += stats.granted;
      rejected += stats.rejected;
      arrivals += stats.arrivals;
    }
    table.add_row({variant.label, util::cell(granted), util::cell(rejected),
                   util::cell_prob(arrivals ? static_cast<double>(rejected) /
                                                  static_cast<double>(arrivals)
                                            : 0.0)});
  }
  table.print(std::cout);
  std::cout << "\nIdentical workload per row; only the scheduler differs. "
               "exact == hopcroft-karp grants, greedy trails.\n";
  return 0;
}
