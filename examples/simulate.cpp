// General-purpose simulation driver with the telemetry plane surfaced:
//
//   simulate --n=64 --k=16 --degree=5 --load=0.8 --slots=1000
//            --trace-detail=full --telemetry=trace.json --metrics=out.prom
//
// Unlike sim::run_simulation (which owns its slot loop), this example drives
// the Interconnect directly so a trace recorder can be attached and every
// pipeline stage — including metrics recording — shows up in the exported
// Chrome trace. Open the --telemetry JSON in chrome://tracing or Perfetto;
// scrape or diff the --metrics file as Prometheus text exposition.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics_server.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "sim/checkpoint.hpp"
#include "sim/checkpoint_store.hpp"
#include "sim/fleet.hpp"
#include "sim/interconnect.hpp"
#include "sim/metrics.hpp"
#include "sim/obs_export.hpp"
#include "sim/traffic.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

// Parses scripted shard-fault specs: "S@SLOT" (crash) or "S@SLOT:NS"
// (stall), comma-separated. Returns false (with a message) on bad syntax.
bool parse_shard_faults(const std::string& spec,
                        wdm::sim::ShardFaultKind kind,
                        std::vector<wdm::sim::ShardFaultEvent>& out,
                        std::string& error) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(begin, end - begin);
    begin = end + 1;
    if (item.empty()) continue;
    try {
      const std::size_t at = item.find('@');
      if (at == std::string::npos) throw std::invalid_argument("no '@'");
      wdm::sim::ShardFaultEvent event;
      event.kind = kind;
      event.shard = std::stoul(item.substr(0, at));
      std::string rest = item.substr(at + 1);
      if (kind == wdm::sim::ShardFaultKind::kStall) {
        const std::size_t colon = rest.find(':');
        if (colon == std::string::npos) throw std::invalid_argument("no ':'");
        event.stall_ns = std::stoull(rest.substr(colon + 1));
        rest.resize(colon);
      }
      event.slot = std::stoull(rest);
      out.push_back(event);
    } catch (const std::exception&) {
      error = item;
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wdm;

  util::Cli cli("simulate",
                "slotted WDM interconnect simulation with telemetry exports");
  cli.add_option("n", "8", "number of input/output fibers (N)");
  cli.add_option("k", "8", "wavelengths per fiber (k)");
  cli.add_option("degree", "0", "conversion degree d; 0 means full range");
  cli.add_option("kind", "circular", "conversion kind: circular|noncircular");
  cli.add_option("load", "0.8", "offered load per input channel");
  cli.add_option("slots", "1000", "measured slots");
  cli.add_option("warmup", "100", "warm-up slots discarded from metrics");
  cli.add_option("seed", "1", "master seed");
  cli.add_option("threads", "0", "worker threads; 0 runs serially");
  cli.add_option("shards", "0",
                 "serve this many independent fabrics as a sim::Fleet "
                 "(0 = classic single-fabric path); --threads becomes "
                 "threads per shard group, clamped to the host");
  cli.add_flag("pin-cpus",
               "pin each shard group to a contiguous CPU block "
               "(fleet mode only; decisions and digests are unchanged)");
  cli.add_flag("supervise",
               "self-healing fleet mode: quarantine + restart crashed "
               "shards from their checkpoint chains instead of aborting");
  cli.add_option("restart-budget", "3",
                 "restart attempts per shard before it fails permanently "
                 "(with --supervise)");
  cli.add_option("backoff-slots", "2",
                 "fleet slots a quarantined shard waits before its first "
                 "restart attempt; doubles per attempt (with --supervise)");
  cli.add_option("watchdog-ns", "0",
                 "quarantine a shard making no slot progress for this many "
                 "ns while the barrier waits; 0 disables (with --supervise)");
  cli.add_option("crash-shard", "",
                 "inject scripted shard crashes: comma list of S@SLOT "
                 "(e.g. 1@250,2@900); fires once each, replays are clean");
  cli.add_option("stall-shard", "",
                 "inject scripted shard stalls: comma list of S@SLOT:NS "
                 "(driver blocks NS nanoseconds before stepping SLOT)");
  cli.add_option("policy", "nodisturb", "occupied policy: nodisturb|rearrange");
  cli.add_option("op-budget", "0",
                 "per-slot op budget for degradation; 0 disables");
  cli.add_option("slot-deadline-ns", "0",
                 "wall-clock per-slot degradation deadline in ns; 0 disables "
                 "(nondeterministic: such runs cannot be checkpoint-replayed)");
  cli.add_option("recovery-slots", "8", "hysteresis recovery slots");
  cli.add_option("retries", "0", "max retries for fault-rejected requests");
  cli.add_option("tokens-per-slot", "0",
                 "admission token refill per fiber per slot; 0 disables "
                 "admission control");
  cli.add_option("bucket-depth", "4", "admission token bucket depth");
  cli.add_option("queue-capacity", "64", "admission ingress queue bound");
  cli.add_option("drop-policy", "tail", "admission drop policy: tail|priority");
  cli.add_flag("adaptive-admission",
               "derive per-fiber token rates from grant-rate feedback "
               "(requires --tokens-per-slot > 0 as the initial rate)");
  cli.add_option("min-tokens", "0.25", "adaptive rate floor (tokens/slot)");
  cli.add_option("max-tokens", "16", "adaptive rate ceiling (tokens/slot)");
  cli.add_flag("bursty", "use on-off (bursty) sources instead of Bernoulli");
  cli.add_option("trace-detail", "off",
                 "telemetry level: off|slots|fibers|full");
  cli.add_option("trace-capacity", "65536", "trace ring buffer capacity");
  cli.add_option("telemetry", "", "write a Chrome trace JSON to this path");
  cli.add_option("telemetry-max-bytes", "0",
                 "stream the Chrome trace in segments of about this many "
                 "bytes (path, path.1, ...); 0 writes one file at exit");
  cli.add_option("metrics", "", "write a Prometheus snapshot to this path");
  cli.add_flag("metrics-per-fiber",
               "emit per-output-fiber grant counters in the Prometheus "
               "snapshot (one series per fiber; off by default)");
  cli.add_option("serve-metrics", "",
                 "serve live Prometheus snapshots over HTTP on this port "
                 "(GET /metrics; 0 picks an ephemeral port, printed at "
                 "startup); snapshots refresh every --scrape-every slots");
  cli.add_option("scrape-every", "64",
                 "slots between published /metrics snapshots "
                 "(with --serve-metrics)");
  cli.add_option("blackbox-dir", "",
                 "fleet mode: write per-shard post-mortem black boxes under "
                 "DIR/blackbox/shard-<i>-slot-<s>/ on quarantine, failure, "
                 "or watchdog abandonment");
  cli.add_option("checkpoint-dir", "",
                 "write full/delta checkpoint frames into this directory");
  cli.add_option("checkpoint-every", "0",
                 "slots between checkpoint frames; 0 disables");
  cli.add_option("full-every", "8",
                 "every full-every-th checkpoint frame is a full snapshot");
  cli.add_option("keep-fulls", "2",
                 "full-frame chains retained when pruning old checkpoints");
  cli.add_flag("resume",
               "recover the newest verified checkpoint chain from "
               "--checkpoint-dir and continue the run from there");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<std::int32_t>(cli.get_int("n"));
  const auto k = static_cast<std::int32_t>(cli.get_int("k"));
  const auto degree = cli.get_int("degree") == 0
                          ? k
                          : static_cast<std::int32_t>(cli.get_int("degree"));
  const auto detail = obs::parse_trace_detail(cli.get("trace-detail"));
  if (!detail.has_value()) {
    std::cerr << "simulate: unknown --trace-detail '"
              << cli.get("trace-detail") << "' (off|slots|fibers|full)\n";
    return 1;
  }

  // Live scrape endpoint: snapshots are published between slots (double
  // buffered in the server), so a concurrent scraper never perturbs
  // decisions — digests are identical with or without it (test-pinned).
  obs::MetricsServer server;
  const bool serve_metrics = !cli.get("serve-metrics").empty();
  const auto scrape_every = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(cli.get_int("scrape-every")));
  if (serve_metrics) {
    const auto port =
        static_cast<std::uint16_t>(cli.get_int("serve-metrics"));
    if (!server.start(port)) {
      std::cerr << "simulate: --serve-metrics failed: " << server.last_error()
                << "\n";
      return 1;
    }
    std::cout << "serving /metrics on port " << server.port() << "\n";
  }

  util::Rng seeder(static_cast<std::uint64_t>(cli.get_int("seed")));
  sim::InterconnectConfig icfg;
  icfg.n_fibers = n;
  icfg.scheme = core::ConversionScheme::symmetric(
      cli.get("kind") == "circular" ? core::ConversionKind::kCircular
                                    : core::ConversionKind::kNonCircular,
      k, degree);
  icfg.policy = cli.get("policy") == "rearrange"
                    ? sim::OccupiedPolicy::kRearrange
                    : sim::OccupiedPolicy::kNoDisturb;
  icfg.seed = seeder.next();
  icfg.degrade.op_budget = static_cast<std::uint64_t>(cli.get_int("op-budget"));
  icfg.degrade.slot_deadline_ns =
      static_cast<std::uint64_t>(cli.get_int("slot-deadline-ns"));
  // Wall-clock deadlines are machine-dependent, but no longer unreplayable:
  // each overrun lands in the captured trace as a first-class event, and
  // sim::replay_from reapplies the recorded overrun schedule bit-for-bit.
  icfg.degrade.recovery_slots =
      static_cast<std::int32_t>(cli.get_int("recovery-slots"));
  icfg.retry.max_retries = static_cast<std::int32_t>(cli.get_int("retries"));
  if (cli.get_double("tokens-per-slot") > 0) {
    icfg.admission.enabled = true;
    icfg.admission.tokens_per_slot = cli.get_double("tokens-per-slot");
    icfg.admission.bucket_depth = cli.get_double("bucket-depth");
    icfg.admission.queue_capacity =
        static_cast<std::size_t>(cli.get_int("queue-capacity"));
    icfg.admission.drop_policy = cli.get("drop-policy") == "priority"
                                     ? sim::DropPolicy::kPriorityShed
                                     : sim::DropPolicy::kTailDrop;
    if (cli.get_flag("adaptive-admission")) {
      icfg.admission.adaptive.enabled = true;
      icfg.admission.adaptive.min_tokens_per_slot =
          cli.get_double("min-tokens");
      icfg.admission.adaptive.max_tokens_per_slot =
          cli.get_double("max-tokens");
    }
  } else if (cli.get_flag("adaptive-admission")) {
    std::cerr << "simulate: --adaptive-admission needs --tokens-per-slot > 0 "
                 "(the initial rate); ignoring the flag.\n";
  }

  sim::TrafficConfig tcfg;
  tcfg.load = cli.get_double("load");
  if (cli.get_flag("bursty")) tcfg.arrivals = sim::ArrivalProcess::kOnOff;

  // Fleet mode: F independent fabrics behind the slot barrier, merged
  // Prometheus export with a bounded per-shard breakdown. Tracing stays a
  // single-fabric affair (one ring per recorder); everything else — warm-up,
  // checkpoints, resume, metrics files — works the same.
  const auto shards = static_cast<std::size_t>(cli.get_int("shards"));
  if (shards > 0) {
    if (*detail != obs::TraceDetail::kOff) {
      std::cerr << "simulate: --trace-detail is single-fabric only; "
                   "ignoring it in fleet mode.\n";
    }
    sim::FleetConfig fcfg;
    fcfg.shards = shards;
    fcfg.threads_per_shard =
        static_cast<std::size_t>(cli.get_int("threads"));
    fcfg.pin_cpus = cli.get_flag("pin-cpus");
    fcfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    fcfg.interconnect = icfg;
    fcfg.traffic = tcfg;
    fcfg.supervision.enabled = cli.get_flag("supervise");
    fcfg.supervision.restart_budget =
        static_cast<std::uint32_t>(cli.get_int("restart-budget"));
    fcfg.supervision.backoff_slots =
        static_cast<std::uint64_t>(cli.get_int("backoff-slots"));
    fcfg.supervision.watchdog_ns =
        static_cast<std::uint64_t>(cli.get_int("watchdog-ns"));
    fcfg.blackbox_dir = cli.get("blackbox-dir");
    std::string bad_spec;
    if (!parse_shard_faults(cli.get("crash-shard"),
                            sim::ShardFaultKind::kCrash, fcfg.shard_faults,
                            bad_spec) ||
        !parse_shard_faults(cli.get("stall-shard"),
                            sim::ShardFaultKind::kStall, fcfg.shard_faults,
                            bad_spec)) {
      std::cerr << "simulate: bad shard-fault spec '" << bad_spec
                << "' (crash: S@SLOT, stall: S@SLOT:NS)\n";
      return 1;
    }
    for (const sim::ShardFaultEvent& event : fcfg.shard_faults) {
      if (event.shard >= shards) {
        std::cerr << "simulate: shard fault names shard " << event.shard
                  << " but the fleet has " << shards << "\n";
        return 1;
      }
    }
    sim::Fleet fleet(fcfg);
    if (fcfg.pin_cpus && !fleet.pinned()) {
      // Satellite of the supervision PR: pinning silently degrading to the
      // portable no-op fallback hid NUMA misconfiguration. One line, once.
      std::cerr << "simulate: --pin-cpus requested but CPU affinity was not "
                   "applied on every shard (unsupported platform or mask "
                   "denied); running unpinned.\n";
    }

    const auto warmup = static_cast<std::uint64_t>(cli.get_int("warmup"));
    const auto slots = static_cast<std::uint64_t>(cli.get_int("slots"));
    const auto checkpoint_every =
        static_cast<std::uint64_t>(cli.get_int("checkpoint-every"));
    const bool checkpointing =
        !cli.get("checkpoint-dir").empty() && checkpoint_every > 0;
    if (checkpointing) {
      sim::CheckpointPolicy policy;
      policy.dir = cli.get("checkpoint-dir");
      policy.full_every =
          static_cast<std::uint32_t>(cli.get_int("full-every"));
      policy.keep_fulls =
          static_cast<std::uint32_t>(cli.get_int("keep-fulls"));
      fleet.open_checkpoints(policy);
    }
    std::uint64_t start_slot = 0;
    if (cli.get_flag("resume")) {
      if (cli.get("checkpoint-dir").empty()) {
        std::cerr << "simulate: --resume needs --checkpoint-dir\n";
        return 1;
      }
      const sim::FleetRecovery recovery =
          fleet.resume_from(cli.get("checkpoint-dir"));
      for (std::size_t i = 0; i < recovery.shards.size(); ++i) {
        const sim::RecoveryReport& report = recovery.shards[i];
        for (std::size_t d = 0; d < report.discarded.size(); ++d) {
          std::cerr << "simulate: shard " << i << " discarded checkpoint "
                    << report.discarded[d] << " (" << report.reasons[d]
                    << ")\n";
        }
      }
      if (!recovery.recovered) {
        std::cerr << "simulate: no agreeing checkpoint chains for all "
                  << shards << " shards in " << cli.get("checkpoint-dir")
                  << "\n";
        return 1;
      }
      start_slot = recovery.slot;
      std::cout << "resumed " << shards << " shards at slot "
                << recovery.slot << "\n";
    }

    // The scrape endpoint reads only published snapshots, refreshed here
    // between barriers: a scrape observes the fleet at its last snapshot
    // slot, never mid-slot, and never takes the fleet lock on the hot path.
    const auto publish_snapshot = [&] {
      if (!server.running()) return;
      obs::Registry registry;
      sim::register_fleet_metrics(registry, fleet,
                                  cli.get_flag("metrics-per-fiber"));
      server.publish(registry);
    };
    publish_snapshot();

    const std::uint64_t end_slot = warmup + slots;
    if (start_slot < warmup) {
      fleet.run(warmup - start_slot);
      fleet.reset_counters();  // warm-up never pollutes the metrics
      publish_snapshot();
    }
    const util::Stopwatch clock;
    std::uint64_t done = fleet.current_slot();
    while (done < end_slot) {
      std::uint64_t chunk = end_slot - done;
      if (checkpointing) chunk = std::min(chunk, checkpoint_every);
      if (server.running()) chunk = std::min(chunk, scrape_every);
      fleet.run(chunk);
      done = fleet.current_slot();
      if (checkpointing) fleet.write_checkpoint();
      publish_snapshot();
    }
    const double wall_s = clock.elapsed_s();

    const sim::MetricsCollector merged = fleet.merged_metrics();
    std::cout << "shards=" << fleet.shards() << " threads/shard="
              << fleet.threads_per_shard() << " pinned="
              << (fleet.pinned() ? "yes" : "no") << "\n";
    if (fcfg.supervision.enabled) {
      for (std::size_t i = 0; i < fleet.shards(); ++i) {
        std::cout << "shard " << i << ": health="
                  << sim::to_string(fleet.shard_health(i))
                  << " restarts=" << fleet.shard_restarts(i) << "\n";
      }
      std::cout << "serving=" << fleet.serving_shards() << "/"
                << fleet.shards() << " restarts=" << fleet.total_restarts()
                << " recovery_discards=" << fleet.recovery_discards()
                << "\n";
    }
    std::cout << "slots=" << merged.slots() << " arrivals="
              << merged.raw_arrivals() << " granted=" << merged.granted()
              << " loss=" << merged.loss_probability()
              << " requests/s="
              << static_cast<std::uint64_t>(
                     wall_s > 0.0
                         ? static_cast<double>(merged.raw_arrivals()) / wall_s
                         : 0.0)
              << " wall_s=" << wall_s << "\n";
    std::cout << "fleet_digest=0x" << std::hex << fleet.fleet_digest()
              << std::dec << "\n";
    if (!fcfg.blackbox_dir.empty()) {
      // Drain the writer queue first so wdm_blackbox_dumps_total in the
      // exports below counts everything this run put on disk. A
      // watchdog-abandoned driver's dump lands only once its thread is
      // joined (fleet destruction below), so the count can still miss dumps
      // that are guaranteed on disk by process exit.
      fleet.flush_black_boxes();
      std::cout << "black boxes written: " << fleet.black_box_dumps()
                << " under " << fcfg.blackbox_dir << "/blackbox\n";
    }
    if (!cli.get("metrics").empty()) {
      std::ofstream os(cli.get("metrics"));
      if (!os) {
        std::cerr << "simulate: cannot open " << cli.get("metrics") << "\n";
        return 1;
      }
      obs::Registry registry;
      sim::register_fleet_metrics(registry, fleet,
                                  cli.get_flag("metrics-per-fiber"));
      obs::write_prometheus(os, registry);
      std::cout << "wrote Prometheus snapshot to " << cli.get("metrics")
                << "\n";
    }
    if (server.running()) {
      std::cout << "metrics scrapes served: " << server.scrapes() << "\n";
      server.stop();
    }
    return 0;
  }

  sim::Interconnect interconnect(icfg);
  sim::TrafficGenerator traffic(n, k, tcfg, seeder.next());
  sim::MetricsCollector metrics(n, k);

  obs::TraceRecorder recorder(
      *detail, static_cast<std::size_t>(cli.get_int("trace-capacity")));
  interconnect.set_telemetry(*detail == obs::TraceDetail::kOff ? nullptr
                                                               : &recorder);

  std::unique_ptr<util::ThreadPool> pool;
  if (cli.get_int("threads") > 0) {
    pool = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(cli.get_int("threads")));
  }

  const auto warmup = static_cast<std::uint64_t>(cli.get_int("warmup"));
  const auto slots = static_cast<std::uint64_t>(cli.get_int("slots"));

  std::unique_ptr<sim::CheckpointStore> store;
  const auto checkpoint_every =
      static_cast<std::uint64_t>(cli.get_int("checkpoint-every"));
  if (!cli.get("checkpoint-dir").empty() && checkpoint_every > 0) {
    sim::CheckpointPolicy policy;
    policy.dir = cli.get("checkpoint-dir");
    policy.full_every = static_cast<std::uint32_t>(cli.get_int("full-every"));
    policy.keep_fulls = static_cast<std::uint32_t>(cli.get_int("keep-fulls"));
    store = std::make_unique<sim::CheckpointStore>(policy);
  }
  std::uint64_t start_slot = 0;
  std::uint64_t recovery_discards = 0;
  if (cli.get_flag("resume")) {
    if (cli.get("checkpoint-dir").empty()) {
      std::cerr << "simulate: --resume needs --checkpoint-dir\n";
      return 1;
    }
    const sim::RecoveryReport report =
        sim::recover_latest(cli.get("checkpoint-dir"), interconnect, &traffic);
    for (std::size_t i = 0; i < report.discarded.size(); ++i) {
      std::cerr << "simulate: discarded checkpoint " << report.discarded[i]
                << " (" << report.reasons[i] << ")\n";
    }
    recovery_discards = report.discarded.size();
    if (!report.recovered) {
      std::cerr << "simulate: no recoverable checkpoint chain in "
                << cli.get("checkpoint-dir") << "\n";
      return 1;
    }
    start_slot = report.slot;
    std::cout << "resumed at slot " << report.slot << " from " << report.used
              << " (" << report.frames_applied << " frames applied)\n";
  }

  // Segmented streaming export: drain the recorder into rolling JSON
  // segments during the run instead of one snapshot at exit, so a long soak
  // never outgrows the ring buffer or a single file.
  std::unique_ptr<obs::ChromeTraceSegmentWriter> segments;
  const auto telemetry_max_bytes =
      static_cast<std::uint64_t>(cli.get_int("telemetry-max-bytes"));
  if (!cli.get("telemetry").empty() && telemetry_max_bytes > 0) {
    segments = std::make_unique<obs::ChromeTraceSegmentWriter>(
        cli.get("telemetry"), telemetry_max_bytes);
  }
  std::vector<obs::TraceEvent> drained;
  constexpr std::uint64_t kDrainEverySlots = 512;

  // Same double-buffered publish as fleet mode: the slot loop renders a
  // snapshot every scrape_every slots; the accept thread serves only
  // published strings.
  const auto publish_snapshot = [&] {
    if (!server.running()) return;
    obs::Registry registry;
    sim::register_metrics(registry, metrics,
                          cli.get_flag("metrics-per-fiber"));
    obs::register_recorder(registry, recorder);
    server.publish(registry);
  };
  publish_snapshot();

  const util::Stopwatch clock;
  for (std::uint64_t slot = start_slot; slot < warmup + slots; ++slot) {
    const auto arrivals = traffic.next_slot(interconnect.input_channel_busy());
    const sim::SlotStats stats = interconnect.step(arrivals, pool.get());
    if (store && interconnect.current_slot() % checkpoint_every == 0) {
      store->write(interconnect, &traffic);
    }
    if (segments && slot % kDrainEverySlots == 0) {
      recorder.drain(drained);
      segments->write(drained);
    }
    if (server.running() && slot % scrape_every == 0) publish_snapshot();
    if (slot < warmup) continue;
    const obs::StageTimer metrics_timer(
        *detail == obs::TraceDetail::kOff ? nullptr : &recorder,
        obs::Stage::kMetrics, slot);
    metrics.record_slot(stats);
    for (std::int32_t fiber = 0; fiber < n; ++fiber) {
      metrics.record_fiber_grants(
          fiber,
          interconnect.last_fiber_grants()[static_cast<std::size_t>(fiber)]);
    }
  }
  const double wall_s = clock.elapsed_s();

  std::cout << "slots=" << metrics.slots() << " arrivals="
            << metrics.raw_arrivals() << " granted=" << metrics.granted()
            << " loss=" << metrics.loss_probability()
            << " throughput=" << metrics.throughput_per_channel()
            << " utilization=" << metrics.utilization()
            << " wall_s=" << wall_s << "\n";
  std::cout << "state_digest=0x" << std::hex << sim::state_digest(interconnect)
            << std::dec << "\n";
  if (*detail != obs::TraceDetail::kOff) {
    std::cout << "trace: " << recorder.recorded() << " events recorded, "
              << recorder.dropped() << " dropped (ring capacity "
              << recorder.capacity() << ")\n";
  }

  if (segments) {
    recorder.drain(drained);
    segments->write(drained);
    segments->finish();
    std::cout << "wrote " << segments->segment_paths().size()
              << " Chrome trace segment(s) under " << cli.get("telemetry")
              << "\n";
  } else if (!cli.get("telemetry").empty()) {
    std::ofstream os(cli.get("telemetry"));
    if (!os) {
      std::cerr << "simulate: cannot open " << cli.get("telemetry") << "\n";
      return 1;
    }
    obs::write_chrome_trace(os, recorder);
    std::cout << "wrote Chrome trace to " << cli.get("telemetry") << "\n";
  }
  if (!cli.get("metrics").empty()) {
    std::ofstream os(cli.get("metrics"));
    if (!os) {
      std::cerr << "simulate: cannot open " << cli.get("metrics") << "\n";
      return 1;
    }
    obs::Registry registry;
    sim::register_metrics(registry, metrics, cli.get_flag("metrics-per-fiber"));
    registry.counter("wdm_recovery_discards_total",
                     "Checkpoint frames discarded during --resume recovery "
                     "(torn/corrupt/unchained)",
                     recovery_discards);
    obs::register_recorder(registry, recorder);
    obs::write_prometheus(os, registry);
    std::cout << "wrote Prometheus snapshot to " << cli.get("metrics") << "\n";
  }
  if (server.running()) {
    publish_snapshot();  // final state, in case a scraper polls at exit
    std::cout << "metrics scrapes served: " << server.scrapes() << "\n";
    server.stop();
  }
  return 0;
}
