// Quickstart: the paper's running example, end to end.
//
// Builds the k = 6, d = 3 interconnect of Figures 1-5, prints the conversion
// graph, schedules the request vector [2,1,0,1,1,2] with both fast
// algorithms, and finishes with a short slotted simulation of a 4 x 4
// switch. Run with no arguments.
#include <cstdio>
#include <iostream>

#include "core/break_first_available.hpp"
#include "core/first_available.hpp"
#include "core/request_graph.hpp"
#include "sim/simulation.hpp"

namespace {

void print_assignment(const char* title, const wdm::core::ChannelAssignment& a) {
  std::printf("%s: %d requests granted\n", title, a.granted);
  for (wdm::core::Channel u = 0; u < a.k(); ++u) {
    const auto w = a.source[static_cast<std::size_t>(u)];
    if (w == wdm::core::kNone) {
      std::printf("  output channel λ%d: idle\n", u);
    } else {
      std::printf("  output channel λ%d: carries a request from input λ%d\n", u,
                  w);
    }
  }
}

}  // namespace

int main() {
  using namespace wdm;

  std::printf("== Wavelength conversion (Figure 2, k = 6, d = 3) ==\n");
  const auto circular = core::ConversionScheme::circular(6, 1, 1);
  const auto non_circular = core::ConversionScheme::non_circular(6, 1, 1);
  for (core::Wavelength w = 0; w < 6; ++w) {
    std::printf("  λ%d converts to:", w);
    for (const auto out : circular.adjacency_list(w)) std::printf(" λ%d", out);
    std::printf("  (circular)  |");
    for (const auto out : non_circular.adjacency_list(w)) {
      std::printf(" λ%d", out);
    }
    std::printf("  (non-circular)\n");
  }

  std::printf("\n== One output fiber, request vector [2,1,0,1,1,2] ==\n");
  const core::RequestVector rv{2, 1, 0, 1, 1, 2};
  std::printf("%d requests compete for %d channels.\n", rv.total(), rv.k());

  // Circular conversion: Break and First Available (Table 3), O(dk).
  print_assignment("\nBreak & First Available (circular)",
                   core::break_first_available(rv, circular));

  // Non-circular conversion: First Available (Table 2), O(k).
  print_assignment("\nFirst Available (non-circular)",
                   core::first_available(rv, non_circular));

  // Occupied channels (Section V): channel λ1 mid-connection.
  std::vector<std::uint8_t> mask{1, 0, 1, 1, 1, 1};
  print_assignment("\nBFA with output channel λ1 occupied (Section V)",
                   core::break_first_available(rv, circular, mask));

  std::printf("\n== 4 x 4 interconnect, 20000 slots of Bernoulli traffic ==\n");
  sim::SimulationConfig cfg;
  cfg.interconnect.n_fibers = 4;
  cfg.interconnect.scheme = circular;
  cfg.traffic.load = 0.8;
  cfg.slots = 20000;
  cfg.warmup = 2000;
  cfg.seed = 42;
  const auto report = sim::run_simulation(cfg);
  std::printf("  offered load      : %.2f per input channel\n",
              report.offered_load);
  std::printf("  packets offered   : %llu\n",
              static_cast<unsigned long long>(report.arrivals));
  std::printf("  packet loss prob. : %.4f  [wilson95 %.4f, %.4f]\n",
              report.loss_probability, report.loss_wilson_low,
              report.loss_wilson_high);
  std::printf("  throughput/channel: %.4f\n", report.throughput_per_channel);
  std::printf("  channel utilization: %.4f\n", report.utilization);
  std::printf("  fiber fairness    : %.4f (Jain index)\n",
              report.fiber_fairness);
  std::printf("  wall time         : %.2f s\n", report.wall_seconds);
  return 0;
}
