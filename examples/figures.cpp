// Regenerates the paper's figures as Graphviz files.
//
//   figures [--outdir=.]
//
// Writes fig2a/fig2b (conversion graphs), fig3a/fig3b (request graphs for
// the request vector [2,1,0,1,1,2]), and fig4a/fig4b (the same graphs with
// the algorithms' maximum matchings drawn bold). Render with e.g.
//   dot -Tsvg fig4a.dot -o fig4a.svg
#include <fstream>
#include <iostream>

#include "core/break_first_available.hpp"
#include "core/dot.hpp"
#include "core/first_available.hpp"
#include "util/cli.hpp"

namespace {

void write_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  out << contents;
  std::cout << "wrote " << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace wdm;

  util::Cli cli("figures", "regenerate the paper's figures as Graphviz .dot");
  cli.add_option("outdir", ".", "output directory");
  if (!cli.parse(argc, argv)) return 1;
  const std::string dir = cli.get("outdir") + "/";

  const auto circular = core::ConversionScheme::circular(6, 1, 1);
  const auto non_circular = core::ConversionScheme::non_circular(6, 1, 1);
  const core::RequestVector rv{2, 1, 0, 1, 1, 2};

  // Figure 2: conversion graphs.
  write_file(dir + "fig2a.dot", core::conversion_graph_dot(circular));
  write_file(dir + "fig2b.dot", core::conversion_graph_dot(non_circular));

  // Figure 3: request graphs.
  const core::RequestGraph g_circ(circular, rv);
  const core::RequestGraph g_nonc(non_circular, rv);
  write_file(dir + "fig3a.dot", core::request_graph_dot(g_circ));
  write_file(dir + "fig3b.dot", core::request_graph_dot(g_nonc));

  // Figure 4: maximum matchings found by the paper's algorithms.
  const auto bfa = core::break_first_available(rv, circular);
  const auto bfa_matching = core::assignment_to_matching(g_circ, bfa);
  write_file(dir + "fig4a.dot", core::request_graph_dot(g_circ, &bfa_matching));

  const auto fa = core::first_available(rv, non_circular);
  const auto fa_matching = core::assignment_to_matching(g_nonc, fa);
  write_file(dir + "fig4b.dot", core::request_graph_dot(g_nonc, &fa_matching));

  std::cout << "\nBFA matched " << bfa.granted << "/7 requests (circular), "
            << "FA matched " << fa.granted << "/7 (non-circular) — both "
            << "maximum, as in Figure 4.\n";
  return 0;
}
