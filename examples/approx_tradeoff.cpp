// Section IV.C trade-off explorer: exact Break-and-First-Available vs the
// single-break approximation — matching quality and speed across conversion
// degrees.
//
//   approx_tradeoff --k=16 --degrees=3,5,7,9 --trials=2000 --load=0.5
#include <iostream>

#include "core/break_first_available.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace wdm;

  util::Cli cli("approx_tradeoff",
                "exact BFA vs single-break approximation (Section IV.C)");
  cli.add_option("k", "16", "wavelengths per fiber");
  cli.add_option("n", "8", "input fibers feeding the port");
  cli.add_option("degrees", "3,5,7,9", "conversion degrees to sweep");
  cli.add_option("load", "0.5", "per-channel request probability");
  cli.add_option("trials", "2000", "random request vectors per degree");
  cli.add_option("seed", "11", "rng seed");
  cli.add_flag("csv", "emit CSV");
  if (!cli.parse(argc, argv)) return 1;

  const auto k = static_cast<std::int32_t>(cli.get_int("k"));
  const auto n = static_cast<std::int32_t>(cli.get_int("n"));
  const auto trials = cli.get_int("trials");
  const double load = cli.get_double("load");

  util::Table table({"d", "bound", "mean_gap", "max_gap", "gap_free_frac",
                     "exact_us", "approx_us", "speedup"});
  for (const auto deg : cli.get_int_list("degrees")) {
    const auto scheme = core::ConversionScheme::symmetric(
        core::ConversionKind::kCircular, k, static_cast<std::int32_t>(deg));
    util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed")) +
                  static_cast<std::uint64_t>(deg));
    util::RunningStats gap_stats;
    std::int64_t gap_free = 0;
    std::int32_t bound = 0;
    double exact_ns = 0, approx_ns = 0;
    for (std::int64_t t = 0; t < trials; ++t) {
      core::RequestVector rv(k);
      for (core::Wavelength w = 0; w < k; ++w) {
        for (std::int32_t fib = 0; fib < n; ++fib) {
          if (rng.bernoulli(load)) rv.add(w);
        }
      }
      util::Stopwatch clock;
      const auto exact = core::break_first_available(rv, scheme);
      exact_ns += static_cast<double>(clock.elapsed_ns());
      clock.reset();
      const auto approx = core::approx_break_first_available(rv, scheme);
      approx_ns += static_cast<double>(clock.elapsed_ns());
      const auto gap = exact.granted - approx.assignment.granted;
      gap_stats.add(gap);
      gap_free += gap == 0 ? 1 : 0;
      bound = approx.gap_bound;
    }
    table.add_row(
        {util::cell(deg), util::cell(bound), util::cell(gap_stats.mean(), 4),
         util::cell(gap_stats.max(), 2),
         util::cell(static_cast<double>(gap_free) /
                        static_cast<double>(trials),
                    4),
         util::cell(exact_ns / static_cast<double>(trials) / 1e3, 4),
         util::cell(approx_ns / static_cast<double>(trials) / 1e3, 4),
         util::cell(exact_ns / approx_ns, 3)});
  }
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    std::cout << "Exact vs approximate BFA, k = " << k << ", load " << load
              << " (" << trials << " trials per degree)\n"
              << "Theorem 3: gap <= bound = (d-1)/2 always; in practice far "
                 "smaller.\n";
    table.print(std::cout);
  }
  return 0;
}
