// Fault drill: cut an output fiber mid-run, watch the interconnect degrade
// gracefully, splice it back, watch it recover.
//
// A scripted FaultConfig drives the drill so it replays bit-for-bit:
//   slot 3000 — output fiber 2 is cut (every request to it: kFaulted);
//   slot 4000 — channel (1, 5) dies and converter (3, 2) dies;
//   slot 6000 — the fiber is spliced; slot 7000 — the rest is repaired.
// Requests denied for hardware (not contention) go through the bounded
// retry queue instead of being dropped outright. The windowed table shows
// the loss probability rising only while hardware is actually down, and
// the degraded windows still scheduling maximum matchings on the surviving
// channels.
#include <iostream>

#include "sim/interconnect.hpp"
#include "sim/metrics.hpp"
#include "sim/traffic.hpp"
#include "util/table.hpp"

int main() {
  using namespace wdm;

  const std::int32_t n = 4;
  const std::int32_t k = 8;
  const std::uint64_t total_slots = 9000;
  const std::uint64_t window = 1000;

  sim::InterconnectConfig cfg;
  cfg.n_fibers = n;
  cfg.scheme = core::ConversionScheme::circular(k, 1, 1);
  cfg.seed = 42;
  cfg.faults.script = {
      {3000, sim::FaultKind::kFiber, 2, 0, false},
      {4000, sim::FaultKind::kChannel, 1, 5, false},
      {4000, sim::FaultKind::kConverter, 3, 2, false},
      {6000, sim::FaultKind::kFiber, 2, 0, true},
      {7000, sim::FaultKind::kChannel, 1, 5, true},
      {7000, sim::FaultKind::kConverter, 3, 2, true},
  };
  cfg.retry.max_retries = 4;
  cfg.retry.backoff_base = 2;
  cfg.retry.backoff_factor = 2;

  sim::Interconnect interconnect(cfg);
  sim::TrafficGenerator traffic(n, k, {.load = 0.6}, 7);

  std::cout << "Fault drill: N = " << n << ", k = " << k
            << ", load 0.6, fiber 2 cut during slots [3000, 6000)\n\n";
  util::Table table({"slots", "arrivals", "granted", "rejected", "faulted rej",
                     "deferred", "retry ok", "dropped", "down"});

  sim::SlotStats acc;
  std::uint64_t window_start = 0;
  for (std::uint64_t slot = 0; slot < total_slots; ++slot) {
    const auto arrivals = traffic.next_slot(interconnect.input_channel_busy());
    const auto stats = interconnect.step(arrivals);
    acc.arrivals += stats.arrivals;
    acc.granted += stats.granted;
    acc.rejected += stats.rejected;
    acc.rejected_faulted += stats.rejected_faulted;
    acc.deferred_faulted += stats.deferred_faulted;
    acc.retry_successes += stats.retry_successes;
    acc.dropped_faulted += stats.dropped_faulted;
    if ((slot + 1) % window == 0) {
      const auto* injector = interconnect.fault_injector();
      table.add_row({util::cell(window_start) + "-" + util::cell(slot + 1),
                     util::cell(acc.arrivals), util::cell(acc.granted),
                     util::cell(acc.rejected), util::cell(acc.rejected_faulted),
                     util::cell(acc.deferred_faulted),
                     util::cell(acc.retry_successes),
                     util::cell(acc.dropped_faulted),
                     util::cell(injector->down_components())});
      acc = sim::SlotStats{};
      window_start = slot + 1;
    }
  }
  table.print(std::cout);

  const auto* injector = interconnect.fault_injector();
  std::cout << "\nfailures injected: " << injector->failures_injected()
            << ", repairs applied: " << injector->repairs_applied()
            << ", retry queue now: " << interconnect.retry_queue_depth()
            << "\n\nReading: the faulted-rejection and deferral columns are "
               "nonzero only while fiber 2 is down; retries that outlive the "
               "cut land as grants; after slot 7000 every window matches the "
               "healthy baseline again.\n";
  return 0;
}
