// Register-level walkthrough: how one output fiber's scheduler would run in
// hardware (Section II.B representation + the paper's constant-time steps).
// Loads one slot of requests into the Nk-bit register, runs BFA, and prints
// grants, cycle counts, and the first-order gate cost of the datapath.
#include <cstdio>
#include <fstream>

#include "hw/cost_model.hpp"
#include "hw/fabric.hpp"
#include "hw/hw_scheduler.hpp"
#include "hw/vcd.hpp"

int main() {
  using namespace wdm;

  const std::int32_t n_fibers = 4;
  const auto scheme = core::ConversionScheme::circular(6, 1, 1);
  hw::HwPortScheduler port(scheme, n_fibers);

  // The paper's running contention example (Section I): two requests on λ1,
  // three on λ2, one on λ4, all destined to this output fiber.
  std::vector<core::Request> requests{
      {0, 1, 100, 1}, {2, 1, 101, 1}, {0, 2, 102, 1},
      {1, 2, 103, 1}, {3, 2, 104, 1}, {1, 4, 105, 1},
  };
  std::printf("Slot requests (input fiber, wavelength):\n");
  for (const auto& r : requests) {
    std::printf("  fiber %d, λ%d  -> register bit %d\n", r.input_fiber,
                r.wavelength, r.input_fiber * scheme.k() + r.wavelength);
  }

  port.load(requests);
  const auto grants = port.run();

  std::printf("\nGrants (%zu of %zu requests):\n", grants.size(),
              requests.size());
  for (const auto& g : grants) {
    std::printf("  fiber %d λ%d  ==> output channel λ%d%s\n", g.input_fiber,
                g.wavelength, g.channel,
                g.wavelength != g.channel ? "  (converted)" : "");
  }

  const auto& cycles = port.cycles();
  std::printf("\nCycle accounting for this slot:\n");
  std::printf("  serial total      : %llu cycles\n",
              static_cast<unsigned long long>(cycles.total));
  std::printf("  with d parallel units: %llu cycles\n",
              static_cast<unsigned long long>(cycles.critical_path));
  std::printf("  channel steps     : %llu (d * (k-1) = %d)\n",
              static_cast<unsigned long long>(cycles.channel_steps),
              scheme.degree() * (scheme.k() - 1));
  std::printf("  candidate breaks  : %llu (= d)\n",
              static_cast<unsigned long long>(cycles.candidates));

  // Route the grants through the Figure-1 crosspoint fabric: proves the
  // schedule is physically realisable and reports the hardware saved by
  // limited-range conversion.
  const hw::CrosspointFabric fabric(n_fibers, scheme);
  fabric.route(grants);
  const auto inv = fabric.inventory();
  std::printf("\nFabric (Figure 1): %llu crosspoints (full crossbar would "
              "need %llu), %llu-input combiners, %llu converters — all %zu "
              "grants routed without conflict.\n",
              static_cast<unsigned long long>(inv.crosspoints),
              static_cast<unsigned long long>(inv.full_crossbar),
              static_cast<unsigned long long>(inv.combiner_fan_in),
              static_cast<unsigned long long>(inv.converters), grants.size());

  // Waveform dump of the same slot, viewable in GTKWave.
  {
    std::ofstream wave("hw_walkthrough.vcd");
    hw::HwPortScheduler traced(scheme, n_fibers);
    hw::dump_schedule_vcd(wave, traced, requests);
    std::printf("\nWaveform of this schedule written to hw_walkthrough.vcd\n");
  }

  std::printf("\nFirst-order area model (per output fiber):\n");
  for (const bool parallel : {false, true}) {
    const auto cost = hw::estimate_cost(n_fibers, scheme.k(), scheme.degree(),
                                        /*circular=*/true, parallel);
    std::printf("  %-8s BFA: %6llu register bits, %6llu gates "
                "(%llu matching unit%s)\n",
                parallel ? "parallel" : "serial",
                static_cast<unsigned long long>(cost.register_bits),
                static_cast<unsigned long long>(cost.total_gates),
                static_cast<unsigned long long>(cost.matching_units),
                cost.matching_units > 1 ? "s" : "");
  }
  return 0;
}
