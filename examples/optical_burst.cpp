// Optical burst switching scenario (Section V): connections hold channels
// for multiple slots, and ongoing connections either cannot be disturbed
// (burst switching) or may be reassigned each slot. Sweeps mean holding time
// and compares both policies.
//
//   optical_burst --n=8 --k=8 --holdings=1,2,4,8,16 --load=0.6
#include <iostream>

#include "sim/simulation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace wdm;

  util::Cli cli("optical_burst",
                "Section V: multi-slot connections, no-disturb vs rearrange");
  cli.add_option("n", "8", "number of fibers");
  cli.add_option("k", "8", "wavelengths per fiber");
  cli.add_option("e", "1", "minus-side conversion range");
  cli.add_option("f", "1", "plus-side conversion range");
  cli.add_option("load", "0.6", "offered load per input channel");
  cli.add_option("holdings", "1,2,4,8,16", "mean burst holding times (slots)");
  cli.add_option("slots", "20000", "measured slots per point");
  cli.add_option("seed", "3", "master seed");
  cli.add_flag("csv", "emit CSV");
  if (!cli.parse(argc, argv)) return 1;

  const auto scheme = core::ConversionScheme::circular(
      static_cast<std::int32_t>(cli.get_int("k")),
      static_cast<std::int32_t>(cli.get_int("e")),
      static_cast<std::int32_t>(cli.get_int("f")));

  util::Table table({"mean_holding", "policy", "loss_prob", "utilization",
                     "throughput", "preemptions"});
  for (const auto holding : cli.get_int_list("holdings")) {
    for (const auto policy :
         {sim::OccupiedPolicy::kNoDisturb, sim::OccupiedPolicy::kRearrange}) {
      sim::SimulationConfig cfg;
      cfg.interconnect.n_fibers = static_cast<std::int32_t>(cli.get_int("n"));
      cfg.interconnect.scheme = scheme;
      cfg.interconnect.policy = policy;
      cfg.traffic.load = cli.get_double("load");
      cfg.traffic.holding = holding <= 1 ? sim::HoldingTime::kSingleSlot
                                         : sim::HoldingTime::kGeometric;
      cfg.traffic.mean_holding = static_cast<double>(std::max<std::int64_t>(1, holding));
      cfg.slots = static_cast<std::uint64_t>(cli.get_int("slots"));
      cfg.warmup = cfg.slots / 10;
      cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
      const auto r = sim::run_simulation(cfg);
      table.add_row(
          {util::cell(holding),
           policy == sim::OccupiedPolicy::kNoDisturb ? "no-disturb"
                                                     : "rearrange",
           util::cell_prob(r.loss_probability), util::cell(r.utilization, 4),
           util::cell(r.throughput_per_channel, 4),
           util::cell(r.preemptions)});
    }
  }
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    std::cout << "Burst switching under k = " << scheme.k()
              << ", d = " << scheme.degree() << ", load "
              << cli.get_double("load") << "\n";
    table.print(std::cout);
  }
  return 0;
}
