#!/usr/bin/env python3
"""Validate telemetry-plane artifacts: traces, Prometheus dumps, black boxes.

Usage:
    scripts/check_telemetry.py --trace trace.json --metrics out.prom
    scripts/check_telemetry.py --blackbox run-dir        # or one dump dir

Checks the Chrome trace_event JSON written by obs::write_chrome_trace
(structure, monotonically plausible timestamps, the stage names the slot
pipeline must emit) and the Prometheus text exposition written by
obs::write_prometheus (HELP/TYPE headers, the full SlotStats counter set,
histogram bucket monotonicity and _count/_sum consistency).

--blackbox validates per-shard post-mortem dumps written by the fleet's
flight recorder (obs::BlackBoxWriter): pass either a single
shard-<i>-slot-<s> dump directory or a root that holds them (directly or
under <root>/blackbox/). Each dump must carry a standalone-valid trace.json
containing the supervision trigger event, a metrics.prom that passes the
standard checks, and a blackbox.json manifest whose restart history is
internally consistent (restarts == successful attempts).

Exit status 0 on success, 1 on any violation (each one is printed). All
flags are optional so the script can check any artifact alone.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

# Every phase obs::write_chrome_trace can emit.
KNOWN_PHASES = {"X", "i", "M"}

# Stage spans Interconnect::step + DistributedScheduler must produce in any
# full-detail run that schedules at least one slot of traffic.
REQUIRED_SPAN_NAMES = {"slot", "partition", "fanout"}

# A black box records at kSlots detail: the slot span is guaranteed, the
# finer fan-out spans are not, and the dump must explain its own trigger.
BLACKBOX_SPAN_NAMES = {"slot"}
BLACKBOX_TRIGGERS = {"shard-quarantine", "shard-failed"}
BLACKBOX_MANIFEST_KEYS = [
    "schema", "shard", "slot", "reason", "watchdog", "health", "shard_seed",
    "attempts", "restarts", "restart_budget", "backoff_slots",
    "eligible_slot", "trace_events", "trace_dropped", "restart_history",
    "recovery_discard_reasons",
]

# The SlotStats/MetricsCollector counter set sim::register_metrics exports.
REQUIRED_METRICS = [
    "wdm_slots_total",
    "wdm_arrivals_total",
    "wdm_offered_total",
    "wdm_granted_total",
    "wdm_rejected_total",
    "wdm_rejected_malformed_total",
    "wdm_rejected_faulted_total",
    "wdm_shed_overload_total",
    "wdm_deferred_faulted_total",
    "wdm_deferred_overload_total",
    "wdm_ingress_releases_total",
    "wdm_degraded_ports_total",
    "wdm_degraded_slots_total",
    "wdm_retry_attempts_total",
    "wdm_retry_successes_total",
    "wdm_preempted_total",
    "wdm_dropped_faulted_total",
    "wdm_busy_channel_slots_total",
    "wdm_loss_probability",
    "wdm_throughput_per_channel",
    "wdm_utilization",
    "wdm_fiber_fairness",
]

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+(?P<value>\S+)$"
)


def check_trace(path: Path, errors: list[str],
                required_spans: set[str] = REQUIRED_SPAN_NAMES
                ) -> set[str] | None:
    """Validates one Chrome trace; returns every event name seen (or None
    when the file is unreadable) so callers can assert on instants too."""
    try:
        tree = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        errors.append(f"trace: cannot parse {path}: {err}")
        return None
    events = tree.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append("trace: traceEvents missing or empty")
        return None
    names = set()
    span_names = set()
    for i, ev in enumerate(events):
        where = f"trace: event {i}"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            errors.append(f"{where}: unknown ph {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            errors.append(f"{where}: missing name")
        else:
            names.add(ev["name"])
        if ph == "M":
            continue
        for field in ("ts", "pid", "tid"):
            if not isinstance(ev.get(field), (int, float)):
                errors.append(f"{where}: missing numeric {field}")
        if isinstance(ev.get("ts"), (int, float)) and ev["ts"] < 0:
            errors.append(f"{where}: negative ts {ev['ts']}")
        if ph == "X":
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                errors.append(f"{where}: complete event without valid dur")
            span_names.add(ev["name"])
    missing = required_spans - span_names
    if missing:
        errors.append(f"trace: missing stage spans: {sorted(missing)}")
    print(f"trace: {len(events)} events, span names: {sorted(span_names)}")
    return names


def parse_prometheus(text: str, errors: list[str]):
    """Return {name: [(labels, value)]}, {name: type} from an exposition."""
    samples: dict[str, list[tuple[str, float]]] = {}
    types: dict[str, str] = {}
    helped: set[str] = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            helped.add(line.split()[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) < 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped"):
                errors.append(f"metrics line {lineno}: malformed TYPE: {line}")
                continue
            types[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line.strip())
        if m is None:
            errors.append(f"metrics line {lineno}: unparseable sample: {line}")
            continue
        try:
            value = float(m.group("value"))
        except ValueError:
            errors.append(f"metrics line {lineno}: non-numeric value: {line}")
            continue
        samples.setdefault(m.group("name"), []).append(
            (m.group("labels") or "", value))
    for name in samples:
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if base not in helped and name not in helped:
            errors.append(f"metrics: {name} has no # HELP line")
    return samples, types


def le_of(labels: str) -> float | None:
    m = re.search(r'le="([^"]+)"', labels)
    if m is None:
        return None
    return float("inf") if m.group(1) == "+Inf" else float(m.group(1))


def strip_le(labels: str) -> str:
    inner = labels.strip("{}")
    kept = [p for p in inner.split(",") if p and not p.startswith("le=")]
    return ",".join(sorted(kept))


def check_histogram(name: str, samples, errors: list[str]) -> None:
    buckets = samples.get(name + "_bucket", [])
    series: dict[str, list[tuple[float, float]]] = {}
    for labels, value in buckets:
        le = le_of(labels)
        if le is None:
            errors.append(f"metrics: {name}_bucket sample without le label")
            continue
        series.setdefault(strip_le(labels), []).append((le, value))
    if not series:
        errors.append(f"metrics: histogram {name} has no _bucket samples")
        return
    counts = {strip_le(l): v for l, v in samples.get(name + "_count", [])}
    for key, pairs in series.items():
        pairs.sort()
        if pairs[-1][0] != float("inf"):
            errors.append(f"metrics: {name}{{{key}}} lacks a +Inf bucket")
            continue
        values = [v for _, v in pairs]
        if any(b < a for a, b in zip(values, values[1:])):
            errors.append(
                f"metrics: {name}{{{key}}} bucket counts not cumulative")
        if key in counts and counts[key] != pairs[-1][1]:
            errors.append(
                f"metrics: {name}{{{key}}} _count {counts[key]} != +Inf "
                f"bucket {pairs[-1][1]}")
        if not any(strip_le(l) == key for l, _ in samples.get(name + "_sum", [])):
            errors.append(f"metrics: {name}{{{key}}} lacks a _sum sample")


def check_metrics(path: Path, errors: list[str]) -> None:
    try:
        text = path.read_text()
    except OSError as err:
        errors.append(f"metrics: cannot read {path}: {err}")
        return
    samples, types = parse_prometheus(text, errors)
    for name in REQUIRED_METRICS:
        if name not in samples:
            errors.append(f"metrics: required metric missing: {name}")
    for name, kind in types.items():
        if kind == "histogram":
            check_histogram(name, samples, errors)
    n_hist = sum(1 for k in types.values() if k == "histogram")
    print(f"metrics: {len(samples)} sample families, {n_hist} histogram(s)")


def check_blackbox_dump(dump_dir: Path, errors: list[str]) -> None:
    tag = f"blackbox {dump_dir.name}"
    try:
        manifest = json.loads((dump_dir / "blackbox.json").read_text())
    except (OSError, json.JSONDecodeError) as err:
        errors.append(f"{tag}: cannot parse blackbox.json: {err}")
        return
    for key in BLACKBOX_MANIFEST_KEYS:
        if key not in manifest:
            errors.append(f"{tag}: manifest missing key {key!r}")
    history = manifest.get("restart_history")
    if isinstance(history, list):
        ok_restarts = sum(
            1 for h in history if isinstance(h, dict) and h.get("ok"))
        if manifest.get("restarts") != ok_restarts:
            errors.append(
                f"{tag}: manifest restarts {manifest.get('restarts')} != "
                f"{ok_restarts} successful restart_history entries")
        if manifest.get("attempts") != len(history):
            errors.append(
                f"{tag}: manifest attempts {manifest.get('attempts')} != "
                f"{len(history)} restart_history entries")
    else:
        errors.append(f"{tag}: restart_history is not a list")
    names = check_trace(dump_dir / "trace.json", errors,
                        required_spans=BLACKBOX_SPAN_NAMES)
    if names is not None and not names & BLACKBOX_TRIGGERS:
        errors.append(
            f"{tag}: trace has no supervision trigger event "
            f"({'/'.join(sorted(BLACKBOX_TRIGGERS))})")
    check_metrics(dump_dir / "metrics.prom", errors)
    print(f"{tag}: reason={manifest.get('reason')!r} "
          f"watchdog={manifest.get('watchdog')} "
          f"attempts={manifest.get('attempts')} "
          f"restarts={manifest.get('restarts')}")


def check_blackbox(root: Path, errors: list[str]) -> None:
    if (root / "blackbox.json").is_file():
        check_blackbox_dump(root, errors)
        return
    dumps = sorted(root.glob("shard-*"))
    if not dumps:
        dumps = sorted((root / "blackbox").glob("shard-*"))
    dumps = [d for d in dumps if d.is_dir()]
    if not dumps:
        errors.append(f"blackbox: no shard-* dump directories under {root}")
        return
    for dump in dumps:
        check_blackbox_dump(dump, errors)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", type=Path, help="Chrome trace JSON path")
    parser.add_argument("--metrics", type=Path,
                        help="Prometheus exposition path")
    parser.add_argument("--blackbox", type=Path,
                        help="black-box dump directory (or a root of them)")
    args = parser.parse_args()
    if args.trace is None and args.metrics is None and args.blackbox is None:
        parser.error(
            "nothing to check: pass --trace, --metrics, and/or --blackbox")

    errors: list[str] = []
    if args.trace is not None:
        check_trace(args.trace, errors)
    if args.metrics is not None:
        check_metrics(args.metrics, errors)
    if args.blackbox is not None:
        check_blackbox(args.blackbox, errors)

    for err in errors:
        print(err, file=sys.stderr)
    if errors:
        print(f"{len(errors)} telemetry check(s) failed", file=sys.stderr)
        return 1
    print("telemetry checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
