#!/usr/bin/env bash
# Kill-and-recover chaos drill: SIGKILL the simulator mid-soak, recover from
# the surviving checkpoint chain, and require the resumed run to land on the
# exact state digest of an uninterrupted reference run.
#
#   scripts/chaos_kill_recover.sh [build-dir]
#
# Exercises the whole crash-safety story end to end: atomic frame
# publication (the kill can land mid-write — the torn temp file must never
# be adopted), delta-chain verification in recover_latest, and bit-exact
# continuation of interconnect + traffic + adaptive-admission state. The
# digest check is strict equality: losing more than the tail checkpoint
# interval, or replaying it differently, fails the drill.
set -euo pipefail

BUILD_DIR="${1:-build}"
SIM="$BUILD_DIR/examples/simulate"
if [[ ! -x "$SIM" ]]; then
  echo "chaos_kill_recover: $SIM not built" >&2
  exit 1
fi

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT
CKPT_DIR="$WORK/ckpt"

# One flag set for all three runs: adaptive admission on so the controller
# state rides through the crash, deterministic degradation only (a
# wall-clock deadline would make even the reference run machine-dependent).
ARGS=(--n=64 --k=16 --load=0.85 --slots=60000 --warmup=0 --seed=11
      --tokens-per-slot=2 --bucket-depth=4 --adaptive-admission
      --retries=2 --op-budget=4000)

digest_of() { grep -o 'state_digest=0x[0-9a-f]*' "$1" | tail -n1; }

echo "== reference run (uninterrupted) =="
"$SIM" "${ARGS[@]}" | tee "$WORK/reference.log"
REF_DIGEST="$(digest_of "$WORK/reference.log")"
[[ -n "$REF_DIGEST" ]] || { echo "no reference digest" >&2; exit 1; }

echo "== crash run (SIGKILL mid-soak) =="
"$SIM" "${ARGS[@]}" --checkpoint-dir="$CKPT_DIR" --checkpoint-every=2000 \
  > "$WORK/crash.log" 2>&1 &
PID=$!
# Let at least two frames publish so recovery has a chain (not just one
# full), then pull the plug with no warning whatsoever.
for _ in $(seq 1 600); do
  count=$(ls "$CKPT_DIR" 2>/dev/null | grep -c '^ckpt-' || true)
  if [[ "$count" -ge 2 ]]; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then break; fi
  sleep 0.5
done
if ! kill -0 "$PID" 2>/dev/null; then
  # The run finished before two checkpoints appeared — the drill needs a
  # mid-flight kill, so treat this as a configuration error.
  echo "chaos_kill_recover: run finished before the kill" >&2
  exit 1
fi
sleep 1
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
echo "killed pid $PID with $(ls "$CKPT_DIR" | grep -c '^ckpt-') frames on disk"

echo "== resumed run =="
"$SIM" "${ARGS[@]}" --checkpoint-dir="$CKPT_DIR" --checkpoint-every=2000 \
  --resume | tee "$WORK/resume.log"
grep -q '^resumed at slot ' "$WORK/resume.log" \
  || { echo "resume did not recover a checkpoint" >&2; exit 1; }
RES_DIGEST="$(digest_of "$WORK/resume.log")"

echo "reference: $REF_DIGEST"
echo "resumed:   $RES_DIGEST"
if [[ "$REF_DIGEST" != "$RES_DIGEST" ]]; then
  echo "chaos_kill_recover: digest mismatch after crash recovery" >&2
  exit 1
fi
echo "chaos_kill_recover: OK — crash recovery is bit-exact"

# ---------------------------------------------------------------------------
# Fleet drill: same story, but 4 independent shards with one checkpoint chain
# each under <dir>/shard-<i>/. The SIGKILL can land with some shards a frame
# ahead of others; resume must be all-or-nothing on an *agreeing* slot, and
# the resumed fleet must land on the reference run's exact fleet_digest.
# ---------------------------------------------------------------------------
FLEET_CKPT="$WORK/fleet-ckpt"
FLEET_ARGS=(--shards=4 --n=16 --k=8 --load=0.8 --slots=200000 --warmup=0
            --seed=23)

fleet_digest_of() { grep -o 'fleet_digest=0x[0-9a-f]*' "$1" | tail -n1; }

echo "== fleet reference run (uninterrupted) =="
"$SIM" "${FLEET_ARGS[@]}" | tee "$WORK/fleet-reference.log"
FLEET_REF="$(fleet_digest_of "$WORK/fleet-reference.log")"
[[ -n "$FLEET_REF" ]] || { echo "no fleet reference digest" >&2; exit 1; }

echo "== fleet crash run (SIGKILL mid-checkpoint) =="
"$SIM" "${FLEET_ARGS[@]}" --checkpoint-dir="$FLEET_CKPT" \
  --checkpoint-every=2000 > "$WORK/fleet-crash.log" 2>&1 &
PID=$!
# Wait until the *last* shard's chain holds at least two frames — every
# earlier shard is then at least as far — and kill with no warning.
for _ in $(seq 1 600); do
  count=$(ls "$FLEET_CKPT/shard-3" 2>/dev/null | grep -c '^ckpt-' || true)
  if [[ "$count" -ge 2 ]]; then break; fi
  if ! kill -0 "$PID" 2>/dev/null; then break; fi
  sleep 0.5
done
if ! kill -0 "$PID" 2>/dev/null; then
  echo "chaos_kill_recover: fleet run finished before the kill" >&2
  exit 1
fi
kill -9 "$PID"
wait "$PID" 2>/dev/null || true
total=$(find "$FLEET_CKPT" -name 'ckpt-*' | wc -l)
echo "killed pid $PID with $total fleet frames on disk"

echo "== fleet resumed run =="
"$SIM" "${FLEET_ARGS[@]}" --checkpoint-dir="$FLEET_CKPT" \
  --checkpoint-every=2000 --resume | tee "$WORK/fleet-resume.log"
grep -q '^resumed 4 shards at slot ' "$WORK/fleet-resume.log" \
  || { echo "fleet resume did not recover all 4 shards" >&2; exit 1; }
FLEET_RES="$(fleet_digest_of "$WORK/fleet-resume.log")"

echo "fleet reference: $FLEET_REF"
echo "fleet resumed:   $FLEET_RES"
if [[ "$FLEET_REF" != "$FLEET_RES" ]]; then
  echo "chaos_kill_recover: fleet digest mismatch after crash recovery" >&2
  exit 1
fi
echo "chaos_kill_recover: OK — fleet crash recovery is bit-exact"
