#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every
# experiment (E1..E14), mirroring what EXPERIMENTS.md records.
#
#   scripts/run_all.sh [build-dir]
#
# Outputs land in <build-dir>/../test_output.txt and bench_output.txt.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"

ctest --test-dir "$BUILD" 2>&1 | tee test_output.txt

for b in "$BUILD"/bench/*; do
  [ -x "$b" ] || continue
  echo "===== $b ====="
  "$b"
done 2>&1 | tee bench_output.txt

echo "done: test_output.txt, bench_output.txt"
