#!/usr/bin/env python3
"""Diff two sets of BENCH_*.json artifacts.

Usage:
    scripts/bench_report.py BASELINE_DIR CURRENT_DIR [--threshold PCT]

Each directory holds the BENCH_<name>.json files a bench run leaves behind
(bench/baselines/ keeps the checked-in reference; a fresh run writes its
files into the working directory). The report pairs files by name, walks
every numeric leaf that looks like a rate or cost, and prints the relative
change. Exit status is 1 when any throughput-like metric regresses by more
than --threshold percent (default 15, generous because the CI box is a
noisy single core), so the script can gate CI.

Understands both artifact layouts:
  * the bench_io.hpp tree (objects/arrays of numbers, "rows" tables), and
  * google-benchmark --benchmark_out files ("benchmarks": [{name, cpu_time}]).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Metric-name fragments where bigger is better; everything else numeric is
# reported but never gates (loss probabilities, gate counts, byte tallies
# move for legitimate reasons).
HIGHER_IS_BETTER = ("slots_per_s", "slots/s", "slots_per_sec", "throughput")
LOWER_IS_BETTER = ("cpu_time", "real_time", "allocs_per_slot", "bytes_per_slot")


def flatten(node, prefix=""):
    """Yield (path, number) for every numeric leaf of a JSON tree."""
    if isinstance(node, dict):
        # google-benchmark entries are keyed by their "name" field.
        name = node.get("name")
        for key, value in node.items():
            if key == "name":
                continue
            label = f"{prefix}{name}.{key}" if name else f"{prefix}{key}"
            yield from flatten(value, label)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            label = prefix if isinstance(value, dict) and "name" in value else f"{prefix}[{i}]"
            yield from flatten(value, f"{label}." if label else "")
    elif isinstance(node, bool):
        return
    elif isinstance(node, (int, float)):
        yield prefix.rstrip("."), float(node)


def classify(path):
    lowered = path.lower()
    if any(frag in lowered for frag in HIGHER_IS_BETTER):
        return "higher"
    if any(frag in lowered for frag in LOWER_IS_BETTER):
        return "lower"
    return "neutral"


def compare_file(name, base, curr, threshold):
    base_map = dict(flatten(base))
    curr_map = dict(flatten(curr))
    regressions = []
    lines = []
    for path, old in sorted(base_map.items()):
        new = curr_map.get(path)
        if new is None or old == 0:
            continue
        direction = classify(path)
        if direction == "neutral":
            continue
        change = 100.0 * (new - old) / old
        marker = ""
        regressed = (direction == "higher" and change < -threshold) or (
            direction == "lower" and change > threshold
        )
        if regressed:
            marker = "  <-- REGRESSION"
            regressions.append(path)
        lines.append(f"  {path}: {old:.4g} -> {new:.4g} ({change:+.1f}%){marker}")
    if lines:
        print(f"{name}:")
        print("\n".join(lines))
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--threshold", type=float, default=15.0,
                        help="regression gate in percent (default 15)")
    args = parser.parse_args()

    base_files = {p.name: p for p in sorted(args.baseline.glob("BENCH_*.json"))}
    curr_files = {p.name: p for p in sorted(args.current.glob("BENCH_*.json"))}
    common = sorted(set(base_files) & set(curr_files))
    if not common:
        print("no BENCH_*.json pairs found in common", file=sys.stderr)
        return 2

    all_regressions = []
    for name in common:
        base = json.loads(base_files[name].read_text())
        curr = json.loads(curr_files[name].read_text())
        all_regressions += compare_file(name, base, curr, args.threshold)

    only_base = sorted(set(base_files) - set(curr_files))
    only_curr = sorted(set(curr_files) - set(base_files))
    if only_base:
        print(f"only in baseline: {', '.join(only_base)}")
    if only_curr:
        print(f"only in current:  {', '.join(only_curr)}")

    if all_regressions:
        print(f"\n{len(all_regressions)} metric(s) regressed beyond "
              f"{args.threshold:.0f}%", file=sys.stderr)
        return 1
    print(f"\nno regressions beyond {args.threshold:.0f}% across "
          f"{len(common)} artifact(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
