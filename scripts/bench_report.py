#!/usr/bin/env python3
"""Diff two sets of BENCH_*.json artifacts, or merge N runs best-of.

Usage:
    scripts/bench_report.py BASELINE_DIR CURRENT_DIR [--tolerance PCT]
    scripts/bench_report.py --best-of N RUN_DIR... --out MERGED_DIR

In --best-of mode the positional arguments are N directories, each holding
one complete bench run's BENCH_*.json files. For every artifact name the
run whose throughput-like metrics score best overall is kept — whole files
only, never leaves mixed across runs, so every kept artifact is an actual
run that happened. This is how bench/baselines/<host_key>/ is captured: a
single run on a noisy shared box records whatever the neighbours were
doing; the best of three is a far better estimate of the machine's real
capability, and a baseline captured fast gates honestly (a slow baseline
waves real regressions through).

Each directory holds the BENCH_<name>.json files a bench run leaves behind
(bench/baselines/ keeps the checked-in reference; a fresh run writes its
files into the working directory). The report pairs files by name, walks
every numeric leaf that looks like a rate or cost, and prints the relative
change. Exit status is 1 when any throughput-like metric regresses by more
than --tolerance percent (default 15, generous because the CI box is a
noisy single core), so the script can gate CI. --threshold is kept as a
deprecated alias.

Exit status 2 means the comparison could not be performed at all: a missing
directory, no BENCH_*.json pairs in common, or an unreadable/unparseable
artifact. CI treats 2 as a harness problem, distinct from a perf regression.

Baselines are keyed by host: every artifact carries a "meta" block
(bench_io.hpp) with a "host_key" like "Linux-x86_64". When the baseline
directory has a subdirectory named after the current artifacts' host key,
that subdirectory is used. When the current run's host key is known but no
such subdirectory exists, the flat directory is used as a fallback and the
whole comparison is report-only (exit 0): numbers captured on different
hardware never gate. A host-key mismatch between individual artifacts is
likewise reported as a warning without gating. The "meta" subtree is
excluded from the numeric diff entirely.

Latency distributions gate on the full histogram, not point quantiles:
when both sides of a pair carry log-bucket arrays ("hist_le_ns" +
"hist_count", as BENCH_overload.json rows do), the report compares the
whole bucket array — bucket-weighted mean shift plus the share of
probability mass that moved — and the p50/p99-style point quantiles are
demoted to report-only. A single-bucket wobble at the tail moves p99 by
a full bucket width on a noisy host; the mass-weighted view barely moves
unless the distribution really shifted. Artifacts without histogram
arrays (older captures) keep the point-quantile gate.

Understands both artifact layouts:
  * the bench_io.hpp tree (objects/arrays of numbers, "rows" tables), and
  * google-benchmark --benchmark_out files ("benchmarks": [{name, cpu_time}]).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Metric-name fragments where bigger is better; everything else numeric is
# reported but never gates (loss probabilities, gate counts, byte tallies
# move for legitimate reasons).
HIGHER_IS_BETTER = ("slots_per_s", "slots/s", "slots_per_sec", "throughput")
LOWER_IS_BETTER = ("cpu_time", "real_time", "allocs_per_slot", "bytes_per_slot",
                   "p50_ns", "p99_ns")
# Point quantiles of a latency distribution: these only gate when the pair
# has no histogram arrays to compare instead (see module docstring).
QUANTILE_FRAGMENTS = ("p50_ns", "p90_ns", "p99_ns", "p999_ns", "mean_ns",
                      "max_ns")
# Row fields that identify a histogram row across runs (in the order they
# are tried); rows without any of them pair up by index.
HIST_IDENTITY_FIELDS = ("load_factor", "control", "scheme", "n_fibers", "k")


def flatten(node, prefix=""):
    """Yield (path, number) for every numeric leaf of a JSON tree."""
    if isinstance(node, dict):
        # google-benchmark entries are keyed by their "name" field.
        name = node.get("name")
        for key, value in node.items():
            if key == "name":
                continue
            if key == "meta" and not prefix:
                continue  # host identity block: never part of the diff
            label = f"{prefix}{name}.{key}" if name else f"{prefix}{key}"
            yield from flatten(value, label)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            label = prefix if isinstance(value, dict) and "name" in value else f"{prefix}[{i}]"
            yield from flatten(value, f"{label}." if label else "")
    elif isinstance(node, bool):
        return
    elif isinstance(node, (int, float)):
        yield prefix.rstrip("."), float(node)


def classify(path):
    lowered = path.lower()
    if any(frag in lowered for frag in HIGHER_IS_BETTER):
        return "higher"
    if any(frag in lowered for frag in LOWER_IS_BETTER):
        return "lower"
    return "neutral"


def host_key(tree):
    meta = tree.get("meta") if isinstance(tree, dict) else None
    return meta.get("host_key") if isinstance(meta, dict) else None


def hist_rows(tree):
    """Map row identity -> {bucket_upper_edge_ns: count} for every row of
    the artifact that carries full histogram arrays."""
    rows = tree.get("rows") if isinstance(tree, dict) else None
    if not isinstance(rows, list):
        return {}
    out = {}
    for i, row in enumerate(rows):
        if not isinstance(row, dict):
            continue
        les, counts = row.get("hist_le_ns"), row.get("hist_count")
        if not (isinstance(les, list) and isinstance(counts, list) and
                les and len(les) == len(counts)):
            continue
        ident = tuple((f, row[f]) for f in HIST_IDENTITY_FIELDS if f in row)
        if not ident:
            ident = (("row", i),)
        out[ident] = dict(zip(les, counts))
    return out


def compare_histograms(name, base, curr, tolerance):
    """Diff full log-bucket latency histograms row by row. The gated
    statistic is the bucket-weighted mean (every bucket contributes, so a
    one-sample wobble in the tail cannot trip the gate the way a p99 point
    read can); the mass-moved figure is printed for context."""
    base_rows, curr_rows = hist_rows(base), hist_rows(curr)
    common = sorted(set(base_rows) & set(curr_rows), key=repr)
    regressions = []
    lines = []
    for ident in common:
        b, c = base_rows[ident], curr_rows[ident]
        b_total, c_total = sum(b.values()), sum(c.values())
        if b_total == 0 or c_total == 0:
            continue
        b_mean = sum(e * n for e, n in b.items()) / b_total
        c_mean = sum(e * n for e, n in c.items()) / c_total
        if b_mean == 0:
            continue
        change = 100.0 * (c_mean - b_mean) / b_mean
        edges = sorted(set(b) | set(c))
        moved = 50.0 * sum(abs(b.get(e, 0) / b_total - c.get(e, 0) / c_total)
                           for e in edges)
        label = ".".join(f"{f}={v}" for f, v in ident)
        path = f"rows.{label}.hist"
        marker = ""
        if change > tolerance:
            marker = "  <-- REGRESSION"
            regressions.append(path)
        lines.append(f"  {path}: mean {b_mean / 1e3:.4g}us -> "
                     f"{c_mean / 1e3:.4g}us ({change:+.1f}%), "
                     f"{moved:.1f}% of mass moved across {len(edges)} "
                     f"buckets{marker}")
    if lines:
        print(f"{name} (latency histograms):")
        print("\n".join(lines))
    return bool(common), regressions


def compare_file(name, base, curr, tolerance):
    has_hists, regressions = compare_histograms(name, base, curr, tolerance)
    base_map = dict(flatten(base))
    curr_map = dict(flatten(curr))
    lines = []
    for path, old in sorted(base_map.items()):
        new = curr_map.get(path)
        if new is None or old == 0:
            continue
        direction = classify(path)
        if direction == "neutral":
            continue
        lowered = path.lower()
        quantile = any(frag in lowered for frag in QUANTILE_FRAGMENTS)
        change = 100.0 * (new - old) / old
        marker = ""
        regressed = (direction == "higher" and change < -tolerance) or (
            direction == "lower" and change > tolerance
        )
        if regressed and quantile and has_hists:
            # The full histogram comparison above is the gate; the point
            # quantile is informational only.
            marker = "  (not gated: histogram comparison gates latency)"
        elif regressed:
            marker = "  <-- REGRESSION"
            regressions.append(path)
        lines.append(f"  {path}: {old:.4g} -> {new:.4g} ({change:+.1f}%){marker}")
    if lines:
        print(f"{name}:")
        print("\n".join(lines))
    return regressions


def pick_baseline_dir(baseline, curr_files):
    """Resolve per-host baseline layout: baseline/<host_key>/ if it matches
    the current artifacts' host key, else the flat directory. Returns
    (directory, fallback) where fallback means a host key was identified
    but has no baseline subdirectory — the flat numbers are from unknown
    hardware, so the caller reports without gating."""
    for path in curr_files.values():
        try:
            key = host_key(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError):
            continue
        if key and (baseline / key).is_dir():
            return baseline / key, False
        if key:
            return baseline, True
        break
    return baseline, False


def best_of_score(candidate_maps, index):
    """Score one run against the best value every gated metric reached in
    any run: mean over metrics of value/best (higher-is-better) or
    best/value (lower-is-better), so 1.0 means this run was the best at
    everything. Metrics a run is missing score 0 for it."""
    paths = set()
    for m in candidate_maps:
        paths.update(p for p in m if classify(p) != "neutral")
    if not paths:
        return 1.0  # nothing gated: any run is as good as another
    total = 0.0
    mine = candidate_maps[index]
    for path in paths:
        values = [m[path] for m in candidate_maps if path in m]
        value = mine.get(path)
        if value is None:
            continue
        if classify(path) == "higher":
            best = max(values)
            total += value / best if best > 0 else 1.0
        else:
            best = min(values)
            total += best / value if value > 0 else (1.0 if best == 0 else 0.0)
    return total / len(paths)


def merge_best_of(run_dirs, out_dir):
    """Keep, for every BENCH_*.json name, the whole file from the run that
    scores best. Returns 0 on success, 2 on harness problems."""
    for d in run_dirs:
        if not d.is_dir():
            print(f"run directory does not exist: {d}", file=sys.stderr)
            return 2
    names = sorted({p.name for d in run_dirs for p in d.glob("BENCH_*.json")})
    if not names:
        print("no BENCH_*.json files in any run directory", file=sys.stderr)
        return 2
    out_dir.mkdir(parents=True, exist_ok=True)
    for name in names:
        candidates = []  # (run_dir, raw_bytes, flattened)
        for d in run_dirs:
            path = d / name
            if not path.is_file():
                continue
            try:
                raw = path.read_text()
                tree = json.loads(raw)
            except (OSError, json.JSONDecodeError) as err:
                print(f"cannot read {path}: {err}", file=sys.stderr)
                return 2
            candidates.append((d, raw, dict(flatten(tree))))
        if not candidates:
            continue
        maps = [c[2] for c in candidates]
        scores = [best_of_score(maps, i) for i in range(len(candidates))]
        winner = max(range(len(candidates)), key=lambda i: scores[i])
        (out_dir / name).write_text(candidates[winner][1])
        detail = ", ".join(f"{d.name or d}: {s:.4f}"
                           for (d, _, _), s in zip(candidates, scores))
        print(f"{name}: kept {candidates[winner][0]} ({detail})")
        if len(candidates) < len(run_dirs):
            print(f"  note: only {len(candidates)} of {len(run_dirs)} runs "
                  f"produced {name}")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("dirs", type=Path, nargs="+",
                        metavar="DIR",
                        help="BASELINE CURRENT to diff, or N run "
                             "directories with --best-of")
    parser.add_argument("--tolerance", "--threshold", dest="tolerance",
                        type=float, default=15.0,
                        help="regression gate in percent (default 15); "
                             "--threshold is a deprecated alias")
    parser.add_argument("--best-of", dest="best_of", type=int, default=None,
                        metavar="N",
                        help="merge mode: keep the best run per benchmark "
                             "across the N run directories (requires --out)")
    parser.add_argument("--out", dest="out", type=Path, default=None,
                        help="output directory for --best-of merged artifacts")
    args = parser.parse_args()

    if args.best_of is not None:
        if args.out is None:
            print("--best-of requires --out", file=sys.stderr)
            return 2
        if len(args.dirs) != args.best_of:
            print(f"--best-of {args.best_of} expects {args.best_of} run "
                  f"directories, got {len(args.dirs)}", file=sys.stderr)
            return 2
        return merge_best_of(args.dirs, args.out)

    if len(args.dirs) != 2:
        parser.error("diff mode expects exactly BASELINE_DIR CURRENT_DIR")
    args.baseline, args.current = args.dirs

    for label, path in (("baseline", args.baseline), ("current", args.current)):
        if not path.is_dir():
            print(f"{label} directory does not exist: {path}", file=sys.stderr)
            return 2

    curr_files = {p.name: p for p in sorted(args.current.glob("BENCH_*.json"))}
    baseline_dir, flat_fallback = pick_baseline_dir(args.baseline, curr_files)
    if baseline_dir != args.baseline:
        print(f"using host-keyed baseline {baseline_dir}")
    if flat_fallback:
        print(f"no baseline subdirectory for this host key under "
              f"{args.baseline} — falling back to the flat directory; "
              "reporting only, not gating (create a per-host subdirectory "
              "from a quiet run to enable gating)")
    base_files = {p.name: p for p in sorted(baseline_dir.glob("BENCH_*.json"))}
    common = sorted(set(base_files) & set(curr_files))
    if not common:
        print("no BENCH_*.json pairs found in common", file=sys.stderr)
        return 2

    all_regressions = []
    host_mismatch = False
    for name in common:
        try:
            base = json.loads(base_files[name].read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"cannot read baseline {base_files[name]}: {err}",
                  file=sys.stderr)
            return 2
        try:
            curr = json.loads(curr_files[name].read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"cannot read current {curr_files[name]}: {err}",
                  file=sys.stderr)
            return 2
        base_key, curr_key = host_key(base), host_key(curr)
        if base_key and curr_key and base_key != curr_key:
            host_mismatch = True
            print(f"{name}: host mismatch ({base_key} baseline vs {curr_key} "
                  "current) — reporting only, not gating")
            compare_file(name, base, curr, float("inf"))
            continue
        if flat_fallback:
            compare_file(name, base, curr, float("inf"))
            continue
        all_regressions += compare_file(name, base, curr, args.tolerance)

    only_base = sorted(set(base_files) - set(curr_files))
    only_curr = sorted(set(curr_files) - set(base_files))
    if only_base:
        print(f"only in baseline: {', '.join(only_base)}")
    if only_curr:
        print(f"only in current:  {', '.join(only_curr)}")

    if all_regressions:
        print(f"\n{len(all_regressions)} metric(s) regressed beyond "
              f"{args.tolerance:.0f}%", file=sys.stderr)
        return 1
    suffix = ""
    if flat_fallback:
        suffix = " (flat-baseline fallback: nothing gated)"
    elif host_mismatch:
        suffix = " (host-mismatched artifacts not gated)"
    print(f"\nno regressions beyond {args.tolerance:.0f}% across "
          f"{len(common)} artifact(s){suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
