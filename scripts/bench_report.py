#!/usr/bin/env python3
"""Diff two sets of BENCH_*.json artifacts.

Usage:
    scripts/bench_report.py BASELINE_DIR CURRENT_DIR [--tolerance PCT]

Each directory holds the BENCH_<name>.json files a bench run leaves behind
(bench/baselines/ keeps the checked-in reference; a fresh run writes its
files into the working directory). The report pairs files by name, walks
every numeric leaf that looks like a rate or cost, and prints the relative
change. Exit status is 1 when any throughput-like metric regresses by more
than --tolerance percent (default 15, generous because the CI box is a
noisy single core), so the script can gate CI. --threshold is kept as a
deprecated alias.

Exit status 2 means the comparison could not be performed at all: a missing
directory, no BENCH_*.json pairs in common, or an unreadable/unparseable
artifact. CI treats 2 as a harness problem, distinct from a perf regression.

Baselines are keyed by host: every artifact carries a "meta" block
(bench_io.hpp) with a "host_key" like "Linux-x86_64". When the baseline
directory has a subdirectory named after the current artifacts' host key,
that subdirectory is used; otherwise the directory itself is. A host-key
mismatch between the chosen baseline and the current run is reported as a
warning — cross-host numbers never gate. The "meta" subtree is excluded
from the numeric diff entirely.

Understands both artifact layouts:
  * the bench_io.hpp tree (objects/arrays of numbers, "rows" tables), and
  * google-benchmark --benchmark_out files ("benchmarks": [{name, cpu_time}]).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Metric-name fragments where bigger is better; everything else numeric is
# reported but never gates (loss probabilities, gate counts, byte tallies
# move for legitimate reasons).
HIGHER_IS_BETTER = ("slots_per_s", "slots/s", "slots_per_sec", "throughput")
LOWER_IS_BETTER = ("cpu_time", "real_time", "allocs_per_slot", "bytes_per_slot",
                   "p50_ns", "p99_ns")


def flatten(node, prefix=""):
    """Yield (path, number) for every numeric leaf of a JSON tree."""
    if isinstance(node, dict):
        # google-benchmark entries are keyed by their "name" field.
        name = node.get("name")
        for key, value in node.items():
            if key == "name":
                continue
            if key == "meta" and not prefix:
                continue  # host identity block: never part of the diff
            label = f"{prefix}{name}.{key}" if name else f"{prefix}{key}"
            yield from flatten(value, label)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            label = prefix if isinstance(value, dict) and "name" in value else f"{prefix}[{i}]"
            yield from flatten(value, f"{label}." if label else "")
    elif isinstance(node, bool):
        return
    elif isinstance(node, (int, float)):
        yield prefix.rstrip("."), float(node)


def classify(path):
    lowered = path.lower()
    if any(frag in lowered for frag in HIGHER_IS_BETTER):
        return "higher"
    if any(frag in lowered for frag in LOWER_IS_BETTER):
        return "lower"
    return "neutral"


def host_key(tree):
    meta = tree.get("meta") if isinstance(tree, dict) else None
    return meta.get("host_key") if isinstance(meta, dict) else None


def compare_file(name, base, curr, tolerance):
    base_map = dict(flatten(base))
    curr_map = dict(flatten(curr))
    regressions = []
    lines = []
    for path, old in sorted(base_map.items()):
        new = curr_map.get(path)
        if new is None or old == 0:
            continue
        direction = classify(path)
        if direction == "neutral":
            continue
        change = 100.0 * (new - old) / old
        marker = ""
        regressed = (direction == "higher" and change < -tolerance) or (
            direction == "lower" and change > tolerance
        )
        if regressed:
            marker = "  <-- REGRESSION"
            regressions.append(path)
        lines.append(f"  {path}: {old:.4g} -> {new:.4g} ({change:+.1f}%){marker}")
    if lines:
        print(f"{name}:")
        print("\n".join(lines))
    return regressions


def pick_baseline_dir(baseline, curr_files):
    """Resolve per-host baseline layout: baseline/<host_key>/ if it matches
    the current artifacts' host key, else the flat directory."""
    for path in curr_files.values():
        try:
            key = host_key(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError):
            continue
        if key and (baseline / key).is_dir():
            return baseline / key
        break
    return baseline


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=Path)
    parser.add_argument("current", type=Path)
    parser.add_argument("--tolerance", "--threshold", dest="tolerance",
                        type=float, default=15.0,
                        help="regression gate in percent (default 15); "
                             "--threshold is a deprecated alias")
    args = parser.parse_args()

    for label, path in (("baseline", args.baseline), ("current", args.current)):
        if not path.is_dir():
            print(f"{label} directory does not exist: {path}", file=sys.stderr)
            return 2

    curr_files = {p.name: p for p in sorted(args.current.glob("BENCH_*.json"))}
    baseline_dir = pick_baseline_dir(args.baseline, curr_files)
    if baseline_dir != args.baseline:
        print(f"using host-keyed baseline {baseline_dir}")
    base_files = {p.name: p for p in sorted(baseline_dir.glob("BENCH_*.json"))}
    common = sorted(set(base_files) & set(curr_files))
    if not common:
        print("no BENCH_*.json pairs found in common", file=sys.stderr)
        return 2

    all_regressions = []
    host_mismatch = False
    for name in common:
        try:
            base = json.loads(base_files[name].read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"cannot read baseline {base_files[name]}: {err}",
                  file=sys.stderr)
            return 2
        try:
            curr = json.loads(curr_files[name].read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"cannot read current {curr_files[name]}: {err}",
                  file=sys.stderr)
            return 2
        base_key, curr_key = host_key(base), host_key(curr)
        if base_key and curr_key and base_key != curr_key:
            host_mismatch = True
            print(f"{name}: host mismatch ({base_key} baseline vs {curr_key} "
                  "current) — reporting only, not gating")
            compare_file(name, base, curr, float("inf"))
            continue
        all_regressions += compare_file(name, base, curr, args.tolerance)

    only_base = sorted(set(base_files) - set(curr_files))
    only_curr = sorted(set(curr_files) - set(base_files))
    if only_base:
        print(f"only in baseline: {', '.join(only_base)}")
    if only_curr:
        print(f"only in current:  {', '.join(only_curr)}")

    if all_regressions:
        print(f"\n{len(all_regressions)} metric(s) regressed beyond "
              f"{args.tolerance:.0f}%", file=sys.stderr)
        return 1
    suffix = " (host-mismatched artifacts not gated)" if host_mismatch else ""
    print(f"\nno regressions beyond {args.tolerance:.0f}% across "
          f"{len(common)} artifact(s){suffix}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
