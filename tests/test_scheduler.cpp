// OutputPortScheduler: algorithm dispatch, baseline equivalence, and the
// fairness of the arbitration stage.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/scheduler.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::Algorithm;
using core::Arbitration;
using core::ConversionScheme;
using core::OutputPortScheduler;
using core::Request;
using core::RequestVector;

TEST(Scheduler, AutoResolution) {
  OutputPortScheduler circ(ConversionScheme::circular(6, 1, 1));
  EXPECT_EQ(circ.algorithm(), Algorithm::kBreakFirstAvailable);
  OutputPortScheduler nc(ConversionScheme::non_circular(6, 1, 1));
  EXPECT_EQ(nc.algorithm(), Algorithm::kFirstAvailable);
  OutputPortScheduler full(ConversionScheme::full_range(6));
  EXPECT_EQ(full.algorithm(), Algorithm::kFullRange);
}

TEST(Scheduler, MismatchedAlgorithmRejected) {
  EXPECT_THROW(OutputPortScheduler(ConversionScheme::circular(6, 1, 1),
                                   Algorithm::kFirstAvailable),
               std::logic_error);
  EXPECT_THROW(OutputPortScheduler(ConversionScheme::non_circular(6, 1, 1),
                                   Algorithm::kBreakFirstAvailable),
               std::logic_error);
  EXPECT_THROW(OutputPortScheduler(ConversionScheme::circular(6, 1, 1),
                                   Algorithm::kFullRange),
               std::logic_error);
  EXPECT_THROW(OutputPortScheduler(ConversionScheme::circular(6, 1, 1),
                                   Algorithm::kGlover),
               std::logic_error);
}

TEST(Scheduler, DecisionsAreConsistentWithRequests) {
  OutputPortScheduler sched(ConversionScheme::circular(6, 1, 1));
  std::vector<Request> requests{{0, 1, 10, 1}, {1, 1, 11, 1}, {2, 4, 12, 1}};
  const auto decisions = sched.schedule(requests);
  ASSERT_EQ(decisions.size(), 3u);
  std::set<core::Channel> channels;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    if (!decisions[i].granted) continue;
    EXPECT_TRUE(sched.scheme().can_convert(requests[i].wavelength,
                                           decisions[i].channel));
    EXPECT_TRUE(channels.insert(decisions[i].channel).second)
        << "channel assigned twice";
  }
  // All three fit (λ1 x2 reach {0,1,2}, λ4 reaches {3,4,5}).
  EXPECT_EQ(channels.size(), 3u);
}

TEST(Scheduler, BaselinesMatchFastAlgorithms) {
  util::Rng rng(6060);
  for (int trial = 0; trial < 40; ++trial) {
    const auto rv = test::random_request_vector(rng, 8, 4, 0.4);
    const auto mask = test::random_mask(rng, 8, 0.75);

    // Circular: BFA vs Hopcroft–Karp baseline.
    const auto circ = ConversionScheme::circular(8, 2, 1);
    OutputPortScheduler bfa(circ, Algorithm::kBreakFirstAvailable);
    OutputPortScheduler hk(circ, Algorithm::kHopcroftKarp);
    EXPECT_EQ(bfa.assign_channels(rv, mask).granted,
              hk.assign_channels(rv, mask).granted);

    // Non-circular: FA vs Glover vs Hopcroft–Karp.
    const auto nc = ConversionScheme::non_circular(8, 2, 1);
    OutputPortScheduler fa(nc, Algorithm::kFirstAvailable);
    OutputPortScheduler glover(nc, Algorithm::kGlover);
    OutputPortScheduler hk2(nc, Algorithm::kHopcroftKarp);
    const auto fa_size = fa.assign_channels(rv, mask).granted;
    EXPECT_EQ(fa_size, glover.assign_channels(rv, mask).granted);
    EXPECT_EQ(fa_size, hk2.assign_channels(rv, mask).granted);
  }
}

TEST(Scheduler, GloverHandlesOccupiedChannelsByCompaction) {
  const auto nc = ConversionScheme::non_circular(6, 1, 1);
  OutputPortScheduler glover(nc, Algorithm::kGlover);
  RequestVector rv(6);
  rv.add(1, 2);
  const std::vector<std::uint8_t> mask{1, 0, 1, 1, 1, 1};
  const auto out = glover.assign_channels(rv, mask);
  EXPECT_EQ(out.granted, 2);
  test::expect_valid_assignment(out, rv, nc, mask);
}

TEST(Scheduler, FifoArbitrationPrefersEarlierRequests) {
  OutputPortScheduler sched(ConversionScheme::circular(6, 1, 1),
                            Algorithm::kAuto, Arbitration::kFifo);
  // Four λ0 requests, only three reachable channels {5, 0, 1}.
  std::vector<Request> requests{{0, 0, 1, 1}, {1, 0, 2, 1}, {2, 0, 3, 1},
                                {3, 0, 4, 1}};
  const auto decisions = sched.schedule(requests);
  EXPECT_TRUE(decisions[0].granted);
  EXPECT_TRUE(decisions[1].granted);
  EXPECT_TRUE(decisions[2].granted);
  EXPECT_FALSE(decisions[3].granted);
}

TEST(Scheduler, RoundRobinArbitrationRotatesLosers) {
  OutputPortScheduler sched(ConversionScheme::circular(4, 0, 0),
                            Algorithm::kAuto, Arbitration::kRoundRobin);
  // Two λ0 requests per slot, one channel: the loser alternates.
  std::vector<Request> requests{{0, 0, 1, 1}, {1, 0, 2, 1}};
  std::map<std::int32_t, int> wins;
  for (int slot = 0; slot < 10; ++slot) {
    const auto decisions = sched.schedule(requests);
    EXPECT_NE(decisions[0].granted, decisions[1].granted);
    wins[decisions[0].granted ? 0 : 1] += 1;
  }
  EXPECT_EQ(wins[0], 5);
  EXPECT_EQ(wins[1], 5);
}

TEST(Scheduler, RandomArbitrationIsFairInTheLongRun) {
  OutputPortScheduler sched(ConversionScheme::circular(4, 0, 0),
                            Algorithm::kAuto, Arbitration::kRandom, 99);
  std::vector<Request> requests{{0, 0, 1, 1}, {1, 0, 2, 1}};
  int wins0 = 0;
  const int slots = 4000;
  for (int slot = 0; slot < slots; ++slot) {
    const auto decisions = sched.schedule(requests);
    wins0 += decisions[0].granted ? 1 : 0;
  }
  EXPECT_NEAR(wins0, slots / 2, slots / 10);
}

TEST(Scheduler, ApproxAlgorithmNeverExceedsExact) {
  util::Rng rng(31337);
  const auto scheme = ConversionScheme::circular(10, 2, 2);
  OutputPortScheduler exact(scheme, Algorithm::kBreakFirstAvailable);
  OutputPortScheduler approx(scheme, Algorithm::kApproxBfa);
  for (int trial = 0; trial < 40; ++trial) {
    const auto rv = test::random_request_vector(rng, 10, 4, 0.4);
    const auto exact_size = exact.assign_channels(rv).granted;
    const auto approx_size = approx.assign_channels(rv).granted;
    EXPECT_LE(approx_size, exact_size);
    EXPECT_GE(approx_size, exact_size - (scheme.degree() - 1) / 2);
  }
}

TEST(Scheduler, EmptyScheduleCall) {
  OutputPortScheduler sched(ConversionScheme::circular(6, 1, 1));
  const auto decisions = sched.schedule({});
  EXPECT_TRUE(decisions.empty());
}

}  // namespace
}  // namespace wdm
