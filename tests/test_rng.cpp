// RNG determinism, distribution sanity, and stream independence.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/rng.hpp"

namespace wdm {
namespace {

TEST(Rng, DeterministicForSeed) {
  util::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  util::Rng parent1(7), parent2(7);
  util::Rng child1 = parent1.split();
  util::Rng child2 = parent2.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1.next(), child2.next());
  // A second split from the same parent is a different stream.
  util::Rng sibling = parent1.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += sibling.next() == child1.next() ? 1 : 0;
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformBelowStaysInRange) {
  util::Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_below(7), 7u);
  }
}

TEST(Rng, UniformBelowCoversSupport) {
  util::Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformBelowIsApproximatelyUniform) {
  util::Rng rng(11);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) counts[rng.uniform_below(8)] += 1;
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 / 5);  // within 20%
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  util::Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01HalfOpen) {
  util::Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  util::Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliMean) {
  util::Rng rng(17);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, GeometricSupportAndMean) {
  util::Rng rng(19);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const auto g = rng.geometric(0.25);
    EXPECT_GE(g, 1u);
    sum += static_cast<double>(g);
  }
  EXPECT_NEAR(sum / n, 4.0, 0.2);  // mean 1/p
  EXPECT_EQ(rng.geometric(1.0), 1u);
}

TEST(Zipf, AlphaZeroIsUniform) {
  util::Rng rng(23);
  util::ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) counts[zipf.sample(rng)] += 1;
  for (const int c : counts) EXPECT_NEAR(c, n / 4, n / 4 / 5);
}

TEST(Zipf, SkewPrefersLowIndices) {
  util::Rng rng(29);
  util::ZipfSampler zipf(8, 1.5);
  std::vector<int> counts(8, 0);
  for (int i = 0; i < 40000; ++i) counts[zipf.sample(rng)] += 1;
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[3]);
  EXPECT_GT(counts[3], counts[7]);
}

TEST(Zipf, SingletonSupport) {
  util::Rng rng(31);
  util::ZipfSampler zipf(1, 2.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(Zipf, RejectsInvalidConfig) {
  EXPECT_THROW(util::ZipfSampler(0, 1.0), std::logic_error);
  EXPECT_THROW(util::ZipfSampler(4, -0.5), std::logic_error);
}

TEST(Rng, ShuffleIsPermutation) {
  util::Rng rng(37);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(v);
  std::set<int> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 8u);
}

}  // namespace
}  // namespace wdm
