// The zero-allocation slot pipeline must be a pure performance change: the
// flat-CSR / reusable-scratch fast path (schedule_slot_into, schedule_into)
// must produce decision-for-decision identical results to the original
// nested-vector path, warm scratch must behave exactly like a cold call, and
// the thread pool must not perturb any outcome. A fixed-seed digest pins the
// whole simulation pipeline end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/availability.hpp"
#include "core/distributed.hpp"
#include "core/scheduler.hpp"
#include "sim/interconnect.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace wdm {
namespace {

using core::PortDecision;
using core::SlotRequest;

bool same_decision(const PortDecision& a, const PortDecision& b) {
  return a.granted == b.granted && a.channel == b.channel &&
         a.reason == b.reason;
}

/// Random slot traffic with a sprinkle of malformed requests (bad output
/// fiber, bad wavelength) so the rejection paths are exercised too.
std::vector<SlotRequest> random_slot(util::Rng& rng, std::int32_t n,
                                     std::int32_t k, std::size_t count) {
  std::vector<SlotRequest> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    SlotRequest r;
    r.input_fiber = static_cast<std::int32_t>(rng.uniform_below(
        static_cast<std::uint64_t>(n)));
    r.wavelength = static_cast<core::Wavelength>(rng.uniform_below(
        static_cast<std::uint64_t>(k)));
    r.output_fiber = static_cast<std::int32_t>(rng.uniform_below(
        static_cast<std::uint64_t>(n)));
    r.id = i;
    r.duration = 1 + static_cast<std::int32_t>(rng.uniform_below(3));
    if (rng.uniform_below(40) == 0) r.output_fiber = n + 7;  // invalid
    if (rng.uniform_below(40) == 0) r.wavelength = -1;       // invalid
    out.push_back(r);
  }
  return out;
}

std::vector<std::vector<std::uint8_t>> random_masks(util::Rng& rng,
                                                    std::int32_t n,
                                                    std::int32_t k) {
  std::vector<std::vector<std::uint8_t>> masks(
      static_cast<std::size_t>(n),
      std::vector<std::uint8_t>(static_cast<std::size_t>(k), 1));
  for (auto& mask : masks) {
    for (auto& m : mask) m = rng.uniform_below(4) == 0 ? 0 : 1;
  }
  return masks;
}

std::vector<std::uint8_t> flatten(
    const std::vector<std::vector<std::uint8_t>>& masks) {
  std::vector<std::uint8_t> flat;
  for (const auto& mask : masks) {
    flat.insert(flat.end(), mask.begin(), mask.end());
  }
  return flat;
}

class SlotPipelineEquality
    : public ::testing::TestWithParam<core::Arbitration> {};

// The flat-view fast path and the legacy nested-vector path must agree on
// every decision, slot after slot — including the RNG-consuming arbitration
// modes, whose stream would drift forever after a single divergence.
TEST_P(SlotPipelineEquality, FlatViewMatchesNestedVectorPath) {
  const std::int32_t n = 6;
  for (const auto& scheme : {core::ConversionScheme::circular(8, 1, 1),
                             core::ConversionScheme::non_circular(8, 2, 1)}) {
    core::DistributedScheduler legacy(n, scheme, core::Algorithm::kAuto,
                                      GetParam(), 42);
    core::DistributedScheduler fast(n, scheme, core::Algorithm::kAuto,
                                    GetParam(), 42);
    util::Rng rng(7);
    std::vector<PortDecision> fast_decisions;
    for (int slot = 0; slot < 120; ++slot) {
      const auto requests = random_slot(rng, n, scheme.k(), 40);
      const auto masks = random_masks(rng, n, scheme.k());
      const auto flat = flatten(masks);
      const auto expected = legacy.schedule_slot(requests, &masks);
      fast_decisions.resize(requests.size());
      fast.schedule_slot_into(
          requests,
          core::AvailabilityView(flat.data(), n, scheme.k()), nullptr,
          nullptr, fast_decisions);
      ASSERT_EQ(expected.size(), fast_decisions.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        ASSERT_TRUE(same_decision(expected[i], fast_decisions[i]))
            << "slot " << slot << " request " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllArbitrations, SlotPipelineEquality,
                         ::testing::Values(core::Arbitration::kFifo,
                                           core::Arbitration::kRoundRobin,
                                           core::Arbitration::kRandom));

// A port scheduler whose scratch arenas are warm from hundreds of prior
// slots must decide exactly like the allocating wrapper on a twin instance.
TEST(SlotPipeline, WarmScratchMatchesColdCall) {
  const auto scheme = core::ConversionScheme::circular(8, 1, 1);
  core::OutputPortScheduler a(scheme, core::Algorithm::kAuto,
                              core::Arbitration::kRandom, 99);
  core::OutputPortScheduler b(scheme, core::Algorithm::kAuto,
                              core::Arbitration::kRandom, 99);
  util::Rng rng(3);
  std::vector<PortDecision> warm;
  for (int slot = 0; slot < 300; ++slot) {
    std::vector<core::Request> requests;
    const std::size_t count = rng.uniform_below(12);
    for (std::size_t i = 0; i < count; ++i) {
      requests.push_back(core::Request{
          static_cast<std::int32_t>(rng.uniform_below(4)),
          static_cast<core::Wavelength>(rng.uniform_below(8)), i, 1});
    }
    std::vector<std::uint8_t> mask(8, 1);
    for (auto& m : mask) m = rng.uniform_below(3) == 0 ? 0 : 1;
    const auto cold = a.schedule(requests, mask);
    warm.resize(requests.size());
    b.schedule_into(requests, mask, nullptr, warm);
    ASSERT_EQ(cold.size(), warm.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
      ASSERT_TRUE(same_decision(cold[i], warm[i])) << "slot " << slot;
    }
  }
}

// A wrong-shaped flat view must reject every request, like a wrong-sized
// nested availability vector does.
TEST(SlotPipeline, MisshapenViewRejectsAllRequests) {
  const auto scheme = core::ConversionScheme::circular(8, 1, 1);
  core::DistributedScheduler sched(4, scheme);
  std::vector<std::uint8_t> plane(3 * 8, 1);  // 3 fibers, scheduler has 4
  const std::vector<SlotRequest> requests{{0, 1, 2, 1, 1, 0}};
  std::vector<PortDecision> decisions(requests.size());
  sched.schedule_slot_into(requests,
                           core::AvailabilityView(plane.data(), 3, 8), nullptr,
                           nullptr, decisions);
  ASSERT_EQ(decisions.size(), 1u);
  EXPECT_FALSE(decisions[0].granted);
  EXPECT_EQ(decisions[0].reason, core::RejectReason::kBadAvailabilityMask);
}

bool same_stats(const sim::SlotStats& a, const sim::SlotStats& b) {
  return a.arrivals == b.arrivals && a.granted == b.granted &&
         a.rejected == b.rejected &&
         a.rejected_malformed == b.rejected_malformed &&
         a.rejected_faulted == b.rejected_faulted &&
         a.deferred_faulted == b.deferred_faulted &&
         a.retry_attempts == b.retry_attempts &&
         a.retry_successes == b.retry_successes &&
         a.preempted == b.preempted && a.dropped_faulted == b.dropped_faulted &&
         a.busy_channels == b.busy_channels &&
         a.arrivals_per_class == b.arrivals_per_class &&
         a.granted_per_class == b.granted_per_class;
}

// The thread pool only distributes independent per-fiber schedules; with it
// on or off, every slot's accounting must be bit-identical.
TEST(SlotPipeline, ThreadPoolDoesNotPerturbResults) {
  sim::InterconnectConfig cfg;
  cfg.n_fibers = 8;
  cfg.scheme = core::ConversionScheme::circular(8, 1, 1);
  cfg.seed = 2024;
  sim::Interconnect serial(cfg);
  sim::Interconnect pooled(cfg);
  util::ThreadPool pool(2);
  util::Rng rng(11);
  for (int slot = 0; slot < 200; ++slot) {
    const auto arrivals = random_slot(rng, cfg.n_fibers, 8, 24);
    const auto s = serial.step(arrivals, nullptr);
    const auto p = pooled.step(arrivals, &pool);
    ASSERT_TRUE(same_stats(s, p)) << "slot " << slot;
  }
}

// End-to-end digest pin: one fixed-seed simulation covering the rearrange
// policy and random arbitration (the paths the other golden pins miss). Any
// drift in the slot pipeline shows up here as a changed digest.
constexpr std::uint64_t kDigestArrivals = 57609;
constexpr std::uint64_t kDigestHash = 12176375038399528583ULL;

TEST(SlotPipeline, SimulationDigestIsStable) {
  sim::SimulationConfig cfg;
  cfg.interconnect.n_fibers = 6;
  cfg.interconnect.scheme = core::ConversionScheme::circular(10, 2, 2);
  cfg.interconnect.arbitration = core::Arbitration::kRandom;
  cfg.interconnect.policy = sim::OccupiedPolicy::kRearrange;
  cfg.traffic.load = 0.8;
  cfg.slots = 1200;
  cfg.warmup = 100;
  cfg.seed = 777;
  const auto r = sim::run_simulation(cfg);
  // FNV-1a over the integer outcomes (floating-point fields derive from
  // these, so pinning the integers pins the report).
  std::uint64_t h = 1469598103934665603ULL;
  const auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(r.arrivals);
  mix(r.losses);
  mix(r.preemptions);
  EXPECT_EQ(r.arrivals, kDigestArrivals);
  EXPECT_EQ(h, kDigestHash);
}

}  // namespace
}  // namespace wdm
