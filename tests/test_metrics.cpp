// MetricsCollector: conservation checks, aggregation, merge.
#include <gtest/gtest.h>

#include "sim/metrics.hpp"

namespace wdm {
namespace {

using sim::MetricsCollector;
using sim::SlotStats;

SlotStats make_stats(std::uint64_t arrivals, std::uint64_t granted,
                     std::uint64_t rejected, std::uint64_t preempted,
                     std::uint64_t busy_channels) {
  SlotStats s;
  s.arrivals = arrivals;
  s.granted = granted;
  s.rejected = rejected;
  s.preempted = preempted;
  s.busy_channels = busy_channels;
  return s;
}

TEST(Metrics, RecordsLossAndUtilization) {
  MetricsCollector m(2, 4);  // capacity 8 channels
  m.record_slot(make_stats(10, 8, 2, 0, 4));
  m.record_slot(make_stats(6, 6, 0, 0, 8));
  EXPECT_EQ(m.slots(), 2u);
  EXPECT_EQ(m.arrivals(), 16u);
  EXPECT_EQ(m.losses(), 2u);
  EXPECT_DOUBLE_EQ(m.loss_probability(), 2.0 / 16.0);
  EXPECT_DOUBLE_EQ(m.utilization(), (0.5 + 1.0) / 2.0);
  EXPECT_DOUBLE_EQ(m.throughput_per_channel(), 14.0 / (2.0 * 8.0));
}

TEST(Metrics, ConservationEnforced) {
  MetricsCollector m(2, 4);
  EXPECT_THROW(m.record_slot(make_stats(10, 8, 1, 0, 0)), std::logic_error);
}

TEST(Metrics, EmptySlotIsFine) {
  MetricsCollector m(2, 2);
  m.record_slot(make_stats(0, 0, 0, 0, 0));
  EXPECT_EQ(m.loss_probability(), 0.0);
  EXPECT_EQ(m.throughput_per_channel(), 0.0);
}

TEST(Metrics, FiberFairness) {
  MetricsCollector m(4, 2);
  for (std::int32_t f = 0; f < 4; ++f) m.record_fiber_grants(f, 10);
  EXPECT_DOUBLE_EQ(m.fiber_fairness(), 1.0);

  MetricsCollector skew(4, 2);
  skew.record_fiber_grants(0, 100);
  EXPECT_NEAR(skew.fiber_fairness(), 0.25, 1e-12);
}

TEST(Metrics, MergeCombines) {
  MetricsCollector a(2, 2), b(2, 2);
  a.record_slot(make_stats(4, 3, 1, 0, 2));
  b.record_slot(make_stats(4, 4, 0, 0, 4));
  b.record_fiber_grants(1, 4);
  a.merge(b);
  EXPECT_EQ(a.slots(), 2u);
  EXPECT_EQ(a.arrivals(), 8u);
  EXPECT_EQ(a.losses(), 1u);

  MetricsCollector c(3, 2);
  EXPECT_THROW(a.merge(c), std::logic_error);
}

TEST(Metrics, PerClassAccountingAccumulates) {
  MetricsCollector m(2, 4);
  auto s = make_stats(5, 4, 1, 0, 4);
  s.arrivals_per_class = {3, 2};
  s.granted_per_class = {3, 1};
  m.record_slot(s);
  ASSERT_EQ(m.arrivals_per_class().size(), 2u);
  EXPECT_EQ(m.arrivals_per_class()[0], 3u);
  EXPECT_EQ(m.granted_per_class()[1], 1u);
  EXPECT_EQ(m.raw_arrivals(), 5u);
  EXPECT_EQ(m.granted(), 4u);
}

TEST(Metrics, MergeWithUnequalPerClassLengths) {
  // One collector saw single-class slots (empty per-class vectors), the
  // other saw three classes: the merge must widen to the longer vector and
  // sum index-wise, in both merge directions.
  MetricsCollector narrow(2, 4), wide(2, 4);
  auto s1 = make_stats(4, 4, 0, 0, 4);
  s1.arrivals_per_class = {4};
  s1.granted_per_class = {4};
  narrow.record_slot(s1);

  auto s3 = make_stats(6, 3, 3, 0, 3);
  s3.arrivals_per_class = {1, 2, 3};
  s3.granted_per_class = {1, 1, 1};
  wide.record_slot(s3);

  MetricsCollector merged_a = narrow;
  merged_a.merge(wide);
  ASSERT_EQ(merged_a.arrivals_per_class().size(), 3u);
  EXPECT_EQ(merged_a.arrivals_per_class()[0], 5u);
  EXPECT_EQ(merged_a.arrivals_per_class()[2], 3u);
  EXPECT_EQ(merged_a.granted_per_class()[0], 5u);
  EXPECT_EQ(merged_a.granted_per_class()[1], 1u);

  MetricsCollector merged_b = wide;
  merged_b.merge(narrow);
  ASSERT_EQ(merged_b.arrivals_per_class().size(), 3u);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(merged_b.arrivals_per_class()[c],
              merged_a.arrivals_per_class()[c]);
    EXPECT_EQ(merged_b.granted_per_class()[c],
              merged_a.granted_per_class()[c]);
  }
}

TEST(Metrics, IdleSlotsDoNotDiluteLoss) {
  // Zero-arrival slots contribute no Bernoulli trials: a stream padded with
  // idle slots reports the same loss probability and Wilson interval as the
  // busy slots alone, and only throughput (a per-slot rate) changes.
  MetricsCollector busy(2, 2), padded(2, 2);
  for (int i = 0; i < 10; ++i) {
    const auto s = make_stats(4, 3, 1, 0, 3);
    busy.record_slot(s);
    padded.record_slot(s);
    padded.record_slot(make_stats(0, 0, 0, 0, 0));  // idle slot between each
  }
  EXPECT_EQ(padded.arrivals(), busy.arrivals());
  EXPECT_EQ(padded.losses(), busy.losses());
  EXPECT_DOUBLE_EQ(padded.loss_probability(), busy.loss_probability());
  EXPECT_DOUBLE_EQ(padded.loss_wilson_low(), busy.loss_wilson_low());
  EXPECT_DOUBLE_EQ(padded.loss_wilson_high(), busy.loss_wilson_high());
  EXPECT_EQ(padded.slots(), 2 * busy.slots());
  EXPECT_DOUBLE_EQ(padded.throughput_per_channel(),
                   busy.throughput_per_channel() / 2.0);
  // Idle slots do count toward utilisation: the fabric really was empty.
  EXPECT_DOUBLE_EQ(padded.utilization(), busy.utilization() / 2.0);
}

TEST(Metrics, RejectedMalformedAccumulatesAndMerges) {
  MetricsCollector a(2, 4), b(2, 4);
  auto s = make_stats(5, 3, 2, 0, 3);
  s.rejected_malformed = 1;
  a.record_slot(s);
  a.record_slot(make_stats(2, 2, 0, 0, 5));
  EXPECT_EQ(a.rejected_malformed(), 1u);

  auto t = make_stats(4, 0, 4, 0, 0);
  t.rejected_malformed = 4;
  b.record_slot(t);
  a.merge(b);
  EXPECT_EQ(a.rejected_malformed(), 5u);
}

TEST(Metrics, RejectedMalformedBoundedByRejected) {
  MetricsCollector m(2, 4);
  auto s = make_stats(5, 3, 2, 0, 3);
  s.rejected_malformed = 3;  // claims more malformed drops than drops
  EXPECT_THROW(m.record_slot(s), std::logic_error);
}

TEST(Metrics, WilsonBracketsLoss) {
  MetricsCollector m(1, 1);
  for (int i = 0; i < 100; ++i) m.record_slot(make_stats(1, 1, 0, 0, 1));
  m.record_slot(make_stats(1, 0, 1, 0, 0));
  EXPECT_LT(m.loss_wilson_low(), m.loss_probability());
  EXPECT_GT(m.loss_wilson_high(), m.loss_probability());
}

}  // namespace
}  // namespace wdm
