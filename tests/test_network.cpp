// OXC chain simulation: conservation, determinism, compounding behaviour.
#include <gtest/gtest.h>

#include <numeric>

#include "sim/network.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using sim::ChainConfig;

ChainConfig base() {
  ChainConfig cfg;
  cfg.hops = 3;
  cfg.n_fibers = 4;
  cfg.scheme = ConversionScheme::circular(8, 1, 1);
  cfg.load = 0.5;
  cfg.slots = 1500;
  cfg.warmup = 200;
  cfg.seed = 77;
  return cfg;
}

TEST(Chain, ConservationAcrossHops) {
  const auto r = sim::run_chain_simulation(base());
  const std::uint64_t dropped = std::accumulate(
      r.dropped_at_hop.begin(), r.dropped_at_hop.end(), std::uint64_t{0});
  EXPECT_GT(r.injected, 0u);
  EXPECT_EQ(r.injected, r.delivered + dropped);
  EXPECT_NEAR(r.end_to_end_loss,
              static_cast<double>(dropped) / static_cast<double>(r.injected),
              1e-12);
  EXPECT_EQ(r.hop_loss.size(), 3u);
}

TEST(Chain, DeterministicForSeed) {
  const auto a = sim::run_chain_simulation(base());
  const auto b = sim::run_chain_simulation(base());
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped_at_hop, b.dropped_at_hop);
}

TEST(Chain, SingleHopMatchesShape) {
  auto cfg = base();
  cfg.hops = 1;
  const auto r = sim::run_chain_simulation(cfg);
  EXPECT_EQ(r.hop_loss.size(), 1u);
  EXPECT_NEAR(r.end_to_end_loss, r.hop_loss[0], 1e-12);
}

TEST(Chain, LossGrowsWithHops) {
  auto cfg = base();
  cfg.hops = 1;
  const auto one = sim::run_chain_simulation(cfg);
  cfg.hops = 4;
  const auto four = sim::run_chain_simulation(cfg);
  EXPECT_GT(four.end_to_end_loss, one.end_to_end_loss);
}

TEST(Chain, ConversionHelpsEndToEnd) {
  auto cfg = base();
  cfg.hops = 4;
  cfg.load = 0.7;
  cfg.scheme = ConversionScheme::circular(8, 0, 0);  // d = 1
  const auto none = sim::run_chain_simulation(cfg);
  cfg.scheme = ConversionScheme::circular(8, 1, 1);  // d = 3
  const auto limited = sim::run_chain_simulation(cfg);
  cfg.scheme = ConversionScheme::full_range(8);
  const auto full = sim::run_chain_simulation(cfg);
  EXPECT_GT(none.end_to_end_loss, limited.end_to_end_loss);
  EXPECT_GE(limited.end_to_end_loss, full.end_to_end_loss - 0.01);
}

TEST(Chain, LaterHopsAreLighter) {
  // Hop 0 absorbs the heaviest contention (fresh load); survivors thin out,
  // so conditional per-hop loss is nonincreasing down the chain (within
  // noise).
  auto cfg = base();
  cfg.hops = 4;
  cfg.load = 0.8;
  cfg.slots = 4000;
  const auto r = sim::run_chain_simulation(cfg);
  EXPECT_GT(r.hop_loss[0], 0.0);
  for (std::size_t h = 1; h < r.hop_loss.size(); ++h) {
    EXPECT_LE(r.hop_loss[h], r.hop_loss[0] + 0.02) << "hop " << h;
  }
}

TEST(Chain, InvalidConfigRejected) {
  auto cfg = base();
  cfg.hops = 0;
  EXPECT_THROW(sim::run_chain_simulation(cfg), std::logic_error);
  cfg = base();
  cfg.load = 1.5;
  EXPECT_THROW(sim::run_chain_simulation(cfg), std::logic_error);
  cfg = base();
  cfg.slots = 0;
  EXPECT_THROW(sim::run_chain_simulation(cfg), std::logic_error);
}

}  // namespace
}  // namespace wdm
