// CheckpointStore + recover_latest: full/delta chains round-trip bit for
// bit, deltas stay small, torn or corrupt frames are discarded with the
// chain falling back to the best verified prefix, retention prunes retired
// chains, and a restarted store never corrupts an adopted directory.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "sim/checkpoint.hpp"
#include "sim/checkpoint_store.hpp"
#include "sim/interconnect.hpp"
#include "sim/traffic.hpp"

namespace wdm {
namespace {

namespace fs = std::filesystem;

sim::InterconnectConfig recovery_config(std::int32_t n_fibers,
                                        std::int32_t k) {
  sim::InterconnectConfig cfg;
  cfg.n_fibers = n_fibers;
  cfg.scheme = core::ConversionScheme::circular(k, 1, 1);
  cfg.seed = 42;
  cfg.retry.max_retries = 2;
  cfg.retry.queue_capacity = 8;
  cfg.admission.enabled = true;
  cfg.admission.tokens_per_slot = 2.0;
  cfg.admission.bucket_depth = 4.0;
  cfg.admission.queue_capacity = 16;
  cfg.admission.adaptive.enabled = true;
  cfg.admission.adaptive.update_every = 4;
  return cfg;
}

sim::TrafficConfig steady_traffic(double load, double mean_holding) {
  sim::TrafficConfig tcfg;
  tcfg.load = load;
  tcfg.holding = sim::HoldingTime::kGeometric;
  tcfg.mean_holding = mean_holding;
  return tcfg;
}

/// Fresh per-test directory under the gtest temp root.
fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

/// Flips one bit in the middle of a file (torn-page / rot stand-in).
void corrupt_file(const fs::path& path) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(f.tellg());
  ASSERT_GT(size, 0u);
  f.seekg(static_cast<std::streamoff>(size / 2));
  char byte = 0;
  f.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x10);
  f.seekp(static_cast<std::streamoff>(size / 2));
  f.write(&byte, 1);
}

/// Truncates a file to `keep` bytes (crash mid-write without the atomic
/// rename — what a torn frame would look like if publication were naive).
void truncate_file(const fs::path& path, std::uint64_t keep) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), keep);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamoff>(keep));
}

TEST(CheckpointStore, FullDeltaChainRoundTripsAndContinues) {
  const auto dir = fresh_dir("wdm-roundtrip");
  const auto cfg = recovery_config(4, 6);
  const auto tcfg = steady_traffic(0.9, 3.0);
  sim::Interconnect original(cfg);
  sim::TrafficGenerator traffic(4, 6, tcfg, 9001);

  sim::CheckpointPolicy policy;
  policy.dir = dir.string();
  policy.full_every = 4;
  policy.keep_fulls = 8;  // keep everything: this test inspects the chain
  sim::CheckpointStore store(policy);
  for (std::uint64_t slot = 0; slot < 30; ++slot) {
    original.step(traffic.next_slot(original.input_channel_busy()));
    if (original.current_slot() % 2 == 0) store.write(original, &traffic);
  }
  ASSERT_FALSE(store.frames().empty());
  EXPECT_TRUE(store.frames().front().full);  // first frame is always full
  const auto original_digest = sim::state_digest(original);

  sim::Interconnect recovered(cfg);
  sim::TrafficGenerator recovered_traffic(4, 6, tcfg, 1);
  const auto report =
      sim::recover_latest(dir.string(), recovered, &recovered_traffic);
  ASSERT_TRUE(report.recovered);
  EXPECT_TRUE(report.discarded.empty());
  EXPECT_EQ(report.slot, original.current_slot());
  EXPECT_EQ(sim::state_digest(recovered), original_digest);

  // Both evolve identically from here — traffic state came along too.
  for (std::uint64_t slot = 0; slot < 20; ++slot) {
    original.step(traffic.next_slot(original.input_channel_busy()));
    recovered.step(
        recovered_traffic.next_slot(recovered.input_channel_busy()));
  }
  EXPECT_EQ(sim::state_digest(recovered), sim::state_digest(original));
}

TEST(CheckpointStore, DeltasAreAtLeastFiveTimesSmallerAtSteadyState) {
  // Low-churn steady state on a big fabric: most occupancy records carry
  // over unchanged between nearby slots (expiry encoding keeps them
  // byte-stable), so delta frames must be far smaller than fulls.
  const auto dir = fresh_dir("wdm-compact");
  const auto cfg = recovery_config(32, 16);
  const auto tcfg = steady_traffic(0.5, 40.0);
  sim::Interconnect ic(cfg);
  sim::TrafficGenerator traffic(32, 16, tcfg, 7);
  for (std::uint64_t slot = 0; slot < 200; ++slot) {
    ic.step(traffic.next_slot(ic.input_channel_busy()));  // warm to steady
  }

  sim::CheckpointPolicy policy;
  policy.dir = dir.string();
  policy.full_every = 8;
  policy.keep_fulls = 16;
  sim::CheckpointStore store(policy);
  for (std::uint64_t slot = 0; slot < 64; ++slot) {
    ic.step(traffic.next_slot(ic.input_channel_busy()));
    if (ic.current_slot() % 2 == 0) store.write(ic, &traffic);
  }

  std::uint64_t full_bytes = 0, full_count = 0;
  std::uint64_t delta_bytes = 0, delta_count = 0;
  for (const auto& frame : store.frames()) {
    (frame.full ? full_bytes : delta_bytes) += frame.bytes;
    (frame.full ? full_count : delta_count) += 1;
  }
  ASSERT_GT(full_count, 0u);
  ASSERT_GT(delta_count, 0u);
  const double full_avg =
      static_cast<double>(full_bytes) / static_cast<double>(full_count);
  const double delta_avg =
      static_cast<double>(delta_bytes) / static_cast<double>(delta_count);
  EXPECT_GE(full_avg, 5.0 * delta_avg)
      << "full_avg=" << full_avg << " delta_avg=" << delta_avg;

  // And the compact chain still restores bit for bit.
  sim::Interconnect recovered(cfg);
  sim::TrafficGenerator recovered_traffic(32, 16, tcfg, 1);
  const auto report =
      sim::recover_latest(dir.string(), recovered, &recovered_traffic);
  ASSERT_TRUE(report.recovered);
  EXPECT_EQ(sim::state_digest(recovered), sim::state_digest(ic));
}

TEST(CheckpointStore, TornNewestFrameFallsBackOneInterval) {
  const auto dir = fresh_dir("wdm-torn");
  const auto cfg = recovery_config(4, 6);
  const auto tcfg = steady_traffic(0.9, 3.0);
  sim::Interconnect ic(cfg);
  sim::TrafficGenerator traffic(4, 6, tcfg, 55);

  sim::CheckpointPolicy policy;
  policy.dir = dir.string();
  policy.full_every = 4;
  policy.keep_fulls = 8;
  sim::CheckpointStore store(policy);
  std::uint64_t prev_digest = 0, prev_slot = 0;
  for (std::uint64_t slot = 0; slot < 12; ++slot) {
    ic.step(traffic.next_slot(ic.input_channel_busy()));
    if (slot + 1 < 12) {  // digest of the state behind the last-good frame
      prev_digest = sim::state_digest(ic);
      prev_slot = ic.current_slot();
    }
    store.write(ic, &traffic);
  }
  const auto& torn = store.frames().back();
  truncate_file(torn.path, torn.bytes / 2);

  sim::Interconnect recovered(cfg);
  sim::TrafficGenerator recovered_traffic(4, 6, tcfg, 1);
  const auto report =
      sim::recover_latest(dir.string(), recovered, &recovered_traffic);
  ASSERT_TRUE(report.recovered);
  EXPECT_EQ(report.slot, prev_slot);
  EXPECT_EQ(sim::state_digest(recovered), prev_digest);
  ASSERT_EQ(report.discarded.size(), 1u);
  EXPECT_EQ(report.discarded[0], torn.path);
  EXPECT_FALSE(report.reasons[0].empty());
}

TEST(CheckpointStore, CorruptFullOrphansItsDeltasAndFallsBackAChain) {
  const auto dir = fresh_dir("wdm-orphan");
  const auto cfg = recovery_config(4, 6);
  const auto tcfg = steady_traffic(0.9, 3.0);
  sim::Interconnect ic(cfg);
  sim::TrafficGenerator traffic(4, 6, tcfg, 99);

  // full_every=4 over 8 writes: F D D D F D D D. Corrupting the second
  // full must discard it AND strand its three deltas, falling back to the
  // end of the first chain.
  sim::CheckpointPolicy policy;
  policy.dir = dir.string();
  policy.full_every = 4;
  policy.keep_fulls = 8;
  sim::CheckpointStore store(policy);
  std::uint64_t first_chain_digest = 0, first_chain_slot = 0;
  for (std::uint64_t slot = 0; slot < 8; ++slot) {
    ic.step(traffic.next_slot(ic.input_channel_busy()));
    store.write(ic, &traffic);
    if (slot == 3) {  // last frame of the first full+delta chain
      first_chain_digest = sim::state_digest(ic);
      first_chain_slot = ic.current_slot();
    }
  }
  ASSERT_EQ(store.frames().size(), 8u);
  ASSERT_TRUE(store.frames()[4].full);
  corrupt_file(store.frames()[4].path);

  sim::Interconnect recovered(cfg);
  sim::TrafficGenerator recovered_traffic(4, 6, tcfg, 1);
  const auto report =
      sim::recover_latest(dir.string(), recovered, &recovered_traffic);
  ASSERT_TRUE(report.recovered);
  EXPECT_EQ(report.slot, first_chain_slot);
  EXPECT_EQ(sim::state_digest(recovered), first_chain_digest);
  // The corrupt full and its three stranded deltas are all reported.
  EXPECT_EQ(report.discarded.size(), 4u);
}

TEST(CheckpointStore, PruneRetiresRetiredChains) {
  const auto dir = fresh_dir("wdm-prune");
  const auto cfg = recovery_config(2, 4);
  const auto tcfg = steady_traffic(0.8, 2.0);
  sim::Interconnect ic(cfg);
  sim::TrafficGenerator traffic(2, 4, tcfg, 5);

  sim::CheckpointPolicy policy;
  policy.dir = dir.string();
  policy.full_every = 2;
  policy.keep_fulls = 2;
  sim::CheckpointStore store(policy);
  for (std::uint64_t slot = 0; slot < 12; ++slot) {
    ic.step(traffic.next_slot(ic.input_channel_busy()));
    store.write(ic, &traffic);
  }

  // keep_fulls=2 with full_every=2 retains at most the two newest
  // full+delta chains (4 frames); everything older is gone from disk.
  std::size_t on_disk = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    EXPECT_TRUE(entry.path().filename().string().starts_with("ckpt-"));
    on_disk += 1;
  }
  EXPECT_EQ(on_disk, store.frames().size());
  EXPECT_LE(on_disk, 4u);

  sim::Interconnect recovered(cfg);
  sim::TrafficGenerator recovered_traffic(2, 4, tcfg, 1);
  const auto report =
      sim::recover_latest(dir.string(), recovered, &recovered_traffic);
  ASSERT_TRUE(report.recovered);
  EXPECT_EQ(sim::state_digest(recovered), sim::state_digest(ic));
}

TEST(CheckpointStore, RestartedStoreContinuesTheDirectory) {
  const auto dir = fresh_dir("wdm-restart");
  const auto cfg = recovery_config(2, 4);
  const auto tcfg = steady_traffic(0.8, 2.0);
  sim::Interconnect ic(cfg);
  sim::TrafficGenerator traffic(2, 4, tcfg, 5);
  sim::CheckpointPolicy policy;
  policy.dir = dir.string();
  policy.full_every = 4;
  policy.keep_fulls = 8;
  {
    sim::CheckpointStore first(policy);
    for (std::uint64_t slot = 0; slot < 3; ++slot) {
      ic.step(traffic.next_slot(ic.input_channel_busy()));
      first.write(ic, &traffic);
    }
  }

  // A restarted store must not extend the adopted chain with deltas it
  // never saw: its first frame is a fresh full, numbered after the old
  // files, and recovery lands on the new chain's head.
  sim::CheckpointStore second(policy);
  ic.step(traffic.next_slot(ic.input_channel_busy()));
  second.write(ic, &traffic);
  ASSERT_EQ(second.frames().size(), 1u);
  EXPECT_TRUE(second.frames().front().full);

  sim::Interconnect recovered(cfg);
  sim::TrafficGenerator recovered_traffic(2, 4, tcfg, 1);
  const auto report =
      sim::recover_latest(dir.string(), recovered, &recovered_traffic);
  ASSERT_TRUE(report.recovered);
  EXPECT_EQ(report.slot, ic.current_slot());
  EXPECT_EQ(sim::state_digest(recovered), sim::state_digest(ic));
}

TEST(CheckpointStore, EmptyOrMissingDirectoryReportsNoChain) {
  const auto dir = fresh_dir("wdm-empty");
  const auto cfg = recovery_config(2, 4);
  sim::Interconnect ic(cfg);
  {  // directory does not exist at all
    const auto report = sim::recover_latest((dir / "nope").string(), ic);
    EXPECT_FALSE(report.recovered);
  }
  {  // directory exists but holds no frames
    fs::create_directories(dir);
    const auto report = sim::recover_latest(dir.string(), ic);
    EXPECT_FALSE(report.recovered);
    EXPECT_TRUE(report.discarded.empty());
  }
}

TEST(CheckpointStore, TrafficPresenceMustMatchTheChain) {
  const auto dir = fresh_dir("wdm-traffic-mismatch");
  const auto cfg = recovery_config(2, 4);
  const auto tcfg = steady_traffic(0.8, 2.0);
  sim::Interconnect ic(cfg);
  sim::TrafficGenerator traffic(2, 4, tcfg, 5);
  sim::CheckpointPolicy policy;
  policy.dir = dir.string();
  sim::CheckpointStore store(policy);
  ic.step(traffic.next_slot(ic.input_channel_busy()));
  store.write(ic, &traffic);

  // Frames carry traffic state; recovering without a generator must not
  // half-restore — the frame is rejected, not partially applied.
  sim::Interconnect recovered(cfg);
  const auto report = sim::recover_latest(dir.string(), recovered, nullptr);
  EXPECT_FALSE(report.recovered);
  ASSERT_EQ(report.discarded.size(), 1u);
}

}  // namespace
}  // namespace wdm
