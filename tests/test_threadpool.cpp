// Thread pool: completion, exception propagation, parallel_for coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/threadpool.hpp"

namespace wdm {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  util::ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  util::ThreadPool pool(1);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  util::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSubrange) {
  util::ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10+...+19
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  util::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [&](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  util::ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyMoreTasksThanThreads) {
  util::ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 1000, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, SplitRangesPartitionsExactly) {
  // 10 over 3 parts: earlier chunks take the remainder.
  const auto r = util::split_ranges(0, 10, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0], (std::pair<std::size_t, std::size_t>{0, 4}));
  EXPECT_EQ(r[1], (std::pair<std::size_t, std::size_t>{4, 7}));
  EXPECT_EQ(r[2], (std::pair<std::size_t, std::size_t>{7, 10}));

  // Fewer items than parts: one singleton chunk per item, none empty.
  const auto s = util::split_ranges(5, 8, 16);
  ASSERT_EQ(s.size(), 3u);
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].first, 5 + i);
    EXPECT_EQ(s[i].second, 6 + i);
  }

  EXPECT_TRUE(util::split_ranges(4, 4, 3).empty());
  EXPECT_TRUE(util::split_ranges(0, 10, 0).empty());

  // Generic partition property: in order, non-empty, covering exactly.
  for (std::size_t n : {1u, 2u, 7u, 64u, 257u}) {
    for (std::size_t parts : {1u, 2u, 3u, 8u, 300u}) {
      const auto ranges = util::split_ranges(10, 10 + n, parts);
      ASSERT_EQ(ranges.size(), std::min(n, parts));
      std::size_t expect = 10;
      for (const auto& [lo, hi] : ranges) {
        EXPECT_EQ(lo, expect);
        EXPECT_LT(lo, hi);
        expect = hi;
      }
      EXPECT_EQ(expect, 10 + n);
    }
  }
}

TEST(ThreadPool, ParallelForRunsEachChunkContiguouslyOnOneThread) {
  // The documented design: one task per contiguous chunk, so every index of
  // a chunk runs on the same thread — no shared-cursor interleaving.
  util::ThreadPool pool(4);
  constexpr std::size_t kN = 103;
  std::vector<std::thread::id> owner(kN);
  std::vector<std::atomic<int>> visits(kN);
  pool.parallel_for(0, kN, [&](std::size_t i) {
    owner[i] = std::this_thread::get_id();
    visits[i].fetch_add(1);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  const auto chunks = util::split_ranges(0, kN, pool.size());
  ASSERT_EQ(chunks.size(), 4u);
  for (const auto& [lo, hi] : chunks) {
    for (std::size_t i = lo + 1; i < hi; ++i) {
      EXPECT_EQ(owner[i], owner[lo]) << "index " << i << " left its chunk";
    }
  }
}

TEST(ThreadPool, ParallelForSingleChunkRunsInline) {
  // One worker (or n == 1) means one chunk, which runs on the caller: no
  // queue round-trip for work that cannot be parallelised anyway.
  util::ThreadPool pool(1);
  std::thread::id ran_on;
  pool.parallel_for(0, 1, [&](std::size_t) {
    ran_on = std::this_thread::get_id();
  });
  EXPECT_EQ(ran_on, std::this_thread::get_id());
}

}  // namespace
}  // namespace wdm
