// Thread pool: completion, exception propagation, parallel_for coverage.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/threadpool.hpp"

namespace wdm {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  util::ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, SubmitPropagatesExceptions) {
  util::ThreadPool pool(1);
  auto f = pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  util::ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  util::ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ParallelForSubrange) {
  util::ThreadPool pool(2);
  std::atomic<std::size_t> sum{0};
  pool.parallel_for(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), std::size_t{145});  // 10+...+19
}

TEST(ThreadPool, ParallelForPropagatesFirstException) {
  util::ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 8,
                                 [&](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  util::ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ManyMoreTasksThanThreads) {
  util::ThreadPool pool(1);
  std::atomic<int> counter{0};
  pool.parallel_for(0, 1000, [&](std::size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 1000);
}

}  // namespace
}  // namespace wdm
