// Golden regression pins: fixed-seed end-to-end runs must reproduce these
// exact values on every platform and after every refactor. A change here is
// a *behaviour* change — intentional ones must update the constants and the
// recorded experiment outputs together.
#include <gtest/gtest.h>

#include "core/break_first_available.hpp"
#include "sim/async.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace wdm {
namespace {

TEST(Regression, RngStreamIsStable) {
  // xoshiro256** seeded via splitmix64: the stream is part of the public
  // reproducibility contract (seeds in EXPERIMENTS.md reference it).
  util::Rng rng(2026);
  EXPECT_EQ(rng.next(), 10583478199052185109ULL);
  EXPECT_EQ(rng.next(), 5232962402658359512ULL);
  EXPECT_EQ(rng.next(), 14988153452874227418ULL);
}

TEST(Regression, SlottedSimulationIsStable) {
  sim::SimulationConfig cfg;
  cfg.interconnect.n_fibers = 4;
  cfg.interconnect.scheme = core::ConversionScheme::circular(8, 1, 1);
  cfg.interconnect.arbitration = core::Arbitration::kFifo;
  cfg.traffic.load = 0.75;
  cfg.slots = 2000;
  cfg.warmup = 200;
  cfg.seed = 12345;
  const auto r = sim::run_simulation(cfg);
  EXPECT_EQ(r.arrivals, 47948u);
  EXPECT_EQ(r.losses, 2260u);
}

TEST(Regression, AsyncSimulationIsStable) {
  sim::AsyncConfig cfg;
  cfg.n_fibers = 4;
  cfg.scheme = core::ConversionScheme::circular(8, 1, 1);
  cfg.load = 0.75;
  cfg.arrivals = 50000;
  cfg.warmup = 5000;
  cfg.seed = 999;
  const auto r = sim::run_async_simulation(cfg);
  EXPECT_EQ(r.blocked, 11523u);
}

TEST(Regression, BfaAssignmentIsStable) {
  // The paper's running example has multiple maximum matchings; the
  // deterministic winner rule pins this exact one.
  const core::RequestVector rv{2, 1, 0, 1, 1, 2};
  const auto out = core::break_first_available(
      rv, core::ConversionScheme::circular(6, 1, 1));
  const std::vector<core::Wavelength> expected{0, 1, 3, 4, 5, 0};
  EXPECT_EQ(out.source, expected);
  EXPECT_EQ(out.granted, 6);
}

}  // namespace
}  // namespace wdm
