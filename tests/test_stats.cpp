// Statistics accumulators: Welford correctness, merge laws, Wilson bounds.
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace wdm {
namespace {

TEST(RunningStats, EmptyIsZero) {
  const util::RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, KnownSmallSample) {
  util::RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.sum(), 40.0, 1e-12);
}

TEST(RunningStats, MergeEqualsSequential) {
  util::Rng rng(1);
  util::RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 10 - 3;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_EQ(a.min(), whole.min());
  EXPECT_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  util::RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  b.merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

TEST(Proportion, ValueAndConservation) {
  util::Proportion p;
  p.add(true);
  p.add(false);
  p.add(false);
  p.add(false);
  EXPECT_EQ(p.trials(), 4u);
  EXPECT_EQ(p.successes(), 1u);
  EXPECT_DOUBLE_EQ(p.value(), 0.25);
}

TEST(Proportion, WilsonBracketsAndStaysInUnitInterval) {
  util::Proportion p;
  p.add(3, 1000);
  EXPECT_GT(p.wilson_low(), 0.0);
  EXPECT_LT(p.wilson_low(), p.value());
  EXPECT_GT(p.wilson_high(), p.value());
  EXPECT_LT(p.wilson_high(), 1.0);

  util::Proportion zero;
  zero.add(0, 50);
  EXPECT_EQ(zero.wilson_low(), 0.0);
  EXPECT_GT(zero.wilson_high(), 0.0);

  util::Proportion empty;
  EXPECT_EQ(empty.wilson_low(), 0.0);
  EXPECT_EQ(empty.wilson_high(), 1.0);
}

TEST(Proportion, IntervalShrinksWithSamples) {
  util::Proportion small, large;
  small.add(5, 50);
  large.add(500, 5000);
  EXPECT_LT(large.wilson_high() - large.wilson_low(),
            small.wilson_high() - small.wilson_low());
}

TEST(Histogram, CountsAndClamping) {
  util::Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 4
  h.add(5.0);    // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

TEST(Histogram, QuantileMonotone) {
  util::Histogram h(0.0, 1.0, 20);
  util::Rng rng(2);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform01());
  const double q25 = h.quantile(0.25);
  const double q50 = h.quantile(0.5);
  const double q75 = h.quantile(0.75);
  EXPECT_LT(q25, q50);
  EXPECT_LT(q50, q75);
  EXPECT_NEAR(q50, 0.5, 0.05);
}

TEST(Histogram, MergeRequiresSameLayout) {
  util::Histogram a(0.0, 1.0, 4), b(0.0, 1.0, 4), c(0.0, 2.0, 4);
  a.add(0.1);
  b.add(0.9);
  a.merge(b);
  EXPECT_EQ(a.total(), 2u);
  EXPECT_THROW(a.merge(c), std::logic_error);
}

TEST(Jain, KnownValues) {
  EXPECT_DOUBLE_EQ(util::jain_fairness({}), 1.0);
  EXPECT_DOUBLE_EQ(util::jain_fairness({5.0, 5.0, 5.0}), 1.0);
  // One user hogging everything among n: index = 1/n.
  EXPECT_NEAR(util::jain_fairness({1.0, 0.0, 0.0, 0.0}), 0.25, 1e-12);
  EXPECT_DOUBLE_EQ(util::jain_fairness({0.0, 0.0}), 1.0);  // vacuous
}

}  // namespace
}  // namespace wdm
