// Breaking (Definition 2, Lemma 2): the closed-form reduced adjacency must
// equal literal crossing-edge deletion, and the rotated ordering must be
// staircase convex.
#include <gtest/gtest.h>

#include <set>

#include "core/breaking.hpp"
#include "core/crossing.hpp"
#include "graph/hopcroft_karp.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::Channel;
using core::ConversionScheme;
using core::RequestGraph;
using core::RequestVector;
using core::Wavelength;

TEST(Breaking, RotationRoundTrip) {
  const std::int32_t k = 7;
  for (Channel u = 0; u < k; ++u) {
    for (Channel v = 0; v < k; ++v) {
      if (v == u) {
        EXPECT_EQ(core::channel_to_rotated(u, v, k), k - 1);
        continue;
      }
      const auto pos = core::channel_to_rotated(u, v, k);
      EXPECT_GE(pos, 0);
      EXPECT_LE(pos, k - 2);
      EXPECT_EQ(core::rotated_to_channel(u, pos, k), v);
    }
  }
}

TEST(Breaking, RejectsInvalidSchemes) {
  EXPECT_THROW(core::reduced_adjacency(ConversionScheme::non_circular(6, 1, 1),
                                       0, 0, 1),
               std::logic_error);
  EXPECT_THROW(
      core::reduced_adjacency(ConversionScheme::full_range(6), 0, 0, 1),
      std::logic_error);
  // u must be adjacent to w_i.
  EXPECT_THROW(core::reduced_adjacency(ConversionScheme::circular(6, 1, 1),
                                       0, 3, 1),
               std::logic_error);
}

TEST(Breaking, UntouchedRunKeepsFullDegree) {
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  // Breaking at (λ0, b0): λ4's run {3,4,5} does not touch b0 — unchanged.
  const auto iv = core::reduced_adjacency(scheme, 0, 0, 4);
  EXPECT_EQ(iv.length(), 3);
  std::set<Channel> channels;
  for (auto pos = iv.begin; pos <= iv.end; ++pos) {
    channels.insert(core::rotated_to_channel(0, pos, 8));
  }
  EXPECT_EQ(channels, (std::set<Channel>{3, 4, 5}));
}

TEST(Breaking, BreakingWavelengthGroupKeepsPlusSide) {
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  // Breaking at (λ3, b2) = the minus-edge: remaining λ3 requests keep
  // [u+1, w+f] = {3, 4}.
  const auto iv = core::reduced_adjacency(scheme, 3, 2, 3);
  std::set<Channel> channels;
  for (auto pos = iv.begin; pos <= iv.end; ++pos) {
    channels.insert(core::rotated_to_channel(2, pos, 8));
  }
  EXPECT_EQ(channels, (std::set<Channel>{3, 4}));

  // Breaking at the plus-edge (λ3, b4): remaining group keeps nothing of the
  // plus side beyond b4 → [u+1, w+f] is empty.
  const auto iv2 = core::reduced_adjacency(scheme, 3, 4, 3);
  EXPECT_TRUE(iv2.empty());
}

TEST(Breaking, DegreeOneBreaksToIsolation) {
  const auto scheme = ConversionScheme::circular(5, 0, 0);
  // d = 1: breaking at (λ2, b2) leaves other λ2 requests isolated.
  const auto iv = core::reduced_adjacency(scheme, 2, 2, 2);
  EXPECT_TRUE(iv.empty());
  // Other wavelengths keep their single channel.
  const auto iv3 = core::reduced_adjacency(scheme, 2, 2, 3);
  EXPECT_EQ(iv3.length(), 1);
  EXPECT_EQ(core::rotated_to_channel(2, iv3.begin, 5), 3);
}

// --- Closed form == literal Definition 2, across random instances ----------

struct BreakCase {
  std::int32_t k, e, f;
};

class BreakingProperties : public ::testing::TestWithParam<BreakCase> {};

TEST_P(BreakingProperties, ClosedFormMatchesReferenceDeletion) {
  const auto [k, e, f] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 101 + e * 31 + f * 3));
  for (int trial = 0; trial < 30; ++trial) {
    const auto rv = test::random_request_vector(rng, k, 3, 0.4);
    if (rv.empty()) continue;
    const RequestGraph g(scheme, rv);
    // Breaking vertex: first request of the first nonempty wavelength — the
    // convention the scheduler uses (every other group member has j > i).
    const Wavelength w_i = rv.first_nonempty();
    std::int32_t i = 0;
    while (g.wavelength_of(i) != w_i) ++i;

    for (const Channel u : scheme.adjacency_list(w_i)) {
      const auto reference = core::reduced_graph_reference(g, i, u);
      for (std::int32_t j = 0; j < g.n_requests(); ++j) {
        if (j == i) continue;
        std::set<Channel> expected(reference.neighbors(j).begin(),
                                   reference.neighbors(j).end());
        std::set<Channel> closed;
        const auto iv =
            core::reduced_adjacency(scheme, w_i, u, g.wavelength_of(j));
        for (auto pos = iv.begin; pos <= iv.end; ++pos) {
          closed.insert(core::rotated_to_channel(u, pos, k));
        }
        EXPECT_EQ(closed, expected)
            << "k=" << k << " e=" << e << " f=" << f << " w_i=" << w_i
            << " u=" << u << " j=" << j << " W(j)=" << g.wavelength_of(j);
      }
    }
  }
}

TEST_P(BreakingProperties, LemmaTwoRotatedOrderingIsStaircase) {
  const auto [k, e, f] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 103 + e * 37 + f * 5) + 7);
  for (int trial = 0; trial < 30; ++trial) {
    const auto rv = test::random_request_vector(rng, k, 3, 0.5);
    const Wavelength w_i = rv.first_nonempty();
    if (w_i == core::kNone) continue;
    for (const Channel u : scheme.adjacency_list(w_i)) {
      graph::Interval prev{0, -1};
      bool seen = false;
      for (std::int32_t kappa = 0; kappa < k; ++kappa) {
        const Wavelength w = core::mod_k(w_i + kappa, k);
        const std::int32_t count = rv.count(w) - (w == w_i ? 1 : 0);
        if (count <= 0) continue;
        const auto iv = core::reduced_adjacency(scheme, w_i, u, w);
        if (iv.empty()) continue;
        if (seen) {
          EXPECT_GE(iv.begin, prev.begin) << "u=" << u << " w=" << w;
          EXPECT_GE(iv.end, prev.end) << "u=" << u << " w=" << w;
        }
        prev = iv;
        seen = true;
      }
    }
  }
}

TEST_P(BreakingProperties, LemmaThreeBestBreakRecoversMaximum) {
  // For the chosen a_i, max over its d breaks of (1 + max matching of the
  // reduced graph) equals the maximum matching of G (Lemmas 3 + 4).
  const auto [k, e, f] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 107 + e * 41 + f * 7) + 13);
  for (int trial = 0; trial < 30; ++trial) {
    const auto rv = test::random_request_vector(rng, k, 3, 0.4);
    if (rv.empty()) continue;
    const RequestGraph g(scheme, rv);
    const Wavelength w_i = rv.first_nonempty();
    std::int32_t i = 0;
    while (g.wavelength_of(i) != w_i) ++i;

    const auto maximum = graph::hopcroft_karp(g.to_bipartite()).size();
    std::size_t best = 0;
    for (const Channel u : scheme.adjacency_list(w_i)) {
      const auto reduced = core::reduced_graph_reference(g, i, u);
      best = std::max(best, 1 + graph::hopcroft_karp(reduced).size());
    }
    EXPECT_EQ(best, maximum) << "k=" << k << " e=" << e << " f=" << f;
  }
}

TEST_P(BreakingProperties, LemmaFourHoldsForEveryLeftVertex) {
  // Lemma 4: for ANY left vertex a_i, at least one of its incident edges is
  // in some no-crossing-edge maximum matching — equivalently (via Lemma 3),
  // some break at a_i recovers the maximum. The scheduler only uses the
  // first vertex; this verifies the paper's stronger statement.
  const auto [k, e, f] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 109 + e * 43 + f * 11) + 23);
  for (int trial = 0; trial < 8; ++trial) {
    const auto rv = test::random_request_vector(rng, k, 2, 0.4);
    if (rv.empty()) continue;
    const RequestGraph g(scheme, rv);
    const auto maximum = graph::hopcroft_karp(g.to_bipartite()).size();
    for (std::int32_t i = 0; i < g.n_requests(); ++i) {
      // reduced_graph_reference implements Definition 2 for any vertex; the
      // same-wavelength split is handled by the Definition-1 predicate.
      std::size_t best = 0;
      for (const Channel u : scheme.adjacency_list(g.wavelength_of(i))) {
        const auto reduced = core::reduced_graph_reference(g, i, u);
        best = std::max(best, 1 + graph::hopcroft_karp(reduced).size());
      }
      EXPECT_EQ(best, maximum)
          << "k=" << k << " e=" << e << " f=" << f << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BreakingProperties,
    ::testing::Values(BreakCase{4, 1, 1}, BreakCase{6, 1, 1}, BreakCase{6, 2, 1},
                      BreakCase{8, 2, 2}, BreakCase{5, 0, 2}, BreakCase{5, 2, 0},
                      BreakCase{9, 3, 3}, BreakCase{7, 2, 3}, BreakCase{10, 4, 4},
                      BreakCase{3, 1, 0}, BreakCase{16, 7, 7}),
    [](const ::testing::TestParamInfo<BreakCase>& pinfo) {
      const auto& p = pinfo.param;
      return "k" + std::to_string(p.k) + "_e" + std::to_string(p.e) + "_f" +
             std::to_string(p.f);
    });

}  // namespace
}  // namespace wdm
