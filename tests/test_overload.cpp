// Overload control plane: admission (token buckets + bounded ingress
// queues + drop policies), deadline-bounded degradation (op-budget plan,
// validity, determinism, hysteresis), and the extended conservation law
// under randomized overload.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/distributed.hpp"
#include "sim/admission.hpp"
#include "sim/checkpoint.hpp"
#include "sim/interconnect.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "sim/traffic.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace wdm {
namespace {

sim::InterconnectConfig overload_config(std::int32_t n_fibers,
                                        std::int32_t k) {
  sim::InterconnectConfig cfg;
  cfg.n_fibers = n_fibers;
  cfg.scheme = core::ConversionScheme::circular(k, 1, 1);
  cfg.seed = 7;
  return cfg;
}

core::SlotRequest request(std::int32_t input_fiber, std::int32_t wavelength,
                          std::int32_t output_fiber, std::uint64_t id,
                          std::int32_t priority = 0) {
  return core::SlotRequest{input_fiber, wavelength, output_fiber, id, 1,
                           priority};
}

// ----------------------------------------------------------- admission

TEST(Admission, TokenBucketMetersAndQueueDrainsInOrder) {
  auto cfg = overload_config(1, 4);
  cfg.admission.enabled = true;
  cfg.admission.tokens_per_slot = 1.0;
  cfg.admission.bucket_depth = 1.0;
  cfg.admission.queue_capacity = 8;
  sim::Interconnect ic(cfg);
  sim::MetricsCollector metrics(1, 4);

  // Three arrivals against one token: one admitted, two parked.
  std::vector<core::SlotRequest> burst{request(0, 0, 0, 1), request(0, 1, 0, 2),
                                       request(0, 2, 0, 3)};
  auto s = ic.step(burst);
  metrics.record_slot(s);
  EXPECT_EQ(s.arrivals, 3u);
  EXPECT_EQ(s.granted, 1u);
  EXPECT_EQ(s.deferred_overload, 2u);
  EXPECT_EQ(s.rejected, 0u);
  EXPECT_EQ(ic.ingress_queue_depth(), 2u);

  // The queue drains one per slot as the bucket refills, ahead of nothing.
  s = ic.step({});
  metrics.record_slot(s);
  EXPECT_EQ(s.ingress_releases, 1u);
  EXPECT_EQ(s.granted, 1u);
  EXPECT_EQ(ic.ingress_queue_depth(), 1u);
  s = ic.step({});
  metrics.record_slot(s);
  EXPECT_EQ(s.ingress_releases, 1u);
  EXPECT_EQ(s.granted, 1u);
  EXPECT_EQ(ic.ingress_queue_depth(), 0u);
  EXPECT_EQ(metrics.shed_overload(), 0u);
}

TEST(Admission, TailDropShedsWhenQueueIsFull) {
  auto cfg = overload_config(1, 4);
  cfg.admission.enabled = true;
  cfg.admission.tokens_per_slot = 1.0;
  cfg.admission.bucket_depth = 1.0;
  cfg.admission.queue_capacity = 1;
  cfg.admission.drop_policy = sim::DropPolicy::kTailDrop;
  sim::Interconnect ic(cfg);
  sim::MetricsCollector metrics(1, 4);

  std::vector<core::SlotRequest> burst{request(0, 0, 0, 1), request(0, 1, 0, 2),
                                       request(0, 2, 0, 3)};
  const auto s = ic.step(burst);
  metrics.record_slot(s);
  EXPECT_EQ(s.granted, 1u);
  EXPECT_EQ(s.deferred_overload, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.shed_overload, 1u);
  EXPECT_EQ(ic.ingress_queue_depth(), 1u);
}

TEST(Admission, PriorityShedEvictsWorseClassForBetter) {
  auto cfg = overload_config(1, 4);
  cfg.admission.enabled = true;
  cfg.admission.tokens_per_slot = 1.0;
  cfg.admission.bucket_depth = 1.0;
  cfg.admission.queue_capacity = 1;
  cfg.admission.drop_policy = sim::DropPolicy::kPriorityShed;
  sim::Interconnect ic(cfg);
  sim::MetricsCollector metrics(1, 4);

  // Token goes to the first class-2 request; the second queues; the class-0
  // arrival finds the queue full and evicts the queued class-2 request.
  std::vector<core::SlotRequest> burst{request(0, 0, 0, 1, 2),
                                       request(0, 1, 0, 2, 2),
                                       request(0, 2, 0, 3, 0)};
  auto s = ic.step(burst);
  metrics.record_slot(s);
  EXPECT_EQ(s.deferred_overload, 2u);
  EXPECT_EQ(s.ingress_releases, 1u);  // the eviction left the queue
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.shed_overload, 1u);
  EXPECT_EQ(ic.ingress_queue_depth(), 1u);

  // A same-or-worse class arrival cannot evict: it is shed instead.
  const std::vector<core::SlotRequest> next{request(0, 3, 0, 4, 0),
                                            request(0, 0, 0, 5, 1)};
  s = ic.step(next);
  metrics.record_slot(s);
  // Slot drains the queued class-0 entry with the refilled token first, so
  // the fresh class-0 request queues and the class-1 finds only a peer-or-
  // better entry queued.
  EXPECT_EQ(s.ingress_releases, 1u);
  EXPECT_EQ(s.shed_overload, 1u);
  EXPECT_EQ(ic.ingress_queue_depth(), 1u);
}

TEST(Admission, DisabledConfigLeavesCountersAtZero) {
  auto cfg = overload_config(2, 4);
  sim::Interconnect ic(cfg);
  EXPECT_EQ(ic.admission(), nullptr);
  const std::vector<core::SlotRequest> arrivals{request(0, 0, 0, 1),
                                                request(1, 1, 1, 2)};
  const auto s = ic.step(arrivals);
  EXPECT_EQ(s.deferred_overload, 0u);
  EXPECT_EQ(s.ingress_releases, 0u);
  EXPECT_EQ(s.shed_overload, 0u);
  EXPECT_EQ(s.granted, 2u);
}

// --------------------------------------------------------- degradation

TEST(Degradation, OpBudgetDowngradesPortsAndStaysValid) {
  // Scheduler-level: under a blown op budget every grant must still be a
  // valid matching (no channel double-grant, conversion range respected)
  // and no fiber may exceed the Hopcroft–Karp optimum on its request set.
  util::Rng rng(0xD16E57);
  for (int trial = 0; trial < 400; ++trial) {
    const auto k = static_cast<std::int32_t>(4 + rng.uniform_below(8));
    const auto scheme = core::ConversionScheme::circular(k, 1, 1);
    const auto n_fibers = static_cast<std::int32_t>(2 + rng.uniform_below(4));
    core::DistributedScheduler sched(n_fibers, scheme,
                                     core::Algorithm::kBreakFirstAvailable,
                                     core::Arbitration::kRoundRobin, 11);

    std::vector<core::SlotRequest> requests;
    std::vector<std::uint8_t> plane(
        static_cast<std::size_t>(n_fibers) * static_cast<std::size_t>(k));
    for (auto& free : plane) free = rng.bernoulli(0.7) ? 1 : 0;
    for (std::int32_t fiber = 0; fiber < n_fibers; ++fiber) {
      for (std::int32_t w = 0; w < k; ++w) {
        if (rng.bernoulli(0.5)) {
          requests.push_back(request(0, w, fiber, requests.size() + 1));
        }
      }
    }

    core::SlotBudget budget;
    // Roughly half the exact cost: some ports schedule exact, the rest are
    // planned degraded.
    budget.op_budget = static_cast<std::uint64_t>(n_fibers) *
                       static_cast<std::uint64_t>(scheme.degree()) *
                       static_cast<std::uint64_t>(k) / 2;
    std::vector<core::PortDecision> decisions(requests.size());
    sched.schedule_slot_into(requests,
                             core::AvailabilityView(plane.data(), n_fibers, k),
                             nullptr, nullptr, decisions, &budget);
    // The budget is best-effort: a degraded port still costs its O(k) sweep,
    // so the charge may overshoot by at most k per degraded port — never by
    // a full exact sweep.
    EXPECT_LE(budget.ops_charged, budget.ops_exact_estimate);
    EXPECT_LE(budget.ops_charged,
              budget.op_budget + static_cast<std::uint64_t>(n_fibers) *
                                     static_cast<std::uint64_t>(k));
    if (budget.ops_exact_estimate > budget.op_budget) {
      EXPECT_GT(budget.degraded_ports, 0) << "trial " << trial;
    }

    for (std::int32_t fiber = 0; fiber < n_fibers; ++fiber) {
      core::RequestVector rv(k);
      const auto row = static_cast<std::ptrdiff_t>(fiber) * k;
      std::vector<std::uint8_t> mask(plane.begin() + row,
                                     plane.begin() + row + k);
      std::vector<std::uint8_t> channel_used(static_cast<std::size_t>(k), 0);
      std::int32_t granted = 0;
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (requests[i].output_fiber != fiber) continue;
        rv.add(requests[i].wavelength);
        if (!decisions[i].granted) continue;
        granted += 1;
        const auto ch = decisions[i].channel;
        ASSERT_GE(ch, 0);
        ASSERT_LT(ch, k);
        EXPECT_EQ(channel_used[static_cast<std::size_t>(ch)], 0)
            << "channel double-granted, trial " << trial;
        channel_used[static_cast<std::size_t>(ch)] = 1;
        EXPECT_NE(mask[static_cast<std::size_t>(ch)], 0)
            << "occupied channel granted, trial " << trial;
        EXPECT_TRUE(scheme.can_convert(requests[i].wavelength, ch))
            << "conversion range violated, trial " << trial;
      }
      EXPECT_LE(granted, test::oracle_max_matching(scheme, rv, mask))
          << "degraded port beat the maximum-matching oracle, trial " << trial;
    }
  }
}

TEST(Degradation, OpBudgetPlanIsPoolIndependent) {
  // The degrade plan is computed serially in fiber order before scheduling,
  // so the same slot degrades the same ports with or without a thread pool.
  const auto scheme = core::ConversionScheme::circular(8, 1, 1);
  util::Rng rng(0xCAFE);
  util::ThreadPool pool(4);
  for (int trial = 0; trial < 50; ++trial) {
    core::DistributedScheduler serial(6, scheme,
                                      core::Algorithm::kBreakFirstAvailable,
                                      core::Arbitration::kRoundRobin, 3);
    core::DistributedScheduler pooled(6, scheme,
                                      core::Algorithm::kBreakFirstAvailable,
                                      core::Arbitration::kRoundRobin, 3);
    std::vector<core::SlotRequest> requests;
    for (std::int32_t fiber = 0; fiber < 6; ++fiber) {
      for (std::int32_t w = 0; w < 8; ++w) {
        if (rng.bernoulli(0.6)) {
          requests.push_back(request(0, w, fiber, requests.size() + 1));
        }
      }
    }
    core::SlotBudget budget_a;
    core::SlotBudget budget_b;
    budget_a.op_budget = budget_b.op_budget = 60;
    std::vector<core::PortDecision> a(requests.size());
    std::vector<core::PortDecision> b(requests.size());
    serial.schedule_slot_into(requests, core::AvailabilityView{}, nullptr,
                              nullptr, a, &budget_a);
    pooled.schedule_slot_into(requests, core::AvailabilityView{}, nullptr,
                              &pool, b, &budget_b);
    EXPECT_EQ(budget_a.degraded_ports, budget_b.degraded_ports);
    EXPECT_EQ(budget_a.ops_charged, budget_b.ops_charged);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      ASSERT_EQ(a[i].granted, b[i].granted) << "trial " << trial;
      ASSERT_EQ(a[i].channel, b[i].channel) << "trial " << trial;
      ASSERT_EQ(a[i].reason, b[i].reason) << "trial " << trial;
    }
  }
}

TEST(Degradation, HysteresisEntersAndRecovers) {
  auto cfg = overload_config(4, 8);
  cfg.degrade.op_budget = 32;  // one exact d*k port (3*8) fits; two do not
  cfg.degrade.recovery_slots = 3;
  sim::Interconnect ic(cfg);
  sim::MetricsCollector metrics(4, 8);

  // Saturating slot: every fiber has pending work, the budget blows, and
  // hysteresis latches degraded mode.
  std::vector<core::SlotRequest> heavy;
  for (std::int32_t fiber = 0; fiber < 4; ++fiber) {
    for (std::int32_t w = 0; w < 8; ++w) {
      heavy.push_back(request(w % 4, w, fiber, heavy.size() + 1));
    }
  }
  auto s = ic.step(heavy);
  metrics.record_slot(s);
  EXPECT_GT(s.degraded_ports, 0u);
  EXPECT_TRUE(ic.degraded_mode());

  // While latched, even light slots schedule degraded (force_degraded) —
  // and a light slot whose exact cost fits the budget counts as calm.
  const std::vector<core::SlotRequest> light{request(0, 0, 0, 1000)};
  s = ic.step(light);
  metrics.record_slot(s);
  EXPECT_TRUE(ic.degraded_mode());
  EXPECT_EQ(s.degraded_ports, 1u);

  // Two more calm (idle) slots complete recovery_slots = 3 and re-arm.
  s = ic.step({});
  metrics.record_slot(s);
  EXPECT_TRUE(ic.degraded_mode());
  s = ic.step({});
  metrics.record_slot(s);
  EXPECT_FALSE(ic.degraded_mode());
  EXPECT_GT(metrics.degraded_slots(), 0u);
}

// ------------------------------------------------- conservation (fuzz)

// ------------------------------------------------- adaptive admission

TEST(AdaptiveAdmission, RateRisesUnderBacklogAndStaysClamped) {
  auto cfg = overload_config(1, 4);
  cfg.admission.enabled = true;
  cfg.admission.tokens_per_slot = 1.0;
  cfg.admission.bucket_depth = 1.0;
  cfg.admission.queue_capacity = 64;
  cfg.admission.adaptive.enabled = true;
  cfg.admission.adaptive.min_tokens_per_slot = 0.25;
  cfg.admission.adaptive.max_tokens_per_slot = 3.0;
  cfg.admission.adaptive.alpha = 0.5;
  cfg.admission.adaptive.update_every = 4;
  cfg.admission.adaptive.hold_ticks = 1;
  sim::Interconnect ic(cfg);
  ASSERT_NE(ic.admission(), nullptr);
  EXPECT_DOUBLE_EQ(ic.admission()->token_rate(0), 1.0);

  // Sustained pressure: 3 distinct-wavelength arrivals per slot against an
  // initial rate of 1 builds ingress backlog; the controller must raise the
  // rate above the static config, and never past the ceiling.
  double peak = 0.0;
  for (std::uint64_t slot = 0; slot < 64; ++slot) {
    std::vector<core::SlotRequest> burst{
        request(0, 0, 0, slot * 3 + 1), request(0, 1, 0, slot * 3 + 2),
        request(0, 2, 0, slot * 3 + 3)};
    ic.step(burst);
    const double rate = ic.admission()->token_rate(0);
    EXPECT_GE(rate, cfg.admission.adaptive.min_tokens_per_slot);
    EXPECT_LE(rate, cfg.admission.adaptive.max_tokens_per_slot);
    peak = std::max(peak, rate);
  }
  EXPECT_GT(peak, 1.0);
  EXPECT_GT(ic.admission()->grant_estimate(0), 0.0);

  // Starvation: with no arrivals the grant estimate decays and the rate
  // settles back down to the floor, never below it.
  for (std::uint64_t slot = 0; slot < 256; ++slot) ic.step({});
  const double idle_rate = ic.admission()->token_rate(0);
  EXPECT_GE(idle_rate, cfg.admission.adaptive.min_tokens_per_slot);
  EXPECT_LT(idle_rate, peak);
  EXPECT_DOUBLE_EQ(idle_rate, cfg.admission.adaptive.min_tokens_per_slot);
}

TEST(AdaptiveAdmission, StaticConfigKeepsStaticRate) {
  auto cfg = overload_config(2, 4);
  cfg.admission.enabled = true;
  cfg.admission.tokens_per_slot = 1.5;
  cfg.admission.bucket_depth = 2.0;
  sim::Interconnect ic(cfg);
  for (std::uint64_t slot = 0; slot < 32; ++slot) {
    const std::vector<core::SlotRequest> one{request(0, 0, 0, slot + 1)};
    ic.step(one);
    EXPECT_DOUBLE_EQ(ic.admission()->token_rate(0), 1.5);
    EXPECT_DOUBLE_EQ(ic.admission()->grant_estimate(0), 0.0);
  }
}

TEST(AdaptiveAdmission, ControllerStateSurvivesCheckpoint) {
  auto cfg = overload_config(2, 6);
  cfg.admission.enabled = true;
  cfg.admission.tokens_per_slot = 1.0;
  cfg.admission.bucket_depth = 2.0;
  cfg.admission.queue_capacity = 32;
  cfg.admission.adaptive.enabled = true;
  cfg.admission.adaptive.update_every = 4;
  sim::TrafficConfig tcfg;
  tcfg.load = 0.95;
  sim::TrafficGenerator traffic(2, 6, tcfg, 31);
  sim::Interconnect ic(cfg);
  for (std::uint64_t slot = 0; slot < 50; ++slot) {
    ic.step(traffic.next_slot(ic.input_channel_busy()));
  }

  std::stringstream ss;
  sim::save_checkpoint(ss, ic, traffic);
  sim::Interconnect restored(cfg);
  sim::TrafficGenerator restored_traffic(2, 6, tcfg, 1);
  sim::load_checkpoint(ss, restored, restored_traffic);
  for (std::int32_t fiber = 0; fiber < 2; ++fiber) {
    EXPECT_DOUBLE_EQ(restored.admission()->token_rate(fiber),
                     ic.admission()->token_rate(fiber));
    EXPECT_DOUBLE_EQ(restored.admission()->grant_estimate(fiber),
                     ic.admission()->grant_estimate(fiber));
  }
  EXPECT_EQ(sim::state_digest(restored), sim::state_digest(ic));

  // The controllers must keep evolving identically after the restore — the
  // tick phase (ctrl_slots_) is part of the state, not just the rates.
  for (std::uint64_t slot = 0; slot < 30; ++slot) {
    ic.step(traffic.next_slot(ic.input_channel_busy()));
    restored.step(restored_traffic.next_slot(restored.input_channel_busy()));
  }
  EXPECT_EQ(sim::state_digest(restored), sim::state_digest(ic));
}

TEST(AdaptiveAdmission, AdaptiveFlagMismatchIsRejectedOnRestore) {
  auto cfg = overload_config(1, 4);
  cfg.admission.enabled = true;
  cfg.admission.tokens_per_slot = 1.0;
  cfg.admission.adaptive.enabled = true;
  sim::Interconnect ic(cfg);
  std::stringstream ss;
  sim::save_checkpoint(ss, ic);

  auto other = cfg;
  other.admission.adaptive.enabled = false;
  sim::Interconnect target(other);
  EXPECT_THROW(sim::load_checkpoint(ss, target), std::logic_error);
}

// Replay determinism sweep: adaptive admission x wall-clock deadline x
// checkpoint/restore mid-run x thread pool. Every cell must reproduce the
// uninterrupted single-threaded run's state digest bit for bit.
TEST(AdaptiveAdmission, ReplayDeterminismSweep) {
  constexpr std::int32_t kFibers = 4;
  constexpr std::int32_t kWavelengths = 6;
  constexpr std::uint64_t kSlots = 40;
  constexpr std::uint64_t kSnapshotAt = 20;
  util::ThreadPool pool(2);

  for (const bool adaptive : {false, true}) {
    for (const bool deadline : {false, true}) {
      auto cfg = overload_config(kFibers, kWavelengths);
      cfg.admission.enabled = true;
      cfg.admission.tokens_per_slot = 1.0;
      cfg.admission.bucket_depth = 2.0;
      cfg.admission.queue_capacity = 16;
      cfg.admission.adaptive.enabled = adaptive;
      cfg.admission.adaptive.update_every = 4;
      cfg.degrade.recovery_slots = 3;
      if (deadline) cfg.degrade.slot_deadline_ns = 1;  // every slot overruns

      sim::TrafficConfig tcfg;
      tcfg.load = 0.9;
      sim::TrafficGenerator source(kFibers, kWavelengths, tcfg, 131);
      auto trace = sim::capture_trace(source, kFibers, kWavelengths, kSlots);

      sim::Interconnect original(cfg);
      original.set_deadline_log(deadline ? &trace.deadline_overruns : nullptr);
      std::stringstream checkpoint;
      for (std::size_t slot = 0; slot < trace.slots.size(); ++slot) {
        if (slot == kSnapshotAt) sim::save_checkpoint(checkpoint, original);
        original.step(trace.slots[slot]);
      }
      original.set_deadline_log(nullptr);
      if (deadline) ASSERT_FALSE(trace.deadline_overruns.empty());
      const auto want = sim::state_digest(original);

      for (const bool use_pool : {false, true}) {
        const std::string cell = std::string("adaptive=") +
                                 (adaptive ? "1" : "0") + " deadline=" +
                                 (deadline ? "1" : "0") + " pool=" +
                                 (use_pool ? "1" : "0");
        std::stringstream frame(checkpoint.str());
        sim::Interconnect resumed(cfg);
        sim::load_checkpoint(frame, resumed);
        resumed.set_deadline_script(&trace.deadline_overruns);
        for (std::size_t slot = kSnapshotAt; slot < trace.slots.size();
             ++slot) {
          resumed.step(trace.slots[slot], use_pool ? &pool : nullptr);
        }
        resumed.set_deadline_script(nullptr);
        EXPECT_EQ(sim::state_digest(resumed), want) << cell;
      }
    }
  }
}

TEST(OverloadFuzz, ConservationHoldsAtTwiceSaturation) {
  // Random 2x-overload traffic (with malformed and multi-class requests)
  // through admission + degradation + faults + retries. record_slot enforces
  //   granted + rejected + deferred_faulted + deferred_overload ==
  //       arrivals + retry_attempts + ingress_releases
  // every slot, and the queue-depth identities are checked on top.
  util::Rng rng(0x0B5E55);
  for (int round = 0; round < 12; ++round) {
    auto cfg = overload_config(4, 6);
    cfg.seed = 100 + static_cast<std::uint64_t>(round);
    cfg.policy = round % 2 == 0 ? sim::OccupiedPolicy::kNoDisturb
                                : sim::OccupiedPolicy::kRearrange;
    cfg.admission.enabled = true;
    cfg.admission.tokens_per_slot = 1.5;
    cfg.admission.bucket_depth = 3.0;
    cfg.admission.queue_capacity = 6;
    cfg.admission.drop_policy = round % 2 == 0 ? sim::DropPolicy::kTailDrop
                                               : sim::DropPolicy::kPriorityShed;
    cfg.degrade.op_budget = 40;
    cfg.degrade.recovery_slots = 2;
    cfg.retry.max_retries = 2;
    cfg.retry.queue_capacity = 3;
    cfg.faults.script = {
        sim::FaultEvent{5, sim::FaultKind::kFiber, 1, 0, false},
        sim::FaultEvent{15, sim::FaultKind::kFiber, 1, 0, true},
    };
    sim::Interconnect ic(cfg);
    sim::MetricsCollector metrics(4, 6);

    std::uint64_t deferred_total = 0;
    std::uint64_t released_total = 0;
    for (std::uint64_t slot = 0; slot < 60; ++slot) {
      std::vector<core::SlotRequest> arrivals;
      // ~2x saturation: on average two requests per output channel.
      const auto count = rng.uniform_below(2 * 4 * 6);
      for (std::uint64_t i = 0; i < count; ++i) {
        auto r = request(static_cast<std::int32_t>(rng.uniform_below(4)),
                         static_cast<std::int32_t>(rng.uniform_below(6)),
                         static_cast<std::int32_t>(rng.uniform_below(4)),
                         slot * 1000 + i,
                         static_cast<std::int32_t>(rng.uniform_below(3)));
        r.duration = static_cast<std::int32_t>(1 + rng.uniform_below(3));
        if (rng.bernoulli(0.05)) r.wavelength = 99;  // malformed
        if (rng.bernoulli(0.03)) r.output_fiber = -1;
        arrivals.push_back(r);
      }
      const auto before = ic.ingress_queue_depth();
      const auto stats = ic.step(arrivals);
      metrics.record_slot(stats);  // throws if conservation breaks
      EXPECT_EQ(ic.ingress_queue_depth(),
                before + stats.deferred_overload - stats.ingress_releases);
      EXPECT_LE(ic.retry_queue_depth(), cfg.retry.queue_capacity);
      EXPECT_LE(ic.ingress_queue_depth(), cfg.admission.queue_capacity);
      deferred_total += stats.deferred_overload;
      released_total += stats.ingress_releases;
    }
    // The run must actually have exercised the overload machinery.
    EXPECT_GT(deferred_total, 0u) << "round " << round;
    EXPECT_GT(released_total, 0u) << "round " << round;
    EXPECT_GT(metrics.shed_overload() + metrics.degraded_ports(), 0u)
        << "round " << round;
  }
}

// ---------------------------------------------------------------- soak
//
// Long-horizon run with every subsystem live at once — admission, op-budget
// degradation with hysteresis, retries, stochastic channel faults, saturating
// multi-class traffic — with the conservation law enforced every slot and a
// checkpoint round-trip digest check every few thousand slots. Skipped unless
// WDM_SOAK_TESTS=1 (the nightly CI job sets it); far too slow-by-volume for
// the PR loop, but the first place a slow state leak would surface.
TEST(OverloadSoak, LongRunConservationAndCheckpointStability) {
  if (std::getenv("WDM_SOAK_TESTS") == nullptr) {
    GTEST_SKIP() << "set WDM_SOAK_TESTS=1 to run the soak";
  }
  constexpr std::uint64_t kSlots = 50'000;
  constexpr std::uint64_t kCheckpointEvery = 5'000;

  auto cfg = overload_config(16, 8);
  cfg.retry.max_retries = 3;
  cfg.retry.queue_capacity = 32;
  cfg.faults.channels = sim::MtbfMttr{500.0, 40.0};
  // Channel churn alone rarely faults a whole feasible set at schedule time
  // (busy beats faulted at saturating load), so scripted fiber outages
  // guarantee the retry path runs: arrivals to a downed output fiber park
  // in the retry queue and re-attempt after the repair.
  for (std::uint64_t at = 1'000; at < kSlots; at += 10'000) {
    cfg.faults.script.push_back(
        sim::FaultEvent{at, sim::FaultKind::kFiber, 3, 0, false});
    cfg.faults.script.push_back(
        sim::FaultEvent{at + 200, sim::FaultKind::kFiber, 3, 0, true});
  }
  cfg.admission.enabled = true;
  cfg.admission.tokens_per_slot = 4.0;
  cfg.admission.bucket_depth = 8.0;
  cfg.admission.queue_capacity = 64;
  cfg.admission.drop_policy = sim::DropPolicy::kPriorityShed;
  cfg.degrade.op_budget = 16 * 8;  // half the saturated exact cost
  cfg.degrade.recovery_slots = 8;

  sim::TrafficConfig traffic_cfg;
  traffic_cfg.load = 1.0;  // saturating: every free input channel fires
  traffic_cfg.holding = sim::HoldingTime::kGeometric;
  traffic_cfg.mean_holding = 2.0;
  traffic_cfg.class_mix = {0.4, 0.4, 0.2};

  sim::Interconnect ic(cfg);
  sim::TrafficGenerator traffic(cfg.n_fibers, 8, traffic_cfg, 31337);
  sim::MetricsCollector metrics(cfg.n_fibers, 8);

  for (std::uint64_t slot = 1; slot <= kSlots; ++slot) {
    const auto stats = ic.step(traffic.next_slot(ic.input_channel_busy()));
    metrics.record_slot(stats);  // throws if conservation breaks
    ASSERT_LE(ic.retry_queue_depth(), cfg.retry.queue_capacity);
    ASSERT_LE(ic.ingress_queue_depth(), cfg.admission.queue_capacity);
    if (slot % kCheckpointEvery == 0) {
      std::stringstream frame;
      sim::save_checkpoint(frame, ic, traffic);
      sim::Interconnect restored(cfg);
      sim::TrafficGenerator restored_traffic(cfg.n_fibers, 8, traffic_cfg, 1);
      sim::load_checkpoint(frame, restored, restored_traffic);
      ASSERT_EQ(sim::state_digest(restored), sim::state_digest(ic))
          << "checkpoint divergence at slot " << slot;
    }
  }
  // Saturating load must have driven the whole ladder at least once.
  EXPECT_GT(metrics.shed_overload(), 0u);
  EXPECT_GT(metrics.degraded_slots(), 0u);
  EXPECT_GT(metrics.retry_attempts(), 0u);
  EXPECT_GT(metrics.rejected_faulted() + metrics.dropped_faulted(), 0u);
}

}  // namespace
}  // namespace wdm
