// Greedy maximal matching (ablation baseline): maximality, the 1/2 bound,
// and integration through the scheduler dispatch.
#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "graph/generators.hpp"
#include "graph/greedy.hpp"
#include "graph/hopcroft_karp.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

bool is_maximal(const graph::BipartiteGraph& g, const graph::Matching& m) {
  for (graph::VertexId a = 0; a < g.n_left(); ++a) {
    if (m.left_matched(a)) continue;
    for (const auto b : g.neighbors(a)) {
      if (!m.right_matched(b)) return false;  // augmentable edge left behind
    }
  }
  return true;
}

TEST(Greedy, ProducesValidMaximalMatchings) {
  util::Rng rng(515);
  for (int trial = 0; trial < 100; ++trial) {
    const auto g = graph::random_bipartite(rng, 12, 12, 0.3);
    const auto m = graph::greedy_maximal_matching(g);
    EXPECT_TRUE(graph::is_valid_matching(g, m));
    EXPECT_TRUE(is_maximal(g, m));
  }
}

TEST(Greedy, ShuffledOrderAlsoMaximal) {
  util::Rng rng(516);
  for (int trial = 0; trial < 100; ++trial) {
    const auto g = graph::random_bipartite(rng, 12, 12, 0.3);
    const auto m = graph::greedy_maximal_matching(g, rng);
    EXPECT_TRUE(graph::is_valid_matching(g, m));
    EXPECT_TRUE(is_maximal(g, m));
  }
}

TEST(Greedy, AtLeastHalfOfMaximum) {
  util::Rng rng(517);
  for (int trial = 0; trial < 150; ++trial) {
    const auto g = graph::random_bipartite(rng, 15, 15, 0.25);
    const auto greedy = graph::greedy_maximal_matching(g, rng);
    const auto maximum = graph::hopcroft_karp(g);
    EXPECT_GE(2 * greedy.size(), maximum.size());
    EXPECT_LE(greedy.size(), maximum.size());
  }
}

TEST(Greedy, CanBeStrictlySuboptimal) {
  // a0-{b0,b1}, a1-{b0}: index-order greedy takes a0-b0 and strands a1.
  graph::BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  EXPECT_EQ(graph::greedy_maximal_matching(g).size(), 1u);
  EXPECT_EQ(graph::hopcroft_karp(g).size(), 2u);
}

TEST(Greedy, SchedulerDispatch) {
  util::Rng rng(518);
  const auto scheme = core::ConversionScheme::circular(8, 1, 1);
  core::OutputPortScheduler greedy(scheme, core::Algorithm::kGreedyMaximal);
  core::OutputPortScheduler exact(scheme, core::Algorithm::kBreakFirstAvailable);
  std::int64_t greedy_total = 0, exact_total = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const auto rv = test::random_request_vector(rng, 8, 4, 0.4);
    const auto g = greedy.assign_channels(rv);
    test::expect_valid_assignment(g, rv, scheme);
    const auto e = exact.assign_channels(rv);
    EXPECT_LE(g.granted, e.granted);
    EXPECT_GE(2 * g.granted, e.granted);
    greedy_total += g.granted;
    exact_total += e.granted;
  }
  // The gap must actually show up somewhere in 60 contended trials.
  EXPECT_LT(greedy_total, exact_total);
}

}  // namespace
}  // namespace wdm
