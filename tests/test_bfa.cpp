// Break and First Available (Table 3): Theorem 2 says it finds a maximum
// matching in every circular request graph. Property sweeps check optimality
// against Hopcroft–Karp, the per-break Theorem-3 lower bound, the parallel
// variant, and the occupied-channel extension (Section V).
#include <gtest/gtest.h>

#include "core/break_first_available.hpp"
#include "core/crossing.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using core::RequestVector;

TEST(BreakFirstAvailable, EmptyRequestsGrantNothing) {
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  const auto out = core::break_first_available(RequestVector(8), scheme);
  EXPECT_EQ(out.granted, 0);
}

TEST(BreakFirstAvailable, SingleRequest) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  RequestVector rv(6);
  rv.add(3);
  const auto out = core::break_first_available(rv, scheme);
  EXPECT_EQ(out.granted, 1);
  test::expect_valid_assignment(out, rv, scheme);
}

TEST(BreakFirstAvailable, WrapAroundLoadBalancing) {
  // Circular conversion has no disadvantaged end wavelengths: three λ0
  // requests reach {λ5, λ0, λ1} and all three win (contrast the
  // EndWavelengthsAreDisadvantaged test for non-circular FA).
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  RequestVector rv(6);
  rv.add(0, 3);
  const auto out = core::break_first_available(rv, scheme);
  EXPECT_EQ(out.granted, 3);
  test::expect_valid_assignment(out, rv, scheme);
}

TEST(BreakFirstAvailable, NoConversionDegenerate) {
  const auto scheme = ConversionScheme::circular(5, 0, 0);
  RequestVector rv(5);
  rv.add(0, 2);
  rv.add(3, 1);
  const auto out = core::break_first_available(rv, scheme);
  EXPECT_EQ(out.granted, 2);
  EXPECT_EQ(out.source[0], 0);
  EXPECT_EQ(out.source[3], 3);
}

TEST(BreakFirstAvailable, RejectsNonCircularAndFullRange) {
  RequestVector rv(4);
  EXPECT_THROW(
      core::break_first_available(rv, ConversionScheme::non_circular(4, 1, 1)),
      std::logic_error);
  EXPECT_THROW(
      core::break_first_available(rv, ConversionScheme::full_range(4)),
      std::logic_error);
}

TEST(BreakFirstAvailable, OccupiedChannels) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  RequestVector rv(6);
  rv.add(0, 2);
  std::vector<std::uint8_t> mask{0, 1, 1, 1, 1, 1};  // b0 occupied
  const auto out = core::break_first_available(rv, scheme, mask);
  EXPECT_EQ(out.granted, 2);  // λ0 still reaches b5 and b1
  test::expect_valid_assignment(out, rv, scheme, mask);
}

TEST(BreakFirstAvailable, IsolatedRequestsAreSkipped) {
  // λ0's whole adjacency {b5, b0, b1} is occupied; λ3 still wins.
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  RequestVector rv(6);
  rv.add(0, 2);
  rv.add(3, 1);
  std::vector<std::uint8_t> mask{0, 0, 1, 1, 1, 0};
  const auto out = core::break_first_available(rv, scheme, mask);
  EXPECT_EQ(out.granted, 1);
  // The winner candidate breaks at λ3's first free adjacent channel, b2.
  EXPECT_EQ(out.source[2], 3);
  test::expect_valid_assignment(out, rv, scheme, mask);
}

TEST(BreakFirstAvailable, AllChannelsOccupiedGrantsNothing) {
  const auto scheme = ConversionScheme::circular(4, 1, 1);
  RequestVector rv(4);
  rv.add(1, 2);
  const std::vector<std::uint8_t> mask(4, 0);
  EXPECT_EQ(core::break_first_available(rv, scheme, mask).granted, 0);
}

TEST(BreakFirstAvailable, ParallelVariantMatchesSerial) {
  util::ThreadPool pool(3);
  util::Rng rng(99);
  const auto scheme = ConversionScheme::circular(8, 2, 2);
  for (int trial = 0; trial < 50; ++trial) {
    const auto rv = test::random_request_vector(rng, 8, 4, 0.4);
    const auto serial = core::break_first_available(rv, scheme);
    const auto parallel = core::break_first_available(rv, scheme, {}, &pool);
    EXPECT_EQ(serial.granted, parallel.granted);
    // Deterministic winner selection makes the assignments identical too.
    EXPECT_EQ(serial.source, parallel.source);
  }
}

TEST(BreakFirstAvailable, DeterministicAcrossCalls) {
  const auto scheme = ConversionScheme::circular(10, 2, 1);
  util::Rng rng(5);
  const auto rv = test::random_request_vector(rng, 10, 6, 0.5);
  const auto a = core::break_first_available(rv, scheme);
  const auto b = core::break_first_available(rv, scheme);
  EXPECT_EQ(a.source, b.source);
}

// --- Theorem 2 property sweep: BFA is maximum -------------------------------

struct BfaSweepParam {
  std::int32_t k, e, f, n_fibers;
  double load;
};

class BfaSweep : public ::testing::TestWithParam<BfaSweepParam> {};

TEST_P(BfaSweep, MatchesHopcroftKarp) {
  const auto [k, e, f, n_fibers, load] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 2027 + e * 211 + f * 13) +
                static_cast<std::uint64_t>(load * 883));
  for (int trial = 0; trial < 60; ++trial) {
    const auto rv = test::random_request_vector(rng, k, n_fibers, load);
    const auto bfa = core::break_first_available(rv, scheme);
    test::expect_valid_assignment(bfa, rv, scheme);
    EXPECT_EQ(bfa.granted, test::oracle_max_matching(scheme, rv))
        << "k=" << k << " e=" << e << " f=" << f << " trial=" << trial;
  }
}

TEST_P(BfaSweep, MatchesHopcroftKarpWithOccupiedChannels) {
  const auto [k, e, f, n_fibers, load] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 41 + e * 17 + f * 3) + 1234);
  for (int trial = 0; trial < 60; ++trial) {
    const auto rv = test::random_request_vector(rng, k, n_fibers, load);
    const auto mask = test::random_mask(rng, k, 0.6);
    const auto bfa = core::break_first_available(rv, scheme, mask);
    test::expect_valid_assignment(bfa, rv, scheme, mask);
    EXPECT_EQ(bfa.granted, test::oracle_max_matching(scheme, rv, mask))
        << "k=" << k << " e=" << e << " f=" << f << " trial=" << trial;
  }
}

TEST_P(BfaSweep, EverySingleBreakRespectsTheoremThree) {
  // Theorem 3: breaking at the δ(u)-th edge yields a matching within
  // max{δ(u)-1, d-δ(u)} of maximum — for *every* candidate edge.
  const auto [k, e, f, n_fibers, load] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 53 + e * 29 + f * 5) + 4321);
  for (int trial = 0; trial < 25; ++trial) {
    const auto rv = test::random_request_vector(rng, k, n_fibers, load);
    const auto w_i = rv.first_nonempty();
    if (w_i == core::kNone) continue;
    const auto maximum = test::oracle_max_matching(scheme, rv);
    for (const auto u : scheme.adjacency_list(w_i)) {
      const auto single = core::bfa_single_break(rv, scheme, {}, w_i, u);
      test::expect_valid_assignment(single, rv, scheme);
      EXPECT_LE(single.granted, maximum);
      const auto delta = core::delta_of(scheme, w_i, u);
      EXPECT_GE(single.granted,
                maximum - core::breaking_gap_bound(scheme.degree(), delta))
          << "k=" << k << " u=" << u << " delta=" << delta;
    }
  }
}

TEST_P(BfaSweep, SingleBreakWithMasksStaysWithinTheoremThreeOfOracle) {
  // Section V + Theorem 3 together: with occupied channels deleted, every
  // single-break schedule is still feasible and within the gap bound of the
  // Hopcroft–Karp maximum on the masked request graph.
  const auto [k, e, f, n_fibers, load] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 67 + e * 31 + f * 7) + 777);
  for (int trial = 0; trial < 25; ++trial) {
    const auto rv = test::random_request_vector(rng, k, n_fibers, load);
    const auto mask = test::random_mask(rng, k, 0.6);
    const auto w_i = [&] {
      for (core::Wavelength w = 0; w < k; ++w) {
        if (rv.count(w) == 0) continue;
        for (const auto u : scheme.adjacency_list(w)) {
          if (mask[static_cast<std::size_t>(u)] != 0) return w;
        }
      }
      return core::kNone;
    }();
    if (w_i == core::kNone) continue;
    const auto maximum = test::oracle_max_matching(scheme, rv, mask);
    for (const auto u : scheme.adjacency_list(w_i)) {
      if (mask[static_cast<std::size_t>(u)] == 0) continue;  // occupied
      const auto single = core::bfa_single_break(rv, scheme, mask, w_i, u);
      test::expect_valid_assignment(single, rv, scheme, mask);
      EXPECT_LE(single.granted, maximum);
      const auto delta = core::delta_of(scheme, w_i, u);
      EXPECT_GE(single.granted,
                maximum - core::breaking_gap_bound(scheme.degree(), delta))
          << "k=" << k << " u=" << u << " delta=" << delta;
    }
  }
}

TEST_P(BfaSweep, AdjacencyListOrderGivesDeltaIdxPlusOne) {
  // approx_break_first_available assumes adjacency_list(w)[idx] is the
  // (idx+1)-th crossing edge, i.e. delta_of == idx + 1 in minus-to-plus
  // order. Pin that ordering contract for every wavelength of every shape.
  const auto [k, e, f, n_fibers, load] = GetParam();
  (void)n_fibers;
  (void)load;
  const auto scheme = ConversionScheme::circular(k, e, f);
  for (core::Wavelength w = 0; w < k; ++w) {
    const auto adjacency = scheme.adjacency_list(w);
    ASSERT_EQ(static_cast<std::int32_t>(adjacency.size()), scheme.degree());
    for (std::size_t idx = 0; idx < adjacency.size(); ++idx) {
      EXPECT_EQ(core::delta_of(scheme, w, adjacency[idx]),
                static_cast<std::int32_t>(idx) + 1)
          << "k=" << k << " w=" << w << " idx=" << idx;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BfaSweep,
    ::testing::Values(
        BfaSweepParam{2, 0, 0, 4, 0.5},   // smallest ring, no conversion
        BfaSweepParam{3, 1, 0, 4, 0.5},   // d = 2 on a 3-ring
        BfaSweepParam{4, 1, 1, 4, 0.4},   // d = 3, tiny ring
        BfaSweepParam{6, 1, 1, 4, 0.3},   // the paper's running shape
        BfaSweepParam{6, 1, 1, 8, 0.7},   // heavy overload
        BfaSweepParam{8, 2, 2, 4, 0.3},   // d = 5
        BfaSweepParam{8, 3, 1, 4, 0.3},   // asymmetric e > f
        BfaSweepParam{8, 1, 3, 4, 0.3},   // asymmetric f > e
        BfaSweepParam{8, 0, 3, 4, 0.3},   // e = 0 (plus side only)
        BfaSweepParam{8, 3, 0, 4, 0.3},   // f = 0 (minus side only)
        BfaSweepParam{16, 2, 2, 2, 0.2},  // larger k
        BfaSweepParam{9, 4, 3, 3, 0.35},  // d = k - 1 (maximal limited range)
        BfaSweepParam{16, 7, 7, 2, 0.25},  // d = 15 = k - 1
        BfaSweepParam{32, 3, 3, 2, 0.15}),
    [](const ::testing::TestParamInfo<BfaSweepParam>& pinfo) {
      const auto& p = pinfo.param;
      return "k" + std::to_string(p.k) + "_e" + std::to_string(p.e) + "_f" +
             std::to_string(p.f) + "_N" + std::to_string(p.n_fibers) + "_L" +
             std::to_string(static_cast<int>(p.load * 100));
    });

}  // namespace
}  // namespace wdm
