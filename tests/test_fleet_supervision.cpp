// sim::Fleet supervision — the self-healing layer (docs/ALGORITHMS.md §13).
//
// The contracts under test:
//  * opt-out purity — supervision off is the default and bit-identical to
//    PR 8's fleet; supervision on with no faults is decision-identical too
//    (the layer only observes until something fails);
//  * quarantine + rejoin determinism — a scripted crash leaves the other
//    shards serving every slot, and the crashed shard recovers from its
//    checkpoint chain (or replays from slot 0) and rejoins the barrier
//    bit-exactly: the post-rejoin fleet_digest equals a crash-free run's;
//  * bounded healing — the restart budget is consumed per attempt and an
//    exhausted budget parks the shard in kFailed without taking the fleet
//    down; backoff (in fleet slots) defers restarts across barriers;
//  * watchdog — a stalled (livelocked) driver is abandoned and replaced
//    instead of hanging the barrier forever;
//  * observability — health/restart/discard series reach the Prometheus
//    export and supervision events reach an attached TraceRecorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "sim/fleet.hpp"
#include "sim/obs_export.hpp"

namespace wdm {
namespace {

namespace fs = std::filesystem;

sim::FleetConfig fleet_config(std::size_t shards, std::int32_t n_fibers = 8,
                              std::int32_t k = 4) {
  sim::FleetConfig cfg;
  cfg.shards = shards;
  cfg.seed = 7;
  cfg.interconnect.n_fibers = n_fibers;
  cfg.interconnect.scheme = core::ConversionScheme::circular(k, 1, 1);
  cfg.traffic.load = 0.7;
  cfg.traffic.holding = sim::HoldingTime::kGeometric;
  cfg.traffic.mean_holding = 2.0;
  return cfg;
}

sim::FleetConfig supervised_config(std::size_t shards) {
  sim::FleetConfig cfg = fleet_config(shards);
  cfg.supervision.enabled = true;
  cfg.supervision.restart_budget = 3;
  cfg.supervision.backoff_slots = 0;  // restart within the same barrier
  return cfg;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

sim::ShardFaultEvent crash_at(std::size_t shard, std::uint64_t slot) {
  sim::ShardFaultEvent event;
  event.shard = shard;
  event.slot = slot;
  event.kind = sim::ShardFaultKind::kCrash;
  return event;
}

sim::ShardFaultEvent stall_at(std::size_t shard, std::uint64_t slot,
                              std::uint64_t stall_ns) {
  sim::ShardFaultEvent event;
  event.shard = shard;
  event.slot = slot;
  event.kind = sim::ShardFaultKind::kStall;
  event.stall_ns = stall_ns;
  return event;
}

TEST(FleetSupervision, FaultFreeSupervisedRunIsBitIdenticalToUnsupervised) {
  sim::FleetConfig plain = fleet_config(3);
  sim::Fleet unsupervised(plain);
  unsupervised.run(60);

  sim::FleetConfig cfg = supervised_config(3);
  sim::Fleet supervised(cfg);
  supervised.run(60);

  EXPECT_EQ(supervised.fleet_digest(), unsupervised.fleet_digest())
      << "the supervision layer must only observe until something fails";
  EXPECT_EQ(supervised.total_arrivals(), unsupervised.total_arrivals());
  EXPECT_EQ(supervised.total_restarts(), 0u);
  EXPECT_EQ(supervised.serving_shards(), 3u);
  for (std::size_t i = 0; i < supervised.shards(); ++i) {
    EXPECT_EQ(supervised.shard_health(i), sim::ShardHealth::kServing);
  }
}

TEST(FleetSupervision, CrashedShardRejoinsFromItsCheckpointChainBitExact) {
  const std::uint64_t kSlots = 90;
  const std::uint64_t kEvery = 10;

  // Reference: crash-free supervised run with the same checkpoint cadence.
  sim::FleetConfig ref_cfg = supervised_config(3);
  sim::Fleet reference(ref_cfg);
  {
    sim::CheckpointPolicy policy;
    policy.dir = fresh_dir("sup_ref_ckpt").string();
    policy.full_every = 2;
    reference.open_checkpoints(policy);
  }
  for (std::uint64_t s = 0; s < kSlots; s += kEvery) {
    reference.run(kEvery);
    reference.write_checkpoint();
  }

  // Crash shard 1 at slot 55: by then its chain holds frames up to slot 50,
  // so the restart recovers slot 50 and replays five slots to rejoin.
  sim::FleetConfig cfg = supervised_config(3);
  cfg.shard_faults.push_back(crash_at(1, 55));
  sim::Fleet fleet(cfg);
  obs::TraceRecorder recorder(obs::TraceDetail::kSlots);
  fleet.set_telemetry(&recorder);
  {
    sim::CheckpointPolicy policy;
    policy.dir = fresh_dir("sup_crash_ckpt").string();
    policy.full_every = 2;
    fleet.open_checkpoints(policy);
  }
  for (std::uint64_t s = 0; s < kSlots; s += kEvery) {
    fleet.run(kEvery);
    fleet.write_checkpoint();
  }

  EXPECT_EQ(fleet.current_slot(), kSlots);
  EXPECT_EQ(fleet.shard_health(1), sim::ShardHealth::kServing);
  EXPECT_EQ(fleet.shard_restarts(1), 1u);
  EXPECT_EQ(fleet.total_restarts(), 1u);
  EXPECT_EQ(fleet.serving_shards(), 3u);
  EXPECT_EQ(fleet.fleet_digest(), reference.fleet_digest())
      << "recover + replay must rejoin bit-exactly";
  // The healthy shards never stopped: every shard served every slot.
  for (std::size_t i = 0; i < fleet.shards(); ++i) {
    EXPECT_EQ(fleet.shard_interconnect(i).current_slot(),
              static_cast<std::int64_t>(kSlots))
        << "shard " << i;
  }

  // The recorder saw the quarantine -> restart -> rejoin arc.
  std::vector<obs::TraceEvent> events;
  recorder.snapshot(events);
  const auto count = [&](obs::EventKind kind) {
    return std::count_if(events.begin(), events.end(),
                         [&](const obs::TraceEvent& e) {
                           return e.kind == kind && e.a == 1;
                         });
  };
  EXPECT_EQ(count(obs::EventKind::kShardQuarantine), 1);
  EXPECT_EQ(count(obs::EventKind::kShardRestart), 1);
  EXPECT_EQ(count(obs::EventKind::kShardRejoin), 1);
  EXPECT_EQ(count(obs::EventKind::kShardFailed), 0);
}

TEST(FleetSupervision, CrashWithoutCheckpointsReplaysFromSlotZero) {
  sim::FleetConfig ref_cfg = supervised_config(2);
  sim::Fleet reference(ref_cfg);
  reference.run(60);

  sim::FleetConfig cfg = supervised_config(2);
  cfg.shard_faults.push_back(crash_at(0, 30));
  sim::Fleet fleet(cfg);
  fleet.run(60);

  EXPECT_EQ(fleet.shard_health(0), sim::ShardHealth::kServing);
  EXPECT_EQ(fleet.shard_restarts(0), 1u);
  EXPECT_EQ(fleet.fleet_digest(), reference.fleet_digest())
      << "with no chain the restart replays the seeded streams from slot 0";
}

TEST(FleetSupervision, RestartBudgetExhaustionFailsTheShardPermanently) {
  sim::FleetConfig cfg = supervised_config(2);
  cfg.supervision.restart_budget = 2;
  // Each restart replay trips the next crash: attempt 1 dies at slot 6,
  // attempt 2 dies at slot 7, and the budget is gone.
  cfg.shard_faults.push_back(crash_at(0, 5));
  cfg.shard_faults.push_back(crash_at(0, 6));
  cfg.shard_faults.push_back(crash_at(0, 7));
  sim::Fleet fleet(cfg);
  fleet.run(20);

  EXPECT_EQ(fleet.shard_health(0), sim::ShardHealth::kFailed);
  EXPECT_EQ(fleet.shard_restarts(0), 0u);
  EXPECT_EQ(fleet.serving_shards(), 1u);
  EXPECT_EQ(fleet.shard_health(1), sim::ShardHealth::kServing);
  EXPECT_EQ(fleet.shard_interconnect(1).current_slot(), 20);

  // The fleet keeps serving on the survivor, and stays destructible.
  fleet.step();
  EXPECT_EQ(fleet.current_slot(), 21u);
  EXPECT_EQ(fleet.shard_health(0), sim::ShardHealth::kFailed);
}

TEST(FleetSupervision, BackoffDefersRestartAcrossBarriers) {
  sim::FleetConfig cfg = supervised_config(2);
  cfg.supervision.backoff_slots = 4;
  cfg.shard_faults.push_back(crash_at(0, 5));
  sim::Fleet fleet(cfg);

  // The crash fires while stepping slot 5 (the 6th step): the shard is
  // quarantined with eligible_target 5 + 4 = 9.
  fleet.run(6);
  EXPECT_EQ(fleet.shard_health(0), sim::ShardHealth::kQuarantined);
  EXPECT_EQ(fleet.serving_shards(), 1u);

  // Slots 7 and 8: still backing off, barrier degrades to shard 1.
  fleet.step();
  fleet.step();
  EXPECT_EQ(fleet.shard_health(0), sim::ShardHealth::kQuarantined);

  // Slot 9 reaches the eligibility target: restart, replay, rejoin.
  fleet.step();
  EXPECT_EQ(fleet.shard_health(0), sim::ShardHealth::kServing);
  EXPECT_EQ(fleet.shard_restarts(0), 1u);
  EXPECT_EQ(fleet.serving_shards(), 2u);

  // And the rejoined fleet is bit-identical to a crash-free one.
  fleet.run(21);
  sim::Fleet reference(supervised_config(2));
  reference.run(30);
  EXPECT_EQ(fleet.fleet_digest(), reference.fleet_digest());
}

TEST(FleetSupervision, WatchdogQuarantinesAStalledDriver) {
  sim::FleetConfig cfg = supervised_config(2);
  // A generous deadline so a healthy shard descheduled on a loaded (or
  // sanitizer-slowed) runner is never falsely abandoned; the scripted
  // stall overshoots it 10x. Finite (not a true livelock) so teardown can
  // join the abandoned driver.
  cfg.supervision.watchdog_ns = 200'000'000;  // 200 ms deadline
  cfg.shard_faults.push_back(stall_at(1, 10, 2'000'000'000));
  sim::Fleet fleet(cfg);
  fleet.run(30);

  EXPECT_EQ(fleet.current_slot(), 30u);
  EXPECT_EQ(fleet.shard_health(1), sim::ShardHealth::kServing)
      << "the replacement driver must have healed the shard";
  EXPECT_EQ(fleet.shard_restarts(1), 1u);
  EXPECT_EQ(fleet.serving_shards(), 2u);

  // The consumed stall does not refire on replay: the healed fleet is
  // bit-identical to one that never stalled.
  sim::Fleet reference(supervised_config(2));
  reference.run(30);
  EXPECT_EQ(fleet.fleet_digest(), reference.fleet_digest());
}

TEST(FleetSupervision, ResumeFromCountsDiscardedFrames) {
  const fs::path dir = fresh_dir("sup_discards");
  sim::FleetConfig cfg = fleet_config(2);
  {
    sim::Fleet fleet(cfg);
    sim::CheckpointPolicy policy;
    policy.dir = dir.string();
    policy.full_every = 1;  // every frame full: each is its own chain
    fleet.open_checkpoints(policy);
    fleet.run(20);
    fleet.write_checkpoint();
    fleet.run(10);
    fleet.write_checkpoint();
  }
  // Tear the newest frame in every shard dir (SIGKILL-mid-write shape):
  // recovery must discard it and fall back to the agreeing slot-20 fulls.
  for (std::size_t shard = 0; shard < 2; ++shard) {
    std::vector<fs::path> frames;
    for (const auto& entry :
         fs::directory_iterator(dir / ("shard-" + std::to_string(shard)))) {
      frames.push_back(entry.path());
    }
    ASSERT_GE(frames.size(), 2u);
    std::sort(frames.begin(), frames.end());
    fs::resize_file(frames.back(), fs::file_size(frames.back()) / 2);
  }

  sim::Fleet resumed(cfg);
  const sim::FleetRecovery recovery = resumed.resume_from(dir.string());
  ASSERT_TRUE(recovery.recovered);
  EXPECT_EQ(recovery.slot, 20u);
  EXPECT_EQ(resumed.recovery_discards(), 2u);
  std::uint64_t reported = 0;
  for (const auto& report : recovery.shards) {
    reported += report.discarded.size();
    ASSERT_EQ(report.discarded.size(), report.reasons.size());
  }
  EXPECT_EQ(reported, 2u);

  // The fallback state is real: finishing the run matches an uninterrupted
  // fleet at the same slot.
  resumed.run(20);
  sim::Fleet reference(cfg);
  reference.run(40);
  EXPECT_EQ(resumed.fleet_digest(), reference.fleet_digest());
}

TEST(FleetSupervision, PrometheusExportCarriesHealthAndPinnedSeries) {
  sim::FleetConfig cfg = supervised_config(2);
  cfg.shard_faults.push_back(crash_at(1, 5));
  sim::Fleet fleet(cfg);
  fleet.run(20);
  EXPECT_EQ(fleet.shard_restarts(1), 1u);

  obs::Registry registry;
  sim::register_fleet_metrics(registry, fleet, /*per_fiber=*/false);
  std::ostringstream os;
  obs::write_prometheus(os, registry);
  const std::string text = os.str();

  EXPECT_NE(text.find("wdm_fleet_pinned 0"), std::string::npos) << text;
  EXPECT_NE(text.find("wdm_fleet_serving_shards 2"), std::string::npos);
  EXPECT_NE(text.find("wdm_shard_restarts_total 1"), std::string::npos);
  EXPECT_NE(text.find("wdm_recovery_discards_total 0"), std::string::npos);
  EXPECT_NE(text.find("wdm_shard_health{shard=\"0\"} 0"), std::string::npos);
  EXPECT_NE(text.find("wdm_shard_health{shard=\"1\"} 0"), std::string::npos);
  EXPECT_NE(text.find("wdm_shard_restarts{shard=\"1\"} 1"),
            std::string::npos);
}

TEST(FleetSupervision, HealthNamesAreStable) {
  EXPECT_STREQ(sim::to_string(sim::ShardHealth::kServing), "serving");
  EXPECT_STREQ(sim::to_string(sim::ShardHealth::kQuarantined), "quarantined");
  EXPECT_STREQ(sim::to_string(sim::ShardHealth::kRestarting), "restarting");
  EXPECT_STREQ(sim::to_string(sim::ShardHealth::kFailed), "failed");
}

}  // namespace
}  // namespace wdm
