// Additional simulator coverage: hotspot asymmetry, bursty-vs-smooth loss,
// batch-means CI behaviour, fairness accounting under skewed destinations.
#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "sim/simulation.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using sim::SimulationConfig;

SimulationConfig base() {
  SimulationConfig cfg;
  cfg.interconnect.n_fibers = 6;
  cfg.interconnect.scheme = ConversionScheme::circular(8, 1, 1);
  cfg.traffic.load = 0.5;
  cfg.slots = 3000;
  cfg.warmup = 300;
  cfg.seed = 616;
  return cfg;
}

TEST(SimExtra, HotspotTrafficLosesMoreThanUniform) {
  auto cfg = base();
  const auto uniform = sim::run_simulation(cfg);
  cfg.traffic.destinations = sim::DestinationPattern::kHotspot;
  cfg.traffic.hotspot_alpha = 1.5;
  const auto hotspot = sim::run_simulation(cfg);
  // Concentrating destinations on few fibers overloads them: higher loss,
  // worse fiber fairness.
  EXPECT_GT(hotspot.loss_probability, uniform.loss_probability);
  EXPECT_LT(hotspot.fiber_fairness, uniform.fiber_fairness);
  EXPECT_GT(uniform.fiber_fairness, 0.95);
}

TEST(SimExtra, BurstyTrafficLosesMoreThanBernoulliAtEqualLoad) {
  auto cfg = base();
  cfg.traffic.load = 0.6;
  const auto smooth = sim::run_simulation(cfg);
  cfg.traffic.arrivals = sim::ArrivalProcess::kOnOff;
  cfg.traffic.mean_burst_length = 16.0;
  cfg.slots = 8000;  // longer run: burst correlations need averaging
  const auto bursty = sim::run_simulation(cfg);
  // A burst pins many same-(source,destination) packets into the same
  // contention set slot after slot.
  EXPECT_GT(bursty.loss_probability, smooth.loss_probability);
}

TEST(SimExtra, BatchCiShrinksWithMoreSlots) {
  auto cfg = base();
  cfg.traffic.load = 0.8;
  cfg.slots = 1500;
  const auto short_run = sim::run_simulation(cfg);
  cfg.slots = 12000;
  const auto long_run = sim::run_simulation(cfg);
  EXPECT_GT(short_run.loss_batch_ci, 0.0);
  EXPECT_LT(long_run.loss_batch_ci, short_run.loss_batch_ci);
  // Both CIs bracket a common estimate.
  EXPECT_NEAR(short_run.loss_probability, long_run.loss_probability,
              short_run.loss_batch_ci * 3 + 0.01);
}

TEST(SimExtra, ArbitrationPolicyDoesNotChangeLoss) {
  // Arbitration resolves identities, not counts: loss identical per seed.
  auto fifo = base();
  fifo.interconnect.arbitration = core::Arbitration::kFifo;
  auto rr = base();
  rr.interconnect.arbitration = core::Arbitration::kRoundRobin;
  auto rnd = base();
  rnd.interconnect.arbitration = core::Arbitration::kRandom;
  const auto a = sim::run_simulation(fifo);
  const auto b = sim::run_simulation(rr);
  const auto c = sim::run_simulation(rnd);
  EXPECT_EQ(a.losses, b.losses);
  EXPECT_EQ(b.losses, c.losses);
}

TEST(SimExtra, NonCircularEdgeWavelengthsSufferMost) {
  // Direct check of the clipped-end effect behind E3's circ-vs-nonc gap:
  // with single-wavelength traffic on λ0, non-circular d=3 reaches only two
  // channels while circular reaches three.
  core::OutputPortScheduler circ(ConversionScheme::circular(8, 1, 1));
  core::OutputPortScheduler nonc(ConversionScheme::non_circular(8, 1, 1));
  core::RequestVector rv(8);
  rv.add(0, 5);
  EXPECT_EQ(circ.assign_channels(rv).granted, 3);
  EXPECT_EQ(nonc.assign_channels(rv).granted, 2);
}

}  // namespace
}  // namespace wdm
