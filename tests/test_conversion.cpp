// Conversion schemes (Section II.A): adjacency structure for both kinds,
// degree arithmetic, and the conversion-graph export.
#include <gtest/gtest.h>

#include "core/conversion.hpp"

namespace wdm {
namespace {

using core::ConversionKind;
using core::ConversionScheme;

TEST(Conversion, DegreeArithmetic) {
  EXPECT_EQ(ConversionScheme::circular(8, 1, 1).degree(), 3);
  EXPECT_EQ(ConversionScheme::circular(8, 0, 0).degree(), 1);
  EXPECT_EQ(ConversionScheme::circular(8, 3, 4).degree(), 8);
  EXPECT_TRUE(ConversionScheme::circular(8, 3, 4).is_full_range());
  EXPECT_FALSE(ConversionScheme::circular(8, 3, 3).is_full_range());
}

TEST(Conversion, InvalidParametersRejected) {
  EXPECT_THROW(ConversionScheme::circular(0, 0, 0), std::logic_error);
  EXPECT_THROW(ConversionScheme::circular(4, -1, 0), std::logic_error);
  EXPECT_THROW(ConversionScheme::circular(4, 2, 2), std::logic_error);  // d > k
  EXPECT_THROW(ConversionScheme::symmetric(ConversionKind::kCircular, 4, 0),
               std::logic_error);
  EXPECT_THROW(ConversionScheme::symmetric(ConversionKind::kCircular, 4, 5),
               std::logic_error);
}

TEST(Conversion, SymmetricSplitsDegree) {
  const auto odd = ConversionScheme::symmetric(ConversionKind::kCircular, 8, 5);
  EXPECT_EQ(odd.e(), 2);
  EXPECT_EQ(odd.f(), 2);
  const auto even = ConversionScheme::symmetric(ConversionKind::kCircular, 8, 4);
  EXPECT_EQ(even.e(), 2);
  EXPECT_EQ(even.f(), 1);
  EXPECT_EQ(even.degree(), 4);
}

TEST(Conversion, FullRangeReachesEverything) {
  const auto full = ConversionScheme::full_range(5);
  EXPECT_TRUE(full.is_full_range());
  for (core::Wavelength in = 0; in < 5; ++in) {
    for (core::Channel out = 0; out < 5; ++out) {
      EXPECT_TRUE(full.can_convert(in, out));
    }
  }
}

TEST(Conversion, NoneIsIdentityOnly) {
  for (const auto kind : {ConversionKind::kCircular, ConversionKind::kNonCircular}) {
    const auto none = ConversionScheme::none(6, kind);
    EXPECT_EQ(none.degree(), 1);
    for (core::Wavelength in = 0; in < 6; ++in) {
      for (core::Channel out = 0; out < 6; ++out) {
        EXPECT_EQ(none.can_convert(in, out), in == out);
      }
    }
  }
}

TEST(Conversion, CircularWrapsAtBothEnds) {
  const auto s = ConversionScheme::circular(6, 2, 1);
  // λ0: [-2, 1] mod 6 = {4, 5, 0, 1}.
  EXPECT_TRUE(s.can_convert(0, 4));
  EXPECT_TRUE(s.can_convert(0, 5));
  EXPECT_TRUE(s.can_convert(0, 0));
  EXPECT_TRUE(s.can_convert(0, 1));
  EXPECT_FALSE(s.can_convert(0, 2));
  EXPECT_FALSE(s.can_convert(0, 3));
  // λ5: [3, 0] mod 6 = {3, 4, 5, 0}.
  EXPECT_TRUE(s.can_convert(5, 0));
  EXPECT_FALSE(s.can_convert(5, 1));
}

TEST(Conversion, NonCircularClipsAtEnds) {
  const auto s = ConversionScheme::non_circular(6, 2, 1);
  const auto iv0 = s.adjacency_plain(0);
  EXPECT_EQ(iv0, (graph::Interval{0, 1}));  // clipped below
  const auto iv5 = s.adjacency_plain(5);
  EXPECT_EQ(iv5, (graph::Interval{3, 5}));  // clipped above
  const auto iv3 = s.adjacency_plain(3);
  EXPECT_EQ(iv3, (graph::Interval{1, 4}));  // interior: full width d = 4
  EXPECT_THROW(ConversionScheme::circular(6, 1, 1).adjacency_plain(0),
               std::logic_error);
}

TEST(Conversion, AdjacencyListOrderMinusToPlus) {
  const auto s = ConversionScheme::circular(6, 1, 1);
  // Order matters: δ(u) of Section IV.C counts from the minus side.
  EXPECT_EQ(s.adjacency_list(0), (std::vector<core::Channel>{5, 0, 1}));
  EXPECT_EQ(s.adjacency_list(3), (std::vector<core::Channel>{2, 3, 4}));

  const auto nc = ConversionScheme::non_circular(6, 1, 1);
  EXPECT_EQ(nc.adjacency_list(0), (std::vector<core::Channel>{0, 1}));
  EXPECT_EQ(nc.adjacency_list(5), (std::vector<core::Channel>{4, 5}));
}

TEST(Conversion, AdjacencyListMatchesCanConvert) {
  for (const auto kind :
       {ConversionKind::kCircular, ConversionKind::kNonCircular}) {
    for (const std::int32_t e : {0, 1, 3}) {
      for (const std::int32_t f : {0, 2}) {
        const std::int32_t k = 9;
        const auto s = kind == ConversionKind::kCircular
                           ? ConversionScheme::circular(k, e, f)
                           : ConversionScheme::non_circular(k, e, f);
        for (core::Wavelength in = 0; in < k; ++in) {
          const auto list = s.adjacency_list(in);
          std::size_t hits = 0;
          for (core::Channel out = 0; out < k; ++out) {
            if (s.can_convert(in, out)) hits += 1;
          }
          EXPECT_EQ(hits, list.size());
          for (const auto out : list) EXPECT_TRUE(s.can_convert(in, out));
        }
      }
    }
  }
}

TEST(Conversion, ConversionGraphEdgeCount) {
  // Circular: always k*d edges. Non-circular: fewer near the ends.
  EXPECT_EQ(ConversionScheme::circular(10, 2, 1).conversion_graph().n_edges(),
            40u);
  const auto nc = ConversionScheme::non_circular(10, 2, 1);
  std::size_t expected = 0;
  for (core::Wavelength w = 0; w < 10; ++w) {
    expected += static_cast<std::size_t>(nc.adjacency_plain(w).length());
  }
  EXPECT_EQ(nc.conversion_graph().n_edges(), expected);
  EXPECT_LT(expected, 40u);
}

TEST(ModularHelpers, ModAndForwardDistance) {
  EXPECT_EQ(core::mod_k(-1, 6), 5);
  EXPECT_EQ(core::mod_k(-7, 6), 5);
  EXPECT_EQ(core::mod_k(6, 6), 0);
  EXPECT_EQ(core::mod_k(13, 6), 1);
  EXPECT_EQ(core::fwd(4, 1, 6), 3);
  EXPECT_EQ(core::fwd(1, 4, 6), 3);
  EXPECT_EQ(core::fwd(2, 2, 6), 0);
  EXPECT_EQ(core::fwd(0, 5, 6), 5);
}

}  // namespace
}  // namespace wdm
