// Crosspoint fabric (Figure 1): inventory arithmetic, route validation, and
// the guarantee that every scheduler output is physically realisable.
#include <gtest/gtest.h>

#include "hw/fabric.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using hw::CrosspointFabric;
using hw::HwGrant;

TEST(Fabric, InventoryCircular) {
  const CrosspointFabric fabric(4, ConversionScheme::circular(8, 1, 1));
  const auto inv = fabric.inventory();
  // Every wavelength reaches d = 3 channels: 4*4 fiber pairs * 8*3 edges.
  EXPECT_EQ(inv.crosspoints, 4u * 4u * 8u * 3u);
  EXPECT_EQ(inv.full_crossbar, 32u * 32u);
  EXPECT_LT(inv.crosspoints, inv.full_crossbar);
  EXPECT_EQ(inv.combiner_fan_in, 4u * 3u);  // the paper's "Nd inputs"
  EXPECT_EQ(inv.converters, 32u);
}

TEST(Fabric, InventoryNonCircularHasFewerCrosspoints) {
  const CrosspointFabric circ(4, ConversionScheme::circular(8, 1, 1));
  const CrosspointFabric nonc(4, ConversionScheme::non_circular(8, 1, 1));
  EXPECT_LT(nonc.inventory().crosspoints, circ.inventory().crosspoints);
}

TEST(Fabric, CrosspointExistence) {
  const CrosspointFabric fabric(2, ConversionScheme::circular(6, 1, 1));
  EXPECT_TRUE(fabric.crosspoint_exists(0, 5));  // wrap
  EXPECT_FALSE(fabric.crosspoint_exists(0, 3));
}

TEST(Fabric, RouteAcceptsValidGrants) {
  const CrosspointFabric fabric(3, ConversionScheme::circular(6, 1, 1));
  const std::vector<HwGrant> grants{{0, 1, 0}, {1, 1, 2}, {2, 4, 5}};
  EXPECT_EQ(fabric.route(grants), 3u);
  EXPECT_EQ(fabric.route({}), 0u);
}

TEST(Fabric, RouteRejectsPhysicalViolations) {
  const CrosspointFabric fabric(3, ConversionScheme::circular(6, 1, 1));
  // Missing crosspoint: λ0 cannot reach channel 3.
  EXPECT_THROW(fabric.route({{0, 0, 3}}), std::logic_error);
  // Combiner collision: two grants on channel 1.
  EXPECT_THROW(fabric.route({{0, 1, 1}, {1, 2, 1}}), std::logic_error);
  // One input channel driving two outputs.
  EXPECT_THROW(fabric.route({{0, 1, 0}, {0, 1, 2}}), std::logic_error);
  // Out-of-range endpoints.
  EXPECT_THROW(fabric.route({{5, 1, 0}}), std::logic_error);
}

TEST(Fabric, EveryScheduledSlotRoutes) {
  // End-to-end physical-realisability: whatever the hardware scheduler
  // grants must close cleanly in the fabric, across random slots.
  util::Rng rng(2025);
  const auto scheme = ConversionScheme::circular(8, 2, 1);
  const CrosspointFabric fabric(4, scheme);
  hw::HwPortScheduler port(scheme, 4);
  for (int slot = 0; slot < 100; ++slot) {
    std::vector<core::Request> requests;
    std::uint64_t id = 0;
    for (std::int32_t fib = 0; fib < 4; ++fib) {
      for (core::Wavelength w = 0; w < 8; ++w) {
        if (rng.bernoulli(0.5)) requests.push_back({fib, w, id++, 1});
      }
    }
    port.load(requests);
    const auto grants = port.run();
    EXPECT_EQ(fabric.route(grants), grants.size()) << "slot " << slot;
  }
}

}  // namespace
}  // namespace wdm
