// Crossing edges: Definition 1, Lemma 1 (uncrossing), Lemma 5 (mutual
// crossing of opposite-side edges), Lemma 6 (crossing-count bound).
#include <gtest/gtest.h>

#include "core/crossing.hpp"
#include "graph/hopcroft_karp.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using core::Edge;
using core::RequestGraph;
using core::RequestVector;

RequestGraph paper_graph() {
  return RequestGraph(ConversionScheme::circular(6, 1, 1),
                      RequestVector{2, 1, 0, 1, 1, 2});
}

TEST(Crossing, PaperExamples) {
  const auto g = paper_graph();
  // "edges a0 b1 and a1 b0 cross each other"
  EXPECT_TRUE(core::edges_cross(g, Edge{0, 1}, Edge{1, 0}));
  // "edge a3 b4 crosses a4 b3"
  EXPECT_TRUE(core::edges_cross(g, Edge{3, 4}, Edge{4, 3}));
  // "edge a0 b5 and a4 b4, though intersecting in the figure, are not a
  // pair of crossing edges"
  EXPECT_FALSE(core::edges_cross(g, Edge{0, 5}, Edge{4, 4}));
}

TEST(Crossing, EdgeDoesNotCrossItself) {
  const auto g = paper_graph();
  EXPECT_FALSE(core::edges_cross(g, Edge{0, 1}, Edge{0, 1}));
}

TEST(Crossing, ParallelSameWavelengthEdgesDoNotCross) {
  const auto g = paper_graph();
  // a0 -> b0 and a1 -> b1: aligned with index order, not crossing.
  EXPECT_FALSE(core::edges_cross(g, Edge{0, 0}, Edge{1, 1}));
  // a5 -> b4 and a6 -> b5 (λ5 group): aligned, not crossing.
  EXPECT_FALSE(core::edges_cross(g, Edge{5, 4}, Edge{6, 5}));
  // a5 -> b5 and a6 -> b4: inverted, crossing.
  EXPECT_TRUE(core::edges_cross(g, Edge{5, 5}, Edge{6, 4}));
}

TEST(Crossing, RequiresCircularScheme) {
  const RequestGraph g(ConversionScheme::non_circular(6, 1, 1),
                       RequestVector{1, 1, 0, 0, 0, 0});
  EXPECT_THROW(core::edges_cross(g, Edge{0, 0}, Edge{1, 1}), std::logic_error);
}

TEST(Crossing, RequiresExistingEdges) {
  const auto g = paper_graph();
  EXPECT_THROW(core::crosses(g, Edge{0, 3}, Edge{1, 0}), std::logic_error);
}

TEST(Crossing, DeltaOf) {
  const auto scheme = ConversionScheme::circular(6, 2, 1);  // d = 4
  // adjacency of λ3 is {1, 2, 3, 4} in minus-to-plus order.
  EXPECT_EQ(core::delta_of(scheme, 3, 1), 1);
  EXPECT_EQ(core::delta_of(scheme, 3, 2), 2);
  EXPECT_EQ(core::delta_of(scheme, 3, 3), 3);
  EXPECT_EQ(core::delta_of(scheme, 3, 4), 4);
  // Wrapping: adjacency of λ0 is {4, 5, 0, 1}.
  EXPECT_EQ(core::delta_of(scheme, 0, 4), 1);
  EXPECT_EQ(core::delta_of(scheme, 0, 1), 4);
  EXPECT_THROW(core::delta_of(scheme, 0, 2), std::logic_error);
}

// --- Randomised structural properties ---------------------------------------

struct CrossCase {
  std::int32_t k, e, f;
};

class CrossingProperties : public ::testing::TestWithParam<CrossCase> {
 protected:
  std::vector<Edge> all_edges(const RequestGraph& g) const {
    std::vector<Edge> edges;
    for (std::int32_t j = 0; j < g.n_requests(); ++j) {
      for (core::Channel u = 0; u < g.k(); ++u) {
        if (g.has_edge(j, u)) edges.push_back(Edge{j, u});
      }
    }
    return edges;
  }
};

TEST_P(CrossingProperties, CrossingIsSymmetric) {
  const auto [k, e, f] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 7 + e * 3 + f));
  for (int trial = 0; trial < 12; ++trial) {
    const RequestGraph g(scheme, test::random_request_vector(rng, k, 3, 0.35));
    const auto edges = all_edges(g);
    for (const auto& x : edges) {
      for (const auto& y : edges) {
        EXPECT_EQ(core::crosses(g, x, y), core::crosses(g, y, x))
            << "x=(" << x.j << "," << x.v << ") y=(" << y.j << "," << y.v << ")";
      }
    }
  }
}

TEST_P(CrossingProperties, CrossingEdgesAreVertexDisjoint) {
  const auto [k, e, f] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 11 + e * 5 + f) + 17);
  for (int trial = 0; trial < 12; ++trial) {
    const RequestGraph g(scheme, test::random_request_vector(rng, k, 3, 0.35));
    const auto edges = all_edges(g);
    for (const auto& x : edges) {
      for (const auto& y : edges) {
        if (core::edges_cross(g, x, y)) {
          EXPECT_NE(x.j, y.j);
          EXPECT_NE(x.v, y.v);
        }
      }
    }
  }
}

TEST_P(CrossingProperties, LemmaOneUncrossingPreservesMaximumMatchings) {
  const auto [k, e, f] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 13 + e * 7 + f) + 29);
  for (int trial = 0; trial < 25; ++trial) {
    const RequestGraph g(scheme, test::random_request_vector(rng, k, 4, 0.4));
    const auto bipartite = g.to_bipartite();
    auto m = graph::hopcroft_karp(bipartite);
    const std::size_t size_before = m.size();
    core::uncross_matching(g, m);
    EXPECT_EQ(m.size(), size_before);
    EXPECT_TRUE(graph::is_valid_matching(bipartite, m));
    EXPECT_FALSE(core::find_crossing_pair(g, m).has_value());
  }
}

TEST_P(CrossingProperties, LemmaSixCrossingCountBound) {
  const auto [k, e, f] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  const std::int32_t d = scheme.degree();
  util::Rng rng(static_cast<std::uint64_t>(k * 17 + e * 11 + f) + 31);
  for (int trial = 0; trial < 12; ++trial) {
    const RequestGraph g(scheme, test::random_request_vector(rng, k, 3, 0.4));
    auto m = graph::hopcroft_karp(g.to_bipartite());
    core::uncross_matching(g, m);
    // For every edge of G: at most max{δ(u)-1, d-δ(u)} matched edges cross it.
    for (std::int32_t i = 0; i < g.n_requests(); ++i) {
      for (const core::Channel u : scheme.adjacency_list(g.wavelength_of(i))) {
        const Edge candidate{i, u};
        std::int32_t crossing = 0;
        for (std::int32_t j = 0; j < g.n_requests(); ++j) {
          const auto v = m.right_of(j);
          if (v == graph::kNoVertex || j == i) continue;
          if (core::edges_cross(g, Edge{j, v}, candidate)) crossing += 1;
        }
        const auto delta = core::delta_of(scheme, g.wavelength_of(i), u);
        EXPECT_LE(crossing, core::breaking_gap_bound(d, delta))
            << "i=" << i << " u=" << u;
      }
    }
  }
}

TEST_P(CrossingProperties, LemmaFiveOppositeSideEdgesCrossEachOther) {
  const auto [k, e, f] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 19 + e * 13 + f) + 37);
  for (int trial = 0; trial < 8; ++trial) {
    const RequestGraph g(scheme, test::random_request_vector(rng, k, 3, 0.35));
    const auto edges = all_edges(g);
    for (const auto& base : edges) {
      const auto wi = g.wavelength_of(base.j);
      const auto u = base.v;
      for (const auto& x : edges) {
        for (const auto& y : edges) {
          if (x.j == y.j || x.v == y.v) continue;
          if (!core::crosses(g, x, base) || !core::crosses(g, y, base)) continue;
          const auto wx = g.wavelength_of(x.j);
          const auto wy = g.wavelength_of(y.j);
          // x on the plus side of W(i), y on the minus side (Lemma 5 roles).
          const bool x_plus =
              core::fwd(wi, wx, k) > 0 &&
              core::fwd(wi, wx, k) < core::fwd(wi, core::mod_k(u + e, k), k);
          const bool y_minus =
              core::fwd(core::mod_k(u - f, k), wy, k) > 0 &&
              core::fwd(core::mod_k(u - f, k), wy, k) <
                  core::fwd(core::mod_k(u - f, k), wi, k);
          if (x_plus && y_minus) {
            EXPECT_TRUE(core::edges_cross(g, x, y))
                << "base=(" << base.j << "," << base.v << ") x=(" << x.j << ","
                << x.v << ") y=(" << y.j << "," << y.v << ")";
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CrossingProperties,
    ::testing::Values(CrossCase{6, 1, 1}, CrossCase{6, 2, 1}, CrossCase{8, 2, 2},
                      CrossCase{5, 1, 1}, CrossCase{7, 0, 2}, CrossCase{7, 3, 0},
                      CrossCase{10, 3, 2}),
    [](const ::testing::TestParamInfo<CrossCase>& pinfo) {
      const auto& p = pinfo.param;
      return "k" + std::to_string(p.k) + "_e" + std::to_string(p.e) + "_f" +
             std::to_string(p.f);
    });

}  // namespace
}  // namespace wdm
