// Differential fuzzing across the whole algorithm stack.
//
// For thousands of random (scheme, request-vector, availability) instances,
// every implementation that should agree must agree:
//   * the scheme-specific kernel (FA / BFA / full-range) == Hopcroft–Karp
//     == Kuhn on the explicit request graph;
//   * Glover == staircase FA on convex instances;
//   * greedy is sandwiched in [max/2, max];
//   * approximate BFA obeys its Theorem-3 bound;
//   * every produced assignment is feasible.
#include <gtest/gtest.h>

#include "core/break_first_available.hpp"
#include "core/priority.hpp"
#include "graph/glover.hpp"
#include "graph/greedy.hpp"
#include "graph/kuhn.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::ConversionKind;
using core::ConversionScheme;

ConversionScheme random_scheme(util::Rng& rng) {
  const auto k = static_cast<std::int32_t>(1 + rng.uniform_below(20));
  const auto kind = rng.bernoulli(0.5) ? ConversionKind::kCircular
                                       : ConversionKind::kNonCircular;
  // Any split with e + f + 1 <= k, biased toward small degrees like real
  // converters but covering the full range incl. d == k.
  const auto d = static_cast<std::int32_t>(1 + rng.uniform_below(
                     static_cast<std::uint64_t>(k)));
  const auto e = static_cast<std::int32_t>(rng.uniform_below(
      static_cast<std::uint64_t>(d)));
  const auto f = d - 1 - e;
  return kind == ConversionKind::kCircular ? ConversionScheme::circular(k, e, f)
                                           : ConversionScheme::non_circular(k, e, f);
}

TEST(Fuzz, KernelsAgreeWithBothOraclesEverywhere) {
  util::Rng rng(0xF00D);
  int checked = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    const auto scheme = random_scheme(rng);
    const auto k = scheme.k();
    const auto n_fibers = static_cast<std::int32_t>(1 + rng.uniform_below(6));
    const double load = rng.uniform01();
    const auto rv = test::random_request_vector(rng, k, n_fibers, load);
    const auto mask = rng.bernoulli(0.5)
                          ? test::random_mask(rng, k, rng.uniform01())
                          : std::vector<std::uint8_t>{};

    const auto kernel = core::assign_maximum(rv, scheme, mask);
    test::expect_valid_assignment(kernel, rv, scheme, mask);

    const core::RequestGraph g(scheme, rv, mask);
    const auto explicit_graph = g.to_bipartite();
    const auto hk = graph::hopcroft_karp(explicit_graph);
    const auto kuhn = graph::kuhn_matching(explicit_graph);
    ASSERT_EQ(hk.size(), kuhn.size()) << "oracles disagree, trial " << trial;
    ASSERT_EQ(kernel.granted, static_cast<std::int32_t>(hk.size()))
        << "kernel not maximum: kind="
        << (scheme.kind() == ConversionKind::kCircular ? "circ" : "noncirc")
        << " k=" << k << " e=" << scheme.e() << " f=" << scheme.f()
        << " trial=" << trial;

    // Greedy sandwich on the same instance.
    const auto greedy = graph::greedy_maximal_matching(explicit_graph, rng);
    EXPECT_LE(greedy.size(), hk.size());
    EXPECT_GE(2 * greedy.size(), hk.size());
    checked += 1;
  }
  EXPECT_EQ(checked, 3000);
}

TEST(Fuzz, ApproxBoundHoldsEverywhere) {
  util::Rng rng(0xBEEF);
  for (int trial = 0; trial < 1500; ++trial) {
    auto scheme = random_scheme(rng);
    if (scheme.kind() != ConversionKind::kCircular || scheme.is_full_range()) {
      continue;
    }
    const auto k = scheme.k();
    const auto rv = test::random_request_vector(
        rng, k, static_cast<std::int32_t>(1 + rng.uniform_below(5)),
        rng.uniform01());
    const auto mask = rng.bernoulli(0.4)
                          ? test::random_mask(rng, k, 0.5 + 0.5 * rng.uniform01())
                          : std::vector<std::uint8_t>{};
    const auto approx = core::approx_break_first_available(rv, scheme, mask);
    if (approx.break_channel == core::kNone) continue;
    test::expect_valid_assignment(approx.assignment, rv, scheme, mask);
    const auto maximum = test::oracle_max_matching(scheme, rv, mask);
    ASSERT_LE(maximum - approx.assignment.granted, approx.gap_bound)
        << "k=" << k << " e=" << scheme.e() << " f=" << scheme.f()
        << " trial=" << trial;
  }
}

TEST(Fuzz, GloverAndStaircaseFaAgreeOnConvexInstances) {
  util::Rng rng(0xCAFE);
  for (int trial = 0; trial < 1000; ++trial) {
    const auto k = static_cast<std::int32_t>(1 + rng.uniform_below(16));
    const auto d = static_cast<std::int32_t>(
        1 + rng.uniform_below(static_cast<std::uint64_t>(k)));
    const auto e = static_cast<std::int32_t>(
        rng.uniform_below(static_cast<std::uint64_t>(d)));
    const auto scheme = ConversionScheme::non_circular(k, e, d - 1 - e);
    const auto rv = test::random_request_vector(
        rng, k, static_cast<std::int32_t>(1 + rng.uniform_below(4)),
        rng.uniform01() * 0.7);
    const core::RequestGraph g(scheme, rv);
    const auto convex = g.to_convex();
    const auto glover = graph::glover_maximum_matching(convex);
    const auto fa = graph::staircase_first_available(convex);
    EXPECT_EQ(glover.size(), fa.size()) << "trial " << trial;
  }
}

TEST(Fuzz, PriorityInsulationHoldsEverywhere) {
  util::Rng rng(0xDADA);
  for (int trial = 0; trial < 600; ++trial) {
    const auto scheme = random_scheme(rng);
    const auto k = scheme.k();
    const auto n_classes = static_cast<std::size_t>(1 + rng.uniform_below(3));
    std::vector<core::RequestVector> classes;
    for (std::size_t c = 0; c < n_classes; ++c) {
      classes.push_back(test::random_request_vector(
          rng, k, 2, rng.uniform01() * 0.6));
    }
    const auto prio = core::priority_schedule(classes, scheme);
    // Class 0 insulated; combined consistent.
    EXPECT_EQ(prio.granted_per_class[0],
              core::assign_maximum(classes[0], scheme).granted);
    std::int32_t total = 0;
    for (const auto gpc : prio.granted_per_class) total += gpc;
    EXPECT_EQ(total, prio.combined.granted);
  }
}

}  // namespace
}  // namespace wdm
