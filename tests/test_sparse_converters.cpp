// Sparse (budgeted) conversion: exactness against brute force, budget
// monotonicity, and the corner equivalences.
#include <gtest/gtest.h>

#include <functional>

#include "core/min_conversion.hpp"
#include "core/sparse_converters.hpp"
#include "graph/mincost_matching.hpp"
#include "sim/simulation.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using core::RequestVector;

/// Brute force: max matching size with at most `budget` converting edges.
std::int32_t brute_force_budgeted(const core::RequestGraph& g,
                                  std::int32_t budget) {
  std::int32_t best = 0;
  std::vector<char> used(static_cast<std::size_t>(g.k()), 0);
  const std::function<void(std::int32_t, std::int32_t, std::int32_t)> rec =
      [&](std::int32_t j, std::int32_t size, std::int32_t conversions) {
        best = std::max(best, size);
        if (j == g.n_requests()) return;
        rec(j + 1, size, conversions);
        for (core::Channel u = 0; u < g.k(); ++u) {
          if (used[static_cast<std::size_t>(u)] || !g.has_edge(j, u)) continue;
          const std::int32_t extra = g.wavelength_of(j) == u ? 0 : 1;
          if (conversions + extra > budget) continue;
          used[static_cast<std::size_t>(u)] = 1;
          rec(j + 1, size + 1, conversions + extra);
          used[static_cast<std::size_t>(u)] = 0;
        }
      };
  rec(0, 0, 0);
  return best;
}

TEST(SparseConverters, LargeBudgetEqualsUnconstrainedMaximum) {
  util::Rng rng(710);
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  for (int trial = 0; trial < 40; ++trial) {
    const auto rv = test::random_request_vector(rng, 8, 4, 0.4);
    const auto r = core::sparse_converter_schedule(rv, scheme, 8);
    EXPECT_EQ(r.assignment.granted, test::oracle_max_matching(scheme, rv));
    test::expect_valid_assignment(r.assignment, rv, scheme);
  }
}

TEST(SparseConverters, ZeroBudgetMeansStraightThroughOnly) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  RequestVector rv(6);
  rv.add(0, 3);  // three λ0 requests
  rv.add(2, 1);
  const auto r = core::sparse_converter_schedule(rv, scheme, 0);
  // Without converters only the identity channels can serve: one λ0 on b0,
  // the λ2 on b2.
  EXPECT_EQ(r.assignment.granted, 2);
  EXPECT_EQ(r.conversions, 0);
  EXPECT_EQ(r.assignment.source[0], 0);
  EXPECT_EQ(r.assignment.source[2], 2);
}

TEST(SparseConverters, MonotoneInBudget) {
  util::Rng rng(711);
  const auto scheme = ConversionScheme::circular(8, 2, 1);
  for (int trial = 0; trial < 30; ++trial) {
    const auto rv = test::random_request_vector(rng, 8, 5, 0.5);
    std::int32_t prev = -1;
    for (std::int32_t budget = 0; budget <= 8; ++budget) {
      const auto r = core::sparse_converter_schedule(rv, scheme, budget);
      EXPECT_LE(r.conversions, budget);
      EXPECT_GE(r.assignment.granted, prev);
      prev = r.assignment.granted;
      test::expect_valid_assignment(r.assignment, rv, scheme);
    }
    // Budget k is always enough for the unconstrained maximum.
    EXPECT_EQ(prev, test::oracle_max_matching(scheme, rv));
  }
}

TEST(SparseConverters, MatchesBruteForceOnSmallInstances) {
  util::Rng rng(712);
  for (int trial = 0; trial < 120; ++trial) {
    const auto k = static_cast<std::int32_t>(2 + rng.uniform_below(4));
    const auto e = static_cast<std::int32_t>(rng.uniform_below(2));
    const auto f = static_cast<std::int32_t>(
        rng.uniform_below(static_cast<std::uint64_t>(k - e)));
    const auto scheme = ConversionScheme::circular(k, e, f);
    if (scheme.is_full_range() && k > 1) {
      continue;  // fine, but keep instances tiny & varied
    }
    const auto rv = test::random_request_vector(rng, k, 2, 0.5);
    if (rv.total() > 6) continue;  // keep brute force tractable
    const core::RequestGraph g(scheme, rv);
    for (std::int32_t budget = 0; budget <= 3; ++budget) {
      const auto fast = core::sparse_converter_schedule(rv, scheme, budget);
      const auto brute = brute_force_budgeted(g, budget);
      ASSERT_EQ(fast.assignment.granted, brute)
          << "k=" << k << " e=" << e << " f=" << f << " budget=" << budget
          << " trial=" << trial;
    }
  }
}

TEST(SparseConverters, UsesMinimalConversionsAtItsCardinality) {
  // With budget >= the min-conversion optimum's usage, the budgeted schedule
  // should find the unconstrained maximum with minimum conversions.
  util::Rng rng(713);
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  for (int trial = 0; trial < 30; ++trial) {
    const auto rv = test::random_request_vector(rng, 8, 4, 0.4);
    const auto frugal = core::min_conversion_schedule(rv, scheme);
    const auto budgeted =
        core::sparse_converter_schedule(rv, scheme, frugal.conversions);
    EXPECT_EQ(budgeted.assignment.granted, frugal.assignment.granted);
    EXPECT_EQ(budgeted.conversions, frugal.conversions);
  }
}

TEST(SparseConverters, RespectsAvailabilityMask) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  RequestVector rv(6);
  rv.add(1, 2);
  const std::vector<std::uint8_t> mask{1, 0, 1, 1, 1, 1};  // b1 occupied
  const auto r = core::sparse_converter_schedule(rv, scheme, 1, mask);
  test::expect_valid_assignment(r.assignment, rv, scheme, mask);
  // λ1 can reach b0 and b2, both conversions; budget 1 allows only one.
  EXPECT_EQ(r.assignment.granted, 1);
  EXPECT_EQ(r.conversions, 1);
}

TEST(SparseConverters, SimulatedLossMonotoneInBudget) {
  // End-to-end: the slotted interconnect running the budgeted scheduler.
  double prev_loss = 1.0;
  double budget_k_loss = 0.0;
  for (const std::int32_t budget : {0, 2, 8}) {
    sim::SimulationConfig cfg;
    cfg.interconnect.n_fibers = 4;
    cfg.interconnect.scheme = core::ConversionScheme::circular(8, 1, 1);
    cfg.interconnect.algorithm = core::Algorithm::kSparseBudgeted;
    cfg.interconnect.converter_budget = budget;
    cfg.traffic.load = 0.3;
    cfg.slots = 2000;
    cfg.warmup = 200;
    cfg.seed = 5150;
    const auto r = sim::run_simulation(cfg);
    EXPECT_LE(r.loss_probability, prev_loss + 1e-9) << "budget " << budget;
    prev_loss = r.loss_probability;
    budget_k_loss = r.loss_probability;
  }
  // Budget k == unconstrained: same losses as the exact BFA scheduler.
  sim::SimulationConfig cfg;
  cfg.interconnect.n_fibers = 4;
  cfg.interconnect.scheme = core::ConversionScheme::circular(8, 1, 1);
  cfg.interconnect.algorithm = core::Algorithm::kAuto;
  cfg.traffic.load = 0.3;
  cfg.slots = 2000;
  cfg.warmup = 200;
  cfg.seed = 5150;
  const auto exact = sim::run_simulation(cfg);
  EXPECT_NEAR(budget_k_loss, exact.loss_probability, 1e-9);
}

TEST(SparseConverters, NegativeBudgetRejected) {
  EXPECT_THROW(core::sparse_converter_schedule(
                   RequestVector(4), ConversionScheme::circular(4, 1, 1), -1),
               std::logic_error);
}

TEST(BudgetedMatching, GenericBudgetSemantics) {
  // Two left vertices, one cheap edge, one expensive; budget excludes the
  // expensive one.
  graph::BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(1, 1);
  const auto cost = [](graph::VertexId a, graph::VertexId) {
    return a == 0 ? 0 : 5;
  };
  const auto tight = graph::budgeted_min_cost_matching(g, cost, 4);
  EXPECT_EQ(tight.matching.size(), 1u);
  EXPECT_EQ(tight.total_cost, 0);
  const auto loose = graph::budgeted_min_cost_matching(g, cost, 5);
  EXPECT_EQ(loose.matching.size(), 2u);
  EXPECT_EQ(loose.total_cost, 5);
}

}  // namespace
}  // namespace wdm
