// Min-cost maximum matching: cardinality always maximum, cost minimal among
// maximum matchings (verified against brute force on small graphs), and the
// converter-frugal scheduling built on it.
#include <gtest/gtest.h>

#include <functional>

#include "core/break_first_available.hpp"
#include "core/first_available.hpp"
#include "core/min_conversion.hpp"
#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"
#include "graph/mincost_matching.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

/// Brute force: enumerates all matchings, returns (max size, min cost at
/// max size). Only for tiny graphs.
std::pair<std::size_t, std::int64_t> brute_force(
    const graph::BipartiteGraph& g, const graph::EdgeCost& cost) {
  std::size_t best_size = 0;
  std::int64_t best_cost = 0;
  std::vector<char> right_used(static_cast<std::size_t>(g.n_right()), 0);

  const std::function<void(graph::VertexId, std::size_t, std::int64_t)> rec =
      [&](graph::VertexId a, std::size_t size, std::int64_t total) {
        if (a == g.n_left()) {
          if (size > best_size || (size == best_size && total < best_cost)) {
            best_size = size;
            best_cost = total;
          }
          return;
        }
        rec(a + 1, size, total);  // leave a unmatched
        for (const auto b : g.neighbors(a)) {
          if (right_used[static_cast<std::size_t>(b)]) continue;
          right_used[static_cast<std::size_t>(b)] = 1;
          rec(a + 1, size + 1, total + cost(a, b));
          right_used[static_cast<std::size_t>(b)] = 0;
        }
      };
  rec(0, 0, 0);
  return {best_size, best_cost};
}

TEST(MinCostMatching, EmptyAndTrivialGraphs) {
  const graph::BipartiteGraph empty(3, 3);
  const auto r = graph::min_cost_maximum_matching(
      empty, [](auto, auto) { return 1; });
  EXPECT_EQ(r.matching.size(), 0u);
  EXPECT_EQ(r.total_cost, 0);
}

TEST(MinCostMatching, PrefersCheapPerfectMatching) {
  // a0-{b0(0), b1(5)}, a1-{b0(0), b1(0)}: both perfect matchings have size
  // 2; the cheap one routes a0->b0, a1->b1 (cost 0) instead of 5.
  graph::BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(1, 1);
  const auto cost = [](graph::VertexId a, graph::VertexId b) {
    return (a == 0 && b == 1) ? 5 : 0;
  };
  const auto r = graph::min_cost_maximum_matching(g, cost);
  EXPECT_EQ(r.matching.size(), 2u);
  EXPECT_EQ(r.total_cost, 0);
  EXPECT_EQ(r.matching.right_of(0), 0);
}

TEST(MinCostMatching, CardinalityBeatsCost) {
  // Matching both costs 10; matching only a0 costs 0 — cardinality first.
  graph::BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  const auto cost = [](graph::VertexId a, graph::VertexId b) {
    return (a == 0 && b == 0) ? 0 : 10;
  };
  const auto r = graph::min_cost_maximum_matching(g, cost);
  EXPECT_EQ(r.matching.size(), 2u);  // must take both, paying 20 - wait:
  // a0->b1 (10) + a1->b0 (10) = 20; vs a0->b0 (0) + a1 unmatched (size 1).
  EXPECT_EQ(r.total_cost, 20);
}

TEST(MinCostMatching, MatchesBruteForceOnRandomGraphs) {
  util::Rng rng(606);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n_left = static_cast<graph::VertexId>(1 + rng.uniform_below(6));
    const auto n_right = static_cast<graph::VertexId>(1 + rng.uniform_below(6));
    const auto g = graph::random_bipartite(rng, n_left, n_right, 0.5);
    // Deterministic pseudo-random costs in [0, 4].
    const auto cost = [](graph::VertexId a, graph::VertexId b) {
      return static_cast<std::int32_t>((a * 7 + b * 13) % 5);
    };
    const auto fast = graph::min_cost_maximum_matching(g, cost);
    const auto [size, total] = brute_force(g, cost);
    EXPECT_TRUE(graph::is_valid_matching(g, fast.matching));
    ASSERT_EQ(fast.matching.size(), size) << "trial " << trial;
    ASSERT_EQ(fast.total_cost, total) << "trial " << trial;
  }
}

TEST(MinCostMatching, AgreesWithHopcroftKarpOnCardinality) {
  util::Rng rng(607);
  for (int trial = 0; trial < 60; ++trial) {
    const auto g = graph::random_bipartite(rng, 15, 15, 0.3);
    const auto r = graph::min_cost_maximum_matching(
        g, [](auto a, auto b) { return static_cast<std::int32_t>((a + b) % 3); });
    EXPECT_EQ(r.matching.size(), graph::hopcroft_karp(g).size());
  }
}

// --- Converter-frugal scheduling --------------------------------------------

TEST(MinConversion, CountsConversions) {
  core::ChannelAssignment a(4);
  a.source[0] = 0;  // straight through
  a.source[1] = 2;  // converted
  a.source[3] = 3;  // straight through
  a.granted = 3;
  EXPECT_EQ(core::conversions_used(a), 1);
}

TEST(MinConversion, StraightThroughWhenPossible) {
  // One request per wavelength: the identity assignment needs 0 converters.
  const auto scheme = core::ConversionScheme::circular(6, 1, 1);
  core::RequestVector rv(6);
  for (core::Wavelength w = 0; w < 6; ++w) rv.add(w);
  const auto r = core::min_conversion_schedule(rv, scheme);
  EXPECT_EQ(r.assignment.granted, 6);
  EXPECT_EQ(r.conversions, 0);
}

TEST(MinConversion, MaximumCardinalityAndNeverMoreConversionsThanBfa) {
  util::Rng rng(608);
  const auto scheme = core::ConversionScheme::circular(8, 1, 1);
  for (int trial = 0; trial < 60; ++trial) {
    const auto rv = test::random_request_vector(rng, 8, 4, 0.4);
    const auto mask = test::random_mask(rng, 8, 0.8);
    const auto frugal = core::min_conversion_schedule(rv, scheme, mask);
    test::expect_valid_assignment(frugal.assignment, rv, scheme, mask);
    EXPECT_EQ(frugal.assignment.granted,
              test::oracle_max_matching(scheme, rv, mask));
    const auto bfa = core::break_first_available(rv, scheme, mask);
    EXPECT_EQ(frugal.assignment.granted, bfa.granted);
    EXPECT_LE(frugal.conversions, core::conversions_used(bfa));
  }
}

TEST(MinConversion, NonCircularToo) {
  util::Rng rng(609);
  const auto scheme = core::ConversionScheme::non_circular(8, 2, 1);
  for (int trial = 0; trial < 40; ++trial) {
    const auto rv = test::random_request_vector(rng, 8, 3, 0.4);
    const auto frugal = core::min_conversion_schedule(rv, scheme);
    const auto fa = core::first_available(rv, scheme);
    EXPECT_EQ(frugal.assignment.granted, fa.granted);
    EXPECT_LE(frugal.conversions, core::conversions_used(fa));
  }
}

}  // namespace
}  // namespace wdm
