// The umbrella header must compile standalone and expose the whole API.
#include "wdm.hpp"

#include <gtest/gtest.h>

namespace wdm {
namespace {

TEST(Umbrella, EndToEndThroughTheSingleHeader) {
  const auto scheme = core::ConversionScheme::circular(6, 1, 1);
  const core::RequestVector rv{2, 1, 0, 1, 1, 2};
  EXPECT_EQ(core::break_first_available(rv, scheme).granted, 6);
  EXPECT_EQ(graph::hopcroft_karp(
                core::RequestGraph(scheme, rv).to_bipartite())
                .size(),
            6u);
  EXPECT_GT(sim::erlang_b(1, 1.0), 0.49);
}

}  // namespace
}  // namespace wdm
