// QoS classes in the time domain: multi-class traffic through the slotted
// interconnect under strict priority.
#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using sim::SimulationConfig;

SimulationConfig two_class_config(double high_share, double load) {
  SimulationConfig cfg;
  cfg.interconnect.n_fibers = 4;
  cfg.interconnect.scheme = ConversionScheme::circular(8, 1, 1);
  cfg.traffic.load = load;
  cfg.traffic.class_mix = {high_share, 1.0 - high_share};
  cfg.slots = 3000;
  cfg.warmup = 300;
  cfg.seed = 2468;
  return cfg;
}

TEST(QosSim, PerClassAccountingConserves) {
  const auto r = sim::run_simulation(two_class_config(0.3, 0.8));
  ASSERT_EQ(r.class_arrivals.size(), 2u);
  ASSERT_EQ(r.class_losses.size(), 2u);
  EXPECT_EQ(r.class_arrivals[0] + r.class_arrivals[1], r.arrivals);
  EXPECT_EQ(r.class_losses[0] + r.class_losses[1], r.losses);
  EXPECT_LE(r.class_losses[0], r.class_arrivals[0]);
  // Class mix roughly honoured.
  EXPECT_NEAR(static_cast<double>(r.class_arrivals[0]) /
                  static_cast<double>(r.arrivals),
              0.3, 0.03);
}

TEST(QosSim, HighClassLosesLessUnderContention) {
  const auto r = sim::run_simulation(two_class_config(0.3, 0.9));
  const double high_loss = static_cast<double>(r.class_losses[0]) /
                           static_cast<double>(r.class_arrivals[0]);
  const double low_loss = static_cast<double>(r.class_losses[1]) /
                          static_cast<double>(r.class_arrivals[1]);
  EXPECT_LT(high_loss, low_loss);
  EXPECT_LT(high_loss, 0.5 * low_loss);  // strict priority bites hard
}

TEST(QosSim, SingleClassReportsNoClassVectors) {
  SimulationConfig cfg = two_class_config(0.3, 0.5);
  cfg.traffic.class_mix = {1.0};
  const auto r = sim::run_simulation(cfg);
  EXPECT_TRUE(r.class_arrivals.empty());
  EXPECT_TRUE(r.class_losses.empty());
}

TEST(QosSim, ThreeClassesAreOrdered) {
  SimulationConfig cfg = two_class_config(0.2, 0.95);
  cfg.traffic.class_mix = {0.2, 0.3, 0.5};
  cfg.slots = 5000;
  const auto r = sim::run_simulation(cfg);
  ASSERT_EQ(r.class_arrivals.size(), 3u);
  std::vector<double> loss(3);
  for (std::size_t c = 0; c < 3; ++c) {
    loss[c] = static_cast<double>(r.class_losses[c]) /
              static_cast<double>(r.class_arrivals[c]);
  }
  EXPECT_LE(loss[0], loss[1] + 0.01);
  EXPECT_LE(loss[1], loss[2] + 0.01);
}

TEST(QosSim, PriorityClassesWorkWithRearrangeAndHolding) {
  SimulationConfig cfg = two_class_config(0.25, 0.6);
  cfg.interconnect.policy = sim::OccupiedPolicy::kRearrange;
  cfg.traffic.holding = sim::HoldingTime::kGeometric;
  cfg.traffic.mean_holding = 4.0;
  const auto r = sim::run_simulation(cfg);
  EXPECT_EQ(r.preemptions, 0u);
  EXPECT_EQ(r.class_losses[0] + r.class_losses[1], r.losses);
}

TEST(QosSim, BadClassMixRejected) {
  SimulationConfig cfg = two_class_config(0.3, 0.5);
  cfg.traffic.class_mix = {0.3, 0.3};  // sums to 0.6
  EXPECT_THROW(sim::run_simulation(cfg), std::logic_error);
  cfg.traffic.class_mix = {};
  EXPECT_THROW(sim::run_simulation(cfg), std::logic_error);
}

}  // namespace
}  // namespace wdm
