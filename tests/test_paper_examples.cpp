// Bit-for-bit reproduction of the paper's worked examples:
// Figure 2 (conversion graphs), Figure 3 (request graphs), Figure 4
// (maximum matchings), Figure 5 (breaking at a2 b1), the Section I
// motivating contention example, and the Section IV.C / Corollary 1 bounds.
#include <gtest/gtest.h>

#include <set>

#include "core/break_first_available.hpp"
#include "core/breaking.hpp"
#include "core/crossing.hpp"
#include "core/first_available.hpp"
#include "core/full_range.hpp"
#include "core/request_graph.hpp"
#include "graph/hopcroft_karp.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::Channel;
using core::ConversionKind;
using core::ConversionScheme;
using core::RequestGraph;
using core::RequestVector;
using core::Wavelength;

// --- Figure 2: conversion graphs, k = 6, d = 3 (e = f = 1) -----------------

TEST(PaperFig2, CircularConversionGraph) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  EXPECT_EQ(scheme.degree(), 3);
  const auto g = scheme.conversion_graph();
  EXPECT_EQ(g.n_edges(), 18u);  // every wavelength has exactly d = 3 edges
  for (Wavelength i = 0; i < 6; ++i) {
    // λi converts to λ(i-1) mod 6, λi, λ(i+1) mod 6 — the paper's example.
    EXPECT_TRUE(g.has_edge(i, (i + 5) % 6));
    EXPECT_TRUE(g.has_edge(i, i));
    EXPECT_TRUE(g.has_edge(i, (i + 1) % 6));
    EXPECT_EQ(g.degree(i), 3u);
  }
  // The adjacency set of λ0 is {λ5, λ0, λ1} = interval [-1, 1] mod 6.
  EXPECT_TRUE(scheme.can_convert(0, 5));
  EXPECT_TRUE(scheme.can_convert(0, 0));
  EXPECT_TRUE(scheme.can_convert(0, 1));
  EXPECT_FALSE(scheme.can_convert(0, 2));
  EXPECT_FALSE(scheme.can_convert(0, 4));
}

TEST(PaperFig2, NonCircularConversionGraph) {
  const auto scheme = ConversionScheme::non_circular(6, 1, 1);
  const auto g = scheme.conversion_graph();
  // λ0 can only be converted to λ0 and λ1 — not to λ5 (the paper's example).
  EXPECT_TRUE(scheme.can_convert(0, 0));
  EXPECT_TRUE(scheme.can_convert(0, 1));
  EXPECT_FALSE(scheme.can_convert(0, 5));
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(5), 2u);
  for (Wavelength i = 1; i < 5; ++i) EXPECT_EQ(g.degree(i), 3u);
  EXPECT_EQ(g.n_edges(), 16u);
}

// --- Figure 3: request graphs for request vector [2,1,0,1,1,2] -------------

class PaperFig3 : public ::testing::Test {
 protected:
  const RequestVector rv_{2, 1, 0, 1, 1, 2};
};

TEST_F(PaperFig3, LeftVertexWavelengths) {
  const RequestGraph g(ConversionScheme::circular(6, 1, 1), rv_);
  ASSERT_EQ(g.n_requests(), 7);
  // W(0) = W(1) = 0 and W(2) = 1 — exactly the paper's example.
  EXPECT_EQ(g.wavelength_of(0), 0);
  EXPECT_EQ(g.wavelength_of(1), 0);
  EXPECT_EQ(g.wavelength_of(2), 1);
  EXPECT_EQ(g.wavelength_of(3), 3);
  EXPECT_EQ(g.wavelength_of(4), 4);
  EXPECT_EQ(g.wavelength_of(5), 5);
  EXPECT_EQ(g.wavelength_of(6), 5);
}

TEST_F(PaperFig3, CircularEdges) {
  const RequestGraph g(ConversionScheme::circular(6, 1, 1), rv_);
  // a0 (λ0) reaches b5, b0, b1 — including the wrap edge a0 b5.
  EXPECT_TRUE(g.has_edge(0, 5));
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 2));
  // a6 (λ5) reaches b4, b5, b0 — including the wrap edge a6 b0.
  EXPECT_TRUE(g.has_edge(6, 0));
  EXPECT_TRUE(g.has_edge(6, 4));
  EXPECT_FALSE(g.has_edge(6, 1));
}

TEST_F(PaperFig3, NonCircularEdges) {
  const RequestGraph g(ConversionScheme::non_circular(6, 1, 1), rv_);
  // a2 is on λ1; B(a2) = {b0, b1, b2} = interval [0, 2] (paper Section III).
  EXPECT_TRUE(g.has_edge(2, 0));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_TRUE(g.has_edge(2, 2));
  EXPECT_FALSE(g.has_edge(2, 3));
  // No wrap edges: a0 (λ0) does not reach b5, a6 (λ5) does not reach b0.
  EXPECT_FALSE(g.has_edge(0, 5));
  EXPECT_FALSE(g.has_edge(6, 0));
  // The non-circular request graph is convex (Section III).
  EXPECT_TRUE(g.to_convex().is_staircase());
}

// --- Figure 4: maximum matchings of both Figure 3 graphs have size 6 -------

TEST_F(PaperFig3, Fig4MaximumMatchingSizes) {
  const auto circular = ConversionScheme::circular(6, 1, 1);
  const auto non_circular = ConversionScheme::non_circular(6, 1, 1);

  // Seven requests, six channels: the maximum matchings have size 6 in both
  // conversion types (Figure 4 shows them explicitly and they are identical
  // in cardinality).
  EXPECT_EQ(test::oracle_max_matching(circular, rv_), 6);
  EXPECT_EQ(test::oracle_max_matching(non_circular, rv_), 6);

  const auto bfa = core::break_first_available(rv_, circular);
  EXPECT_EQ(bfa.granted, 6);
  test::expect_valid_assignment(bfa, rv_, circular);

  const auto fa = core::first_available(rv_, non_circular);
  EXPECT_EQ(fa.granted, 6);
  test::expect_valid_assignment(fa, rv_, non_circular);
}

TEST_F(PaperFig3, Fig4NonCircularMatchingAssignsEveryChannel) {
  // In Figure 4(b) all six channels are matched; First Available reproduces
  // a perfect channel cover: b0..b5 all carry some request.
  const auto fa = core::first_available(rv_, ConversionScheme::non_circular(6, 1, 1));
  for (Channel u = 0; u < 6; ++u) {
    EXPECT_NE(fa.source[static_cast<std::size_t>(u)], core::kNone)
        << "channel " << u << " unmatched";
  }
}

// --- Section I: the motivating contention example ---------------------------

TEST(PaperSection1, ContentionExampleLosesExactlyOneRequest) {
  // "two connections on λ1, three connections on λ2 and one connection on λ4"
  // with k = 6, d = 3: five requests on λ1/λ2 compete for only four output
  // wavelengths {λ0..λ3}, so exactly one must be dropped; full-range
  // conversion would satisfy all six.
  RequestVector rv(6);
  rv.add(1, 2);
  rv.add(2, 3);
  rv.add(4, 1);

  const auto circular = ConversionScheme::circular(6, 1, 1);
  EXPECT_EQ(test::oracle_max_matching(circular, rv), 5);
  const auto bfa = core::break_first_available(rv, circular);
  EXPECT_EQ(bfa.granted, 5);
  test::expect_valid_assignment(bfa, rv, circular);

  const auto full = core::full_range_schedule(rv);
  EXPECT_EQ(full.granted, 6);
}

// --- Figure 5: breaking the circular request graph at a2 b1 ----------------

TEST_F(PaperFig3, Fig5BreakingAtA2B1) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  const RequestGraph g(scheme, rv_);
  // a2 is the (only) request on λ1; break at edge a2 b1 (w_i = 1, u = 1).
  const Wavelength w_i = 1;
  const Channel u = 1;
  ASSERT_TRUE(g.has_edge(2, u));

  // Closed-form reduced adjacencies, mapped back to original channels.
  const auto channels_of = [&](Wavelength w) {
    std::set<Channel> out;
    const auto iv = core::reduced_adjacency(scheme, w_i, u, w);
    for (auto pos = iv.begin; pos <= iv.end; ++pos) {
      out.insert(core::rotated_to_channel(u, pos, 6));
    }
    return out;
  };
  // After deleting b1 and the edges crossing a2 b1 (Figure 5a):
  EXPECT_EQ(channels_of(0), (std::set<Channel>{5, 0}));   // a0, a1
  EXPECT_EQ(channels_of(3), (std::set<Channel>{2, 3, 4}));  // a3
  EXPECT_EQ(channels_of(4), (std::set<Channel>{3, 4, 5}));  // a4
  EXPECT_EQ(channels_of(5), (std::set<Channel>{4, 5, 0}));  // a5, a6

  // The closed form agrees with literal Definition-2 deletion.
  const auto reference = core::reduced_graph_reference(g, 2, u);
  for (std::int32_t j = 0; j < g.n_requests(); ++j) {
    if (j == 2) {
      EXPECT_EQ(reference.degree(j), 0u);
      continue;
    }
    const std::set<Channel> expected = channels_of(g.wavelength_of(j));
    const auto& nb = reference.neighbors(j);
    EXPECT_EQ(std::set<Channel>(nb.begin(), nb.end()), expected)
        << "left vertex " << j;
  }

  // Lemma 2: in the rotated ordering the reduced graph is staircase convex.
  // (Wavelength order after rotation: λ2, λ3, λ4, λ5, λ0 — λ2 has no
  // requests, λ1's group is exhausted by a2 itself.)
  graph::Interval prev{0, -1};
  bool seen = false;
  for (std::int32_t kappa = 0; kappa < 6; ++kappa) {
    const Wavelength w = static_cast<Wavelength>((w_i + kappa) % 6);
    const std::int32_t count = rv_.count(w) - (w == w_i ? 1 : 0);
    if (count <= 0) continue;
    const auto iv = core::reduced_adjacency(scheme, w_i, u, w);
    if (iv.empty()) continue;
    if (seen) {
      EXPECT_GE(iv.begin, prev.begin);
      EXPECT_GE(iv.end, prev.end);
    }
    prev = iv;
    seen = true;
  }

  // Breaking at a2 b1 plus First Available on the reduced graph recovers a
  // maximum matching (Lemma 3): size 6 total.
  const auto single = core::bfa_single_break(rv_, scheme, {}, w_i, u);
  EXPECT_EQ(single.granted, 6);
  test::expect_valid_assignment(single, rv_, scheme);
}

// --- Section IV.C: approximation bounds (Theorem 3, Corollary 1) -----------

TEST(PaperSection4C, CorollaryOneBounds) {
  // δ(u) = (d+1)/2 minimises max{δ-1, d-δ} at (d-1)/2.
  EXPECT_EQ(core::breaking_gap_bound(3, 2), 1);  // d = 3: at most 1 off
  EXPECT_EQ(core::breaking_gap_bound(5, 3), 2);  // d = 5: at most 2 off
  // Breaking at an extreme edge is worst: d - 1.
  EXPECT_EQ(core::breaking_gap_bound(3, 1), 2);
  EXPECT_EQ(core::breaking_gap_bound(3, 3), 2);
  EXPECT_EQ(core::breaking_gap_bound(1, 1), 0);  // d = 1 is always exact
}

TEST(PaperSection4C, ApproxPicksShortestEdge) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  const RequestVector rv{2, 1, 0, 1, 1, 2};
  const auto approx = core::approx_break_first_available(rv, scheme);
  // With e = f = 1 (d = 3) the "shortest" edge is δ = 2, i.e. u = w_i: the
  // first requesting wavelength is λ0, so the break is at channel 0.
  EXPECT_EQ(approx.delta, 2);
  EXPECT_EQ(approx.break_channel, 0);
  EXPECT_EQ(approx.gap_bound, 1);
  // Theorem 3: within gap_bound of the maximum (6).
  EXPECT_GE(approx.assignment.granted, 6 - approx.gap_bound);
  test::expect_valid_assignment(approx.assignment, rv, scheme);
}

}  // namespace
}  // namespace wdm
