// sim::Fleet — the sharded many-fabric serving engine.
//
// The contracts under test:
//  * determinism — a fleet digest is a pure function of (config, seeds,
//    slots stepped): thread counts, pinning, and step()/run() batching must
//    not change it; any one shard's seed must;
//  * independence — shards never interact: a fleet of F shards equals F
//    standalone interconnects run serially from the same derived seeds;
//  * thread budget — the per-shard oversubscription clamp keeps the total
//    spawned thread count within max(shards, budget) (the satellite fix for
//    nested ThreadPool fan-out);
//  * checkpoint/resume — one CheckpointStore chain per shard under
//    <dir>/shard-<i>/ restores the whole fleet bit-for-bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "sim/checkpoint.hpp"
#include "sim/fleet.hpp"
#include "sim/interconnect.hpp"
#include "sim/traffic.hpp"
#include "util/rng.hpp"

namespace wdm {
namespace {

namespace fs = std::filesystem;

sim::FleetConfig fleet_config(std::size_t shards, std::int32_t n_fibers = 8,
                              std::int32_t k = 4) {
  sim::FleetConfig cfg;
  cfg.shards = shards;
  cfg.seed = 7;
  cfg.interconnect.n_fibers = n_fibers;
  cfg.interconnect.scheme = core::ConversionScheme::circular(k, 1, 1);
  cfg.traffic.load = 0.7;
  cfg.traffic.holding = sim::HoldingTime::kGeometric;
  cfg.traffic.mean_holding = 2.0;
  return cfg;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

TEST(Fleet, DigestIsThreadCountAndPinningInvariant) {
  const std::uint64_t kSlots = 60;
  std::uint64_t reference = 0;
  bool first = true;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{4}}) {
    for (const bool pin : {false, true}) {
      sim::FleetConfig cfg = fleet_config(3);
      cfg.threads_per_shard = threads;
      // A generous budget so the sweep actually varies the group size even
      // on a small CI host; the clamp test below covers tight budgets.
      cfg.max_total_threads = 3 * threads;
      cfg.pin_cpus = pin;
      sim::Fleet fleet(cfg);
      fleet.run(kSlots);
      if (first) {
        reference = fleet.fleet_digest();
        first = false;
      } else {
        EXPECT_EQ(fleet.fleet_digest(), reference)
            << "threads=" << threads << " pin=" << pin;
      }
    }
  }
}

TEST(Fleet, StepAndRunBatchingAgree) {
  sim::FleetConfig cfg = fleet_config(2);
  sim::Fleet stepped(cfg);
  sim::Fleet batched(cfg);
  for (int i = 0; i < 40; ++i) stepped.step();
  batched.run(40);
  EXPECT_EQ(stepped.fleet_digest(), batched.fleet_digest());
  EXPECT_EQ(stepped.current_slot(), 40u);
  EXPECT_EQ(batched.current_slot(), 40u);
  EXPECT_EQ(stepped.total_arrivals(), batched.total_arrivals());
  EXPECT_EQ(stepped.total_granted(), batched.total_granted());
}

TEST(Fleet, AnyShardSeedChangeChangesTheDigest) {
  sim::FleetConfig cfg = fleet_config(3);
  sim::Fleet base(cfg);
  base.run(30);

  // Pin the derived seeds explicitly, then perturb one shard at a time.
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < base.shards(); ++i) {
    seeds.push_back(base.shard_seed(i));
  }
  sim::FleetConfig pinned = cfg;
  pinned.shard_seeds = seeds;
  sim::Fleet same(pinned);
  same.run(30);
  EXPECT_EQ(same.fleet_digest(), base.fleet_digest())
      << "explicit copies of the derived seeds must reproduce the fleet";

  for (std::size_t victim = 0; victim < seeds.size(); ++victim) {
    sim::FleetConfig perturbed = cfg;
    perturbed.shard_seeds = seeds;
    perturbed.shard_seeds[victim] ^= 1;
    sim::Fleet other(perturbed);
    other.run(30);
    EXPECT_NE(other.fleet_digest(), base.fleet_digest())
        << "shard " << victim << "'s seed must reach the digest";
  }
}

TEST(Fleet, ShardsMatchStandaloneInterconnectsRunSerially) {
  sim::FleetConfig cfg = fleet_config(3);
  sim::Fleet fleet(cfg);
  fleet.run(50);

  for (std::size_t shard = 0; shard < fleet.shards(); ++shard) {
    // Reproduce shard i standalone: same derived master seed, same
    // seeder draw order as Fleet's driver (interconnect, then traffic).
    util::Rng seeder(fleet.shard_seed(shard));
    sim::InterconnectConfig icfg = cfg.interconnect;
    icfg.seed = seeder.next();
    sim::Interconnect solo(icfg);
    sim::TrafficGenerator traffic(icfg.n_fibers, icfg.scheme.k(), cfg.traffic,
                                  seeder.next());
    std::vector<std::uint8_t> busy;
    std::vector<core::SlotRequest> arrivals;
    for (int s = 0; s < 50; ++s) {
      solo.input_channel_busy_into(busy);
      traffic.next_slot_into(busy, arrivals);
      solo.step(arrivals);
    }
    EXPECT_EQ(sim::state_digest(solo),
              sim::state_digest(fleet.shard_interconnect(shard)))
        << "shard " << shard << " must equal its standalone twin";
  }
}

TEST(Fleet, ClampNeverSpawnsMoreWorkersThanTheBudget) {
  // The satellite regression: a 4-shard fleet on a small host (modeled by
  // max_total_threads) must not multiply per-shard pools into more threads
  // than cores, no matter what threads_per_shard asks for.
  for (const std::size_t budget : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}, std::size_t{8}}) {
    sim::FleetConfig cfg = fleet_config(4);
    cfg.threads_per_shard = 64;  // deliberately absurd
    cfg.max_total_threads = budget;
    sim::Fleet fleet(cfg);
    EXPECT_LE(fleet.total_threads(), std::max<std::size_t>(4, budget))
        << "budget=" << budget;
    EXPECT_GE(fleet.threads_per_shard(), 1u);
    fleet.run(5);  // and it still serves
    EXPECT_EQ(fleet.current_slot(), 5u);
  }
  // On a 1-thread budget every group collapses to its driver: no pools.
  sim::FleetConfig tight = fleet_config(4);
  tight.threads_per_shard = 8;
  tight.max_total_threads = 4;
  sim::Fleet fleet(tight);
  EXPECT_EQ(fleet.threads_per_shard(), 1u);
  EXPECT_EQ(fleet.pool_workers_per_shard(), 0u);
  EXPECT_EQ(fleet.total_threads(), 4u);
}

TEST(Fleet, MergedMetricsEqualTheSumOfShardMetrics) {
  sim::FleetConfig cfg = fleet_config(3);
  sim::Fleet fleet(cfg);
  fleet.run(80);
  const sim::MetricsCollector merged = fleet.merged_metrics();
  std::uint64_t slots = 0, arrivals = 0, granted = 0, losses = 0;
  for (std::size_t i = 0; i < fleet.shards(); ++i) {
    const auto& m = fleet.shard_metrics(i);
    slots += m.slots();
    arrivals += m.raw_arrivals();
    granted += m.granted();
    losses += m.losses();
  }
  EXPECT_EQ(merged.slots(), slots);
  EXPECT_EQ(merged.raw_arrivals(), arrivals);
  EXPECT_EQ(merged.granted(), granted);
  EXPECT_EQ(merged.losses(), losses);
  EXPECT_EQ(merged.raw_arrivals(), fleet.total_arrivals());
  EXPECT_EQ(merged.granted(), fleet.total_granted());
  EXPECT_GT(merged.granted(), 0u);
}

TEST(Fleet, LastStepStatsSumShardSlots) {
  sim::FleetConfig cfg = fleet_config(2);
  sim::Fleet fleet(cfg);
  fleet.step();
  std::uint64_t arrivals = 0, granted = 0;
  for (std::size_t i = 0; i < fleet.shards(); ++i) {
    const auto& m = fleet.shard_metrics(i);
    arrivals += m.raw_arrivals();
    granted += m.granted();
  }
  EXPECT_EQ(fleet.last_step_stats().arrivals, arrivals);
  EXPECT_EQ(fleet.last_step_stats().granted, granted);
}

TEST(Fleet, CheckpointResumeRestoresTheWholeFleetBitForBit) {
  const fs::path dir = fresh_dir("fleet_ckpt");
  sim::FleetConfig cfg = fleet_config(3);

  // Reference: uninterrupted run to slot 90.
  sim::Fleet reference(cfg);
  reference.run(90);
  const std::uint64_t want = reference.fleet_digest();

  // Interrupted run: checkpoint at slot 60, abandon, resume, finish.
  {
    sim::Fleet fleet(cfg);
    sim::CheckpointPolicy policy;
    policy.dir = dir.string();
    policy.full_every = 2;
    fleet.open_checkpoints(policy);
    fleet.run(60);
    fleet.write_checkpoint();
  }
  sim::Fleet resumed(cfg);
  const sim::FleetRecovery recovery = resumed.resume_from(dir.string());
  ASSERT_TRUE(recovery.recovered);
  EXPECT_EQ(recovery.slot, 60u);
  EXPECT_EQ(resumed.current_slot(), 60u);
  ASSERT_EQ(recovery.shards.size(), 3u);
  for (const auto& report : recovery.shards) {
    EXPECT_TRUE(report.recovered);
    EXPECT_TRUE(report.discarded.empty());
  }
  resumed.run(30);
  EXPECT_EQ(resumed.fleet_digest(), want)
      << "resume + 30 slots must equal the uninterrupted 90-slot run";
}

TEST(Fleet, ResumeFallsBackToTheNewestAgreeingSlot) {
  // A SIGKILL mid write_checkpoint leaves some shards one frame ahead of
  // others. Model it by deleting shard 1's newest frame: resume must
  // negotiate back to the newest slot every chain agrees on (all-or-nothing
  // on an agreeing slot), not fail and not resume shards at mixed slots.
  const fs::path dir = fresh_dir("fleet_ckpt_skew");
  sim::FleetConfig cfg = fleet_config(2);
  {
    sim::Fleet fleet(cfg);
    sim::CheckpointPolicy policy;
    policy.dir = dir.string();
    policy.full_every = 1;
    fleet.open_checkpoints(policy);
    fleet.run(20);
    fleet.write_checkpoint();
    fleet.run(10);
    fleet.write_checkpoint();
  }
  std::vector<fs::path> frames;
  for (const auto& entry : fs::directory_iterator(dir / "shard-1")) {
    frames.push_back(entry.path());
  }
  ASSERT_EQ(frames.size(), 2u);
  std::sort(frames.begin(), frames.end());
  fs::remove(frames.back());

  sim::Fleet resumed(cfg);
  const sim::FleetRecovery recovery = resumed.resume_from(dir.string());
  ASSERT_TRUE(recovery.recovered);
  EXPECT_EQ(recovery.slot, 20u);
  for (const auto& report : recovery.shards) {
    EXPECT_EQ(report.slot, 20u);
  }

  // The negotiated state is the real slot-20 fleet state: finishing the run
  // matches an uninterrupted fleet.
  resumed.run(20);
  sim::Fleet reference(cfg);
  reference.run(40);
  EXPECT_EQ(resumed.fleet_digest(), reference.fleet_digest());
}

TEST(Fleet, ResumeFailsCleanlyOnAMissingShardChain) {
  const fs::path dir = fresh_dir("fleet_ckpt_partial");
  sim::FleetConfig cfg = fleet_config(2);
  {
    sim::Fleet fleet(cfg);
    sim::CheckpointPolicy policy;
    policy.dir = dir.string();
    fleet.open_checkpoints(policy);
    fleet.run(20);
    fleet.write_checkpoint();
  }
  fs::remove_all(dir / "shard-1");
  sim::Fleet resumed(cfg);
  const sim::FleetRecovery recovery = resumed.resume_from(dir.string());
  EXPECT_FALSE(recovery.recovered);
}

TEST(Fleet, UnsupervisedShardErrorLeavesTheFleetUsableAndDestructible) {
  // Exception-safety contract of the *unsupervised* fleet (supervision off
  // is the default): a shard throwing mid-run must surface as an exception
  // from run()/step() — not a deadlock, not a crash — and the Fleet must
  // remain queryable and destructible afterwards.
  sim::FleetConfig cfg = fleet_config(3);
  sim::ShardFaultEvent crash;
  crash.shard = 1;
  crash.slot = 10;
  crash.kind = sim::ShardFaultKind::kCrash;
  cfg.shard_faults.push_back(crash);

  sim::Fleet fleet(cfg);
  EXPECT_THROW(fleet.run(20), sim::ShardCrashInjected);
  // The healthy shards served every slot; the barrier never deadlocked.
  EXPECT_EQ(fleet.current_slot(), 20u);
  EXPECT_EQ(fleet.shard_interconnect(0).current_slot(), 20);
  EXPECT_EQ(fleet.shard_interconnect(2).current_slot(), 20);

  // A second step fails cleanly with the same parked error (the errored
  // shard does not step again), and the digest stays computable.
  EXPECT_THROW(fleet.step(), sim::ShardCrashInjected);
  EXPECT_EQ(fleet.shard_interconnect(1).current_slot(), 10);
  (void)fleet.fleet_digest();
  // Destruction at scope exit joins every driver — the real assertion is
  // that this test terminates at all.
}

TEST(Fleet, ScriptedFaultsThrowOnAnOutOfRangeShard) {
  sim::FleetConfig cfg = fleet_config(2);
  sim::ShardFaultEvent crash;
  crash.shard = 7;  // fleet has 2
  cfg.shard_faults.push_back(crash);
  EXPECT_ANY_THROW(sim::Fleet fleet(cfg));
}

TEST(Fleet, ResetCountersDropsObserversButNotState) {
  sim::FleetConfig cfg = fleet_config(2);
  sim::Fleet fleet(cfg);
  fleet.run(30);
  const std::uint64_t digest_before = fleet.fleet_digest();
  EXPECT_GT(fleet.total_arrivals(), 0u);
  fleet.reset_counters();
  EXPECT_EQ(fleet.total_arrivals(), 0u);
  EXPECT_EQ(fleet.shard_metrics(0).slots(), 0u);
  EXPECT_EQ(fleet.fleet_digest(), digest_before)
      << "metrics are observers: resetting them must not touch sim state";
}

}  // namespace
}  // namespace wdm
