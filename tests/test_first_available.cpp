// First Available Algorithm (Table 2): Theorem 1 says it finds a maximum
// matching in every non-circular request graph. The property sweeps check
// optimality against Hopcroft–Karp over randomized instances, with and
// without occupied channels (Section V).
#include <gtest/gtest.h>

#include <tuple>

#include "core/first_available.hpp"
#include "graph/glover.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using core::RequestVector;

TEST(FirstAvailable, EmptyRequestsGrantNothing) {
  const auto scheme = ConversionScheme::non_circular(8, 1, 1);
  const auto out = core::first_available(RequestVector(8), scheme);
  EXPECT_EQ(out.granted, 0);
  for (const auto w : out.source) EXPECT_EQ(w, core::kNone);
}

TEST(FirstAvailable, SingleWavelengthSingleRequest) {
  const auto scheme = ConversionScheme::non_circular(4, 1, 1);
  RequestVector rv(4);
  rv.add(2);
  const auto out = core::first_available(rv, scheme);
  EXPECT_EQ(out.granted, 1);
  // FA grants the first adjacent channel: b1 (BEGIN value of λ2 is 1).
  EXPECT_EQ(out.source[1], 2);
}

TEST(FirstAvailable, NoConversionDegenerate) {
  // e = f = 0: wavelength-continuity constraint; grants min(count, 1) per λ.
  const auto scheme = ConversionScheme::non_circular(5, 0, 0);
  RequestVector rv(5);
  rv.add(0, 3);
  rv.add(2, 1);
  rv.add(4, 2);
  const auto out = core::first_available(rv, scheme);
  EXPECT_EQ(out.granted, 3);
  EXPECT_EQ(out.source[0], 0);
  EXPECT_EQ(out.source[2], 2);
  EXPECT_EQ(out.source[4], 4);
  EXPECT_EQ(out.source[1], core::kNone);
}

TEST(FirstAvailable, OverloadedGrantsAllChannels) {
  const auto scheme = ConversionScheme::non_circular(6, 2, 2);
  RequestVector rv(6);
  for (core::Wavelength w = 0; w < 6; ++w) rv.add(w, 4);
  const auto out = core::first_available(rv, scheme);
  EXPECT_EQ(out.granted, 6);  // every channel busy
}

TEST(FirstAvailable, EndWavelengthsAreDisadvantaged) {
  // Non-circular conversion: λ0 with e=1,f=1 reaches only {0,1}. Three λ0
  // requests can win at most two channels.
  const auto scheme = ConversionScheme::non_circular(6, 1, 1);
  RequestVector rv(6);
  rv.add(0, 3);
  const auto out = core::first_available(rv, scheme);
  EXPECT_EQ(out.granted, 2);
  EXPECT_EQ(out.source[0], 0);
  EXPECT_EQ(out.source[1], 0);
}

TEST(FirstAvailable, OccupiedChannelsAreSkipped) {
  const auto scheme = ConversionScheme::non_circular(6, 1, 1);
  RequestVector rv(6);
  rv.add(1, 2);
  std::vector<std::uint8_t> mask{1, 0, 1, 1, 1, 1};  // b1 occupied
  const auto out = core::first_available(rv, scheme, mask);
  EXPECT_EQ(out.granted, 2);
  EXPECT_EQ(out.source[1], core::kNone);
  EXPECT_EQ(out.source[0], 1);
  EXPECT_EQ(out.source[2], 1);
  test::expect_valid_assignment(out, rv, scheme, mask);
}

TEST(FirstAvailable, AllChannelsOccupiedGrantsNothing) {
  const auto scheme = ConversionScheme::non_circular(4, 1, 1);
  RequestVector rv(4);
  rv.add(1, 2);
  const std::vector<std::uint8_t> mask(4, 0);
  const auto out = core::first_available(rv, scheme, mask);
  EXPECT_EQ(out.granted, 0);
}

TEST(FirstAvailable, RejectsCircularScheme) {
  RequestVector rv(4);
  EXPECT_THROW(core::first_available(rv, ConversionScheme::circular(4, 1, 1)),
               std::logic_error);
}

TEST(FirstAvailable, MatchesStaircaseGraphFormulation) {
  // The request-vector kernel and the vertex-level staircase FA from
  // src/graph must produce identical matching sizes.
  util::Rng rng(2023);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int32_t k = static_cast<std::int32_t>(2 + rng.uniform_below(14));
    const std::int32_t e = static_cast<std::int32_t>(rng.uniform_below(3));
    const std::int32_t f = static_cast<std::int32_t>(rng.uniform_below(3));
    if (e + f + 1 > k) continue;
    const auto scheme = ConversionScheme::non_circular(k, e, f);
    const auto rv = test::random_request_vector(rng, k, 4, 0.3);
    const core::RequestGraph g(scheme, rv);
    const auto vertex_level = graph::staircase_first_available(g.to_convex());
    const auto vector_level = core::first_available(rv, scheme);
    EXPECT_EQ(static_cast<std::int32_t>(vertex_level.size()),
              vector_level.granted);
  }
}

// --- Theorem 1 property sweep: FA is maximum --------------------------------

struct FaSweepParam {
  std::int32_t k, e, f, n_fibers;
  double load;
};

class FirstAvailableSweep : public ::testing::TestWithParam<FaSweepParam> {};

TEST_P(FirstAvailableSweep, MatchesHopcroftKarp) {
  const auto [k, e, f, n_fibers, load] = GetParam();
  const auto scheme = ConversionScheme::non_circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 1009 + e * 101 + f * 11) +
                static_cast<std::uint64_t>(load * 997));
  for (int trial = 0; trial < 60; ++trial) {
    const auto rv = test::random_request_vector(rng, k, n_fibers, load);
    const auto fa = core::first_available(rv, scheme);
    test::expect_valid_assignment(fa, rv, scheme);
    EXPECT_EQ(fa.granted, test::oracle_max_matching(scheme, rv))
        << "k=" << k << " e=" << e << " f=" << f << " trial=" << trial;
  }
}

TEST_P(FirstAvailableSweep, MatchesHopcroftKarpWithOccupiedChannels) {
  const auto [k, e, f, n_fibers, load] = GetParam();
  const auto scheme = ConversionScheme::non_circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 31 + e * 7 + f) + 77);
  for (int trial = 0; trial < 60; ++trial) {
    const auto rv = test::random_request_vector(rng, k, n_fibers, load);
    const auto mask = test::random_mask(rng, k, 0.6);
    const auto fa = core::first_available(rv, scheme, mask);
    test::expect_valid_assignment(fa, rv, scheme, mask);
    EXPECT_EQ(fa.granted, test::oracle_max_matching(scheme, rv, mask));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FirstAvailableSweep,
    ::testing::Values(
        FaSweepParam{1, 0, 0, 4, 0.5},    // single wavelength
        FaSweepParam{2, 1, 0, 4, 0.5},    // minus-only conversion
        FaSweepParam{4, 0, 1, 4, 0.4},    // plus-only conversion
        FaSweepParam{6, 1, 1, 4, 0.3},    // the paper's running shape
        FaSweepParam{6, 1, 1, 8, 0.7},    // heavy overload
        FaSweepParam{8, 2, 2, 4, 0.3},    // d = 5
        FaSweepParam{8, 3, 1, 4, 0.3},    // asymmetric e > f
        FaSweepParam{8, 1, 3, 4, 0.3},    // asymmetric f > e
        FaSweepParam{16, 2, 2, 2, 0.2},   // larger k, light load
        FaSweepParam{16, 7, 8, 2, 0.3},   // d = k (maximal range)
        FaSweepParam{32, 3, 3, 2, 0.15},  // wide fiber
        FaSweepParam{5, 4, 0, 3, 0.4},    // e = k-1 edge case
        FaSweepParam{5, 0, 4, 3, 0.4}),   // f = k-1 edge case
    [](const ::testing::TestParamInfo<FaSweepParam>& pinfo) {
      const auto& p = pinfo.param;
      return "k" + std::to_string(p.k) + "_e" + std::to_string(p.e) + "_f" +
             std::to_string(p.f) + "_N" + std::to_string(p.n_fibers) + "_L" +
             std::to_string(static_cast<int>(p.load * 100));
    });

}  // namespace
}  // namespace wdm
