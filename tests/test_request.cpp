// RequestVector semantics (Section II.B).
#include <gtest/gtest.h>

#include "core/request.hpp"

namespace wdm {
namespace {

using core::RequestVector;

TEST(RequestVector, EmptyAndAdd) {
  RequestVector rv(4);
  EXPECT_EQ(rv.k(), 4);
  EXPECT_TRUE(rv.empty());
  EXPECT_EQ(rv.first_nonempty(), core::kNone);
  rv.add(2);
  rv.add(2, 3);
  EXPECT_EQ(rv.count(2), 4);
  EXPECT_EQ(rv.total(), 4);
  EXPECT_EQ(rv.first_nonempty(), 2);
  rv.clear();
  EXPECT_TRUE(rv.empty());
}

TEST(RequestVector, InitializerList) {
  const RequestVector rv{2, 1, 0, 1, 1, 2};
  EXPECT_EQ(rv.k(), 6);
  EXPECT_EQ(rv.total(), 7);
  EXPECT_EQ(rv.count(0), 2);
  EXPECT_EQ(rv.count(2), 0);
}

TEST(RequestVector, NegativeCountsRejected) {
  EXPECT_THROW((RequestVector{1, -1}), std::logic_error);
  RequestVector rv(2);
  EXPECT_THROW(rv.add(0, -2), std::logic_error);
  EXPECT_THROW(rv.add(5), std::logic_error);
  EXPECT_THROW(rv.count(-1), std::logic_error);
}

TEST(RequestVector, SortedExpansionMatchesPaperOrdering) {
  const RequestVector rv{2, 1, 0, 1, 1, 2};
  const auto ws = rv.to_sorted_wavelengths();
  // Left vertices a0..a6: λ0, λ0, λ1, λ3, λ4, λ5, λ5.
  EXPECT_EQ(ws, (std::vector<core::Wavelength>{0, 0, 1, 3, 4, 5, 5}));
}

TEST(RequestVector, MakeFromRequests) {
  std::vector<core::Request> reqs{
      {0, 3, 1, 1}, {1, 3, 2, 1}, {2, 0, 3, 1}};
  const auto rv = core::make_request_vector(5, reqs);
  EXPECT_EQ(rv.count(3), 2);
  EXPECT_EQ(rv.count(0), 1);
  EXPECT_EQ(rv.total(), 3);
}

TEST(RequestVector, Equality) {
  EXPECT_EQ((RequestVector{1, 2}), (RequestVector{1, 2}));
  EXPECT_NE((RequestVector{1, 2}), (RequestVector{2, 1}));
}

}  // namespace
}  // namespace wdm
