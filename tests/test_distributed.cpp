// DistributedScheduler: per-output-fiber independence, serial/parallel
// equivalence in matching size, and request conservation.
#include <gtest/gtest.h>

#include <set>

#include "core/distributed.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::Algorithm;
using core::ConversionScheme;
using core::DistributedScheduler;
using core::SlotRequest;

std::vector<SlotRequest> random_slot(util::Rng& rng, std::int32_t n_fibers,
                                     std::int32_t k, double load) {
  std::vector<SlotRequest> out;
  std::uint64_t id = 0;
  for (std::int32_t fiber = 0; fiber < n_fibers; ++fiber) {
    for (core::Wavelength w = 0; w < k; ++w) {
      if (rng.bernoulli(load)) {
        out.push_back(SlotRequest{
            fiber, w,
            static_cast<std::int32_t>(rng.uniform_below(
                static_cast<std::uint64_t>(n_fibers))),
            id++, 1});
      }
    }
  }
  return out;
}

TEST(Distributed, DecisionsRespectDestinationsAndChannels) {
  util::Rng rng(808);
  DistributedScheduler sched(4, ConversionScheme::circular(6, 1, 1));
  const auto requests = random_slot(rng, 4, 6, 0.5);
  const auto decisions = sched.schedule_slot(requests);
  ASSERT_EQ(decisions.size(), requests.size());
  // No output channel double-booked within a fiber; conversions legal.
  std::set<std::pair<std::int32_t, core::Channel>> used;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!decisions[i].granted) continue;
    EXPECT_TRUE(sched.scheme().can_convert(requests[i].wavelength,
                                           decisions[i].channel));
    EXPECT_TRUE(
        used.insert({requests[i].output_fiber, decisions[i].channel}).second);
  }
}

TEST(Distributed, MatchingSizePerFiberIsMaximum) {
  util::Rng rng(909);
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  DistributedScheduler sched(5, scheme);
  for (int trial = 0; trial < 20; ++trial) {
    const auto requests = random_slot(rng, 5, 8, 0.5);
    const auto decisions = sched.schedule_slot(requests);
    // Aggregate per-fiber and compare with the oracle fiber by fiber.
    for (std::int32_t fiber = 0; fiber < 5; ++fiber) {
      core::RequestVector rv(8);
      std::int32_t granted = 0;
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (requests[i].output_fiber != fiber) continue;
        rv.add(requests[i].wavelength);
        granted += decisions[i].granted ? 1 : 0;
      }
      EXPECT_EQ(granted, test::oracle_max_matching(scheme, rv))
          << "fiber " << fiber;
    }
  }
}

TEST(Distributed, ParallelEqualsSerialInSize) {
  util::ThreadPool pool(3);
  util::Rng rng(1010);
  const auto scheme = ConversionScheme::circular(8, 2, 2);
  DistributedScheduler serial(6, scheme, Algorithm::kAuto,
                              core::Arbitration::kFifo, 7);
  DistributedScheduler parallel(6, scheme, Algorithm::kAuto,
                                core::Arbitration::kFifo, 7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto requests = random_slot(rng, 6, 8, 0.6);
    const auto a = serial.schedule_slot(requests);
    const auto b = parallel.schedule_slot(requests, nullptr, nullptr, &pool);
    ASSERT_EQ(a.size(), b.size());
    // FIFO arbitration + deterministic kernels: identical decisions.
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].granted, b[i].granted);
      EXPECT_EQ(a[i].channel, b[i].channel);
    }
  }
}

TEST(Distributed, PerFiberAvailabilityMasks) {
  DistributedScheduler sched(2, ConversionScheme::circular(4, 1, 1));
  // Fiber 0 fully occupied, fiber 1 free.
  std::vector<std::vector<std::uint8_t>> availability{
      {0, 0, 0, 0}, {1, 1, 1, 1}};
  std::vector<SlotRequest> requests{{0, 1, 0, 1, 1}, {0, 1, 1, 2, 1}};
  const auto decisions = sched.schedule_slot(requests, &availability);
  EXPECT_FALSE(decisions[0].granted);  // destined to the occupied fiber
  EXPECT_TRUE(decisions[1].granted);
}

TEST(Distributed, InvalidDestinationRejectedPerRequest) {
  // A malformed destination no longer throws: the bad request comes back
  // rejected with a reason, and the well-formed one in the same slot is
  // scheduled normally.
  DistributedScheduler sched(2, ConversionScheme::circular(4, 1, 1));
  std::vector<SlotRequest> requests{{0, 0, 5, 1, 1},   // fiber 5 of 2
                                    {0, 0, -1, 2, 1},  // negative fiber
                                    {0, 0, 1, 3, 1}};  // valid
  const auto decisions = sched.schedule_slot(requests);
  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_FALSE(decisions[0].granted);
  EXPECT_EQ(decisions[0].reason, core::RejectReason::kInvalidOutputFiber);
  EXPECT_FALSE(decisions[1].granted);
  EXPECT_EQ(decisions[1].reason, core::RejectReason::kInvalidOutputFiber);
  EXPECT_TRUE(decisions[2].granted);
  EXPECT_EQ(decisions[2].reason, core::RejectReason::kGranted);
}

TEST(Distributed, InvalidWavelengthAndDurationRejectedPerRequest) {
  DistributedScheduler sched(2, ConversionScheme::circular(4, 1, 1));
  std::vector<SlotRequest> requests{{0, 9, 0, 1, 1},    // wavelength 9 of 4
                                    {0, -2, 0, 2, 1},   // negative wavelength
                                    {0, 1, 0, 3, 0},    // zero duration
                                    {-1, 1, 0, 4, 1},   // negative input fiber
                                    {0, 1, 0, 5, 1}};   // valid
  const auto decisions = sched.schedule_slot(requests);
  ASSERT_EQ(decisions.size(), 5u);
  EXPECT_EQ(decisions[0].reason, core::RejectReason::kInvalidWavelength);
  EXPECT_EQ(decisions[1].reason, core::RejectReason::kInvalidWavelength);
  EXPECT_EQ(decisions[2].reason, core::RejectReason::kInvalidDuration);
  EXPECT_EQ(decisions[3].reason, core::RejectReason::kInvalidInputFiber);
  for (int i = 0; i < 4; ++i) {
    EXPECT_FALSE(decisions[static_cast<std::size_t>(i)].granted);
    EXPECT_TRUE(core::is_malformed(
        decisions[static_cast<std::size_t>(i)].reason));
  }
  EXPECT_TRUE(decisions[4].granted);
}

TEST(Distributed, WrongAvailabilityShapeRejectedPerRequest) {
  DistributedScheduler sched(3, ConversionScheme::circular(4, 1, 1));
  std::vector<std::vector<std::uint8_t>> availability(2);  // need 3
  std::vector<SlotRequest> requests{{0, 0, 0, 1, 1}, {0, 1, 2, 2, 1}};
  const auto decisions = sched.schedule_slot(requests, &availability);
  ASSERT_EQ(decisions.size(), 2u);
  for (const auto& d : decisions) {
    EXPECT_FALSE(d.granted);
    EXPECT_EQ(d.reason, core::RejectReason::kBadAvailabilityMask);
  }
}

TEST(Distributed, RaggedInnerMaskRejectsOnlyThatFiber) {
  // Outer shape is right but fiber 0's mask is ragged: fiber 0's requests
  // are rejected explicitly, fiber 1 schedules normally.
  DistributedScheduler sched(2, ConversionScheme::circular(4, 1, 1));
  std::vector<std::vector<std::uint8_t>> availability{{1, 1}, {1, 1, 1, 1}};
  std::vector<SlotRequest> requests{{0, 0, 0, 1, 1}, {0, 1, 1, 2, 1}};
  const auto decisions = sched.schedule_slot(requests, &availability);
  ASSERT_EQ(decisions.size(), 2u);
  EXPECT_FALSE(decisions[0].granted);
  EXPECT_EQ(decisions[0].reason, core::RejectReason::kBadAvailabilityMask);
  EXPECT_TRUE(decisions[1].granted);
}

TEST(Distributed, MalformedRequestsDoNotDisturbValidOnes) {
  // The matching granted to well-formed requests is unchanged by malformed
  // requests riding along in the same slot.
  util::Rng rng(321);
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  for (int trial = 0; trial < 20; ++trial) {
    DistributedScheduler clean(3, scheme, Algorithm::kAuto,
                               core::Arbitration::kFifo, 5);
    DistributedScheduler dirty(3, scheme, Algorithm::kAuto,
                               core::Arbitration::kFifo, 5);
    const auto valid = random_slot(rng, 3, 6, 0.5);
    auto mixed = valid;
    mixed.push_back(SlotRequest{0, 17, 1, 900, 1});   // bad wavelength
    mixed.push_back(SlotRequest{0, 0, 42, 901, 1});   // bad fiber
    mixed.push_back(SlotRequest{0, 0, 0, 902, -3});   // bad duration
    const auto a = clean.schedule_slot(valid);
    const auto b = dirty.schedule_slot(mixed);
    for (std::size_t i = 0; i < valid.size(); ++i) {
      EXPECT_EQ(a[i].granted, b[i].granted);
      EXPECT_EQ(a[i].channel, b[i].channel);
    }
    for (std::size_t i = valid.size(); i < mixed.size(); ++i) {
      EXPECT_FALSE(b[i].granted);
      EXPECT_TRUE(core::is_malformed(b[i].reason));
    }
  }
}

TEST(Distributed, EveryDecisionIsExplicit) {
  // No decision ever leaves schedule_slot as kUndecided, granted or not.
  util::Rng rng(654);
  DistributedScheduler sched(4, ConversionScheme::circular(8, 2, 1));
  for (int trial = 0; trial < 20; ++trial) {
    auto requests = random_slot(rng, 4, 8, 0.6);
    if (trial % 2 == 1) {
      requests.push_back(SlotRequest{0, -1, 0, 999, 1});
    }
    const auto decisions = sched.schedule_slot(requests);
    for (const auto& d : decisions) {
      EXPECT_NE(d.reason, core::RejectReason::kUndecided);
      EXPECT_EQ(d.granted, d.reason == core::RejectReason::kGranted);
    }
  }
}

TEST(Distributed, PortAccessor) {
  DistributedScheduler sched(3, ConversionScheme::non_circular(4, 1, 1));
  EXPECT_EQ(sched.port(0).algorithm(), Algorithm::kFirstAvailable);
  EXPECT_THROW(sched.port(3), std::logic_error);
  EXPECT_EQ(sched.n_output_fibers(), 3);
  EXPECT_EQ(sched.k(), 4);
}

}  // namespace
}  // namespace wdm
