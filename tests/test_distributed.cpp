// DistributedScheduler: per-output-fiber independence, serial/parallel
// equivalence in matching size, and request conservation.
#include <gtest/gtest.h>

#include <set>

#include "core/distributed.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::Algorithm;
using core::ConversionScheme;
using core::DistributedScheduler;
using core::SlotRequest;

std::vector<SlotRequest> random_slot(util::Rng& rng, std::int32_t n_fibers,
                                     std::int32_t k, double load) {
  std::vector<SlotRequest> out;
  std::uint64_t id = 0;
  for (std::int32_t fiber = 0; fiber < n_fibers; ++fiber) {
    for (core::Wavelength w = 0; w < k; ++w) {
      if (rng.bernoulli(load)) {
        out.push_back(SlotRequest{
            fiber, w,
            static_cast<std::int32_t>(rng.uniform_below(
                static_cast<std::uint64_t>(n_fibers))),
            id++, 1});
      }
    }
  }
  return out;
}

TEST(Distributed, DecisionsRespectDestinationsAndChannels) {
  util::Rng rng(808);
  DistributedScheduler sched(4, ConversionScheme::circular(6, 1, 1));
  const auto requests = random_slot(rng, 4, 6, 0.5);
  const auto decisions = sched.schedule_slot(requests);
  ASSERT_EQ(decisions.size(), requests.size());
  // No output channel double-booked within a fiber; conversions legal.
  std::set<std::pair<std::int32_t, core::Channel>> used;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!decisions[i].granted) continue;
    EXPECT_TRUE(sched.scheme().can_convert(requests[i].wavelength,
                                           decisions[i].channel));
    EXPECT_TRUE(
        used.insert({requests[i].output_fiber, decisions[i].channel}).second);
  }
}

TEST(Distributed, MatchingSizePerFiberIsMaximum) {
  util::Rng rng(909);
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  DistributedScheduler sched(5, scheme);
  for (int trial = 0; trial < 20; ++trial) {
    const auto requests = random_slot(rng, 5, 8, 0.5);
    const auto decisions = sched.schedule_slot(requests);
    // Aggregate per-fiber and compare with the oracle fiber by fiber.
    for (std::int32_t fiber = 0; fiber < 5; ++fiber) {
      core::RequestVector rv(8);
      std::int32_t granted = 0;
      for (std::size_t i = 0; i < requests.size(); ++i) {
        if (requests[i].output_fiber != fiber) continue;
        rv.add(requests[i].wavelength);
        granted += decisions[i].granted ? 1 : 0;
      }
      EXPECT_EQ(granted, test::oracle_max_matching(scheme, rv))
          << "fiber " << fiber;
    }
  }
}

TEST(Distributed, ParallelEqualsSerialInSize) {
  util::ThreadPool pool(3);
  util::Rng rng(1010);
  const auto scheme = ConversionScheme::circular(8, 2, 2);
  DistributedScheduler serial(6, scheme, Algorithm::kAuto,
                              core::Arbitration::kFifo, 7);
  DistributedScheduler parallel(6, scheme, Algorithm::kAuto,
                                core::Arbitration::kFifo, 7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto requests = random_slot(rng, 6, 8, 0.6);
    const auto a = serial.schedule_slot(requests);
    const auto b = parallel.schedule_slot(requests, nullptr, &pool);
    ASSERT_EQ(a.size(), b.size());
    // FIFO arbitration + deterministic kernels: identical decisions.
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].granted, b[i].granted);
      EXPECT_EQ(a[i].channel, b[i].channel);
    }
  }
}

TEST(Distributed, PerFiberAvailabilityMasks) {
  DistributedScheduler sched(2, ConversionScheme::circular(4, 1, 1));
  // Fiber 0 fully occupied, fiber 1 free.
  std::vector<std::vector<std::uint8_t>> availability{
      {0, 0, 0, 0}, {1, 1, 1, 1}};
  std::vector<SlotRequest> requests{{0, 1, 0, 1, 1}, {0, 1, 1, 2, 1}};
  const auto decisions = sched.schedule_slot(requests, &availability);
  EXPECT_FALSE(decisions[0].granted);  // destined to the occupied fiber
  EXPECT_TRUE(decisions[1].granted);
}

TEST(Distributed, InvalidDestinationRejected) {
  DistributedScheduler sched(2, ConversionScheme::circular(4, 1, 1));
  std::vector<SlotRequest> requests{{0, 0, 5, 1, 1}};
  EXPECT_THROW(sched.schedule_slot(requests), std::logic_error);
}

TEST(Distributed, WrongAvailabilityShapeRejected) {
  DistributedScheduler sched(3, ConversionScheme::circular(4, 1, 1));
  std::vector<std::vector<std::uint8_t>> availability(2);  // need 3
  std::vector<SlotRequest> requests{{0, 0, 0, 1, 1}};
  EXPECT_THROW(sched.schedule_slot(requests, &availability), std::logic_error);
}

TEST(Distributed, PortAccessor) {
  DistributedScheduler sched(3, ConversionScheme::non_circular(4, 1, 1));
  EXPECT_EQ(sched.port(0).algorithm(), Algorithm::kFirstAvailable);
  EXPECT_THROW(sched.port(3), std::logic_error);
  EXPECT_EQ(sched.n_output_fibers(), 3);
  EXPECT_EQ(sched.k(), 4);
}

}  // namespace
}  // namespace wdm
