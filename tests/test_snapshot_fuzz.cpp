// Corruption fuzz for the snapshot layer: every frame type the repo writes
// — typed scalar/vector frames, stream checkpoints, and checkpoint-store
// full/delta chains — survives a bit flip at every byte offset and a
// truncation at every length with a clean error (or a successful parse when
// the flip lands somewhere the digest can absorb, which FNV never does),
// never undefined behaviour. The ASan CI job runs this file; a latent
// overread here fails that job even when every EXPECT passes.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/checkpoint.hpp"
#include "sim/checkpoint_store.hpp"
#include "sim/interconnect.hpp"
#include "sim/traffic.hpp"
#include "util/snapshot.hpp"

namespace wdm {
namespace {

namespace fs = std::filesystem;

/// A frame exercising every typed field the reader knows how to parse.
std::string typed_frame() {
  util::SnapshotWriter w;
  w.u8(7);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(3.25);
  w.vec_u8({1, 2, 3});
  w.vec_i32({-1, 0, 1});
  w.vec_u64({9, 8});
  w.vec_f64({0.5, -0.5});
  std::ostringstream os;
  w.write_to(os);
  return os.str();
}

/// Parses a typed frame all the way through. Throwing std::exception is the
/// only acceptable failure mode; anything else (crash, overread) is the bug
/// this test hunts.
void parse_typed(const std::string& bytes) {
  std::istringstream is(bytes);
  util::SnapshotReader r(is);
  (void)r.u8();
  (void)r.u32();
  (void)r.u64();
  (void)r.i32();
  (void)r.i64();
  (void)r.f64();
  (void)r.vec_u8();
  (void)r.vec_i32();
  (void)r.vec_u64();
  (void)r.vec_f64();
  (void)r.exhausted();
}

TEST(SnapshotFuzz, TypedFrameSurvivesEveryBitFlip) {
  const std::string frame = typed_frame();
  for (std::size_t offset = 0; offset < frame.size(); ++offset) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string bad = frame;
      bad[offset] = static_cast<char>(bad[offset] ^ (1 << bit));
      try {
        parse_typed(bad);
        // A parse that survives must have seen the original bytes — a flip
        // that changes nothing semantic does not exist in this frame, so
        // reaching here means the mutation was caught... by producing the
        // very same values. FNV-1a over the payload makes that impossible
        // for payload flips; header flips fail magic/version/size checks.
        FAIL() << "flip at offset " << offset << " bit " << bit
               << " parsed as if pristine";
      } catch (const std::exception&) {
        // clean rejection — the required outcome
      }
    }
  }
}

TEST(SnapshotFuzz, TypedFrameSurvivesEveryTruncation) {
  const std::string frame = typed_frame();
  for (std::size_t keep = 0; keep < frame.size(); ++keep) {
    const std::string bad = frame.substr(0, keep);
    EXPECT_THROW(parse_typed(bad), std::exception) << "kept " << keep;
  }
}

sim::InterconnectConfig fuzz_config() {
  sim::InterconnectConfig cfg;
  cfg.n_fibers = 3;
  cfg.scheme = core::ConversionScheme::circular(4, 1, 1);
  cfg.seed = 9;
  cfg.retry.max_retries = 1;
  cfg.admission.enabled = true;
  cfg.admission.tokens_per_slot = 1.0;
  cfg.admission.adaptive.enabled = true;
  cfg.admission.adaptive.update_every = 2;
  return cfg;
}

/// Stream checkpoint (sim/checkpoint.hpp) with live state behind it.
std::string stream_checkpoint_frame() {
  const auto cfg = fuzz_config();
  sim::Interconnect ic(cfg);
  sim::TrafficConfig tcfg;
  tcfg.load = 0.9;
  sim::TrafficGenerator traffic(3, 4, tcfg, 11);
  for (std::uint64_t slot = 0; slot < 12; ++slot) {
    ic.step(traffic.next_slot(ic.input_channel_busy()));
  }
  std::ostringstream os;
  sim::save_checkpoint(os, ic, traffic);
  return os.str();
}

TEST(SnapshotFuzz, StreamCheckpointSurvivesFlipsAndTruncations) {
  const auto cfg = fuzz_config();
  const std::string frame = stream_checkpoint_frame();
  sim::TrafficConfig tcfg;
  tcfg.load = 0.9;
  // One flipped bit per byte offset (rotating the bit keeps the sweep
  // linear in frame size while still touching every byte of every field).
  for (std::size_t offset = 0; offset < frame.size(); ++offset) {
    std::string bad = frame;
    bad[offset] =
        static_cast<char>(bad[offset] ^ (1 << (offset % 8)));
    std::istringstream is(bad);
    sim::Interconnect target(cfg);
    sim::TrafficGenerator target_traffic(3, 4, tcfg, 1);
    try {
      sim::load_checkpoint(is, target, target_traffic);
      FAIL() << "flip at offset " << offset << " loaded as if pristine";
    } catch (const std::exception&) {
    }
  }
  for (std::size_t keep = 0; keep < frame.size(); keep += 7) {
    std::istringstream is(frame.substr(0, keep));
    sim::Interconnect target(cfg);
    sim::TrafficGenerator target_traffic(3, 4, tcfg, 1);
    EXPECT_THROW(sim::load_checkpoint(is, target, target_traffic),
                 std::exception)
        << "kept " << keep;
  }
}

TEST(SnapshotFuzz, StoreFramesNeverThrowOutOfRecovery) {
  // recover_latest's contract: corrupt frames are data, not bugs — any
  // mutation of any frame on disk is discarded (with the chain falling back)
  // and recovery itself never throws. Flip one bit at every offset of every
  // frame in a real full+delta chain.
  const fs::path dir = fs::path(::testing::TempDir()) / "wdm-store-fuzz";
  fs::remove_all(dir);
  const auto cfg = fuzz_config();
  sim::Interconnect ic(cfg);
  sim::TrafficConfig tcfg;
  tcfg.load = 0.9;
  sim::TrafficGenerator traffic(3, 4, tcfg, 13);
  sim::CheckpointPolicy policy;
  policy.dir = dir.string();
  policy.full_every = 3;
  policy.keep_fulls = 4;
  sim::CheckpointStore store(policy);
  for (std::uint64_t slot = 0; slot < 6; ++slot) {
    ic.step(traffic.next_slot(ic.input_channel_busy()));
    store.write(ic, &traffic);
  }
  ASSERT_GE(store.frames().size(), 4u);  // at least F D D F D D

  for (const auto& frame : store.frames()) {
    std::ifstream in(frame.path, std::ios::binary);
    const std::string pristine((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    in.close();
    ASSERT_EQ(pristine.size(), frame.bytes);
    for (std::size_t offset = 0; offset < pristine.size(); ++offset) {
      std::string bad = pristine;
      bad[offset] =
          static_cast<char>(bad[offset] ^ (1 << (offset % 8)));
      {
        std::ofstream out(frame.path, std::ios::binary | std::ios::trunc);
        out.write(bad.data(), static_cast<std::streamoff>(bad.size()));
      }
      sim::Interconnect target(cfg);
      sim::TrafficGenerator target_traffic(3, 4, tcfg, 1);
      sim::RecoveryReport report;
      EXPECT_NO_THROW(report = sim::recover_latest(dir.string(), target,
                                                   &target_traffic))
          << frame.path << " offset " << offset;
      // The mutated frame must be the one discarded (everything before it
      // still verifies, everything chained past it degrades gracefully).
      bool mutated_discarded = false;
      for (const auto& d : report.discarded) {
        if (d == frame.path) mutated_discarded = true;
      }
      EXPECT_TRUE(mutated_discarded)
          << frame.path << " offset " << offset << " flip went unnoticed";
    }
    // Restore the pristine frame for the next iteration's chain.
    std::ofstream out(frame.path, std::ios::binary | std::ios::trunc);
    out.write(pristine.data(), static_cast<std::streamoff>(pristine.size()));
  }

  // With every frame pristine again the whole chain still recovers.
  sim::Interconnect target(cfg);
  sim::TrafficGenerator target_traffic(3, 4, tcfg, 1);
  const auto report =
      sim::recover_latest(dir.string(), target, &target_traffic);
  ASSERT_TRUE(report.recovered);
  EXPECT_EQ(sim::state_digest(target), sim::state_digest(ic));
}

}  // namespace
}  // namespace wdm
