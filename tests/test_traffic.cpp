// Traffic generators: load calibration, determinism, busy suppression,
// destination patterns, holding-time distributions.
#include <gtest/gtest.h>

#include <map>

#include "sim/traffic.hpp"

namespace wdm {
namespace {

using sim::ArrivalProcess;
using sim::DestinationPattern;
using sim::HoldingTime;
using sim::TrafficConfig;
using sim::TrafficGenerator;

TEST(Traffic, BernoulliLoadCalibration) {
  TrafficConfig cfg;
  cfg.load = 0.3;
  TrafficGenerator gen(4, 8, cfg, 1);
  std::uint64_t total = 0;
  const int slots = 3000;
  for (int s = 0; s < slots; ++s) total += gen.next_slot().size();
  const double per_channel =
      static_cast<double>(total) / (slots * 4.0 * 8.0);
  EXPECT_NEAR(per_channel, 0.3, 0.02);
}

TEST(Traffic, DeterministicForSeed) {
  TrafficConfig cfg;
  cfg.load = 0.5;
  TrafficGenerator a(3, 4, cfg, 99), b(3, 4, cfg, 99);
  for (int s = 0; s < 50; ++s) {
    const auto ra = a.next_slot();
    const auto rb = b.next_slot();
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].input_fiber, rb[i].input_fiber);
      EXPECT_EQ(ra[i].wavelength, rb[i].wavelength);
      EXPECT_EQ(ra[i].output_fiber, rb[i].output_fiber);
    }
  }
}

TEST(Traffic, RequestsAreWellFormed) {
  TrafficConfig cfg;
  cfg.load = 0.8;
  TrafficGenerator gen(5, 6, cfg, 7);
  for (int s = 0; s < 100; ++s) {
    for (const auto& r : gen.next_slot()) {
      EXPECT_GE(r.input_fiber, 0);
      EXPECT_LT(r.input_fiber, 5);
      EXPECT_GE(r.wavelength, 0);
      EXPECT_LT(r.wavelength, 6);
      EXPECT_GE(r.output_fiber, 0);
      EXPECT_LT(r.output_fiber, 5);
      EXPECT_EQ(r.duration, 1);
    }
  }
}

TEST(Traffic, BusyChannelsAreSuppressed) {
  TrafficConfig cfg;
  cfg.load = 1.0;  // every idle channel fires
  TrafficGenerator gen(2, 3, cfg, 3);
  std::vector<std::uint8_t> busy(6, 0);
  busy[0 * 3 + 1] = 1;  // fiber 0, λ1
  busy[1 * 3 + 2] = 1;  // fiber 1, λ2
  const auto requests = gen.next_slot(busy);
  EXPECT_EQ(requests.size(), 4u);  // 6 channels - 2 busy
  for (const auto& r : requests) {
    EXPECT_FALSE(r.input_fiber == 0 && r.wavelength == 1);
    EXPECT_FALSE(r.input_fiber == 1 && r.wavelength == 2);
  }
}

TEST(Traffic, UniformDestinationsCoverAllFibers) {
  TrafficConfig cfg;
  cfg.load = 1.0;
  TrafficGenerator gen(6, 2, cfg, 11);
  std::map<std::int32_t, int> hist;
  for (int s = 0; s < 400; ++s) {
    for (const auto& r : gen.next_slot()) hist[r.output_fiber] += 1;
  }
  ASSERT_EQ(hist.size(), 6u);
  for (const auto& [fiber, count] : hist) {
    EXPECT_NEAR(count, 400 * 2, 400 * 2 / 4) << "fiber " << fiber;
  }
}

TEST(Traffic, HotspotSkewsDestinations) {
  TrafficConfig cfg;
  cfg.load = 1.0;
  cfg.destinations = DestinationPattern::kHotspot;
  cfg.hotspot_alpha = 1.5;
  TrafficGenerator gen(8, 2, cfg, 13);
  std::map<std::int32_t, int> hist;
  for (int s = 0; s < 400; ++s) {
    for (const auto& r : gen.next_slot()) hist[r.output_fiber] += 1;
  }
  EXPECT_GT(hist[0], hist[3]);
  EXPECT_GT(hist[0], hist[7]);
}

TEST(Traffic, OnOffProducesBurstsAtConfiguredLoad) {
  TrafficConfig cfg;
  cfg.load = 0.4;
  cfg.arrivals = ArrivalProcess::kOnOff;
  cfg.mean_burst_length = 5.0;
  TrafficGenerator gen(4, 4, cfg, 17);
  std::uint64_t total = 0;
  const int slots = 8000;
  for (int s = 0; s < slots; ++s) total += gen.next_slot().size();
  EXPECT_NEAR(static_cast<double>(total) / (slots * 16.0), 0.4, 0.05);
}

TEST(Traffic, OnOffBurstsShareDestination) {
  TrafficConfig cfg;
  cfg.load = 0.5;
  cfg.arrivals = ArrivalProcess::kOnOff;
  cfg.mean_burst_length = 20.0;
  TrafficGenerator gen(1, 1, cfg, 23);
  // Track destination changes on the single channel: within a burst the
  // destination is constant, so the number of distinct destinations is far
  // smaller than the number of packets.
  std::int32_t changes = 0, packets = 0, last = -1;
  for (int s = 0; s < 4000; ++s) {
    const auto reqs = gen.next_slot();
    if (reqs.empty()) {
      last = -1;
      continue;
    }
    packets += 1;
    if (last != -1 && reqs[0].output_fiber != last) changes += 1;
    last = reqs[0].output_fiber;
  }
  ASSERT_GT(packets, 100);
  EXPECT_LT(changes, packets / 5);
}

TEST(Traffic, FixedHolding) {
  TrafficConfig cfg;
  cfg.load = 1.0;
  cfg.holding = HoldingTime::kFixed;
  cfg.mean_holding = 4.0;
  TrafficGenerator gen(2, 2, cfg, 29);
  for (const auto& r : gen.next_slot()) EXPECT_EQ(r.duration, 4);
}

TEST(Traffic, GeometricHoldingMean) {
  TrafficConfig cfg;
  cfg.load = 1.0;
  cfg.holding = HoldingTime::kGeometric;
  cfg.mean_holding = 6.0;
  TrafficGenerator gen(4, 4, cfg, 31);
  double sum = 0;
  int n = 0;
  for (int s = 0; s < 400; ++s) {
    for (const auto& r : gen.next_slot()) {
      EXPECT_GE(r.duration, 1);
      sum += r.duration;
      n += 1;
    }
  }
  EXPECT_NEAR(sum / n, 6.0, 0.5);
}

TEST(Traffic, UniqueIds) {
  TrafficConfig cfg;
  cfg.load = 0.7;
  TrafficGenerator gen(3, 3, cfg, 37);
  std::set<std::uint64_t> ids;
  for (int s = 0; s < 100; ++s) {
    for (const auto& r : gen.next_slot()) {
      EXPECT_TRUE(ids.insert(r.id).second);
    }
  }
  EXPECT_EQ(ids.size(), gen.generated());
}

TEST(Traffic, InvalidConfigRejected) {
  TrafficConfig bad;
  bad.load = 1.5;
  EXPECT_THROW(TrafficGenerator(2, 2, bad, 1), std::logic_error);
  TrafficConfig bad2;
  bad2.mean_holding = 0.5;
  EXPECT_THROW(TrafficGenerator(2, 2, bad2, 1), std::logic_error);
}

}  // namespace
}  // namespace wdm
