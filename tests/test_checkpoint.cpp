// Deterministic checkpoint/replay: snapshot framing, round-trip digests,
// bit-for-bit continuation and trace replay from a mid-run checkpoint, and
// rejection of corrupt / mismatched / version-skewed frames.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/checkpoint.hpp"
#include "sim/interconnect.hpp"
#include "sim/trace.hpp"
#include "sim/traffic.hpp"
#include "util/snapshot.hpp"

namespace wdm {
namespace {

// Frame layout (util/snapshot.hpp): magic(8) version(4) size(8) digest(8).
constexpr std::size_t kHeaderBytes = 28;

sim::InterconnectConfig full_feature_config() {
  sim::InterconnectConfig cfg;
  cfg.n_fibers = 4;
  cfg.scheme = core::ConversionScheme::circular(6, 1, 1);
  cfg.policy = sim::OccupiedPolicy::kNoDisturb;
  cfg.seed = 42;
  cfg.retry.max_retries = 2;
  cfg.retry.queue_capacity = 8;
  cfg.faults.channels = sim::MtbfMttr{200.0, 20.0};
  cfg.admission.enabled = true;
  cfg.admission.tokens_per_slot = 1.0;
  cfg.admission.bucket_depth = 2.0;
  cfg.admission.queue_capacity = 8;
  cfg.degrade.op_budget = 50;
  cfg.degrade.recovery_slots = 3;
  return cfg;
}

sim::TrafficConfig heavy_traffic() {
  sim::TrafficConfig traffic;
  traffic.load = 0.9;
  traffic.holding = sim::HoldingTime::kGeometric;
  traffic.mean_holding = 2.0;
  traffic.class_mix = {0.5, 0.3, 0.2};
  return traffic;
}

void expect_stats_equal(const sim::SlotStats& a, const sim::SlotStats& b,
                        std::uint64_t slot) {
  EXPECT_EQ(a.arrivals, b.arrivals) << "slot " << slot;
  EXPECT_EQ(a.granted, b.granted) << "slot " << slot;
  EXPECT_EQ(a.rejected, b.rejected) << "slot " << slot;
  EXPECT_EQ(a.rejected_malformed, b.rejected_malformed) << "slot " << slot;
  EXPECT_EQ(a.rejected_faulted, b.rejected_faulted) << "slot " << slot;
  EXPECT_EQ(a.shed_overload, b.shed_overload) << "slot " << slot;
  EXPECT_EQ(a.deferred_faulted, b.deferred_faulted) << "slot " << slot;
  EXPECT_EQ(a.deferred_overload, b.deferred_overload) << "slot " << slot;
  EXPECT_EQ(a.ingress_releases, b.ingress_releases) << "slot " << slot;
  EXPECT_EQ(a.degraded_ports, b.degraded_ports) << "slot " << slot;
  EXPECT_EQ(a.retry_attempts, b.retry_attempts) << "slot " << slot;
  EXPECT_EQ(a.retry_successes, b.retry_successes) << "slot " << slot;
  EXPECT_EQ(a.preempted, b.preempted) << "slot " << slot;
  EXPECT_EQ(a.dropped_faulted, b.dropped_faulted) << "slot " << slot;
  EXPECT_EQ(a.busy_channels, b.busy_channels) << "slot " << slot;
  EXPECT_EQ(a.arrivals_per_class, b.arrivals_per_class) << "slot " << slot;
  EXPECT_EQ(a.granted_per_class, b.granted_per_class) << "slot " << slot;
}

TEST(Snapshot, TypedRoundTrip) {
  util::SnapshotWriter w;
  w.u8(7);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(3.25);
  w.vec_u8({1, 2, 3});
  w.vec_i32({-1, 0, 1});
  w.vec_u64({9, 8});
  w.vec_f64({0.5});
  std::stringstream ss;
  w.write_to(ss);

  util::SnapshotReader r(ss);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xDEADBEEF);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.vec_u8(), (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(r.vec_i32(), (std::vector<std::int32_t>{-1, 0, 1}));
  EXPECT_EQ(r.vec_u64(), (std::vector<std::uint64_t>{9, 8}));
  EXPECT_EQ(r.vec_f64(), (std::vector<double>{0.5}));
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.digest(), w.digest());
}

TEST(Checkpoint, RoundTripRestoresBitForBit) {
  const auto cfg = full_feature_config();
  sim::Interconnect original(cfg);
  sim::TrafficGenerator traffic(cfg.n_fibers, 6, heavy_traffic(), 9001);

  for (std::uint64_t slot = 0; slot < 30; ++slot) {
    original.step(traffic.next_slot(original.input_channel_busy()));
  }

  std::stringstream checkpoint;
  sim::save_checkpoint(checkpoint, original, traffic);
  const auto digest = sim::state_digest(original);

  sim::Interconnect restored(cfg);
  sim::TrafficGenerator restored_traffic(cfg.n_fibers, 6, heavy_traffic(), 1);
  sim::load_checkpoint(checkpoint, restored, restored_traffic);
  EXPECT_EQ(sim::state_digest(restored), digest);

  // Both copies must now evolve identically, slot for slot, bit for bit.
  for (std::uint64_t slot = 0; slot < 40; ++slot) {
    const auto a =
        original.step(traffic.next_slot(original.input_channel_busy()));
    const auto b = restored.step(
        restored_traffic.next_slot(restored.input_channel_busy()));
    expect_stats_equal(a, b, slot);
  }
  EXPECT_EQ(sim::state_digest(original), sim::state_digest(restored));
  EXPECT_EQ(traffic.generated(), restored_traffic.generated());
}

TEST(Checkpoint, ReplayFromSnapshotReproducesTheRun) {
  auto cfg = full_feature_config();
  cfg.faults = sim::FaultConfig{};  // trace replay: deterministic arrivals
  cfg.faults.script = {
      sim::FaultEvent{10, sim::FaultKind::kFiber, 2, 0, false},
      sim::FaultEvent{30, sim::FaultKind::kFiber, 2, 0, true},
  };
  sim::TrafficGenerator source(cfg.n_fibers, 6, heavy_traffic(), 77);
  const auto trace = sim::capture_trace(source, cfg.n_fibers, 6, 50);
  constexpr std::uint64_t kSnapshotAt = 20;

  sim::Interconnect original(cfg);
  std::stringstream checkpoint;
  std::vector<sim::SlotStats> original_tail;
  for (std::size_t slot = 0; slot < trace.slots.size(); ++slot) {
    if (slot == kSnapshotAt) sim::save_checkpoint(checkpoint, original);
    const auto stats = original.step(trace.slots[slot]);
    if (slot >= kSnapshotAt) original_tail.push_back(stats);
  }
  const auto original_digest = sim::state_digest(original);

  sim::Interconnect resumed(cfg);
  sim::load_checkpoint(checkpoint, resumed);
  const auto replay_tail = sim::replay_from(trace, kSnapshotAt, resumed);

  ASSERT_EQ(replay_tail.size(), original_tail.size());
  for (std::size_t i = 0; i < replay_tail.size(); ++i) {
    expect_stats_equal(original_tail[i], replay_tail[i], kSnapshotAt + i);
  }
  EXPECT_EQ(sim::state_digest(resumed), original_digest);
}

TEST(Checkpoint, RejectsCorruptFrames) {
  const auto cfg = full_feature_config();
  sim::Interconnect ic(cfg);
  std::stringstream good;
  sim::save_checkpoint(good, ic);
  const std::string frame = good.str();
  ASSERT_GT(frame.size(), kHeaderBytes);

  {  // bad magic
    std::string bad = frame;
    bad[0] = 'X';
    std::stringstream ss(bad);
    sim::Interconnect target(cfg);
    EXPECT_THROW(sim::load_checkpoint(ss, target), std::logic_error);
  }
  {  // unsupported version
    std::string bad = frame;
    bad[8] = static_cast<char>(0x99);
    std::stringstream ss(bad);
    sim::Interconnect target(cfg);
    EXPECT_THROW(sim::load_checkpoint(ss, target), std::logic_error);
  }
  {  // truncated payload
    std::string bad = frame.substr(0, frame.size() - 3);
    std::stringstream ss(bad);
    sim::Interconnect target(cfg);
    EXPECT_THROW(sim::load_checkpoint(ss, target), std::logic_error);
  }
  {  // bit flip in the payload -> digest mismatch
    std::string bad = frame;
    bad[kHeaderBytes + 5] = static_cast<char>(bad[kHeaderBytes + 5] ^ 0x40);
    std::stringstream ss(bad);
    sim::Interconnect target(cfg);
    EXPECT_THROW(sim::load_checkpoint(ss, target), std::logic_error);
  }
  {  // the pristine frame still loads
    std::stringstream ss(frame);
    sim::Interconnect target(cfg);
    EXPECT_NO_THROW(sim::load_checkpoint(ss, target));
  }
}

TEST(Checkpoint, RejectsConfigAndFlagMismatch) {
  const auto cfg = full_feature_config();
  sim::Interconnect ic(cfg);
  sim::TrafficGenerator traffic(cfg.n_fibers, 6, heavy_traffic(), 5);

  {  // geometry mismatch
    std::stringstream ss;
    sim::save_checkpoint(ss, ic);
    auto other = cfg;
    other.n_fibers = 2;
    sim::Interconnect target(other);
    EXPECT_THROW(sim::load_checkpoint(ss, target), std::logic_error);
  }
  {  // frame with traffic state loaded without a generator
    std::stringstream ss;
    sim::save_checkpoint(ss, ic, traffic);
    sim::Interconnect target(cfg);
    EXPECT_THROW(sim::load_checkpoint(ss, target), std::logic_error);
  }
  {  // frame without traffic state loaded with a generator
    std::stringstream ss;
    sim::save_checkpoint(ss, ic);
    sim::Interconnect target(cfg);
    sim::TrafficGenerator target_traffic(cfg.n_fibers, 6, heavy_traffic(), 5);
    EXPECT_THROW(sim::load_checkpoint(ss, target, target_traffic),
                 std::logic_error);
  }
}

TEST(Checkpoint, ReplayReappliesRecordedDeadlineOverruns) {
  // Wall-clock deadline overruns are recorded in the trace as first-class
  // events; replay_from reapplies that schedule instead of re-reading the
  // clock, so a deadline-degraded run replays bit-for-bit on any machine.
  auto cfg = full_feature_config();
  cfg.faults = sim::FaultConfig{};
  cfg.degrade.op_budget = 0;
  cfg.degrade.slot_deadline_ns = 1;  // every live slot overruns
  sim::TrafficGenerator source(cfg.n_fibers, 6, heavy_traffic(), 77);
  auto trace = sim::capture_trace(source, cfg.n_fibers, 6, 40);

  sim::Interconnect original(cfg);
  original.set_deadline_log(&trace.deadline_overruns);
  std::vector<sim::SlotStats> recorded;
  for (const auto& slot : trace.slots) recorded.push_back(original.step(slot));
  original.set_deadline_log(nullptr);
  ASSERT_FALSE(trace.deadline_overruns.empty());
  const auto original_digest = sim::state_digest(original);

  sim::Interconnect resumed(cfg);
  const auto replayed = sim::replay_from(trace, 0, resumed);
  ASSERT_EQ(replayed.size(), recorded.size());
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    expect_stats_equal(recorded[i], replayed[i], i);
  }
  EXPECT_EQ(sim::state_digest(resumed), original_digest);
}

TEST(Checkpoint, DeadlineOverrunTraceSurvivesSerialization) {
  // The D-line trace format round-trips the overrun schedule, and the
  // overruns drive the hysteresis latch during replay: a replayed run with
  // the recorded overruns degrades, the same trace with the overruns
  // stripped does not — the events are load-bearing, not annotations.
  auto cfg = full_feature_config();
  cfg.faults = sim::FaultConfig{};
  cfg.degrade.op_budget = 0;
  cfg.degrade.slot_deadline_ns = 1;
  sim::TrafficGenerator source(cfg.n_fibers, 6, heavy_traffic(), 77);
  auto trace = sim::capture_trace(source, cfg.n_fibers, 6, 30);

  sim::Interconnect original(cfg);
  original.set_deadline_log(&trace.deadline_overruns);
  for (const auto& slot : trace.slots) original.step(slot);
  original.set_deadline_log(nullptr);
  ASSERT_FALSE(trace.deadline_overruns.empty());
  const auto original_digest = sim::state_digest(original);

  std::stringstream ss;
  sim::write_trace(ss, trace);
  const auto reloaded = sim::read_trace(ss);
  EXPECT_EQ(reloaded.deadline_overruns, trace.deadline_overruns);

  sim::Interconnect from_disk(cfg);
  sim::replay_from(reloaded, 0, from_disk);
  EXPECT_EQ(sim::state_digest(from_disk), original_digest);

  auto stripped = reloaded;
  stripped.deadline_overruns.clear();
  sim::Interconnect undegraded(cfg);
  sim::replay_from(stripped, 0, undegraded);
  EXPECT_NE(sim::state_digest(undegraded), original_digest);
}

}  // namespace
}  // namespace wdm
