// Fault injection and graceful degradation (PR 2).
//
// Covers, bottom-up: the HealthMask / apply_health reduction, the
// FaultInjector's determinism contract, degraded-mode optimality of the
// kernels through the scheduler API, interconnect teardown under kNoDisturb
// and re-homing under kRearrange, the bounded retry queue, the fault metrics
// accounting, and end-to-end replay determinism of faulted simulations.
#include <gtest/gtest.h>

#include <vector>

#include "core/distributed.hpp"
#include "core/health.hpp"
#include "core/request_graph.hpp"
#include "core/scheduler.hpp"
#include "graph/hopcroft_karp.hpp"
#include "sim/faults.hpp"
#include "sim/interconnect.hpp"
#include "sim/metrics.hpp"
#include "sim/network.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"

namespace wdm {
namespace {

using core::ChannelHealth;
using core::ConversionScheme;
using core::HealthMask;
using core::RequestVector;
using sim::FaultConfig;
using sim::FaultEvent;
using sim::FaultInjector;
using sim::FaultKind;

// ---------------------------------------------------------------- health

TEST(HealthMask, AllHealthyPredicates) {
  HealthMask h;
  EXPECT_TRUE(h.all_healthy());
  h = HealthMask::healthy(4);
  EXPECT_TRUE(h.all_healthy());
  h.channels[2] = ChannelHealth::kConverterFaulted;
  EXPECT_FALSE(h.all_healthy());
  h.channels[2] = ChannelHealth::kHealthy;
  h.fiber_faulted = true;
  EXPECT_FALSE(h.all_healthy());
}

TEST(ApplyHealth, FiberCutRemovesEverything) {
  RequestVector rv(3);
  rv.add(0, 2);
  rv.add(2, 1);
  HealthMask h = HealthMask::healthy(3);
  h.fiber_faulted = true;
  const auto red = core::apply_health(rv, {}, h);
  EXPECT_EQ(red.pre_grant_count, 0);
  for (const auto bit : red.availability) EXPECT_EQ(bit, 0);
}

TEST(ApplyHealth, ChannelFaultIsMaskDeletion) {
  RequestVector rv(3);
  rv.add(1, 2);
  HealthMask h = HealthMask::healthy(3);
  h.channels[1] = ChannelHealth::kChannelFaulted;
  const auto red = core::apply_health(rv, {}, h);
  EXPECT_EQ(red.pre_grant_count, 0);
  EXPECT_EQ(red.availability[0], 1);
  EXPECT_EQ(red.availability[1], 0);
  EXPECT_EQ(red.availability[2], 1);
  EXPECT_EQ(red.requests.count(1), 2);  // requests untouched
}

TEST(ApplyHealth, ConverterFaultPreGrantsSameWavelength) {
  RequestVector rv(3);
  rv.add(1, 2);
  HealthMask h = HealthMask::healthy(3);
  h.channels[1] = ChannelHealth::kConverterFaulted;
  const auto red = core::apply_health(rv, {}, h);
  // One wavelength-1 request is pre-granted channel 1; the channel leaves
  // the availability mask and the request leaves the counts.
  EXPECT_EQ(red.pre_grant_count, 1);
  EXPECT_EQ(red.pre_granted[1], 1);
  EXPECT_EQ(red.availability[1], 0);
  EXPECT_EQ(red.requests.count(1), 1);
}

TEST(ApplyHealth, ConverterFaultWithoutTakersJustDeletes) {
  RequestVector rv(3);
  rv.add(0, 1);  // no wavelength-1 request anywhere
  HealthMask h = HealthMask::healthy(3);
  h.channels[1] = ChannelHealth::kConverterFaulted;
  const auto red = core::apply_health(rv, {}, h);
  EXPECT_EQ(red.pre_grant_count, 0);
  EXPECT_EQ(red.availability[1], 0);
  EXPECT_EQ(red.requests.count(0), 1);
}

TEST(ApplyHealth, OccupiedConverterFaultedChannelNotPreGranted) {
  RequestVector rv(2);
  rv.add(0, 1);
  HealthMask h = HealthMask::healthy(2);
  h.channels[0] = ChannelHealth::kConverterFaulted;
  const std::vector<std::uint8_t> occupied{0, 1};  // channel 0 already busy
  const auto red = core::apply_health(rv, occupied, h);
  EXPECT_EQ(red.pre_grant_count, 0);
  EXPECT_EQ(red.requests.count(0), 1);
}

// ------------------------------------------------- degraded-mode optimality

std::int32_t hk_maximum(const ConversionScheme& scheme, const RequestVector& rv,
                        const HealthMask& health) {
  const core::RequestGraph g(scheme, rv, {}, health);
  return static_cast<std::int32_t>(graph::hopcroft_karp(g.to_bipartite()).size());
}

TEST(DegradedOptimality, ConverterFaultHandCase) {
  // k=4, d=2 circular (e=0, f=1). Wavelengths {0,0,1}: healthy FA grants 3.
  // Converter on channel 1 dies: channel 1 now only takes wavelength 1, so
  // a maximum matching pre-grants (w=1 -> u=1) and schedules {0,0} on the
  // survivors {0, 2, 3}; wavelength 0 reaches {0, 1} so only one fits: 2.
  const auto scheme = ConversionScheme::circular(4, 0, 1);
  RequestVector rv(4);
  rv.add(0, 2);
  rv.add(1, 1);
  HealthMask h = HealthMask::healthy(4);
  h.channels[1] = ChannelHealth::kConverterFaulted;
  EXPECT_EQ(hk_maximum(scheme, rv, h), 2);

  core::OutputPortScheduler port(scheme);
  const auto a = port.assign_channels(rv, {}, h);
  EXPECT_EQ(a.granted, 2);
  EXPECT_EQ(a.source[1], 1);  // the pre-granted pair survives arbitration
}

TEST(DegradedOptimality, RandomAgainstOracle) {
  util::Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const auto k = static_cast<std::int32_t>(2 + rng.uniform_below(7));
    const auto d = static_cast<std::int32_t>(1 + rng.uniform_below(
                       static_cast<std::uint64_t>(k)));
    const auto e = static_cast<std::int32_t>(rng.uniform_below(
        static_cast<std::uint64_t>(d)));
    const auto scheme = rng.bernoulli(0.5)
                            ? ConversionScheme::circular(k, e, d - 1 - e)
                            : ConversionScheme::non_circular(k, e, d - 1 - e);
    RequestVector rv(k);
    for (core::Wavelength w = 0; w < k; ++w) {
      rv.add(w, static_cast<std::int32_t>(rng.uniform_below(3)));
    }
    HealthMask h = HealthMask::healthy(k);
    for (auto& ch : h.channels) {
      const double u = rng.uniform01();
      ch = u < 0.2   ? ChannelHealth::kConverterFaulted
           : u < 0.4 ? ChannelHealth::kChannelFaulted
                     : ChannelHealth::kHealthy;
    }
    core::OutputPortScheduler port(scheme);
    const auto a = port.assign_channels(rv, {}, h);
    EXPECT_EQ(a.granted, hk_maximum(scheme, rv, h))
        << "k=" << k << " e=" << e << " f=" << d - 1 - e;
  }
}

TEST(SchedulerHealth, FiberCutRejectsEverythingAsFaulted) {
  core::DistributedScheduler sched(2, ConversionScheme::circular(4, 1, 1));
  std::vector<core::SlotRequest> requests{
      {0, 0, 0, 1, 1}, {0, 7, 0, 2, 1},  // second is malformed (wavelength)
      {1, 1, 1, 3, 1}};
  std::vector<HealthMask> health(2, HealthMask::healthy(4));
  health[0].fiber_faulted = true;
  const auto d = sched.schedule_slot(requests, nullptr, &health);
  // kFaulted outranks field validation: nothing on a dead fiber is inspected.
  EXPECT_EQ(d[0].reason, core::RejectReason::kFaulted);
  EXPECT_EQ(d[1].reason, core::RejectReason::kFaulted);
  EXPECT_TRUE(d[2].granted);
  EXPECT_FALSE(core::is_malformed(core::RejectReason::kFaulted));
}

TEST(SchedulerHealth, WrongShapedHealthVectorRejectsSlot) {
  core::DistributedScheduler sched(3, ConversionScheme::circular(4, 1, 1));
  std::vector<core::SlotRequest> requests{{0, 0, 0, 1, 1}};
  std::vector<HealthMask> health(2, HealthMask::healthy(4));  // need 3
  const auto d = sched.schedule_slot(requests, nullptr, &health);
  EXPECT_EQ(d[0].reason, core::RejectReason::kBadHealthMask);
}

// ------------------------------------------------------------ FaultInjector

TEST(FaultInjector, ScriptedEventsApplyAtTheirSlot) {
  FaultConfig cfg;
  cfg.script = {FaultEvent{2, FaultKind::kChannel, 1, 3, false},
                FaultEvent{5, FaultKind::kChannel, 1, 3, true}};
  FaultInjector inj(2, 4, cfg, 99);
  for (std::uint64_t slot = 0; slot < 8; ++slot) {
    inj.tick();
    const bool down = slot >= 2 && slot < 5;
    EXPECT_EQ(inj.any_fault(), down) << "slot " << slot;
    EXPECT_EQ(inj.health()[1].channel(3) == ChannelHealth::kChannelFaulted,
              down);
  }
  EXPECT_EQ(inj.failures_injected(), 1u);
  EXPECT_EQ(inj.repairs_applied(), 1u);
}

TEST(FaultInjector, StochasticScheduleReplaysFromSeed) {
  FaultConfig cfg;
  cfg.converters = {20.0, 5.0};
  cfg.channels = {30.0, 8.0};
  cfg.fibers = {200.0, 10.0};
  FaultInjector a(3, 5, cfg, 12345);
  FaultInjector b(3, 5, cfg, 12345);
  for (int slot = 0; slot < 500; ++slot) {
    a.tick();
    b.tick();
    ASSERT_EQ(a.health(), b.health()) << "diverged at slot " << slot;
  }
  EXPECT_EQ(a.failures_injected(), b.failures_injected());
  EXPECT_GT(a.failures_injected(), 0u);  // MTBF 20 over 500 slots must fire
}

TEST(FaultInjector, ScriptDoesNotShiftTheStochasticStream) {
  // The determinism contract: one draw per component per slot, regardless of
  // state — so adding scripted events never moves the stochastic schedule.
  FaultConfig plain;
  plain.channels = {50.0, 5.0};
  FaultConfig scripted = plain;
  scripted.script = {FaultEvent{10, FaultKind::kConverter, 0, 0, false},
                     FaultEvent{20, FaultKind::kConverter, 0, 0, true}};
  FaultInjector a(2, 3, plain, 7);
  FaultInjector b(2, 3, scripted, 7);
  for (int slot = 0; slot < 300; ++slot) {
    a.tick();
    b.tick();
    if (slot >= 30) {  // past the scripted window the masks must re-converge
      ASSERT_EQ(a.health(), b.health()) << "stream shifted by slot " << slot;
    }
  }
}

// ------------------------------------------------------- interconnect paths

sim::InterconnectConfig base_config(std::int32_t n, std::int32_t k) {
  sim::InterconnectConfig cfg;
  cfg.n_fibers = n;
  cfg.scheme = ConversionScheme::circular(k, 1, k >= 3 ? 1 : 0);
  cfg.seed = 11;
  return cfg;
}

TEST(InterconnectFaults, NoDisturbTearsDownOnChannelFault) {
  // d = 1 (no conversion) pins wavelength 0 to channel 0, so the scripted
  // fault is guaranteed to hit the occupied channel.
  auto cfg = base_config(2, 4);
  cfg.scheme = ConversionScheme::circular(4, 0, 0);
  cfg.faults.script = {FaultEvent{1, FaultKind::kChannel, 0, 0, false}};
  sim::Interconnect ic(cfg);
  std::vector<core::SlotRequest> arrivals{{0, 0, 0, 1, 5}};
  auto stats = ic.step(arrivals);
  ASSERT_EQ(stats.granted, 1u);
  EXPECT_EQ(ic.busy_output_channels(), 1u);
  // Slot 1: the occupied channel dies; the connection is torn down and its
  // input channel freed.
  stats = ic.step({});
  EXPECT_EQ(stats.dropped_faulted, 1u);
  EXPECT_EQ(ic.busy_output_channels(), 0u);
  const auto busy = ic.input_channel_busy();
  for (const auto bit : busy) EXPECT_EQ(bit, 0);
}

TEST(InterconnectFaults, NoDisturbStraightThroughSurvivesConverterFault) {
  auto cfg = base_config(1, 4);
  cfg.scheme = ConversionScheme::circular(4, 0, 0);  // d = 1: w0 -> channel 0
  cfg.faults.script = {FaultEvent{1, FaultKind::kConverter, 0, 0, false}};
  sim::Interconnect ic(cfg);
  // Wavelength 0 on channel 0: no conversion in flight, so losing the
  // converter does not touch the connection.
  std::vector<core::SlotRequest> arrivals{{0, 0, 0, 1, 4}};
  auto stats = ic.step(arrivals);
  ASSERT_EQ(stats.granted, 1u);
  stats = ic.step({});
  EXPECT_EQ(stats.dropped_faulted, 0u);
  EXPECT_EQ(ic.busy_output_channels(), 1u);
}

TEST(InterconnectFaults, NoDisturbConvertingConnectionDiesWithConverter) {
  // k = 2, full range: two wavelength-0 requests fill both channels, so one
  // connection is straight-through on channel 0 and the other converts
  // 0 -> 1 — whichever request landed where. Killing both converters at
  // slot 1 must tear down exactly the converting connection.
  auto cfg = base_config(1, 2);
  cfg.scheme = ConversionScheme::circular(2, 1, 0);
  cfg.faults.script = {FaultEvent{1, FaultKind::kConverter, 0, 0, false},
                       FaultEvent{1, FaultKind::kConverter, 0, 1, false}};
  sim::Interconnect ic(cfg);
  std::vector<core::SlotRequest> arrivals{{0, 0, 0, 1, 4}, {0, 0, 0, 2, 4}};
  auto stats = ic.step(arrivals);
  ASSERT_EQ(stats.granted, 2u);
  stats = ic.step({});
  EXPECT_EQ(stats.dropped_faulted, 1u);
  EXPECT_EQ(ic.busy_output_channels(), 1u);
}

TEST(InterconnectFaults, RearrangeRehomesAroundChannelFault) {
  auto cfg = base_config(1, 4);
  cfg.policy = sim::OccupiedPolicy::kRearrange;
  // Wavelength 1 reaches channels {0, 1, 2} (e = f = 1); killing 0 and 1
  // leaves exactly channel 2, so wherever the connection sat, the
  // re-schedule must move it there instead of dropping it.
  cfg.faults.script = {FaultEvent{1, FaultKind::kChannel, 0, 0, false},
                       FaultEvent{1, FaultKind::kChannel, 0, 1, false}};
  sim::Interconnect ic(cfg);
  std::vector<core::SlotRequest> arrivals{{0, 1, 0, 1, 6}};
  auto stats = ic.step(arrivals);
  ASSERT_EQ(stats.granted, 1u);
  stats = ic.step({});
  EXPECT_EQ(stats.dropped_faulted, 0u);
  EXPECT_EQ(ic.busy_output_channels(), 1u);
}

TEST(InterconnectFaults, RearrangeDropsWhenNoSurvivorFits) {
  auto cfg = base_config(1, 2);
  cfg.policy = sim::OccupiedPolicy::kRearrange;
  cfg.faults.script = {FaultEvent{1, FaultKind::kFiber, 0, 0, false}};
  sim::Interconnect ic(cfg);
  std::vector<core::SlotRequest> arrivals{{0, 0, 0, 1, 6}};
  auto stats = ic.step(arrivals);
  ASSERT_EQ(stats.granted, 1u);
  stats = ic.step({});
  EXPECT_EQ(stats.dropped_faulted, 1u);
  EXPECT_EQ(ic.busy_output_channels(), 0u);
  const auto busy = ic.input_channel_busy();
  for (const auto bit : busy) EXPECT_EQ(bit, 0);
}

// --------------------------------------------------------------- retry queue

TEST(RetryQueue, DefersAndSucceedsAfterRepair) {
  auto cfg = base_config(1, 4);
  cfg.faults.script = {FaultEvent{0, FaultKind::kFiber, 0, 0, false},
                       FaultEvent{2, FaultKind::kFiber, 0, 0, true}};
  cfg.retry.max_retries = 3;
  cfg.retry.backoff_base = 2;
  sim::Interconnect ic(cfg);
  // Slot 0: fiber down, request deferred (due at slot 2, where the fiber is
  // back up).
  std::vector<core::SlotRequest> arrivals{{0, 0, 0, 1, 1}};
  auto s0 = ic.step(arrivals);
  EXPECT_EQ(s0.deferred_faulted, 1u);
  EXPECT_EQ(s0.granted, 0u);
  EXPECT_EQ(s0.rejected, 0u);
  EXPECT_EQ(ic.retry_queue_depth(), 1u);
  auto s1 = ic.step({});
  EXPECT_EQ(s1.retry_attempts, 0u);  // still backing off
  auto s2 = ic.step({});
  EXPECT_EQ(s2.retry_attempts, 1u);
  EXPECT_EQ(s2.retry_successes, 1u);
  EXPECT_EQ(s2.granted, 1u);
  EXPECT_EQ(ic.retry_queue_depth(), 0u);
}

TEST(RetryQueue, BudgetExhaustionDropsAsFaulted) {
  auto cfg = base_config(1, 2);
  cfg.faults.script = {FaultEvent{0, FaultKind::kFiber, 0, 0, false}};
  cfg.retry.max_retries = 1;
  cfg.retry.backoff_base = 1;
  sim::Interconnect ic(cfg);
  std::vector<core::SlotRequest> arrivals{{0, 0, 0, 1, 1}};
  auto s0 = ic.step(arrivals);
  EXPECT_EQ(s0.deferred_faulted, 1u);
  // Slot 1: the one retry runs against a still-dead fiber; the budget is
  // spent, so the request finally drops as rejected_faulted.
  auto s1 = ic.step({});
  EXPECT_EQ(s1.retry_attempts, 1u);
  EXPECT_EQ(s1.rejected, 1u);
  EXPECT_EQ(s1.rejected_faulted, 1u);
  EXPECT_EQ(ic.retry_queue_depth(), 0u);
}

TEST(RetryQueue, DisabledRetriesRejectImmediately) {
  auto cfg = base_config(1, 2);
  cfg.faults.script = {FaultEvent{0, FaultKind::kFiber, 0, 0, false}};
  sim::Interconnect ic(cfg);  // retry.max_retries defaults to 0
  std::vector<core::SlotRequest> arrivals{{0, 0, 0, 1, 1}};
  const auto s0 = ic.step(arrivals);
  EXPECT_EQ(s0.rejected, 1u);
  EXPECT_EQ(s0.rejected_faulted, 1u);
  EXPECT_EQ(s0.deferred_faulted, 0u);
  EXPECT_EQ(ic.retry_queue_depth(), 0u);
}

TEST(RetryQueue, CapacityBoundOverflowsToRejection) {
  auto cfg = base_config(1, 4);
  cfg.faults.script = {FaultEvent{0, FaultKind::kFiber, 0, 0, false}};
  cfg.retry.max_retries = 5;
  cfg.retry.queue_capacity = 2;
  sim::Interconnect ic(cfg);
  std::vector<core::SlotRequest> arrivals{
      {0, 0, 0, 1, 1}, {0, 1, 0, 2, 1}, {0, 2, 0, 3, 1}};
  const auto s0 = ic.step(arrivals);
  EXPECT_EQ(s0.deferred_faulted, 2u);
  // The request the full queue could not take is a deliberate overload shed
  // (the hardware fault is real, but the drop happened at the cap), counted
  // in the shed_overload subset rather than rejected_faulted.
  EXPECT_EQ(s0.rejected, 1u);
  EXPECT_EQ(s0.rejected_faulted, 0u);
  EXPECT_EQ(s0.shed_overload, 1u);
  EXPECT_EQ(ic.retry_queue_depth(), 2u);
  sim::MetricsCollector metrics(1, 4);
  metrics.record_slot(s0);  // conservation law balances at the cap
  EXPECT_EQ(metrics.shed_overload(), 1u);
}

// -------------------------------------------------------------- metrics law

TEST(MetricsFaults, ConservationLawEnforced) {
  sim::MetricsCollector m(1, 2);
  sim::SlotStats bad;
  bad.arrivals = 2;
  bad.granted = 1;  // 1 request vanished: neither rejected nor deferred
  EXPECT_THROW(m.record_slot(bad), std::logic_error);

  sim::SlotStats good;
  good.arrivals = 3;
  good.retry_attempts = 1;
  good.granted = 2;
  good.retry_successes = 1;
  good.rejected = 1;
  good.rejected_faulted = 1;
  good.deferred_faulted = 1;
  m.record_slot(good);
  EXPECT_EQ(m.rejected_faulted(), 1u);
  EXPECT_EQ(m.deferred_faulted(), 1u);
  EXPECT_EQ(m.retry_attempts(), 1u);
  EXPECT_EQ(m.retry_successes(), 1u);
}

TEST(MetricsFaults, MergeAddsFaultCounters) {
  sim::MetricsCollector a(1, 2);
  sim::MetricsCollector b(1, 2);
  sim::SlotStats s;
  s.arrivals = 1;
  s.rejected = 1;
  s.rejected_faulted = 1;
  s.dropped_faulted = 2;
  a.record_slot(s);
  b.record_slot(s);
  a.merge(b);
  EXPECT_EQ(a.rejected_faulted(), 2u);
  EXPECT_EQ(a.dropped_faulted(), 4u);
}

// --------------------------------------------------- end-to-end determinism

TEST(SimulationFaults, EnablingFaultsDoesNotPerturbArrivals) {
  // Single-slot holding keeps the traffic feedback loop (input_channel_busy)
  // identically empty, so the arrival count for a seed must be bit-for-bit
  // the same whether faults are on or off: the injector lives on a derived
  // RNG stream that traffic never sees.
  sim::SimulationConfig cfg;
  cfg.interconnect.n_fibers = 4;
  cfg.interconnect.scheme = ConversionScheme::circular(4, 1, 1);
  cfg.traffic.load = 0.6;
  cfg.slots = 2000;
  cfg.warmup = 100;
  cfg.seed = 77;
  const auto healthy = sim::run_simulation(cfg);

  cfg.interconnect.faults.channels = {40.0, 10.0};
  cfg.interconnect.faults.fibers = {500.0, 25.0};
  const auto faulted = sim::run_simulation(cfg);

  EXPECT_EQ(healthy.arrivals, faulted.arrivals);
  EXPECT_GT(faulted.fault_failures, 0u);
  EXPECT_EQ(healthy.fault_failures, 0u);
  // Degradation shows up as extra loss, never as vanished requests.
  EXPECT_GE(faulted.losses, healthy.losses);
}

TEST(SimulationFaults, FaultedRunReplaysFromSeed) {
  sim::SimulationConfig cfg;
  cfg.interconnect.n_fibers = 3;
  cfg.interconnect.scheme = ConversionScheme::circular(4, 1, 1);
  cfg.interconnect.faults.converters = {30.0, 6.0};
  cfg.interconnect.faults.channels = {60.0, 12.0};
  cfg.interconnect.retry.max_retries = 2;
  cfg.traffic.load = 0.5;
  cfg.slots = 1500;
  cfg.warmup = 100;
  cfg.seed = 31;
  const auto a = sim::run_simulation(cfg);
  const auto b = sim::run_simulation(cfg);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.losses, b.losses);
  EXPECT_EQ(a.rejected_faulted, b.rejected_faulted);
  EXPECT_EQ(a.dropped_faulted, b.dropped_faulted);
  EXPECT_EQ(a.retry_attempts, b.retry_attempts);
  EXPECT_EQ(a.retry_successes, b.retry_successes);
  EXPECT_EQ(a.fault_failures, b.fault_failures);
  EXPECT_EQ(a.fault_repairs, b.fault_repairs);
}

TEST(ChainFaults, FaultedChainRunsAndReplays) {
  sim::ChainConfig cfg;
  cfg.hops = 3;
  cfg.n_fibers = 4;
  cfg.scheme = ConversionScheme::circular(4, 1, 1);
  cfg.load = 0.4;
  cfg.slots = 1200;
  cfg.warmup = 100;
  cfg.seed = 5;
  const auto healthy = sim::run_chain_simulation(cfg);
  EXPECT_EQ(healthy.dropped_faulted, 0u);

  cfg.faults.fibers = {300.0, 20.0};
  const auto a = sim::run_chain_simulation(cfg);
  const auto b = sim::run_chain_simulation(cfg);
  EXPECT_EQ(a.injected, b.injected);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.dropped_faulted, b.dropped_faulted);
  // Same seed, same traffic: the faulted chain injects identically but
  // delivers no more than the healthy one.
  EXPECT_EQ(a.injected, healthy.injected);
  EXPECT_LE(a.delivered, healthy.delivered);
  EXPECT_GT(a.dropped_faulted, 0u);
}

}  // namespace
}  // namespace wdm
