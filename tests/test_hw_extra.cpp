// Additional hardware-model coverage: conversion-mask wiring, cycle
// accounting of the trivial paths, availability interactions, tracer hooks.
#include <gtest/gtest.h>

#include "hw/hw_scheduler.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using core::Request;
using hw::HwPortScheduler;

TEST(HwExtra, EmptySlotCostsOnlyTheScan) {
  const auto scheme = ConversionScheme::non_circular(8, 1, 1);
  HwPortScheduler port(scheme, 4);
  port.load({});
  const auto grants = port.run();
  EXPECT_TRUE(grants.empty());
  // 1 latch + k match steps, no commits.
  EXPECT_EQ(port.cycles().total, 1u + 8u);
  EXPECT_EQ(port.cycles().channel_steps, 8u);
}

TEST(HwExtra, BfaEmptySlotTerminatesImmediately) {
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  HwPortScheduler port(scheme, 4);
  port.load({});
  EXPECT_TRUE(port.run().empty());
  EXPECT_EQ(port.cycles().candidates, 0u);
}

TEST(HwExtra, FullyOccupiedFiberGrantsNothing) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  HwPortScheduler port(scheme, 3);
  std::vector<Request> requests{{0, 1, 1, 1}, {1, 4, 2, 1}};
  port.load(requests);
  const std::vector<std::uint8_t> mask(6, 0);
  port.set_availability(mask);
  EXPECT_TRUE(port.run().empty());
}

TEST(HwExtra, AvailabilityResetRestoresAllChannels) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  HwPortScheduler port(scheme, 3);
  std::vector<Request> requests{{0, 1, 1, 1}};
  const std::vector<std::uint8_t> mask(6, 0);
  port.set_availability(mask);
  port.load(requests);
  EXPECT_TRUE(port.run().empty());
  port.set_availability({});  // empty = all free
  port.load(requests);
  EXPECT_EQ(port.run().size(), 1u);
}

TEST(HwExtra, TracerSeesEveryCommit) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  HwPortScheduler port(scheme, 4);
  std::vector<Request> requests{{0, 0, 1, 1}, {1, 2, 2, 1}, {2, 4, 3, 1}};
  std::size_t commits = 0;
  std::int32_t last_total = 0;
  port.set_tracer([&](const hw::TraceEvent& event) {
    if (event.phase == hw::TraceEvent::Phase::kCommit) {
      commits += 1;
      EXPECT_GT(event.granted_so_far, last_total);
      last_total = event.granted_so_far;
      EXPECT_TRUE(scheme.can_convert(event.wavelength, event.channel));
    }
  });
  port.load(requests);
  const auto grants = port.run();
  EXPECT_EQ(commits, grants.size());
  port.set_tracer(nullptr);
}

TEST(HwExtra, ConsecutiveSlotsAreIndependent) {
  // Round-robin arbiter state persists, but request state must not leak.
  const auto scheme = ConversionScheme::non_circular(6, 1, 1);
  HwPortScheduler port(scheme, 3);
  std::vector<Request> heavy{{0, 1, 1, 1}, {1, 1, 2, 1}, {2, 1, 3, 1}};
  port.load(heavy);
  const auto first = port.run();
  port.load({});
  EXPECT_TRUE(port.run().empty());
  port.load(heavy);
  EXPECT_EQ(port.run().size(), first.size());
}

TEST(HwExtra, GrantsMatchOracleUnderHeavySkew) {
  // All requests on one wavelength: grants = min(requesters, d-ish window).
  util::Rng rng(31);
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  HwPortScheduler port(scheme, 6);
  std::vector<Request> requests;
  for (std::int32_t fib = 0; fib < 6; ++fib) {
    requests.push_back(Request{fib, 3, static_cast<std::uint64_t>(fib), 1});
  }
  port.load(requests);
  const auto grants = port.run();
  EXPECT_EQ(grants.size(), 3u);  // λ3 reaches {2, 3, 4}
  core::RequestVector rv(8);
  rv.add(3, 6);
  EXPECT_EQ(static_cast<std::int32_t>(grants.size()),
            test::oracle_max_matching(scheme, rv));
}

}  // namespace
}  // namespace wdm
