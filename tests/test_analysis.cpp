// Closed-form corner analysis vs the slotted simulator: the strongest
// end-to-end validation the model admits — measured loss must match the
// exact formulas at d = 1 and d = k.
#include <gtest/gtest.h>

#include "sim/analysis.hpp"
#include "sim/simulation.hpp"

namespace wdm {
namespace {

TEST(BinomialPmf, SumsToOneAndMatchesKnownValues) {
  double total = 0.0;
  for (std::int32_t x = 0; x <= 10; ++x) {
    total += sim::binomial_pmf(10, 0.3, x);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(sim::binomial_pmf(4, 0.5, 2), 6.0 / 16.0, 1e-12);
  EXPECT_DOUBLE_EQ(sim::binomial_pmf(5, 0.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(sim::binomial_pmf(5, 1.0, 5), 1.0);
  EXPECT_DOUBLE_EQ(sim::binomial_pmf(5, 1.0, 3), 0.0);
}

TEST(SlottedAnalysis, NoConversionFormulaSanity) {
  // N = 1: the only input fiber always wins its own channel — zero loss.
  EXPECT_NEAR(sim::slotted_loss_no_conversion(1, 0.7), 0.0, 1e-12);
  // Loss increases with N at fixed p (more contention for each channel).
  EXPECT_LT(sim::slotted_loss_no_conversion(2, 0.8),
            sim::slotted_loss_no_conversion(16, 0.8));
  // p -> 0: loss -> (N-1)/(2N) * p -> 0.
  EXPECT_LT(sim::slotted_loss_no_conversion(8, 0.01), 0.01);
}

TEST(SlottedAnalysis, FullRangeFormulaSanity) {
  // Full range with k = 1 degenerates to the no-conversion channel formula.
  EXPECT_NEAR(sim::slotted_loss_full_range(8, 1, 0.6),
              sim::slotted_loss_no_conversion(8, 0.6), 1e-12);
  // Pooling k channels strictly reduces loss.
  EXPECT_LT(sim::slotted_loss_full_range(8, 8, 0.8),
            sim::slotted_loss_no_conversion(8, 0.8));
  // More channels, less loss.
  EXPECT_LT(sim::slotted_loss_full_range(8, 16, 0.8),
            sim::slotted_loss_full_range(8, 4, 0.8));
}

TEST(SlottedAnalysis, SimulatorMatchesNoConversionFormula) {
  for (const double load : {0.3, 0.7, 0.95}) {
    sim::SimulationConfig cfg;
    cfg.interconnect.n_fibers = 6;
    cfg.interconnect.scheme = core::ConversionScheme::circular(8, 0, 0);
    cfg.traffic.load = load;
    cfg.slots = 6000;
    cfg.warmup = 500;
    cfg.seed = 4;
    const auto r = sim::run_simulation(cfg);
    const double expected = sim::slotted_loss_no_conversion(6, load);
    EXPECT_NEAR(r.loss_probability, expected, 0.01) << "load " << load;
  }
}

TEST(SlottedAnalysis, SimulatorMatchesFullRangeFormula) {
  for (const double load : {0.5, 0.8, 0.95}) {
    sim::SimulationConfig cfg;
    cfg.interconnect.n_fibers = 6;
    cfg.interconnect.scheme = core::ConversionScheme::full_range(8);
    cfg.traffic.load = load;
    cfg.slots = 6000;
    cfg.warmup = 500;
    cfg.seed = 8;
    const auto r = sim::run_simulation(cfg);
    const double expected = sim::slotted_loss_full_range(6, 8, load);
    EXPECT_NEAR(r.loss_probability, expected, 0.01) << "load " << load;
  }
}

TEST(SlottedAnalysis, LimitedRangeFallsBetweenTheCorners) {
  sim::SimulationConfig cfg;
  cfg.interconnect.n_fibers = 6;
  cfg.interconnect.scheme = core::ConversionScheme::circular(8, 1, 1);
  cfg.traffic.load = 0.8;
  cfg.slots = 8000;
  cfg.warmup = 800;
  cfg.seed = 15;
  const auto r = sim::run_simulation(cfg);
  EXPECT_LT(r.loss_probability, sim::slotted_loss_no_conversion(6, 0.8));
  EXPECT_GT(r.loss_probability,
            sim::slotted_loss_full_range(6, 8, 0.8) - 0.005);
}

TEST(SlottedAnalysis, BatchMeansCiBracketsTruth) {
  sim::SimulationConfig cfg;
  cfg.interconnect.n_fibers = 6;
  cfg.interconnect.scheme = core::ConversionScheme::full_range(8);
  cfg.traffic.load = 0.8;
  cfg.slots = 9000;
  cfg.warmup = 900;
  cfg.seed = 16;
  const auto r = sim::run_simulation(cfg);
  const double truth = sim::slotted_loss_full_range(6, 8, 0.8);
  EXPECT_GT(r.loss_batch_ci, 0.0);
  // 95% CI: allow 2x slack to keep the test deterministic-safe.
  EXPECT_NEAR(r.loss_probability, truth, 2.0 * r.loss_batch_ci + 1e-4);
}

TEST(SlottedAnalysis, InvalidInputsRejected) {
  EXPECT_THROW(sim::slotted_loss_no_conversion(0, 0.5), std::logic_error);
  EXPECT_THROW(sim::slotted_loss_no_conversion(4, 0.0), std::logic_error);
  EXPECT_THROW(sim::slotted_loss_full_range(4, 0, 0.5), std::logic_error);
  EXPECT_THROW(sim::slotted_loss_full_range(4, 4, 1.5), std::logic_error);
}

}  // namespace
}  // namespace wdm
