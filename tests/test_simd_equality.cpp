// Decision-equality pinning for the masked (SIMD) slot kernels
// (docs/ALGORITHMS.md §9): the masked path must be bit-identical to the
// scalar reference — same grants, same channels, same arbitration, same
// checkpoint digest — across every pipeline configuration. The kernels are
// a pure performance switch, never a behavioral one, and these sweeps are
// what makes that contract enforceable rather than aspirational.
//
// Complements the differential oracle (tests/oracle/oracle_fuzz.cpp), which
// pins the kernels against Hopcroft–Karp per instance; here the whole
// simulator runs twice — core::SimdMode::kScalar vs kMask — and the final
// sim::state_digest plus every per-slot SlotStats must match exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/break_first_available.hpp"
#include "core/distributed.hpp"
#include "core/first_available.hpp"
#include "core/health.hpp"
#include "core/simd.hpp"
#include "core/wave_mask.hpp"
#include "obs/telemetry.hpp"
#include "sim/checkpoint.hpp"
#include "sim/interconnect.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace wdm {
namespace {

/// Every test leaves the process-global kernel toggle the way it found it.
class SimdEquality : public ::testing::Test {
 protected:
  void TearDown() override { core::set_simd_mode(core::SimdMode::kAuto); }
};

std::vector<std::vector<core::SlotRequest>> make_slots(std::int32_t n_fibers,
                                                       std::int32_t k,
                                                       std::size_t n_slots,
                                                       double load,
                                                       std::uint64_t seed,
                                                       std::int32_t n_classes) {
  util::Rng rng(seed);
  std::vector<std::vector<core::SlotRequest>> slots(n_slots);
  std::uint64_t id = 0;
  for (auto& slot : slots) {
    for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
      for (core::Wavelength w = 0; w < k; ++w) {
        if (!rng.bernoulli(load)) continue;
        slot.push_back(core::SlotRequest{
            fib, w,
            static_cast<std::int32_t>(
                rng.uniform_below(static_cast<std::uint64_t>(n_fibers))),
            id++, 1 + static_cast<std::int32_t>(rng.uniform_below(3)),
            n_classes > 1 ? static_cast<std::int32_t>(rng.uniform_below(
                                static_cast<std::uint64_t>(n_classes)))
                          : 0});
      }
    }
    // A sprinkle of malformed requests: rejection accounting must not
    // depend on the kernel path either.
    if (rng.bernoulli(0.3)) {
      slot.push_back(core::SlotRequest{0, k + 1, 0, id++, 1, 0});
    }
  }
  return slots;
}

void expect_stats_eq(const sim::SlotStats& a, const sim::SlotStats& b,
                     std::size_t slot) {
  EXPECT_EQ(a.arrivals, b.arrivals) << "slot " << slot;
  EXPECT_EQ(a.granted, b.granted) << "slot " << slot;
  EXPECT_EQ(a.rejected, b.rejected) << "slot " << slot;
  EXPECT_EQ(a.rejected_malformed, b.rejected_malformed) << "slot " << slot;
  EXPECT_EQ(a.rejected_faulted, b.rejected_faulted) << "slot " << slot;
  EXPECT_EQ(a.shed_overload, b.shed_overload) << "slot " << slot;
  EXPECT_EQ(a.deferred_faulted, b.deferred_faulted) << "slot " << slot;
  EXPECT_EQ(a.deferred_overload, b.deferred_overload) << "slot " << slot;
  EXPECT_EQ(a.ingress_releases, b.ingress_releases) << "slot " << slot;
  EXPECT_EQ(a.degraded_ports, b.degraded_ports) << "slot " << slot;
  EXPECT_EQ(a.retry_attempts, b.retry_attempts) << "slot " << slot;
  EXPECT_EQ(a.retry_successes, b.retry_successes) << "slot " << slot;
  EXPECT_EQ(a.preempted, b.preempted) << "slot " << slot;
  EXPECT_EQ(a.dropped_faulted, b.dropped_faulted) << "slot " << slot;
  EXPECT_EQ(a.busy_channels, b.busy_channels) << "slot " << slot;
  EXPECT_TRUE(a.arrivals_per_class == b.arrivals_per_class) << "slot " << slot;
  EXPECT_TRUE(a.granted_per_class == b.granted_per_class) << "slot " << slot;
}

struct RunResult {
  std::uint64_t digest = 0;
  std::vector<sim::SlotStats> stats;
};

/// Runs the whole slot sequence through a fresh interconnect under `mode`
/// and returns the per-slot stats plus the final checkpoint digest.
RunResult run(const sim::InterconnectConfig& cfg,
              const std::vector<std::vector<core::SlotRequest>>& slots,
              core::SimdMode mode, bool use_pool, obs::TraceDetail detail) {
  core::set_simd_mode(mode);
  sim::Interconnect ic(cfg);
  obs::TraceRecorder recorder(detail);
  if (detail != obs::TraceDetail::kOff) ic.set_telemetry(&recorder);
  util::ThreadPool pool(2);
  RunResult out;
  out.stats.reserve(slots.size());
  for (const auto& slot : slots) {
    out.stats.push_back(ic.step(slot, use_pool ? &pool : nullptr));
  }
  out.digest = sim::state_digest(ic);
  core::set_simd_mode(core::SimdMode::kAuto);
  return out;
}

void expect_runs_equal(const RunResult& scalar, const RunResult& masked) {
  ASSERT_EQ(scalar.stats.size(), masked.stats.size());
  for (std::size_t s = 0; s < scalar.stats.size(); ++s) {
    expect_stats_eq(scalar.stats[s], masked.stats[s], s);
  }
  EXPECT_EQ(scalar.digest, masked.digest)
      << "scalar and masked kernels must leave bit-identical state";
}

TEST_F(SimdEquality, StateDigestSweepAcrossPoolTraceAndFaults) {
  // The ISSUE acceptance sweep: pool on/off x trace detail x faults on/off,
  // over both conversion kinds and both occupancy policies.
  const std::int32_t n = 8;
  const std::int32_t k = 12;
  const auto slots = make_slots(n, k, 48, 0.6, 7, 3);
  int combos = 0;
  for (const bool circular : {true, false}) {
    for (const bool with_faults : {false, true}) {
      for (const bool use_pool : {false, true}) {
        for (const auto detail :
             {obs::TraceDetail::kOff, obs::TraceDetail::kFull}) {
          sim::InterconnectConfig cfg;
          cfg.n_fibers = n;
          cfg.scheme = circular ? core::ConversionScheme::circular(k, 2, 1)
                                : core::ConversionScheme::non_circular(k, 1, 2);
          cfg.policy = circular ? sim::OccupiedPolicy::kNoDisturb
                                : sim::OccupiedPolicy::kRearrange;
          cfg.seed = 11;
          if (with_faults) {
            cfg.faults.converters = {60.0, 12.0};
            cfg.faults.channels = {80.0, 10.0};
            cfg.faults.fibers = {150.0, 20.0};
            cfg.retry.max_retries = 2;
          }
          SCOPED_TRACE((circular ? "circ" : "noncirc") +
                       std::string(with_faults ? " faults" : "") +
                       (use_pool ? " pool" : "") +
                       (detail == obs::TraceDetail::kFull ? " full-trace" : ""));
          expect_runs_equal(
              run(cfg, slots, core::SimdMode::kScalar, use_pool, detail),
              run(cfg, slots, core::SimdMode::kMask, use_pool, detail));
          combos += 1;
        }
      }
    }
  }
  EXPECT_EQ(combos, 16);
}

TEST_F(SimdEquality, DegradedModeUsesTheSameApproxDecisions) {
  // Deadline-bounded degradation swaps in the approx kernel mid-run; the
  // masked approx must degrade identically (same ports, same grants).
  const std::int32_t n = 8;
  const std::int32_t k = 10;
  const auto slots = make_slots(n, k, 48, 0.8, 21, 1);
  sim::InterconnectConfig cfg;
  cfg.n_fibers = n;
  cfg.scheme = core::ConversionScheme::circular(k, 2, 2);
  cfg.seed = 3;
  cfg.degrade.op_budget = 120;  // ~2 exact ports per slot, then degrade
  const auto scalar = run(cfg, slots, core::SimdMode::kScalar, false,
                          obs::TraceDetail::kOff);
  const auto masked = run(cfg, slots, core::SimdMode::kMask, false,
                          obs::TraceDetail::kOff);
  expect_runs_equal(scalar, masked);
  std::uint64_t degraded = 0;
  for (const auto& s : scalar.stats) degraded += s.degraded_ports;
  EXPECT_GT(degraded, 0u) << "budget never tripped; the sweep tested nothing";
}

TEST_F(SimdEquality, WavelengthCountNotAMultipleOf64) {
  // k = 70 spans two mask words with a 6-bit tail — the layout's worst case
  // (every circular wrap crosses the word boundary).
  const std::int32_t n = 4;
  const std::int32_t k = 70;
  const auto slots = make_slots(n, k, 24, 0.5, 13, 1);
  for (const bool circular : {true, false}) {
    sim::InterconnectConfig cfg;
    cfg.n_fibers = n;
    cfg.scheme = circular ? core::ConversionScheme::circular(k, 3, 2)
                          : core::ConversionScheme::non_circular(k, 2, 3);
    cfg.seed = 17;
    SCOPED_TRACE(circular ? "circular" : "non-circular");
    expect_runs_equal(run(cfg, slots, core::SimdMode::kScalar, false,
                          obs::TraceDetail::kOff),
                      run(cfg, slots, core::SimdMode::kMask, false,
                          obs::TraceDetail::kOff));
  }
}

TEST_F(SimdEquality, SingleFiberInterconnect) {
  const std::int32_t k = 9;
  const auto slots = make_slots(1, k, 32, 0.7, 19, 2);
  sim::InterconnectConfig cfg;
  cfg.n_fibers = 1;
  cfg.scheme = core::ConversionScheme::circular(k, 1, 1);
  cfg.seed = 23;
  expect_runs_equal(
      run(cfg, slots, core::SimdMode::kScalar, false, obs::TraceDetail::kOff),
      run(cfg, slots, core::SimdMode::kMask, false, obs::TraceDetail::kOff));
}

TEST_F(SimdEquality, EmptySlotsAndEmptyMasksMatch) {
  // All-empty arrival vectors: the kernels see nonempty masks of zero and
  // must still agree (including the aging/occupancy bookkeeping around them).
  const std::int32_t n = 4;
  const std::int32_t k = 8;
  std::vector<std::vector<core::SlotRequest>> slots(16);
  slots[3] = make_slots(n, k, 1, 0.9, 29, 1)[0];  // one busy slot mid-run
  sim::InterconnectConfig cfg;
  cfg.n_fibers = n;
  cfg.scheme = core::ConversionScheme::circular(k, 1, 1);
  cfg.seed = 31;
  expect_runs_equal(
      run(cfg, slots, core::SimdMode::kScalar, false, obs::TraceDetail::kOff),
      run(cfg, slots, core::SimdMode::kMask, false, obs::TraceDetail::kOff));
}

TEST_F(SimdEquality, AllFaultedHealthMasksMatchScalar) {
  // Health masks force the scalar fault-reduction path even under kMask; the
  // decisions must be identical to an all-scalar run, including the
  // everything-faulted extreme where nothing survives.
  const std::int32_t n = 4;
  const std::int32_t k = 8;
  const auto scheme = core::ConversionScheme::circular(k, 1, 1);
  const auto slot = make_slots(n, k, 1, 0.8, 37, 1)[0];
  for (const bool cut_everything : {false, true}) {
    std::vector<core::HealthMask> health(
        static_cast<std::size_t>(n), core::HealthMask::healthy(k));
    if (cut_everything) {
      for (auto& h : health) h.fiber_faulted = true;
    } else {
      // Half converter-faulted, half channel-faulted on every fiber.
      for (auto& h : health) {
        for (std::size_t u = 0; u < h.channels.size(); ++u) {
          h.channels[u] = (u % 2 == 0)
                              ? core::ChannelHealth::kConverterFaulted
                              : core::ChannelHealth::kChannelFaulted;
        }
      }
    }
    const auto decide = [&](core::SimdMode mode) {
      core::set_simd_mode(mode);
      core::DistributedScheduler sched(n, scheme, core::Algorithm::kAuto,
                                       core::Arbitration::kFifo, 41);
      auto out = sched.schedule_slot(slot, nullptr, &health, nullptr);
      core::set_simd_mode(core::SimdMode::kAuto);
      return out;
    };
    const auto scalar = decide(core::SimdMode::kScalar);
    const auto masked = decide(core::SimdMode::kMask);
    ASSERT_EQ(scalar.size(), masked.size());
    for (std::size_t i = 0; i < scalar.size(); ++i) {
      EXPECT_EQ(scalar[i].granted, masked[i].granted) << "request " << i;
      EXPECT_EQ(scalar[i].channel, masked[i].channel) << "request " << i;
      EXPECT_EQ(scalar[i].reason, masked[i].reason) << "request " << i;
      if (cut_everything) {
        EXPECT_EQ(masked[i].reason, core::RejectReason::kFaulted);
      }
    }
  }
}

TEST_F(SimdEquality, StepBatchIsBitIdenticalToSerialSteps) {
  // step_batch's one-pass validation must change nothing: same per-slot
  // stats, same summed stats, same final digest as W separate step() calls.
  const std::int32_t n = 8;
  const std::int32_t k = 12;
  const auto slots = make_slots(n, k, 32, 0.6, 43, 2);
  sim::InterconnectConfig cfg;
  cfg.n_fibers = n;
  cfg.scheme = core::ConversionScheme::circular(k, 2, 1);
  cfg.seed = 47;

  const auto serial =
      run(cfg, slots, core::SimdMode::kAuto, false, obs::TraceDetail::kOff);

  sim::Interconnect batched(cfg);
  std::vector<sim::SlotStats> per_slot(slots.size());
  const auto sum = batched.step_batch(slots, nullptr, per_slot);
  ASSERT_EQ(per_slot.size(), serial.stats.size());
  sim::SlotStats expect_sum;
  for (std::size_t s = 0; s < per_slot.size(); ++s) {
    expect_stats_eq(serial.stats[s], per_slot[s], s);
    expect_sum.arrivals += per_slot[s].arrivals;
    expect_sum.granted += per_slot[s].granted;
    expect_sum.rejected += per_slot[s].rejected;
  }
  EXPECT_EQ(sum.arrivals, expect_sum.arrivals);
  EXPECT_EQ(sum.granted, expect_sum.granted);
  EXPECT_EQ(sum.rejected, expect_sum.rejected);
  EXPECT_EQ(sum.busy_channels, per_slot.back().busy_channels);
  EXPECT_EQ(sim::state_digest(batched), serial.digest);
}

TEST_F(SimdEquality, MaskedKernelsMatchScalarOnRandomInstances) {
  // Direct kernel-level pinning (the oracle fuzzer runs the heavyweight
  // version of this against Hopcroft–Karp; this keeps a fast always-on copy
  // in the tier-1 suite). Random schemes, loads, and availability rows.
  util::Rng rng(53);
  for (int it = 0; it < 400; ++it) {
    const auto k = static_cast<std::int32_t>(1 + rng.uniform_below(96));
    const auto d = static_cast<std::int32_t>(1 + rng.uniform_below(
                                                     static_cast<std::uint64_t>(k)));
    const auto e = static_cast<std::int32_t>(
        rng.uniform_below(static_cast<std::uint64_t>(d)));
    const auto f = d - 1 - e;
    const bool circular = rng.bernoulli(0.5);
    const auto scheme = circular ? core::ConversionScheme::circular(k, e, f)
                                 : core::ConversionScheme::non_circular(k, e, f);
    if (scheme.is_full_range()) continue;  // full-range has no masked variant

    core::RequestVector rv(k);
    const double load = rng.uniform01();
    for (core::Wavelength w = 0; w < k; ++w) {
      if (rng.bernoulli(load)) {
        rv.add(w, static_cast<std::int32_t>(1 + rng.uniform_below(3)));
      }
    }
    std::vector<std::uint8_t> avail(static_cast<std::size_t>(k));
    const double p_free = rng.uniform01();
    for (auto& b : avail) b = rng.bernoulli(p_free) ? 1 : 0;

    std::vector<std::uint64_t> avail_words(core::mask_words(k), 0);
    std::vector<std::uint64_t> nonempty(core::mask_words(k), 0);
    core::pack_availability(avail, k, avail_words.data());
    for (core::Wavelength w = 0; w < k; ++w) {
      if (rv.count(w) > 0) core::mask_set(nonempty.data(), w);
    }

    core::ChannelAssignment scalar(k);
    core::ChannelAssignment masked(k);
    if (circular) {
      scalar = core::break_first_available(rv, scheme, avail);
      core::BfaScratch scratch;
      core::break_first_available_masked_into(rv, scheme, avail_words,
                                              nonempty, nullptr, scratch,
                                              masked);
      // The approximation too, while the packed instance is at hand.
      core::ChannelAssignment approx_scalar(k);
      core::ChannelAssignment approx_masked(k);
      const auto bc_scalar = core::approx_break_first_available_into(
          rv, scheme, avail, approx_scalar);
      const auto bc_masked = core::approx_break_first_available_masked_into(
          rv, scheme, avail_words, nonempty, approx_masked);
      ASSERT_EQ(bc_scalar, bc_masked) << "iteration " << it;
      ASSERT_EQ(approx_scalar.source, approx_masked.source)
          << "iteration " << it;
    } else {
      scalar = core::first_available(rv, scheme, avail);
      core::first_available_masked_into(rv, scheme, avail_words, nonempty,
                                        masked);
    }
    ASSERT_EQ(scalar.granted, masked.granted)
        << "iteration " << it << " k=" << k << (circular ? " circ" : " noncirc");
    ASSERT_EQ(scalar.source, masked.source)
        << "iteration " << it << " k=" << k << (circular ? " circ" : " noncirc");
  }
}

}  // namespace
}  // namespace wdm
