// Interconnect stepping: conservation, occupancy, multi-slot holding, and
// the two Section-V policies.
#include <gtest/gtest.h>

#include "sim/interconnect.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using core::SlotRequest;
using sim::Interconnect;
using sim::InterconnectConfig;
using sim::OccupiedPolicy;

InterconnectConfig small_config() {
  InterconnectConfig cfg;
  cfg.n_fibers = 2;
  cfg.scheme = ConversionScheme::circular(4, 1, 1);
  return cfg;
}

TEST(Interconnect, SingleSlotPacketsFreeNextSlot) {
  Interconnect ic(small_config());
  std::vector<SlotRequest> arrivals{{0, 1, 0, 1, 1}, {1, 2, 0, 2, 1}};
  const auto stats = ic.step(arrivals);
  EXPECT_EQ(stats.arrivals, 2u);
  EXPECT_EQ(stats.granted, 2u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.busy_channels, 2u);
  // Next slot: everything released before scheduling.
  const auto stats2 = ic.step({});
  EXPECT_EQ(stats2.busy_channels, 0u);
  EXPECT_EQ(ic.busy_output_channels(), 0u);
}

TEST(Interconnect, ConservationAlways) {
  InterconnectConfig cfg = small_config();
  Interconnect ic(cfg);
  util::Rng rng(5);
  std::uint64_t id = 0;
  for (int slot = 0; slot < 50; ++slot) {
    std::vector<SlotRequest> arrivals;
    for (std::int32_t fib = 0; fib < 2; ++fib) {
      for (core::Wavelength w = 0; w < 4; ++w) {
        if (rng.bernoulli(0.8)) {
          arrivals.push_back(SlotRequest{
              fib, w, static_cast<std::int32_t>(rng.uniform_below(2)), id++, 1});
        }
      }
    }
    const auto stats = ic.step(arrivals);
    EXPECT_EQ(stats.granted + stats.rejected, stats.arrivals);
    EXPECT_EQ(stats.busy_channels, stats.granted);  // single-slot packets
  }
}

TEST(Interconnect, MultiSlotConnectionHoldsChannel) {
  InterconnectConfig cfg = small_config();
  cfg.policy = OccupiedPolicy::kNoDisturb;
  Interconnect ic(cfg);
  std::vector<SlotRequest> arrivals{{0, 1, 0, 1, 3}};  // holds 3 slots
  EXPECT_EQ(ic.step(arrivals).granted, 1u);
  EXPECT_EQ(ic.busy_output_channels(), 1u);
  // Slots 2 and 3: still busy.
  ic.step({});
  EXPECT_EQ(ic.busy_output_channels(), 1u);
  ic.step({});
  EXPECT_EQ(ic.busy_output_channels(), 1u);
  // Slot 4: released.
  ic.step({});
  EXPECT_EQ(ic.busy_output_channels(), 0u);
}

TEST(Interconnect, InputChannelBusyReflectsHolding) {
  InterconnectConfig cfg = small_config();
  Interconnect ic(cfg);
  std::vector<SlotRequest> arrivals{{1, 2, 0, 1, 3}};
  ic.step(arrivals);
  // The input channel (fiber 1, λ2) is busy for the next two slots.
  auto busy = ic.input_channel_busy();
  EXPECT_EQ(busy[1 * 4 + 2], 1);
  ic.step({});
  busy = ic.input_channel_busy();
  EXPECT_EQ(busy[1 * 4 + 2], 1);
  ic.step({});
  busy = ic.input_channel_busy();
  EXPECT_EQ(busy[1 * 4 + 2], 0);  // last held slot: free next slot
}

TEST(Interconnect, NoDisturbBlocksNewRequests) {
  InterconnectConfig cfg = small_config();
  cfg.policy = OccupiedPolicy::kNoDisturb;
  cfg.scheme = ConversionScheme::circular(4, 0, 0);  // no conversion
  Interconnect ic(cfg);
  // Occupy channel λ1 on fiber 0 for 5 slots.
  EXPECT_EQ(ic.step({{SlotRequest{0, 1, 0, 1, 5}}}).granted, 1u);
  // New λ1 request to fiber 0 must be rejected while held.
  const auto stats = ic.step({{SlotRequest{1, 1, 0, 2, 1}}});
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(Interconnect, RearrangeReassignsOngoingConnections) {
  InterconnectConfig cfg = small_config();
  cfg.policy = OccupiedPolicy::kRearrange;
  cfg.scheme = ConversionScheme::circular(4, 1, 1);
  Interconnect ic(cfg);
  // λ1 connection holding 10 slots occupies one of {0, 1, 2} on fiber 0.
  EXPECT_EQ(ic.step({{SlotRequest{0, 1, 0, 1, 10}}}).granted, 1u);
  // Offered next slot: λ0 x2 + λ2 x2 to the same fiber. With rearrangement
  // the ongoing λ1 connection can move so all four new requests fit: the
  // fiber has 4 channels and the 5 requests need... λ0:{3,0,1} λ2:{1,2,3},
  // λ1:{0,1,2}; a perfect 5-into-4 is impossible, but 4 grants are.
  std::vector<SlotRequest> arrivals{{1, 0, 0, 2, 1},
                                    {0, 0, 0, 3, 1},
                                    {1, 2, 0, 4, 1},
                                    {0, 2, 0, 5, 1}};
  const auto stats = ic.step(arrivals);
  EXPECT_EQ(stats.preempted, 0u);
  EXPECT_EQ(stats.granted, 3u);  // 4 channels - 1 continuing = 3
  EXPECT_EQ(stats.busy_channels, 4u);
}

TEST(Interconnect, NoDisturbVersusRearrangeLoss) {
  // Deterministic scenario where no-disturb rejects a request that
  // rearrangement can serve: ongoing connection parked on a channel that
  // the new request needs, with a free alternative the old one could use.
  InterconnectConfig nd = small_config();
  nd.scheme = ConversionScheme::circular(4, 1, 1);
  nd.policy = OccupiedPolicy::kNoDisturb;

  for (const auto policy : {OccupiedPolicy::kNoDisturb, OccupiedPolicy::kRearrange}) {
    InterconnectConfig cfg = nd;
    cfg.policy = policy;
    Interconnect ic(cfg);
    // λ0 connection (reaches {3,0,1}) holds 5 slots; BFA parks it on b3
    // (first candidate, δ=1). λ3 requests (reach {2,3,0}) then arrive 3x:
    // they need b3 among others.
    ic.step({{SlotRequest{0, 0, 0, 1, 5}}});
    std::vector<SlotRequest> burst{{0, 3, 0, 2, 1},
                                   {1, 3, 0, 3, 1},
                                   {1, 0, 0, 4, 1}};
    const auto stats = ic.step(burst);
    if (policy == OccupiedPolicy::kRearrange) {
      EXPECT_EQ(stats.granted, 3u);  // ongoing moves out of the way
    } else {
      EXPECT_LE(stats.granted, 3u);  // may or may not collide, never more
    }
  }
}

TEST(Interconnect, FiberGrantAccounting) {
  Interconnect ic(small_config());
  std::vector<SlotRequest> arrivals{{0, 0, 0, 1, 1},
                                    {1, 1, 0, 2, 1},
                                    {0, 2, 1, 3, 1}};
  ic.step(arrivals);
  EXPECT_EQ(ic.last_fiber_grants()[0], 2u);
  EXPECT_EQ(ic.last_fiber_grants()[1], 1u);
}

TEST(Interconnect, ParallelStepMatchesSerial) {
  util::ThreadPool pool(3);
  InterconnectConfig cfg;
  cfg.n_fibers = 4;
  cfg.scheme = ConversionScheme::circular(6, 1, 1);
  cfg.arbitration = core::Arbitration::kFifo;
  Interconnect serial(cfg), parallel(cfg);
  util::Rng rng(99);
  std::uint64_t id = 0;
  for (int slot = 0; slot < 20; ++slot) {
    std::vector<SlotRequest> arrivals;
    for (std::int32_t fib = 0; fib < 4; ++fib) {
      for (core::Wavelength w = 0; w < 6; ++w) {
        if (rng.bernoulli(0.5)) {
          arrivals.push_back(SlotRequest{
              fib, w, static_cast<std::int32_t>(rng.uniform_below(4)), id++,
              1 + static_cast<std::int32_t>(rng.uniform_below(3))});
        }
      }
    }
    const auto a = serial.step(arrivals);
    const auto b = parallel.step(arrivals, &pool);
    EXPECT_EQ(a.granted, b.granted);
    EXPECT_EQ(a.busy_channels, b.busy_channels);
  }
}

}  // namespace
}  // namespace wdm
