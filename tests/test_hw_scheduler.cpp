// Differential validation of the register-level scheduler against the core
// kernels, plus the cycle-count claims of experiments E7.
//
// The hardware datapath must produce the same *matching size* as the
// software kernels on every instance (the committed identities differ only
// by arbitration). Requests use distinct (fiber, wavelength) pairs, since
// the register representation collapses duplicates by design.
#include <gtest/gtest.h>

#include <set>

#include "core/break_first_available.hpp"
#include "core/first_available.hpp"
#include "core/full_range.hpp"
#include "hw/cost_model.hpp"
#include "hw/hw_scheduler.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using core::Request;
using hw::HwPortScheduler;

/// One request per (fiber, wavelength) pair with probability p.
std::vector<Request> random_register_slot(util::Rng& rng, std::int32_t n_fibers,
                                          std::int32_t k, double p) {
  std::vector<Request> out;
  std::uint64_t id = 0;
  for (std::int32_t fiber = 0; fiber < n_fibers; ++fiber) {
    for (core::Wavelength w = 0; w < k; ++w) {
      if (rng.bernoulli(p)) out.push_back(Request{fiber, w, id++, 1});
    }
  }
  return out;
}

core::RequestVector to_vector(std::int32_t k, const std::vector<Request>& reqs) {
  core::RequestVector rv(k);
  for (const auto& r : reqs) rv.add(r.wavelength);
  return rv;
}

void expect_valid_grants(const std::vector<hw::HwGrant>& grants,
                         const ConversionScheme& scheme,
                         const std::vector<Request>& requests) {
  std::set<core::Channel> channels;
  std::set<std::pair<std::int32_t, core::Wavelength>> sources;
  const std::set<std::pair<std::int32_t, core::Wavelength>> offered = [&] {
    std::set<std::pair<std::int32_t, core::Wavelength>> s;
    for (const auto& r : requests) s.insert({r.input_fiber, r.wavelength});
    return s;
  }();
  for (const auto& g : grants) {
    EXPECT_TRUE(scheme.can_convert(g.wavelength, g.channel));
    EXPECT_TRUE(channels.insert(g.channel).second) << "channel double-booked";
    EXPECT_TRUE(sources.insert({g.input_fiber, g.wavelength}).second)
        << "input channel granted twice";
    EXPECT_TRUE(offered.contains({g.input_fiber, g.wavelength}))
        << "grant for a request that was never made";
  }
}

TEST(HwScheduler, FirstAvailableMatchesCoreKernel) {
  util::Rng rng(11111);
  const auto scheme = ConversionScheme::non_circular(8, 2, 1);
  HwPortScheduler hw(scheme, 4);
  for (int trial = 0; trial < 60; ++trial) {
    const auto requests = random_register_slot(rng, 4, 8, 0.35);
    hw.load(requests);
    const auto grants = hw.run();
    expect_valid_grants(grants, scheme, requests);
    const auto sw = core::first_available(to_vector(8, requests), scheme);
    EXPECT_EQ(static_cast<std::int32_t>(grants.size()), sw.granted);
  }
}

TEST(HwScheduler, BfaMatchesCoreKernel) {
  util::Rng rng(22222);
  const auto scheme = ConversionScheme::circular(8, 2, 1);
  HwPortScheduler hw(scheme, 4);
  for (int trial = 0; trial < 60; ++trial) {
    const auto requests = random_register_slot(rng, 4, 8, 0.35);
    hw.load(requests);
    const auto grants = hw.run();
    expect_valid_grants(grants, scheme, requests);
    const auto sw = core::break_first_available(to_vector(8, requests), scheme);
    EXPECT_EQ(static_cast<std::int32_t>(grants.size()), sw.granted);
  }
}

TEST(HwScheduler, FullRangeMatchesCoreKernel) {
  util::Rng rng(33333);
  const auto scheme = ConversionScheme::full_range(6);
  HwPortScheduler hw(scheme, 5);
  for (int trial = 0; trial < 40; ++trial) {
    const auto requests = random_register_slot(rng, 5, 6, 0.4);
    hw.load(requests);
    const auto grants = hw.run();
    expect_valid_grants(grants, scheme, requests);
    const auto sw = core::full_range_schedule(to_vector(6, requests));
    EXPECT_EQ(static_cast<std::int32_t>(grants.size()), sw.granted);
  }
}

TEST(HwScheduler, AvailabilityMaskHonoured) {
  util::Rng rng(44444);
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  HwPortScheduler hw(scheme, 3);
  for (int trial = 0; trial < 40; ++trial) {
    const auto requests = random_register_slot(rng, 3, 8, 0.4);
    const auto mask = test::random_mask(rng, 8, 0.6);
    hw.load(requests);
    hw.set_availability(mask);
    const auto grants = hw.run();
    for (const auto& g : grants) {
      EXPECT_NE(mask[static_cast<std::size_t>(g.channel)], 0);
    }
    const auto sw =
        core::break_first_available(to_vector(8, requests), scheme, mask);
    EXPECT_EQ(static_cast<std::int32_t>(grants.size()), sw.granted);
  }
}

TEST(HwScheduler, FaCycleCountIsLinearInK) {
  // Theorem 1's O(k) claim at the register level: exactly k channel steps
  // regardless of N and d.
  for (const std::int32_t k : {4, 8, 16, 32}) {
    const auto scheme = ConversionScheme::non_circular(k, 1, 1);
    HwPortScheduler hw(scheme, 16);
    util::Rng rng(static_cast<std::uint64_t>(k));
    hw.load(random_register_slot(rng, 16, k, 0.3));
    hw.run();
    EXPECT_EQ(hw.cycles().channel_steps, static_cast<std::uint64_t>(k));
  }
}

TEST(HwScheduler, BfaCycleCountIsLinearInDK) {
  // Theorem 2's O(dk): d candidates, k-1 steps each (serial), and a
  // critical path of about k with d parallel units.
  const std::int32_t k = 16;
  for (const std::int32_t d : {1, 3, 5, 7}) {
    const auto scheme =
        ConversionScheme::symmetric(core::ConversionKind::kCircular, k, d);
    HwPortScheduler hw(scheme, 8);
    util::Rng rng(static_cast<std::uint64_t>(d) + 99);
    // Dense traffic so the first wavelength always has requests.
    hw.load(random_register_slot(rng, 8, k, 0.9));
    hw.run();
    EXPECT_EQ(hw.cycles().candidates, static_cast<std::uint64_t>(d));
    EXPECT_EQ(hw.cycles().channel_steps,
              static_cast<std::uint64_t>(d) * static_cast<std::uint64_t>(k - 1));
    EXPECT_LT(hw.cycles().critical_path, hw.cycles().total);
  }
}

TEST(HwScheduler, RandomArbitrationStillMaximum) {
  util::Rng rng(55555);
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  HwPortScheduler hw(scheme, 4, /*random_arbitration=*/true, 17);
  for (int trial = 0; trial < 30; ++trial) {
    const auto requests = random_register_slot(rng, 4, 6, 0.4);
    hw.load(requests);
    const auto grants = hw.run();
    expect_valid_grants(grants, scheme, requests);
    const auto sw = core::break_first_available(to_vector(6, requests), scheme);
    EXPECT_EQ(static_cast<std::int32_t>(grants.size()), sw.granted);
  }
}

TEST(CostModel, ScalesSensibly) {
  const auto small = hw::estimate_cost(8, 8, 3, true, false);
  const auto big_n = hw::estimate_cost(64, 8, 3, true, false);
  const auto parallel = hw::estimate_cost(8, 8, 3, true, true);
  EXPECT_GT(big_n.register_bits, small.register_bits);
  EXPECT_GT(big_n.or_tree_gates, small.or_tree_gates);
  EXPECT_EQ(parallel.matching_units, 3u);
  EXPECT_EQ(small.matching_units, 1u);
  EXPECT_GT(parallel.encoder_gates, small.encoder_gates);
  EXPECT_GT(small.total_gates, 0u);
  EXPECT_THROW(hw::estimate_cost(0, 8, 3, true, false), std::logic_error);
  EXPECT_THROW(hw::estimate_cost(8, 8, 9, true, false), std::logic_error);
}

}  // namespace
}  // namespace wdm
