// Command-line parser behaviour.
#include <gtest/gtest.h>

#include "util/cli.hpp"

namespace wdm {
namespace {

util::Cli make_cli() {
  util::Cli cli("prog", "test program");
  cli.add_option("k", "8", "wavelengths");
  cli.add_option("load", "0.5", "offered load");
  cli.add_option("loads", "0.1,0.2", "load sweep");
  cli.add_flag("verbose", "chatty output");
  return cli;
}

TEST(Cli, DefaultsApply) {
  auto cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("k"), 8);
  EXPECT_DOUBLE_EQ(cli.get_double("load"), 0.5);
  EXPECT_FALSE(cli.get_flag("verbose"));
}

TEST(Cli, EqualsAndSpaceSyntax) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "--k=16", "--load", "0.9", "--verbose"};
  ASSERT_TRUE(cli.parse(5, argv));
  EXPECT_EQ(cli.get_int("k"), 16);
  EXPECT_DOUBLE_EQ(cli.get_double("load"), 0.9);
  EXPECT_TRUE(cli.get_flag("verbose"));
}

TEST(Cli, ListParsing) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "--loads=0.1,0.5,0.9"};
  ASSERT_TRUE(cli.parse(2, argv));
  const auto loads = cli.get_double_list("loads");
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_DOUBLE_EQ(loads[1], 0.5);
}

TEST(Cli, UnknownOptionFails) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, MissingValueFails) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "--k"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, HelpReturnsFalse) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, PositionalRejected) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "stray"};
  EXPECT_FALSE(cli.parse(2, argv));
}

TEST(Cli, BadNumberThrows) {
  auto cli = make_cli();
  const char* argv[] = {"prog", "--k=notanumber"};
  ASSERT_TRUE(cli.parse(2, argv));
  EXPECT_THROW(cli.get_int("k"), std::invalid_argument);
}

TEST(Cli, UndeclaredQueryThrows) {
  auto cli = make_cli();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_THROW(cli.get("missing"), std::logic_error);
}

TEST(Cli, DuplicateDeclarationThrows) {
  util::Cli cli("p", "s");
  cli.add_option("x", "1", "h");
  EXPECT_THROW(cli.add_option("x", "2", "h"), std::logic_error);
  EXPECT_THROW(cli.add_flag("x", "h"), std::logic_error);
}

TEST(Cli, UsageListsOptions) {
  const auto cli = make_cli();
  const auto usage = cli.usage();
  EXPECT_NE(usage.find("--k"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("--help"), std::string::npos);
}

}  // namespace
}  // namespace wdm
