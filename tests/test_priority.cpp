// Priority (QoS) scheduling — the paper's named future-work extension.
// Strict-priority invariants: the top class is never penalised, every class
// gets a maximum matching of its residue, and the combined schedule is a
// valid matching.
#include <gtest/gtest.h>

#include "core/priority.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using core::RequestVector;

TEST(Priority, SingleClassEqualsPlainScheduler) {
  util::Rng rng(404);
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  for (int trial = 0; trial < 30; ++trial) {
    const auto rv = test::random_request_vector(rng, 8, 4, 0.4);
    const auto plain = core::assign_maximum(rv, scheme);
    const auto prio = core::priority_schedule({rv}, scheme);
    EXPECT_EQ(prio.combined.granted, plain.granted);
    EXPECT_EQ(prio.granted_per_class.size(), 1u);
    EXPECT_EQ(prio.granted_per_class[0], plain.granted);
  }
}

TEST(Priority, TopClassNeverPenalised) {
  util::Rng rng(405);
  for (const auto kind :
       {core::ConversionKind::kCircular, core::ConversionKind::kNonCircular}) {
    const auto scheme = kind == core::ConversionKind::kCircular
                            ? ConversionScheme::circular(8, 1, 1)
                            : ConversionScheme::non_circular(8, 1, 1);
    for (int trial = 0; trial < 40; ++trial) {
      const auto high = test::random_request_vector(rng, 8, 3, 0.35);
      const auto low = test::random_request_vector(rng, 8, 6, 0.5);
      const auto alone = core::assign_maximum(high, scheme).granted;
      const auto prio = core::priority_schedule({high, low}, scheme);
      EXPECT_EQ(prio.granted_per_class[0], alone);
    }
  }
}

TEST(Priority, EachClassMaximumOnItsResidue) {
  util::Rng rng(406);
  const auto scheme = ConversionScheme::circular(10, 2, 1);
  for (int trial = 0; trial < 40; ++trial) {
    const std::vector<RequestVector> classes{
        test::random_request_vector(rng, 10, 2, 0.3),
        test::random_request_vector(rng, 10, 2, 0.3),
        test::random_request_vector(rng, 10, 2, 0.3)};
    const auto prio = core::priority_schedule(classes, scheme);

    // Recompute the residue left for each class and compare with the oracle.
    std::vector<std::uint8_t> residual(10, 1);
    for (std::size_t c = 0; c < classes.size(); ++c) {
      EXPECT_EQ(prio.granted_per_class[c],
                test::oracle_max_matching(scheme, classes[c], residual))
          << "class " << c;
      test::expect_valid_assignment(prio.per_class[c], classes[c], scheme,
                                    residual);
      for (core::Channel u = 0; u < 10; ++u) {
        if (prio.per_class[c].source[static_cast<std::size_t>(u)] !=
            core::kNone) {
          residual[static_cast<std::size_t>(u)] = 0;
        }
      }
    }
  }
}

TEST(Priority, CombinedIsConsistentWithPerClass) {
  util::Rng rng(407);
  const auto scheme = ConversionScheme::non_circular(8, 1, 1);
  for (int trial = 0; trial < 30; ++trial) {
    const std::vector<RequestVector> classes{
        test::random_request_vector(rng, 8, 2, 0.3),
        test::random_request_vector(rng, 8, 4, 0.5)};
    const auto prio = core::priority_schedule(classes, scheme);
    std::int32_t total = 0;
    for (const auto g : prio.granted_per_class) total += g;
    EXPECT_EQ(prio.combined.granted, total);
    // No channel used by two classes.
    for (core::Channel u = 0; u < 8; ++u) {
      int users = 0;
      for (const auto& a : prio.per_class) {
        if (a.source[static_cast<std::size_t>(u)] != core::kNone) users += 1;
      }
      EXPECT_LE(users, 1);
      EXPECT_EQ(users == 1,
                prio.combined.source[static_cast<std::size_t>(u)] != core::kNone);
    }
  }
}

TEST(Priority, StrictPriorityMayCostTotalThroughput) {
  // Construct the classic inversion: the high class can be satisfied on a
  // channel the low class desperately needs. k = 2, no conversion:
  // high: one λ0 request (can only use b0); low: one λ0 request.
  // Pooled maximum = 1 + ... both need b0 → total 1 either way; use a
  // sharper instance with conversion: high λ1 (reaches b0,b1,b2), low λ0
  // and λ2 (reach b0/b1 and b1.../...). Simpler documented case:
  const auto scheme = ConversionScheme::circular(4, 0, 0);  // d = 1
  RequestVector high(4);
  high.add(1);
  RequestVector low(4);
  low.add(1);  // same wavelength: only one can win channel 1
  const auto prio = core::priority_schedule({high, low}, scheme);
  EXPECT_EQ(prio.granted_per_class[0], 1);
  EXPECT_EQ(prio.granted_per_class[1], 0);

  // And the cost can be real with conversion: high λ1 takes b1 when it
  // could have taken b0 or b2? BFA grants maximum per class, but the class
  // split can lose vs pooling. Verify combined <= pooled maximum always.
  util::Rng rng(408);
  const auto s2 = ConversionScheme::circular(8, 1, 1);
  for (int trial = 0; trial < 40; ++trial) {
    const auto a = test::random_request_vector(rng, 8, 2, 0.4);
    const auto b = test::random_request_vector(rng, 8, 2, 0.4);
    RequestVector pooled(8);
    for (core::Wavelength w = 0; w < 8; ++w) {
      pooled.add(w, a.count(w) + b.count(w));
    }
    const auto prio2 = core::priority_schedule({a, b}, s2);
    EXPECT_LE(prio2.combined.granted,
              test::oracle_max_matching(s2, pooled));
  }
}

TEST(Priority, RespectsInitialAvailability) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  RequestVector high(6);
  high.add(1, 3);
  const std::vector<std::uint8_t> mask{0, 1, 0, 1, 1, 1};
  const auto prio = core::priority_schedule({high}, scheme, mask);
  test::expect_valid_assignment(prio.per_class[0], high, scheme, mask);
  EXPECT_EQ(prio.granted_per_class[0], 1);  // only b1 reachable and free
}

TEST(Priority, EmptyClassListRejected) {
  EXPECT_THROW(core::priority_schedule({}, ConversionScheme::circular(4, 1, 1)),
               std::logic_error);
}

TEST(Priority, MismatchedKRejected) {
  EXPECT_THROW(core::priority_schedule({RequestVector(5)},
                                       ConversionScheme::circular(4, 1, 1)),
               std::logic_error);
}

TEST(Priority, FullRangeKernelDispatch) {
  const auto scheme = ConversionScheme::full_range(4);
  RequestVector high(4);
  high.add(0, 2);
  RequestVector low(4);
  low.add(3, 4);
  const auto prio = core::priority_schedule({high, low}, scheme);
  EXPECT_EQ(prio.granted_per_class[0], 2);
  EXPECT_EQ(prio.granted_per_class[1], 2);  // two channels left
  EXPECT_EQ(prio.combined.granted, 4);
}

}  // namespace
}  // namespace wdm
