// Full-range scheduling (Section I): grant min(#requests, #free channels).
#include <gtest/gtest.h>

#include "core/full_range.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::RequestVector;

TEST(FullRange, GrantsUpToCapacity) {
  RequestVector rv(4);
  rv.add(0, 2);
  rv.add(3, 5);
  const auto out = core::full_range_schedule(rv);
  EXPECT_EQ(out.granted, 4);  // 7 requests, 4 channels
}

TEST(FullRange, GrantsAllWhenUnderloaded) {
  RequestVector rv(6);
  rv.add(2, 2);
  rv.add(5, 1);
  const auto out = core::full_range_schedule(rv);
  EXPECT_EQ(out.granted, 3);
  const auto scheme = core::ConversionScheme::full_range(6);
  test::expect_valid_assignment(out, rv, scheme);
}

TEST(FullRange, RespectsAvailability) {
  RequestVector rv(4);
  rv.add(1, 4);
  const std::vector<std::uint8_t> mask{0, 1, 0, 1};
  const auto out = core::full_range_schedule(rv, mask);
  EXPECT_EQ(out.granted, 2);
  EXPECT_EQ(out.source[0], core::kNone);
  EXPECT_EQ(out.source[1], 1);
  EXPECT_EQ(out.source[3], 1);
}

TEST(FullRange, MatchesOracleOnRandomInstances) {
  util::Rng rng(77);
  const auto scheme = core::ConversionScheme::full_range(8);
  for (int trial = 0; trial < 60; ++trial) {
    const auto rv = test::random_request_vector(rng, 8, 4, 0.4);
    const auto mask = test::random_mask(rng, 8, 0.7);
    const auto out = core::full_range_schedule(rv, mask);
    EXPECT_EQ(out.granted, test::oracle_max_matching(scheme, rv, mask));
    test::expect_valid_assignment(out, rv, scheme, mask);
  }
}

TEST(FullRange, EmptyRequests) {
  EXPECT_EQ(core::full_range_schedule(RequestVector(5)).granted, 0);
}

TEST(FullRange, BadMaskRejected) {
  RequestVector rv(4);
  const std::vector<std::uint8_t> mask(3, 1);
  EXPECT_THROW(core::full_range_schedule(rv, mask), std::logic_error);
}

}  // namespace
}  // namespace wdm
