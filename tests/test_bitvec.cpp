// BitVector register model: bit ops, encoders, word-boundary behaviour.
#include <gtest/gtest.h>

#include "hw/bitvec.hpp"

namespace wdm {
namespace {

using hw::BitVector;

TEST(BitVector, SetTestClear) {
  BitVector v(130);  // spans three 64-bit words
  EXPECT_EQ(v.size(), 130u);
  EXPECT_TRUE(v.none());
  v.set(0);
  v.set(64);
  v.set(129);
  EXPECT_TRUE(v.test(0));
  EXPECT_TRUE(v.test(64));
  EXPECT_TRUE(v.test(129));
  EXPECT_FALSE(v.test(1));
  EXPECT_EQ(v.count(), 3u);
  v.clear(64);
  EXPECT_FALSE(v.test(64));
  EXPECT_EQ(v.count(), 2u);
  v.assign(5, true);
  EXPECT_TRUE(v.test(5));
  v.assign(5, false);
  EXPECT_FALSE(v.test(5));
}

TEST(BitVector, BoundsChecked) {
  BitVector v(10);
  EXPECT_THROW(v.set(10), std::logic_error);
  EXPECT_THROW(v.test(11), std::logic_error);
}

TEST(BitVector, SetAllRespectsSize) {
  BitVector v(70);
  v.set_all();
  EXPECT_EQ(v.count(), 70u);
  EXPECT_TRUE(v.any());
  v.clear_all();
  EXPECT_TRUE(v.none());
}

TEST(BitVector, FindFirst) {
  BitVector v(200);
  EXPECT_EQ(v.find_first(), BitVector::npos);
  v.set(3);
  v.set(100);
  v.set(199);
  EXPECT_EQ(v.find_first(), 3u);
  EXPECT_EQ(v.find_first(4), 100u);
  EXPECT_EQ(v.find_first(100), 100u);
  EXPECT_EQ(v.find_first(101), 199u);
  EXPECT_EQ(v.find_first(200), BitVector::npos);
}

TEST(BitVector, FindFirstAnd) {
  BitVector v(80), mask(80);
  v.set(10);
  v.set(40);
  v.set(70);
  mask.set(40);
  mask.set(70);
  EXPECT_EQ(v.find_first_and(mask), 40u);
  BitVector empty_mask(80);
  EXPECT_EQ(v.find_first_and(empty_mask), BitVector::npos);
  BitVector wrong_size(81);
  EXPECT_THROW(v.find_first_and(wrong_size), std::logic_error);
}

TEST(BitVector, FindFirstCircular) {
  BitVector v(16);
  v.set(2);
  v.set(9);
  EXPECT_EQ(v.find_first_circular(0), 2u);
  EXPECT_EQ(v.find_first_circular(3), 9u);
  EXPECT_EQ(v.find_first_circular(10), 2u);  // wraps
  EXPECT_EQ(v.find_first_circular(9), 9u);
  BitVector empty(16);
  EXPECT_EQ(empty.find_first_circular(5), BitVector::npos);
}

TEST(BitVector, AndOrAssign) {
  BitVector a(70), b(70);
  a.set(1);
  a.set(65);
  b.set(65);
  b.set(2);
  BitVector a_and = a;
  a_and &= b;
  EXPECT_EQ(a_and.count(), 1u);
  EXPECT_TRUE(a_and.test(65));
  BitVector a_or = a;
  a_or |= b;
  EXPECT_EQ(a_or.count(), 3u);
}

TEST(BitVector, Equality) {
  BitVector a(10), b(10);
  a.set(4);
  EXPECT_NE(a, b);
  b.set(4);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace wdm
