// End-to-end simulation driver: determinism, monotonicity in load, and the
// paper's qualitative claims (conversion helps; d small ≈ full range).
#include <gtest/gtest.h>

#include "sim/simulation.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using sim::SimulationConfig;

SimulationConfig base_config() {
  SimulationConfig cfg;
  cfg.interconnect.n_fibers = 4;
  cfg.interconnect.scheme = ConversionScheme::circular(8, 1, 1);
  cfg.traffic.load = 0.5;
  cfg.slots = 2000;
  cfg.warmup = 200;
  cfg.seed = 7;
  return cfg;
}

TEST(Simulation, DeterministicForSeed) {
  const auto cfg = base_config();
  const auto a = sim::run_simulation(cfg);
  const auto b = sim::run_simulation(cfg);
  EXPECT_EQ(a.arrivals, b.arrivals);
  EXPECT_EQ(a.losses, b.losses);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(Simulation, ReportAccountingConsistent) {
  const auto r = sim::run_simulation(base_config());
  EXPECT_EQ(r.slots, 2000u);
  EXPECT_GT(r.arrivals, 0u);
  EXPECT_LE(r.losses, r.arrivals);
  EXPECT_NEAR(r.loss_probability,
              static_cast<double>(r.losses) / static_cast<double>(r.arrivals),
              1e-12);
  EXPECT_GE(r.loss_wilson_high, r.loss_probability);
  EXPECT_LE(r.loss_wilson_low, r.loss_probability);
  EXPECT_GT(r.throughput_per_channel, 0.0);
  EXPECT_LE(r.throughput_per_channel, 1.0);
  EXPECT_GT(r.fiber_fairness, 0.9);  // uniform traffic: near-perfect fairness
  EXPECT_EQ(r.preemptions, 0u);
}

TEST(Simulation, LossIncreasesWithLoad) {
  auto cfg = base_config();
  cfg.traffic.load = 0.3;
  const auto light = sim::run_simulation(cfg);
  cfg.traffic.load = 0.9;
  const auto heavy = sim::run_simulation(cfg);
  EXPECT_LT(light.loss_probability, heavy.loss_probability);
  EXPECT_LT(light.utilization, heavy.utilization);
}

TEST(Simulation, ConversionReducesLoss) {
  // The paper's premise: wavelength conversion resolves output contention.
  auto cfg = base_config();
  cfg.traffic.load = 0.8;
  cfg.interconnect.scheme = ConversionScheme::circular(8, 0, 0);  // d = 1
  const auto none = sim::run_simulation(cfg);
  cfg.interconnect.scheme = ConversionScheme::circular(8, 1, 1);  // d = 3
  const auto limited = sim::run_simulation(cfg);
  cfg.interconnect.scheme = ConversionScheme::full_range(8);      // d = k
  const auto full = sim::run_simulation(cfg);

  EXPECT_GT(none.loss_probability, limited.loss_probability);
  EXPECT_GE(limited.loss_probability, full.loss_probability);
  // [11][13]: small d already gets close to full range — within a few
  // percentage points of loss at this scale.
  EXPECT_LT(limited.loss_probability - full.loss_probability, 0.05);
}

TEST(Simulation, ThreadedRunProducesSaneResults) {
  auto cfg = base_config();
  cfg.threads = 2;
  cfg.slots = 500;
  const auto r = sim::run_simulation(cfg);
  EXPECT_EQ(r.slots, 500u);
  EXPECT_LE(r.losses, r.arrivals);
}

TEST(Simulation, MultiSlotHoldingRaisesUtilization) {
  auto cfg = base_config();
  cfg.traffic.load = 0.3;
  cfg.interconnect.policy = sim::OccupiedPolicy::kNoDisturb;
  const auto single = sim::run_simulation(cfg);
  cfg.traffic.holding = sim::HoldingTime::kGeometric;
  cfg.traffic.mean_holding = 8.0;
  const auto held = sim::run_simulation(cfg);
  // Sources emit less often (busy channels) but connections linger; loss
  // goes up because the fabric stays occupied.
  EXPECT_GT(held.utilization, 0.0);
  EXPECT_GT(held.loss_probability, single.loss_probability);
}

TEST(Simulation, RearrangeNeverLosesMoreThanNoDisturb) {
  auto cfg = base_config();
  cfg.traffic.load = 0.7;
  cfg.traffic.holding = sim::HoldingTime::kGeometric;
  cfg.traffic.mean_holding = 4.0;
  cfg.slots = 3000;
  cfg.interconnect.policy = sim::OccupiedPolicy::kNoDisturb;
  const auto nd = sim::run_simulation(cfg);
  cfg.interconnect.policy = sim::OccupiedPolicy::kRearrange;
  const auto ra = sim::run_simulation(cfg);
  EXPECT_EQ(ra.preemptions, 0u);
  EXPECT_LE(ra.loss_probability, nd.loss_probability + 0.01);
}

TEST(Simulation, ZeroSlotsRejected) {
  auto cfg = base_config();
  cfg.slots = 0;
  EXPECT_THROW(sim::run_simulation(cfg), std::logic_error);
}

}  // namespace
}  // namespace wdm
