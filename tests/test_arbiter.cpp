// Round-robin and random arbiters: rotation, fairness, edge cases.
#include <gtest/gtest.h>

#include <map>

#include "hw/arbiter.hpp"

namespace wdm {
namespace {

using hw::BitVector;
using hw::RandomArbiter;
using hw::RoundRobinArbiter;

BitVector make_requesters(std::size_t n, std::initializer_list<std::size_t> bits) {
  BitVector v(n);
  for (const auto b : bits) v.set(b);
  return v;
}

TEST(RoundRobinArbiter, GrantsFirstAtOrAfterPointer) {
  RoundRobinArbiter arb(4);
  const auto all = make_requesters(4, {0, 1, 2, 3});
  EXPECT_EQ(arb.grant(all), 0u);
  EXPECT_EQ(arb.grant(all), 1u);
  EXPECT_EQ(arb.grant(all), 2u);
  EXPECT_EQ(arb.grant(all), 3u);
  EXPECT_EQ(arb.grant(all), 0u);  // wrapped
}

TEST(RoundRobinArbiter, SkipsNonRequesters) {
  RoundRobinArbiter arb(4);
  const auto some = make_requesters(4, {1, 3});
  EXPECT_EQ(arb.grant(some), 1u);
  EXPECT_EQ(arb.grant(some), 3u);
  EXPECT_EQ(arb.grant(some), 1u);
}

TEST(RoundRobinArbiter, NoRequesters) {
  RoundRobinArbiter arb(4);
  const BitVector none(4);
  EXPECT_EQ(arb.grant(none), BitVector::npos);
  // Pointer unchanged: next grant still starts at 0.
  EXPECT_EQ(arb.grant(make_requesters(4, {0})), 0u);
}

TEST(RoundRobinArbiter, PersistentPressureIsFair) {
  RoundRobinArbiter arb(3);
  const auto all = make_requesters(3, {0, 1, 2});
  std::map<std::size_t, int> grants;
  for (int round = 0; round < 300; ++round) grants[arb.grant(all)] += 1;
  EXPECT_EQ(grants[0], 100);
  EXPECT_EQ(grants[1], 100);
  EXPECT_EQ(grants[2], 100);
}

TEST(RoundRobinArbiter, SizeMismatchRejected) {
  RoundRobinArbiter arb(3);
  EXPECT_THROW(arb.grant(BitVector(4)), std::logic_error);
  EXPECT_THROW(RoundRobinArbiter(0), std::logic_error);
}

TEST(MatrixArbiter, InitialOrderIsByIndex) {
  hw::MatrixArbiter arb(4);
  EXPECT_TRUE(arb.has_priority(0, 3));
  EXPECT_TRUE(arb.has_priority(1, 2));
  EXPECT_FALSE(arb.has_priority(3, 0));
  const auto all = make_requesters(4, {0, 1, 2, 3});
  EXPECT_EQ(arb.grant(all), 0u);
}

TEST(MatrixArbiter, WinnerDropsToTheBottom) {
  hw::MatrixArbiter arb(3);
  const auto all = make_requesters(3, {0, 1, 2});
  EXPECT_EQ(arb.grant(all), 0u);
  EXPECT_EQ(arb.grant(all), 1u);  // 0 demoted
  EXPECT_EQ(arb.grant(all), 2u);
  EXPECT_EQ(arb.grant(all), 0u);  // back around
  // After granting 0, it must lose against both others.
  EXPECT_FALSE(arb.has_priority(0, 1));
  EXPECT_FALSE(arb.has_priority(0, 2));
}

TEST(MatrixArbiter, SubsetAlwaysHasAWinner) {
  hw::MatrixArbiter arb(5);
  util::Rng rng(77);
  for (int round = 0; round < 500; ++round) {
    hw::BitVector req(5);
    bool any = false;
    for (std::size_t i = 0; i < 5; ++i) {
      if (rng.bernoulli(0.4)) {
        req.set(i);
        any = true;
      }
    }
    const auto g = arb.grant(req);
    if (any) {
      ASSERT_NE(g, hw::BitVector::npos);
      EXPECT_TRUE(req.test(g));
    } else {
      EXPECT_EQ(g, hw::BitVector::npos);
    }
  }
}

TEST(MatrixArbiter, PersistentPressureIsFair) {
  hw::MatrixArbiter arb(4);
  const auto all = make_requesters(4, {0, 1, 2, 3});
  std::map<std::size_t, int> grants;
  for (int round = 0; round < 400; ++round) grants[arb.grant(all)] += 1;
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(grants[i], 100);
}

TEST(MatrixArbiter, NoPositionalBiasAfterSparsePatterns) {
  // Serve input 2 alone a few times; under persistent pressure afterwards,
  // 2 must wait for everyone it beat — a rotating pointer can misplace this.
  hw::MatrixArbiter arb(3);
  const auto only2 = make_requesters(3, {2});
  arb.grant(only2);
  arb.grant(only2);
  const auto all = make_requesters(3, {0, 1, 2});
  EXPECT_EQ(arb.grant(all), 0u);
  EXPECT_EQ(arb.grant(all), 1u);
  EXPECT_EQ(arb.grant(all), 2u);
}

TEST(MatrixArbiter, SizeMismatchRejected) {
  hw::MatrixArbiter arb(3);
  EXPECT_THROW(arb.grant(hw::BitVector(4)), std::logic_error);
  EXPECT_THROW(hw::MatrixArbiter(0), std::logic_error);
}

TEST(RandomArbiter, OnlyGrantsRequesters) {
  RandomArbiter arb(8, 42);
  const auto some = make_requesters(8, {2, 5, 7});
  for (int i = 0; i < 200; ++i) {
    const auto g = arb.grant(some);
    EXPECT_TRUE(g == 2 || g == 5 || g == 7);
  }
}

TEST(RandomArbiter, ApproximatelyUniform) {
  RandomArbiter arb(4, 7);
  const auto pair = make_requesters(4, {1, 3});
  std::map<std::size_t, int> grants;
  const int rounds = 4000;
  for (int i = 0; i < rounds; ++i) grants[arb.grant(pair)] += 1;
  EXPECT_NEAR(grants[1], rounds / 2, rounds / 10);
  EXPECT_NEAR(grants[3], rounds / 2, rounds / 10);
}

TEST(RandomArbiter, NoRequesters) {
  RandomArbiter arb(4, 1);
  EXPECT_EQ(arb.grant(BitVector(4)), BitVector::npos);
}

}  // namespace
}  // namespace wdm
