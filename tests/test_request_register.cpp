// RequestRegister: the Section II.B Nk-bit encoding and its summary logic.
#include <gtest/gtest.h>

#include "hw/request_register.hpp"

namespace wdm {
namespace {

using core::Request;
using hw::RequestRegister;

TEST(RequestRegister, LoadAndQuery) {
  RequestRegister reg(4, 6);
  std::vector<Request> requests{{0, 2, 1, 1}, {3, 2, 2, 1}, {1, 5, 3, 1}};
  reg.load(requests);
  EXPECT_TRUE(reg.pending(0, 2));
  EXPECT_TRUE(reg.pending(3, 2));
  EXPECT_TRUE(reg.pending(1, 5));
  EXPECT_FALSE(reg.pending(2, 2));
  EXPECT_TRUE(reg.wavelength_pending(2));
  EXPECT_TRUE(reg.wavelength_pending(5));
  EXPECT_FALSE(reg.wavelength_pending(0));
  EXPECT_EQ(reg.pending_count(), 3u);
}

TEST(RequestRegister, DuplicateRequestsCollapse) {
  RequestRegister reg(2, 4);
  std::vector<Request> requests{{0, 1, 1, 1}, {0, 1, 2, 1}};
  reg.load(requests);
  EXPECT_EQ(reg.pending_count(), 1u);  // one register bit
}

TEST(RequestRegister, RequestersVector) {
  RequestRegister reg(4, 3);
  std::vector<Request> requests{{0, 1, 1, 1}, {2, 1, 2, 1}};
  reg.load(requests);
  const auto who = reg.requesters(1);
  EXPECT_TRUE(who.test(0));
  EXPECT_FALSE(who.test(1));
  EXPECT_TRUE(who.test(2));
  EXPECT_EQ(who.count(), 2u);
}

TEST(RequestRegister, ConsumeUpdatesSummary) {
  RequestRegister reg(2, 3);
  std::vector<Request> requests{{0, 1, 1, 1}, {1, 1, 2, 1}};
  reg.load(requests);
  reg.consume(0, 1);
  EXPECT_TRUE(reg.wavelength_pending(1));  // fiber 1 still pending
  reg.consume(1, 1);
  EXPECT_FALSE(reg.wavelength_pending(1));
  EXPECT_THROW(reg.consume(0, 1), std::logic_error);  // already consumed
}

TEST(RequestRegister, LoadReplacesPreviousSlot) {
  RequestRegister reg(2, 3);
  reg.load(std::vector<Request>{{0, 0, 1, 1}});
  reg.load(std::vector<Request>{{1, 2, 2, 1}});
  EXPECT_FALSE(reg.pending(0, 0));
  EXPECT_TRUE(reg.pending(1, 2));
  EXPECT_FALSE(reg.wavelength_pending(0));
}

TEST(RequestRegister, BoundsChecked) {
  RequestRegister reg(2, 3);
  EXPECT_THROW(reg.load(std::vector<Request>{{2, 0, 1, 1}}), std::logic_error);
  EXPECT_THROW(reg.load(std::vector<Request>{{0, 3, 1, 1}}), std::logic_error);
  EXPECT_THROW(RequestRegister(0, 3), std::logic_error);
}

}  // namespace
}  // namespace wdm
