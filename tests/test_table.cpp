// Table rendering: alignment, CSV escaping, cell formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"

namespace wdm {
namespace {

TEST(Table, RowWidthEnforced) {
  util::Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_THROW(t.add_row({"only-one"}), std::logic_error);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.at(0, 1), "2");
}

TEST(Table, PrintAligned) {
  util::Table t({"name", "v"});
  t.add_row({"x", "1234"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("1234"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Header and row lines align on the same width.
  std::istringstream is(out);
  std::string header, rule, row;
  std::getline(is, header);
  std::getline(is, rule);
  std::getline(is, row);
  EXPECT_EQ(header.size(), row.size());
}

TEST(Table, CsvEscaping) {
  util::Table t({"x", "note"});
  t.add_row({"1", "hello, \"world\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,note\n1,\"hello, \"\"world\"\"\"\n");
}

TEST(Cell, Formatting) {
  EXPECT_EQ(util::cell(42), "42");
  EXPECT_EQ(util::cell(std::uint64_t{7}), "7");
  EXPECT_EQ(util::cell(std::int64_t{-3}), "-3");
  EXPECT_EQ(util::cell(1.5), "1.5");
  EXPECT_EQ(util::cell(3.14159, 3), "3.14");
}

TEST(CellProb, SwitchesToScientificForSmallValues) {
  EXPECT_EQ(util::cell_prob(0.0), "0.00000");
  EXPECT_NE(util::cell_prob(0.25).find("0.25000"), std::string::npos);
  EXPECT_NE(util::cell_prob(1.2e-5).find("e-05"), std::string::npos);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(util::Table({}), std::logic_error);
}

}  // namespace
}  // namespace wdm
