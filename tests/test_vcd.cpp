// VCD writer: grammar essentials, change coalescing, scheduler integration.
#include <gtest/gtest.h>

#include <sstream>

#include "hw/hw_scheduler.hpp"
#include "hw/vcd.hpp"

namespace wdm {
namespace {

TEST(Vcd, HeaderAndDeclarations) {
  std::ostringstream os;
  hw::VcdWriter vcd(os, "top");
  const auto clk = vcd.add_wire("clk", 1);
  const auto bus = vcd.add_wire("bus", 8);
  vcd.begin();
  vcd.set(clk, 1);
  vcd.set(bus, 0xA5);
  vcd.tick();
  vcd.finish();

  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module top $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 8 \" bus $end"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(out.find("$dumpvars"), std::string::npos);
  EXPECT_NE(out.find("#0\n"), std::string::npos);
  EXPECT_NE(out.find("1!"), std::string::npos);
  EXPECT_NE(out.find("b10100101 \""), std::string::npos);
}

TEST(Vcd, UnchangedValuesAreCoalesced) {
  std::ostringstream os;
  hw::VcdWriter vcd(os, "m");
  const auto sig = vcd.add_wire("s", 4);
  vcd.begin();
  vcd.set(sig, 3);
  vcd.tick();  // #0: emitted
  vcd.set(sig, 3);
  vcd.tick();  // #1: identical — no emission
  vcd.set(sig, 4);
  vcd.tick();  // #2: emitted
  vcd.finish();
  const std::string out = os.str();
  EXPECT_NE(out.find("#0"), std::string::npos);
  EXPECT_EQ(out.find("#1\n"), std::string::npos);
  EXPECT_NE(out.find("#2"), std::string::npos);
  EXPECT_NE(out.find("b11 "), std::string::npos);
  EXPECT_NE(out.find("b100 "), std::string::npos);
}

TEST(Vcd, ValueTruncatedToWidth) {
  std::ostringstream os;
  hw::VcdWriter vcd(os, "m");
  const auto sig = vcd.add_wire("s", 2);
  vcd.begin();
  vcd.set(sig, 0xFF);  // truncates to 0b11
  vcd.tick();
  vcd.finish();
  EXPECT_NE(os.str().find("b11 "), std::string::npos);
}

TEST(Vcd, ApiMisuseRejected) {
  std::ostringstream os;
  hw::VcdWriter vcd(os, "m");
  EXPECT_THROW(vcd.set(0, 1), std::logic_error);  // before begin / no wire
  EXPECT_THROW(vcd.add_wire("w", 0), std::logic_error);
  EXPECT_THROW(vcd.add_wire("w", 65), std::logic_error);
  const auto sig = vcd.add_wire("ok", 4);
  vcd.begin();
  EXPECT_THROW(vcd.add_wire("late", 1), std::logic_error);
  EXPECT_THROW(vcd.begin(), std::logic_error);
  vcd.set(sig, 1);
  vcd.tick();
}

TEST(Vcd, SchedulerDumpContainsOneTickPerTracedCycle) {
  const auto scheme = core::ConversionScheme::non_circular(6, 1, 1);
  hw::HwPortScheduler port(scheme, 3);
  std::vector<core::Request> requests{{0, 1, 1, 1}, {1, 1, 2, 1}, {2, 4, 3, 1}};
  std::ostringstream os;
  const auto grants = hw::dump_schedule_vcd(os, port, requests);
  EXPECT_EQ(grants.size(), 3u);

  // k match steps + |grants| commit steps, each its own timestamp.
  const std::string out = os.str();
  std::size_t stamps = 0, pos = 0;
  while ((pos = out.find('#', pos)) != std::string::npos) {
    stamps += 1;
    pos += 1;
  }
  EXPECT_EQ(stamps, 6u + 3u + 1u);  // + final finish() stamp
  EXPECT_NE(out.find("wavelength"), std::string::npos);
}

TEST(Vcd, BfaDumpTracesCommitsOnly) {
  const auto scheme = core::ConversionScheme::circular(6, 1, 1);
  hw::HwPortScheduler port(scheme, 3);
  std::vector<core::Request> requests{{0, 0, 1, 1}, {1, 3, 2, 1}};
  std::ostringstream os;
  const auto grants = hw::dump_schedule_vcd(os, port, requests);
  EXPECT_EQ(grants.size(), 2u);
  const std::string out = os.str();
  std::size_t stamps = 0, pos = 0;
  while ((pos = out.find('#', pos)) != std::string::npos) {
    stamps += 1;
    pos += 1;
  }
  EXPECT_EQ(stamps, 2u + 1u);  // two commits + finish
}

}  // namespace
}  // namespace wdm
