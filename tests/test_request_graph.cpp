// Request graphs (Section II.B): construction, availability masks, exports.
#include <gtest/gtest.h>

#include "core/request_graph.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using core::RequestGraph;
using core::RequestVector;

TEST(RequestGraph, DimensionsAndOrdering) {
  const RequestGraph g(ConversionScheme::circular(6, 1, 1),
                       RequestVector{0, 2, 0, 0, 1, 0});
  EXPECT_EQ(g.k(), 6);
  EXPECT_EQ(g.n_requests(), 3);
  EXPECT_EQ(g.wavelength_of(0), 1);
  EXPECT_EQ(g.wavelength_of(1), 1);
  EXPECT_EQ(g.wavelength_of(2), 4);
  EXPECT_THROW(g.wavelength_of(3), std::logic_error);
}

TEST(RequestGraph, MismatchedKRejected) {
  EXPECT_THROW(RequestGraph(ConversionScheme::circular(6, 1, 1),
                            RequestVector(5)),
               std::logic_error);
  EXPECT_THROW(RequestGraph(ConversionScheme::circular(6, 1, 1),
                            RequestVector(6), std::vector<std::uint8_t>(4, 1)),
               std::logic_error);
}

TEST(RequestGraph, AvailabilityGatesEdges) {
  std::vector<std::uint8_t> mask{1, 0, 1, 1, 1, 1};
  const RequestGraph g(ConversionScheme::circular(6, 1, 1),
                       RequestVector{0, 1, 0, 0, 0, 0}, mask);
  EXPECT_TRUE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 1));  // occupied
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_FALSE(g.channel_available(1));
  const auto b = g.to_bipartite();
  EXPECT_EQ(b.degree(0), 2u);
}

TEST(RequestGraph, BipartiteExportMatchesEdgePredicate) {
  util::Rng rng(55);
  for (int trial = 0; trial < 40; ++trial) {
    const auto scheme = ConversionScheme::circular(8, 2, 1);
    const auto rv = test::random_request_vector(rng, 8, 3, 0.4);
    const auto mask = test::random_mask(rng, 8, 0.7);
    const RequestGraph g(scheme, rv, mask);
    const auto b = g.to_bipartite();
    for (std::int32_t j = 0; j < g.n_requests(); ++j) {
      for (core::Channel u = 0; u < 8; ++u) {
        EXPECT_EQ(b.has_edge(j, u), g.has_edge(j, u));
      }
    }
  }
}

TEST(RequestGraph, ConvexExportOnlyForNonCircular) {
  const RequestVector rv{1, 0, 1, 0};
  const RequestGraph nc(ConversionScheme::non_circular(4, 1, 1), rv);
  const auto convex = nc.to_convex();
  EXPECT_TRUE(convex.is_staircase());
  EXPECT_EQ(convex.n_left(), 2);

  const RequestGraph circ(ConversionScheme::circular(4, 1, 1), rv);
  EXPECT_THROW(circ.to_convex(), std::logic_error);

  std::vector<std::uint8_t> mask{1, 1, 0, 1};
  const RequestGraph masked(ConversionScheme::non_circular(4, 1, 1), rv, mask);
  EXPECT_THROW(masked.to_convex(), std::logic_error);
}

TEST(RequestGraph, AllAvailableHelper) {
  const auto mask = core::all_available(5);
  EXPECT_EQ(mask.size(), 5u);
  for (const auto m : mask) EXPECT_EQ(m, 1);
  EXPECT_THROW(core::all_available(0), std::logic_error);
}

}  // namespace
}  // namespace wdm
