// BipartiteGraph and Matching container invariants.
#include <gtest/gtest.h>

#include "graph/bipartite_graph.hpp"
#include "graph/matching.hpp"

namespace wdm {
namespace {

TEST(BipartiteGraph, EmptyGraph) {
  const graph::BipartiteGraph g(0, 0);
  EXPECT_EQ(g.n_left(), 0);
  EXPECT_EQ(g.n_right(), 0);
  EXPECT_EQ(g.n_edges(), 0u);
}

TEST(BipartiteGraph, AddAndQueryEdges) {
  graph::BipartiteGraph g(3, 4);
  g.add_edge(0, 1);
  g.add_edge(0, 3);
  g.add_edge(2, 0);
  EXPECT_EQ(g.n_edges(), 3u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(1, 1));
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 0u);
}

TEST(BipartiteGraph, BoundsChecked) {
  graph::BipartiteGraph g(2, 2);
  EXPECT_THROW(g.add_edge(2, 0), std::logic_error);
  EXPECT_THROW(g.add_edge(0, 2), std::logic_error);
  EXPECT_THROW(g.add_edge(-1, 0), std::logic_error);
  EXPECT_THROW(g.neighbors(5), std::logic_error);
}

TEST(Matching, MatchAndUnmatch) {
  graph::Matching m(3, 3);
  m.match(0, 2);
  m.match(1, 0);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.right_of(0), 2);
  EXPECT_EQ(m.left_of(2), 0);
  EXPECT_TRUE(m.left_matched(1));
  EXPECT_FALSE(m.right_matched(1));
  m.unmatch_left(0);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.right_of(0), graph::kNoVertex);
  EXPECT_EQ(m.left_of(2), graph::kNoVertex);
  m.unmatch_left(0);  // idempotent on unmatched vertex
  EXPECT_EQ(m.size(), 1u);
}

TEST(Matching, DoubleMatchRejected) {
  graph::Matching m(2, 2);
  m.match(0, 0);
  EXPECT_THROW(m.match(0, 1), std::logic_error);  // left already matched
  EXPECT_THROW(m.match(1, 0), std::logic_error);  // right already matched
}

TEST(Matching, ConsistencyHolds) {
  graph::Matching m(4, 4);
  m.match(0, 3);
  m.match(3, 0);
  EXPECT_TRUE(m.is_consistent());
}

TEST(Matching, ValidityAgainstGraph) {
  graph::BipartiteGraph g(2, 2);
  g.add_edge(0, 0);
  graph::Matching ok(2, 2);
  ok.match(0, 0);
  EXPECT_TRUE(graph::is_valid_matching(g, ok));

  graph::Matching bad(2, 2);
  bad.match(1, 1);  // edge absent from g
  EXPECT_FALSE(graph::is_valid_matching(g, bad));

  graph::Matching wrong_shape(3, 2);
  EXPECT_FALSE(graph::is_valid_matching(g, wrong_shape));
}

}  // namespace
}  // namespace wdm
