// Enforces the zero-allocation contract of the slot pipeline: once the
// scratch arenas are warm, the scheduler + availability-update path performs
// no heap allocation at all, and a full Interconnect::step allocates nothing
// either — the SlotStats per-class QoS counters live in fixed-capacity
// inline arrays (util::SmallVec), so returning the stats by value is free.
//
// This test replaces the global operator new/delete with counting versions,
// so it lives in its own binary (tests/CMakeLists.txt) — instrumenting the
// main wdm_tests binary would tax every other test for no benefit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/availability.hpp"
#include "core/distributed.hpp"
#include "obs/metrics_server.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "sim/fleet.hpp"
#include "sim/obs_export.hpp"
#include "sim/interconnect.hpp"
#include "util/rng.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wdm {
namespace {

std::vector<std::vector<core::SlotRequest>> make_slots(std::int32_t n_fibers,
                                                       std::int32_t k,
                                                       std::size_t n_slots,
                                                       double load) {
  util::Rng rng(42);
  std::vector<std::vector<core::SlotRequest>> slots(n_slots);
  std::uint64_t id = 0;
  for (auto& slot : slots) {
    for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
      for (core::Wavelength w = 0; w < k; ++w) {
        if (!rng.bernoulli(load)) continue;
        slot.push_back(core::SlotRequest{
            fib, w,
            static_cast<std::int32_t>(
                rng.uniform_below(static_cast<std::uint64_t>(n_fibers))),
            id++, 1 + static_cast<std::int32_t>(rng.uniform_below(3)), 0});
      }
    }
  }
  return slots;
}

// The debug builds cross-check the incremental availability plane against a
// from-scratch rebuild inside Interconnect::step, and WDM_DCHECKs in the BFA
// kernel recompute reduced adjacencies — both allocate. The contract holds
// for optimized builds, which is what the benchmarks and CI smoke job run.
#ifdef NDEBUG
constexpr bool kOptimizedBuild = true;
#else
constexpr bool kOptimizedBuild = false;
#endif

TEST(ZeroAlloc, SchedulerAndAvailabilityPathIsAllocationFreeWhenWarm) {
  if (!kOptimizedBuild) GTEST_SKIP() << "debug cross-checks allocate";
  const std::int32_t n = 16;
  const std::int32_t k = 8;
  const auto slots = make_slots(n, k, 64, 0.7);
  for (const bool circular : {true, false}) {
    const auto scheme = circular ? core::ConversionScheme::circular(k, 1, 1)
                                 : core::ConversionScheme::non_circular(k, 1, 1);
    // kRandom arbitration: the RNG-consuming path must be allocation-free too.
    core::DistributedScheduler sched(n, scheme, core::Algorithm::kAuto,
                                     core::Arbitration::kRandom, 5);
    std::vector<std::uint8_t> plane(
        static_cast<std::size_t>(n) * static_cast<std::size_t>(k), 1);
    const core::AvailabilityView view(plane.data(), n, k);
    std::vector<core::PortDecision> decisions;
    decisions.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));

    const auto sweep = [&] {
      for (const auto& slot : slots) {
        decisions.resize(slot.size());
        sched.schedule_slot_into(slot, view, nullptr, nullptr, decisions);
        // Plane updates in both directions, as the interconnect would do.
        for (std::size_t i = 0; i < slot.size(); ++i) {
          if (!decisions[i].granted) continue;
          plane[static_cast<std::size_t>(slot[i].output_fiber) *
                    static_cast<std::size_t>(k) +
                static_cast<std::size_t>(decisions[i].channel)] = 0;
        }
        for (std::size_t i = 0; i < slot.size(); ++i) {
          if (!decisions[i].granted) continue;
          plane[static_cast<std::size_t>(slot[i].output_fiber) *
                    static_cast<std::size_t>(k) +
                static_cast<std::size_t>(decisions[i].channel)] = 1;
        }
      }
    };

    sweep();  // warm-up: every scratch arena reaches its high-water capacity
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    sweep();
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << (circular ? "circular" : "non-circular")
        << ": the warm scheduler + availability path must not allocate";
  }
}

TEST(ZeroAlloc, InterconnectStepIsAllocationFreeWhenWarm) {
  if (!kOptimizedBuild) GTEST_SKIP() << "debug cross-checks allocate";
  const std::int32_t n = 16;
  const std::int32_t k = 8;
  const auto slots = make_slots(n, k, 64, 0.7);
  sim::InterconnectConfig cfg;
  cfg.n_fibers = n;
  cfg.scheme = core::ConversionScheme::circular(k, 1, 1);
  cfg.seed = 5;
  sim::Interconnect ic(cfg);

  std::uint64_t sink = 0;
  for (const auto& slot : slots) sink += ic.step(slot).granted;  // warm-up

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (const auto& slot : slots) sink += ic.step(slot).granted;
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  // Zero per slot: SlotStats.arrivals_per_class and .granted_per_class are
  // inline SmallVecs, and the pipeline itself (partition, schedule, occupy,
  // age) contributes nothing once warm.
  EXPECT_EQ(after - before, 0u) << "sink " << sink;
}

TEST(ZeroAlloc, WarmFourShardFleetStepIsAllocationFree) {
  // The fleet-level contract: once every shard's arenas and scratch buffers
  // are warm, a whole-fleet step — traffic generation, scheduling, plane
  // updates, metrics, the slot barrier, and the SlotStats merge — performs
  // zero heap allocations on any thread. The counter is global, so shard
  // driver and pool threads are counted too.
  if (!kOptimizedBuild) GTEST_SKIP() << "debug cross-checks allocate";
  sim::FleetConfig cfg;
  cfg.shards = 4;
  cfg.seed = 11;
  cfg.interconnect.n_fibers = 16;
  cfg.interconnect.scheme = core::ConversionScheme::circular(8, 1, 1);
  cfg.traffic.load = 0.7;
  cfg.traffic.holding = sim::HoldingTime::kGeometric;
  cfg.traffic.mean_holding = 2.0;
  sim::Fleet fleet(cfg);

  fleet.run(64);  // warm-up: arrival buffers and arenas reach high water

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 32; ++i) fleet.step();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "the warm multi-shard step path must not allocate";
  EXPECT_EQ(fleet.current_slot(), 96u);
  EXPECT_GT(fleet.total_granted(), 0u);
}

TEST(ZeroAlloc, WarmFleetStepIsAllocationFreeWithMetricsServerLive) {
  // The observability plane's enrollment cost is paid at publish time, not
  // on the slot path: with a MetricsServer live (accept thread parked in
  // accept()) and a snapshot already published, the warm fleet step
  // allocates exactly as much as it would without the server — nothing.
  // Snapshots are published before and after the measured window, the way
  // examples/simulate.cpp does between --scrape-every chunks; the global
  // counter would also see any scrape served mid-window, so none happen.
  if (!kOptimizedBuild) GTEST_SKIP() << "debug cross-checks allocate";
  sim::FleetConfig cfg;
  cfg.shards = 2;
  cfg.seed = 11;
  cfg.interconnect.n_fibers = 16;
  cfg.interconnect.scheme = core::ConversionScheme::circular(8, 1, 1);
  cfg.traffic.load = 0.7;
  cfg.traffic.holding = sim::HoldingTime::kGeometric;
  cfg.traffic.mean_holding = 2.0;
  sim::Fleet fleet(cfg);

  obs::MetricsServer server;
  if (!server.start(0)) {
    GTEST_SKIP() << "metrics server unavailable: " << server.last_error();
  }

  fleet.run(64);  // warm-up
  {
    obs::Registry registry;
    sim::register_fleet_metrics(registry, fleet);
    server.publish(registry);
  }

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 32; ++i) fleet.step();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "a live metrics server must not tax the warm slot path";

  obs::Registry registry;
  sim::register_fleet_metrics(registry, fleet);
  server.publish(registry);
  server.stop();
  EXPECT_EQ(fleet.current_slot(), 96u);
}

TEST(ZeroAlloc, SchedulerPathStaysAllocationFreeWithTracingOn) {
  // The telemetry warm path is part of the contract: the trace ring, stage
  // histograms, and per-fiber staging array are all preallocated, so a
  // fully-traced steady state allocates exactly as much as an untraced one.
  if (!kOptimizedBuild) GTEST_SKIP() << "debug cross-checks allocate";
  const std::int32_t n = 16;
  const std::int32_t k = 8;
  const auto slots = make_slots(n, k, 64, 0.7);
  const auto scheme = core::ConversionScheme::circular(k, 1, 1);
  core::DistributedScheduler sched(n, scheme, core::Algorithm::kAuto,
                                   core::Arbitration::kRandom, 5);
  obs::TraceRecorder recorder(obs::TraceDetail::kFull);
  sched.set_telemetry(&recorder);
  std::vector<std::uint8_t> plane(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(k), 1);
  const core::AvailabilityView view(plane.data(), n, k);
  std::vector<core::PortDecision> decisions;
  decisions.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));

  const auto sweep = [&] {
    for (const auto& slot : slots) {
      decisions.resize(slot.size());
      sched.schedule_slot_into(slot, view, nullptr, nullptr, decisions);
    }
  };

  sweep();  // warm-up: ring, histograms, and fiber staging reach capacity
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  sweep();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "the warm scheduler path must not allocate with tracing on";
  EXPECT_GT(recorder.recorded(), 0u) << "tracing must actually be live";
}

TEST(ZeroAlloc, InterconnectStepWithFullTracingIsAllocationFree) {
  if (!kOptimizedBuild) GTEST_SKIP() << "debug cross-checks allocate";
  const std::int32_t n = 16;
  const std::int32_t k = 8;
  const auto slots = make_slots(n, k, 64, 0.7);
  sim::InterconnectConfig cfg;
  cfg.n_fibers = n;
  cfg.scheme = core::ConversionScheme::circular(k, 1, 1);
  cfg.seed = 5;
  sim::Interconnect ic(cfg);
  obs::TraceRecorder recorder(obs::TraceDetail::kFull);
  ic.set_telemetry(&recorder);

  std::uint64_t sink = 0;
  for (const auto& slot : slots) sink += ic.step(slot).granted;  // warm-up

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (const auto& slot : slots) sink += ic.step(slot).granted;
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);

  // Same bound as the untraced pipeline: telemetry adds nothing per slot.
  EXPECT_EQ(after - before, 0u) << "sink " << sink;
  EXPECT_GT(recorder.recorded(), 0u) << "tracing must actually be live";
}

}  // namespace
}  // namespace wdm
