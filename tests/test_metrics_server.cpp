// obs::MetricsServer + fleet black boxes — the live observability plane.
//
// The contracts under test:
//  * scrape correctness — GET /metrics returns exactly the last published
//    snapshot (text exposition), /healthz answers, anything else is 404;
//  * publish(Registry) renders through write_prometheus, so a scraper sees
//    the same bytes a --metrics file dump would contain;
//  * observer purity (the acceptance criterion) — a fleet run that is
//    scraped concurrently while it publishes snapshots every few slots
//    lands on a fleet_digest bit-identical to an unscraped run; the flight
//    recorder is equally invisible to the digest;
//  * black boxes — a supervised fleet that crashes twice leaves one dump
//    per quarantine whose manifest restart history matches the fleet's own
//    restart counters.
//
// The HTTP client below is intentionally primitive (blocking connect +
// recv-until-EOF); the server closes the connection after each response.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics_server.hpp"
#include "obs/registry.hpp"
#include "sim/fleet.hpp"
#include "sim/obs_export.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#define WDM_HAVE_SOCKETS 1
#endif

namespace wdm {
namespace {

namespace fs = std::filesystem;

#if defined(WDM_HAVE_SOCKETS)
/// One blocking HTTP/1.0-style exchange against 127.0.0.1:port. Returns the
/// full response (status line + headers + body), empty on any socket error.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return "";
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string response;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}
#else
std::string http_get(std::uint16_t, const std::string&) { return ""; }
#endif

std::string body_of(const std::string& response) {
  const auto pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? std::string() : response.substr(pos + 4);
}

sim::FleetConfig fleet_config(std::size_t shards) {
  sim::FleetConfig cfg;
  cfg.shards = shards;
  cfg.seed = 23;
  cfg.interconnect.n_fibers = 8;
  cfg.interconnect.scheme = core::ConversionScheme::circular(4, 1, 1);
  cfg.traffic.load = 0.7;
  cfg.traffic.holding = sim::HoldingTime::kGeometric;
  cfg.traffic.mean_holding = 2.0;
  return cfg;
}

sim::ShardFaultEvent crash_at(std::size_t shard, std::uint64_t slot) {
  sim::ShardFaultEvent event;
  event.shard = shard;
  event.slot = slot;
  event.kind = sim::ShardFaultKind::kCrash;
  return event;
}

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir;
}

TEST(MetricsServer, ServesTheLastPublishedSnapshot) {
  obs::MetricsServer server;
  if (!server.start(0)) {
    GTEST_SKIP() << "metrics server unavailable: " << server.last_error();
  }
  ASSERT_TRUE(server.running());
  ASSERT_NE(server.port(), 0);

  server.publish("wdm_test_metric 1\n");
  std::string response = http_get(server.port(), "/metrics");
  ASSERT_FALSE(response.empty()) << "scrape failed";
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_EQ(body_of(response), "wdm_test_metric 1\n");

  // A scrape always sees the newest snapshot, never a torn one.
  server.publish("wdm_test_metric 2\n");
  EXPECT_EQ(body_of(http_get(server.port(), "/metrics")),
            "wdm_test_metric 2\n");

  EXPECT_NE(http_get(server.port(), "/healthz").find("HTTP/1.1 200"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_EQ(server.scrapes(), 2u) << "only /metrics hits count as scrapes";
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST(MetricsServer, PublishesARegistryAsPrometheusText) {
  obs::MetricsServer server;
  if (!server.start(0)) {
    GTEST_SKIP() << "metrics server unavailable: " << server.last_error();
  }
  obs::Registry registry;
  registry.counter("wdm_widgets_total", "Widgets seen", 42);
  server.publish(registry);

  const std::string body = body_of(http_get(server.port(), "/metrics"));
  EXPECT_NE(body.find("# HELP wdm_widgets_total Widgets seen"),
            std::string::npos);
  EXPECT_NE(body.find("# TYPE wdm_widgets_total counter"), std::string::npos);
  EXPECT_NE(body.find("wdm_widgets_total 42"), std::string::npos);
  server.stop();
}

TEST(MetricsServer, FleetScrapeDoesNotPerturbDigest) {
  const std::uint64_t kSlots = 120;
  const std::uint64_t kChunk = 8;

  sim::Fleet plain(fleet_config(2));
  plain.run(kSlots);
  const std::uint64_t want = plain.fleet_digest();

  obs::MetricsServer server;
  if (!server.start(0)) {
    GTEST_SKIP() << "metrics server unavailable: " << server.last_error();
  }
  sim::Fleet scraped(fleet_config(2));

  // Hammer /metrics from another thread for the whole run while the fleet
  // publishes a fresh snapshot every kChunk slots — the acceptance
  // criterion is that none of this is visible in the scheduling decisions.
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> ok_scrapes{0};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::string response = http_get(server.port(), "/metrics");
      if (response.find("HTTP/1.1 200") != std::string::npos) {
        ok_scrapes.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (std::uint64_t s = 0; s < kSlots; s += kChunk) {
    scraped.run(kChunk);
    obs::Registry registry;
    sim::register_fleet_metrics(registry, scraped);
    server.publish(registry);
  }
  done.store(true, std::memory_order_release);
  scraper.join();
  server.stop();

  EXPECT_EQ(scraped.fleet_digest(), want)
      << "a concurrent scraper must never perturb scheduling decisions";
  EXPECT_GT(ok_scrapes.load(), 0u) << "the scraper never got through";
  EXPECT_GE(server.scrapes(), ok_scrapes.load());
}

TEST(MetricsServer, FlightRecorderIsInvisibleToTheDigest) {
  sim::FleetConfig with = fleet_config(2);
  sim::FleetConfig without = fleet_config(2);
  without.flight.enabled = false;

  sim::Fleet a(with);
  sim::Fleet b(without);
  a.run(80);
  b.run(80);
  EXPECT_EQ(a.fleet_digest(), b.fleet_digest());
  EXPECT_NE(a.shard_flight(0), nullptr);
  EXPECT_GT(a.shard_flight(0)->recorder().recorded(), 0u);
  EXPECT_EQ(b.shard_flight(0), nullptr);
}

TEST(FleetBlackBox, TwoCrashesLeaveOneConsistentDumpEach) {
  const fs::path root = fresh_dir("blackbox_two_crashes");

  sim::FleetConfig cfg = fleet_config(2);
  cfg.supervision.enabled = true;
  cfg.supervision.restart_budget = 3;
  cfg.supervision.backoff_slots = 0;
  cfg.shard_faults = {crash_at(1, 20), crash_at(1, 40)};
  cfg.blackbox_dir = root.string();

  {
    sim::Fleet fleet(cfg);
    // Chunked like a real serving loop: the restart after the slot-20 crash
    // replays only to the chunk boundary (slot 30), well short of the
    // second scripted crash, so each crash heals before the next one fires.
    for (int chunk = 0; chunk < 8; ++chunk) fleet.run(10);
    EXPECT_EQ(fleet.shard_restarts(1), 2u);
    EXPECT_EQ(fleet.shard_health(1), sim::ShardHealth::kServing);
    fleet.flush_black_boxes();
    EXPECT_EQ(fleet.black_box_dumps(), 2u);
  }

  for (const std::uint64_t slot : {20ULL, 40ULL}) {
    const fs::path dir =
        root / "blackbox" / ("shard-1-slot-" + std::to_string(slot));
    ASSERT_TRUE(fs::is_regular_file(dir / "trace.json")) << dir;
    ASSERT_TRUE(fs::is_regular_file(dir / "metrics.prom")) << dir;
    ASSERT_TRUE(fs::is_regular_file(dir / "blackbox.json")) << dir;
  }

  // The second dump fires after the first restart succeeded, so its
  // manifest must carry that history — one attempt, ok, one restart —
  // matching what the fleet reported through shard_restarts en route to 2.
  std::ifstream in(root / "blackbox" / "shard-1-slot-40" / "blackbox.json");
  std::stringstream manifest;
  manifest << in.rdbuf();
  const std::string text = manifest.str();
  EXPECT_NE(text.find("\"schema\": \"wdm-blackbox-v1\""), std::string::npos);
  EXPECT_NE(text.find("\"reason\": \"crash\""), std::string::npos);
  EXPECT_NE(text.find("\"attempts\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"restarts\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"attempt\": 1, \"began_at_slot\": 30, \"ok\": true"),
            std::string::npos)
      << text;

  // And the trace explains the trigger.
  std::ifstream tin(root / "blackbox" / "shard-1-slot-40" / "trace.json");
  std::stringstream trace;
  trace << tin.rdbuf();
  EXPECT_NE(trace.str().find("shard-quarantine"), std::string::npos);
}

}  // namespace
}  // namespace wdm
