// Trace capture / serialise / parse / replay round-trips.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/interconnect.hpp"
#include "sim/trace.hpp"
#include "sim/traffic.hpp"

namespace wdm {
namespace {

using core::SlotRequest;
using sim::Trace;

Trace small_trace() {
  Trace t;
  t.n_fibers = 2;
  t.k = 4;
  t.slots.resize(3);
  t.slots[0] = {SlotRequest{0, 1, 1, 10, 2}, SlotRequest{1, 3, 0, 11, 1}};
  t.slots[2] = {SlotRequest{1, 0, 0, 12, 1}};  // slot 1 empty
  return t;
}

TEST(Trace, WriteReadRoundTrip) {
  const Trace original = small_trace();
  std::stringstream ss;
  sim::write_trace(ss, original);
  const Trace parsed = sim::read_trace(ss);
  EXPECT_EQ(parsed.n_fibers, 2);
  EXPECT_EQ(parsed.k, 4);
  ASSERT_EQ(parsed.slots.size(), 3u);
  EXPECT_EQ(parsed.total_requests(), 3u);
  EXPECT_EQ(parsed.slots[0][0].wavelength, 1);
  EXPECT_EQ(parsed.slots[0][0].duration, 2);
  EXPECT_EQ(parsed.slots[0][1].output_fiber, 0);
  EXPECT_TRUE(parsed.slots[1].empty());
  EXPECT_EQ(parsed.slots[2][0].id, 12u);
}

TEST(Trace, TrailingEmptySlotsSurviveTheRoundTrip) {
  // The slots= header restores idle slots at the end of the stream — no
  // request line references them, so without it the trace would round-trip
  // shorter than it was written and a replay would end early.
  Trace t;
  t.n_fibers = 2;
  t.k = 4;
  t.slots.resize(5);
  t.slots[1] = {SlotRequest{0, 1, 1, 10, 1}};  // slots 2..4 stay idle
  std::stringstream ss;
  sim::write_trace(ss, t);
  const Trace parsed = sim::read_trace(ss);
  ASSERT_EQ(parsed.slots.size(), 5u);
  EXPECT_EQ(parsed.total_requests(), 1u);
  EXPECT_TRUE(parsed.slots[4].empty());
}

TEST(Trace, CommentAndBlankLinesAreIgnored) {
  std::stringstream ss(
      "# wdmsched trace v1\n"
      "# n_fibers=2 k=4 slots=2\n"
      "\n"
      "# a stray comment between request lines\n"
      "0,0,0,0,7,1\n"
      "# trailing commentary\n"
      "1,1,1,1,8,1\n");
  const Trace parsed = sim::read_trace(ss);
  ASSERT_EQ(parsed.slots.size(), 2u);
  EXPECT_EQ(parsed.slots[0][0].id, 7u);
  EXPECT_EQ(parsed.slots[1][0].id, 8u);
}

TEST(Trace, SlotCountBoundaryIsEnforcedExactly) {
  // Header declaring more than kMaxTraceSlots is rejected (it sizes our own
  // allocation)...
  std::stringstream over("# n_fibers=2 k=4 slots=" +
                         std::to_string(sim::kMaxTraceSlots + 1) + "\n");
  EXPECT_THROW(sim::read_trace(over), std::logic_error);
  // ...and so is a request line indexing the first out-of-range slot.
  std::stringstream line("# n_fibers=2 k=4 slots=1\n" +
                         std::to_string(sim::kMaxTraceSlots) + ",0,0,0,1,1\n");
  EXPECT_THROW(sim::read_trace(line), std::logic_error);
  // A request line may still extend the trace past the declared count.
  std::stringstream extend(
      "# n_fibers=2 k=4 slots=1\n"
      "3,0,0,0,1,1\n");
  EXPECT_EQ(sim::read_trace(extend).slots.size(), 4u);
}

TEST(Trace, StructurallyMalformedInputRejected) {
  std::stringstream bad1("# n_fibers=2 k=4 slots=1\nnot,a,number\n");
  EXPECT_THROW(sim::read_trace(bad1), std::invalid_argument);
  std::stringstream no_header("0,0,0,0,1,1\n");
  EXPECT_THROW(sim::read_trace(no_header), std::logic_error);
  std::stringstream huge_slot("# n_fibers=2 k=4 slots=1\n999999999999,0,0,0,1,1\n");
  EXPECT_THROW(sim::read_trace(huge_slot), std::logic_error);
}

TEST(Trace, OutOfRangeEntriesAreKeptAndRejectedAtReplay) {
  // One bad line costs one grant, not the whole replay: the out-of-range
  // request parses, replays, and is counted as a malformed rejection.
  std::stringstream ss(
      "# n_fibers=2 k=4 slots=1\n"
      "0,5,0,0,1,1\n"    // input fiber 5 of 2
      "0,0,9,1,2,1\n"    // wavelength 9 of 4
      "0,1,2,1,3,1\n");  // valid
  const Trace t = sim::read_trace(ss);
  EXPECT_EQ(t.total_requests(), 3u);

  sim::InterconnectConfig icfg;
  icfg.n_fibers = 2;
  icfg.scheme = core::ConversionScheme::circular(4, 1, 1);
  sim::Interconnect ic(icfg);
  const auto stats = sim::replay_trace(t, ic);
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].arrivals, 3u);
  EXPECT_EQ(stats[0].granted, 1u);
  EXPECT_EQ(stats[0].rejected, 2u);
  EXPECT_EQ(stats[0].rejected_malformed, 2u);
}

TEST(Trace, CaptureMatchesGeneratorStream) {
  sim::TrafficConfig tcfg;
  tcfg.load = 0.5;
  sim::TrafficGenerator gen_a(3, 4, tcfg, 77);
  sim::TrafficGenerator gen_b(3, 4, tcfg, 77);
  const auto trace = sim::capture_trace(gen_a, 3, 4, 20);
  ASSERT_EQ(trace.slots.size(), 20u);
  for (std::size_t s = 0; s < 20; ++s) {
    const auto direct = gen_b.next_slot();
    ASSERT_EQ(trace.slots[s].size(), direct.size());
    for (std::size_t i = 0; i < direct.size(); ++i) {
      EXPECT_EQ(trace.slots[s][i].input_fiber, direct[i].input_fiber);
      EXPECT_EQ(trace.slots[s][i].wavelength, direct[i].wavelength);
      EXPECT_EQ(trace.slots[s][i].output_fiber, direct[i].output_fiber);
    }
  }
}

TEST(Trace, ReplayIsDeterministicAndSchedulerComparable) {
  sim::TrafficConfig tcfg;
  tcfg.load = 0.7;
  sim::TrafficGenerator gen(4, 6, tcfg, 99);
  const auto trace = sim::capture_trace(gen, 4, 6, 50);

  sim::InterconnectConfig icfg;
  icfg.n_fibers = 4;
  icfg.scheme = core::ConversionScheme::circular(6, 1, 1);
  icfg.arbitration = core::Arbitration::kFifo;

  sim::Interconnect a(icfg), b(icfg);
  const auto stats_a = sim::replay_trace(trace, a);
  const auto stats_b = sim::replay_trace(trace, b);
  ASSERT_EQ(stats_a.size(), 50u);
  std::uint64_t granted_a = 0, granted_b = 0;
  for (std::size_t s = 0; s < 50; ++s) {
    granted_a += stats_a[s].granted;
    granted_b += stats_b[s].granted;
    EXPECT_EQ(stats_a[s].granted, stats_b[s].granted);
  }
  EXPECT_EQ(granted_a, granted_b);

  // Replaying the same workload under the greedy ablation scheduler grants
  // no more than the exact scheduler.
  sim::InterconnectConfig greedy_cfg = icfg;
  greedy_cfg.algorithm = core::Algorithm::kGreedyMaximal;
  sim::Interconnect greedy(greedy_cfg);
  const auto stats_g = sim::replay_trace(trace, greedy);
  std::uint64_t granted_g = 0;
  for (const auto& s : stats_g) granted_g += s.granted;
  EXPECT_LE(granted_g, granted_a);
}

TEST(Trace, DimensionMismatchRejected) {
  const Trace t = small_trace();
  sim::InterconnectConfig icfg;
  icfg.n_fibers = 3;  // trace says 2
  icfg.scheme = core::ConversionScheme::circular(4, 1, 1);
  sim::Interconnect ic(icfg);
  EXPECT_THROW(sim::replay_trace(t, ic), std::logic_error);
}

}  // namespace
}  // namespace wdm
