// Remaining util coverage: Stopwatch, Histogram rendering, grants helper.
#include <gtest/gtest.h>

#include <thread>

#include "core/channel_assignment.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace wdm {
namespace {

TEST(Stopwatch, MeasuresElapsedTime) {
  util::Stopwatch clock;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto ms = clock.elapsed_ms();
  EXPECT_GE(ms, 15.0);
  EXPECT_LT(ms, 5000.0);
  EXPECT_NEAR(clock.elapsed_s(), clock.elapsed_ms() / 1000.0, 0.05);
}

TEST(Stopwatch, ResetRestarts) {
  util::Stopwatch clock;
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  clock.reset();
  EXPECT_LT(clock.elapsed_ms(), 15.0);
}

TEST(Stopwatch, MonotoneReadings) {
  util::Stopwatch clock;
  const auto a = clock.elapsed_ns();
  const auto b = clock.elapsed_ns();
  EXPECT_LE(a, b);
}

TEST(Histogram, AsciiRendering) {
  util::Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(0.6);
  h.add(2.5);
  const auto art = h.ascii(10);
  // One line per bin, hash bars proportional to counts.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  EXPECT_NE(art.find("##########"), std::string::npos);  // peak bin
  EXPECT_NE(art.find(" 2"), std::string::npos);
  EXPECT_NE(art.find(" 0"), std::string::npos);
}

TEST(ChannelAssignment, GrantsPerWavelength) {
  core::ChannelAssignment a(4);
  a.source[0] = 1;
  a.source[2] = 1;
  a.source[3] = 3;
  a.granted = 3;
  const auto grants = a.grants_per_wavelength();
  EXPECT_EQ(grants, (std::vector<std::int32_t>{0, 2, 0, 1}));
  EXPECT_EQ(a.k(), 4);
}

}  // namespace
}  // namespace wdm
