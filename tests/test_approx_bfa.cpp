// Section IV.C approximation: Theorem 3 gap bound, Corollary 1 centre break,
// and behaviour under availability masks.
#include <gtest/gtest.h>

#include "core/break_first_available.hpp"
#include "core/crossing.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using core::RequestVector;

TEST(ApproxBfa, EmptyRequests) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  const auto out = core::approx_break_first_available(RequestVector(6), scheme);
  EXPECT_EQ(out.assignment.granted, 0);
  EXPECT_EQ(out.break_channel, core::kNone);
}

TEST(ApproxBfa, DegreeOneIsExact) {
  // d = 1: the only break is δ = 1, bound 0 — the approximation is exact.
  const auto scheme = ConversionScheme::circular(6, 0, 0);
  util::Rng rng(1);
  for (int trial = 0; trial < 30; ++trial) {
    const auto rv = test::random_request_vector(rng, 6, 3, 0.5);
    if (rv.empty()) continue;
    const auto out = core::approx_break_first_available(rv, scheme);
    EXPECT_EQ(out.gap_bound, 0);
    EXPECT_EQ(out.assignment.granted, test::oracle_max_matching(scheme, rv));
  }
}

TEST(ApproxBfa, FallsBackWhenCentreChannelOccupied) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  RequestVector rv(6);
  rv.add(2, 2);
  // Centre break for λ2 would be b2; occupy it.
  std::vector<std::uint8_t> mask{1, 1, 0, 1, 1, 1};
  const auto out = core::approx_break_first_available(rv, scheme, mask);
  EXPECT_NE(out.break_channel, 2);
  // δ ∈ {1, 3}, both have bound d - 1 - ... = max{δ-1, d-δ} = 2.
  EXPECT_EQ(out.gap_bound, 2);
  EXPECT_EQ(out.assignment.granted, 2);  // b1 and b3 still fit both requests
  test::expect_valid_assignment(out.assignment, rv, scheme, mask);
}

struct ApproxCase {
  std::int32_t k, e, f, n_fibers;
  double load;
};

class ApproxSweep : public ::testing::TestWithParam<ApproxCase> {};

TEST_P(ApproxSweep, TheoremThreeGapBoundHolds) {
  const auto [k, e, f, n_fibers, load] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 211 + e * 47 + f * 9) + 3);
  std::int64_t total_gap = 0;
  std::int64_t instances = 0;
  for (int trial = 0; trial < 80; ++trial) {
    const auto rv = test::random_request_vector(rng, k, n_fibers, load);
    if (rv.empty()) continue;
    const auto approx = core::approx_break_first_available(rv, scheme);
    test::expect_valid_assignment(approx.assignment, rv, scheme);
    const auto maximum = test::oracle_max_matching(scheme, rv);
    const auto gap = maximum - approx.assignment.granted;
    EXPECT_GE(gap, 0);
    EXPECT_LE(gap, approx.gap_bound) << "k=" << k << " trial=" << trial;
    // Corollary 1: the centred break minimises the bound at (d-1)/2 for odd
    // d; for even d the best achievable value is floor(d/2).
    EXPECT_EQ(approx.gap_bound, scheme.degree() / 2);
    total_gap += gap;
    instances += 1;
  }
  ASSERT_GT(instances, 0);
  // The bound is worst-case; on random traffic the approximation is close
  // to exact on average (well under half the bound per instance).
  EXPECT_LE(static_cast<double>(total_gap),
            0.5 * static_cast<double>(instances) *
                std::max(1, scheme.degree() / 2));
}

TEST_P(ApproxSweep, GapBoundHoldsWithOccupiedChannels) {
  const auto [k, e, f, n_fibers, load] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 223 + e * 53 + f * 11) + 5);
  for (int trial = 0; trial < 60; ++trial) {
    const auto rv = test::random_request_vector(rng, k, n_fibers, load);
    const auto mask = test::random_mask(rng, k, 0.7);
    const auto approx = core::approx_break_first_available(rv, scheme, mask);
    if (approx.break_channel == core::kNone) continue;
    test::expect_valid_assignment(approx.assignment, rv, scheme, mask);
    const auto maximum = test::oracle_max_matching(scheme, rv, mask);
    EXPECT_LE(maximum - approx.assignment.granted, approx.gap_bound);
  }
}

TEST_P(ApproxSweep, ReportedDeltaMatchesCrossingNumberUnderMasks) {
  // The approximation derives δ positionally (delta = idx + 1 over
  // adjacency_list order); check the reported break against the real
  // crossing number and the minimal bound among *free* edges, so a mask
  // that removes the centre channel cannot desynchronise the two.
  const auto [k, e, f, n_fibers, load] = GetParam();
  const auto scheme = ConversionScheme::circular(k, e, f);
  util::Rng rng(static_cast<std::uint64_t>(k * 239 + e * 59 + f * 13) + 7);
  for (int trial = 0; trial < 60; ++trial) {
    const auto rv = test::random_request_vector(rng, k, n_fibers, load);
    const auto mask = test::random_mask(rng, k, 0.5);
    const auto approx = core::approx_break_first_available(rv, scheme, mask);
    if (approx.break_channel == core::kNone) continue;
    EXPECT_NE(mask[static_cast<std::size_t>(approx.break_channel)], 0)
        << "broke at an occupied channel";
    // Recover the breaking wavelength the same way the implementation does.
    const auto w_i = [&] {
      for (core::Wavelength w = 0; w < k; ++w) {
        if (rv.count(w) == 0) continue;
        for (const auto u : scheme.adjacency_list(w)) {
          if (mask[static_cast<std::size_t>(u)] != 0) return w;
        }
      }
      return core::kNone;
    }();
    ASSERT_NE(w_i, core::kNone);
    EXPECT_EQ(approx.delta, core::delta_of(scheme, w_i, approx.break_channel));
    EXPECT_EQ(approx.gap_bound,
              core::breaking_gap_bound(scheme.degree(), approx.delta));
    std::int32_t min_free_bound = scheme.degree();
    for (const auto u : scheme.adjacency_list(w_i)) {
      if (mask[static_cast<std::size_t>(u)] == 0) continue;
      min_free_bound =
          std::min(min_free_bound,
                   core::breaking_gap_bound(scheme.degree(),
                                            core::delta_of(scheme, w_i, u)));
    }
    EXPECT_EQ(approx.gap_bound, min_free_bound)
        << "did not pick the best-bounded free edge";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ApproxSweep,
    ::testing::Values(ApproxCase{6, 1, 1, 4, 0.4},   // d = 3 (bound 1)
                      ApproxCase{8, 2, 2, 4, 0.4},   // d = 5 (bound 2)
                      ApproxCase{8, 1, 1, 8, 0.7},   // overload
                      ApproxCase{10, 3, 3, 4, 0.3},  // d = 7 (bound 3)
                      ApproxCase{12, 2, 1, 3, 0.35},
                      ApproxCase{16, 4, 4, 2, 0.3}),
    [](const ::testing::TestParamInfo<ApproxCase>& pinfo) {
      const auto& p = pinfo.param;
      return "k" + std::to_string(p.k) + "_e" + std::to_string(p.e) + "_f" +
             std::to_string(p.f) + "_L" +
             std::to_string(static_cast<int>(p.load * 100));
    });

}  // namespace
}  // namespace wdm
