// Shared helpers for the test suite: random instances and oracle checks.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "core/channel_assignment.hpp"
#include "core/conversion.hpp"
#include "core/request.hpp"
#include "core/request_graph.hpp"
#include "graph/hopcroft_karp.hpp"
#include "graph/kuhn.hpp"
#include "util/rng.hpp"

namespace wdm::test {

/// Random request vector mimicking a slot of Bernoulli traffic: each of
/// n_fibers * k input channels requests this output fiber with probability p
/// (per-wavelength counts are Binomial(n_fibers, p)).
inline core::RequestVector random_request_vector(util::Rng& rng, std::int32_t k,
                                                 std::int32_t n_fibers,
                                                 double p) {
  core::RequestVector rv(k);
  for (core::Wavelength w = 0; w < k; ++w) {
    for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
      if (rng.bernoulli(p)) rv.add(w);
    }
  }
  return rv;
}

/// Random availability mask; each channel free with probability p_free.
inline std::vector<std::uint8_t> random_mask(util::Rng& rng, std::int32_t k,
                                             double p_free) {
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(k));
  for (auto& m : mask) m = rng.bernoulli(p_free) ? 1 : 0;
  return mask;
}

/// Maximum matching size of the request graph, by Hopcroft–Karp.
inline std::int32_t oracle_max_matching(const core::ConversionScheme& scheme,
                                        const core::RequestVector& rv,
                                        std::vector<std::uint8_t> mask = {}) {
  const core::RequestGraph g(scheme, rv, std::move(mask));
  return static_cast<std::int32_t>(graph::hopcroft_karp(g.to_bipartite()).size());
}

/// Asserts that a channel assignment is a feasible schedule: channels only
/// granted when free, conversions legal, and no wavelength over-granted.
inline void expect_valid_assignment(const core::ChannelAssignment& a,
                                    const core::RequestVector& rv,
                                    const core::ConversionScheme& scheme,
                                    std::span<const std::uint8_t> mask = {}) {
  ASSERT_EQ(a.k(), scheme.k());
  std::int32_t granted = 0;
  std::vector<std::int32_t> used(static_cast<std::size_t>(scheme.k()), 0);
  for (core::Channel u = 0; u < scheme.k(); ++u) {
    const core::Wavelength w = a.source[static_cast<std::size_t>(u)];
    if (w == core::kNone) continue;
    granted += 1;
    ASSERT_GE(w, 0);
    ASSERT_LT(w, scheme.k());
    EXPECT_TRUE(scheme.can_convert(w, u))
        << "channel " << u << " granted to inconvertible wavelength " << w;
    if (!mask.empty()) {
      EXPECT_NE(mask[static_cast<std::size_t>(u)], 0)
          << "occupied channel " << u << " was granted";
    }
    used[static_cast<std::size_t>(w)] += 1;
  }
  EXPECT_EQ(granted, a.granted);
  for (core::Wavelength w = 0; w < scheme.k(); ++w) {
    EXPECT_LE(used[static_cast<std::size_t>(w)], rv.count(w))
        << "wavelength " << w << " granted more channels than it has requests";
  }
}

}  // namespace wdm::test
