// Arbitrary (non-interval) conversion: construction, scheduling optimality,
// and agreement with the interval schedulers on interval relations.
#include <gtest/gtest.h>

#include "core/arbitrary_conversion.hpp"
#include "core/priority.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::ArbitraryConversion;
using core::ConversionScheme;
using core::RequestVector;

TEST(ArbitraryConversion, ConstructionValidation) {
  ArbitraryConversion ok(3, {{0, 1}, {}, {2}});
  EXPECT_EQ(ok.k(), 3);
  EXPECT_TRUE(ok.can_convert(0, 1));
  EXPECT_FALSE(ok.can_convert(0, 2));
  EXPECT_FALSE(ok.can_convert(1, 1));  // isolated wavelength
  EXPECT_EQ(ok.max_degree(), 2);

  EXPECT_THROW(ArbitraryConversion(2, {{0}}), std::logic_error);  // wrong size
  EXPECT_THROW(ArbitraryConversion(2, {{0, 0}, {}}), std::logic_error);  // dup
  EXPECT_THROW(ArbitraryConversion(2, {{2}, {}}), std::logic_error);  // range
}

TEST(ArbitraryConversion, GappedRelationIsScheduledOptimally) {
  // A parametric-style converter: λw reaches {w, (k-1)-w} — a relation with
  // gaps no interval scheme can express.
  const std::int32_t k = 6;
  std::vector<std::vector<core::Channel>> reach(static_cast<std::size_t>(k));
  for (core::Wavelength w = 0; w < k; ++w) {
    reach[static_cast<std::size_t>(w)] = {w};
    if (k - 1 - w != w) reach[static_cast<std::size_t>(w)].push_back(k - 1 - w);
  }
  const ArbitraryConversion conv(k, std::move(reach));

  RequestVector rv(k);
  rv.add(0, 2);  // reach {0, 5}
  rv.add(5, 1);  // reach {5, 0} — total 3 requests for channels {0, 5}
  const auto out = core::schedule_arbitrary(rv, conv);
  EXPECT_EQ(out.granted, 2);

  RequestVector spread(k);
  spread.add(1, 2);  // reach {1, 4}
  const auto out2 = core::schedule_arbitrary(spread, conv);
  EXPECT_EQ(out2.granted, 2);
  EXPECT_EQ(out2.source[1], 1);
  EXPECT_EQ(out2.source[4], 1);
}

TEST(ArbitraryConversion, MatchesIntervalSchedulersOnIntervalRelations) {
  util::Rng rng(888);
  for (int trial = 0; trial < 60; ++trial) {
    const auto k = static_cast<std::int32_t>(2 + rng.uniform_below(10));
    const auto e = static_cast<std::int32_t>(rng.uniform_below(3));
    const auto f = static_cast<std::int32_t>(rng.uniform_below(3));
    if (e + f + 1 > k) continue;
    const bool circ = rng.bernoulli(0.5);
    const auto scheme = circ ? ConversionScheme::circular(k, e, f)
                             : ConversionScheme::non_circular(k, e, f);
    const auto conv = ArbitraryConversion::from_scheme(scheme);
    const auto rv = test::random_request_vector(rng, k, 4, 0.4);
    const auto mask = test::random_mask(rng, k, 0.7);

    const auto generic = core::schedule_arbitrary(rv, conv, mask);
    test::expect_valid_assignment(generic, rv, scheme, mask);
    const auto fast = core::assign_maximum(rv, scheme, mask);
    EXPECT_EQ(generic.granted, fast.granted)
        << (circ ? "circular" : "non-circular") << " k=" << k;
  }
}

TEST(ArbitraryConversion, RespectsAvailability) {
  const ArbitraryConversion conv(3, {{0, 1, 2}, {0, 1, 2}, {0, 1, 2}});
  RequestVector rv(3);
  rv.add(0, 3);
  const std::vector<std::uint8_t> mask{1, 0, 1};
  const auto out = core::schedule_arbitrary(rv, conv, mask);
  EXPECT_EQ(out.granted, 2);
  EXPECT_EQ(out.source[1], core::kNone);
}

}  // namespace
}  // namespace wdm
