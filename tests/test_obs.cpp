// Telemetry plane: histogram math, trace-recorder ring semantics, exporter
// output, pipeline integration, and the two invariants the subsystem must
// never break — tracing does not perturb scheduling decisions or the
// checkpoint digest, and the degradation rotation is observable and fair.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "core/distributed.hpp"
#include "obs/histogram.hpp"
#include "obs/registry.hpp"
#include "obs/telemetry.hpp"
#include "sim/checkpoint.hpp"
#include "sim/interconnect.hpp"
#include "util/rng.hpp"

namespace wdm {
namespace {

using obs::EventKind;
using obs::Histogram;
using obs::Stage;
using obs::TraceDetail;
using obs::TraceEvent;
using obs::TraceRecorder;

// ------------------------------------------------------------- histogram

TEST(ObsHistogram, SmallValuesAreExact) {
  Histogram h;
  for (std::uint64_t v = 0; v < Histogram::kSubCount; ++v) h.add(v);
  EXPECT_EQ(h.count(), Histogram::kSubCount);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), Histogram::kSubCount - 1);
  // One exact bucket per value below kSubCount: every quantile lands on the
  // precise rank-th sample.
  for (std::uint64_t v = 0; v < Histogram::kSubCount; ++v) {
    const double q = static_cast<double>(v + 1) /
                     static_cast<double>(Histogram::kSubCount);
    EXPECT_EQ(h.quantile(q), v) << "q=" << q;
  }
  EXPECT_EQ(h.sum(), Histogram::kSubCount * (Histogram::kSubCount - 1) / 2);
}

TEST(ObsHistogram, EmptyHistogramIsAllZero) {
  const Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(ObsHistogram, QuantileRelativeErrorIsBounded) {
  // The log-bucket contract: a reported quantile is >= the true rank-th
  // sample and overshoots it by at most one sub-bucket (a factor of
  // 1 + 2^-kSubBits, plus 1 for the inclusive edge).
  util::Rng rng(7);
  Histogram h;
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 20000; ++i) {
    // Spread across 5 decades so many octaves are exercised.
    const std::uint64_t v = rng.uniform_below(10) == 0
                                ? rng.uniform_below(100)
                                : 1000 + rng.uniform_below(100'000'000);
    samples.push_back(v);
    h.add(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    const auto rank = static_cast<std::size_t>(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               std::ceil(q * static_cast<double>(samples.size())))));
    const std::uint64_t exact = samples[rank - 1];
    const std::uint64_t reported = h.quantile(q);
    EXPECT_GE(reported, exact) << "q=" << q;
    EXPECT_LE(reported, exact + exact / Histogram::kSubCount + 1) << "q=" << q;
  }
}

TEST(ObsHistogram, MergeMatchesCombinedStream) {
  util::Rng rng(11);
  Histogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.uniform_below(1'000'000);
    combined.add(v);
    (i % 2 == 0 ? a : b).add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    ASSERT_EQ(a.count_at(i), combined.count_at(i)) << "bucket " << i;
  }
  for (const double q : {0.5, 0.99}) {
    EXPECT_EQ(a.quantile(q), combined.quantile(q));
  }
}

TEST(ObsHistogram, MergeEmptyAndNonEmptyAreIdentities) {
  Histogram filled;
  for (std::uint64_t v : {1ULL, 7ULL, 4096ULL}) filled.add(v);

  // empty.merge(filled) adopts filled wholesale — including min/max, which
  // must not keep the empty histogram's zero-initialized min.
  Histogram empty_lhs;
  empty_lhs.merge(filled);
  EXPECT_EQ(empty_lhs.count(), filled.count());
  EXPECT_EQ(empty_lhs.sum(), filled.sum());
  EXPECT_EQ(empty_lhs.min(), filled.min());
  EXPECT_EQ(empty_lhs.max(), filled.max());

  // filled.merge(empty) is a no-op.
  Histogram copy = filled;
  const Histogram empty_rhs;
  copy.merge(empty_rhs);
  EXPECT_EQ(copy.count(), filled.count());
  EXPECT_EQ(copy.sum(), filled.sum());
  EXPECT_EQ(copy.min(), filled.min());
  EXPECT_EQ(copy.max(), filled.max());
  for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
    ASSERT_EQ(copy.count_at(i), filled.count_at(i)) << "bucket " << i;
  }

  // Two empties merge to an empty.
  Histogram both;
  both.merge(empty_rhs);
  EXPECT_EQ(both.count(), 0u);
  EXPECT_EQ(both.quantile(0.5), 0u);
}

TEST(ObsHistogram, MergeSaturatedTopBucketAccumulates) {
  // The top bucket's inclusive hi is ~0ULL; merging two histograms that both
  // hold it must add the counts without overflowing the edge math.
  const std::size_t top = Histogram::bucket_index(~0ULL);
  Histogram a, b;
  for (int i = 0; i < 3; ++i) a.add(~0ULL);
  for (int i = 0; i < 5; ++i) b.add(~0ULL - 1);
  ASSERT_EQ(Histogram::bucket_index(~0ULL - 1), top);
  a.merge(b);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_EQ(a.count_at(top), 8u);
  EXPECT_EQ(a.max(), ~0ULL);
  EXPECT_EQ(a.min(), ~0ULL - 1);
  EXPECT_EQ(a.quantile(1.0), ~0ULL);
}

TEST(ObsHistogram, HugeValuesStayInRange) {
  Histogram h;
  h.add(~0ULL);
  h.add(1ULL << 63);
  h.add(3);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), ~0ULL);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.quantile(1.0), ~0ULL);
  EXPECT_EQ(h.quantile(0.01), 3u);
  // The top bucket's inclusive edge is the full 64-bit range.
  const std::size_t top = Histogram::bucket_index(~0ULL);
  EXPECT_LT(top, Histogram::kBucketCount);
  EXPECT_EQ(Histogram::bucket_hi(top), ~0ULL);
}

TEST(ObsHistogram, BucketEdgesPartitionTheRange) {
  // Buckets tile [0, 2^64): each value lands in a bucket whose [lo, hi]
  // brackets it, and consecutive buckets touch without overlap.
  util::Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    std::uint64_t v = rng.next();
    v >>= rng.uniform_below(64);
    const std::size_t idx = Histogram::bucket_index(v);
    ASSERT_LT(idx, Histogram::kBucketCount);
    EXPECT_LE(Histogram::bucket_lo(idx), v);
    EXPECT_GE(Histogram::bucket_hi(idx), v);
  }
  for (std::size_t i = 1; i < Histogram::kBucketCount; ++i) {
    ASSERT_EQ(Histogram::bucket_lo(i), Histogram::bucket_hi(i - 1) + 1)
        << "gap/overlap at bucket " << i;
  }
}

// --------------------------------------------------------- trace recorder

TEST(ObsRecorder, ParseTraceDetail) {
  EXPECT_EQ(obs::parse_trace_detail("off"), TraceDetail::kOff);
  EXPECT_EQ(obs::parse_trace_detail("slots"), TraceDetail::kSlots);
  EXPECT_EQ(obs::parse_trace_detail("fibers"), TraceDetail::kFibers);
  EXPECT_EQ(obs::parse_trace_detail("full"), TraceDetail::kFull);
  EXPECT_FALSE(obs::parse_trace_detail("verbose").has_value());
  EXPECT_FALSE(obs::parse_trace_detail("").has_value());
}

TEST(ObsRecorder, RingWrapKeepsNewestEvents) {
  TraceRecorder rec(TraceDetail::kFull, 8);
  for (std::uint64_t i = 0; i < 20; ++i) {
    TraceEvent e;
    e.slot = i;
    e.kind = EventKind::kRetryDrain;
    rec.record(e);
  }
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  EXPECT_EQ(rec.size(), 8u);
  std::vector<TraceEvent> out;
  rec.snapshot(out);
  ASSERT_EQ(out.size(), 8u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].slot, 12 + i) << "oldest-first order";
  }
  rec.clear();
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_EQ(rec.size(), 0u);
}

TEST(ObsRecorder, AppendSkipsNoneSentinels) {
  TraceRecorder rec(TraceDetail::kFibers, 16);
  std::vector<TraceEvent> staged(4);
  staged[1].kind = EventKind::kFiberSchedule;
  staged[1].fiber = 1;
  staged[3].kind = EventKind::kFiberSchedule;
  staged[3].fiber = 3;
  rec.append(staged);
  EXPECT_EQ(rec.size(), 2u);
  std::vector<TraceEvent> out;
  rec.snapshot(out);
  EXPECT_EQ(out[0].fiber, 1);
  EXPECT_EQ(out[1].fiber, 3);
}

TEST(ObsRecorder, StageTimerGatesOnLevelAndNull) {
  { const obs::StageTimer t(nullptr, Stage::kSlot, 0); }  // must be safe

  TraceRecorder off(TraceDetail::kOff, 8);
  { const obs::StageTimer t(&off, Stage::kSlot, 0); }
  EXPECT_EQ(off.recorded(), 0u) << "below the gate nothing records";

  TraceRecorder on(TraceDetail::kSlots, 8);
  { const obs::StageTimer t(&on, Stage::kPartition, 7); }
  ASSERT_EQ(on.recorded(), 1u);
  std::vector<TraceEvent> out;
  on.snapshot(out);
  EXPECT_EQ(out[0].kind, EventKind::kStage);
  EXPECT_EQ(out[0].detail, static_cast<std::uint8_t>(Stage::kPartition));
  EXPECT_EQ(out[0].slot, 7u);
  EXPECT_EQ(on.stage_histogram(Stage::kPartition).count(), 1u);
}

// --------------------------------------------------------------- exporters

TEST(ObsExport, ChromeTraceShapesSpansAndInstants) {
  TraceRecorder rec(TraceDetail::kFull, 32);
  rec.record_stage(Stage::kSlot, 3, 1000, 4000, 5, 4);
  TraceEvent fiber;
  fiber.ts_ns = 1200;
  fiber.dur_ns = 300;
  fiber.slot = 3;
  fiber.fiber = 2;
  fiber.a = 6;
  fiber.b = 4;
  fiber.kind = EventKind::kFiberSchedule;
  fiber.detail = 1;
  fiber.tid = 2;
  rec.record(fiber);
  TraceEvent shed;
  shed.ts_ns = 1100;
  shed.slot = 3;
  shed.fiber = 1;
  shed.a = 2;
  shed.kind = EventKind::kAdmissionShed;
  rec.record(shed);

  std::ostringstream os;
  obs::write_chrome_trace(os, rec);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("\"wdm-interconnect\""), std::string::npos);
  EXPECT_NE(out.find("\"worker 2\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"slot\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(out.find("\"kernel\": \"degraded-approx\""), std::string::npos);
  EXPECT_NE(out.find("\"name\": \"admission-shed\""), std::string::npos);
  // Timestamps are normalised to the earliest event (1000 ns -> 0 us).
  EXPECT_NE(out.find("\"ts\": 0.000"), std::string::npos);
  // Braces balance: a cheap well-formedness proxy the CI checker redoes
  // with a real JSON parser.
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'),
            std::count(out.begin(), out.end(), '}'));
}

TEST(ObsExport, PrometheusWriterEmitsHelpTypeAndCumulativeBuckets) {
  obs::Registry registry;
  registry.counter("wdm_widgets_total", "Widgets seen", 42);
  registry.gauge("wdm_pressure", "Current pressure", 0.5);
  Histogram h;
  for (std::uint64_t v : {1ULL, 2ULL, 2ULL, 100ULL, 5000ULL}) h.add(v);
  registry.histogram("wdm_latency_ns", "Latency", h, "stage=\"slot\"");
  registry.histogram("wdm_latency_ns", "Latency", h, "stage=\"fanout\"");

  std::ostringstream os;
  obs::write_prometheus(os, registry);
  const std::string out = os.str();

  EXPECT_NE(out.find("# HELP wdm_widgets_total Widgets seen"),
            std::string::npos);
  EXPECT_NE(out.find("# TYPE wdm_widgets_total counter"), std::string::npos);
  EXPECT_NE(out.find("wdm_widgets_total 42"), std::string::npos);
  EXPECT_NE(out.find("# TYPE wdm_pressure gauge"), std::string::npos);
  // HELP/TYPE appear once per metric name even with two label series.
  std::size_t count = 0;
  for (std::size_t pos = out.find("# TYPE wdm_latency_ns");
       pos != std::string::npos;
       pos = out.find("# TYPE wdm_latency_ns", pos + 1)) {
    count += 1;
  }
  EXPECT_EQ(count, 1u);
  EXPECT_NE(out.find("wdm_latency_ns_bucket{stage=\"slot\",le=\"+Inf\"} 5"),
            std::string::npos);
  EXPECT_NE(out.find("wdm_latency_ns_count{stage=\"slot\"} 5"),
            std::string::npos);
  EXPECT_NE(out.find("wdm_latency_ns_sum{stage=\"slot\"} 5105"),
            std::string::npos);
}

TEST(ObsExport, LabelValueEscapingCoversBackslashQuoteNewline) {
  EXPECT_EQ(obs::escape_label_value("plain-value_0"), "plain-value_0");
  EXPECT_EQ(obs::escape_label_value("back\\slash"), "back\\\\slash");
  EXPECT_EQ(obs::escape_label_value("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(obs::escape_label_value("two\nlines"), "two\\nlines");
  // All three at once, in order: \ then " then newline.
  EXPECT_EQ(obs::escape_label_value("\\\"\n"), "\\\\\\\"\\n");
  EXPECT_EQ(obs::escape_label_value(""), "");
}

TEST(ObsExport, HelpEscapingLeavesQuotesAlone) {
  EXPECT_EQ(obs::escape_help("plain help"), "plain help");
  EXPECT_EQ(obs::escape_help("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::escape_help("a\nb"), "a\\nb");
  // Double quotes are legal inside HELP text and must pass through.
  EXPECT_EQ(obs::escape_help("say \"hi\""), "say \"hi\"");
}

TEST(ObsExport, LabelComposesAnEscapedPair) {
  EXPECT_EQ(obs::label("stage", "slot"), "stage=\"slot\"");
  EXPECT_EQ(obs::label("path", "a\\b\"c\nd"),
            "path=\"a\\\\b\\\"c\\nd\"");
}

TEST(ObsExport, PrometheusWriterKeepsHelpOnOneEscapedLine) {
  obs::Registry registry;
  registry.counter("wdm_tricky_total", "first line\nsecond \\ line", 7,
                   obs::label("file", "C:\\tmp\n\"x\""));

  std::ostringstream os;
  obs::write_prometheus(os, registry);
  const std::string out = os.str();

  // The HELP text must be a single physical line with escaped metachars.
  EXPECT_NE(out.find("# HELP wdm_tricky_total first line\\nsecond \\\\ line"),
            std::string::npos);
  EXPECT_EQ(out.find("second \\ line\n"), std::string::npos)
      << "raw newline/backslash leaked into the exposition";
  EXPECT_NE(
      out.find("wdm_tricky_total{file=\"C:\\\\tmp\\n\\\"x\\\"\"} 7"),
      std::string::npos);
  // Every non-comment line must still parse as `name{labels} value`.
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << line;
  }
}

// ------------------------------------------------------------ integration

std::vector<std::vector<core::SlotRequest>> make_slots(std::int32_t n_fibers,
                                                       std::int32_t k,
                                                       std::size_t n_slots,
                                                       double load) {
  util::Rng rng(21);
  std::vector<std::vector<core::SlotRequest>> slots(n_slots);
  std::uint64_t id = 0;
  for (auto& slot : slots) {
    for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
      for (core::Wavelength w = 0; w < k; ++w) {
        if (!rng.bernoulli(load)) continue;
        slot.push_back(core::SlotRequest{
            fib, w,
            static_cast<std::int32_t>(
                rng.uniform_below(static_cast<std::uint64_t>(n_fibers))),
            id++, 1 + static_cast<std::int32_t>(rng.uniform_below(2)), 0});
      }
    }
  }
  return slots;
}

sim::InterconnectConfig small_config() {
  sim::InterconnectConfig cfg;
  cfg.n_fibers = 4;
  cfg.scheme = core::ConversionScheme::circular(8, 1, 1);
  cfg.seed = 9;
  return cfg;
}

TEST(ObsIntegration, PipelineEmitsSlotAndFiberEvents) {
  sim::Interconnect ic(small_config());
  TraceRecorder rec(TraceDetail::kFull);
  ic.set_telemetry(&rec);

  const auto slots = make_slots(4, 8, 16, 0.6);
  std::uint64_t granted = 0;
  for (const auto& slot : slots) granted += ic.step(slot).granted;

  std::vector<TraceEvent> events;
  rec.snapshot(events);
  std::uint64_t slot_spans = 0;
  std::uint64_t fiber_granted = 0;
  for (const auto& e : events) {
    if (e.kind == EventKind::kStage &&
        e.detail == static_cast<std::uint8_t>(Stage::kSlot)) {
      slot_spans += 1;
    }
    if (e.kind == EventKind::kFiberSchedule) fiber_granted += e.b;
  }
  EXPECT_EQ(slot_spans, slots.size()) << "one slot span per step";
  EXPECT_EQ(fiber_granted, granted)
      << "per-fiber schedule spans must account for every grant";
  EXPECT_GT(rec.stage_histogram(Stage::kPartition).count(), 0u);
  EXPECT_GT(rec.stage_histogram(Stage::kFanout).count(), 0u);
}

TEST(ObsIntegration, TracingDoesNotPerturbTheStateDigest) {
  sim::Interconnect plain(small_config());
  sim::Interconnect traced(small_config());
  TraceRecorder rec(TraceDetail::kFull);
  traced.set_telemetry(&rec);

  const auto slots = make_slots(4, 8, 32, 0.7);
  for (const auto& slot : slots) {
    const auto a = plain.step(slot);
    const auto b = traced.step(slot);
    ASSERT_EQ(a.granted, b.granted);
    ASSERT_EQ(a.rejected, b.rejected);
    ASSERT_EQ(sim::state_digest(plain), sim::state_digest(traced));
  }
  EXPECT_GT(rec.recorded(), 0u);
}

TEST(ObsIntegration, CheckpointRoundTripWithTracingOn) {
  const auto slots = make_slots(4, 8, 24, 0.7);

  sim::Interconnect original(small_config());
  TraceRecorder rec_a(TraceDetail::kSlots);
  original.set_telemetry(&rec_a);
  std::stringstream frame;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    if (s == 12) sim::save_checkpoint(frame, original);
    original.step(slots[s]);
  }
  const std::uint64_t want = sim::state_digest(original);

  sim::Interconnect resumed(small_config());
  TraceRecorder rec_b(TraceDetail::kSlots);
  resumed.set_telemetry(&rec_b);
  sim::load_checkpoint(frame, resumed);
  for (std::size_t s = 12; s < slots.size(); ++s) resumed.step(slots[s]);
  EXPECT_EQ(sim::state_digest(resumed), want)
      << "replay from a checkpoint must be digest-exact with tracing on";

  // The checkpoint layer itself leaves instants in the rings.
  std::vector<TraceEvent> events;
  rec_a.snapshot(events);
  EXPECT_TRUE(std::any_of(events.begin(), events.end(), [](const TraceEvent& e) {
    return e.kind == EventKind::kCheckpointSave;
  }));
  rec_b.snapshot(events);
  EXPECT_TRUE(std::any_of(events.begin(), events.end(), [](const TraceEvent& e) {
    return e.kind == EventKind::kCheckpointLoad;
  }));
}

// --------------------------------------------------- degradation fairness

TEST(ObsIntegration, BudgetRotationRotatesTheDegradedFibers) {
  // Homogeneous slot: every fiber holds 8 requests, so each costs the same
  // d*k = 24 exact ops. A budget of two exact ports must degrade the OTHER
  // two — and which two must rotate with SlotBudget::rotation, so sustained
  // overload does not always sacrifice the low-numbered fibers.
  const std::int32_t n = 4;
  const std::int32_t k = 8;
  const auto scheme = core::ConversionScheme::circular(k, 1, 1);  // d = 3

  std::vector<core::SlotRequest> requests;
  for (std::int32_t fiber = 0; fiber < n; ++fiber) {
    for (std::int32_t w = 0; w < k; ++w) {
      requests.push_back(core::SlotRequest{
          w % n, w, fiber, static_cast<std::uint64_t>(requests.size() + 1), 1,
          0});
    }
  }

  for (std::int32_t rot = 0; rot < n; ++rot) {
    core::DistributedScheduler sched(n, scheme,
                                     core::Algorithm::kBreakFirstAvailable,
                                     core::Arbitration::kRoundRobin, 5);
    TraceRecorder rec(TraceDetail::kFibers);
    sched.set_telemetry(&rec);
    sched.set_trace_slot(static_cast<std::uint64_t>(rot));

    core::SlotBudget budget;
    budget.op_budget = 2ull * static_cast<std::uint64_t>(scheme.degree()) *
                       static_cast<std::uint64_t>(k);
    budget.rotation = rot;
    std::vector<core::PortDecision> decisions(requests.size());
    sched.schedule_slot_into(requests, core::AvailabilityView{}, nullptr,
                             nullptr, decisions, &budget);
    EXPECT_EQ(budget.degraded_ports, 2) << "rotation " << rot;

    std::set<std::int32_t> degraded;
    std::vector<TraceEvent> events;
    rec.snapshot(events);
    for (const auto& e : events) {
      if (e.kind == EventKind::kFiberSchedule && e.detail != 0) {
        degraded.insert(e.fiber);
      }
    }
    const std::set<std::int32_t> expected{(rot + 2) % n, (rot + 3) % n};
    EXPECT_EQ(degraded, expected) << "rotation " << rot;
  }
}

TEST(ObsIntegration, RotationNeverChangesHowManyPortsDegrade) {
  // Heterogeneous slots: rotation reorders who is charged first, which may
  // shift WHICH ports degrade, but the grants must stay a valid matching and
  // the schedule must stay deterministic for a fixed rotation.
  util::Rng rng(0xB0B);
  const auto scheme = core::ConversionScheme::circular(8, 1, 1);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<core::SlotRequest> requests;
    for (std::int32_t fiber = 0; fiber < 6; ++fiber) {
      for (std::int32_t w = 0; w < 8; ++w) {
        if (rng.bernoulli(0.6)) {
          requests.push_back(core::SlotRequest{
              0, w, fiber, static_cast<std::uint64_t>(requests.size() + 1), 1,
              0});
        }
      }
    }
    for (const std::int32_t rot : {1, 4}) {
      core::DistributedScheduler a(6, scheme,
                                   core::Algorithm::kBreakFirstAvailable,
                                   core::Arbitration::kRoundRobin, 3);
      core::DistributedScheduler b(6, scheme,
                                   core::Algorithm::kBreakFirstAvailable,
                                   core::Arbitration::kRoundRobin, 3);
      core::SlotBudget budget_a;
      core::SlotBudget budget_b;
      budget_a.op_budget = budget_b.op_budget = 60;
      budget_a.rotation = budget_b.rotation = rot;
      std::vector<core::PortDecision> da(requests.size());
      std::vector<core::PortDecision> db(requests.size());
      a.schedule_slot_into(requests, core::AvailabilityView{}, nullptr,
                           nullptr, da, &budget_a);
      b.schedule_slot_into(requests, core::AvailabilityView{}, nullptr,
                           nullptr, db, &budget_b);
      EXPECT_EQ(budget_a.degraded_ports, budget_b.degraded_ports);
      for (std::size_t i = 0; i < requests.size(); ++i) {
        ASSERT_EQ(da[i].granted, db[i].granted) << "trial " << trial;
        ASSERT_EQ(da[i].channel, db[i].channel) << "trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace wdm
