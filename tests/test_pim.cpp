// PIM-style iterative matching: validity, convergence with rounds, and the
// optimality gap against the exact schedulers.
#include <gtest/gtest.h>

#include "core/pim.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using core::RequestVector;

TEST(Pim, ProducesValidAssignments) {
  util::Rng rng(1212);
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  for (int trial = 0; trial < 60; ++trial) {
    const auto rv = test::random_request_vector(rng, 8, 4, 0.4);
    const auto mask = test::random_mask(rng, 8, 0.7);
    const auto out = core::pim_schedule(rv, scheme, 2, rng, mask);
    test::expect_valid_assignment(out, rv, scheme, mask);
    EXPECT_LE(out.granted, test::oracle_max_matching(scheme, rv, mask));
  }
}

TEST(Pim, NeverExceedsAndUsuallyTrailsExact) {
  util::Rng rng(1313);
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  std::int64_t pim_total = 0, exact_total = 0;
  for (int trial = 0; trial < 150; ++trial) {
    const auto rv = test::random_request_vector(rng, 8, 6, 0.5);
    pim_total += core::pim_schedule(rv, scheme, 1, rng).granted;
    exact_total += test::oracle_max_matching(scheme, rv);
  }
  EXPECT_LT(pim_total, exact_total);            // one round is lossy
  EXPECT_GT(pim_total * 2, exact_total);        // but not catastrophically
}

TEST(Pim, MoreIterationsNeverHurtOnAverage) {
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  std::int64_t totals[3] = {};
  for (int trial = 0; trial < 200; ++trial) {
    util::Rng traffic(static_cast<std::uint64_t>(trial) + 5000);
    const auto rv = test::random_request_vector(traffic, 8, 6, 0.5);
    std::int32_t rounds_idx = 0;
    for (const std::int32_t rounds : {1, 2, 4}) {
      util::Rng rng(static_cast<std::uint64_t>(trial) * 7 + 1);
      totals[rounds_idx++] +=
          core::pim_schedule(rv, scheme, rounds, rng).granted;
    }
  }
  EXPECT_LE(totals[0], totals[1]);
  EXPECT_LE(totals[1], totals[2]);
}

TEST(Pim, ConvergesToMaximalMatching) {
  // With many rounds the result is maximal: no unmatched request has a free
  // admissible channel left.
  util::Rng rng(1414);
  const auto scheme = ConversionScheme::circular(8, 2, 1);
  for (int trial = 0; trial < 40; ++trial) {
    const auto rv = test::random_request_vector(rng, 8, 4, 0.5);
    const auto out = core::pim_schedule(rv, scheme, 32, rng);
    const auto grants = out.grants_per_wavelength();
    for (core::Wavelength w = 0; w < 8; ++w) {
      if (grants[static_cast<std::size_t>(w)] >= rv.count(w)) continue;
      // Some request of w is unmatched: every admissible channel must be
      // taken (else another round would have matched it).
      for (const core::Channel v : scheme.adjacency_list(w)) {
        EXPECT_NE(out.source[static_cast<std::size_t>(v)], core::kNone)
            << "free admissible channel " << v << " left for wavelength " << w;
      }
    }
  }
}

TEST(Pim, FullyAvailableSingleRequestAlwaysWins) {
  util::Rng rng(1515);
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  RequestVector rv(6);
  rv.add(2);
  const auto out = core::pim_schedule(rv, scheme, 1, rng);
  EXPECT_EQ(out.granted, 1);
}

TEST(Pim, InvalidInputsRejected) {
  util::Rng rng(1);
  const auto scheme = ConversionScheme::circular(4, 1, 1);
  EXPECT_THROW(core::pim_schedule(RequestVector(4), scheme, 0, rng),
               std::logic_error);
  EXPECT_THROW(core::pim_schedule(RequestVector(5), scheme, 1, rng),
               std::logic_error);
}

}  // namespace
}  // namespace wdm
