// Asynchronous FCFS wavelength-routing mode: Erlang-B corner validation,
// monotonicity, determinism, and policy behaviour.
#include <gtest/gtest.h>

#include "sim/async.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using sim::AsyncConfig;
using sim::FitPolicy;

TEST(ErlangB, KnownValues) {
  // B(1, a) = a / (1 + a).
  EXPECT_NEAR(sim::erlang_b(1, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(sim::erlang_b(1, 0.25), 0.2, 1e-12);
  // Textbook value: B(5, 3) ≈ 0.11005.
  EXPECT_NEAR(sim::erlang_b(5, 3.0), 0.11005, 1e-4);
  // Degenerate cases.
  EXPECT_DOUBLE_EQ(sim::erlang_b(0, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(sim::erlang_b(4, 0.0), 0.0);
  // Monotone: more servers, less blocking; more load, more blocking.
  EXPECT_LT(sim::erlang_b(6, 3.0), sim::erlang_b(5, 3.0));
  EXPECT_LT(sim::erlang_b(5, 2.0), sim::erlang_b(5, 3.0));
}

TEST(Async, DeterministicForSeed) {
  AsyncConfig cfg;
  cfg.arrivals = 20000;
  cfg.warmup = 2000;
  const auto a = sim::run_async_simulation(cfg);
  const auto b = sim::run_async_simulation(cfg);
  EXPECT_EQ(a.blocked, b.blocked);
  EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(Async, NoConversionMatchesErlangB1) {
  // d = 1: every output channel is an independent M/M/1/1 loss system with
  // offered traffic = per-channel load (uniform wavelength & destination
  // sampling spreads total arrivals evenly over the N*k channels).
  AsyncConfig cfg;
  cfg.n_fibers = 4;
  cfg.scheme = ConversionScheme::circular(6, 0, 0);
  cfg.load = 0.6;
  cfg.arrivals = 300000;
  cfg.warmup = 30000;
  cfg.seed = 9;
  const auto r = sim::run_async_simulation(cfg);
  const double expected = sim::erlang_b(1, 0.6);
  EXPECT_NEAR(r.blocking_probability, expected, 0.01);
}

TEST(Async, FullRangeMatchesErlangBk) {
  // Full range: a destination fiber pools its k channels — M/M/k/k with
  // offered traffic k * load.
  AsyncConfig cfg;
  cfg.n_fibers = 4;
  cfg.scheme = ConversionScheme::full_range(6);
  cfg.load = 0.8;
  cfg.arrivals = 300000;
  cfg.warmup = 30000;
  cfg.seed = 11;
  const auto r = sim::run_async_simulation(cfg);
  const double expected = sim::erlang_b(6, 6 * 0.8);
  EXPECT_NEAR(r.blocking_probability, expected, 0.01);
}

TEST(Async, BlockingMonotoneInLoadAndDegree) {
  AsyncConfig cfg;
  cfg.arrivals = 60000;
  cfg.warmup = 6000;
  cfg.scheme = ConversionScheme::circular(8, 1, 1);
  cfg.load = 0.4;
  const auto light = sim::run_async_simulation(cfg);
  cfg.load = 0.9;
  const auto heavy = sim::run_async_simulation(cfg);
  EXPECT_LT(light.blocking_probability, heavy.blocking_probability);

  cfg.load = 0.7;
  cfg.scheme = ConversionScheme::circular(8, 0, 0);
  const auto d1 = sim::run_async_simulation(cfg);
  cfg.scheme = ConversionScheme::circular(8, 1, 1);
  const auto d3 = sim::run_async_simulation(cfg);
  cfg.scheme = ConversionScheme::full_range(8);
  const auto full = sim::run_async_simulation(cfg);
  EXPECT_GT(d1.blocking_probability, d3.blocking_probability);
  EXPECT_GE(d3.blocking_probability, full.blocking_probability - 0.005);
}

TEST(Async, RandomFitCloseToFirstFit) {
  // Both policies are work-conserving single-request placements; their
  // blocking differs only via packing effects, which are small here.
  AsyncConfig cfg;
  cfg.scheme = ConversionScheme::circular(8, 1, 1);
  cfg.load = 0.7;
  cfg.arrivals = 80000;
  cfg.warmup = 8000;
  cfg.policy = FitPolicy::kFirstFit;
  const auto first = sim::run_async_simulation(cfg);
  cfg.policy = FitPolicy::kRandomFit;
  const auto random = sim::run_async_simulation(cfg);
  EXPECT_NEAR(first.blocking_probability, random.blocking_probability, 0.02);
}

TEST(Async, UtilizationConsistent) {
  // Carried load = offered * (1 - blocking); utilization per channel should
  // match carried load per channel (PASTA / work conservation).
  AsyncConfig cfg;
  cfg.scheme = ConversionScheme::circular(8, 1, 1);
  cfg.load = 0.6;
  cfg.arrivals = 150000;
  cfg.warmup = 15000;
  const auto r = sim::run_async_simulation(cfg);
  EXPECT_NEAR(r.utilization, 0.6 * (1.0 - r.blocking_probability), 0.02);
}

TEST(Async, InvalidConfigRejected) {
  AsyncConfig cfg;
  cfg.arrivals = 0;
  EXPECT_THROW(sim::run_async_simulation(cfg), std::logic_error);
  AsyncConfig cfg2;
  cfg2.mean_holding = 0.0;
  EXPECT_THROW(sim::run_async_simulation(cfg2), std::logic_error);
}

}  // namespace
}  // namespace wdm
