// Cross-validation of the two generic maximum-matching oracles.
//
// Hopcroft–Karp and Kuhn's algorithm are implemented independently; they
// must agree on the maximum matching *size* of any bipartite graph. These
// are the oracles every scheduler property test leans on, so they get their
// own adversarial coverage (including König-style certificates on known
// graphs).
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/hopcroft_karp.hpp"
#include "graph/kuhn.hpp"
#include "util/rng.hpp"

namespace wdm {
namespace {

TEST(Oracles, EmptyGraph) {
  const graph::BipartiteGraph g(4, 4);
  EXPECT_EQ(graph::hopcroft_karp(g).size(), 0u);
  EXPECT_EQ(graph::kuhn_matching(g).size(), 0u);
}

TEST(Oracles, PerfectMatchingOnIdentity) {
  graph::BipartiteGraph g(5, 5);
  for (graph::VertexId i = 0; i < 5; ++i) g.add_edge(i, i);
  EXPECT_EQ(graph::hopcroft_karp(g).size(), 5u);
  EXPECT_EQ(graph::kuhn_matching(g).size(), 5u);
}

TEST(Oracles, CompleteBipartite) {
  graph::BipartiteGraph g(3, 7);
  for (graph::VertexId a = 0; a < 3; ++a) {
    for (graph::VertexId b = 0; b < 7; ++b) g.add_edge(a, b);
  }
  EXPECT_EQ(graph::hopcroft_karp(g).size(), 3u);  // min(3, 7)
}

TEST(Oracles, AugmentingPathRequired) {
  // Classic instance where a greedy pass gets stuck at 2 but the maximum is
  // 3: a0-{b0,b1}, a1-{b0}, a2-{b1,b2}... force a chain of augmentations.
  graph::BipartiteGraph g(3, 3);
  g.add_edge(0, 0);
  g.add_edge(0, 1);
  g.add_edge(1, 0);
  g.add_edge(2, 1);
  g.add_edge(2, 2);
  const auto m = graph::hopcroft_karp(g);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(graph::is_valid_matching(g, m));
}

TEST(Oracles, KoenigCertificateStar) {
  // A star: one left vertex adjacent to all rights → max matching 1.
  graph::BipartiteGraph g(1, 6);
  for (graph::VertexId b = 0; b < 6; ++b) g.add_edge(0, b);
  EXPECT_EQ(graph::hopcroft_karp(g).size(), 1u);

  // Many lefts, one right.
  graph::BipartiteGraph h(6, 1);
  for (graph::VertexId a = 0; a < 6; ++a) h.add_edge(a, 0);
  EXPECT_EQ(graph::hopcroft_karp(h).size(), 1u);
}

TEST(Oracles, AgreeOnRandomGraphs) {
  util::Rng rng(314);
  for (int trial = 0; trial < 150; ++trial) {
    const auto n_left = static_cast<graph::VertexId>(1 + rng.uniform_below(20));
    const auto n_right = static_cast<graph::VertexId>(1 + rng.uniform_below(20));
    const double p = rng.uniform01() * 0.4;
    const auto g = graph::random_bipartite(rng, n_left, n_right, p);
    const auto hk = graph::hopcroft_karp(g);
    const auto kuhn = graph::kuhn_matching(g);
    EXPECT_TRUE(graph::is_valid_matching(g, hk));
    EXPECT_TRUE(graph::is_valid_matching(g, kuhn));
    EXPECT_EQ(hk.size(), kuhn.size()) << "trial " << trial;
  }
}

TEST(Oracles, AgreeOnDenseGraphs) {
  util::Rng rng(2718);
  for (int trial = 0; trial < 30; ++trial) {
    const auto g = graph::random_bipartite(rng, 25, 25, 0.8);
    EXPECT_EQ(graph::hopcroft_karp(g).size(), graph::kuhn_matching(g).size());
  }
}

TEST(Oracles, MatchingNeverExceedsEitherSide) {
  util::Rng rng(999);
  for (int trial = 0; trial < 50; ++trial) {
    const auto n_left = static_cast<graph::VertexId>(1 + rng.uniform_below(12));
    const auto n_right = static_cast<graph::VertexId>(1 + rng.uniform_below(12));
    const auto g = graph::random_bipartite(rng, n_left, n_right, 0.5);
    const auto m = graph::hopcroft_karp(g);
    EXPECT_LE(m.size(), static_cast<std::size_t>(std::min(n_left, n_right)));
  }
}

}  // namespace
}  // namespace wdm
