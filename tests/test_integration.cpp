// Cross-module integration: every scheduling algorithm drives the same
// simulated interconnect and must agree with the maximum-matching baseline
// slot by slot; the hardware model rides along as a shadow of the software
// path.
#include <gtest/gtest.h>

#include "core/distributed.hpp"
#include "hw/hw_scheduler.hpp"
#include "sim/simulation.hpp"
#include "test_support.hpp"

namespace wdm {
namespace {

using core::Algorithm;
using core::ConversionScheme;
using core::SlotRequest;

TEST(Integration, FastAlgorithmsMatchBaselineThroughputInSimulation) {
  // Same seed, same traffic; the fast scheduler and the Hopcroft–Karp
  // baseline must grant the same number of requests in every slot (matching
  // sizes are unique even when assignments differ).
  for (const bool circular : {true, false}) {
    sim::SimulationConfig fast;
    fast.interconnect.n_fibers = 4;
    fast.interconnect.scheme = circular
                                   ? ConversionScheme::circular(6, 1, 1)
                                   : ConversionScheme::non_circular(6, 1, 1);
    fast.interconnect.algorithm = Algorithm::kAuto;
    fast.traffic.load = 0.7;
    fast.slots = 800;
    fast.warmup = 100;
    fast.seed = 13;

    sim::SimulationConfig baseline = fast;
    baseline.interconnect.algorithm = Algorithm::kHopcroftKarp;

    const auto a = sim::run_simulation(fast);
    const auto b = sim::run_simulation(baseline);
    EXPECT_EQ(a.arrivals, b.arrivals);
    EXPECT_EQ(a.losses, b.losses) << (circular ? "circular" : "non-circular");
  }
}

TEST(Integration, HwShadowsDistributedSchedulerAcrossSlots) {
  // Feed identical multi-slot traffic to the software distributed scheduler
  // and one hardware port; compare grant counts for the watched fiber.
  const auto scheme = ConversionScheme::circular(8, 1, 1);
  const std::int32_t n_fibers = 3;
  const std::int32_t watched = 1;
  core::DistributedScheduler sw(n_fibers, scheme, Algorithm::kAuto,
                                core::Arbitration::kFifo, 3);
  hw::HwPortScheduler hw_port(scheme, n_fibers);
  util::Rng rng(21);

  for (int slot = 0; slot < 60; ++slot) {
    std::vector<SlotRequest> arrivals;
    std::vector<core::Request> watched_requests;
    std::uint64_t id = 0;
    for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
      for (core::Wavelength w = 0; w < 8; ++w) {
        if (!rng.bernoulli(0.4)) continue;
        const auto dest =
            static_cast<std::int32_t>(rng.uniform_below(n_fibers));
        arrivals.push_back(SlotRequest{fib, w, dest, id++, 1});
        if (dest == watched) {
          watched_requests.push_back(core::Request{fib, w, id, 1});
        }
      }
    }
    const auto decisions = sw.schedule_slot(arrivals);
    std::int32_t sw_granted = 0;
    for (std::size_t i = 0; i < arrivals.size(); ++i) {
      if (arrivals[i].output_fiber == watched && decisions[i].granted) {
        sw_granted += 1;
      }
    }
    hw_port.load(watched_requests);
    const auto hw_grants = hw_port.run();
    EXPECT_EQ(static_cast<std::int32_t>(hw_grants.size()), sw_granted)
        << "slot " << slot;
  }
}

TEST(Integration, ApproxLossStaysCloseToExactInSimulation) {
  sim::SimulationConfig exact;
  exact.interconnect.n_fibers = 4;
  exact.interconnect.scheme = ConversionScheme::circular(8, 2, 2);  // d = 5
  exact.traffic.load = 0.8;
  exact.slots = 1500;
  exact.warmup = 200;
  exact.seed = 31;

  sim::SimulationConfig approx = exact;
  approx.interconnect.algorithm = Algorithm::kApproxBfa;

  const auto e = sim::run_simulation(exact);
  const auto a = sim::run_simulation(approx);
  EXPECT_GE(a.loss_probability, e.loss_probability - 1e-9);
  // Theorem 3 keeps the approximation within (d-1)/2 per fiber-slot; in
  // aggregate the loss degradation is small.
  EXPECT_LT(a.loss_probability - e.loss_probability, 0.08);
}

TEST(Integration, CircularBeatsNonCircularAtEqualDegree) {
  // Circular conversion has no disadvantaged edge wavelengths, so at equal
  // degree its loss is at most the non-circular one's (plus noise).
  sim::SimulationConfig circ;
  circ.interconnect.n_fibers = 4;
  circ.interconnect.scheme = ConversionScheme::circular(8, 1, 1);
  circ.traffic.load = 0.85;
  circ.slots = 4000;
  circ.warmup = 400;
  circ.seed = 17;

  sim::SimulationConfig nc = circ;
  nc.interconnect.scheme = ConversionScheme::non_circular(8, 1, 1);

  const auto c = sim::run_simulation(circ);
  const auto n = sim::run_simulation(nc);
  EXPECT_LT(c.loss_probability, n.loss_probability + 0.01);
}

}  // namespace
}  // namespace wdm
