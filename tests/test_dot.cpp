// DOT export: structural checks on the generated Graphviz source.
#include <gtest/gtest.h>

#include "core/break_first_available.hpp"
#include "core/dot.hpp"

namespace wdm {
namespace {

using core::ConversionScheme;
using core::RequestGraph;
using core::RequestVector;

TEST(Dot, ConversionGraphContainsAllEdges) {
  const auto scheme = ConversionScheme::circular(4, 1, 0);
  const auto dot = core::conversion_graph_dot(scheme);
  EXPECT_NE(dot.find("graph conversion"), std::string::npos);
  // λ0 -> {λ3, λ0}: the wrap edge must be present.
  EXPECT_NE(dot.find("in0 -- out3"), std::string::npos);
  EXPECT_NE(dot.find("in0 -- out0"), std::string::npos);
  EXPECT_EQ(dot.find("in0 -- out1"), std::string::npos);
  // Every wavelength appears on both sides.
  for (int w = 0; w < 4; ++w) {
    EXPECT_NE(dot.find("in" + std::to_string(w) + " "), std::string::npos);
    EXPECT_NE(dot.find("out" + std::to_string(w) + " "), std::string::npos);
  }
}

TEST(Dot, RequestGraphMarksOccupiedChannelsAndMatching) {
  const auto scheme = ConversionScheme::circular(6, 1, 1);
  const RequestVector rv{2, 1, 0, 1, 1, 2};
  std::vector<std::uint8_t> mask{1, 1, 1, 1, 1, 0};  // b5 occupied
  const RequestGraph g(scheme, rv, mask);

  const auto assignment = core::break_first_available(rv, scheme, mask);
  const auto matching = core::assignment_to_matching(g, assignment);
  const auto dot = core::request_graph_dot(g, &matching);

  EXPECT_NE(dot.find("graph request_graph"), std::string::npos);
  // Occupied channel rendered dashed.
  EXPECT_NE(dot.find("b5 [label=\"b5\", shape=doublecircle, style=dashed]"),
            std::string::npos);
  // Exactly `granted` bold edges.
  std::size_t bold = 0, pos = 0;
  while ((pos = dot.find("penwidth=3", pos)) != std::string::npos) {
    bold += 1;
    pos += 1;
  }
  EXPECT_EQ(bold, static_cast<std::size_t>(assignment.granted));
  // A request label carries its wavelength.
  EXPECT_NE(dot.find("a0 (λ0)"), std::string::npos);
}

TEST(Dot, AssignmentToMatchingValidatesShape) {
  const auto scheme = ConversionScheme::circular(4, 1, 1);
  const RequestVector rv{1, 0, 0, 0};
  const RequestGraph g(scheme, rv);
  core::ChannelAssignment bogus(4);
  bogus.source[0] = 0;
  bogus.source[1] = 0;  // two channels claim wavelength 0: only one request
  bogus.granted = 2;
  EXPECT_THROW(core::assignment_to_matching(g, bogus), std::logic_error);
}

TEST(Dot, MatchingShapeMismatchRejected) {
  const auto scheme = ConversionScheme::circular(4, 1, 1);
  const RequestGraph g(scheme, RequestVector{1, 0, 0, 0});
  const graph::Matching wrong(2, 4);  // graph has 1 request
  EXPECT_THROW(core::request_graph_dot(g, &wrong), std::logic_error);
}

}  // namespace
}  // namespace wdm
