// Differential oracle fuzzer for the scheduling kernels.
//
// Two modes, combinable in one invocation:
//
//  * random (--cases N): N random (scheme, request-vector, mask) instances,
//    spanning circular and non-circular conversion, every degree up to k,
//    empty and random availability masks. Each instance runs the
//    scheme-appropriate kernel (First Available, Break-and-First-Available
//    serial and pooled, the full-range rule) and must match the
//    Hopcroft–Karp maximum on the explicit request graph exactly; the
//    single-break approximation must stay within its Theorem-3 gap bound.
//    Every non-full-range instance additionally runs the masked (packed
//    64-bit word) kernels of docs/ALGORITHMS.md §9 and must reproduce the
//    scalar assignment bit for bit — so the exhaustive small-k enumeration
//    below is also a proof-by-enumeration that the SIMD path is exact.
//    A slice of cases additionally runs DistributedScheduler::schedule_slot
//    end-to-end with malformed requests injected, asserting the rejection
//    contract: no decision leaves as kUndecided, granted ⇔ kGranted,
//    malformed inputs are rejected with a malformed reason and never
//    disturb the matching granted to well-formed requests.
//
//  * exhaustive (--exhaustive-k K): every scheme kind, every (e, f) split
//    with e + f + 1 <= k, every request vector with counts in {0, 1, 2},
//    and every availability mask, for each k = 1..K. For small k this is a
//    complete proof-by-enumeration that the O(k)/O(dk) kernels are maximum.
//
// Fault injection (PR 2) extends both modes: with --fault-prob > 0 a slice
// of random instances also carries a random core::HealthMask (converter,
// channel, and fiber faults), and --exhaustive-faults-k K enumerates every
// per-channel health vector in {healthy, converter-faulted,
// channel-faulted}^k (plus the fiber cut) against every request vector with
// counts in {0, 1, 2}. In both, the production fault reduction
// (core::apply_health + the healthy-instance kernels, pre-grants folded
// back) must match Hopcroft–Karp on the explicit *fault-reduced* request
// graph exactly — the degraded schedule stays a maximum matching on the
// surviving graph.
//
// Exit status is the number of failing instances (0 = clean), so the binary
// drops straight into ctest and the sanitizer CI jobs.
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/break_first_available.hpp"
#include "core/distributed.hpp"
#include "core/first_available.hpp"
#include "core/health.hpp"
#include "core/priority.hpp"
#include "core/request_graph.hpp"
#include "core/wave_mask.hpp"
#include "graph/hopcroft_karp.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"

namespace wdm::oracle {
namespace {

using core::ConversionKind;
using core::ConversionScheme;
using core::RequestVector;

struct Stats {
  std::uint64_t instances = 0;
  std::uint64_t failures = 0;
  std::uint64_t distributed_slots = 0;
  std::uint64_t health_instances = 0;
};

/// Prints one instance compactly so a failure is reproducible by hand.
std::string describe(const ConversionScheme& scheme, const RequestVector& rv,
                     const std::vector<std::uint8_t>& mask) {
  std::string out = scheme.kind() == ConversionKind::kCircular ? "circ" : "noncirc";
  out += " k=" + std::to_string(scheme.k()) + " e=" + std::to_string(scheme.e()) +
         " f=" + std::to_string(scheme.f()) + " rv=[";
  for (core::Wavelength w = 0; w < rv.k(); ++w) {
    if (w > 0) out += ",";
    out += std::to_string(rv.count(w));
  }
  out += "] mask=[";
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(static_cast<int>(mask[i]));
  }
  out += "]";
  return out;
}

bool fail(Stats& stats, const std::string& what, const ConversionScheme& scheme,
          const RequestVector& rv, const std::vector<std::uint8_t>& mask) {
  stats.failures += 1;
  std::cerr << "FAIL: " << what << " @ " << describe(scheme, rv, mask) << "\n";
  return false;
}

/// Feasibility of a kernel result: free channels only, legal conversions,
/// no wavelength over-granted, `granted` consistent with `source`.
bool assignment_valid(const core::ChannelAssignment& a, const RequestVector& rv,
                      const ConversionScheme& scheme,
                      const std::vector<std::uint8_t>& mask) {
  if (a.k() != scheme.k()) return false;
  std::int32_t granted = 0;
  std::vector<std::int32_t> used(static_cast<std::size_t>(scheme.k()), 0);
  for (core::Channel u = 0; u < scheme.k(); ++u) {
    const core::Wavelength w = a.source[static_cast<std::size_t>(u)];
    if (w == core::kNone) continue;
    granted += 1;
    if (w < 0 || w >= scheme.k()) return false;
    if (!scheme.can_convert(w, u)) return false;
    if (!mask.empty() && mask[static_cast<std::size_t>(u)] == 0) return false;
    used[static_cast<std::size_t>(w)] += 1;
  }
  if (granted != a.granted) return false;
  for (core::Wavelength w = 0; w < scheme.k(); ++w) {
    if (used[static_cast<std::size_t>(w)] > rv.count(w)) return false;
  }
  return true;
}

/// One differential check: scheme kernel(s) vs the Hopcroft–Karp maximum on
/// the explicit request graph. Returns true if the instance is clean.
bool check_instance(Stats& stats, const ConversionScheme& scheme,
                    const RequestVector& rv,
                    const std::vector<std::uint8_t>& mask,
                    util::ThreadPool* pool) {
  stats.instances += 1;
  const core::RequestGraph g(scheme, rv, mask);
  const auto maximum =
      static_cast<std::int32_t>(graph::hopcroft_karp(g.to_bipartite()).size());

  // Scheme-appropriate exact kernel (FA / BFA / full-range dispatch).
  const auto kernel = core::assign_maximum(rv, scheme, mask);
  if (!assignment_valid(kernel, rv, scheme, mask)) {
    return fail(stats, "kernel produced an infeasible assignment", scheme, rv, mask);
  }
  if (kernel.granted != maximum) {
    return fail(stats,
                "kernel granted " + std::to_string(kernel.granted) +
                    " != maximum " + std::to_string(maximum),
                scheme, rv, mask);
  }

  // Masked kernels (docs/ALGORITHMS.md §9): pack the same instance into the
  // 64-bit word layout and demand the identical assignment — same source
  // array, not just the same cardinality. Full-range schemes dispatch to the
  // full-range rule, which has no masked variant.
  const bool check_masked = !scheme.is_full_range();
  std::vector<std::uint64_t> avail_words;
  std::vector<std::uint64_t> nonempty_words;
  if (check_masked) {
    avail_words.assign(core::mask_words(scheme.k()), 0);
    nonempty_words.assign(core::mask_words(scheme.k()), 0);
    core::pack_availability(mask, scheme.k(), avail_words.data());
    for (core::Wavelength w = 0; w < scheme.k(); ++w) {
      if (rv.count(w) > 0) core::mask_set(nonempty_words.data(), w);
    }
    core::ChannelAssignment masked(scheme.k());
    if (scheme.kind() == ConversionKind::kNonCircular) {
      core::first_available_masked_into(rv, scheme, avail_words,
                                        nonempty_words, masked);
    } else {
      core::BfaScratch scratch;
      core::break_first_available_masked_into(
          rv, scheme, avail_words, nonempty_words, pool, scratch, masked);
    }
    if (masked.granted != kernel.granted || masked.source != kernel.source) {
      return fail(stats, "masked kernel diverged from the scalar result",
                  scheme, rv, mask);
    }
  }

  if (scheme.kind() == ConversionKind::kCircular && !scheme.is_full_range()) {
    // Pooled BFA must agree with the serial result exactly.
    if (pool != nullptr) {
      const auto pooled = core::break_first_available(rv, scheme, mask, pool);
      if (pooled.granted != maximum || pooled.source != kernel.source) {
        return fail(stats, "pooled BFA diverged from serial", scheme, rv, mask);
      }
    }
    // Theorem 3: the single-break approximation stays within its bound.
    const auto approx = core::approx_break_first_available(rv, scheme, mask);
    // The masked approximation must pick the same break edge and produce the
    // same schedule as the scalar one.
    {
      core::ChannelAssignment approx_masked(scheme.k());
      const core::Channel bc = core::approx_break_first_available_masked_into(
          rv, scheme, avail_words, nonempty_words, approx_masked);
      if (bc != approx.break_channel ||
          (bc != core::kNone &&
           approx_masked.source != approx.assignment.source)) {
        return fail(stats, "masked approx BFA diverged from the scalar result",
                    scheme, rv, mask);
      }
    }
    if (approx.break_channel != core::kNone) {
      if (!assignment_valid(approx.assignment, rv, scheme, mask)) {
        return fail(stats, "approx BFA produced an infeasible assignment",
                    scheme, rv, mask);
      }
      if (maximum - approx.assignment.granted > approx.gap_bound) {
        return fail(stats,
                    "approx BFA gap " +
                        std::to_string(maximum - approx.assignment.granted) +
                        " exceeds bound " + std::to_string(approx.gap_bound),
                    scheme, rv, mask);
      }
    } else if (maximum != 0) {
      return fail(stats, "approx BFA found nothing schedulable but maximum > 0",
                  scheme, rv, mask);
    }
  }
  return true;
}

std::string describe_health(const core::HealthMask& health) {
  if (health.fiber_faulted) return "health=FIBER-CUT";
  std::string out = "health=[";
  for (std::size_t u = 0; u < health.channels.size(); ++u) {
    if (u > 0) out += ",";
    switch (health.channels[u]) {
      case core::ChannelHealth::kHealthy: out += "h"; break;
      case core::ChannelHealth::kConverterFaulted: out += "C"; break;
      case core::ChannelHealth::kChannelFaulted: out += "X"; break;
    }
  }
  return out + "]";
}

core::HealthMask random_health(util::Rng& rng, std::int32_t k) {
  core::HealthMask health = core::HealthMask::healthy(k);
  health.fiber_faulted = rng.bernoulli(0.1);
  for (auto& ch : health.channels) {
    const double u = rng.uniform01();
    ch = u < 0.15   ? core::ChannelHealth::kConverterFaulted
         : u < 0.30 ? core::ChannelHealth::kChannelFaulted
                    : core::ChannelHealth::kHealthy;
  }
  return health;
}

/// Degraded-mode differential check: the production fault reduction
/// (core::apply_health + the healthy-instance kernels, pre-grants folded
/// back) vs Hopcroft–Karp on the explicit fault-reduced request graph.
bool check_instance_health(Stats& stats, const ConversionScheme& scheme,
                           const RequestVector& rv,
                           const std::vector<std::uint8_t>& mask,
                           const core::HealthMask& health,
                           util::ThreadPool* pool) {
  stats.instances += 1;
  stats.health_instances += 1;
  const auto report = [&](const std::string& what) {
    return fail(stats, what + " @ " + describe_health(health), scheme, rv, mask);
  };

  // Ground truth: HK maximum on the explicit fault-reduced request graph.
  const core::RequestGraph g(scheme, rv, mask, health);
  const auto maximum =
      static_cast<std::int32_t>(graph::hopcroft_karp(g.to_bipartite()).size());

  if (health.fiber_faulted) {
    // A cut fiber has no surviving edges; the production path rejects with
    // kFaulted before any kernel runs, so only the graph is checked here.
    return maximum == 0 ? true : report("cut fiber has nonzero maximum");
  }

  const auto red = core::apply_health(rv, mask, health);
  const auto kernel = core::assign_maximum(red.requests, scheme, red.availability);
  if (!assignment_valid(kernel, red.requests, scheme, red.availability)) {
    return report("reduced kernel produced an infeasible assignment");
  }
  for (core::Channel u = 0; u < scheme.k(); ++u) {
    const bool pre = red.pre_granted[static_cast<std::size_t>(u)] != 0;
    if (pre && kernel.source[static_cast<std::size_t>(u)] != core::kNone) {
      return report("kernel re-granted a pre-granted channel");
    }
    if (pre) {
      // A pre-grant is only legal on a free converter-faulted channel with a
      // same-wavelength request, and consumes exactly one of them.
      if (health.channel(u) != core::ChannelHealth::kConverterFaulted ||
          (!mask.empty() && mask[static_cast<std::size_t>(u)] == 0) ||
          rv.count(u) != red.requests.count(u) + 1) {
        return report("illegal pre-grant on channel " + std::to_string(u));
      }
    }
  }
  if (kernel.granted + red.pre_grant_count != maximum) {
    return report("reduction total " +
                  std::to_string(kernel.granted + red.pre_grant_count) +
                  " != fault-reduced maximum " + std::to_string(maximum));
  }

  if (scheme.kind() == ConversionKind::kCircular && !scheme.is_full_range()) {
    const auto reduced_max = maximum - red.pre_grant_count;
    if (pool != nullptr) {
      const auto pooled =
          core::break_first_available(red.requests, scheme, red.availability, pool);
      if (pooled.granted != reduced_max || pooled.source != kernel.source) {
        return report("pooled BFA diverged on the reduced instance");
      }
    }
    const auto approx =
        core::approx_break_first_available(red.requests, scheme, red.availability);
    if (approx.break_channel != core::kNone) {
      if (!assignment_valid(approx.assignment, red.requests, scheme,
                            red.availability)) {
        return report("approx BFA infeasible on the reduced instance");
      }
      if (reduced_max - approx.assignment.granted > approx.gap_bound) {
        return report("approx BFA gap exceeds bound on the reduced instance");
      }
    } else if (reduced_max != 0) {
      return report("approx BFA found nothing but reduced maximum > 0");
    }
  }
  return true;
}

/// End-to-end slot through DistributedScheduler with malformed requests
/// injected: the decision invariants of scheduler.hpp must hold, and the
/// per-fiber grant counts must still be maximum for the well-formed subset.
/// With probability `fault_prob` the slot also carries random per-fiber
/// health masks; requests to a cut fiber must come back kFaulted (which
/// outranks field validation — nothing on a dead fiber is inspected), and
/// surviving fibers must still be maximum on their fault-reduced graphs.
bool check_distributed(Stats& stats, util::Rng& rng,
                       const ConversionScheme& scheme, double fault_prob,
                       util::ThreadPool* pool) {
  stats.distributed_slots += 1;
  const auto k = scheme.k();
  const auto n_fibers = static_cast<std::int32_t>(1 + rng.uniform_below(4));
  core::DistributedScheduler sched(n_fibers, scheme, core::Algorithm::kAuto,
                                   core::Arbitration::kFifo, rng.next());

  std::vector<core::SlotRequest> requests;
  const double load = rng.uniform01();
  std::uint64_t id = 0;
  for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
    for (core::Wavelength w = 0; w < k; ++w) {
      if (!rng.bernoulli(load)) continue;
      requests.push_back(core::SlotRequest{
          fib, w,
          static_cast<std::int32_t>(
              rng.uniform_below(static_cast<std::uint64_t>(n_fibers))),
          id++, 1, 0});
    }
  }
  // Inject malformed requests: each kind of field corruption, sometimes.
  std::size_t n_malformed = 0;
  const auto inject = [&](core::SlotRequest r) {
    requests.push_back(r);
    n_malformed += 1;
  };
  if (rng.bernoulli(0.5)) inject({0, k + 3, 0, id++, 1, 0});      // wavelength
  if (rng.bernoulli(0.5)) inject({0, -1, 0, id++, 1, 0});         // wavelength
  if (rng.bernoulli(0.5)) inject({0, 0, n_fibers + 2, id++, 1, 0});  // out fiber
  if (rng.bernoulli(0.5)) inject({0, 0, -4, id++, 1, 0});         // out fiber
  if (rng.bernoulli(0.5)) inject({-2, 0, 0, id++, 1, 0});         // in fiber
  if (rng.bernoulli(0.5)) inject({0, 0, 0, id++, 0, 0});          // duration
  if (rng.bernoulli(0.5)) inject({0, 0, 0, id++, 1, -1});         // priority

  // Optional per-fiber availability masks.
  std::vector<std::vector<std::uint8_t>> availability;
  const bool with_masks = rng.bernoulli(0.5);
  if (with_masks) {
    availability.resize(static_cast<std::size_t>(n_fibers));
    for (auto& m : availability) {
      m.resize(static_cast<std::size_t>(k));
      for (auto& bit : m) bit = rng.bernoulli(0.7) ? 1 : 0;
    }
  }

  // Optional per-fiber hardware health.
  std::vector<core::HealthMask> health;
  const bool with_health = fault_prob > 0.0 && rng.bernoulli(fault_prob);
  if (with_health) {
    health.reserve(static_cast<std::size_t>(n_fibers));
    for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
      health.push_back(random_health(rng, k));
    }
  }
  const auto fiber_cut = [&](std::int32_t fiber) {
    return with_health && fiber >= 0 && fiber < n_fibers &&
           health[static_cast<std::size_t>(fiber)].fiber_faulted;
  };

  const auto decisions = sched.schedule_slot(
      requests, with_masks ? &availability : nullptr,
      with_health ? &health : nullptr, rng.bernoulli(0.5) ? pool : nullptr);
  const auto report = [&](const std::string& what) {
    stats.failures += 1;
    std::cerr << "FAIL: distributed: " << what << " (kind="
              << (scheme.kind() == ConversionKind::kCircular ? "circ" : "noncirc")
              << " k=" << k << " e=" << scheme.e() << " f=" << scheme.f()
              << " N=" << n_fibers << " reqs=" << requests.size() << ")\n";
    return false;
  };
  if (decisions.size() != requests.size()) return report("decision count");
  const std::size_t n_valid = requests.size() - n_malformed;
  for (std::size_t i = 0; i < decisions.size(); ++i) {
    const auto& d = decisions[i];
    if (d.reason == core::RejectReason::kUndecided) {
      return report("kUndecided escaped at index " + std::to_string(i));
    }
    if (d.granted != (d.reason == core::RejectReason::kGranted)) {
      return report("granted flag disagrees with reason");
    }
    // Rejection-reason precedence: an out-of-range output fiber has no
    // health to consult; anything else destined to a cut fiber is kFaulted
    // before its fields are inspected.
    if (i >= n_valid) {  // the injected malformed tail
      const bool bad_out_fiber = requests[i].output_fiber < 0 ||
                                 requests[i].output_fiber >= n_fibers;
      if (!bad_out_fiber && fiber_cut(requests[i].output_fiber)) {
        if (d.reason != core::RejectReason::kFaulted) {
          return report("malformed request to a cut fiber not kFaulted");
        }
      } else if (d.granted || !core::is_malformed(d.reason)) {
        return report("malformed request not rejected as malformed");
      }
    } else if (fiber_cut(requests[i].output_fiber)) {
      if (d.reason != core::RejectReason::kFaulted) {
        return report("request to a cut fiber not rejected kFaulted");
      }
    } else if (core::is_malformed(d.reason)) {
      return report("well-formed request rejected as malformed");
    }
  }
  // Per-fiber grants must equal the maximum matching of the well-formed
  // subset on that fiber's (mask, health)-reduced request graph — malformed
  // riders change nothing, and a cut fiber grants nothing.
  for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
    RequestVector rv(k);
    std::int32_t granted = 0;
    for (std::size_t i = 0; i < n_valid; ++i) {
      if (requests[i].output_fiber != fib) continue;
      rv.add(requests[i].wavelength);
      granted += decisions[i].granted ? 1 : 0;
    }
    if (fiber_cut(fib)) {
      if (granted != 0) {
        return report("fiber " + std::to_string(fib) + " is cut but granted " +
                      std::to_string(granted));
      }
      continue;
    }
    std::vector<std::uint8_t> mask =
        with_masks ? availability[static_cast<std::size_t>(fib)]
                   : std::vector<std::uint8_t>{};
    const core::HealthMask fiber_health =
        with_health ? health[static_cast<std::size_t>(fib)] : core::HealthMask{};
    const core::RequestGraph g(scheme, rv, mask, fiber_health);
    const auto maximum =
        static_cast<std::int32_t>(graph::hopcroft_karp(g.to_bipartite()).size());
    if (granted != maximum) {
      return report("fiber " + std::to_string(fib) + " granted " +
                    std::to_string(granted) + " != maximum " +
                    std::to_string(maximum));
    }
  }
  return true;
}

ConversionScheme random_scheme(util::Rng& rng, std::int32_t max_k) {
  const auto k = static_cast<std::int32_t>(
      1 + rng.uniform_below(static_cast<std::uint64_t>(max_k)));
  const auto d = static_cast<std::int32_t>(
      1 + rng.uniform_below(static_cast<std::uint64_t>(k)));
  const auto e = static_cast<std::int32_t>(
      rng.uniform_below(static_cast<std::uint64_t>(d)));
  const auto f = d - 1 - e;
  return rng.bernoulli(0.5) ? ConversionScheme::circular(k, e, f)
                            : ConversionScheme::non_circular(k, e, f);
}

void run_random(Stats& stats, std::uint64_t cases, std::uint64_t seed,
                std::int32_t max_k, double fault_prob, util::ThreadPool& pool) {
  util::Rng rng(seed);
  for (std::uint64_t c = 0; c < cases; ++c) {
    const auto scheme = random_scheme(rng, max_k);
    const auto k = scheme.k();
    RequestVector rv(k);
    const auto n_fibers = static_cast<std::int32_t>(1 + rng.uniform_below(6));
    const double load = rng.uniform01();
    for (core::Wavelength w = 0; w < k; ++w) {
      for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
        if (rng.bernoulli(load)) rv.add(w);
      }
    }
    std::vector<std::uint8_t> mask;
    if (rng.bernoulli(0.5)) {
      mask.resize(static_cast<std::size_t>(k));
      const double p_free = rng.uniform01();
      for (auto& bit : mask) bit = rng.bernoulli(p_free) ? 1 : 0;
    }
    check_instance(stats, scheme, rv, mask, &pool);
    if (fault_prob > 0.0 && rng.bernoulli(fault_prob)) {
      // Same instance, degraded hardware: the reduction must stay maximum.
      check_instance_health(stats, scheme, rv, mask, random_health(rng, k),
                            &pool);
    }
    if (c % 8 == 0) check_distributed(stats, rng, scheme, fault_prob, &pool);
  }
}

void run_exhaustive(Stats& stats, std::int32_t max_k) {
  for (std::int32_t k = 1; k <= max_k; ++k) {
    for (const auto kind : {ConversionKind::kCircular, ConversionKind::kNonCircular}) {
      for (std::int32_t e = 0; e < k; ++e) {
        for (std::int32_t f = 0; e + f + 1 <= k; ++f) {
          const auto scheme = kind == ConversionKind::kCircular
                                  ? ConversionScheme::circular(k, e, f)
                                  : ConversionScheme::non_circular(k, e, f);
          // counts in {0,1,2}^k, odometer-style.
          std::vector<std::int32_t> counts(static_cast<std::size_t>(k), 0);
          for (;;) {
            RequestVector rv(k);
            for (core::Wavelength w = 0; w < k; ++w) {
              rv.add(w, counts[static_cast<std::size_t>(w)]);
            }
            // All 2^k availability masks, with 0 meaning "no mask".
            std::vector<std::uint8_t> mask(static_cast<std::size_t>(k));
            for (std::uint64_t bits = 0; bits < (1ull << k); ++bits) {
              if (bits == 0) {
                check_instance(stats, scheme, rv, {}, nullptr);
                continue;
              }
              for (std::int32_t i = 0; i < k; ++i) {
                mask[static_cast<std::size_t>(i)] =
                    (bits >> i) & 1ull ? 1 : 0;
              }
              check_instance(stats, scheme, rv, mask, nullptr);
            }
            // Odometer increment over {0,1,2}^k.
            std::size_t pos = 0;
            while (pos < counts.size() && counts[pos] == 2) counts[pos++] = 0;
            if (pos == counts.size()) break;
            counts[pos] += 1;
          }
        }
      }
    }
    std::fprintf(stderr, "exhaustive: k=%d done, %llu instances, %llu failures\n",
                 k, static_cast<unsigned long long>(stats.instances),
                 static_cast<unsigned long long>(stats.failures));
  }
}

/// Proof-by-enumeration for the fault reduction: every scheme shape, every
/// request vector with counts in {0, 1, 2}, the fiber cut, and every
/// per-channel health vector in {healthy, converter-faulted,
/// channel-faulted}^k, all channels free (channel faults subsume the
/// availability-mask sweep of run_exhaustive: both delete channels).
void run_exhaustive_faults(Stats& stats, std::int32_t max_k) {
  for (std::int32_t k = 1; k <= max_k; ++k) {
    for (const auto kind : {ConversionKind::kCircular, ConversionKind::kNonCircular}) {
      for (std::int32_t e = 0; e < k; ++e) {
        for (std::int32_t f = 0; e + f + 1 <= k; ++f) {
          const auto scheme = kind == ConversionKind::kCircular
                                  ? ConversionScheme::circular(k, e, f)
                                  : ConversionScheme::non_circular(k, e, f);
          std::vector<std::int32_t> counts(static_cast<std::size_t>(k), 0);
          for (;;) {
            RequestVector rv(k);
            for (core::Wavelength w = 0; w < k; ++w) {
              rv.add(w, counts[static_cast<std::size_t>(w)]);
            }
            core::HealthMask cut;
            cut.fiber_faulted = true;
            check_instance_health(stats, scheme, rv, {}, cut, nullptr);
            // Odometer over {healthy, converter, channel}^k.
            core::HealthMask health = core::HealthMask::healthy(k);
            std::vector<std::int32_t> states(static_cast<std::size_t>(k), 0);
            for (;;) {
              for (std::int32_t u = 0; u < k; ++u) {
                health.channels[static_cast<std::size_t>(u)] =
                    static_cast<core::ChannelHealth>(
                        states[static_cast<std::size_t>(u)]);
              }
              check_instance_health(stats, scheme, rv, {}, health, nullptr);
              std::size_t pos = 0;
              while (pos < states.size() && states[pos] == 2) states[pos++] = 0;
              if (pos == states.size()) break;
              states[pos] += 1;
            }
            std::size_t pos = 0;
            while (pos < counts.size() && counts[pos] == 2) counts[pos++] = 0;
            if (pos == counts.size()) break;
            counts[pos] += 1;
          }
        }
      }
    }
    std::fprintf(stderr,
                 "exhaustive-faults: k=%d done, %llu health instances, %llu failures\n",
                 k, static_cast<unsigned long long>(stats.health_instances),
                 static_cast<unsigned long long>(stats.failures));
  }
}

}  // namespace
}  // namespace wdm::oracle

int main(int argc, char** argv) {
  wdm::util::Cli cli("wdm_oracle_fuzz",
                     "Differential oracle fuzzer: scheme kernels vs Hopcroft-Karp");
  cli.add_option("cases", "10000", "random differential cases (0 = skip)");
  cli.add_option("seed", "1", "seed for the random mode");
  cli.add_option("max-k", "16", "largest k drawn in the random mode");
  cli.add_option("exhaustive-k", "0",
                 "enumerate every instance with counts in {0,1,2} and every "
                 "mask up to this k (0 = skip)");
  cli.add_option("fault-prob", "0.35",
                 "probability a random instance / distributed slot also runs "
                 "with a random health mask (0 = faults off)");
  cli.add_option("exhaustive-faults-k", "0",
                 "enumerate every per-channel health state in {healthy, "
                 "converter-faulted, channel-faulted} plus the fiber cut, for "
                 "counts in {0,1,2}, up to this k (0 = skip)");
  cli.add_option("threads", "3", "thread pool size for pooled-BFA checks");
  if (!cli.parse(argc, argv)) return 2;

  wdm::oracle::Stats stats;
  const auto cases = static_cast<std::uint64_t>(cli.get_int("cases"));
  if (cases > 0) {
    wdm::util::ThreadPool pool(
        static_cast<std::size_t>(cli.get_int("threads")));
    wdm::oracle::run_random(stats, cases,
                            static_cast<std::uint64_t>(cli.get_int("seed")),
                            static_cast<std::int32_t>(cli.get_int("max-k")),
                            cli.get_double("fault-prob"), pool);
  }
  const auto exhaustive_k = static_cast<std::int32_t>(cli.get_int("exhaustive-k"));
  if (exhaustive_k > 0) {
    wdm::oracle::run_exhaustive(stats, exhaustive_k);
  }
  const auto exhaustive_faults_k =
      static_cast<std::int32_t>(cli.get_int("exhaustive-faults-k"));
  if (exhaustive_faults_k > 0) {
    wdm::oracle::run_exhaustive_faults(stats, exhaustive_faults_k);
  }

  std::printf(
      "oracle_fuzz: %llu instances (%llu distributed slots, %llu with faults), "
      "%llu failures\n",
      static_cast<unsigned long long>(stats.instances),
      static_cast<unsigned long long>(stats.distributed_slots),
      static_cast<unsigned long long>(stats.health_instances),
      static_cast<unsigned long long>(stats.failures));
  return stats.failures == 0 ? 0 : 1;
}
