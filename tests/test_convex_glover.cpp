// Convex bipartite graphs, Glover's algorithm (paper Table 1), and the
// vertex-level staircase First Available rule.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/glover.hpp"
#include "graph/hopcroft_karp.hpp"
#include "util/rng.hpp"

namespace wdm {
namespace {

using graph::ConvexBipartiteGraph;
using graph::Interval;

TEST(Interval, Basics) {
  const Interval iv{2, 5};
  EXPECT_FALSE(iv.empty());
  EXPECT_EQ(iv.length(), 4);
  EXPECT_TRUE(iv.contains(2));
  EXPECT_TRUE(iv.contains(5));
  EXPECT_FALSE(iv.contains(1));
  EXPECT_FALSE(iv.contains(6));

  const Interval empty{};
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.length(), 0);
  EXPECT_FALSE(empty.contains(0));
}

TEST(ConvexGraph, ConstructionAndEdges) {
  const ConvexBipartiteGraph g({{0, 2}, {1, 3}, {}, {3, 3}}, 4);
  EXPECT_EQ(g.n_left(), 4);
  EXPECT_EQ(g.n_right(), 4);
  EXPECT_EQ(g.n_edges(), 3u + 3u + 0u + 1u);
  EXPECT_TRUE(g.is_staircase());
  const auto b = g.to_bipartite();
  EXPECT_TRUE(b.has_edge(0, 0));
  EXPECT_TRUE(b.has_edge(1, 3));
  EXPECT_EQ(b.degree(2), 0u);
}

TEST(ConvexGraph, StaircaseDetection) {
  EXPECT_TRUE(ConvexBipartiteGraph({{0, 1}, {0, 2}, {1, 2}}, 3).is_staircase());
  // END decreases: not staircase.
  EXPECT_FALSE(ConvexBipartiteGraph({{0, 2}, {0, 1}}, 3).is_staircase());
  // BEGIN decreases: not staircase.
  EXPECT_FALSE(ConvexBipartiteGraph({{1, 2}, {0, 2}}, 3).is_staircase());
  // Empty intervals are transparent.
  EXPECT_TRUE(ConvexBipartiteGraph({{0, 1}, {}, {1, 2}}, 3).is_staircase());
}

TEST(ConvexGraph, OutOfRangeIntervalRejected) {
  EXPECT_THROW(ConvexBipartiteGraph({{0, 3}}, 3), std::logic_error);
  EXPECT_THROW(ConvexBipartiteGraph({{-1, 1}}, 3), std::logic_error);
}

TEST(Glover, PaperTableOneSemantics) {
  // Right vertices scanned in order; each matched to the adjacent unmatched
  // left vertex with minimum END. Classic instance where greedy-by-begin
  // fails but min-END succeeds.
  const ConvexBipartiteGraph g({{0, 0}, {0, 2}}, 3);
  const auto m = graph::glover_maximum_matching(g);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.left_of(0), 0);  // b0 must go to the short interval
}

TEST(Glover, MatchesHopcroftKarpOnRandomConvexGraphs) {
  util::Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n_left = static_cast<graph::VertexId>(1 + rng.uniform_below(24));
    const auto n_right = static_cast<graph::VertexId>(1 + rng.uniform_below(16));
    const auto width = static_cast<graph::VertexId>(1 + rng.uniform_below(6));
    const auto g = graph::random_convex(rng, n_left, n_right, width, 0.1);
    const auto glover = graph::glover_maximum_matching(g);
    const auto hk = graph::hopcroft_karp(g.to_bipartite());
    EXPECT_TRUE(graph::is_valid_matching(g.to_bipartite(), glover));
    EXPECT_EQ(glover.size(), hk.size()) << "trial " << trial;
  }
}

TEST(StaircaseFirstAvailable, RequiresStaircase) {
  const ConvexBipartiteGraph not_staircase({{0, 2}, {0, 1}}, 3);
  EXPECT_THROW(graph::staircase_first_available(not_staircase),
               std::logic_error);
}

TEST(StaircaseFirstAvailable, MatchesGloverOnStaircaseGraphs) {
  util::Rng rng(4242);
  for (int trial = 0; trial < 200; ++trial) {
    const auto n_left = static_cast<graph::VertexId>(1 + rng.uniform_below(24));
    const auto n_right = static_cast<graph::VertexId>(1 + rng.uniform_below(16));
    const auto width = static_cast<graph::VertexId>(1 + rng.uniform_below(6));
    const auto g = graph::random_staircase(rng, n_left, n_right, width);
    ASSERT_TRUE(g.is_staircase());
    const auto fa = graph::staircase_first_available(g);
    const auto glover = graph::glover_maximum_matching(g);
    EXPECT_TRUE(graph::is_valid_matching(g.to_bipartite(), fa));
    EXPECT_EQ(fa.size(), glover.size()) << "trial " << trial;
  }
}

TEST(StaircaseFirstAvailable, HandlesEmptyAndIsolated) {
  const ConvexBipartiteGraph g({{}, {0, 0}, {}}, 2);
  const auto m = graph::staircase_first_available(g);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.right_of(1), 0);
}

TEST(Generators, RandomStaircaseIsAlwaysStaircase) {
  util::Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const auto g = graph::random_staircase(rng, 15, 10, 4);
    EXPECT_TRUE(g.is_staircase());
  }
}

}  // namespace
}  // namespace wdm
