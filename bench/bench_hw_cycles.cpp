// Experiment E7 — hardware model: cycle counts and area (DESIGN.md §3).
//
// Sections III/IV claim constant-time steps in hardware: O(k) cycles for
// First Available, O(dk) for serial Break-and-First-Available, O(k) with d
// parallel matching units. The register-level model counts exactly those
// steps; the cost model quantifies the d-unit area trade-off.
//
// Expected shape: FA cycles ~ k and independent of N and d; BFA serial
// cycles ~ d(k-1); BFA critical path ~ k + log2(d) with d units; area of
// the parallel datapath ~ d x the encoder block.
#include <iostream>

#include "bench_io.hpp"
#include "hw/cost_model.hpp"
#include "hw/hw_scheduler.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace wdm;

std::vector<core::Request> dense_slot(util::Rng& rng, std::int32_t n_fibers,
                                      std::int32_t k) {
  std::vector<core::Request> out;
  std::uint64_t id = 0;
  for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
    for (core::Wavelength w = 0; w < k; ++w) {
      if (rng.bernoulli(0.8)) out.push_back(core::Request{fib, w, id++, 1});
    }
  }
  return out;
}

}  // namespace

int main() {
  using namespace wdm;

  std::cout << "E7: register-level cycle counts (means over 200 slots)\n\n";

  bench::Json root = bench::Json::object();
  root.set("bench", "hw_cycles");

  // Part 1: FA cycles vs k at several N — flat in N, linear in k.
  {
    util::Table table({"algo", "k", "N", "d", "cycles_serial",
                       "cycles_parallel", "channel_steps"});
    for (const std::int32_t k : {8, 16, 32, 64}) {
      for (const std::int32_t n : {4, 16, 64}) {
        hw::HwPortScheduler port(core::ConversionScheme::non_circular(k, 1, 1),
                                 n);
        util::Rng rng(static_cast<std::uint64_t>(k * 100 + n));
        std::uint64_t total = 0, crit = 0, steps = 0;
        const int slots = 200;
        for (int s = 0; s < slots; ++s) {
          port.load(dense_slot(rng, n, k));
          port.run();
          total += port.cycles().total;
          crit += port.cycles().critical_path;
          steps += port.cycles().channel_steps;
        }
        table.add_row({"FA", util::cell(k), util::cell(n), "3",
                       util::cell(total / slots), util::cell(crit / slots),
                       util::cell(steps / slots)});
      }
    }
    table.print(std::cout);
    root.set("fa_rows", bench::table_json(table));
  }

  // Part 2: BFA cycles vs d at fixed k — serial ~ d(k-1), parallel ~ k.
  {
    std::cout << "\n";
    util::Table table({"algo", "k", "d", "cycles_serial", "cycles_parallel",
                       "channel_steps", "candidates"});
    const std::int32_t k = 32;
    for (const std::int32_t d : {1, 3, 5, 7, 9}) {
      hw::HwPortScheduler port(
          core::ConversionScheme::symmetric(core::ConversionKind::kCircular, k,
                                            d),
          16);
      util::Rng rng(static_cast<std::uint64_t>(d) * 7 + 1);
      std::uint64_t total = 0, crit = 0, steps = 0, cands = 0;
      const int slots = 200;
      for (int s = 0; s < slots; ++s) {
        port.load(dense_slot(rng, 16, k));
        port.run();
        total += port.cycles().total;
        crit += port.cycles().critical_path;
        steps += port.cycles().channel_steps;
        cands += port.cycles().candidates;
      }
      table.add_row({"BFA", util::cell(k), util::cell(d),
                     util::cell(total / slots), util::cell(crit / slots),
                     util::cell(steps / slots), util::cell(cands / slots)});
    }
    table.print(std::cout);
    root.set("bfa_rows", bench::table_json(table));
  }

  // Part 3: area model — the Section IV.B serial/parallel trade-off.
  {
    std::cout << "\n";
    util::Table table({"N", "k", "d", "bfa", "register_bits", "encoder_gates",
                       "arbiter_gates", "total_gates"});
    for (const std::int32_t n : {8, 32}) {
      for (const std::int32_t d : {3, 7}) {
        for (const bool parallel : {false, true}) {
          const auto cost = hw::estimate_cost(n, 16, d, true, parallel);
          table.add_row({util::cell(n), "16", util::cell(d),
                         parallel ? "parallel" : "serial",
                         util::cell(cost.register_bits),
                         util::cell(cost.encoder_gates),
                         util::cell(cost.arbiter_gates),
                         util::cell(cost.total_gates)});
        }
      }
    }
    table.print(std::cout);
    root.set("area_rows", bench::table_json(table));
  }

  bench::write_bench_json("hw_cycles", root);
  std::cout << "\nShape: FA cycles track k (flat in N); BFA serial steps = "
               "d*(k-1); parallel critical path ~ k + log2 d.\n";
  return 0;
}
