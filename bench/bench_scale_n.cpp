// Experiment E2 — independence of the interconnect size N (DESIGN.md §3).
//
// Claim under test (Section I): the distributed algorithms' per-fiber time
// depends only on (k, d), not on N; a global algorithm on the explicit
// request graph grows with N because the graph has up to Nk left vertices.
//
// Expected shape: FA/BFA flat as N doubles (their input is the k-entry
// request vector regardless of how many fibers feed it); Hopcroft–Karp
// grows superlinearly.
#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"

#include "core/break_first_available.hpp"
#include "core/first_available.hpp"
#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdm;

constexpr std::int32_t kWavelengths = 16;
constexpr double kLoad = 0.5;

core::RequestVector make_requests(std::int32_t n_fibers, std::uint64_t seed) {
  util::Rng rng(seed);
  core::RequestVector rv(kWavelengths);
  for (core::Wavelength w = 0; w < kWavelengths; ++w) {
    for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
      if (rng.bernoulli(kLoad)) rv.add(w);
    }
  }
  return rv;
}

void BM_FirstAvailable_vs_N(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto scheme = core::ConversionScheme::non_circular(kWavelengths, 1, 1);
  const auto rv = make_requests(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::first_available(rv, scheme));
  }
}
BENCHMARK(BM_FirstAvailable_vs_N)->RangeMultiplier(4)->Range(4, 1024);

void BM_BreakFirstAvailable_vs_N(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto scheme = core::ConversionScheme::circular(kWavelengths, 1, 1);
  const auto rv = make_requests(n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::break_first_available(rv, scheme));
  }
}
BENCHMARK(BM_BreakFirstAvailable_vs_N)->RangeMultiplier(4)->Range(4, 1024);

void BM_HopcroftKarp_vs_N(benchmark::State& state) {
  const auto n = static_cast<std::int32_t>(state.range(0));
  const auto scheme = core::ConversionScheme::circular(kWavelengths, 1, 1);
  const auto rv = make_requests(n, 3);
  core::OutputPortScheduler sched(scheme, core::Algorithm::kHopcroftKarp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.assign_channels(rv));
  }
}
BENCHMARK(BM_HopcroftKarp_vs_N)->RangeMultiplier(4)->Range(4, 1024);

}  // namespace

WDM_BENCHMARK_MAIN("scale_n")
