// Shared JSON emission for the bench harness.
//
// Every bench_* binary records its headline numbers as BENCH_<name>.json in
// the working directory so perf runs become diffable artifacts:
//
//   Json root = Json::object();
//   root.set("n_fibers", n).set("slots_per_s", rate);
//   root.set("rows", table_json(table));
//   write_bench_json("faults", root);          // -> BENCH_faults.json
//
// Two runs are compared with scripts/bench_report.py. The writer is a tiny
// ordered value tree — no serialisation library, matching the rest of the
// harness (util::Table for humans, this for machines).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/utsname.h>
#endif

#include "util/table.hpp"

namespace wdm::bench {

/// Ordered JSON value: object, array, number, string, or bool. Insertion
/// order is preserved so diffs stay stable across runs.
class Json {
 public:
  static Json object() { return Json(Kind::kObject); }
  static Json array() { return Json(Kind::kArray); }
  Json() : Json(Kind::kObject) {}
  Json(double v) : kind_(Kind::kNumber), number_(v) {}  // NOLINT(google-explicit-constructor)
  Json(bool v) : kind_(Kind::kBool), bool_(v) {}        // NOLINT(google-explicit-constructor)
  Json(const char* v) : kind_(Kind::kString), string_(v) {}  // NOLINT(google-explicit-constructor)
  Json(std::string v) : kind_(Kind::kString), string_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  template <typename T>
    requires std::is_integral_v<T>
  Json(T v)  // NOLINT(google-explicit-constructor)
      : kind_(Kind::kNumber),
        number_(static_cast<double>(v)),
        integral_(true) {}

  /// Object member (insertion-ordered; duplicate keys overwrite).
  Json& set(const std::string& key, Json value) {
    for (auto& [k, v] : members_) {
      if (k == key) {
        v = std::move(value);
        return *this;
      }
    }
    members_.emplace_back(key, std::move(value));
    return *this;
  }

  /// Array element.
  Json& push(Json value) {
    elements_.push_back(std::move(value));
    return *this;
  }

  std::string dump(int indent = 2) const {
    std::string out;
    dump_to(out, indent, 0);
    out.push_back('\n');
    return out;
  }

 private:
  enum class Kind : std::uint8_t { kObject, kArray, kNumber, kString, kBool };

  explicit Json(Kind kind) : kind_(kind) {}

  static void escape_to(std::string& out, const std::string& s) {
    out.push_back('"');
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out.push_back(c);
          }
      }
    }
    out.push_back('"');
  }

  void dump_to(std::string& out, int indent, int depth) const {
    const std::string pad(static_cast<std::size_t>(indent) *
                              static_cast<std::size_t>(depth + 1),
                          ' ');
    const std::string close_pad(
        static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
        ' ');
    switch (kind_) {
      case Kind::kObject: {
        if (members_.empty()) {
          out += "{}";
          return;
        }
        out += "{\n";
        for (std::size_t i = 0; i < members_.size(); ++i) {
          out += pad;
          escape_to(out, members_[i].first);
          out += ": ";
          members_[i].second.dump_to(out, indent, depth + 1);
          if (i + 1 < members_.size()) out.push_back(',');
          out.push_back('\n');
        }
        out += close_pad + "}";
        return;
      }
      case Kind::kArray: {
        if (elements_.empty()) {
          out += "[]";
          return;
        }
        out += "[\n";
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          out += pad;
          elements_[i].dump_to(out, indent, depth + 1);
          if (i + 1 < elements_.size()) out.push_back(',');
          out.push_back('\n');
        }
        out += close_pad + "]";
        return;
      }
      case Kind::kNumber: {
        char buf[40];
        if (integral_) {
          std::snprintf(buf, sizeof buf, "%.0f", number_);
        } else {
          std::snprintf(buf, sizeof buf, "%.10g", number_);
        }
        out += buf;
        return;
      }
      case Kind::kString:
        escape_to(out, string_);
        return;
      case Kind::kBool:
        out += bool_ ? "true" : "false";
        return;
    }
  }

  Kind kind_;
  double number_ = 0.0;
  bool integral_ = false;
  bool bool_ = false;
  std::string string_;
  std::vector<std::pair<std::string, Json>> members_;
  std::vector<Json> elements_;
};

/// Serialises a util::Table as an array of row objects keyed by the column
/// headers; cells that parse fully as numbers are emitted as numbers.
inline Json table_json(const util::Table& table) {
  Json rows = Json::array();
  for (std::size_t r = 0; r < table.rows(); ++r) {
    Json row = Json::object();
    for (std::size_t c = 0; c < table.columns(); ++c) {
      const std::string& cell = table.at(r, c);
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (!cell.empty() && end == cell.c_str() + cell.size()) {
        row.set(table.header(c), Json(v));
      } else {
        row.set(table.header(c), Json(cell));
      }
    }
    rows.push(std::move(row));
  }
  return rows;
}

/// First /proc/cpuinfo "model name" value, or empty when unavailable
/// (non-Linux, restricted container).
inline std::string cpu_model() {
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    if (line.compare(0, 10, "model name") != 0) continue;
    auto value = line.substr(colon + 1);
    const auto first = value.find_first_not_of(" \t");
    return first == std::string::npos ? std::string() : value.substr(first);
  }
  return {};
}

/// Host identity block attached to every artifact: uname fields, CPU model,
/// and logical core count. bench_report.py uses "host_key" to pick the
/// matching baseline set and skips the whole "meta" subtree when diffing
/// numbers — two hosts' throughputs are never directly comparable.
inline Json host_meta_json() {
  std::string sysname = "unknown";
  std::string release;
  std::string machine = "unknown";
#if defined(__unix__) || defined(__APPLE__)
  utsname u{};
  if (uname(&u) == 0) {
    sysname = u.sysname;
    release = u.release;
    machine = u.machine;
  }
#endif
  Json meta = Json::object();
  meta.set("host_key", sysname + "-" + machine)
      .set("uname_sysname", sysname)
      .set("uname_release", release)
      .set("uname_machine", machine)
      .set("cpu_model", cpu_model())
      .set("ncpus", std::thread::hardware_concurrency());
  return meta;
}

/// Writes BENCH_<name>.json in the working directory (the convention every
/// bench binary follows) and logs the path. A "meta" host-identity block is
/// stamped onto the root so baselines can be keyed by host. Failure to
/// write is reported but never fatal: the console table already happened.
inline void write_bench_json(const std::string& name, const Json& root) {
  const std::string path = "BENCH_" + name + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::cerr << "could not write " << path << "\n";
    return;
  }
  Json stamped = root;
  stamped.set("meta", host_meta_json());
  const std::string text = stamped.dump();
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::cout << "\nwrote " << path << "\n";
}

}  // namespace wdm::bench
