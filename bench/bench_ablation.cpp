// Experiment E8 — ablation: what does the maximum-matching machinery buy?
// (DESIGN.md §3/§6.)
//
// Same simulated interconnect and traffic, three schedulers per slot:
//   exact   — Break & First Available (maximum matching, the paper);
//   approx  — single-break approximation (Section IV.C);
//   greedy  — maximal-but-not-maximum greedy channel grabbing.
//
// Expected shape: loss(exact) <= loss(approx) <= loss(greedy) at every
// load; the exact/greedy gap widens with contention, the exact/approx gap
// stays marginal (Theorem 3).
#include <iostream>

#include "bench_io.hpp"
#include "core/break_first_available.hpp"
#include "core/pim.hpp"
#include "core/scheduler.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace wdm;

  const std::int32_t n = 8;
  const std::int32_t k = 8;
  const std::uint64_t slots = 10000;

  std::cout << "E8: scheduler ablation — exact vs approximate vs greedy\n"
            << "N = " << n << ", k = " << k << ", d = 3 circular, " << slots
            << " slots/point\n\n";

  struct Variant {
    const char* label;
    core::Algorithm algorithm;
  };
  const Variant variants[] = {
      {"exact-BFA", core::Algorithm::kBreakFirstAvailable},
      {"approx-BFA", core::Algorithm::kApproxBfa},
      {"greedy", core::Algorithm::kGreedyMaximal},
  };

  util::Table table({"scheduler", "load 0.6", "load 0.8", "load 0.95"});
  for (const auto& variant : variants) {
    std::vector<std::string> row{variant.label};
    for (const double load : {0.6, 0.8, 0.95}) {
      sim::SimulationConfig cfg;
      cfg.interconnect.n_fibers = n;
      cfg.interconnect.scheme = core::ConversionScheme::circular(k, 1, 1);
      cfg.interconnect.algorithm = variant.algorithm;
      cfg.traffic.load = load;
      cfg.slots = slots;
      cfg.warmup = slots / 10;
      cfg.seed = 2024;
      const auto r = sim::run_simulation(cfg);
      row.push_back(util::cell_prob(r.loss_probability));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nShape: exact <= approx <= greedy loss at every load.\n";

  // Part 2: the industry-standard iterative heuristic (PIM [7] / iSLIP [8])
  // against the exact matching, per slot: mean grants over random request
  // vectors. PIM-1 is the single-round hardware-cheap variant; a few rounds
  // close most of the gap but never reach the exact maximum.
  std::cout << "\nPIM iterative heuristic vs exact BFA (mean grants/slot, "
               "3000 request vectors, k = 8, N = 8, load 0.12)\n\n";
  util::Table pim_table({"scheduler", "mean_granted", "vs_exact"});
  const auto scheme = core::ConversionScheme::circular(k, 1, 1);
  util::Rng traffic_rng(606), pim_rng(707);
  double exact_sum = 0;
  double pim_sums[3] = {};
  const std::int32_t rounds[] = {1, 2, 4};
  const std::int64_t trials = 3000;
  for (std::int64_t t = 0; t < trials; ++t) {
    core::RequestVector rv(k);
    for (core::Wavelength w = 0; w < k; ++w) {
      for (std::int32_t fib = 0; fib < n; ++fib) {
        if (traffic_rng.bernoulli(0.12)) rv.add(w);
      }
    }
    exact_sum += core::break_first_available(rv, scheme).granted;
    for (std::size_t i = 0; i < 3; ++i) {
      pim_sums[i] += core::pim_schedule(rv, scheme, rounds[i], pim_rng).granted;
    }
  }
  pim_table.add_row({"exact-BFA", util::cell(exact_sum / trials, 4), "1.000"});
  for (std::size_t i = 0; i < 3; ++i) {
    pim_table.add_row(
        {"PIM-" + std::to_string(rounds[i]),
         util::cell(pim_sums[i] / trials, 4),
         util::cell(pim_sums[i] / exact_sum, 4)});
  }
  pim_table.print(std::cout);
  std::cout << "\nShape: PIM approaches but does not reach the exact maximum; "
               "each extra round shrinks the gap.\n";
  bench::Json root = bench::Json::object();
  root.set("bench", "ablation")
      .set("rows", bench::table_json(table))
      .set("pim_rows", bench::table_json(pim_table));
  bench::write_bench_json("ablation", root);

  return 0;
}
