// Fault-path overhead — scheduler cost with health masks off vs on.
//
// The health plumbing must be pay-for-what-you-use: a null health pointer
// is the PR-1 hot path untouched; an all-healthy mask must collapse to it
// after one O(k) scan; degraded masks pay the apply_health reduction. This
// harness measures all of them on the same request stream and records the
// ratios in BENCH_faults.json so the perf trajectory of the fault machinery
// is tracked from its first PR.
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_io.hpp"
#include "core/distributed.hpp"
#include "core/health.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace wdm;

std::vector<std::vector<core::SlotRequest>> make_slots(std::int32_t n_fibers,
                                                       std::int32_t k,
                                                       std::size_t n_slots,
                                                       double load) {
  util::Rng rng(99);
  std::vector<std::vector<core::SlotRequest>> slots(n_slots);
  std::uint64_t id = 0;
  for (auto& slot : slots) {
    for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
      for (core::Wavelength w = 0; w < k; ++w) {
        if (!rng.bernoulli(load)) continue;
        slot.push_back(core::SlotRequest{
            fib, w,
            static_cast<std::int32_t>(
                rng.uniform_below(static_cast<std::uint64_t>(n_fibers))),
            id++, 1, 0});
      }
    }
  }
  return slots;
}

/// Schedules every slot once and returns slots per second (grants summed
/// into a sink so the work cannot be elided).
double run_scenario(core::DistributedScheduler& sched,
                    const std::vector<std::vector<core::SlotRequest>>& slots,
                    const std::vector<core::HealthMask>* health,
                    std::uint64_t& sink) {
  const util::Stopwatch clock;
  for (const auto& slot : slots) {
    const auto decisions = sched.schedule_slot(slot, nullptr, health);
    for (const auto& d : decisions) sink += d.granted ? 1 : 0;
  }
  return static_cast<double>(slots.size()) / clock.elapsed_s();
}

}  // namespace

int main() {
  const std::int32_t n = 16;
  const std::int32_t k = 16;
  const std::size_t n_slots = 4000;
  const auto scheme = core::ConversionScheme::circular(k, 1, 1);
  const auto slots = make_slots(n, k, n_slots, 0.7);

  core::DistributedScheduler sched(n, scheme, core::Algorithm::kAuto,
                                   core::Arbitration::kFifo, 7);

  // Health scenarios over the same request stream.
  const std::vector<core::HealthMask> all_healthy(
      static_cast<std::size_t>(n), core::HealthMask::healthy(k));
  std::vector<core::HealthMask> degraded = all_healthy;
  util::Rng rng(17);
  for (auto& mask : degraded) {
    for (auto& ch : mask.channels) {
      const double u = rng.uniform01();
      ch = u < 0.05   ? core::ChannelHealth::kConverterFaulted
           : u < 0.10 ? core::ChannelHealth::kChannelFaulted
                      : core::ChannelHealth::kHealthy;
    }
  }
  std::vector<core::HealthMask> fiber_cut = degraded;
  fiber_cut[0].fiber_faulted = true;

  std::uint64_t sink = 0;
  // Warm-up pass, then the measured passes.
  run_scenario(sched, slots, nullptr, sink);
  const double base = run_scenario(sched, slots, nullptr, sink);
  const double healthy = run_scenario(sched, slots, &all_healthy, sink);
  const double faulted = run_scenario(sched, slots, &degraded, sink);
  const double cut = run_scenario(sched, slots, &fiber_cut, sink);

  std::cout << "Fault-path overhead: N = " << n << ", k = " << k
            << ", load 0.7, " << n_slots << " slots/scenario (sink " << sink
            << ")\n\n";
  util::Table table({"scenario", "slots/s", "vs baseline"});
  const auto add = [&](const char* label, double rate) {
    table.add_row({label, util::cell(static_cast<std::int64_t>(rate)),
                   util::cell(base / rate, 3)});
  };
  add("health = null (baseline)", base);
  add("health all-healthy", healthy);
  add("health 10% degraded", faulted);
  add("degraded + 1 fiber cut", cut);
  table.print(std::cout);

  // Same keys the std::fprintf emission used since PR 2, now through the
  // shared writer so scripts/bench_report.py sees one layout everywhere.
  bench::Json root = bench::Json::object();
  root.set("bench", "faults")
      .set("n_fibers", n)
      .set("k", k)
      .set("slots", static_cast<std::uint64_t>(n_slots))
      .set("baseline_slots_per_s", base)
      .set("all_healthy_slots_per_s", healthy)
      .set("degraded_slots_per_s", faulted)
      .set("fiber_cut_slots_per_s", cut)
      .set("all_healthy_overhead", base / healthy)
      .set("degraded_overhead", base / faulted)
      .set("rows", bench::table_json(table));
  bench::write_bench_json("faults", root);
  return 0;
}
