// Fleet serving throughput: shards × threads-per-shard scaling.
//
// Drives sim::Fleet — F independent fabrics behind the slot barrier — and
// records aggregate requests/s (offered requests carried to a decision per
// wall-clock second, summed over shards) plus per-shard scaling efficiency:
//     eff(F, T) = requests/s at F shards / (F × requests/s at 1 shard, same T).
// Shards share no state, so on a host with enough cores efficiency should
// hold ≥ 0.7 up to the physical core count; past it the shards time-slice
// and the column records honest saturation. The host block in
// BENCH_fleet.json (bench_io.hpp) says how many CPUs the capture machine
// actually had — scaling claims only apply at shards ≤ that.
//
// WDM_BENCH_SMOKE=1 shrinks the sweep for the CI fleet-smoke job;
// --pin adds a pinned (cpu-affinity) variant of every cell, --shards /
// --threads override the sweep axes (comma-separated lists).
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_io.hpp"
#include "sim/fleet.hpp"
#include "util/cli.hpp"
#include "util/cpu_affinity.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace wdm;

struct Measurement {
  double slots_per_s = 0.0;      ///< fleet slots (all shards advance one)
  double requests_per_s = 0.0;   ///< offered requests decided, all shards
  double granted_per_s = 0.0;
  std::size_t group_threads = 0; ///< effective per-shard group after clamp
  bool pinned = false;
};

Measurement run_fleet(std::size_t shards, std::size_t threads, bool pin,
                      bool supervise, std::uint64_t slots) {
  sim::FleetConfig cfg;
  cfg.shards = shards;
  cfg.threads_per_shard = threads;
  cfg.pin_cpus = pin;
  // Fault-free supervised serving: measures the supervision layer's
  // steady-state overhead (richer barrier predicate, health bookkeeping) —
  // decisions and digests are identical to the unsupervised cell.
  cfg.supervision.enabled = supervise;
  cfg.seed = 9;
  cfg.interconnect.n_fibers = 64;
  cfg.interconnect.scheme = core::ConversionScheme::circular(16, 1, 1);
  cfg.interconnect.arbitration = core::Arbitration::kFifo;
  cfg.traffic.load = 0.8;
  cfg.traffic.holding = sim::HoldingTime::kGeometric;
  cfg.traffic.mean_holding = 2.0;
  sim::Fleet fleet(cfg);

  fleet.run(slots / 4 + 1);  // warm-up: arenas and buffers at high water
  fleet.reset_counters();

  Measurement m;
  m.group_threads = fleet.threads_per_shard();
  m.pinned = fleet.pinned();
  // Best-of-3: the fastest sweep is the closest estimate on a shared host.
  // Request counts are identical across sweeps up to the slice boundaries,
  // so rates use each sweep's own counter delta.
  double best_elapsed = 0.0;
  std::uint64_t best_arrivals = 0, best_granted = 0;
  for (int rep = 0; rep < 3; ++rep) {
    const std::uint64_t arrivals0 = fleet.total_arrivals();
    const std::uint64_t granted0 = fleet.total_granted();
    const util::Stopwatch clock;
    fleet.run(slots);
    const double elapsed = clock.elapsed_s();
    if (rep == 0 || elapsed < best_elapsed) {
      best_elapsed = elapsed;
      best_arrivals = fleet.total_arrivals() - arrivals0;
      best_granted = fleet.total_granted() - granted0;
    }
  }
  m.slots_per_s = static_cast<double>(slots) / best_elapsed;
  m.requests_per_s = static_cast<double>(best_arrivals) / best_elapsed;
  m.granted_per_s = static_cast<double>(best_granted) / best_elapsed;
  return m;
}

std::vector<std::size_t> parse_list(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::stoul(item));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_fleet",
                "sharded fleet serving throughput and scaling efficiency");
  cli.add_option("shards", "", "comma-separated shard counts (default sweep)");
  cli.add_option("threads", "",
                 "comma-separated threads-per-shard values (default sweep)");
  cli.add_flag("pin", "additionally measure every cell with CPU pinning");
  cli.add_flag("supervise",
               "additionally measure every cell with fault-free supervision "
               "enabled (steady-state overhead of the self-healing layer)");
  if (!cli.parse(argc, argv)) return 1;

  const bool smoke = std::getenv("WDM_BENCH_SMOKE") != nullptr;
  const std::size_t cpus = util::available_cpus();
  std::vector<std::size_t> shard_axis =
      smoke ? std::vector<std::size_t>{1, 2}
            : std::vector<std::size_t>{1, 2, 4, 8};
  std::vector<std::size_t> thread_axis =
      smoke ? std::vector<std::size_t>{2} : std::vector<std::size_t>{1, 2};
  if (!cli.get("shards").empty()) shard_axis = parse_list(cli.get("shards"));
  if (!cli.get("threads").empty()) thread_axis = parse_list(cli.get("threads"));
  const std::uint64_t slots = smoke ? 400 : 4000;

  std::vector<bool> pin_axis = {false};
  if (cli.get_flag("pin")) pin_axis.push_back(true);
  std::vector<bool> supervise_axis = {false};
  if (cli.get_flag("supervise")) supervise_axis.push_back(true);

  util::Table table({"shards", "thr/shard", "group", "pin", "sup", "slots/s",
                     "req/s", "granted/s", "efficiency"});
  bench::Json rows = bench::Json::array();

  for (const bool supervise : supervise_axis) {
    for (const bool pin : pin_axis) {
      for (const std::size_t threads : thread_axis) {
        double single_req_s = 0.0;  // 1-shard baseline for this thread count
        for (const std::size_t shards : shard_axis) {
          const Measurement m =
              run_fleet(shards, threads, pin, supervise, slots);
          if (shards == 1) single_req_s = m.requests_per_s;
          const double efficiency =
              (shards > 0 && single_req_s > 0.0)
                  ? m.requests_per_s /
                        (static_cast<double>(shards) * single_req_s)
                  : 0.0;
          table.add_row(
              {util::cell(static_cast<std::int64_t>(shards)),
               util::cell(static_cast<std::int64_t>(threads)),
               util::cell(static_cast<std::int64_t>(m.group_threads)),
               m.pinned ? "yes" : "no", supervise ? "yes" : "no",
               util::cell(static_cast<std::int64_t>(m.slots_per_s)),
               util::cell(static_cast<std::int64_t>(m.requests_per_s)),
               util::cell(static_cast<std::int64_t>(m.granted_per_s)),
               util::cell(efficiency, 3)});
          bench::Json row = bench::Json::object();
          row.set("shards", static_cast<std::uint64_t>(shards))
              .set("threads_per_shard", static_cast<std::uint64_t>(threads))
              .set("group_threads",
                   static_cast<std::uint64_t>(m.group_threads))
              .set("pinned", m.pinned)
              .set("supervised", supervise)
              .set("slots", slots)
              .set("slots_per_s", m.slots_per_s)
              .set("requests_per_s", m.requests_per_s)
              .set("granted_per_s", m.granted_per_s)
              .set("efficiency", efficiency);
          rows.push(std::move(row));
        }
      }
    }
  }

  std::cout << "Fleet: N=64 k=16 load 0.8, geometric holding, "
            << cpus << " CPUs available; efficiency = req/s / (shards x "
            << "1-shard req/s) — claims apply at shards <= CPUs\n\n";
  table.print(std::cout);

  bench::Json root = bench::Json::object();
  root.set("bench", "fleet")
      .set("smoke", smoke)
      .set("available_cpus", static_cast<std::uint64_t>(cpus))
      .set("n_fibers", 64)
      .set("k", 16)
      .set("load", 0.8)
      .set("configs", std::move(rows));
  bench::write_bench_json("fleet", root);
  return 0;
}
