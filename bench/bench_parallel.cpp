// Experiment E6 — the distributed nature of the scheduler (DESIGN.md §3).
//
// Section I's point: per-output-fiber schedules are independent, so a slot's
// work parallelises perfectly across fibers. This harness measures
// slots/second of a 64 x 64 interconnect with the per-fiber schedules run
// serially and on thread pools of increasing size.
//
// Expected shape: throughput scales with workers up to the machine's core
// count (on a single-core host the curve is flat — the structure is still
// exercised and the absence of slowdown is itself the check), and results
// are identical regardless of worker count.
#include <iostream>
#include <thread>

#include "bench_io.hpp"
#include "sim/interconnect.hpp"
#include "sim/traffic.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

int main() {
  using namespace wdm;

  const std::int32_t n = 64;
  const std::int32_t k = 16;
  const std::uint64_t slots = 300;

  std::cout << "E6: distributed per-fiber scheduling on a thread pool\n"
            << "N = " << n << ", k = " << k << ", d = 3 circular, load 0.7, "
            << slots << " slots per configuration (hardware threads: "
            << std::thread::hardware_concurrency() << ")\n\n";

  const auto run_with = [&](std::size_t workers) {
    sim::InterconnectConfig icfg;
    icfg.n_fibers = n;
    icfg.scheme = core::ConversionScheme::circular(k, 1, 1);
    icfg.arbitration = core::Arbitration::kFifo;
    icfg.seed = 5;
    sim::Interconnect ic(icfg);
    sim::TrafficConfig tcfg;
    tcfg.load = 0.7;
    sim::TrafficGenerator gen(n, k, tcfg, 99);

    std::unique_ptr<util::ThreadPool> pool;
    if (workers > 0) pool = std::make_unique<util::ThreadPool>(workers);

    std::uint64_t granted = 0;
    const util::Stopwatch clock;
    for (std::uint64_t s = 0; s < slots; ++s) {
      const auto arrivals = gen.next_slot();
      granted += ic.step(arrivals, pool.get()).granted;
    }
    return std::pair{clock.elapsed_s(), granted};
  };

  util::Table table({"workers", "slots_per_sec", "granted", "speedup"});
  double serial_time = 0;
  for (const std::size_t workers : {0u, 1u, 2u, 4u, 8u}) {
    const auto [seconds, granted] = run_with(workers);
    if (workers == 0) serial_time = seconds;
    table.add_row({workers == 0 ? "serial" : util::cell(workers),
                   util::cell(static_cast<double>(slots) / seconds, 4),
                   util::cell(granted), util::cell(serial_time / seconds, 3)});
  }
  table.print(std::cout);
  std::cout << "\n'granted' identical across rows: the schedule is "
               "deterministic whatever the worker count.\n";
  bench::Json root = bench::Json::object();
  root.set("bench", "parallel").set("rows", bench::table_json(table));
  bench::write_bench_json("parallel", root);

  return 0;
}
