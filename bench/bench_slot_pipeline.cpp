// Slot-pipeline throughput and allocator traffic (the perf-regression
// baseline for the zero-allocation hot path).
//
// Drives Interconnect::step end-to-end — aging, availability update,
// per-fiber scheduling, occupancy — over pre-generated arrival streams and
// reports slots/sec plus heap allocations and bytes per slot, across
// N ∈ {16, 64, 256}, k ∈ {8, 16, 32}, circular and non-circular conversion.
// A second measurement isolates the scheduler + availability-update path
// (DistributedScheduler against the flat availability plane), the part the
// zero-allocation contract covers (tests/test_zero_alloc.cpp enforces it).
//
// A third measurement re-runs the full pipeline with a trace recorder
// attached (--trace-detail, default "slots") so the telemetry tax is itself
// a tracked number: "traced slots/s" should sit within a few percent of the
// untraced column at slot granularity, and the untraced column is the one
// bench_report.py regresses against.
//
// The masked (SIMD) kernels are benchmarked against their scalar reference
// in the same process: every config runs once under core::SimdMode::kMask
// (the default path, reported as slots/s) and once under kScalar, and the
// ratio lands in the table as the SIMD speedup. A step_batch window of 8
// slots is measured too (the amortized-validation variant).
//
// WDM_BENCH_SMOKE=1 shrinks the matrix and slot counts for CI smoke runs;
// WDM_SIMD=off (see core/simd.hpp) turns the default path scalar, which the
// CI bench-smoke matrix uses to keep the scalar kernels exercised.
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <new>
#include <span>
#include <vector>

#include "bench_io.hpp"
#include "core/distributed.hpp"
#include "core/simd.hpp"
#include "obs/telemetry.hpp"
#include "sim/interconnect.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

// ---------------------------------------------------------------------------
// Counting allocator: global new/delete with per-thread-safe atomic tallies.
// Only this binary is instrumented; the counters cost one relaxed fetch_add
// per allocation, negligible next to the allocation itself.
namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_bytes{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace wdm;

struct AllocSnapshot {
  std::uint64_t allocs;
  std::uint64_t bytes;
  static AllocSnapshot take() {
    return {g_allocs.load(std::memory_order_relaxed),
            g_bytes.load(std::memory_order_relaxed)};
  }
};

std::vector<std::vector<core::SlotRequest>> make_slots(std::int32_t n_fibers,
                                                       std::int32_t k,
                                                       std::size_t n_slots,
                                                       double load) {
  util::Rng rng(42);
  std::vector<std::vector<core::SlotRequest>> slots(n_slots);
  std::uint64_t id = 0;
  for (auto& slot : slots) {
    for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
      for (core::Wavelength w = 0; w < k; ++w) {
        if (!rng.bernoulli(load)) continue;
        slot.push_back(core::SlotRequest{
            fib, w,
            static_cast<std::int32_t>(
                rng.uniform_below(static_cast<std::uint64_t>(n_fibers))),
            id++, 1 + static_cast<std::int32_t>(rng.uniform_below(3)), 0});
      }
    }
  }
  return slots;
}

struct Measurement {
  double slots_per_s = 0.0;
  double allocs_per_slot = 0.0;
  double bytes_per_slot = 0.0;
  std::uint64_t grants = 0;  ///< sink: keeps the work observable
};

/// Full interconnect pipeline: one warm-up sweep, then a measured sweep over
/// the same slot stream. When `recorder` is non-null it is attached for the
/// measured sweep, so the measurement includes the telemetry warm path.
Measurement run_interconnect(std::int32_t n, std::int32_t k, bool circular,
                             const std::vector<std::vector<core::SlotRequest>>& slots,
                             obs::TraceRecorder* recorder = nullptr) {
  sim::InterconnectConfig cfg;
  cfg.n_fibers = n;
  cfg.scheme = circular ? core::ConversionScheme::circular(k, 1, 1)
                        : core::ConversionScheme::non_circular(k, 1, 1);
  cfg.arbitration = core::Arbitration::kFifo;
  cfg.seed = 5;
  sim::Interconnect ic(cfg);

  Measurement m;
  for (const auto& slot : slots) m.grants += ic.step(slot).granted;  // warm-up
  ic.set_telemetry(recorder);

  // Best-of-3 sweeps: on a shared host a single sweep absorbs whatever the
  // neighbours were doing; the fastest sweep is the closest estimate of the
  // pipeline's actual cost. Allocation counters cover the first sweep only
  // (they are deterministic per sweep, timing is not).
  const AllocSnapshot before = AllocSnapshot::take();
  double elapsed = 0.0;
  AllocSnapshot after = before;
  for (int rep = 0; rep < 3; ++rep) {
    const util::Stopwatch clock;
    for (const auto& slot : slots) m.grants += ic.step(slot).granted;
    const double sweep_s = clock.elapsed_s();
    if (rep == 0) {
      elapsed = sweep_s;
      after = AllocSnapshot::take();
    } else {
      elapsed = std::min(elapsed, sweep_s);
    }
  }

  const double n_slots = static_cast<double>(slots.size());
  m.slots_per_s = n_slots / elapsed;
  m.allocs_per_slot = static_cast<double>(after.allocs - before.allocs) / n_slots;
  m.bytes_per_slot = static_cast<double>(after.bytes - before.bytes) / n_slots;
  return m;
}

/// Scheduler + availability-update path only: the zero-allocation contract.
/// Mirrors what the interconnect does per slot — schedule against the flat
/// plane, occupy granted channels, free them again — without the SlotStats
/// accounting that the full pipeline adds on top.
Measurement run_scheduler_path(
    std::int32_t n, std::int32_t k, bool circular,
    const std::vector<std::vector<core::SlotRequest>>& slots) {
  const auto scheme = circular ? core::ConversionScheme::circular(k, 1, 1)
                               : core::ConversionScheme::non_circular(k, 1, 1);
  core::DistributedScheduler sched(n, scheme, core::Algorithm::kAuto,
                                   core::Arbitration::kFifo, 5);
  std::vector<std::uint8_t> plane(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(k), 1);
  std::vector<core::PortDecision> decisions;
  decisions.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  const core::AvailabilityView view(plane.data(), n, k);

  Measurement m;
  const auto sweep = [&](bool measured) {
    for (const auto& slot : slots) {
      decisions.resize(slot.size());
      sched.schedule_slot_into(slot, view, nullptr, nullptr, decisions);
      // Occupy and release within the slot: exercises the plane update
      // without letting the fabric saturate.
      for (std::size_t i = 0; i < slot.size(); ++i) {
        if (!decisions[i].granted) continue;
        if (measured) m.grants += 1;
        plane[static_cast<std::size_t>(slot[i].output_fiber) *
                  static_cast<std::size_t>(k) +
              static_cast<std::size_t>(decisions[i].channel)] = 0;
      }
      for (std::size_t i = 0; i < slot.size(); ++i) {
        if (!decisions[i].granted) continue;
        plane[static_cast<std::size_t>(slot[i].output_fiber) *
                  static_cast<std::size_t>(k) +
              static_cast<std::size_t>(decisions[i].channel)] = 1;
      }
    }
  };

  sweep(false);  // warm-up: scratch reaches its high-water capacity
  const AllocSnapshot before = AllocSnapshot::take();
  double elapsed = 0.0;
  AllocSnapshot after = before;
  for (int rep = 0; rep < 3; ++rep) {
    const util::Stopwatch clock;
    sweep(rep == 0);
    const double sweep_s = clock.elapsed_s();
    if (rep == 0) {
      elapsed = sweep_s;
      after = AllocSnapshot::take();
    } else {
      elapsed = std::min(elapsed, sweep_s);
    }
  }

  const double n_slots = static_cast<double>(slots.size());
  m.slots_per_s = n_slots / elapsed;
  m.allocs_per_slot = static_cast<double>(after.allocs - before.allocs) / n_slots;
  m.bytes_per_slot = static_cast<double>(after.bytes - before.bytes) / n_slots;
  return m;
}

/// Full pipeline driven through step_batch in windows of `window` slots
/// (bit-identical to serial step(); the measurement is the amortization).
Measurement run_batch(std::int32_t n, std::int32_t k, bool circular,
                      const std::vector<std::vector<core::SlotRequest>>& slots,
                      std::size_t window) {
  sim::InterconnectConfig cfg;
  cfg.n_fibers = n;
  cfg.scheme = circular ? core::ConversionScheme::circular(k, 1, 1)
                        : core::ConversionScheme::non_circular(k, 1, 1);
  cfg.arbitration = core::Arbitration::kFifo;
  cfg.seed = 5;
  sim::Interconnect ic(cfg);

  Measurement m;
  const std::span<const std::vector<core::SlotRequest>> all(slots);
  const auto sweep = [&] {
    std::uint64_t grants = 0;
    for (std::size_t lo = 0; lo < all.size(); lo += window) {
      const std::size_t len = std::min(window, all.size() - lo);
      grants += ic.step_batch(all.subspan(lo, len)).granted;
    }
    return grants;
  };

  m.grants += sweep();  // warm-up
  const AllocSnapshot before = AllocSnapshot::take();
  double elapsed = 0.0;
  AllocSnapshot after = before;
  for (int rep = 0; rep < 3; ++rep) {
    const util::Stopwatch clock;
    m.grants += sweep();
    const double sweep_s = clock.elapsed_s();
    if (rep == 0) {
      elapsed = sweep_s;
      after = AllocSnapshot::take();
    } else {
      elapsed = std::min(elapsed, sweep_s);
    }
  }

  const double n_slots = static_cast<double>(slots.size());
  m.slots_per_s = n_slots / elapsed;
  m.allocs_per_slot = static_cast<double>(after.allocs - before.allocs) / n_slots;
  m.bytes_per_slot = static_cast<double>(after.bytes - before.bytes) / n_slots;
  return m;
}

std::size_t slots_for(std::int32_t n, std::int32_t k, bool smoke) {
  if (smoke) return 200;
  const std::size_t budget = 2'000'000;
  const std::size_t per_slot =
      static_cast<std::size_t>(n) * static_cast<std::size_t>(k);
  return std::min<std::size_t>(4000, std::max<std::size_t>(200, budget / per_slot));
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_slot_pipeline",
                "slot-pipeline throughput, allocator traffic, telemetry tax");
  cli.add_option("trace-detail", "slots",
                 "telemetry level for the traced measurement: "
                 "off|slots|fibers|full");
  cli.add_option("only", "",
                 "restrict the matrix to one N:k cell, e.g. --only=64:16");
  if (!cli.parse(argc, argv)) return 1;
  const auto detail = obs::parse_trace_detail(cli.get("trace-detail"));
  if (!detail.has_value()) {
    std::cerr << "bench_slot_pipeline: unknown --trace-detail '"
              << cli.get("trace-detail") << "'\n";
    return 1;
  }

  const bool smoke = std::getenv("WDM_BENCH_SMOKE") != nullptr;
  std::vector<std::int32_t> ns = smoke ? std::vector<std::int32_t>{16}
                                       : std::vector<std::int32_t>{16, 64, 256};
  std::vector<std::int32_t> ks = smoke ? std::vector<std::int32_t>{8}
                                       : std::vector<std::int32_t>{8, 16, 32};
  if (!cli.get("only").empty()) {
    const std::string only = cli.get("only");
    const auto sep = only.find(':');
    if (sep == std::string::npos) {
      std::cerr << "bench_slot_pipeline: --only expects N:k\n";
      return 1;
    }
    ns = {std::stoi(only.substr(0, sep))};
    ks = {std::stoi(only.substr(sep + 1))};
  }
  const double load = 0.7;

  util::Table table({"N", "k", "scheme", "slots/s", "scalar slots/s", "simd x",
                     "batch slots/s", "sched slots/s", "allocs/slot",
                     "traced slots/s"});
  bench::Json configs = bench::Json::array();
  std::uint64_t sink = 0;
  constexpr std::size_t kBatchWindow = 8;

  for (const std::int32_t n : ns) {
    for (const std::int32_t k : ks) {
      const std::size_t n_slots = slots_for(n, k, smoke);
      const auto slots = make_slots(n, k, n_slots, load);
      for (const bool circular : {true, false}) {
        // Default path (masked kernels unless WDM_SIMD says otherwise):
        // this is the column bench_report.py regresses against.
        const Measurement full = run_interconnect(n, k, circular, slots);
        const Measurement sched = run_scheduler_path(n, k, circular, slots);
        const Measurement batch =
            run_batch(n, k, circular, slots, kBatchWindow);
        obs::TraceRecorder recorder(*detail);
        const Measurement traced = run_interconnect(
            n, k, circular, slots,
            *detail == obs::TraceDetail::kOff ? nullptr : &recorder);
        // Scalar reference, same process, same slot stream: the speedup
        // column is the masked kernels' whole justification.
        core::set_simd_mode(core::SimdMode::kScalar);
        const Measurement scalar_full = run_interconnect(n, k, circular, slots);
        const Measurement scalar_sched = run_scheduler_path(n, k, circular, slots);
        core::set_simd_mode(core::SimdMode::kAuto);
        const double speedup = scalar_full.slots_per_s > 0.0
                                   ? full.slots_per_s / scalar_full.slots_per_s
                                   : 0.0;
        sink += full.grants + sched.grants + batch.grants + traced.grants +
                scalar_full.grants + scalar_sched.grants;
        table.add_row({util::cell(n), util::cell(k),
                       circular ? "circular" : "non-circular",
                       util::cell(static_cast<std::int64_t>(full.slots_per_s)),
                       util::cell(static_cast<std::int64_t>(scalar_full.slots_per_s)),
                       util::cell(speedup, 2),
                       util::cell(static_cast<std::int64_t>(batch.slots_per_s)),
                       util::cell(static_cast<std::int64_t>(sched.slots_per_s)),
                       util::cell(full.allocs_per_slot, 4),
                       util::cell(static_cast<std::int64_t>(traced.slots_per_s))});
        bench::Json row = bench::Json::object();
        row.set("n_fibers", n)
            .set("k", k)
            .set("scheme", circular ? "circular" : "non-circular")
            .set("slots", static_cast<std::uint64_t>(n_slots))
            .set("slots_per_s", full.slots_per_s)
            .set("allocs_per_slot", full.allocs_per_slot)
            .set("bytes_per_slot", full.bytes_per_slot)
            .set("scalar_slots_per_s", scalar_full.slots_per_s)
            .set("simd_speedup", speedup)
            .set("batch_slots_per_s", batch.slots_per_s)
            .set("batch_allocs_per_slot", batch.allocs_per_slot)
            .set("scheduler_slots_per_s", sched.slots_per_s)
            .set("scheduler_allocs_per_slot", sched.allocs_per_slot)
            .set("scheduler_bytes_per_slot", sched.bytes_per_slot)
            .set("scalar_scheduler_slots_per_s", scalar_sched.slots_per_s)
            .set("traced_slots_per_s", traced.slots_per_s)
            .set("traced_allocs_per_slot", traced.allocs_per_slot);
        configs.push(std::move(row));
      }
    }
  }

  std::cout << "Slot pipeline: load " << load << ", FIFO arbitration, "
            << "durations 1-3, kernels " << core::simd_backend() << " (sink "
            << sink << ")\n\n";
  table.print(std::cout);

  bench::Json root = bench::Json::object();
  root.set("bench", "slot_pipeline")
      .set("load", load)
      .set("smoke", smoke)
      .set("trace_detail", cli.get("trace-detail"))
      .set("simd_backend", core::simd_backend())
      .set("batch_window", static_cast<std::uint64_t>(kBatchWindow))
      .set("configs", std::move(configs));
  bench::write_bench_json("slot_pipeline", root);
  return 0;
}
