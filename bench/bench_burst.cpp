// Experiment E5 — Section V extension: connections holding multiple slots
// (optical burst switching), no-disturb vs rearrangeable policies
// (DESIGN.md §3).
//
// Expected shape: loss grows with mean holding time (channels stay occupied
// while sources keep offering). Under uniform traffic the two policies land
// within noise of each other — rearrangement only wins when the *pattern* of
// occupied channels matters, not their count — and preemptions are always
// zero (continuing connections are provably re-placeable).
#include <iostream>

#include "bench_io.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

int main() {
  using namespace wdm;

  const std::int32_t n = 8;
  const std::int32_t k = 8;
  const std::uint64_t slots = 10000;
  const double load = 0.6;

  std::cout << "E5: multi-slot connections (Section V)\n"
            << "N = " << n << ", k = " << k << ", d = 3 circular, load "
            << load << ", geometric holding times, " << slots
            << " slots/point\n\n";

  util::Table table({"mean_holding", "policy", "loss_prob", "utilization",
                     "throughput", "preempted"});
  for (const std::int64_t holding : {1, 2, 4, 8, 16, 32}) {
    for (const auto policy :
         {sim::OccupiedPolicy::kNoDisturb, sim::OccupiedPolicy::kRearrange}) {
      sim::SimulationConfig cfg;
      cfg.interconnect.n_fibers = n;
      cfg.interconnect.scheme = core::ConversionScheme::circular(k, 1, 1);
      cfg.interconnect.policy = policy;
      cfg.traffic.load = load;
      cfg.traffic.holding = holding <= 1 ? sim::HoldingTime::kSingleSlot
                                         : sim::HoldingTime::kGeometric;
      cfg.traffic.mean_holding = static_cast<double>(holding);
      cfg.slots = slots;
      cfg.warmup = slots / 5;  // longer warm-up: occupancy must reach steady state
      cfg.seed = 77;
      const auto r = sim::run_simulation(cfg);
      table.add_row(
          {util::cell(holding),
           policy == sim::OccupiedPolicy::kNoDisturb ? "no-disturb"
                                                     : "rearrange",
           util::cell_prob(r.loss_probability), util::cell(r.utilization, 4),
           util::cell(r.throughput_per_channel, 4), util::cell(r.preemptions)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape: loss grows with holding time under both policies; "
               "the two policies are statistically indistinguishable under "
               "uniform traffic (rearrangement never pays a preemption "
               "penalty: preempted = 0 everywhere).\n";
  bench::Json root = bench::Json::object();
  root.set("bench", "burst").set("rows", bench::table_json(table));
  bench::write_bench_json("burst", root);

  return 0;
}
