// Experiment E14 — multi-hop crossconnect chain (DESIGN.md §3).
//
// The paper motivates its interconnect as a WAN crossconnect; in a path of
// M such OXCs a packet must win a channel at every hop. Without conversion
// the per-hop losses compound; with per-hop limited-range conversion each
// switch re-packs wavelengths and the end-to-end survival stays close to
// (1 - p1)^M with a small per-hop p1.
//
// Expected shape: end-to-end loss grows with hops for every d; the d = 1
// column degrades far faster than d = 3, which tracks full range.
#include <iostream>

#include "bench_io.hpp"
#include "sim/network.hpp"
#include "util/table.hpp"

int main() {
  using namespace wdm;

  const std::int32_t k = 8;
  const std::int32_t n = 8;
  const double load = 0.6;

  std::cout << "E14: end-to-end loss across a chain of OXCs\n"
            << "N = " << n << ", k = " << k << ", fresh load " << load
            << " at the head, random per-hop routing, 8000 slots\n\n";

  util::Table table({"hops", "d=1", "d=3", "full"});
  for (const std::int32_t hops : {1, 2, 4, 8}) {
    std::vector<std::string> row{util::cell(hops)};
    for (const std::int32_t d : {1, 3, 8}) {
      sim::ChainConfig cfg;
      cfg.hops = hops;
      cfg.n_fibers = n;
      cfg.scheme = d == k ? core::ConversionScheme::full_range(k)
                          : core::ConversionScheme::symmetric(
                                core::ConversionKind::kCircular, k, d);
      cfg.load = load;
      cfg.slots = 8000;
      cfg.warmup = 800;
      cfg.seed = 404;
      const auto r = sim::run_chain_simulation(cfg);
      row.push_back(util::cell_prob(r.end_to_end_loss));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nShape: every column grows with hops; d=1 degrades much "
               "faster than d=3, which tracks full conversion.\n";
  bench::Json root = bench::Json::object();
  root.set("bench", "chain").set("rows", bench::table_json(table));
  bench::write_bench_json("chain", root);

  return 0;
}
