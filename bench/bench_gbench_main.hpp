// main() for the google-benchmark binaries: identical to benchmark_main,
// except that when the caller did not ask for a report file it injects
// --benchmark_out=BENCH_<name>.json so every bench target leaves the same
// diffable artifact the table-based ones write through bench_io.hpp
// (scripts/bench_report.py understands both layouts).
#pragma once

#include <benchmark/benchmark.h>

#include <iostream>
#include <string>
#include <vector>

namespace wdm::bench {

inline int run_gbench_main(const std::string& name, int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_" + name + ".json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!has_out) std::cout << "\nwrote BENCH_" << name << ".json\n";
  return 0;
}

}  // namespace wdm::bench

#define WDM_BENCHMARK_MAIN(name)                            \
  int main(int argc, char** argv) {                         \
    return ::wdm::bench::run_gbench_main(name, argc, argv); \
  }
