// Experiment E10 — the priority (QoS) extension the paper's conclusion
// names as future work (DESIGN.md §3).
//
// Two request classes share each output fiber under strict priority.
// Expected shape: the high class's grant rate is completely insulated from
// low-class pressure (it equals its solo grant rate at every mix); the low
// class absorbs all the contention; total grants trail the classless
// pooled maximum only marginally (the price of strict priority).
#include <iostream>

#include "bench_io.hpp"
#include "core/priority.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace wdm;

core::RequestVector random_rv(util::Rng& rng, std::int32_t k,
                              std::int32_t n_fibers, double p) {
  core::RequestVector rv(k);
  for (core::Wavelength w = 0; w < k; ++w) {
    for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
      if (rng.bernoulli(p)) rv.add(w);
    }
  }
  return rv;
}

}  // namespace

int main() {
  using namespace wdm;

  const std::int32_t k = 8;
  const std::int32_t n = 4;
  const double high_load = 0.08;  // ~2.6 high-priority requests per fiber-slot
  const std::int64_t trials = 5000;
  const auto scheme = core::ConversionScheme::circular(k, 1, 1);

  std::cout << "E10: strict-priority (QoS) scheduling — future-work extension\n"
            << "k = " << k << ", N = " << n << ", d = 3 circular; high class "
               "fixed at load "
            << high_load << ", low class swept; " << trials
            << " trials/point\n\n";

  util::Table table({"low_load", "high_granted", "high_solo", "low_granted",
                     "total", "pooled_max", "priority_cost"});
  for (const double low_load : {0.0, 0.1, 0.2, 0.4, 0.8}) {
    util::Rng rng(42);
    std::int64_t high_granted = 0, high_solo = 0, low_granted = 0, pooled = 0;
    for (std::int64_t t = 0; t < trials; ++t) {
      const auto high = random_rv(rng, k, n, high_load);
      const auto low = random_rv(rng, k, n, low_load);
      const auto prio = core::priority_schedule({high, low}, scheme);
      high_granted += prio.granted_per_class[0];
      low_granted += prio.granted_per_class[1];
      high_solo += core::assign_maximum(high, scheme).granted;

      core::RequestVector combined(k);
      for (core::Wavelength w = 0; w < k; ++w) {
        combined.add(w, high.count(w) + low.count(w));
      }
      pooled += core::assign_maximum(combined, scheme).granted;
    }
    const auto total = high_granted + low_granted;
    table.add_row(
        {util::cell(low_load, 2),
         util::cell(static_cast<double>(high_granted) /
                        static_cast<double>(trials),
                    4),
         util::cell(static_cast<double>(high_solo) /
                        static_cast<double>(trials),
                    4),
         util::cell(static_cast<double>(low_granted) /
                        static_cast<double>(trials),
                    4),
         util::cell(static_cast<double>(total) / static_cast<double>(trials),
                    4),
         util::cell(static_cast<double>(pooled) / static_cast<double>(trials),
                    4),
         util::cell(static_cast<double>(pooled - total) /
                        static_cast<double>(trials),
                    3)});
  }
  table.print(std::cout);
  std::cout << "\nShape: high_granted == high_solo at every mix (insulation); "
               "priority_cost small and nonnegative.\n";

  // Part 2: the time domain — two QoS classes through the slotted
  // interconnect, sweeping total load. Strict priority shields the high
  // class (20% of traffic) almost completely.
  std::cout << "\nSlotted simulation: per-class loss (20% high / 80% low, "
               "N = 8, k = 8, d = 3, 8000 slots)\n\n";
  util::Table sim_table({"load", "loss_high", "loss_low", "loss_overall"});
  for (const double load : {0.6, 0.8, 0.95}) {
    sim::SimulationConfig cfg;
    cfg.interconnect.n_fibers = 8;
    cfg.interconnect.scheme = core::ConversionScheme::circular(8, 1, 1);
    cfg.traffic.load = load;
    cfg.traffic.class_mix = {0.2, 0.8};
    cfg.slots = 8000;
    cfg.warmup = 800;
    cfg.seed = 13579;
    const auto r = sim::run_simulation(cfg);
    const auto loss_of = [&](std::size_t c) {
      return r.class_arrivals[c] == 0
                 ? 0.0
                 : static_cast<double>(r.class_losses[c]) /
                       static_cast<double>(r.class_arrivals[c]);
    };
    sim_table.add_row({util::cell(load, 2), util::cell_prob(loss_of(0)),
                       util::cell_prob(loss_of(1)),
                       util::cell_prob(r.loss_probability)});
  }
  sim_table.print(std::cout);
  std::cout << "\nShape: loss_high << loss_low at every load.\n";
  bench::Json root = bench::Json::object();
  root.set("bench", "priority")
      .set("rows", bench::table_json(table))
      .set("sim_rows", bench::table_json(sim_table));
  bench::write_bench_json("priority", root);

  return 0;
}
