// Experiment E9 — synchronous scheduled vs asynchronous FCFS operation
// (DESIGN.md §3).
//
// Section I positions the paper against asynchronous wavelength-routing
// systems where FCFS "eliminates the need for a scheduling algorithm". This
// harness puts numbers on the comparison: blocking probability of the
// continuous-time FCFS loss system vs packet loss of the slotted scheduled
// interconnect at the same per-channel offered load, plus the analytic
// Erlang corners as validation of the async substrate.
//
// Expected shape: both regimes improve rapidly with d and are close to
// their analytic corners (Erlang-B at d=1 and d=k for the async system);
// the slotted scheduled system loses less than async FCFS at equal load
// (a slot's maximum matching coordinates requests that FCFS serves
// blindly).
#include <iostream>

#include "bench_io.hpp"
#include "sim/async.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

int main() {
  using namespace wdm;

  const std::int32_t n = 8;
  const std::int32_t k = 8;

  std::cout << "E9: async FCFS wavelength routing vs slotted scheduling\n"
            << "N = " << n << ", k = " << k
            << ", circular conversion, matched offered load per channel\n\n";

  util::Table table({"d", "load", "async_fcfs", "slotted_sched", "erlang_ref"});
  for (const std::int32_t d : {1, 3, 8}) {
    const auto scheme =
        d == k ? core::ConversionScheme::full_range(k)
               : core::ConversionScheme::symmetric(
                     core::ConversionKind::kCircular, k, d);
    for (const double load : {0.6, 0.8, 0.95}) {
      sim::AsyncConfig async;
      async.n_fibers = n;
      async.scheme = scheme;
      async.load = load;
      async.arrivals = 200000;
      async.warmup = 20000;
      async.seed = 5;
      const auto a = sim::run_async_simulation(async);

      sim::SimulationConfig slotted;
      slotted.interconnect.n_fibers = n;
      slotted.interconnect.scheme = scheme;
      slotted.traffic.load = load;
      slotted.slots = 10000;
      slotted.warmup = 1000;
      slotted.seed = 5;
      const auto s = sim::run_simulation(slotted);

      // Analytic reference exists at the independence corners only.
      std::string reference = "-";
      if (d == 1) reference = util::cell_prob(sim::erlang_b(1, load));
      if (d == k) reference = util::cell_prob(sim::erlang_b(k, k * load));

      table.add_row({util::cell(d), util::cell(load, 2),
                     util::cell_prob(a.blocking_probability),
                     util::cell_prob(s.loss_probability), reference});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape: both columns fall steeply with d; slotted scheduling "
               "<= async FCFS at equal load; async matches Erlang-B at the "
               "d = 1 and d = k corners.\n";
  bench::Json root = bench::Json::object();
  root.set("bench", "async").set("rows", bench::table_json(table));
  bench::write_bench_json("async", root);

  return 0;
}
