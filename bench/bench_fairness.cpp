// Experiment E12 — arbitration fairness (DESIGN.md §3).
//
// Section III: when several inputs contend on the same wavelength, "to
// ensure fairness, a random selecting or a round-robin scheduling procedure
// should be adopted as suggested in [7] [8]" (PIM / iSLIP). This harness
// applies persistent asymmetric pressure — four input fibers all requesting
// the same wavelength every slot, with only three reachable channels — and
// measures each input's long-run grant share under the three arbitration
// policies.
//
// Expected shape: FIFO starves the last input (share 0, Jain < 1);
// round-robin and random split evenly (Jain ≈ 1).
#include <iostream>

#include "bench_io.hpp"
#include "core/scheduler.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace wdm;

  const std::int32_t slots = 20000;
  const std::int32_t contenders = 4;
  const auto scheme = core::ConversionScheme::circular(6, 1, 1);  // d = 3

  std::cout << "E12: arbitration fairness under persistent contention\n"
            << contenders << " inputs on λ0 every slot, 3 reachable channels, "
            << slots << " slots\n\n";

  struct Policy {
    const char* label;
    core::Arbitration arbitration;
  };
  const Policy policies[] = {
      {"fifo", core::Arbitration::kFifo},
      {"round-robin", core::Arbitration::kRoundRobin},
      {"random", core::Arbitration::kRandom},
  };

  util::Table table({"arbitration", "share_in0", "share_in1", "share_in2",
                     "share_in3", "jain"});
  for (const auto& policy : policies) {
    core::OutputPortScheduler port(scheme, core::Algorithm::kAuto,
                                   policy.arbitration, /*seed=*/7);
    std::vector<core::Request> requests;
    for (std::int32_t fib = 0; fib < contenders; ++fib) {
      requests.push_back(core::Request{fib, 0, static_cast<std::uint64_t>(fib), 1});
    }
    std::vector<double> wins(static_cast<std::size_t>(contenders), 0.0);
    for (std::int32_t s = 0; s < slots; ++s) {
      const auto decisions = port.schedule(requests);
      for (std::size_t i = 0; i < decisions.size(); ++i) {
        if (decisions[i].granted) wins[i] += 1.0;
      }
    }
    std::vector<std::string> row{policy.label};
    for (const double w : wins) {
      row.push_back(util::cell(w / static_cast<double>(slots), 4));
    }
    row.push_back(util::cell(util::jain_fairness(wins), 4));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nShape: fifo starves input 3 (share 0); round-robin and "
               "random both settle at 3/4 grant share each, Jain ~= 1.\n";
  bench::Json root = bench::Json::object();
  root.set("bench", "fairness").set("rows", bench::table_json(table));
  bench::write_bench_json("fairness", root);

  return 0;
}
