// Experiment E1 — scheduler time vs k (DESIGN.md §3).
//
// Claim under test (Sections III/IV): First Available is O(k), Break and
// First Available is O(dk), the approximation is O(k); the generic
// Hopcroft–Karp baseline on the explicit request graph is
// O((Nk)^1.5 d) and Glover's algorithm O(Nk log) — so the paper's
// algorithms should be orders of magnitude faster and scale linearly in k.
//
// Expected shape: FA/ApproxBFA curves ~k, BFA ~d*k (≈3x FA at d=3), and a
// widening gap to HopcroftKarp/Glover as k grows.
#include <benchmark/benchmark.h>

#include "bench_gbench_main.hpp"

#include "core/break_first_available.hpp"
#include "core/first_available.hpp"
#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace {

using namespace wdm;

constexpr std::int32_t kFibers = 16;
constexpr double kLoad = 0.5;

core::RequestVector make_requests(std::int32_t k, std::uint64_t seed) {
  util::Rng rng(seed);
  core::RequestVector rv(k);
  for (core::Wavelength w = 0; w < k; ++w) {
    for (std::int32_t fib = 0; fib < kFibers; ++fib) {
      if (rng.bernoulli(kLoad)) rv.add(w);
    }
  }
  return rv;
}

void BM_FirstAvailable(benchmark::State& state) {
  const auto k = static_cast<std::int32_t>(state.range(0));
  const auto scheme = core::ConversionScheme::non_circular(k, 1, 1);
  const auto rv = make_requests(k, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::first_available(rv, scheme));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_FirstAvailable)->RangeMultiplier(2)->Range(8, 256)->Complexity(benchmark::oN);

void BM_BreakFirstAvailable(benchmark::State& state) {
  const auto k = static_cast<std::int32_t>(state.range(0));
  const auto scheme = core::ConversionScheme::circular(k, 1, 1);
  const auto rv = make_requests(k, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::break_first_available(rv, scheme));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_BreakFirstAvailable)->RangeMultiplier(2)->Range(8, 256)->Complexity(benchmark::oN);

void BM_ApproxBfa(benchmark::State& state) {
  const auto k = static_cast<std::int32_t>(state.range(0));
  const auto scheme = core::ConversionScheme::circular(k, 1, 1);
  const auto rv = make_requests(k, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::approx_break_first_available(rv, scheme));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_ApproxBfa)->RangeMultiplier(2)->Range(8, 256)->Complexity(benchmark::oN);

void BM_BfaDegreeSweep(benchmark::State& state) {
  // O(dk): time at fixed k should grow linearly with d.
  const std::int32_t k = 64;
  const auto d = static_cast<std::int32_t>(state.range(0));
  const auto scheme =
      core::ConversionScheme::symmetric(core::ConversionKind::kCircular, k, d);
  const auto rv = make_requests(k, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::break_first_available(rv, scheme));
  }
  state.SetComplexityN(d);
}
BENCHMARK(BM_BfaDegreeSweep)->DenseRange(1, 15, 2)->Complexity(benchmark::oN);

void BM_GloverBaseline(benchmark::State& state) {
  const auto k = static_cast<std::int32_t>(state.range(0));
  const auto scheme = core::ConversionScheme::non_circular(k, 1, 1);
  const auto rv = make_requests(k, 7);
  core::OutputPortScheduler sched(scheme, core::Algorithm::kGlover);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.assign_channels(rv));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_GloverBaseline)->RangeMultiplier(2)->Range(8, 256)->Complexity(benchmark::oNLogN);

void BM_HopcroftKarpBaseline(benchmark::State& state) {
  const auto k = static_cast<std::int32_t>(state.range(0));
  const auto scheme = core::ConversionScheme::circular(k, 1, 1);
  const auto rv = make_requests(k, 7);
  core::OutputPortScheduler sched(scheme, core::Algorithm::kHopcroftKarp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sched.assign_channels(rv));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_HopcroftKarpBaseline)->RangeMultiplier(2)->Range(8, 256)->Complexity(benchmark::oNSquared);

}  // namespace

WDM_BENCHMARK_MAIN("matchers")
