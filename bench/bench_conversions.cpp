// Experiment E11 — converter usage ablation (DESIGN.md §3/§6).
//
// The Figure-1 architecture pays for a converter per output channel, but
// grants with source wavelength == channel index pass through unconverted.
// How converter-hungry are the paper's schedulers compared to the
// converter-optimal maximum matching (min-cost matching, unit cost per
// converting grant)?
//
// Expected shape: all schedulers grant the same (maximum) cardinality, but
// FA/BFA engage noticeably more converters than the optimum — they always
// take the *first* admissible channel, not the straight-through one; the
// gap grows with load and degree.
#include <iostream>

#include "bench_io.hpp"
#include "core/break_first_available.hpp"
#include "core/min_conversion.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace wdm;

  const std::int32_t k = 16;
  const std::int32_t n = 8;
  const std::int64_t trials = 1500;

  std::cout << "E11: wavelength converters engaged per slot (means over "
            << trials << " trials)\n"
            << "k = " << k << ", N = " << n << ", circular conversion\n\n";

  util::Table table({"d", "load", "granted", "bfa_conversions",
                     "min_conversions", "excess"});
  for (const std::int32_t d : {3, 5}) {
    const auto scheme = core::ConversionScheme::symmetric(
        core::ConversionKind::kCircular, k, d);
    for (const double load : {0.3, 0.6, 0.9}) {
      util::Rng rng(static_cast<std::uint64_t>(d * 100) +
                    static_cast<std::uint64_t>(load * 10));
      double granted = 0, bfa_conv = 0, min_conv = 0;
      for (std::int64_t t = 0; t < trials; ++t) {
        core::RequestVector rv(k);
        for (core::Wavelength w = 0; w < k; ++w) {
          for (std::int32_t fib = 0; fib < n; ++fib) {
            if (rng.bernoulli(load)) rv.add(w);
          }
        }
        const auto bfa = core::break_first_available(rv, scheme);
        const auto frugal = core::min_conversion_schedule(rv, scheme);
        granted += bfa.granted;
        bfa_conv += core::conversions_used(bfa);
        min_conv += frugal.conversions;
      }
      table.add_row({util::cell(d), util::cell(load, 2),
                     util::cell(granted / static_cast<double>(trials), 4),
                     util::cell(bfa_conv / static_cast<double>(trials), 4),
                     util::cell(min_conv / static_cast<double>(trials), 4),
                     util::cell((bfa_conv - min_conv) /
                                    static_cast<double>(trials),
                                4)});
    }
  }
  table.print(std::cout);
  std::cout << "\nShape: same granted column for both schedulers (both are "
               "maximum); BFA engages more converters than the optimum.\n";
  bench::Json root = bench::Json::object();
  root.set("bench", "conversions").set("rows", bench::table_json(table));
  bench::write_bench_json("conversions", root);

  return 0;
}
