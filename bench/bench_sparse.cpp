// Experiment E13 — sparse conversion: throughput vs converter-pool size
// (DESIGN.md §3).
//
// Each output fiber gets a pool of C shared converters instead of one per
// channel. The classic sparse-conversion result ([11][13]) is that a small
// pool recovers nearly all of the full-conversion benefit — the budgeted
// matching scheduler makes that measurable per slot.
//
// Expected shape: granted requests rise steeply from C = 0 and saturate at
// the unconstrained maximum within a few converters, well before C = k.
#include <iostream>

#include "bench_io.hpp"
#include "core/sparse_converters.hpp"
#include "sim/simulation.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace wdm;

  const std::int32_t k = 16;
  const std::int32_t n = 8;
  const std::int64_t trials = 800;
  const auto scheme = core::ConversionScheme::circular(k, 1, 1);

  std::cout << "E13: sparse conversion — grants vs converter-pool size C\n"
            << "k = " << k << ", N = " << n
            << ", d = 3 circular, mean grants per fiber-slot over " << trials
            << " trials\n\n";

  util::Table table({"load", "C=0", "C=1", "C=2", "C=4", "C=8", "C=16",
                     "offered"});
  for (const double load : {0.04, 0.08, 0.15}) {
    util::Rng rng(9000 + static_cast<std::uint64_t>(load * 100));
    const std::int32_t budgets[] = {0, 1, 2, 4, 8, 16};
    double sums[6] = {};
    double offered = 0;
    for (std::int64_t t = 0; t < trials; ++t) {
      core::RequestVector rv(k);
      for (core::Wavelength w = 0; w < k; ++w) {
        for (std::int32_t fib = 0; fib < n; ++fib) {
          if (rng.bernoulli(load)) rv.add(w);
        }
      }
      offered += rv.total();
      for (std::size_t c = 0; c < 6; ++c) {
        sums[c] += core::sparse_converter_schedule(rv, scheme, budgets[c])
                       .assignment.granted;
      }
    }
    std::vector<std::string> row{util::cell(load, 2)};
    for (std::size_t c = 0; c < 6; ++c) {
      row.push_back(util::cell(sums[c] / static_cast<double>(trials), 4));
    }
    row.push_back(util::cell(offered / static_cast<double>(trials), 4));
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Part 2: the same question in the time domain — steady-state packet loss
  // of the slotted interconnect under the budgeted scheduler.
  std::cout << "\nSlotted simulation: loss probability vs converter budget "
               "(N = 8, k = 16, load 0.08, 6000 slots)\n\n";
  util::Table sim_table({"C", "loss_prob", "vs_unbudgeted"});
  double unbudgeted = 0.0;
  {
    sim::SimulationConfig cfg;
    cfg.interconnect.n_fibers = 8;
    cfg.interconnect.scheme = scheme;
    cfg.traffic.load = 0.08;
    cfg.slots = 6000;
    cfg.warmup = 600;
    cfg.seed = 31337;
    unbudgeted = sim::run_simulation(cfg).loss_probability;
  }
  for (const std::int32_t budget : {0, 1, 2, 4, 8, 16}) {
    sim::SimulationConfig cfg;
    cfg.interconnect.n_fibers = 8;
    cfg.interconnect.scheme = scheme;
    cfg.interconnect.algorithm = core::Algorithm::kSparseBudgeted;
    cfg.interconnect.converter_budget = budget;
    cfg.traffic.load = 0.08;
    cfg.slots = 6000;
    cfg.warmup = 600;
    cfg.seed = 31337;
    const auto r = sim::run_simulation(cfg);
    sim_table.add_row({util::cell(budget), util::cell_prob(r.loss_probability),
                       util::cell(unbudgeted > 0
                                      ? r.loss_probability / unbudgeted
                                      : 1.0,
                                  3)});
  }
  sim_table.print(std::cout);

  std::cout << "\nShape: grants saturate within a handful of converters — "
               "full per-channel conversion hardware is overkill.\n";
  bench::Json root = bench::Json::object();
  root.set("bench", "sparse")
      .set("rows", bench::table_json(table))
      .set("sim_rows", bench::table_json(sim_table));
  bench::write_bench_json("sparse", root);

  return 0;
}
