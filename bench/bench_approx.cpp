// Experiment E4 — Section IV.C approximation: empirical gap vs the
// Theorem-3 bound, and the speedup from evaluating one reduced graph
// instead of d (DESIGN.md §3).
//
// Expected shape: observed gap always <= floor(d/2); almost always 0 on
// random traffic; approximate runtime ≈ exact / d.
#include <iostream>

#include "bench_io.hpp"
#include "core/break_first_available.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main() {
  using namespace wdm;

  const std::int32_t k = 32;
  const std::int32_t n_fibers = 8;
  const double load = 0.5;
  const std::int64_t trials = 4000;

  std::cout << "E4: exact BFA vs single-break approximation\n"
            << "k = " << k << ", N = " << n_fibers << ", load " << load << ", "
            << trials << " random request vectors per degree\n\n";

  util::Table table({"d", "bound", "mean_gap", "max_gap", "pct_exact",
                     "exact_us", "approx_us", "speedup"});
  for (const std::int32_t d : {3, 5, 7, 9, 11}) {
    const auto scheme =
        core::ConversionScheme::symmetric(core::ConversionKind::kCircular, k, d);
    util::Rng rng(1000 + static_cast<std::uint64_t>(d));
    util::RunningStats gap;
    std::int64_t exact_hits = 0;
    std::int32_t bound = 0;
    double exact_ns = 0, approx_ns = 0;

    for (std::int64_t t = 0; t < trials; ++t) {
      core::RequestVector rv(k);
      for (core::Wavelength w = 0; w < k; ++w) {
        for (std::int32_t fib = 0; fib < n_fibers; ++fib) {
          if (rng.bernoulli(load)) rv.add(w);
        }
      }
      util::Stopwatch clock;
      const auto exact = core::break_first_available(rv, scheme);
      exact_ns += static_cast<double>(clock.elapsed_ns());
      clock.reset();
      const auto approx = core::approx_break_first_available(rv, scheme);
      approx_ns += static_cast<double>(clock.elapsed_ns());

      const auto g = exact.granted - approx.assignment.granted;
      gap.add(g);
      exact_hits += g == 0 ? 1 : 0;
      bound = approx.gap_bound;
      if (g > bound) {
        std::cerr << "THEOREM 3 VIOLATION: gap " << g << " > bound " << bound
                  << "\n";
        return 1;
      }
    }
    table.add_row({util::cell(d), util::cell(bound), util::cell(gap.mean(), 4),
                   util::cell(gap.max(), 2),
                   util::cell(100.0 * static_cast<double>(exact_hits) /
                                  static_cast<double>(trials),
                              4),
                   util::cell(exact_ns / static_cast<double>(trials) / 1e3, 4),
                   util::cell(approx_ns / static_cast<double>(trials) / 1e3, 4),
                   util::cell(exact_ns / approx_ns, 3)});
  }
  table.print(std::cout);
  std::cout << "\nTheorem 3 held on every instance (gap <= bound).\n";
  bench::Json root = bench::Json::object();
  root.set("bench", "approx").set("rows", bench::table_json(table));
  bench::write_bench_json("approx", root);

  return 0;
}
