// Overload-control latency bound (E17): per-slot step wall time under
// oversubscription, with and without the overload control plane.
//
// Drives Interconnect::step over pre-generated arrival streams at offered
// loads from 0.5x to 2x saturation (saturation = N*k fresh requests per
// slot, the fabric's aggregate service capacity) and records the per-slot
// wall-time distribution. The claim under test: with admission control and
// deadline-bounded degradation enabled, the p99 slot latency stays bounded
// as offered load doubles past saturation, because excess work is shed at
// ingress and the per-port matcher downgrades from O(dk) exact BFA to the
// O(k) approximation instead of grinding through a saturated request graph.
//
// Latencies accumulate into an obs::Histogram per run (O(1) add, no sample
// vector, no post-hoc sort), so the JSON rows carry p50/p90/p99/p999/max
// plus the raw log-bucket counts for offline analysis.
//
// Emits BENCH_overload.json. WDM_BENCH_SMOKE=1 shrinks slot counts for CI
// smoke runs. --trace-detail/--telemetry attach a trace recorder to the
// measured runs and export the (ring-bounded, most-recent) Chrome trace.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <vector>

#include "bench_io.hpp"
#include "core/request.hpp"
#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"
#include "sim/interconnect.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace wdm;

/// Oversubscribed arrival streams: round(factor * N * k) requests per slot,
/// inputs striped over the channel grid (duplicates of an input channel are
/// legal arrivals — they contend and lose, which is the point), destinations
/// uniform. Holding time 1 keeps every slot identically loaded so the
/// latency distribution reflects scheduling work, not occupancy drift.
std::vector<std::vector<core::SlotRequest>> make_slots(std::int32_t n_fibers,
                                                       std::int32_t k,
                                                       std::size_t n_slots,
                                                       double factor) {
  util::Rng rng(1234);
  const auto per_slot = static_cast<std::size_t>(
      factor * static_cast<double>(n_fibers) * static_cast<double>(k));
  std::vector<std::vector<core::SlotRequest>> slots(n_slots);
  std::uint64_t id = 0;
  for (auto& slot : slots) {
    slot.reserve(per_slot);
    for (std::size_t i = 0; i < per_slot; ++i) {
      const auto input = static_cast<std::int32_t>(
          rng.uniform_below(static_cast<std::uint64_t>(n_fibers)));
      const auto w = static_cast<core::Wavelength>(
          rng.uniform_below(static_cast<std::uint64_t>(k)));
      const auto output = static_cast<std::int32_t>(
          rng.uniform_below(static_cast<std::uint64_t>(n_fibers)));
      slot.push_back(core::SlotRequest{
          input, w, output, id++, 1,
          static_cast<std::int32_t>(rng.uniform_below(3))});
    }
  }
  return slots;
}

sim::InterconnectConfig base_config(std::int32_t n, std::int32_t k) {
  sim::InterconnectConfig cfg;
  cfg.n_fibers = n;
  // Limited-range circular conversion, degree d = 5: resolves to the exact
  // O(dk) BFA matcher (full range would resolve to the already-O(k)
  // full-range scheduler, which has nothing to degrade).
  cfg.scheme = core::ConversionScheme::circular(k, 2, 2);
  cfg.arbitration = core::Arbitration::kFifo;
  cfg.seed = 11;
  return cfg;
}

sim::InterconnectConfig overload_config(std::int32_t n, std::int32_t k) {
  auto cfg = base_config(n, k);
  cfg.admission.enabled = true;
  cfg.admission.tokens_per_slot = static_cast<double>(k);  // per input fiber
  cfg.admission.bucket_depth = 2.0 * static_cast<double>(k);
  cfg.admission.queue_capacity = static_cast<std::size_t>(2 * k);
  cfg.admission.drop_policy = sim::DropPolicy::kPriorityShed;
  // Budget for roughly half the ports going exact at saturation: past that
  // the planner downgrades the rest to the O(k) approximation.
  cfg.degrade.op_budget =
      static_cast<std::uint64_t>(n) *
      static_cast<std::uint64_t>(cfg.scheme.degree()) *
      static_cast<std::uint64_t>(k) / 2;
  cfg.degrade.recovery_slots = 4;
  return cfg;
}

struct Row {
  double factor = 0.0;
  bool control = false;
  obs::Histogram latency;  // per-slot step nanoseconds
  std::uint64_t granted = 0;
  std::uint64_t shed = 0;
  std::uint64_t degraded_ports = 0;
  std::uint64_t degraded_slots = 0;
};

Row run(std::int32_t n, std::int32_t k, double factor, bool control,
        const std::vector<std::vector<core::SlotRequest>>& slots,
        obs::TraceRecorder* recorder) {
  sim::Interconnect ic(control ? overload_config(n, k) : base_config(n, k));

  Row row;
  row.factor = factor;
  row.control = control;

  for (const auto& slot : slots) ic.step(slot);  // warm-up sweep

  ic.set_telemetry(recorder);
  for (const auto& slot : slots) {
    const std::uint64_t t0 = util::now_ns();
    const auto stats = ic.step(slot);
    row.latency.add(util::now_ns() - t0);
    row.granted += stats.granted;
    row.shed += stats.shed_overload;
    row.degraded_ports += stats.degraded_ports;
    row.degraded_slots += stats.degraded_ports > 0 ? 1 : 0;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli("bench_overload",
                "per-slot latency under oversubscription, control on/off");
  cli.add_option("trace-detail", "off",
                 "telemetry level for the measured runs: off|slots|fibers|full");
  cli.add_option("telemetry", "",
                 "write the (most recent) Chrome trace JSON to this path");
  if (!cli.parse(argc, argv)) return 1;
  const auto detail = obs::parse_trace_detail(cli.get("trace-detail"));
  if (!detail.has_value()) {
    std::cerr << "bench_overload: unknown --trace-detail '"
              << cli.get("trace-detail") << "'\n";
    return 1;
  }

  const bool smoke = std::getenv("WDM_BENCH_SMOKE") != nullptr;
  const std::int32_t n = 64;
  const std::int32_t k = 16;
  const std::size_t n_slots = smoke ? 100 : 1500;
  const std::vector<double> factors{0.5, 1.0, 1.5, 2.0};

  obs::TraceRecorder recorder(*detail);
  obs::TraceRecorder* recorder_ptr =
      *detail == obs::TraceDetail::kOff ? nullptr : &recorder;

  util::Table table({"load x sat", "control", "p50 us", "p90 us", "p99 us",
                     "p999 us", "max us", "granted", "shed", "degr ports",
                     "degr slots"});
  bench::Json rows = bench::Json::array();

  for (const double factor : factors) {
    const auto slots = make_slots(n, k, n_slots, factor);
    for (const bool control : {false, true}) {
      const Row row = run(n, k, factor, control, slots, recorder_ptr);
      const auto& h = row.latency;
      table.add_row({util::cell(factor, 2), control ? "on" : "off",
                     util::cell(static_cast<double>(h.p50()) / 1e3, 4),
                     util::cell(static_cast<double>(h.p90()) / 1e3, 4),
                     util::cell(static_cast<double>(h.p99()) / 1e3, 4),
                     util::cell(static_cast<double>(h.p999()) / 1e3, 4),
                     util::cell(static_cast<double>(h.max()) / 1e3, 4),
                     util::cell(row.granted), util::cell(row.shed),
                     util::cell(row.degraded_ports),
                     util::cell(row.degraded_slots)});
      bench::Json j = bench::Json::object();
      j.set("load_factor", row.factor)
          .set("control", row.control)
          .set("p50_ns", static_cast<double>(h.p50()))
          .set("p90_ns", static_cast<double>(h.p90()))
          .set("p99_ns", static_cast<double>(h.p99()))
          .set("p999_ns", static_cast<double>(h.p999()))
          .set("max_ns", static_cast<double>(h.max()))
          .set("mean_ns", h.mean())
          .set("granted", row.granted)
          .set("shed_overload", row.shed)
          .set("degraded_ports", row.degraded_ports)
          .set("degraded_slots", row.degraded_slots);
      // Raw log-bucket counts (inclusive upper edges) so offline analysis
      // can recompute any quantile without the per-slot samples.
      bench::Json les = bench::Json::array();
      bench::Json counts = bench::Json::array();
      h.for_each_nonempty(
          [&](std::uint64_t /*lo*/, std::uint64_t hi, std::uint64_t count) {
            les.push(hi);
            counts.push(count);
          });
      j.set("hist_le_ns", std::move(les)).set("hist_count", std::move(counts));
      rows.push(std::move(j));
    }
  }

  std::cout << "Overload control plane: N=" << n << ", k=" << k
            << ", circular conversion d=5, " << n_slots
            << " measured slots per point\n\n";
  table.print(std::cout);

  if (!cli.get("telemetry").empty()) {
    std::ofstream os(cli.get("telemetry"));
    if (!os) {
      std::cerr << "bench_overload: cannot open " << cli.get("telemetry")
                << "\n";
      return 1;
    }
    obs::write_chrome_trace(os, recorder);
  }

  bench::Json root = bench::Json::object();
  root.set("bench", "overload")
      .set("n_fibers", n)
      .set("k", k)
      .set("slots", static_cast<std::uint64_t>(n_slots))
      .set("smoke", smoke)
      .set("rows", std::move(rows));
  bench::write_bench_json("overload", root);
  return 0;
}
