// Experiment E3 — packet-loss probability vs offered load (DESIGN.md §3).
//
// The evaluation the paper's motivation implies (and its references
// [11][13][14] report): slotted Bernoulli traffic through an N x N
// bufferless WDM interconnect, sweeping the offered load for several
// conversion degrees and both conversion kinds.
//
// Expected shape:
//   * loss grows with load for every configuration;
//   * d = 1 (no conversion) is clearly worst;
//   * d = 3 is already close to full-range conversion (the limited-range
//     converters' headline property);
//   * circular symmetric conversion edges out non-circular at equal d
//     (no disadvantaged end wavelengths).
#include <iostream>

#include "bench_io.hpp"
#include "sim/simulation.hpp"
#include "util/table.hpp"

int main() {
  using namespace wdm;

  const std::int32_t n = 8;
  const std::int32_t k = 8;
  const std::uint64_t slots = 12000;
  const double loads[] = {0.5, 0.6, 0.7, 0.8, 0.9, 0.95};

  struct Config {
    const char* label;
    core::ConversionScheme scheme;
  };
  const Config configs[] = {
      {"circ d=1", core::ConversionScheme::circular(k, 0, 0)},
      {"circ d=2", core::ConversionScheme::circular(k, 1, 0)},
      {"circ d=3", core::ConversionScheme::circular(k, 1, 1)},
      {"circ d=5", core::ConversionScheme::circular(k, 2, 2)},
      {"full  d=8", core::ConversionScheme::full_range(k)},
      {"nonc d=3", core::ConversionScheme::non_circular(k, 1, 1)},
      {"nonc d=5", core::ConversionScheme::non_circular(k, 2, 2)},
  };

  std::cout << "E3: packet loss probability vs offered load\n"
            << "N = " << n << ", k = " << k << ", Bernoulli uniform traffic, "
            << slots << " slots/point (fresh seed per point)\n\n";

  std::vector<std::string> headers{"config"};
  for (const double load : loads) headers.push_back("load " + util::cell(load, 2));
  util::Table table(headers);

  for (const auto& config : configs) {
    std::vector<std::string> row{config.label};
    for (const double load : loads) {
      sim::SimulationConfig cfg;
      cfg.interconnect.n_fibers = n;
      cfg.interconnect.scheme = config.scheme;
      cfg.traffic.load = load;
      cfg.slots = slots;
      cfg.warmup = slots / 10;
      cfg.seed = 1234;
      const auto r = sim::run_simulation(cfg);
      row.push_back(util::cell_prob(r.loss_probability));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);

  // Part 2: statistical multiplexing — loss vs k at fixed load and degree.
  // More wavelengths per fiber smooth the per-fiber arrival process, so
  // loss falls with k even though the per-channel load is unchanged; the
  // d = 3 column keeps tracking full conversion at every k.
  std::cout << "\nLoss vs wavelengths per fiber (N = 8, load 0.8, "
            << slots << " slots/point)\n\n";
  util::Table ktable({"k", "d=1", "d=3", "full"});
  for (const std::int32_t kk : {4, 8, 16, 32}) {
    std::vector<std::string> row{util::cell(kk)};
    for (const std::int32_t d : {1, 3, 0}) {
      sim::SimulationConfig cfg;
      cfg.interconnect.n_fibers = n;
      cfg.interconnect.scheme =
          d == 0 ? core::ConversionScheme::full_range(kk)
                 : core::ConversionScheme::symmetric(
                       core::ConversionKind::kCircular, kk, d);
      cfg.traffic.load = 0.8;
      cfg.slots = slots;
      cfg.warmup = slots / 10;
      cfg.seed = 4321;
      row.push_back(util::cell_prob(sim::run_simulation(cfg).loss_probability));
    }
    ktable.add_row(std::move(row));
  }
  ktable.print(std::cout);

  std::cout << "\nSeries shape checks: loss(d=1) > loss(d=3) >= loss(full); "
               "loss monotone in load; loss falls with k at d >= 3 "
               "(statistical multiplexing).\n";
  bench::Json root = bench::Json::object();
  root.set("bench", "loss_vs_load")
      .set("rows", bench::table_json(table))
      .set("k_rows", bench::table_json(ktable));
  bench::write_bench_json("loss_vs_load", root);

  return 0;
}
