// The switching fabric of Figure 1, made explicit.
//
// The paper's architecture: Nk demultiplexed input channels enter a
// space-division fabric; each output wavelength channel is fed by a
// combiner with N·d inputs ("there are Nd inputs to a combiner, but only
// one of them may carry signal at a time"), followed by the converter and
// the output multiplexer. The fabric is therefore a sparse crossbar: the
// crosspoint (input channel (i, w) -> output channel (o, u)) exists iff
// wavelength w can convert to channel u.
//
// This module materialises that crosspoint matrix: it validates that a
// schedule's grants only use existing crosspoints, enforces the
// one-signal-per-combiner and one-grant-per-input-channel constraints, and
// reports the hardware inventory (crosspoints, combiner fan-in) that the
// sparse fabric saves versus a full Nk x Nk crossbar — the architectural
// payoff of limited-range conversion.
#pragma once

#include <cstdint>
#include <vector>

#include "core/conversion.hpp"
#include "hw/hw_scheduler.hpp"

namespace wdm::hw {

/// Hardware inventory of the Figure-1 fabric.
struct FabricInventory {
  std::uint64_t crosspoints = 0;        ///< realised switch points
  std::uint64_t full_crossbar = 0;      ///< (Nk)^2 reference
  std::uint64_t combiner_fan_in = 0;    ///< inputs per output-channel combiner
  std::uint64_t converters = 0;         ///< one per output channel (N*k)
};

class CrosspointFabric {
 public:
  /// Fabric for an n_fibers x n_fibers switch under `scheme`.
  CrosspointFabric(std::int32_t n_fibers, core::ConversionScheme scheme);

  std::int32_t n_fibers() const noexcept { return n_fibers_; }
  std::int32_t k() const noexcept { return scheme_.k(); }

  /// Does the crosspoint (input fiber/wavelength -> output fiber/channel)
  /// exist? Independent of the output fiber (any input channel reaches any
  /// output fiber); provided for symmetry and checking.
  bool crosspoint_exists(core::Wavelength in_wavelength,
                         core::Channel out_channel) const;

  /// Hardware inventory of this fabric vs a full crossbar.
  FabricInventory inventory() const;

  /// Routes one slot's grants for one output fiber. Throws std::logic_error
  /// if a grant uses a missing crosspoint, two grants collide on a combiner
  /// (same output channel), or one input channel carries two grants —
  /// i.e. it proves the schedule is physically realisable. Returns the
  /// number of closed crosspoints.
  std::size_t route(const std::vector<HwGrant>& grants) const;

 private:
  std::int32_t n_fibers_;
  core::ConversionScheme scheme_;
};

}  // namespace wdm::hw
