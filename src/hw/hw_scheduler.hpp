// Register-transfer-level emulation of the per-output-fiber scheduler.
//
// The paper argues its algorithms "can be easily implemented in hardware"
// with constant-time steps: each channel step is one mask (wired conversion
// feasibility) + one priority encode (first pending wavelength) + one arbiter
// grant + one register update. This model executes exactly those primitives
// against the Section II.B register representation and counts clock cycles,
// giving experiment E7 its data: ~k cycles for First Available, ~d(k-1) for
// serial Break-and-First-Available, ~(k-1) + ceil(log2 d) with d parallel
// matching units.
//
// The rotated-FA datapath here is an independent reimplementation of the
// core kernels (counters + encoders instead of request vectors), which the
// test suite uses for differential validation: hw grants must equal the
// core::* matching sizes on every instance.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/conversion.hpp"
#include "core/request.hpp"
#include "hw/arbiter.hpp"
#include "hw/bitvec.hpp"
#include "hw/request_register.hpp"

namespace wdm::hw {

/// One committed grant: which input channel won which output channel.
struct HwGrant {
  std::int32_t input_fiber = 0;
  core::Wavelength wavelength = 0;
  core::Channel channel = 0;
};

/// One traced datapath event: a matching-phase channel step or a commit
/// grant. `wavelength` is core::kNone when the step left the channel idle.
struct TraceEvent {
  enum class Phase : std::uint8_t { kMatch, kCommit };
  Phase phase = Phase::kMatch;
  std::uint64_t cycle = 0;
  core::Channel channel = 0;
  core::Wavelength wavelength = core::kNone;
  std::int32_t granted_so_far = 0;
};

/// Clock-cycle accounting for one scheduled slot.
struct CycleReport {
  std::uint64_t total = 0;          ///< serial implementation
  std::uint64_t critical_path = 0;  ///< with d parallel matching units
  std::uint64_t channel_steps = 0;  ///< executed channel iterations
  std::uint64_t candidates = 0;     ///< BFA candidate breaks evaluated
};

class HwPortScheduler {
 public:
  HwPortScheduler(core::ConversionScheme scheme, std::int32_t n_fibers,
                  bool random_arbitration = false, std::uint64_t seed = 1);

  const core::ConversionScheme& scheme() const noexcept { return scheme_; }
  std::int32_t n_fibers() const noexcept { return reg_.n_fibers(); }
  std::int32_t k() const noexcept { return scheme_.k(); }

  /// Latches a slot's requests into the Nk-bit register (1 cycle).
  void load(std::span<const core::Request> requests);

  /// Marks occupied output channels (Section V); default all free.
  void set_availability(std::span<const std::uint8_t> available);

  /// Runs the algorithm matching the scheme (FA / BFA / full-range trivial)
  /// and commits grants through the per-wavelength arbiters.
  std::vector<HwGrant> run();

  const CycleReport& cycles() const noexcept { return cycles_; }

  /// Installs a per-event trace hook (e.g. a VCD dumper). Fires on the
  /// matching channel steps of FA / full-range and on every commit grant;
  /// BFA's internal candidate sweeps are not traced (they are the d
  /// speculative matching units, whose winner commits).
  void set_tracer(std::function<void(const TraceEvent&)> tracer) {
    tracer_ = std::move(tracer);
  }

 private:
  /// Tentative channel->wavelength map produced by a matching phase.
  struct Plan {
    std::vector<core::Wavelength> source;  // size k, kNone = idle
    std::int32_t granted = 0;
  };

  Plan run_first_available();
  Plan run_break_first_available();
  Plan run_full_range();
  /// Rotated First Available for one breaking candidate (counter datapath).
  Plan candidate_break(core::Wavelength w_i, core::Channel u,
                       std::span<const std::int32_t> counts);
  std::vector<HwGrant> commit(const Plan& plan);
  bool channel_free(core::Channel v) const;

  core::ConversionScheme scheme_;
  RequestRegister reg_;
  BitVector available_;
  std::vector<BitVector> conv_mask_;  // conv_mask_[u]: wavelengths reaching u
  bool random_arbitration_;
  std::vector<RoundRobinArbiter> rr_arbiters_;  // one per wavelength
  std::vector<RandomArbiter> rnd_arbiters_;
  CycleReport cycles_;
  std::function<void(const TraceEvent&)> tracer_;
};

}  // namespace wdm::hw
