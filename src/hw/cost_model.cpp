#include "hw/cost_model.hpp"

#include <bit>

#include "util/check.hpp"

namespace wdm::hw {

namespace {

std::uint64_t u64(std::int32_t v) { return static_cast<std::uint64_t>(v); }

/// Gates of an n-input priority encoder (parallel prefix + encode).
std::uint64_t encoder(std::uint64_t n) {
  if (n <= 1) return 1;
  const auto logn = static_cast<std::uint64_t>(std::bit_width(n - 1));
  return 4 * n + n * logn / 2;
}

/// Gates of an n-input OR tree.
std::uint64_t or_tree(std::uint64_t n) { return n > 0 ? n - 1 : 0; }

}  // namespace

SchedulerCost estimate_cost(std::int32_t n_fibers, std::int32_t k,
                            std::int32_t d, bool circular, bool parallel_bfa) {
  WDM_CHECK(n_fibers > 0 && k > 0 && d >= 1 && d <= k);
  SchedulerCost c;

  const std::uint64_t N = u64(n_fibers);
  const std::uint64_t K = u64(k);
  const std::uint64_t D = u64(d);
  const auto log_n =
      static_cast<std::uint64_t>(std::bit_width(N <= 1 ? std::uint64_t{1} : N - 1));

  // Section II.B state: Nk-bit request register, k-bit summary, k decision
  // entries of ceil(log2 N) + ceil(log2 k) bits, k arbiter pointers.
  const auto log_k =
      static_cast<std::uint64_t>(std::bit_width(K <= 1 ? std::uint64_t{1} : K - 1));
  c.register_bits = N * K + K + K * (log_n + log_k) + K * log_n;

  // One k-input masked priority encoder per matching unit (the conversion
  // masks themselves are wiring, no gates).
  c.matching_units = (circular && parallel_bfa) ? D : 1;
  c.encoder_gates = c.matching_units * (encoder(K) + K /* mask AND row */);

  // Per-wavelength OR tree over its N register bits (summary generation).
  c.or_tree_gates = K * or_tree(N);

  // Per-wavelength round-robin arbiter: rotate + encode over N requesters.
  c.arbiter_gates = K * (encoder(N) + 2 * N);

  c.total_gates =
      c.encoder_gates + c.or_tree_gates + c.arbiter_gates + c.register_bits / 8;
  return c;
}

}  // namespace wdm::hw
