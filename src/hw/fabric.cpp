#include "hw/fabric.hpp"

#include <vector>

#include "util/check.hpp"

namespace wdm::hw {

CrosspointFabric::CrosspointFabric(std::int32_t n_fibers,
                                   core::ConversionScheme scheme)
    : n_fibers_(n_fibers), scheme_(std::move(scheme)) {
  WDM_CHECK_MSG(n_fibers > 0, "need at least one fiber");
}

bool CrosspointFabric::crosspoint_exists(core::Wavelength in_wavelength,
                                         core::Channel out_channel) const {
  return scheme_.can_convert(in_wavelength, out_channel);
}

FabricInventory CrosspointFabric::inventory() const {
  FabricInventory inv;
  const auto n = static_cast<std::uint64_t>(n_fibers_);
  const auto kk = static_cast<std::uint64_t>(scheme_.k());
  // Crosspoints: every input channel (n*k of them) reaches, on each of the
  // n output fibers, exactly its adjacency set.
  std::uint64_t adjacency_total = 0;
  for (core::Wavelength w = 0; w < scheme_.k(); ++w) {
    adjacency_total += scheme_.adjacency_list(w).size();
  }
  inv.crosspoints = n * n * adjacency_total;
  inv.full_crossbar = (n * kk) * (n * kk);
  // Combiner fan-in: all input channels whose wavelength converts to this
  // output channel, from all N input fibers ("Nd inputs to a combiner" for
  // interior channels; clipped non-circular edge channels have fewer).
  inv.combiner_fan_in = n * static_cast<std::uint64_t>(scheme_.degree());
  inv.converters = n * kk;
  return inv;
}

std::size_t CrosspointFabric::route(const std::vector<HwGrant>& grants) const {
  std::vector<std::uint8_t> combiner_busy(static_cast<std::size_t>(scheme_.k()),
                                          0);
  std::vector<std::uint8_t> input_busy(
      static_cast<std::size_t>(n_fibers_) *
          static_cast<std::size_t>(scheme_.k()),
      0);
  for (const auto& g : grants) {
    WDM_CHECK_MSG(g.input_fiber >= 0 && g.input_fiber < n_fibers_ &&
                      g.wavelength >= 0 && g.wavelength < scheme_.k() &&
                      g.channel >= 0 && g.channel < scheme_.k(),
                  "grant endpoints out of range");
    WDM_CHECK_MSG(crosspoint_exists(g.wavelength, g.channel),
                  "grant uses a crosspoint the fabric does not have");
    auto& combiner = combiner_busy[static_cast<std::size_t>(g.channel)];
    WDM_CHECK_MSG(combiner == 0,
                  "two signals on one combiner (output channel collision)");
    combiner = 1;
    auto& input = input_busy[static_cast<std::size_t>(g.input_fiber) *
                                 static_cast<std::size_t>(scheme_.k()) +
                             static_cast<std::size_t>(g.wavelength)];
    WDM_CHECK_MSG(input == 0, "one input channel feeding two grants");
    input = 1;
  }
  return grants.size();
}

}  // namespace wdm::hw
