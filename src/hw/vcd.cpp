#include "hw/vcd.hpp"

#include <ostream>

#include "hw/hw_scheduler.hpp"
#include "util/check.hpp"

namespace wdm::hw {

namespace {

/// VCD identifier codes, shortest-first. The standard allows any printable
/// ASCII 33..126; we skip '#' and '$' so identifiers never look like
/// timestamps or keywords to simple downstream tooling.
std::string id_for(std::size_t index) {
  static constexpr char kAlphabet[] =
      "!\"%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_`"
      "abcdefghijklmnopqrstuvwxyz{|}~";
  constexpr std::size_t kBase = sizeof(kAlphabet) - 1;
  std::string id;
  std::size_t n = index;
  do {
    id += kAlphabet[n % kBase];
    n /= kBase;
  } while (n > 0);
  return id;
}

}  // namespace

VcdWriter::VcdWriter(std::ostream& os, std::string module)
    : os_(os), module_(std::move(module)) {}

VcdWriter::Signal VcdWriter::add_wire(const std::string& name,
                                      std::uint32_t width) {
  WDM_CHECK_MSG(!begun_, "wires must be declared before begin()");
  WDM_CHECK_MSG(width >= 1 && width <= 64, "wire width must be in [1, 64]");
  wires_.push_back(Wire{name, width, id_for(wires_.size()), 0, false, false, 0});
  return wires_.size() - 1;
}

void VcdWriter::begin() {
  WDM_CHECK_MSG(!begun_, "begin() called twice");
  begun_ = true;
  os_ << "$timescale 1ns $end\n";
  os_ << "$scope module " << module_ << " $end\n";
  for (const auto& wire : wires_) {
    os_ << "$var wire " << wire.width << ' ' << wire.id << ' ' << wire.name
        << " $end\n";
  }
  os_ << "$upscope $end\n$enddefinitions $end\n$dumpvars\n";
  for (const auto& wire : wires_) {
    if (wire.width == 1) {
      os_ << 'x' << wire.id << '\n';
    } else {
      os_ << "bx " << wire.id << '\n';
    }
  }
  os_ << "$end\n";
}

void VcdWriter::set(Signal signal, std::uint64_t value) {
  WDM_CHECK_MSG(begun_, "set() before begin()");
  WDM_CHECK(signal < wires_.size());
  auto& wire = wires_[signal];
  if (wire.width < 64) value &= (1ULL << wire.width) - 1;
  wire.pending = value;
  wire.dirty = true;
}

void VcdWriter::emit_value(const Wire& wire, std::uint64_t value) {
  if (wire.width == 1) {
    os_ << (value & 1) << wire.id << '\n';
    return;
  }
  os_ << 'b';
  bool leading = true;
  for (std::int32_t bit = static_cast<std::int32_t>(wire.width) - 1; bit >= 0;
       --bit) {
    const bool set_bit = (value >> bit) & 1;
    if (set_bit) leading = false;
    if (!leading || bit == 0) os_ << (set_bit ? '1' : '0');
  }
  os_ << ' ' << wire.id << '\n';
}

void VcdWriter::tick() {
  WDM_CHECK_MSG(begun_, "tick() before begin()");
  bool any = false;
  for (auto& wire : wires_) {
    if (!wire.dirty) continue;
    if (wire.initialised && wire.pending == wire.value) {
      wire.dirty = false;
      continue;
    }
    if (!any) {
      os_ << '#' << time_ << '\n';
      any = true;
    }
    emit_value(wire, wire.pending);
    wire.value = wire.pending;
    wire.initialised = true;
    wire.dirty = false;
  }
  time_ += 1;
}

void VcdWriter::finish() {
  if (finished_ || !begun_) return;
  finished_ = true;
  os_ << '#' << time_ << '\n';
}

std::vector<HwGrant> dump_schedule_vcd(std::ostream& os, HwPortScheduler& port,
                                       std::span<const core::Request> requests) {
  VcdWriter vcd(os, "wdm_port_scheduler");
  const auto phase = vcd.add_wire("phase", 1);
  const auto channel = vcd.add_wire("channel", 16);
  const auto wavelength = vcd.add_wire("wavelength", 16);
  const auto granted = vcd.add_wire("granted", 16);
  vcd.begin();

  port.set_tracer([&](const TraceEvent& event) {
    vcd.set(phase, event.phase == TraceEvent::Phase::kCommit ? 1 : 0);
    vcd.set(channel, static_cast<std::uint64_t>(event.channel));
    const std::uint64_t wl =
        event.wavelength == core::kNone
            ? std::uint64_t{0xFFFF}
            : static_cast<std::uint64_t>(
                  static_cast<std::uint32_t>(event.wavelength));
    vcd.set(wavelength, wl);
    vcd.set(granted, static_cast<std::uint64_t>(event.granted_so_far));
    vcd.tick();
  });
  port.load(requests);
  auto grants = port.run();
  port.set_tracer(nullptr);
  vcd.finish();
  return grants;
}

}  // namespace wdm::hw
