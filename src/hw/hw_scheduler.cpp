#include "hw/hw_scheduler.hpp"

#include <algorithm>
#include <bit>

#include "core/breaking.hpp"
#include "util/check.hpp"

namespace wdm::hw {

namespace {

std::uint64_t ceil_log2(std::uint64_t n) {
  return n <= 1 ? 0 : static_cast<std::uint64_t>(std::bit_width(n - 1));
}

}  // namespace

HwPortScheduler::HwPortScheduler(core::ConversionScheme scheme,
                                 std::int32_t n_fibers,
                                 bool random_arbitration, std::uint64_t seed)
    : scheme_(std::move(scheme)),
      reg_(n_fibers, scheme_.k()),
      available_(static_cast<std::size_t>(scheme_.k())),
      random_arbitration_(random_arbitration) {
  available_.set_all();
  // Wired conversion-feasibility masks: conv_mask_[u] has bit w set iff
  // wavelength w can be converted to channel u. Pure combinational logic in
  // hardware; precomputed once here.
  conv_mask_.reserve(static_cast<std::size_t>(scheme_.k()));
  for (core::Channel u = 0; u < scheme_.k(); ++u) {
    BitVector mask(static_cast<std::size_t>(scheme_.k()));
    for (core::Wavelength w = 0; w < scheme_.k(); ++w) {
      if (scheme_.can_convert(w, u)) mask.set(static_cast<std::size_t>(w));
    }
    conv_mask_.push_back(std::move(mask));
  }
  util::Rng seeder(seed);
  for (core::Wavelength w = 0; w < scheme_.k(); ++w) {
    rr_arbiters_.emplace_back(static_cast<std::size_t>(n_fibers));
    rnd_arbiters_.emplace_back(static_cast<std::size_t>(n_fibers), seeder.next());
  }
}

void HwPortScheduler::load(std::span<const core::Request> requests) {
  reg_.load(requests);
  cycles_ = CycleReport{};
  cycles_.total += 1;  // parallel register latch
}

void HwPortScheduler::set_availability(std::span<const std::uint8_t> available) {
  if (available.empty()) {
    available_.set_all();
    return;
  }
  WDM_CHECK_MSG(static_cast<std::int32_t>(available.size()) == scheme_.k(),
                "availability mask must have one entry per channel");
  for (core::Channel v = 0; v < scheme_.k(); ++v) {
    available_.assign(static_cast<std::size_t>(v),
                      available[static_cast<std::size_t>(v)] != 0);
  }
}

bool HwPortScheduler::channel_free(core::Channel v) const {
  return available_.test(static_cast<std::size_t>(v));
}

std::vector<HwGrant> HwPortScheduler::run() {
  Plan plan;
  if (scheme_.is_full_range()) {
    plan = run_full_range();
  } else if (scheme_.kind() == core::ConversionKind::kCircular) {
    plan = run_break_first_available();
  } else {
    plan = run_first_available();
  }
  return commit(plan);
}

HwPortScheduler::Plan HwPortScheduler::run_first_available() {
  // Table 2 datapath: one cycle per output channel — AND the pending-summary
  // register with the channel's wired conversion mask and priority-encode.
  // Consuming a grant immediately updates the summary, so the encoder's
  // "first pending adjacent wavelength" equals the algorithm's "first
  // adjacent left vertex".
  Plan plan{std::vector<core::Wavelength>(static_cast<std::size_t>(k()),
                                          core::kNone),
            0};
  // Scratch pending counters (hardware: per-wavelength popcount counters).
  std::vector<std::int32_t> counts(static_cast<std::size_t>(k()), 0);
  for (core::Wavelength w = 0; w < k(); ++w) {
    counts[static_cast<std::size_t>(w)] =
        static_cast<std::int32_t>(reg_.requesters(w).count());
  }
  BitVector pending = reg_.summary();
  for (core::Channel u = 0; u < k(); ++u) {
    cycles_.total += 1;
    cycles_.channel_steps += 1;
    core::Wavelength granted_w = core::kNone;
    if (channel_free(u)) {
      const std::size_t w =
          pending.find_first_and(conv_mask_[static_cast<std::size_t>(u)]);
      if (w != BitVector::npos) {
        granted_w = static_cast<core::Wavelength>(w);
        plan.source[static_cast<std::size_t>(u)] = granted_w;
        plan.granted += 1;
        if (--counts[w] == 0) pending.clear(w);
      }
    }
    if (tracer_) {
      tracer_(TraceEvent{TraceEvent::Phase::kMatch, cycles_.total, u,
                         granted_w, plan.granted});
    }
  }
  cycles_.critical_path = cycles_.total;
  return plan;
}

HwPortScheduler::Plan HwPortScheduler::run_full_range() {
  // Full-range conversion: requests are indistinguishable; serve channels in
  // order from the first pending wavelength.
  Plan plan{std::vector<core::Wavelength>(static_cast<std::size_t>(k()),
                                          core::kNone),
            0};
  std::vector<std::int32_t> counts(static_cast<std::size_t>(k()), 0);
  for (core::Wavelength w = 0; w < k(); ++w) {
    counts[static_cast<std::size_t>(w)] =
        static_cast<std::int32_t>(reg_.requesters(w).count());
  }
  BitVector pending = reg_.summary();
  for (core::Channel u = 0; u < k(); ++u) {
    cycles_.total += 1;
    cycles_.channel_steps += 1;
    core::Wavelength granted_w = core::kNone;
    if (channel_free(u)) {
      const std::size_t w = pending.find_first();
      if (w == BitVector::npos) break;
      granted_w = static_cast<core::Wavelength>(w);
      plan.source[static_cast<std::size_t>(u)] = granted_w;
      plan.granted += 1;
      if (--counts[w] == 0) pending.clear(w);
    }
    if (tracer_) {
      tracer_(TraceEvent{TraceEvent::Phase::kMatch, cycles_.total, u,
                         granted_w, plan.granted});
    }
  }
  cycles_.critical_path = cycles_.total;
  return plan;
}

HwPortScheduler::Plan HwPortScheduler::candidate_break(
    core::Wavelength w_i, core::Channel u, std::span<const std::int32_t> counts) {
  // Rotated First Available over the reduced graph (Lemma 2 ordering); the
  // per-wavelength adjacency bounds are wired functions of (w_i, u, w).
  Plan plan{std::vector<core::Wavelength>(static_cast<std::size_t>(k()),
                                          core::kNone),
            1};
  plan.source[static_cast<std::size_t>(u)] = w_i;

  std::int32_t kappa = 0;
  core::Wavelength w = w_i;
  std::int32_t remaining = counts[static_cast<std::size_t>(w_i)] - 1;
  graph::Interval iv = remaining > 0
                           ? core::reduced_adjacency(scheme_, w_i, u, w)
                           : graph::Interval{};
  const auto advance = [&] {
    ++kappa;
    if (kappa == k()) return;
    w = core::mod_k(static_cast<std::int64_t>(w_i) + kappa, k());
    remaining = counts[static_cast<std::size_t>(w)];
    if (remaining > 0) iv = core::reduced_adjacency(scheme_, w_i, u, w);
  };

  for (std::int32_t vp = 0; vp <= k() - 2; ++vp) {
    cycles_.channel_steps += 1;
    const core::Channel v = core::rotated_to_channel(u, vp, k());
    if (!channel_free(v)) continue;
    while (kappa < k() && (remaining == 0 || iv.empty() || iv.end < vp)) {
      advance();
    }
    if (kappa == k()) break;
    if (iv.begin <= vp) {
      plan.source[static_cast<std::size_t>(v)] = w;
      plan.granted += 1;
      remaining -= 1;
    }
  }
  return plan;
}

HwPortScheduler::Plan HwPortScheduler::run_break_first_available() {
  Plan empty{std::vector<core::Wavelength>(static_cast<std::size_t>(k()),
                                           core::kNone),
             0};
  // Phase 1: pick the breaking wavelength — first pending wavelength with a
  // free adjacent channel (priority encode + wired adjacency check).
  std::vector<std::int32_t> counts(static_cast<std::size_t>(k()), 0);
  for (core::Wavelength w = 0; w < k(); ++w) {
    counts[static_cast<std::size_t>(w)] =
        static_cast<std::int32_t>(reg_.requesters(w).count());
  }
  core::Wavelength w_i = core::kNone;
  std::vector<core::Channel> candidates;
  for (std::size_t w = reg_.summary().find_first(); w != BitVector::npos;
       w = reg_.summary().find_first(w + 1)) {
    cycles_.total += 1;
    for (const core::Channel v :
         scheme_.adjacency_list(static_cast<core::Wavelength>(w))) {
      if (channel_free(v)) candidates.push_back(v);
    }
    if (!candidates.empty()) {
      w_i = static_cast<core::Wavelength>(w);
      break;
    }
  }
  if (w_i == core::kNone) {
    cycles_.critical_path = cycles_.total;
    return empty;
  }

  // Phase 2: evaluate all candidate breaks (d matching units in hardware).
  std::uint64_t serial_steps = 0;
  Plan best = empty;
  bool first = true;
  for (const core::Channel u : candidates) {
    const std::uint64_t before = cycles_.channel_steps;
    Plan plan = candidate_break(w_i, u, counts);
    serial_steps += cycles_.channel_steps - before;
    cycles_.candidates += 1;
    if (first || plan.granted > best.granted) {
      best = std::move(plan);
      first = false;
    }
  }
  // Serial: sum of candidate sweeps; parallel: one sweep + a log-depth
  // comparator tree over the d candidate sizes.
  const std::uint64_t compare = ceil_log2(candidates.size());
  cycles_.critical_path = cycles_.total +
                          static_cast<std::uint64_t>(std::max(k() - 1, 1)) +
                          compare;
  cycles_.total += serial_steps + candidates.size();
  return best;
}

std::vector<HwGrant> HwPortScheduler::commit(const Plan& plan) {
  // Commit phase: each granted channel pulls one requester of its source
  // wavelength through that wavelength's arbiter and clears the register
  // bit. One cycle per grant (arbiters of distinct wavelengths act in
  // parallel, but grants of the same wavelength serialise on its arbiter).
  std::vector<HwGrant> grants;
  grants.reserve(static_cast<std::size_t>(plan.granted));
  for (core::Channel v = 0; v < k(); ++v) {
    const core::Wavelength w = plan.source[static_cast<std::size_t>(v)];
    if (w == core::kNone) continue;
    const BitVector requesters = reg_.requesters(w);
    const std::size_t fiber =
        random_arbitration_
            ? rnd_arbiters_[static_cast<std::size_t>(w)].grant(requesters)
            : rr_arbiters_[static_cast<std::size_t>(w)].grant(requesters);
    WDM_CHECK_MSG(fiber != BitVector::npos,
                  "matching granted a wavelength with no pending request");
    reg_.consume(static_cast<std::int32_t>(fiber), w);
    grants.push_back(HwGrant{static_cast<std::int32_t>(fiber), w, v});
    cycles_.total += 1;
    if (tracer_) {
      tracer_(TraceEvent{TraceEvent::Phase::kCommit, cycles_.total, v, w,
                         static_cast<std::int32_t>(grants.size())});
    }
  }
  cycles_.critical_path += grants.size();
  return grants;
}

}  // namespace wdm::hw
