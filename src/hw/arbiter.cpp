#include "hw/arbiter.hpp"

#include "util/check.hpp"

namespace wdm::hw {

RoundRobinArbiter::RoundRobinArbiter(std::size_t n) : n_(n) {
  WDM_CHECK_MSG(n > 0, "arbiter needs at least one participant");
}

std::size_t RoundRobinArbiter::grant(const BitVector& requesters) {
  WDM_CHECK_MSG(requesters.size() == n_, "requester vector size mismatch");
  const std::size_t winner = requesters.find_first_circular(pointer_);
  if (winner == BitVector::npos) return BitVector::npos;
  pointer_ = (winner + 1) % n_;
  return winner;
}

MatrixArbiter::MatrixArbiter(std::size_t n) : n_(n) {
  WDM_CHECK_MSG(n > 0, "arbiter needs at least one participant");
  // Initial total order: lower index beats higher index.
  beats_.assign(n * n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = r + 1; c < n; ++c) beats_[r * n + c] = 1;
  }
}

bool MatrixArbiter::has_priority(std::size_t row, std::size_t col) const {
  WDM_CHECK(row < n_ && col < n_);
  return beats_[row * n_ + col] != 0;
}

std::size_t MatrixArbiter::grant(const BitVector& requesters) {
  WDM_CHECK_MSG(requesters.size() == n_, "requester vector size mismatch");
  std::size_t winner = BitVector::npos;
  for (std::size_t cand = requesters.find_first(); cand != BitVector::npos;
       cand = requesters.find_first(cand + 1)) {
    bool beats_all = true;
    for (std::size_t other = requesters.find_first();
         other != BitVector::npos; other = requesters.find_first(other + 1)) {
      if (other == cand) continue;
      if (!has_priority(cand, other)) {
        beats_all = false;
        break;
      }
    }
    if (beats_all) {
      winner = cand;
      break;
    }
  }
  // The pairwise priorities always form a total order among any subset
  // (the matrix is kept a tournament of a linear order), so a winner exists
  // whenever anyone requests.
  if (winner == BitVector::npos) return BitVector::npos;
  // Demote the winner below everyone (it keeps relative order otherwise).
  for (std::size_t other = 0; other < n_; ++other) {
    if (other == winner) continue;
    beats_[winner * n_ + other] = 0;
    beats_[other * n_ + winner] = 1;
  }
  return winner;
}

RandomArbiter::RandomArbiter(std::size_t n, std::uint64_t seed)
    : n_(n), rng_(seed) {
  WDM_CHECK_MSG(n > 0, "arbiter needs at least one participant");
}

std::size_t RandomArbiter::grant(const BitVector& requesters) {
  WDM_CHECK_MSG(requesters.size() == n_, "requester vector size mismatch");
  const std::size_t total = requesters.count();
  if (total == 0) return BitVector::npos;
  std::size_t target = static_cast<std::size_t>(rng_.uniform_below(total));
  for (std::size_t i = requesters.find_first(); i != BitVector::npos;
       i = requesters.find_first(i + 1)) {
    if (target == 0) return i;
    target -= 1;
  }
  return BitVector::npos;  // unreachable
}

}  // namespace wdm::hw
