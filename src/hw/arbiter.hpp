// Grant arbiters for same-wavelength contention (Section III).
//
// When more than one input fiber has a pending packet on the winning
// wavelength, "to ensure fairness, a random selecting or a round-robin
// scheduling procedure should be adopted as suggested in [7] [8]" — i.e.
// PIM-style random or iSLIP-style round-robin arbitration. Both are modelled
// at the register level: requesters arrive as an N-bit vector, the grant is
// one index, and the round-robin arbiter advances its pointer past the
// grantee exactly as an iSLIP grant pointer does.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hw/bitvec.hpp"
#include "util/rng.hpp"

namespace wdm::hw {

/// Rotating-priority (iSLIP-style) arbiter over n participants.
class RoundRobinArbiter {
 public:
  explicit RoundRobinArbiter(std::size_t n);

  std::size_t size() const noexcept { return n_; }
  std::size_t pointer() const noexcept { return pointer_; }

  /// Grants the first requester at or after the pointer (wrapping) and
  /// advances the pointer one past the grantee. Returns BitVector::npos if
  /// no one requests.
  std::size_t grant(const BitVector& requesters);

 private:
  std::size_t n_;
  std::size_t pointer_ = 0;
};

/// Matrix arbiter: maintains a pairwise-priority triangle; the grantee
/// loses priority against everyone it beat. Stronger short-term fairness
/// than a single rotating pointer (no positional bias after sparse request
/// patterns); O(n^2) state — the standard alternative in switch datapaths.
class MatrixArbiter {
 public:
  explicit MatrixArbiter(std::size_t n);

  std::size_t size() const noexcept { return n_; }

  /// Grants the requester that beats every other requester in the priority
  /// matrix, then demotes it below all others. Returns npos if none.
  std::size_t grant(const BitVector& requesters);

  /// True iff row currently has priority over col.
  bool has_priority(std::size_t row, std::size_t col) const;

 private:
  std::size_t n_;
  std::vector<std::uint8_t> beats_;  // beats_[r*n+c] = 1: r beats c
};

/// PIM-style uniform random arbiter.
class RandomArbiter {
 public:
  RandomArbiter(std::size_t n, std::uint64_t seed);

  std::size_t size() const noexcept { return n_; }

  /// Grants a uniformly random requester, or npos if none.
  std::size_t grant(const BitVector& requesters);

 private:
  std::size_t n_;
  util::Rng rng_;
};

}  // namespace wdm::hw
