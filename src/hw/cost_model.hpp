// First-order hardware cost model for the scheduler datapath.
//
// Complements the cycle counts of HwPortScheduler with *area* estimates, so
// the serial-vs-parallel BFA trade-off the paper discusses in Section IV.B
// ("time complexity could be reduced to O(k), but we then need d units of
// hardware") can be quantified. All counts are in equivalent 2-input gates
// and register bits; constants follow textbook structures (OR trees,
// priority encoders as parallel-prefix networks, iSLIP grant arbiters).
#pragma once

#include <cstdint>

namespace wdm::hw {

struct SchedulerCost {
  std::uint64_t register_bits = 0;   ///< request + decision + pointer state
  std::uint64_t encoder_gates = 0;   ///< priority encoders
  std::uint64_t or_tree_gates = 0;   ///< per-wavelength summary OR trees
  std::uint64_t arbiter_gates = 0;   ///< per-wavelength round-robin arbiters
  std::uint64_t matching_units = 0;  ///< replicated FA datapaths (BFA)
  std::uint64_t total_gates = 0;
};

/// Cost of one output fiber's scheduler.
/// `n_fibers` = N, `k` wavelengths, conversion degree `d`;
/// `parallel_bfa` replicates the matching datapath d times (circular only).
SchedulerCost estimate_cost(std::int32_t n_fibers, std::int32_t k,
                            std::int32_t d, bool circular, bool parallel_bfa);

}  // namespace wdm::hw
