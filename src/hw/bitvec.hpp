// Fixed-size bit vector modelling a hardware register file.
//
// The paper's Section II.B implements a request graph as an Nk x 1 binary
// register plus a k x 1 decision vector; the hardware scheduler emulates that
// representation directly. Word-parallel find-first-set mirrors a priority
// encoder; AND with a wired mask mirrors the conversion-feasibility gating.
#pragma once

#include <cstdint>
#include <vector>

namespace wdm::hw {

class BitVector {
 public:
  explicit BitVector(std::size_t bits = 0);

  std::size_t size() const noexcept { return bits_; }

  void set(std::size_t i);
  void clear(std::size_t i);
  void assign(std::size_t i, bool value);
  bool test(std::size_t i) const;

  void set_all();
  void clear_all();

  std::size_t count() const noexcept;
  bool any() const noexcept;
  bool none() const noexcept { return !any(); }

  /// Lowest set bit index at or after `from`, or npos.
  std::size_t find_first(std::size_t from = 0) const noexcept;

  /// Lowest index set in both *this and mask, or npos — a masked priority
  /// encoder. Sizes must match.
  std::size_t find_first_and(const BitVector& mask) const;

  /// Lowest set index at or after `from`, wrapping around once — a rotating
  /// (round-robin) priority encoder. Returns npos when empty.
  std::size_t find_first_circular(std::size_t from) const noexcept;

  BitVector& operator&=(const BitVector& other);
  BitVector& operator|=(const BitVector& other);

  friend bool operator==(const BitVector&, const BitVector&) = default;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

 private:
  std::size_t word_count() const noexcept { return words_.size(); }

  std::vector<std::uint64_t> words_;
  std::size_t bits_;
};

}  // namespace wdm::hw
