#include "hw/request_register.hpp"

#include "util/check.hpp"

namespace wdm::hw {

RequestRegister::RequestRegister(std::int32_t n_fibers, std::int32_t k)
    : n_fibers_(n_fibers),
      k_(k),
      bits_(static_cast<std::size_t>(n_fibers) * static_cast<std::size_t>(k)),
      summary_(static_cast<std::size_t>(k)) {
  WDM_CHECK_MSG(n_fibers > 0 && k > 0, "register dimensions must be positive");
}

std::size_t RequestRegister::bit_index(std::int32_t fiber,
                                       core::Wavelength w) const {
  WDM_CHECK(fiber >= 0 && fiber < n_fibers_);
  WDM_CHECK(w >= 0 && w < k_);
  return static_cast<std::size_t>(fiber) * static_cast<std::size_t>(k_) +
         static_cast<std::size_t>(w);
}

void RequestRegister::load(std::span<const core::Request> requests) {
  clear();
  for (const auto& r : requests) {
    bits_.set(bit_index(r.input_fiber, r.wavelength));
    summary_.set(static_cast<std::size_t>(r.wavelength));
  }
}

void RequestRegister::clear() {
  bits_.clear_all();
  summary_.clear_all();
}

bool RequestRegister::pending(std::int32_t fiber, core::Wavelength w) const {
  return bits_.test(bit_index(fiber, w));
}

bool RequestRegister::wavelength_pending(core::Wavelength w) const {
  WDM_CHECK(w >= 0 && w < k_);
  return summary_.test(static_cast<std::size_t>(w));
}

BitVector RequestRegister::requesters(core::Wavelength w) const {
  WDM_CHECK(w >= 0 && w < k_);
  BitVector out(static_cast<std::size_t>(n_fibers_));
  for (std::int32_t fiber = 0; fiber < n_fibers_; ++fiber) {
    if (bits_.test(bit_index(fiber, w))) out.set(static_cast<std::size_t>(fiber));
  }
  return out;
}

void RequestRegister::consume(std::int32_t fiber, core::Wavelength w) {
  const std::size_t idx = bit_index(fiber, w);
  WDM_CHECK_MSG(bits_.test(idx), "consuming a request that is not pending");
  bits_.clear(idx);
  refresh_summary(w);
}

void RequestRegister::refresh_summary(core::Wavelength w) {
  for (std::int32_t fiber = 0; fiber < n_fibers_; ++fiber) {
    if (bits_.test(bit_index(fiber, w))) return;  // still pending somewhere
  }
  summary_.clear(static_cast<std::size_t>(w));
}

}  // namespace wdm::hw
