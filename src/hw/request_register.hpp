// The per-output-fiber request register (Section II.B).
//
// "The left side vertices of the request graph can be implemented by an
// Nk x 1 binary vector (an Nk bit register), with element (i-1)k + j being 1
// meaning λj on the i-th input fiber is destined for this output fiber."
// (0-based here: bit i*k + j.) A k-bit summary register carries, for each
// wavelength, whether *any* input fiber has a pending request on it — in
// hardware a per-wavelength OR tree over the register slice.
#pragma once

#include <cstdint>
#include <span>

#include "core/request.hpp"
#include "hw/bitvec.hpp"

namespace wdm::hw {

class RequestRegister {
 public:
  RequestRegister(std::int32_t n_fibers, std::int32_t k);

  std::int32_t n_fibers() const noexcept { return n_fibers_; }
  std::int32_t k() const noexcept { return k_; }

  /// Latches a slot's requests (set at the beginning of each time slot).
  /// Requests must satisfy 0 <= input_fiber < N, 0 <= wavelength < k.
  /// Duplicate (fiber, wavelength) pairs collapse into one bit, exactly as
  /// the register representation dictates.
  void load(std::span<const core::Request> requests);

  void clear();

  bool pending(std::int32_t fiber, core::Wavelength w) const;
  /// Summary bit: does any fiber have a pending request on wavelength w?
  bool wavelength_pending(core::Wavelength w) const;
  const BitVector& summary() const noexcept { return summary_; }

  /// Fibers with a pending request on wavelength w, as an N-bit vector —
  /// the requester inputs of that wavelength's arbiter.
  BitVector requesters(core::Wavelength w) const;

  /// Clears one pending bit and refreshes the summary (the grant datapath).
  void consume(std::int32_t fiber, core::Wavelength w);

  std::size_t pending_count() const noexcept { return bits_.count(); }

 private:
  std::size_t bit_index(std::int32_t fiber, core::Wavelength w) const;
  void refresh_summary(core::Wavelength w);

  std::int32_t n_fibers_;
  std::int32_t k_;
  BitVector bits_;     // Nk bits, bit i*k + j
  BitVector summary_;  // k bits
};

}  // namespace wdm::hw
