// Minimal Value Change Dump (VCD, IEEE 1364 §18) writer.
//
// Lets the register-level scheduler emit real waveforms: declare wires,
// advance the clock with tick(), and view the schedule in GTKWave or any
// VCD viewer. Deliberately tiny — binary vector wires only, one timescale
// unit per cycle — but produces standard-conforming output (validated by
// the test suite against the grammar's key productions).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/request.hpp"

namespace wdm::hw {

class HwPortScheduler;
struct HwGrant;

class VcdWriter {
 public:
  using Signal = std::size_t;

  /// Writes to `os`; `module` names the single $scope.
  VcdWriter(std::ostream& os, std::string module);

  /// Declares a wire of 1..64 bits. Must be called before begin().
  Signal add_wire(const std::string& name, std::uint32_t width);

  /// Emits the header, $enddefinitions, and a $dumpvars block with every
  /// wire initialised to x. Must be called exactly once, before set()/tick().
  void begin();

  /// Schedules a value change to flush on the next tick(). Values are
  /// truncated to the wire's width.
  void set(Signal signal, std::uint64_t value);

  /// Emits `#<time>` plus all pending changes, then advances time by one.
  void tick();

  /// Flushes a final timestamp. Idempotent.
  void finish();

  std::uint64_t time() const noexcept { return time_; }

 private:
  struct Wire {
    std::string name;
    std::uint32_t width;
    std::string id;        // VCD identifier code
    std::uint64_t value;   // last emitted value
    bool initialised;      // first set() must always emit
    bool dirty;
    std::uint64_t pending;
  };

  void emit_value(const Wire& wire, std::uint64_t value);

  std::ostream& os_;
  std::string module_;
  std::vector<Wire> wires_;
  std::uint64_t time_ = 0;
  bool begun_ = false;
  bool finished_ = false;
};

/// Loads `requests` into `port`, runs the schedule with a VCD tracer
/// attached, writes the waveform to `os`, and returns the grants. Wires:
/// `phase` (0 match / 1 commit), `channel`, `wavelength` (all-ones = idle
/// step), and the running `granted` count, one timescale unit per traced
/// cycle.
std::vector<HwGrant> dump_schedule_vcd(std::ostream& os, HwPortScheduler& port,
                                       std::span<const core::Request> requests);

}  // namespace wdm::hw
