#include "hw/bitvec.hpp"

#include <bit>

#include "util/check.hpp"

namespace wdm::hw {

namespace {
constexpr std::size_t kWordBits = 64;

std::size_t words_for(std::size_t bits) { return (bits + kWordBits - 1) / kWordBits; }
}  // namespace

BitVector::BitVector(std::size_t bits) : words_(words_for(bits), 0), bits_(bits) {}

void BitVector::set(std::size_t i) {
  WDM_CHECK(i < bits_);
  words_[i / kWordBits] |= (1ULL << (i % kWordBits));
}

void BitVector::clear(std::size_t i) {
  WDM_CHECK(i < bits_);
  words_[i / kWordBits] &= ~(1ULL << (i % kWordBits));
}

void BitVector::assign(std::size_t i, bool value) {
  if (value) {
    set(i);
  } else {
    clear(i);
  }
}

bool BitVector::test(std::size_t i) const {
  WDM_CHECK(i < bits_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1ULL;
}

void BitVector::set_all() {
  for (auto& w : words_) w = ~0ULL;
  // Mask off the bits past size so count()/any() stay correct.
  if (bits_ % kWordBits != 0 && !words_.empty()) {
    words_.back() &= (1ULL << (bits_ % kWordBits)) - 1;
  }
}

void BitVector::clear_all() {
  for (auto& w : words_) w = 0;
}

std::size_t BitVector::count() const noexcept {
  std::size_t total = 0;
  for (const auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool BitVector::any() const noexcept {
  for (const auto w : words_) {
    if (w != 0) return true;
  }
  return false;
}

std::size_t BitVector::find_first(std::size_t from) const noexcept {
  if (from >= bits_) return npos;
  std::size_t wi = from / kWordBits;
  std::uint64_t word = words_[wi] & (~0ULL << (from % kWordBits));
  while (true) {
    if (word != 0) {
      const std::size_t bit =
          wi * kWordBits + static_cast<std::size_t>(std::countr_zero(word));
      return bit < bits_ ? bit : npos;
    }
    if (++wi == word_count()) return npos;
    word = words_[wi];
  }
}

std::size_t BitVector::find_first_and(const BitVector& mask) const {
  WDM_CHECK_MSG(mask.bits_ == bits_, "mask size mismatch");
  for (std::size_t wi = 0; wi < word_count(); ++wi) {
    const std::uint64_t word = words_[wi] & mask.words_[wi];
    if (word != 0) {
      const std::size_t bit =
          wi * kWordBits + static_cast<std::size_t>(std::countr_zero(word));
      return bit < bits_ ? bit : npos;
    }
  }
  return npos;
}

std::size_t BitVector::find_first_circular(std::size_t from) const noexcept {
  if (bits_ == 0) return npos;
  const std::size_t hit = find_first(from % bits_);
  if (hit != npos) return hit;
  const std::size_t wrapped = find_first(0);
  return wrapped;
}

BitVector& BitVector::operator&=(const BitVector& other) {
  WDM_CHECK_MSG(other.bits_ == bits_, "size mismatch");
  for (std::size_t wi = 0; wi < word_count(); ++wi) words_[wi] &= other.words_[wi];
  return *this;
}

BitVector& BitVector::operator|=(const BitVector& other) {
  WDM_CHECK_MSG(other.bits_ == bits_, "size mismatch");
  for (std::size_t wi = 0; wi < word_count(); ++wi) words_[wi] |= other.words_[wi];
  return *this;
}

}  // namespace wdm::hw
