#include "sim/admission.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace wdm::sim {

AdmissionControl::AdmissionControl(std::int32_t n_fibers,
                                   AdmissionConfig config)
    : config_(config) {
  WDM_CHECK_MSG(n_fibers > 0, "admission control needs at least one fiber");
  WDM_CHECK_MSG(config_.tokens_per_slot > 0.0 && config_.bucket_depth >= 1.0,
                "admission: tokens_per_slot > 0 and bucket_depth >= 1");
  // Buckets start full so a cold start does not shed the first slot.
  tokens_.assign(static_cast<std::size_t>(n_fibers), config_.bucket_depth);
  queued_per_input_.assign(static_cast<std::size_t>(n_fibers), 0);
  queued_per_output_.assign(static_cast<std::size_t>(n_fibers), 0);
  if (config_.adaptive.enabled) {
    const auto& a = config_.adaptive;
    WDM_CHECK_MSG(a.min_tokens_per_slot > 0.0 &&
                      a.min_tokens_per_slot <= a.max_tokens_per_slot,
                  "adaptive admission: 0 < min_tokens_per_slot <= max");
    WDM_CHECK_MSG(a.alpha > 0.0 && a.alpha <= 1.0,
                  "adaptive admission: alpha in (0, 1]");
    WDM_CHECK_MSG(a.headroom > 0.0, "adaptive admission: headroom > 0");
    WDM_CHECK_MSG(a.update_every >= 1 && a.hold_ticks >= 1,
                  "adaptive admission: update_every >= 1 and hold_ticks >= 1");
    WDM_CHECK_MSG(a.deadband >= 0.0, "adaptive admission: deadband >= 0");
    FiberController seed;
    seed.rate = clamp_rate(config_.tokens_per_slot);
    controllers_.assign(static_cast<std::size_t>(n_fibers), seed);
  }
}

double AdmissionControl::clamp_rate(double rate) const noexcept {
  return std::min(config_.adaptive.max_tokens_per_slot,
                  std::max(config_.adaptive.min_tokens_per_slot, rate));
}

double AdmissionControl::token_rate(std::int32_t input_fiber) const {
  if (!config_.adaptive.enabled) return config_.tokens_per_slot;
  return controllers_[static_cast<std::size_t>(input_fiber)].rate;
}

double AdmissionControl::grant_estimate(std::int32_t input_fiber) const {
  if (!config_.adaptive.enabled) return 0.0;
  return controllers_[static_cast<std::size_t>(input_fiber)].grant_ewma;
}

void AdmissionControl::begin_slot() {
  trace_slot_ += 1;
  if (config_.adaptive.enabled) {
    for (std::size_t f = 0; f < tokens_.size(); ++f) {
      tokens_[f] =
          std::min(config_.bucket_depth, tokens_[f] + controllers_[f].rate);
    }
    return;
  }
  for (auto& t : tokens_) {
    t = std::min(config_.bucket_depth, t + config_.tokens_per_slot);
  }
}

void AdmissionControl::record_rate_update(std::int32_t fiber,
                                          const FiberController& ctrl) {
  if (telemetry_ == nullptr || !telemetry_->at(obs::TraceDetail::kSlots)) {
    return;
  }
  obs::TraceEvent e;
  e.ts_ns = util::now_ns();
  e.slot = trace_slot_;
  // Rates are fractional; export milli-tokens so the fixed-size integer
  // payload still resolves the controller's step sizes.
  e.a = static_cast<std::uint64_t>(ctrl.rate * 1000.0);
  e.b = static_cast<std::uint64_t>(ctrl.grant_ewma * 1000.0);
  e.fiber = fiber;
  e.kind = obs::EventKind::kRateUpdate;
  telemetry_->record(e);
}

void AdmissionControl::controller_tick(std::int32_t fiber,
                                       FiberController& ctrl) {
  const auto& a = config_.adaptive;
  ctrl.queue_depth = queued_per_input_[static_cast<std::size_t>(fiber)];
  // Backlog drain term: parked demand is demand the grant estimate cannot
  // see (it never reached the fabric). Spreading it over one update period
  // asks for just enough extra rate to clear it by the next tick.
  const double backlog = static_cast<double>(ctrl.queue_depth) /
                         static_cast<double>(a.update_every);
  const double target = clamp_rate((ctrl.grant_ewma + backlog) * a.headroom);
  if (target > ctrl.rate + a.deadband) {
    ctrl.lower_hold = 0;
    if (++ctrl.raise_hold >= a.hold_ticks) {
      ctrl.rate = target;
      ctrl.raise_hold = 0;
      record_rate_update(fiber, ctrl);
    }
  } else if (target < ctrl.rate - a.deadband) {
    ctrl.raise_hold = 0;
    if (++ctrl.lower_hold >= a.hold_ticks) {
      ctrl.rate = target;
      ctrl.lower_hold = 0;
      record_rate_update(fiber, ctrl);
    }
  } else {
    ctrl.raise_hold = 0;
    ctrl.lower_hold = 0;
  }
  // The clamp is the stability contract (docs/ALGORITHMS.md §11): whatever
  // the estimate does, the applied rate never leaves the configured band.
  WDM_CHECK_MSG(ctrl.rate >= a.min_tokens_per_slot &&
                    ctrl.rate <= a.max_tokens_per_slot,
                "adaptive admission rate escaped its clamp band");
}

void AdmissionControl::observe_slot(
    std::span<const std::uint64_t> grants_per_input_fiber) {
  if (!config_.adaptive.enabled) return;
  WDM_CHECK_MSG(grants_per_input_fiber.size() == controllers_.size(),
                "observe_slot needs one grant count per input fiber");
  const auto& a = config_.adaptive;
  ctrl_slots_ += 1;
  const bool tick = ctrl_slots_ % static_cast<std::uint64_t>(a.update_every) ==
                    0;
  for (std::size_t f = 0; f < controllers_.size(); ++f) {
    FiberController& ctrl = controllers_[f];
    ctrl.grant_ewma =
        (1.0 - a.alpha) * ctrl.grant_ewma +
        a.alpha * static_cast<double>(grants_per_input_fiber[f]);
    if (tick) controller_tick(static_cast<std::int32_t>(f), ctrl);
  }
}

void AdmissionControl::note_queued(const core::SlotRequest& request,
                                   std::int32_t delta) {
  // Requests reaching the queues were validated by the interconnect, so the
  // fiber indices are in range by construction.
  auto& in = queued_per_input_[static_cast<std::size_t>(request.input_fiber)];
  auto& out =
      queued_per_output_[static_cast<std::size_t>(request.output_fiber)];
  in = static_cast<std::uint32_t>(static_cast<std::int64_t>(in) + delta);
  out = static_cast<std::uint32_t>(static_cast<std::int64_t>(out) + delta);
}

std::deque<core::SlotRequest>& AdmissionControl::class_queue(
    std::int32_t priority) {
  const auto cls = static_cast<std::size_t>(priority);
  if (cls >= queues_.size()) queues_.resize(cls + 1);
  return queues_[cls];
}

void AdmissionControl::record_admission(obs::EventKind kind,
                                        const core::SlotRequest& request,
                                        bool evicted) {
  if (telemetry_ == nullptr || !telemetry_->at(obs::TraceDetail::kFull)) {
    return;
  }
  obs::TraceEvent e;
  e.ts_ns = util::now_ns();
  e.slot = trace_slot_;
  e.a = static_cast<std::uint64_t>(request.priority);
  e.fiber = request.input_fiber;
  e.kind = kind;
  e.detail = evicted ? 1 : 0;
  telemetry_->record(e);
}

void AdmissionControl::drain(std::vector<core::SlotRequest>& out,
                             SlotStats& stats) {
  if (queued_ == 0) return;
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    // Stable partition: releasable entries leave in FIFO order, dry-fiber
    // entries keep their relative order for the next slot.
    keep_.clear();
    for (auto& request : queue) {
      auto& tokens = tokens_[static_cast<std::size_t>(request.input_fiber)];
      if (tokens >= 1.0) {
        tokens -= 1.0;
        out.push_back(request);
        stats.ingress_releases += 1;
        queued_ -= 1;
        note_queued(request, -1);
      } else {
        keep_.push_back(request);
      }
    }
    queue.assign(keep_.begin(), keep_.end());
  }
}

AdmissionControl::Verdict AdmissionControl::offer(
    const core::SlotRequest& request, SlotStats& stats) {
  auto& tokens = tokens_[static_cast<std::size_t>(request.input_fiber)];
  if (tokens >= 1.0) {
    tokens -= 1.0;
    return Verdict::kAdmit;
  }
  if (queued_ < config_.queue_capacity) {
    class_queue(request.priority).push_back(request);
    queued_ += 1;
    note_queued(request, +1);
    stats.deferred_overload += 1;
    record_admission(obs::EventKind::kAdmissionQueue, request, false);
    return Verdict::kQueued;
  }
  if (config_.drop_policy == DropPolicy::kPriorityShed) {
    // Evict the newest request of the worst (highest-index) queued class
    // that is strictly worse than the arrival; the eviction both leaves the
    // queue (ingress_releases) and is dropped (rejected + shed_overload).
    for (std::size_t cls = queues_.size();
         cls-- > static_cast<std::size_t>(request.priority) + 1;) {
      if (queues_[cls].empty()) continue;
      record_admission(obs::EventKind::kAdmissionShed, queues_[cls].back(),
                       true);
      note_queued(queues_[cls].back(), -1);
      queues_[cls].pop_back();
      queued_ -= 1;
      stats.ingress_releases += 1;
      stats.rejected += 1;
      stats.shed_overload += 1;
      class_queue(request.priority).push_back(request);
      queued_ += 1;
      note_queued(request, +1);
      stats.deferred_overload += 1;
      record_admission(obs::EventKind::kAdmissionQueue, request, false);
      return Verdict::kQueued;
    }
  }
  stats.rejected += 1;
  stats.shed_overload += 1;
  record_admission(obs::EventKind::kAdmissionShed, request, false);
  return Verdict::kShed;
}

void AdmissionControl::save_state(util::SnapshotWriter& w) const {
  w.vec_f64(tokens_);
  w.u64(queues_.size());
  for (const auto& queue : queues_) {
    w.u64(queue.size());
    for (const auto& r : queue) {
      w.i32(r.input_fiber);
      w.i32(r.wavelength);
      w.i32(r.output_fiber);
      w.u64(r.id);
      w.i32(r.duration);
      w.i32(r.priority);
    }
  }
  // Adaptive-controller state. The enabled flag is a config echo: restoring
  // a closed-loop run into an open-loop config (or vice versa) must fail
  // loudly, not silently resume with the wrong control law.
  w.u8(config_.adaptive.enabled ? 1 : 0);
  if (config_.adaptive.enabled) {
    w.u64(ctrl_slots_);
    for (const auto& ctrl : controllers_) {
      w.f64(ctrl.grant_ewma);
      w.f64(ctrl.rate);
      w.u32(ctrl.queue_depth);
      w.i32(ctrl.raise_hold);
      w.i32(ctrl.lower_hold);
    }
  }
}

void AdmissionControl::restore_state(util::SnapshotReader& r) {
  const auto tokens = r.vec_f64();
  WDM_CHECK_MSG(tokens.size() == tokens_.size(),
                "snapshot admission state does not match this fiber count");
  tokens_ = tokens;
  queues_.assign(r.u64(), {});
  queued_ = 0;
  queued_per_input_.assign(queued_per_input_.size(), 0);
  queued_per_output_.assign(queued_per_output_.size(), 0);
  for (auto& queue : queues_) {
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      core::SlotRequest request;
      request.input_fiber = r.i32();
      request.wavelength = r.i32();
      request.output_fiber = r.i32();
      request.id = r.u64();
      request.duration = r.i32();
      request.priority = r.i32();
      WDM_CHECK_MSG(
          request.input_fiber >= 0 &&
              request.input_fiber <
                  static_cast<std::int32_t>(tokens_.size()) &&
              request.output_fiber >= 0 &&
              request.output_fiber <
                  static_cast<std::int32_t>(tokens_.size()),
          "snapshot ingress-queue entry has out-of-range fibers");
      queue.push_back(request);
      queued_ += 1;
      // The per-fiber backlog counters are derived state: rebuilt here so
      // they cannot disagree with the queues they index.
      note_queued(request, +1);
    }
  }
  const bool had_adaptive = r.u8() != 0;
  WDM_CHECK_MSG(had_adaptive == config_.adaptive.enabled,
                "snapshot adaptive-admission state does not match this config");
  if (config_.adaptive.enabled) {
    ctrl_slots_ = r.u64();
    for (auto& ctrl : controllers_) {
      ctrl.grant_ewma = r.f64();
      ctrl.rate = r.f64();
      ctrl.queue_depth = r.u32();
      ctrl.raise_hold = r.i32();
      ctrl.lower_hold = r.i32();
      WDM_CHECK_MSG(ctrl.rate >= config_.adaptive.min_tokens_per_slot &&
                        ctrl.rate <= config_.adaptive.max_tokens_per_slot,
                    "snapshot controller rate is outside the clamp band");
    }
  }
}

}  // namespace wdm::sim
