#include "sim/admission.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace wdm::sim {

AdmissionControl::AdmissionControl(std::int32_t n_fibers,
                                   AdmissionConfig config)
    : config_(config) {
  WDM_CHECK_MSG(n_fibers > 0, "admission control needs at least one fiber");
  WDM_CHECK_MSG(config_.tokens_per_slot > 0.0 && config_.bucket_depth >= 1.0,
                "admission: tokens_per_slot > 0 and bucket_depth >= 1");
  // Buckets start full so a cold start does not shed the first slot.
  tokens_.assign(static_cast<std::size_t>(n_fibers), config_.bucket_depth);
}

void AdmissionControl::begin_slot() {
  trace_slot_ += 1;
  for (auto& t : tokens_) {
    t = std::min(config_.bucket_depth, t + config_.tokens_per_slot);
  }
}

void AdmissionControl::record_admission(obs::EventKind kind,
                                        const core::SlotRequest& request,
                                        bool evicted) {
  if (telemetry_ == nullptr || !telemetry_->at(obs::TraceDetail::kFull)) {
    return;
  }
  obs::TraceEvent e;
  e.ts_ns = util::now_ns();
  e.slot = trace_slot_;
  e.a = static_cast<std::uint64_t>(request.priority);
  e.fiber = request.input_fiber;
  e.kind = kind;
  e.detail = evicted ? 1 : 0;
  telemetry_->record(e);
}

std::deque<core::SlotRequest>& AdmissionControl::class_queue(
    std::int32_t priority) {
  const auto cls = static_cast<std::size_t>(priority);
  if (cls >= queues_.size()) queues_.resize(cls + 1);
  return queues_[cls];
}

void AdmissionControl::drain(std::vector<core::SlotRequest>& out,
                             SlotStats& stats) {
  if (queued_ == 0) return;
  for (auto& queue : queues_) {
    if (queue.empty()) continue;
    // Stable partition: releasable entries leave in FIFO order, dry-fiber
    // entries keep their relative order for the next slot.
    keep_.clear();
    for (auto& request : queue) {
      auto& tokens = tokens_[static_cast<std::size_t>(request.input_fiber)];
      if (tokens >= 1.0) {
        tokens -= 1.0;
        out.push_back(request);
        stats.ingress_releases += 1;
        queued_ -= 1;
      } else {
        keep_.push_back(request);
      }
    }
    queue.assign(keep_.begin(), keep_.end());
  }
}

AdmissionControl::Verdict AdmissionControl::offer(
    const core::SlotRequest& request, SlotStats& stats) {
  auto& tokens = tokens_[static_cast<std::size_t>(request.input_fiber)];
  if (tokens >= 1.0) {
    tokens -= 1.0;
    return Verdict::kAdmit;
  }
  if (queued_ < config_.queue_capacity) {
    class_queue(request.priority).push_back(request);
    queued_ += 1;
    stats.deferred_overload += 1;
    record_admission(obs::EventKind::kAdmissionQueue, request, false);
    return Verdict::kQueued;
  }
  if (config_.drop_policy == DropPolicy::kPriorityShed) {
    // Evict the newest request of the worst (highest-index) queued class
    // that is strictly worse than the arrival; the eviction both leaves the
    // queue (ingress_releases) and is dropped (rejected + shed_overload).
    for (std::size_t cls = queues_.size();
         cls-- > static_cast<std::size_t>(request.priority) + 1;) {
      if (queues_[cls].empty()) continue;
      record_admission(obs::EventKind::kAdmissionShed, queues_[cls].back(),
                       true);
      queues_[cls].pop_back();
      queued_ -= 1;
      stats.ingress_releases += 1;
      stats.rejected += 1;
      stats.shed_overload += 1;
      class_queue(request.priority).push_back(request);
      queued_ += 1;
      stats.deferred_overload += 1;
      record_admission(obs::EventKind::kAdmissionQueue, request, false);
      return Verdict::kQueued;
    }
  }
  stats.rejected += 1;
  stats.shed_overload += 1;
  record_admission(obs::EventKind::kAdmissionShed, request, false);
  return Verdict::kShed;
}

void AdmissionControl::save_state(util::SnapshotWriter& w) const {
  w.vec_f64(tokens_);
  w.u64(queues_.size());
  for (const auto& queue : queues_) {
    w.u64(queue.size());
    for (const auto& r : queue) {
      w.i32(r.input_fiber);
      w.i32(r.wavelength);
      w.i32(r.output_fiber);
      w.u64(r.id);
      w.i32(r.duration);
      w.i32(r.priority);
    }
  }
}

void AdmissionControl::restore_state(util::SnapshotReader& r) {
  const auto tokens = r.vec_f64();
  WDM_CHECK_MSG(tokens.size() == tokens_.size(),
                "snapshot admission state does not match this fiber count");
  tokens_ = tokens;
  queues_.assign(r.u64(), {});
  queued_ = 0;
  for (auto& queue : queues_) {
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      core::SlotRequest request;
      request.input_fiber = r.i32();
      request.wavelength = r.i32();
      request.output_fiber = r.i32();
      request.id = r.u64();
      request.duration = r.i32();
      request.priority = r.i32();
      queue.push_back(request);
      queued_ += 1;
    }
  }
}

}  // namespace wdm::sim
