// Top-level simulation driver: traffic generator + interconnect + metrics.
//
// One call runs a seeded, warm-up-discarding slotted simulation and returns
// the aggregate report the benchmark harnesses print. Everything is
// deterministic in (config, seed).
#pragma once

#include <cstdint>

#include "sim/interconnect.hpp"
#include "sim/metrics.hpp"
#include "sim/traffic.hpp"

namespace wdm::sim {

struct SimulationConfig {
  InterconnectConfig interconnect;
  TrafficConfig traffic;
  std::uint64_t slots = 10000;   ///< measured slots (after warm-up)
  std::uint64_t warmup = 1000;   ///< discarded leading slots
  std::uint64_t seed = 1;        ///< master seed (traffic + schedulers)
  std::size_t threads = 0;       ///< >0: run per-fiber schedules on a pool
};

struct SimulationReport {
  std::uint64_t slots = 0;
  std::uint64_t arrivals = 0;
  std::uint64_t losses = 0;
  double offered_load = 0.0;  ///< configured per-channel load
  double loss_probability = 0.0;
  double loss_wilson_low = 0.0;
  double loss_wilson_high = 0.0;
  /// Half-width of the 95% CI from the method of batch means (30 batches):
  /// honest under the slot-to-slot correlation that multi-slot holding
  /// introduces, where the i.i.d. Wilson interval is optimistic.
  double loss_batch_ci = 0.0;
  double throughput_per_channel = 0.0;
  double utilization = 0.0;
  double fiber_fairness = 1.0;
  std::uint64_t preemptions = 0;
  /// Fault accounting (all zero when the config enables no faults).
  std::uint64_t rejected_faulted = 0;   ///< dropped: destination hardware down
  std::uint64_t dropped_faulted = 0;    ///< ongoing connections killed by faults
  std::uint64_t retry_attempts = 0;     ///< retry-queue re-offers
  std::uint64_t retry_successes = 0;    ///< re-offers that ended in a grant
  std::uint64_t fault_failures = 0;     ///< component failures injected
  std::uint64_t fault_repairs = 0;      ///< component repairs applied
  /// Overload-control accounting (all zero when admission and degradation
  /// are disabled in the config).
  std::uint64_t shed_overload = 0;      ///< deliberate overload drops
  std::uint64_t deferred_overload = 0;  ///< arrivals parked in ingress queue
  std::uint64_t ingress_releases = 0;   ///< ingress-queue releases
  std::uint64_t degraded_ports = 0;     ///< port-slots run in O(k) mode
  std::uint64_t degraded_slots = 0;     ///< slots with any degraded port
  double wall_seconds = 0.0;
  /// Per-QoS-class totals (index = priority class); empty for single-class
  /// traffic.
  std::vector<std::uint64_t> class_arrivals;
  std::vector<std::uint64_t> class_losses;
};

/// Runs the configured simulation to completion.
SimulationReport run_simulation(const SimulationConfig& config);

}  // namespace wdm::sim
