#include "sim/metrics.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wdm::sim {

namespace {

/// Elementwise accumulation with resize-to-max: per-class vectors are sized
/// to the highest class each side has seen, so unequal lengths are a normal
/// consequence of which slots (or which partial collector) saw which class.
/// Generic over the source container because SlotStats carries SmallVec
/// columns while the collector accumulates into std::vector.
template <typename From>
void accumulate_per_class(std::vector<std::uint64_t>& into, const From& from) {
  if (from.size() > into.size()) into.resize(from.size(), 0);
  for (std::size_t i = 0; i < from.size(); ++i) into[i] += from[i];
}

}  // namespace

void SlotStats::add(const SlotStats& other) {
  arrivals += other.arrivals;
  granted += other.granted;
  rejected += other.rejected;
  rejected_malformed += other.rejected_malformed;
  rejected_faulted += other.rejected_faulted;
  shed_overload += other.shed_overload;
  deferred_faulted += other.deferred_faulted;
  deferred_overload += other.deferred_overload;
  ingress_releases += other.ingress_releases;
  degraded_ports += other.degraded_ports;
  retry_attempts += other.retry_attempts;
  retry_successes += other.retry_successes;
  preempted += other.preempted;
  dropped_faulted += other.dropped_faulted;
  busy_channels += other.busy_channels;
  if (other.arrivals_per_class.size() > arrivals_per_class.size()) {
    arrivals_per_class.resize(other.arrivals_per_class.size(), 0);
  }
  for (std::size_t c = 0; c < other.arrivals_per_class.size(); ++c) {
    arrivals_per_class[c] += other.arrivals_per_class[c];
  }
  if (other.granted_per_class.size() > granted_per_class.size()) {
    granted_per_class.resize(other.granted_per_class.size(), 0);
  }
  for (std::size_t c = 0; c < other.granted_per_class.size(); ++c) {
    granted_per_class[c] += other.granted_per_class[c];
  }
}

MetricsCollector::MetricsCollector(std::int32_t n_fibers, std::int32_t k)
    : n_fibers_(n_fibers), k_(k) {
  WDM_CHECK_MSG(n_fibers > 0 && k > 0, "metric dimensions must be positive");
  fiber_grants_.assign(static_cast<std::size_t>(n_fibers), 0.0);
}

void MetricsCollector::record_slot(const SlotStats& stats) {
  WDM_CHECK_MSG(stats.granted + stats.rejected + stats.deferred_faulted +
                        stats.deferred_overload ==
                    stats.arrivals + stats.retry_attempts +
                        stats.ingress_releases,
                "slot accounting must conserve offered requests");
  WDM_CHECK_MSG(stats.rejected_malformed + stats.rejected_faulted +
                        stats.shed_overload <=
                    stats.rejected,
                "malformed, faulted, and shed rejections are disjoint subsets");
  WDM_CHECK_MSG(stats.retry_successes <= stats.granted &&
                    stats.retry_successes <= stats.retry_attempts,
                "retry successes are a subset of grants and attempts");
  slots_ += 1;
  granted_total_ += stats.granted;
  rejected_malformed_ += stats.rejected_malformed;
  rejected_faulted_ += stats.rejected_faulted;
  deferred_faulted_ += stats.deferred_faulted;
  shed_overload_ += stats.shed_overload;
  deferred_overload_ += stats.deferred_overload;
  ingress_releases_ += stats.ingress_releases;
  degraded_ports_ += stats.degraded_ports;
  degraded_slots_ += stats.degraded_ports > 0 ? 1 : 0;
  retry_attempts_ += stats.retry_attempts;
  retry_successes_ += stats.retry_successes;
  dropped_faulted_ += stats.dropped_faulted;
  raw_arrivals_ += stats.arrivals;
  preempted_ += stats.preempted;
  busy_channel_slots_ += stats.busy_channels;
  accumulate_per_class(arrivals_per_class_, stats.arrivals_per_class);
  accumulate_per_class(granted_per_class_, stats.granted_per_class);
  const std::uint64_t offered =
      stats.arrivals + stats.retry_attempts + stats.ingress_releases;
  if (offered > 0) {
    // Idle slots contribute no Bernoulli trials: the loss ratio is per
    // offered request, so a long idle stream must not dilute (or seed) it.
    // A deferred request is not (yet) a loss — its retry outcome is.
    loss_.add(stats.rejected, offered);
  }
  const double capacity =
      static_cast<double>(n_fibers_) * static_cast<double>(k_);
  utilization_.add(static_cast<double>(stats.busy_channels) / capacity);
}

void MetricsCollector::record_fiber_grants(std::int32_t output_fiber,
                                           std::uint64_t granted) {
  WDM_CHECK(output_fiber >= 0 && output_fiber < n_fibers_);
  fiber_grants_[static_cast<std::size_t>(output_fiber)] +=
      static_cast<double>(granted);
}

void MetricsCollector::merge(const MetricsCollector& other) {
  WDM_CHECK_MSG(other.n_fibers_ == n_fibers_ && other.k_ == k_,
                "metric layouts must match to merge");
  slots_ += other.slots_;
  granted_total_ += other.granted_total_;
  rejected_malformed_ += other.rejected_malformed_;
  rejected_faulted_ += other.rejected_faulted_;
  deferred_faulted_ += other.deferred_faulted_;
  shed_overload_ += other.shed_overload_;
  deferred_overload_ += other.deferred_overload_;
  ingress_releases_ += other.ingress_releases_;
  degraded_ports_ += other.degraded_ports_;
  degraded_slots_ += other.degraded_slots_;
  retry_attempts_ += other.retry_attempts_;
  retry_successes_ += other.retry_successes_;
  dropped_faulted_ += other.dropped_faulted_;
  raw_arrivals_ += other.raw_arrivals_;
  preempted_ += other.preempted_;
  busy_channel_slots_ += other.busy_channel_slots_;
  accumulate_per_class(arrivals_per_class_, other.arrivals_per_class_);
  accumulate_per_class(granted_per_class_, other.granted_per_class_);
  loss_.merge(other.loss_);
  utilization_.merge(other.utilization_);
  for (std::size_t i = 0; i < fiber_grants_.size(); ++i) {
    fiber_grants_[i] += other.fiber_grants_[i];
  }
}

double MetricsCollector::throughput_per_channel() const noexcept {
  if (slots_ == 0) return 0.0;
  const double capacity =
      static_cast<double>(n_fibers_) * static_cast<double>(k_);
  return static_cast<double>(granted_total_) /
         (static_cast<double>(slots_) * capacity);
}

double MetricsCollector::fiber_fairness() const {
  return util::jain_fairness(fiber_grants_);
}

}  // namespace wdm::sim
