// Simulation metrics: loss probability, throughput, utilisation, fairness.
//
// All accumulators are mergeable so warm-up can be discarded and parallel
// partials combined. Loss probability comes with a Wilson 95% interval —
// the quantity the paper's motivation cares about is small at light load.
#pragma once

#include <cstdint>
#include <vector>

#include "util/small_vec.hpp"
#include "util/stats.hpp"

namespace wdm::sim {

/// What happened in one slot of the interconnect.
///
/// Conservation: every request offered this slot — fresh (`arrivals`),
/// re-offered from the retry queue (`retry_attempts`), or released from the
/// admission ingress queue (`ingress_releases`) — ends granted, rejected,
/// or deferred into one of the two bounded queues:
///     granted + rejected + deferred_faulted + deferred_overload
///         == arrivals + retry_attempts + ingress_releases.
struct SlotStats {
  std::uint64_t arrivals = 0;       ///< fresh requests offered this slot
  std::uint64_t granted = 0;        ///< offered requests granted
  std::uint64_t rejected = 0;       ///< offered requests dropped (no buffers)
  /// Subset of `rejected` dropped for malformed fields (core::is_malformed
  /// RejectReasons), not for lack of capacity.
  std::uint64_t rejected_malformed = 0;
  /// Subset of `rejected` dropped because the destination hardware was
  /// faulted (RejectReason::kFaulted) with no retry budget left.
  std::uint64_t rejected_faulted = 0;
  /// Subset of `rejected` shed deliberately by overload control — admission
  /// drops (tail or priority-aware) and retry-queue overflow. Disjoint from
  /// the malformed and faulted subsets.
  std::uint64_t shed_overload = 0;
  /// Offered requests parked in the retry queue instead of dropped
  /// (fault-rejected, with retry budget and queue capacity remaining).
  std::uint64_t deferred_faulted = 0;
  /// Fresh arrivals parked in the admission ingress queue (input fiber out
  /// of tokens, queue capacity remaining).
  std::uint64_t deferred_overload = 0;
  /// Requests leaving the ingress queue this slot: drained back into
  /// scheduling once their fiber regained tokens, or evicted by the
  /// priority-aware shed policy.
  std::uint64_t ingress_releases = 0;
  /// Output ports downgraded from the exact O(dk) kernel to the O(k)
  /// approximation this slot (deadline-bounded degradation).
  std::uint64_t degraded_ports = 0;
  /// Requests re-offered from the retry queue this slot.
  std::uint64_t retry_attempts = 0;
  /// Subset of `granted` that came from the retry queue.
  std::uint64_t retry_successes = 0;
  std::uint64_t preempted = 0;      ///< ongoing connections dropped mid-hold
  /// Ongoing connections torn down mid-hold because their channel,
  /// converter, or fiber failed (kNoDisturb), or because no surviving
  /// channel could re-home them (kRearrange). Disjoint from `preempted`.
  std::uint64_t dropped_faulted = 0;
  std::uint64_t busy_channels = 0;  ///< occupied output channels after the slot
  /// Per-QoS-class accounting (index = priority class); sized to the
  /// highest class seen this slot, empty for single-class traffic. Retries
  /// are tracked by the retry_* counters only, never per class. Inline
  /// storage keeps a warm Interconnect::step allocation-free for realistic
  /// class counts (tests/test_zero_alloc.cpp asserts exactly 0).
  util::SmallVec<std::uint64_t, 8> arrivals_per_class;
  util::SmallVec<std::uint64_t, 8> granted_per_class;

  /// Elementwise accumulation — the fleet-level merge of independent shard
  /// slots. Scalar counters add; the per-class vectors grow to the longer
  /// side (inline up to 8 classes, so merging stays allocation-free for
  /// realistic class counts).
  void add(const SlotStats& other);
};

class MetricsCollector {
 public:
  /// `n_fibers` and `k` size the utilisation and fairness accumulators.
  MetricsCollector(std::int32_t n_fibers, std::int32_t k);

  void record_slot(const SlotStats& stats);
  /// Per-output-fiber grant accounting (fairness across destinations).
  void record_fiber_grants(std::int32_t output_fiber, std::uint64_t granted);
  void merge(const MetricsCollector& other);

  std::uint64_t slots() const noexcept { return slots_; }
  std::uint64_t arrivals() const noexcept { return loss_.trials(); }
  std::uint64_t losses() const noexcept { return loss_.successes(); }
  /// Fresh arrivals only (no retries / ingress releases) — the raw SlotStats
  /// `arrivals` sum. `arrivals()` above stays "offered trials" (fresh +
  /// retries + releases), which the loss ratio and existing callers rely on.
  std::uint64_t raw_arrivals() const noexcept { return raw_arrivals_; }
  std::uint64_t granted() const noexcept { return granted_total_; }
  /// Ongoing connections preempted mid-hold (kRearrange accounting).
  std::uint64_t preempted() const noexcept { return preempted_; }
  /// Sum over slots of occupied output channels (utilization() is the mean
  /// fraction; this is the raw counter an exporter can rate()).
  std::uint64_t busy_channel_slots() const noexcept {
    return busy_channel_slots_;
  }
  /// Per-QoS-class accounting, sized to the highest class seen; empty for
  /// runs that never carried a multi-class slot.
  const std::vector<std::uint64_t>& arrivals_per_class() const noexcept {
    return arrivals_per_class_;
  }
  const std::vector<std::uint64_t>& granted_per_class() const noexcept {
    return granted_per_class_;
  }
  /// Requests dropped for malformed fields rather than lack of capacity.
  std::uint64_t rejected_malformed() const noexcept {
    return rejected_malformed_;
  }
  /// Requests dropped because the destination hardware was faulted.
  std::uint64_t rejected_faulted() const noexcept { return rejected_faulted_; }
  /// Fault-rejected requests parked in the retry queue instead of dropped.
  std::uint64_t deferred_faulted() const noexcept { return deferred_faulted_; }
  /// Requests shed by overload control (admission + retry-queue overflow).
  std::uint64_t shed_overload() const noexcept { return shed_overload_; }
  /// Arrivals parked in the admission ingress queue.
  std::uint64_t deferred_overload() const noexcept {
    return deferred_overload_;
  }
  /// Requests released from the ingress queue (drained or evicted).
  std::uint64_t ingress_releases() const noexcept { return ingress_releases_; }
  /// Port-slots scheduled in degraded (O(k)) mode.
  std::uint64_t degraded_ports() const noexcept { return degraded_ports_; }
  /// Slots in which at least one port ran degraded.
  std::uint64_t degraded_slots() const noexcept { return degraded_slots_; }
  /// Requests re-offered from the retry queue.
  std::uint64_t retry_attempts() const noexcept { return retry_attempts_; }
  /// Retry attempts that ended in a grant.
  std::uint64_t retry_successes() const noexcept { return retry_successes_; }
  /// Ongoing connections torn down mid-hold by hardware faults.
  std::uint64_t dropped_faulted() const noexcept { return dropped_faulted_; }

  /// P(offered request rejected) — offered = fresh arrivals + retries.
  double loss_probability() const noexcept { return loss_.value(); }
  double loss_wilson_low() const noexcept { return loss_.wilson_low(); }
  double loss_wilson_high() const noexcept { return loss_.wilson_high(); }

  /// Granted requests per slot per output channel (normalised throughput).
  double throughput_per_channel() const noexcept;
  /// Mean fraction of output channels occupied.
  double utilization() const noexcept { return utilization_.mean(); }
  /// Jain fairness index of per-output-fiber grant totals.
  double fiber_fairness() const;
  /// Per-output-fiber grant totals (index = output fiber). Feeds the opt-in
  /// per-fiber Prometheus series; cardinality is N, so exporters keep it
  /// behind a flag.
  const std::vector<double>& fiber_grants() const noexcept {
    return fiber_grants_;
  }

 private:
  std::int32_t n_fibers_;
  std::int32_t k_;
  std::uint64_t slots_ = 0;
  std::uint64_t granted_total_ = 0;
  std::uint64_t rejected_malformed_ = 0;
  std::uint64_t rejected_faulted_ = 0;
  std::uint64_t deferred_faulted_ = 0;
  std::uint64_t shed_overload_ = 0;
  std::uint64_t deferred_overload_ = 0;
  std::uint64_t ingress_releases_ = 0;
  std::uint64_t degraded_ports_ = 0;
  std::uint64_t degraded_slots_ = 0;
  std::uint64_t retry_attempts_ = 0;
  std::uint64_t retry_successes_ = 0;
  std::uint64_t dropped_faulted_ = 0;
  std::uint64_t raw_arrivals_ = 0;
  std::uint64_t preempted_ = 0;
  std::uint64_t busy_channel_slots_ = 0;
  std::vector<std::uint64_t> arrivals_per_class_;
  std::vector<std::uint64_t> granted_per_class_;
  util::Proportion loss_;
  util::RunningStats utilization_;
  std::vector<double> fiber_grants_;
};

}  // namespace wdm::sim
