// Simulation metrics: loss probability, throughput, utilisation, fairness.
//
// All accumulators are mergeable so warm-up can be discarded and parallel
// partials combined. Loss probability comes with a Wilson 95% interval —
// the quantity the paper's motivation cares about is small at light load.
#pragma once

#include <cstdint>
#include <vector>

#include "util/stats.hpp"

namespace wdm::sim {

/// What happened in one slot of the interconnect.
struct SlotStats {
  std::uint64_t arrivals = 0;       ///< new requests offered this slot
  std::uint64_t granted = 0;        ///< new requests granted
  std::uint64_t rejected = 0;       ///< new requests dropped (no buffers)
  /// Subset of `rejected` dropped for malformed fields (core::is_malformed
  /// RejectReasons), not for lack of capacity.
  std::uint64_t rejected_malformed = 0;
  std::uint64_t preempted = 0;      ///< ongoing connections dropped mid-hold
  std::uint64_t busy_channels = 0;  ///< occupied output channels after the slot
  /// Per-QoS-class accounting (index = priority class); sized to the
  /// highest class seen this slot, empty for single-class traffic.
  std::vector<std::uint64_t> arrivals_per_class;
  std::vector<std::uint64_t> granted_per_class;
};

class MetricsCollector {
 public:
  /// `n_fibers` and `k` size the utilisation and fairness accumulators.
  MetricsCollector(std::int32_t n_fibers, std::int32_t k);

  void record_slot(const SlotStats& stats);
  /// Per-output-fiber grant accounting (fairness across destinations).
  void record_fiber_grants(std::int32_t output_fiber, std::uint64_t granted);
  void merge(const MetricsCollector& other);

  std::uint64_t slots() const noexcept { return slots_; }
  std::uint64_t arrivals() const noexcept { return loss_.trials(); }
  std::uint64_t losses() const noexcept { return loss_.successes(); }
  /// Requests dropped for malformed fields rather than lack of capacity.
  std::uint64_t rejected_malformed() const noexcept {
    return rejected_malformed_;
  }

  /// P(new request rejected).
  double loss_probability() const noexcept { return loss_.value(); }
  double loss_wilson_low() const noexcept { return loss_.wilson_low(); }
  double loss_wilson_high() const noexcept { return loss_.wilson_high(); }

  /// Granted requests per slot per output channel (normalised throughput).
  double throughput_per_channel() const noexcept;
  /// Mean fraction of output channels occupied.
  double utilization() const noexcept { return utilization_.mean(); }
  /// Jain fairness index of per-output-fiber grant totals.
  double fiber_fairness() const;

 private:
  std::int32_t n_fibers_;
  std::int32_t k_;
  std::uint64_t slots_ = 0;
  std::uint64_t granted_total_ = 0;
  std::uint64_t rejected_malformed_ = 0;
  util::Proportion loss_;
  util::RunningStats utilization_;
  std::vector<double> fiber_grants_;
};

}  // namespace wdm::sim
