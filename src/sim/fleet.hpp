// Sharded fleet engine: F independent fabrics served from pinned worker
// groups (ROADMAP item 2 — many-interconnect serving at production scale),
// with an opt-in self-healing supervision layer (docs/ALGORITHMS.md §13).
//
// The paper's structural property — each output fiber's scheduler decides
// independently within a slot — extends one level up: whole fabrics (or
// fiber ranges of one huge fabric modeled as separate fabrics) share no
// state within a slot, so a fleet of F interconnects is embarrassingly
// parallel. Each shard owns a full sim::Interconnect with its own arena,
// availability plane, RNG streams, admission controller, traffic source,
// and metrics collector; nothing is shared between shards but the slot
// barrier, and the warm step path performs zero cross-shard heap
// allocation (tests/test_zero_alloc.cpp drives a 4-shard fleet).
//
// Threading model: one persistent driver thread per shard. A driver
// optionally pins itself (util::cpu_affinity) to a contiguous CPU block,
// then constructs the shard's state *on the pinned thread* — so first-touch
// page placement puts the shard's arenas on the driver's NUMA node — and
// its per-shard ThreadPool workers inherit the affinity mask. Per-shard
// group sizes are clamped by ThreadPool::clamped_partition_threads so a
// fleet never oversubscribes the machine with nested pools.
//
// Determinism: shard i's master seed is a labeled substream of the fleet
// seed (or an explicit FleetConfig::shard_seeds entry), and every scheduling
// decision is thread-count- and pinning-independent, so
// fleet_digest() — FNV-1a64 over the ordered shard state digests — is a
// bit-exact fingerprint of (config, seed, slots stepped). Checkpoint and
// resume run one sim::CheckpointStore chain per shard under
// <dir>/shard-<i>/ (docs/ALGORITHMS.md §12).
//
// Supervision (opt-in, off by default — the supervised-off path is
// bit-identical to an unsupervised fleet and test-pinned): the same
// shard-independence that makes the fleet parallel makes shard failures
// isolatable. With SupervisionConfig::enabled, a shard whose driver throws
// is quarantined instead of killing the fleet: the slot barrier degrades to
// the surviving shards, and the supervisor restarts the shard — fresh state
// rebuilt from its derived seed, recovered from its <dir>/shard-<i>/
// checkpoint chain via recover_latest (or replayed from slot 0 when no
// chain exists), then replayed forward to the fleet slot so it rejoins the
// barrier in lockstep, bit-identical to a shard that never crashed. Restarts
// draw from a bounded per-shard budget with doubling backoff (in fleet
// slots); an exhausted budget parks the shard in kFailed permanently. An
// optional barrier watchdog detects a stuck/livelocked driver (no slot
// progress within watchdog_ns), abandons it, and drives the same
// quarantine/restart path on a replacement driver thread.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/telemetry.hpp"
#include "sim/checkpoint_store.hpp"
#include "sim/interconnect.hpp"
#include "sim/metrics.hpp"
#include "sim/traffic.hpp"

namespace wdm::sim {

/// Supervision state of one shard. Numeric values are stable — they are
/// exported as the wdm_shard_health{shard="i"} gauge.
enum class ShardHealth : std::uint8_t {
  kServing = 0,      ///< stepping in lockstep with the barrier
  kQuarantined = 1,  ///< crashed or stalled; excluded until restart-eligible
  kRestarting = 2,   ///< rebuilding from checkpoint + replaying to the barrier
  kFailed = 3,       ///< restart budget exhausted; permanently out
};

const char* to_string(ShardHealth health) noexcept;

/// Scripted shard-level fault kinds (FaultInjector's idea one level up:
/// instead of failing fabric hardware, fail the serving machinery itself).
enum class ShardFaultKind : std::uint8_t {
  kCrash,  ///< the driver throws ShardCrashInjected before stepping the slot
  kStall,  ///< the driver blocks stall_ns before stepping the slot
};

/// One scripted shard fault, fired at most once, immediately before the
/// shard steps fleet slot `slot`. Replays after a restart do NOT refire it —
/// a consumed event stays consumed, so a recovered shard replays clean.
struct ShardFaultEvent {
  std::size_t shard = 0;
  std::uint64_t slot = 0;
  ShardFaultKind kind = ShardFaultKind::kCrash;
  std::uint64_t stall_ns = 0;  ///< kStall only: how long the driver blocks
};

/// What a scripted kCrash injection throws (and what tests catch).
struct ShardCrashInjected : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct SupervisionConfig {
  /// Off by default: an unsupervised fleet parks errored shards and
  /// rethrows at the barrier exactly as before (bit-identical, test-pinned).
  bool enabled = false;
  /// Restart attempts per shard over the fleet's lifetime (successful or
  /// not); once consumed the shard goes kFailed permanently. 0 means a
  /// crashed shard fails immediately (quarantine-only, no healing).
  std::uint32_t restart_budget = 3;
  /// Fleet slots a quarantined shard waits before its first restart
  /// attempt; doubles per consumed attempt. 0 restarts immediately (still
  /// within the same barrier round when the target allows).
  std::uint64_t backoff_slots = 2;
  /// Barrier watchdog: a kServing shard that makes no slot progress for
  /// this long while the barrier waits is declared stuck, abandoned, and
  /// quarantined (a replacement driver thread heals it). 0 disables the
  /// watchdog. Restarting shards are exempt (recovery does file IO).
  std::uint64_t watchdog_ns = 0;
};

struct FleetConfig {
  /// Independent fabrics served by this fleet.
  std::size_t shards = 1;
  /// Threads per shard group, *including* the shard's driver thread (the
  /// driver claims parallel_for chunks alongside the pool workers). 0
  /// derives it from the thread budget; values above the per-shard budget
  /// are clamped (ThreadPool::clamped_partition_threads).
  std::size_t threads_per_shard = 0;
  /// Total thread budget shared by all shard groups; 0 means the CPUs
  /// available to this process. Tests use it to model a small host.
  std::size_t max_total_threads = 0;
  /// Pin each shard group to a contiguous block of logical CPUs. A
  /// performance hint only: decisions and digests are identical either way.
  bool pin_cpus = false;
  /// Fleet master seed; shard i's seed is a labeled substream of it.
  std::uint64_t seed = 1;
  /// Explicit per-shard master seeds (size must equal `shards` when
  /// nonempty); empty derives them from `seed`. Changing any one entry
  /// changes exactly that shard's streams and thus the fleet digest.
  std::vector<std::uint64_t> shard_seeds;
  /// Every shard runs this fabric geometry/policy (the per-shard scheduler
  /// seed inside it is overwritten from the shard's master seed).
  InterconnectConfig interconnect;
  /// Every shard runs this traffic model on its own generator stream.
  TrafficConfig traffic;
  /// Self-healing layer (off by default; see the header comment).
  SupervisionConfig supervision;
  /// Scripted shard crash/stall injection for tests and chaos drills.
  /// Independent of supervision: an unsupervised fleet treats an injected
  /// crash like any other shard error (parked, rethrown at the barrier).
  std::vector<ShardFaultEvent> shard_faults;
  /// Always-on per-shard flight recorder (src/obs/flight_recorder.hpp): a
  /// bounded trace ring + stage histograms each driver flies with, the
  /// source of post-mortem black boxes. Ring and histograms are
  /// preallocated, so the warm step path stays zero-allocation with it on;
  /// it is an observer only — digests are identical with it off.
  obs::FlightRecorderConfig flight;
  /// Root directory for black-box dumps: on quarantine, restart-budget
  /// exhaustion, or watchdog abandonment the shard's post-mortem lands in
  /// <blackbox_dir>/blackbox/shard-<i>-slot-<s>/ (trace.json, metrics.prom,
  /// blackbox.json), written off the serving drivers by a dedicated writer
  /// thread. Empty disables dumping (the flight recorder still records).
  std::string blackbox_dir;
};

/// Per-shard recovery outcomes of Fleet::resume_from.
struct FleetRecovery {
  bool recovered = false;      ///< every shard restored and agreed on a slot
  std::uint64_t slot = 0;      ///< common restored slot counter
  std::vector<RecoveryReport> shards;  ///< one report per shard, in order
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  const FleetConfig& config() const noexcept { return config_; }
  std::size_t shards() const noexcept { return shards_.size(); }
  /// Effective group size per shard after the oversubscription clamp
  /// (driver thread included).
  std::size_t threads_per_shard() const noexcept { return group_threads_; }
  /// Pool workers each shard spawned (group size minus the driver).
  std::size_t pool_workers_per_shard() const noexcept {
    return group_threads_ - 1;
  }
  /// Every thread the fleet spawned or drives: shard drivers plus all
  /// per-shard pool workers. The clamp guarantees this never exceeds
  /// max(shards, thread budget). Watchdog replacements are not counted —
  /// an abandoned driver is winding down while its replacement serves.
  std::size_t total_threads() const noexcept {
    return shards_.size() * group_threads_;
  }
  /// True when pinning was requested and every shard applied its CPU mask.
  /// False under the portable no-op fallback — callers should surface that
  /// (examples/simulate warns; wdm_fleet_pinned exports it).
  bool pinned() const noexcept { return pinned_; }
  /// Shard i's master seed (derived or explicit).
  std::uint64_t shard_seed(std::size_t shard) const;

  /// Advances every shard exactly one slot and waits for all of them (the
  /// slot barrier). Zero heap allocation once warm. Under supervision the
  /// barrier covers serving shards only; without it a shard error rethrows.
  void step();
  /// Advances every shard `slots` slots with one barrier at the end —
  /// shards free-run between barriers, which is legal because they share no
  /// state; bit-identical to calling step() `slots` times.
  void run(std::uint64_t slots);

  /// Slots every shard has advanced since construction (or resume).
  std::uint64_t current_slot() const noexcept { return slot_; }
  /// Sum of serving-shard SlotStats for the most recent slot (valid after
  /// step(); after run() it covers the final slot only).
  const SlotStats& last_step_stats() const noexcept { return last_stats_; }
  /// Fresh requests offered / granted across all shards since construction,
  /// resume, or reset_counters(). A restarted shard re-accumulates from its
  /// recovery slot (metrics are observers, never checkpointed).
  std::uint64_t total_arrivals() const noexcept;
  std::uint64_t total_granted() const noexcept;
  /// Discards accumulated metrics and totals (warm-up discard). State
  /// digests are unaffected: metrics are observers, never simulation state.
  void reset_counters();

  const Interconnect& shard_interconnect(std::size_t shard) const;
  const MetricsCollector& shard_metrics(std::size_t shard) const;
  /// Merged view across shards via MetricsCollector::merge (exact: the
  /// accumulators are designed mergeable). Built on demand — not hot path.
  MetricsCollector merged_metrics() const;

  /// FNV-1a64 over the ordered shard state digests — equal iff every
  /// shard's checkpoint payload is byte-identical. Thread-count- and
  /// pinning-invariant; any shard seed change changes it. A shard with no
  /// live state (kFailed after a watchdog abandonment) contributes a fixed
  /// dead marker instead of a state digest.
  std::uint64_t fleet_digest() const;

  // --- supervision introspection (cold; each takes the fleet lock) ---

  ShardHealth shard_health(std::size_t shard) const;
  /// Successful restarts (quarantine -> rejoin) of shard i so far.
  std::uint64_t shard_restarts(std::size_t shard) const;
  /// Successful restarts across all shards.
  std::uint64_t total_restarts() const;
  /// Shards currently in ShardHealth::kServing.
  std::size_t serving_shards() const;
  /// Checkpoint frames discarded (torn/corrupt/unchained) across every
  /// resume_from and every supervised restart recovery so far.
  std::uint64_t recovery_discards() const;

  /// Shard i's flight recorder — null when FleetConfig::flight.enabled is
  /// false, or briefly while a watchdog-abandoned shard's replacement is
  /// still rebuilding. Driver-owned: read it only between barriers (the
  /// acquire/release pairing on the slot barrier makes that race-free).
  const obs::FlightRecorder* shard_flight(std::size_t shard) const;
  /// Black-box dumps fully persisted so far (0 without a blackbox_dir).
  std::uint64_t black_box_dumps() const;
  /// Blocks until every dump enqueued so far reached disk. A
  /// watchdog-abandoned driver still winding down enqueues its dump only
  /// when its thread is joined (fleet destruction) — that dump is
  /// guaranteed on disk at destructor return, not by an earlier flush.
  void flush_black_boxes();

  /// Attaches (or detaches) a trace recorder for supervision events
  /// (kShardQuarantine / kShardRestart / kShardRejoin / kShardFailed).
  /// Events are staged by the drivers and drained into the recorder on the
  /// caller thread at the end of each step()/run(), preserving the
  /// recorder's single-writer contract. Observer only: never serialized.
  void set_telemetry(obs::TraceRecorder* recorder);

  /// Opens one CheckpointStore chain per shard under
  /// <policy.dir>/shard-<i>/ (cadence fields taken from `policy`). Under
  /// supervision this directory is also where restarted shards recover from.
  void open_checkpoints(const CheckpointPolicy& policy);
  /// Writes one frame per shard (interconnect + traffic state). Requires
  /// open_checkpoints. All shards are written at the same fleet slot, so a
  /// later resume finds agreeing chains. Quarantined/failed shards are
  /// skipped (their chains keep the last healthy frame); their chains
  /// re-agree with the fleet after the shard rejoins and the next frame —
  /// always a fresh full — is written.
  void write_checkpoint();
  /// Recovers every shard's newest verified chain from <dir>/shard-<i>/.
  /// Succeeds only when all shards recover and agree on the restored slot;
  /// on success the fleet continues from that slot. On failure the fleet
  /// state is unspecified — rebuild it (cheap) before trusting digests.
  FleetRecovery resume_from(const std::string& dir);

 private:
  struct Shard;

  /// One restart attempt's outcome, kept for the shard's black box: the
  /// manifest's restart_history explains how the shard got where it is.
  struct RestartRecord {
    std::uint32_t attempt = 0;         ///< 1-based attempt number
    std::uint64_t began_at_slot = 0;   ///< fleet target when it began
    bool ok = false;                   ///< rejoined the barrier
    std::uint64_t recovered_slot = 0;  ///< checkpoint slot recovered from
    std::uint64_t discards = 0;        ///< frames discarded during recovery
  };

  /// Per-shard supervision record, guarded by mu_.
  struct Supervisor {
    ShardHealth health = ShardHealth::kServing;
    std::uint32_t attempts = 0;        ///< restart attempts consumed
    std::uint64_t restarts = 0;        ///< successful rejoins
    std::uint64_t eligible_target = 0; ///< restart once target_slots_ >= this
    std::vector<RestartRecord> history;        ///< every attempt, in order
    std::vector<std::string> discard_reasons;  ///< recovery rejects (bounded)
  };

  void driver_main(std::size_t index, bool replacement);
  void maybe_pin(std::size_t index, Shard& shard);
  /// Builds (or rebuilds) the shard's heavy state from its derived seeds on
  /// the calling thread (first-touch page placement follows the caller).
  void build_shard_state(std::size_t index, Shard& shard);
  void run_shard_slot(std::size_t index, Shard& shard);
  /// Fires any scripted, unconsumed fault for (shard, next slot).
  void maybe_inject_fault(std::size_t index, Shard& shard);
  /// One restart attempt: rebuild, recover from the shard's chain (or slot
  /// 0), replay to the current target, rejoin — or re-quarantine / fail.
  /// Enters and leaves with `lock` held.
  void attempt_restart(std::unique_lock<std::mutex>& lock, std::size_t index,
                       Shard& shard);
  /// Crash path: consumes the exception under supervision (quarantine or
  /// fail), or parks it for the barrier rethrow when unsupervised.
  void handle_shard_error(std::size_t index, Shard& shard,
                          std::exception_ptr error);
  /// Watchdog path: abandons the stuck shard's state and driver, installs a
  /// fresh Shard shell, and (budget permitting) spawns a replacement driver.
  /// Requires mu_.
  void quarantine_stuck_shard(std::size_t index);
  /// Barrier predicate: every shard the barrier still covers reached the
  /// target. Requires mu_.
  bool barrier_satisfied() const;
  std::string shard_checkpoint_dir(std::size_t index) const;
  /// Stages a supervision trace event (no-op without a recorder). Requires
  /// mu_.
  void stage_event(obs::EventKind kind, std::uint64_t slot, std::size_t shard,
                   std::uint64_t b, std::uint8_t detail);
  /// Assembles shard `index`'s post-mortem from a supervisor snapshot: ring
  /// snapshot + trigger event, rendered metrics, JSON manifest. Must run on
  /// the thread that owns the shard's trace ring; needs no lock beyond the
  /// snapshot the caller took.
  obs::BlackBoxDump make_black_box(std::size_t index, Shard& shard,
                                   const char* reason, bool watchdog,
                                   std::uint64_t at, bool failed,
                                   const Supervisor& sup) const;
  /// make_black_box + enqueue on the writer (no-op without a blackbox_dir
  /// or flight recorder). Requires mu_ (reads supervisors_[index]).
  void enqueue_black_box(std::size_t index, Shard& shard, const char* reason,
                         bool watchdog, std::uint64_t at, bool failed);
  /// Releases the drivers to advance `slots` more slots and blocks until
  /// the barrier is satisfied (running the watchdog while it waits);
  /// unsupervised, rethrows the first shard error.
  void advance(std::uint64_t slots);
  void aggregate_last_stats();
  /// Constructor failure path: joins every driver, then rethrows `error`.
  [[noreturn]] void stop_drivers_and_rethrow(std::exception_ptr error);

  FleetConfig config_;
  std::size_t group_threads_ = 1;  // effective per-shard group size
  bool pinned_ = false;
  std::vector<std::uint64_t> seeds_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> drivers_;
  std::uint64_t slot_ = 0;
  SlotStats last_stats_;
  // Scripted fault bookkeeping: per-shard indices into config_.shard_faults
  // (empty vector = injection-free fast path) and one consumed flag per
  // event. Atomic because a watchdog replacement may replay past a slot
  // whose event the abandoned driver consumed moments earlier.
  std::vector<std::vector<std::size_t>> shard_fault_index_;
  std::unique_ptr<std::atomic<bool>[]> fault_fired_;

  // Slot-barrier plumbing: the caller publishes a new cumulative target
  // (absolute fleet slots), each driver catches its shard up and reports;
  // the barrier is satisfied when every covered shard's done counter
  // reaches the target. Startup reuses the same condition variables.
  mutable std::mutex mu_;
  std::condition_variable cv_;       // wakes drivers (target bump, stop)
  std::condition_variable done_cv_;  // wakes the caller (barrier satisfied)
  std::uint64_t target_slots_ = 0;
  std::size_t ready_ = 0;
  bool stop_ = false;

  // Supervision state (guarded by mu_ unless noted).
  std::vector<Supervisor> supervisors_;
  std::vector<std::unique_ptr<Shard>> retired_;  // abandoned shard states
  std::vector<std::uint64_t> watchdog_progress_; // last-seen done counters
  std::uint64_t recovery_discards_ = 0;
  std::optional<CheckpointPolicy> checkpoint_policy_;
  obs::TraceRecorder* telemetry_ = nullptr;
  std::vector<obs::TraceEvent> pending_obs_;
  /// Black-box sink (null without a blackbox_dir). Set once in the
  /// constructor, before any driver spawns; destroyed after ~Fleet joins
  /// every driver, so a winding-down abandoned driver can still enqueue.
  std::unique_ptr<obs::BlackBoxWriter> blackbox_;
};

}  // namespace wdm::sim
