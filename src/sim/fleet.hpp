// Sharded fleet engine: F independent fabrics served from pinned worker
// groups (ROADMAP item 2 — many-interconnect serving at production scale).
//
// The paper's structural property — each output fiber's scheduler decides
// independently within a slot — extends one level up: whole fabrics (or
// fiber ranges of one huge fabric modeled as separate fabrics) share no
// state within a slot, so a fleet of F interconnects is embarrassingly
// parallel. Each shard owns a full sim::Interconnect with its own arena,
// availability plane, RNG streams, admission controller, traffic source,
// and metrics collector; nothing is shared between shards but the slot
// barrier, and the warm step path performs zero cross-shard heap
// allocation (tests/test_zero_alloc.cpp drives a 4-shard fleet).
//
// Threading model: one persistent driver thread per shard. A driver
// optionally pins itself (util::cpu_affinity) to a contiguous CPU block,
// then constructs the shard's state *on the pinned thread* — so first-touch
// page placement puts the shard's arenas on the driver's NUMA node — and
// its per-shard ThreadPool workers inherit the affinity mask. Per-shard
// group sizes are clamped by ThreadPool::clamped_partition_threads so a
// fleet never oversubscribes the machine with nested pools.
//
// Determinism: shard i's master seed is a labeled substream of the fleet
// seed (or an explicit FleetConfig::shard_seeds entry), and every scheduling
// decision is thread-count- and pinning-independent, so
// fleet_digest() — FNV-1a64 over the ordered shard state digests — is a
// bit-exact fingerprint of (config, seed, slots stepped). Checkpoint and
// resume run one sim::CheckpointStore chain per shard under
// <dir>/shard-<i>/ (docs/ALGORITHMS.md §12).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/checkpoint_store.hpp"
#include "sim/interconnect.hpp"
#include "sim/metrics.hpp"
#include "sim/traffic.hpp"

namespace wdm::sim {

struct FleetConfig {
  /// Independent fabrics served by this fleet.
  std::size_t shards = 1;
  /// Threads per shard group, *including* the shard's driver thread (the
  /// driver claims parallel_for chunks alongside the pool workers). 0
  /// derives it from the thread budget; values above the per-shard budget
  /// are clamped (ThreadPool::clamped_partition_threads).
  std::size_t threads_per_shard = 0;
  /// Total thread budget shared by all shard groups; 0 means the CPUs
  /// available to this process. Tests use it to model a small host.
  std::size_t max_total_threads = 0;
  /// Pin each shard group to a contiguous block of logical CPUs. A
  /// performance hint only: decisions and digests are identical either way.
  bool pin_cpus = false;
  /// Fleet master seed; shard i's seed is a labeled substream of it.
  std::uint64_t seed = 1;
  /// Explicit per-shard master seeds (size must equal `shards` when
  /// nonempty); empty derives them from `seed`. Changing any one entry
  /// changes exactly that shard's streams and thus the fleet digest.
  std::vector<std::uint64_t> shard_seeds;
  /// Every shard runs this fabric geometry/policy (the per-shard scheduler
  /// seed inside it is overwritten from the shard's master seed).
  InterconnectConfig interconnect;
  /// Every shard runs this traffic model on its own generator stream.
  TrafficConfig traffic;
};

/// Per-shard recovery outcomes of Fleet::resume_from.
struct FleetRecovery {
  bool recovered = false;      ///< every shard restored and agreed on a slot
  std::uint64_t slot = 0;      ///< common restored slot counter
  std::vector<RecoveryReport> shards;  ///< one report per shard, in order
};

class Fleet {
 public:
  explicit Fleet(FleetConfig config);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  const FleetConfig& config() const noexcept { return config_; }
  std::size_t shards() const noexcept { return shards_.size(); }
  /// Effective group size per shard after the oversubscription clamp
  /// (driver thread included).
  std::size_t threads_per_shard() const noexcept { return group_threads_; }
  /// Pool workers each shard spawned (group size minus the driver).
  std::size_t pool_workers_per_shard() const noexcept {
    return group_threads_ - 1;
  }
  /// Every thread the fleet spawned or drives: shard drivers plus all
  /// per-shard pool workers. The clamp guarantees this never exceeds
  /// max(shards, thread budget).
  std::size_t total_threads() const noexcept {
    return shards_.size() * group_threads_;
  }
  /// True when pinning was requested and every shard applied its CPU mask.
  bool pinned() const noexcept { return pinned_; }
  /// Shard i's master seed (derived or explicit).
  std::uint64_t shard_seed(std::size_t shard) const;

  /// Advances every shard exactly one slot and waits for all of them (the
  /// slot barrier). Zero heap allocation once warm.
  void step();
  /// Advances every shard `slots` slots with one barrier at the end —
  /// shards free-run between barriers, which is legal because they share no
  /// state; bit-identical to calling step() `slots` times.
  void run(std::uint64_t slots);

  /// Slots every shard has advanced since construction (or resume).
  std::uint64_t current_slot() const noexcept { return slot_; }
  /// Sum of shard SlotStats for the most recent slot (valid after step();
  /// after run() it covers the final slot only).
  const SlotStats& last_step_stats() const noexcept { return last_stats_; }
  /// Fresh requests offered / granted across all shards since construction,
  /// resume, or reset_counters().
  std::uint64_t total_arrivals() const noexcept;
  std::uint64_t total_granted() const noexcept;
  /// Discards accumulated metrics and totals (warm-up discard). State
  /// digests are unaffected: metrics are observers, never simulation state.
  void reset_counters();

  const Interconnect& shard_interconnect(std::size_t shard) const;
  const MetricsCollector& shard_metrics(std::size_t shard) const;
  /// Merged view across shards via MetricsCollector::merge (exact: the
  /// accumulators are designed mergeable). Built on demand — not hot path.
  MetricsCollector merged_metrics() const;

  /// FNV-1a64 over the ordered shard state digests — equal iff every
  /// shard's checkpoint payload is byte-identical. Thread-count- and
  /// pinning-invariant; any shard seed change changes it.
  std::uint64_t fleet_digest() const;

  /// Opens one CheckpointStore chain per shard under
  /// <policy.dir>/shard-<i>/ (cadence fields taken from `policy`).
  void open_checkpoints(const CheckpointPolicy& policy);
  /// Writes one frame per shard (interconnect + traffic state). Requires
  /// open_checkpoints. All shards are written at the same fleet slot, so a
  /// later resume finds agreeing chains.
  void write_checkpoint();
  /// Recovers every shard's newest verified chain from <dir>/shard-<i>/.
  /// Succeeds only when all shards recover and agree on the restored slot;
  /// on success the fleet continues from that slot. On failure the fleet
  /// state is unspecified — rebuild it (cheap) before trusting digests.
  FleetRecovery resume_from(const std::string& dir);

 private:
  struct Shard;

  void driver_main(std::size_t index);
  void run_shard_slot(Shard& shard);
  /// Releases the drivers to advance `slots` more slots and blocks until
  /// all have; rethrows the first shard error.
  void advance(std::uint64_t slots);
  /// Constructor failure path: joins every driver, then rethrows `error`.
  [[noreturn]] void stop_drivers_and_rethrow(std::exception_ptr error);

  FleetConfig config_;
  std::size_t group_threads_ = 1;  // effective per-shard group size
  bool pinned_ = false;
  std::vector<std::uint64_t> seeds_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::thread> drivers_;
  std::uint64_t slot_ = 0;
  SlotStats last_stats_;

  // Slot-barrier plumbing: the caller publishes a new cumulative target,
  // each driver catches its shard up and reports done; `running_` counts
  // drivers still behind. Startup reuses the same condition variables.
  mutable std::mutex mu_;
  std::condition_variable cv_;       // wakes drivers (target bump, stop)
  std::condition_variable done_cv_;  // wakes the caller (all caught up)
  std::uint64_t target_slots_ = 0;
  std::size_t running_ = 0;
  std::size_t ready_ = 0;
  bool stop_ = false;
};

}  // namespace wdm::sim
