#include "sim/faults.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace wdm::sim {

namespace {

void check_rates(const MtbfMttr& rates, const char* what) {
  if (!rates.enabled()) return;
  WDM_CHECK_MSG(rates.mtbf >= 1.0, std::string(what) + " MTBF must be >= 1 slot");
  WDM_CHECK_MSG(rates.mttr >= 1.0, std::string(what) + " MTTR must be >= 1 slot");
}

}  // namespace

FaultInjector::FaultInjector(std::int32_t n_fibers, std::int32_t k,
                             FaultConfig config, std::uint64_t seed)
    : n_fibers_(n_fibers), k_(k), config_(std::move(config)), rng_(seed) {
  WDM_CHECK_MSG(n_fibers > 0 && k > 0, "fault geometry must be positive");
  check_rates(config_.converters, "converter");
  check_rates(config_.channels, "channel");
  check_rates(config_.fibers, "fiber");
  for (const auto& ev : config_.script) {
    WDM_CHECK_MSG(ev.fiber >= 0 && ev.fiber < n_fibers_,
                  "scripted fault fiber out of range");
    if (ev.kind != FaultKind::kFiber) {
      WDM_CHECK_MSG(ev.channel >= 0 && ev.channel < k_,
                    "scripted fault channel out of range");
    }
  }
  std::stable_sort(config_.script.begin(), config_.script.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.slot < b.slot;
                   });
  const auto n_channels =
      static_cast<std::size_t>(n_fibers_) * static_cast<std::size_t>(k_);
  converter_down_.assign(n_channels, 0);
  channel_down_.assign(n_channels, 0);
  fiber_down_.assign(static_cast<std::size_t>(n_fibers_), 0);
  health_.assign(static_cast<std::size_t>(n_fibers_),
                 core::HealthMask::healthy(k_));
}

bool FaultInjector::set_state(std::uint8_t& down, bool make_down) {
  if (down == (make_down ? 1 : 0)) return false;
  down = make_down ? 1 : 0;
  down_components_ += make_down ? 1 : -1;
  (make_down ? failures_ : repairs_) += 1;
  return true;
}

void FaultInjector::record_fault(FaultKind kind, std::int32_t fiber,
                                 std::int32_t channel, bool repair) {
  if (telemetry_ == nullptr || !telemetry_->at(obs::TraceDetail::kSlots)) {
    return;
  }
  obs::TraceEvent e;
  e.ts_ns = util::now_ns();
  // tick() bumps slots_ before applying this slot's transitions.
  e.slot = slots_ > 0 ? slots_ - 1 : 0;
  e.a = static_cast<std::uint64_t>(channel);
  e.fiber = fiber;
  e.kind = repair ? obs::EventKind::kFaultRepair : obs::EventKind::kFaultFail;
  e.detail = static_cast<std::uint8_t>(kind);
  telemetry_->record(e);
}

void FaultInjector::apply(FaultKind kind, std::int32_t fiber,
                          std::int32_t channel, bool repair) {
  const std::size_t at = static_cast<std::size_t>(fiber) *
                             static_cast<std::size_t>(k_) +
                         static_cast<std::size_t>(channel);
  bool flipped = false;
  switch (kind) {
    case FaultKind::kConverter:
      flipped = set_state(converter_down_[at], !repair);
      break;
    case FaultKind::kChannel:
      flipped = set_state(channel_down_[at], !repair);
      break;
    case FaultKind::kFiber:
      flipped = set_state(fiber_down_[static_cast<std::size_t>(fiber)], !repair);
      break;
  }
  if (flipped) record_fault(kind, fiber, channel, repair);
}

void FaultInjector::tick() {
  const std::uint64_t slot = slots_;
  slots_ += 1;

  // Scripted events for this slot (the script is sorted by slot).
  while (next_event_ < config_.script.size() &&
         config_.script[next_event_].slot <= slot) {
    const auto& ev = config_.script[next_event_];
    if (ev.slot == slot) apply(ev.kind, ev.fiber, ev.channel, ev.repair);
    next_event_ += 1;
  }

  // Stochastic transitions. Every enabled component draws exactly one
  // variate per slot whatever its state, so the stream position depends
  // only on (geometry, slot) — a fault schedule replays from its seed and
  // stays aligned under any mixture of scripted and stochastic events.
  const auto transition = [&](std::uint8_t& down, const MtbfMttr& rates,
                              FaultKind kind, std::int32_t fiber,
                              std::int32_t channel) {
    const double u = rng_.uniform01();
    if (down == 0) {
      if (u < 1.0 / rates.mtbf && set_state(down, true)) {
        record_fault(kind, fiber, channel, false);
      }
    } else {
      if (u < 1.0 / rates.mttr && set_state(down, false)) {
        record_fault(kind, fiber, channel, true);
      }
    }
  };
  if (config_.converters.enabled()) {
    for (std::size_t at = 0; at < converter_down_.size(); ++at) {
      transition(converter_down_[at], config_.converters, FaultKind::kConverter,
                 static_cast<std::int32_t>(at) / k_,
                 static_cast<std::int32_t>(at) % k_);
    }
  }
  if (config_.channels.enabled()) {
    for (std::size_t at = 0; at < channel_down_.size(); ++at) {
      transition(channel_down_[at], config_.channels, FaultKind::kChannel,
                 static_cast<std::int32_t>(at) / k_,
                 static_cast<std::int32_t>(at) % k_);
    }
  }
  if (config_.fibers.enabled()) {
    for (std::size_t fiber = 0; fiber < fiber_down_.size(); ++fiber) {
      transition(fiber_down_[fiber], config_.fibers, FaultKind::kFiber,
                 static_cast<std::int32_t>(fiber), 0);
    }
  }

  rebuild_health();
}

void FaultInjector::rebuild_health() {
  for (std::int32_t fiber = 0; fiber < n_fibers_; ++fiber) {
    auto& mask = health_[static_cast<std::size_t>(fiber)];
    mask.fiber_faulted = fiber_down_[static_cast<std::size_t>(fiber)] != 0;
    for (std::int32_t ch = 0; ch < k_; ++ch) {
      const std::size_t at = static_cast<std::size_t>(fiber) *
                                 static_cast<std::size_t>(k_) +
                             static_cast<std::size_t>(ch);
      // A dead channel shadows a dead converter on the same channel.
      mask.channels[static_cast<std::size_t>(ch)] =
          channel_down_[at] != 0    ? core::ChannelHealth::kChannelFaulted
          : converter_down_[at] != 0 ? core::ChannelHealth::kConverterFaulted
                                     : core::ChannelHealth::kHealthy;
    }
  }
}

void FaultInjector::save_state(util::SnapshotWriter& w) const {
  const auto rng = rng_.state();
  for (const auto word : rng.s) w.u64(word);
  w.u64(rng.split_counter);
  w.u64(slots_);
  w.u64(next_event_);
  w.vec_u8(converter_down_);
  w.vec_u8(channel_down_);
  w.vec_u8(fiber_down_);
  w.i64(down_components_);
  w.u64(failures_);
  w.u64(repairs_);
}

void FaultInjector::restore_state(util::SnapshotReader& r) {
  util::Rng::State rng;
  for (auto& word : rng.s) word = r.u64();
  rng.split_counter = r.u64();
  rng_.restore(rng);
  slots_ = r.u64();
  next_event_ = r.u64();
  const auto converter_down = r.vec_u8();
  const auto channel_down = r.vec_u8();
  const auto fiber_down = r.vec_u8();
  WDM_CHECK_MSG(converter_down.size() == converter_down_.size() &&
                    channel_down.size() == channel_down_.size() &&
                    fiber_down.size() == fiber_down_.size(),
                "snapshot fault state does not match this geometry");
  converter_down_ = converter_down;
  channel_down_ = channel_down;
  fiber_down_ = fiber_down;
  down_components_ = r.i64();
  failures_ = r.u64();
  repairs_ = r.u64();
  rebuild_health();
}

}  // namespace wdm::sim
