// Deterministic checkpoint/replay for the interconnect (overload ladder
// rung three: when a run must be stopped — maintenance, migration, crash —
// it resumes bit-for-bit instead of being re-simulated or lost).
//
// A checkpoint is one util::SnapshotWriter frame (versioned, digest-checked;
// see util/snapshot.hpp) holding the interconnect's complete mutable state
// and, optionally, the traffic generator's. Two guarantees, test-enforced:
//
//  * round trip — save, restore into a fresh same-config interconnect, and
//    the state digests are identical and every subsequent slot's SlotStats
//    match the uncheckpointed run exactly;
//  * replay — re-running a recorded sim::Trace from a mid-run checkpoint
//    reproduces the original run's remaining slots bit-for-bit (fixed
//    seed), which is what makes overload incidents debuggable after the
//    fact: capture trace + checkpoint, replay the incident on a dev box.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/interconnect.hpp"
#include "sim/metrics.hpp"
#include "sim/trace.hpp"
#include "sim/traffic.hpp"

namespace wdm::sim {

/// Writes one snapshot frame holding the interconnect state (and the
/// traffic generator's, when given — a live simulation needs both to
/// resume; trace replay needs only the interconnect).
void save_checkpoint(std::ostream& os, const Interconnect& interconnect);
void save_checkpoint(std::ostream& os, const Interconnect& interconnect,
                     const TrafficGenerator& traffic);

/// Restores a frame written by the matching save_checkpoint overload into
/// already-constructed objects. The interconnect (and traffic generator)
/// must have been built from the same config as the saved one — the frame
/// carries a geometry echo and throws util::logic errors on any mismatch,
/// version skew, truncation, or digest failure.
void load_checkpoint(std::istream& is, Interconnect& interconnect);
void load_checkpoint(std::istream& is, Interconnect& interconnect,
                     TrafficGenerator& traffic);

/// FNV-1a64 fingerprint of the interconnect's serialised state — equal iff
/// the checkpoint payloads are byte-identical; the bit-for-bit equality the
/// replay tests assert.
std::uint64_t state_digest(const Interconnect& interconnect);

/// Replays `trace` slots [first_slot, trace.slots.size()) through
/// `interconnect` — the tail re-run that, started from a checkpoint taken
/// after slot `first_slot - 1`, must reproduce the original run.
std::vector<SlotStats> replay_from(const Trace& trace,
                                   std::uint64_t first_slot,
                                   Interconnect& interconnect);

}  // namespace wdm::sim
