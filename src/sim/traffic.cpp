#include "sim/traffic.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace wdm::sim {

TrafficGenerator::TrafficGenerator(std::int32_t n_fibers, std::int32_t k,
                                   TrafficConfig config, std::uint64_t seed)
    : n_fibers_(n_fibers),
      k_(k),
      config_(config),
      rng_(seed),
      zipf_(static_cast<std::size_t>(n_fibers),
            config.destinations == DestinationPattern::kHotspot
                ? config.hotspot_alpha
                : 0.0) {
  WDM_CHECK_MSG(n_fibers > 0 && k > 0, "traffic dimensions must be positive");
  WDM_CHECK_MSG(config.load >= 0.0 && config.load <= 1.0,
                "offered load must be in [0, 1]");
  WDM_CHECK_MSG(config.mean_burst_length >= 1.0,
                "mean burst length must be at least one slot");
  WDM_CHECK_MSG(config.mean_holding >= 1.0,
                "mean holding time must be at least one slot");
  WDM_CHECK_MSG(!config.class_mix.empty(), "need at least one QoS class");
  double mix_total = 0.0;
  for (const double p : config.class_mix) {
    WDM_CHECK_MSG(p >= 0.0, "class probabilities must be nonnegative");
    mix_total += p;
  }
  WDM_CHECK_MSG(mix_total > 0.99 && mix_total < 1.01,
                "class mix must sum to 1");

  burst_dest_.assign(
      static_cast<std::size_t>(n_fibers) * static_cast<std::size_t>(k), -1);
  // Two-state Markov source with stationary ON probability = load and mean
  // ON duration b: p_off = 1/b, p_on = load * p_off / (1 - load).
  p_off_ = 1.0 / config.mean_burst_length;
  p_on_ = config.load >= 1.0 ? 1.0
                             : std::min(1.0, config.load * p_off_ /
                                                 (1.0 - config.load));
}

std::int32_t TrafficGenerator::sample_destination() {
  return static_cast<std::int32_t>(zipf_.sample(rng_));
}

std::int32_t TrafficGenerator::sample_duration() {
  switch (config_.holding) {
    case HoldingTime::kSingleSlot:
      return 1;
    case HoldingTime::kFixed:
      return std::max<std::int32_t>(
          1, static_cast<std::int32_t>(std::llround(config_.mean_holding)));
    case HoldingTime::kGeometric:
      return static_cast<std::int32_t>(
          std::min<std::uint64_t>(rng_.geometric(1.0 / config_.mean_holding),
                                  1u << 20));
  }
  return 1;
}

std::int32_t TrafficGenerator::sample_priority() {
  if (config_.class_mix.size() == 1) return 0;
  const double u = rng_.uniform01();
  double cum = 0.0;
  for (std::size_t c = 0; c < config_.class_mix.size(); ++c) {
    cum += config_.class_mix[c];
    if (u < cum) return static_cast<std::int32_t>(c);
  }
  return static_cast<std::int32_t>(config_.class_mix.size()) - 1;
}

std::vector<core::SlotRequest> TrafficGenerator::next_slot(
    const std::vector<std::uint8_t>& input_channel_busy) {
  std::vector<core::SlotRequest> out;
  next_slot_into(input_channel_busy, out);
  return out;
}

void TrafficGenerator::next_slot_into(
    const std::vector<std::uint8_t>& input_channel_busy,
    std::vector<core::SlotRequest>& out) {
  WDM_CHECK_MSG(input_channel_busy.empty() ||
                    input_channel_busy.size() == burst_dest_.size(),
                "busy mask must cover every input wavelength channel");
  out.clear();
  for (std::int32_t fiber = 0; fiber < n_fibers_; ++fiber) {
    for (core::Wavelength w = 0; w < k_; ++w) {
      const std::size_t ch = static_cast<std::size_t>(fiber) *
                                 static_cast<std::size_t>(k_) +
                             static_cast<std::size_t>(w);
      const bool busy =
          !input_channel_busy.empty() && input_channel_busy[ch] != 0;

      if (config_.arrivals == ArrivalProcess::kBernoulli) {
        if (busy) continue;
        if (!rng_.bernoulli(config_.load)) continue;
        out.push_back(core::SlotRequest{fiber, w, sample_destination(),
                                        next_id_++, sample_duration(),
                                        sample_priority()});
        continue;
      }

      // On-off source: advance the Markov chain even while the channel is
      // busy transmitting (the burst keeps "arriving" but is suppressed).
      auto& dest = burst_dest_[ch];
      if (dest < 0) {
        if (rng_.bernoulli(p_on_)) dest = sample_destination();
      }
      if (dest >= 0) {
        if (!busy) {
          out.push_back(core::SlotRequest{fiber, w, dest, next_id_++,
                                          sample_duration(),
                                          sample_priority()});
        }
        if (rng_.bernoulli(p_off_)) dest = -1;
      }
    }
  }
}

void TrafficGenerator::save_state(util::SnapshotWriter& w) const {
  const auto rng = rng_.state();
  for (const auto word : rng.s) w.u64(word);
  w.u64(rng.split_counter);
  w.vec_i32(burst_dest_);
  w.u64(next_id_);
}

void TrafficGenerator::restore_state(util::SnapshotReader& r) {
  util::Rng::State rng;
  for (auto& word : rng.s) word = r.u64();
  rng.split_counter = r.u64();
  rng_.restore(rng);
  const auto burst_dest = r.vec_i32();
  WDM_CHECK_MSG(burst_dest.size() == burst_dest_.size(),
                "snapshot traffic state does not match this geometry");
  burst_dest_ = burst_dest;
  next_id_ = r.u64();
}

}  // namespace wdm::sim
