// A chain of wavelength-convertible crossconnects — the paper's WAN use
// case ("such an optical interconnect can be used to serve as a
// crossconnect (OXC) in a wide-area communication network").
//
// M switches in series; the output fibers of switch h feed the same-indexed
// input fibers of switch h+1. A packet enters switch 0 on a random input
// wavelength channel, picks a uniformly random output fiber at every hop
// (synthetic routing diversity), and must win a channel at each switch to
// survive; it propagates one hop per slot (cut-through, no buffers), and
// its wavelength after hop h is whatever channel the hop-h scheduler
// assigned — per-hop conversion is exactly what makes multi-hop loss *not*
// compound the way it does under the wavelength-continuity constraint.
//
// Every switch runs the paper's distributed per-output-fiber scheduler.
#pragma once

#include <cstdint>
#include <vector>

#include "core/conversion.hpp"
#include "core/distributed.hpp"
#include "sim/faults.hpp"
#include "util/stats.hpp"

namespace wdm::sim {

struct ChainConfig {
  std::int32_t hops = 3;       ///< switches in series (M >= 1)
  std::int32_t n_fibers = 8;   ///< fibers per switch
  core::ConversionScheme scheme = core::ConversionScheme::circular(8, 1, 1);
  core::Algorithm algorithm = core::Algorithm::kAuto;
  core::Arbitration arbitration = core::Arbitration::kRoundRobin;
  double load = 0.5;           ///< fresh offered load per node-0 input channel
  std::uint64_t slots = 10000;
  std::uint64_t warmup = 1000;
  std::uint64_t seed = 1;
  /// Hardware fault injection, applied independently at every hop (each
  /// switch gets its own injector on a seed-derived stream, so enabling
  /// faults never perturbs the traffic or scheduler streams).
  FaultConfig faults;
};

struct ChainReport {
  std::uint64_t injected = 0;   ///< fresh packets offered at node 0
  std::uint64_t delivered = 0;  ///< packets surviving all M hops
  /// Per-hop drop counts (index = hop at which the packet died).
  std::vector<std::uint64_t> dropped_at_hop;
  /// Subset of the drops caused by faulted hardware (RejectReason::kFaulted)
  /// rather than contention. Zero when the config enables no faults.
  std::uint64_t dropped_faulted = 0;
  double end_to_end_loss = 0.0;
  /// Conditional per-hop loss: P(dropped at hop h | reached hop h).
  std::vector<double> hop_loss;
};

/// Runs the slotted chain simulation to completion.
ChainReport run_chain_simulation(const ChainConfig& config);

}  // namespace wdm::sim
