// Slot-request traces: record and replay the exact workload of a run.
//
// A trace is a plain-text format, one request per line:
//
//     slot,input_fiber,wavelength,output_fiber,id,duration
//
// with `#`-prefixed comment lines, plus (format v2) one control-event line
//
//     D,slot
//
// per wall-clock deadline overrun the recorded run observed. Overruns are
// the one nondeterministic input of a run — the recording machine's clock —
// so they ride in the trace as first-class events and sim::replay_from
// reapplies them bit-for-bit instead of re-reading a clock. Traces make
// experiments portable across machines and schedulers: the same captured
// workload can be replayed against different algorithms/policies (the
// ablation methodology of experiments E8/E10), or archived next to
// published numbers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/distributed.hpp"
#include "sim/metrics.hpp"

namespace wdm::sim {

/// One slot's worth of arrivals.
using TraceSlot = std::vector<core::SlotRequest>;

/// A whole captured workload: slot 0, 1, ... (possibly empty slots).
struct Trace {
  std::int32_t n_fibers = 0;
  std::int32_t k = 0;
  std::vector<TraceSlot> slots;
  /// Slots whose wall-clock deadline the recorded run overran, strictly
  /// ascending. Point Interconnect::set_deadline_log here while recording
  /// live; replay_from installs it as the replay's downgrade script.
  std::vector<std::uint64_t> deadline_overruns;

  std::uint64_t total_requests() const noexcept;
};

/// Upper bound on slot indices read_trace accepts; guards its own allocation
/// against a corrupt or hostile slot column.
inline constexpr std::uint64_t kMaxTraceSlots = 1ull << 24;

/// Serialises a trace (header comment + one line per request).
void write_trace(std::ostream& os, const Trace& trace);

/// Parses a trace. Structural problems (unparseable line, missing header,
/// implausible slot index) throw; out-of-range *request fields* are kept and
/// rejected per-request at replay, where they are counted as
/// SlotStats::rejected_malformed.
Trace read_trace(std::istream& is);

/// Captures `slots` slots from a traffic generator (with no interconnect
/// feedback — every input channel is treated as always idle).
Trace capture_trace(class TrafficGenerator& generator, std::int32_t n_fibers,
                    std::int32_t k, std::uint64_t slots);

/// Replays a trace through an interconnect and returns per-slot stats.
std::vector<SlotStats> replay_trace(const Trace& trace,
                                    class Interconnect& interconnect);

}  // namespace wdm::sim
