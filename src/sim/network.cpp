#include "sim/network.hpp"

#include "util/check.hpp"
#include "util/rng.hpp"

namespace wdm::sim {

namespace {

/// A packet mid-flight: its current wavelength and where it is headed.
struct Packet {
  std::int32_t input_fiber;    ///< arriving fiber at the current switch
  core::Wavelength wavelength; ///< arriving wavelength at the current switch
  std::uint64_t id;
};

}  // namespace

ChainReport run_chain_simulation(const ChainConfig& config) {
  WDM_CHECK_MSG(config.hops >= 1, "need at least one switch in the chain");
  WDM_CHECK_MSG(config.n_fibers > 0, "need at least one fiber");
  WDM_CHECK_MSG(config.load >= 0.0 && config.load <= 1.0,
                "offered load must be in [0, 1]");
  WDM_CHECK_MSG(config.slots > 0, "need at least one measured slot");

  const std::int32_t k = config.scheme.k();
  util::Rng seeder(config.seed);
  util::Rng traffic_rng = seeder.split();
  // Routing draws live on their own stream: the number of packets in flight
  // (and so the number of destination picks) depends on per-hop outcomes, and
  // sharing a stream with injection would let a single extra drop — e.g. a
  // fault — shift every later arrival. Kept separate, the injection sequence
  // for a seed is invariant under anything that happens downstream.
  util::Rng routing_rng(util::derive_stream_seed(config.seed, 0x407E));

  // One distributed scheduler per switch in the chain.
  std::vector<core::DistributedScheduler> switches;
  switches.reserve(static_cast<std::size_t>(config.hops));
  for (std::int32_t h = 0; h < config.hops; ++h) {
    switches.emplace_back(config.n_fibers, config.scheme, config.algorithm,
                          config.arbitration, seeder.next());
  }

  // One independent fault injector per hop, on seed-derived streams so the
  // seeder / traffic draw order above is untouched whether faults are on or
  // off (the arrival sequence for a seed never moves).
  std::vector<FaultInjector> injectors;
  if (config.faults.enabled()) {
    injectors.reserve(static_cast<std::size_t>(config.hops));
    for (std::int32_t h = 0; h < config.hops; ++h) {
      injectors.emplace_back(
          config.n_fibers, k, config.faults,
          util::derive_stream_seed(
              config.seed, std::uint64_t{0xC5A1} + static_cast<std::uint64_t>(h)));
    }
  }

  // stage[h] = packets arriving at switch h this slot. Measured packets
  // carry id != 0; warm-up packets id == 0 (counted by nobody).
  std::vector<std::vector<Packet>> stage(
      static_cast<std::size_t>(config.hops));
  ChainReport report;
  report.dropped_at_hop.assign(static_cast<std::size_t>(config.hops), 0);
  std::vector<std::uint64_t> reached_hop(
      static_cast<std::size_t>(config.hops), 0);
  std::uint64_t next_id = 1;

  // Drain: after the last injection slot, let in-flight packets finish.
  const std::uint64_t total_slots = config.warmup + config.slots +
                                    static_cast<std::uint64_t>(config.hops);
  for (std::uint64_t slot = 0; slot < total_slots; ++slot) {
    // Fresh arrivals at switch 0 (stop injecting during the drain phase).
    if (slot < config.warmup + config.slots) {
      const bool measured = slot >= config.warmup;
      for (std::int32_t fiber = 0; fiber < config.n_fibers; ++fiber) {
        for (core::Wavelength w = 0; w < k; ++w) {
          if (!traffic_rng.bernoulli(config.load)) continue;
          const std::uint64_t id = measured ? next_id++ : 0;
          stage[0].push_back(Packet{fiber, w, id});
          if (measured) report.injected += 1;
        }
      }
    }

    // Hop hardware fails and recovers on its own clock, every slot —
    // including idle ones, so the fault schedule depends only on the slot
    // index, never on the traffic.
    for (auto& injector : injectors) injector.tick();

    // Each switch schedules its batch; survivors advance one hop.
    std::vector<std::vector<Packet>> next_stage(
        static_cast<std::size_t>(config.hops));
    for (std::int32_t h = 0; h < config.hops; ++h) {
      auto& batch = stage[static_cast<std::size_t>(h)];
      if (batch.empty()) continue;
      std::vector<core::SlotRequest> requests;
      requests.reserve(batch.size());
      for (const auto& p : batch) {
        const auto out_fiber = static_cast<std::int32_t>(
            routing_rng.uniform_below(
                static_cast<std::uint64_t>(config.n_fibers)));
        requests.push_back(
            core::SlotRequest{p.input_fiber, p.wavelength, out_fiber, p.id, 1});
      }
      const std::vector<core::HealthMask>* health =
          injectors.empty() || !injectors[static_cast<std::size_t>(h)].any_fault()
              ? nullptr
              : &injectors[static_cast<std::size_t>(h)].health();
      const auto decisions =
          switches[static_cast<std::size_t>(h)].schedule_slot(requests, nullptr,
                                                              health);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const bool measured = batch[i].id != 0;
        if (measured) reached_hop[static_cast<std::size_t>(h)] += 1;
        if (!decisions[i].granted) {
          if (measured) {
            report.dropped_at_hop[static_cast<std::size_t>(h)] += 1;
            if (decisions[i].reason == core::RejectReason::kFaulted) {
              report.dropped_faulted += 1;
            }
          }
          continue;
        }
        if (h + 1 == config.hops) {
          if (measured) report.delivered += 1;
        } else {
          // The packet leaves on its assigned channel: per-hop conversion.
          next_stage[static_cast<std::size_t>(h) + 1].push_back(
              Packet{requests[i].output_fiber, decisions[i].channel,
                     batch[i].id});
        }
      }
    }
    stage = std::move(next_stage);
  }

  report.end_to_end_loss =
      report.injected == 0
          ? 0.0
          : 1.0 - static_cast<double>(report.delivered) /
                      static_cast<double>(report.injected);
  report.hop_loss.resize(static_cast<std::size_t>(config.hops), 0.0);
  for (std::int32_t h = 0; h < config.hops; ++h) {
    const auto reached = reached_hop[static_cast<std::size_t>(h)];
    if (reached > 0) {
      report.hop_loss[static_cast<std::size_t>(h)] =
          static_cast<double>(report.dropped_at_hop[static_cast<std::size_t>(h)]) /
          static_cast<double>(reached);
    }
  }
  return report;
}

}  // namespace wdm::sim
