// The slotted N x N WDM optical interconnect (Figure 1).
//
// Structure per the paper: N input fibers are demultiplexed into Nk input
// wavelength channels; a bufferless switching fabric connects any input
// channel to the adjacent channels (per the conversion scheme) on any output
// fiber, where combiners + converters + a multiplexer recombine k channels
// per output fiber. Contention resolution is the distributed scheduler: one
// independent per-output-fiber schedule per slot.
//
// Connections may hold for multiple slots (Section V). Two policies:
//  * kNoDisturb  — ongoing connections keep their exact channel (optical
//    burst switching); new requests see only free channels;
//  * kRearrange  — ongoing connections may be reassigned to a different
//    channel each slot; they are re-scheduled first (always all placeable)
//    and new requests fill the remainder.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/conversion.hpp"
#include "core/distributed.hpp"
#include "sim/metrics.hpp"
#include "util/threadpool.hpp"

namespace wdm::sim {

enum class OccupiedPolicy : std::uint8_t { kNoDisturb, kRearrange };

struct InterconnectConfig {
  std::int32_t n_fibers = 8;  ///< N (square switch: N inputs, N outputs)
  core::ConversionScheme scheme = core::ConversionScheme::circular(8, 1, 1);
  core::Algorithm algorithm = core::Algorithm::kAuto;
  core::Arbitration arbitration = core::Arbitration::kRoundRobin;
  OccupiedPolicy policy = OccupiedPolicy::kNoDisturb;
  /// Per-fiber converter pool size for Algorithm::kSparseBudgeted; negative
  /// keeps the default (a dedicated converter per channel).
  std::int32_t converter_budget = -1;
  std::uint64_t seed = 1;
};

class Interconnect {
 public:
  explicit Interconnect(InterconnectConfig config);

  std::int32_t n_fibers() const noexcept { return config_.n_fibers; }
  std::int32_t k() const noexcept { return config_.scheme.k(); }
  const InterconnectConfig& config() const noexcept { return config_; }

  /// Advances one time slot: ages ongoing connections, schedules `arrivals`
  /// (all per-output-fiber schedules run on `pool` when given), and occupies
  /// the granted channels. Returns the slot's accounting.
  SlotStats step(std::span<const core::SlotRequest> arrivals,
                 util::ThreadPool* pool = nullptr);

  /// Busy flags of the N*k input wavelength channels (fiber*k + wavelength)
  /// *for the upcoming slot* — i.e. connections that still hold after the
  /// next aging tick. Feed this to TrafficGenerator::next_slot so sources do
  /// not emit while their channel is mid-connection.
  std::vector<std::uint8_t> input_channel_busy() const;

  /// Grants per output fiber in the most recent step (fairness accounting).
  const std::vector<std::uint64_t>& last_fiber_grants() const noexcept {
    return last_fiber_grants_;
  }

  std::uint64_t busy_output_channels() const noexcept;

 private:
  struct ChannelState {
    std::int32_t remaining = 0;  ///< slots left, 0 = free
    std::int32_t input_fiber = core::kNone;
    core::Wavelength wavelength = core::kNone;
    std::uint64_t id = 0;
  };

  SlotStats step_no_disturb(std::span<const core::SlotRequest> arrivals,
                            util::ThreadPool* pool);
  SlotStats step_rearrange(std::span<const core::SlotRequest> arrivals,
                           util::ThreadPool* pool);
  /// Schedules new arrivals strict-priority class by class (§VI extension);
  /// single-class slots collapse to one scheduling pass.
  void schedule_new_arrivals(std::span<const core::SlotRequest> arrivals,
                             util::ThreadPool* pool, SlotStats& stats);
  void age_connections();
  void occupy(std::int32_t output_fiber, core::Channel channel,
              const core::SlotRequest& request, std::int32_t remaining);
  std::vector<std::vector<std::uint8_t>> availability() const;

  InterconnectConfig config_;
  core::DistributedScheduler scheduler_;
  std::vector<std::vector<ChannelState>> out_state_;  // [fiber][channel]
  std::vector<std::int32_t> input_remaining_;         // [fiber*k + w]
  std::vector<std::uint64_t> last_fiber_grants_;
};

}  // namespace wdm::sim
