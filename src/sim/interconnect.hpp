// The slotted N x N WDM optical interconnect (Figure 1).
//
// Structure per the paper: N input fibers are demultiplexed into Nk input
// wavelength channels; a bufferless switching fabric connects any input
// channel to the adjacent channels (per the conversion scheme) on any output
// fiber, where combiners + converters + a multiplexer recombine k channels
// per output fiber. Contention resolution is the distributed scheduler: one
// independent per-output-fiber schedule per slot.
//
// Connections may hold for multiple slots (Section V). Two policies:
//  * kNoDisturb  — ongoing connections keep their exact channel (optical
//    burst switching); new requests see only free channels;
//  * kRearrange  — ongoing connections may be reassigned to a different
//    channel each slot; they are re-scheduled first (always all placeable)
//    and new requests fill the remainder.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/availability.hpp"
#include "core/conversion.hpp"
#include "core/distributed.hpp"
#include "obs/telemetry.hpp"
#include "sim/admission.hpp"
#include "sim/faults.hpp"
#include "sim/metrics.hpp"
#include "util/snapshot.hpp"
#include "util/threadpool.hpp"

namespace wdm::sim {

enum class OccupiedPolicy : std::uint8_t { kNoDisturb, kRearrange };

/// Bounded retry-with-backoff for fault-rejected requests: a request denied
/// with RejectReason::kFaulted (hardware down, as opposed to contention) is
/// parked and re-offered `backoff_base * backoff_factor^(attempt-1)` slots
/// later, up to `max_retries` attempts, while the queue has room. Retries
/// re-enter scheduling ahead of fresh arrivals (they have waited longest).
struct RetryConfig {
  std::int32_t max_retries = 0;     ///< 0 disables retrying
  std::int32_t backoff_base = 1;    ///< slots before the first retry
  std::int32_t backoff_factor = 2;  ///< exponential backoff multiplier
  /// Queue bound; overflow is an overload shed (rejected + shed_overload —
  /// the queue being full is a load problem, not a hardware one).
  std::size_t queue_capacity = 1024;
};

/// Deadline-bounded degradation (rung two of the overload ladder): a
/// per-slot work budget that, when blown, downgrades the remaining exact
/// O(dk) ports to the O(k) single-break approximation (Theorem 3 bounds the
/// matching loss at (d-1)/2 per port). Hysteresis keeps the switch in
/// degraded mode until the offered work has stayed under budget for
/// `recovery_slots` consecutive slots, so a load hovering at the threshold
/// does not flap between kernels.
struct DegradeConfig {
  /// Op-count budget per slot, in "channel visits" (an exact-BFA port with
  /// pending requests costs d*k, every O(k) kernel costs k). Deterministic;
  /// what the tests drive. 0 disables.
  std::uint64_t op_budget = 0;
  /// Wall-clock budget per slot in nanoseconds (the production variant).
  /// 0 disables. Slot-granular: the step's wall time is measured once at the
  /// end of the slot, and an overrun feeds the hysteresis (latching degraded
  /// mode for the *next* slot) instead of downgrading ports mid-slot. The
  /// one-slot reaction lag buys bit-exact replay: each overrun is recorded
  /// as a sim::Trace event (set_deadline_log) and reapplied from the trace
  /// by sim::replay_from (set_deadline_script) without reading any clock.
  std::uint64_t slot_deadline_ns = 0;
  /// Consecutive under-budget slots required to return to exact scheduling.
  std::int32_t recovery_slots = 8;

  bool enabled() const noexcept {
    return op_budget > 0 || slot_deadline_ns > 0;
  }
};

struct InterconnectConfig {
  std::int32_t n_fibers = 8;  ///< N (square switch: N inputs, N outputs)
  core::ConversionScheme scheme = core::ConversionScheme::circular(8, 1, 1);
  core::Algorithm algorithm = core::Algorithm::kAuto;
  core::Arbitration arbitration = core::Arbitration::kRoundRobin;
  OccupiedPolicy policy = OccupiedPolicy::kNoDisturb;
  /// Per-fiber converter pool size for Algorithm::kSparseBudgeted; negative
  /// keeps the default (a dedicated converter per channel).
  std::int32_t converter_budget = -1;
  std::uint64_t seed = 1;
  /// Hardware fault injection (off by default). The injector's RNG stream
  /// is derived from `seed` by label, so enabling faults never perturbs the
  /// scheduler arbitration streams (or the caller's traffic) for a seed.
  FaultConfig faults;
  RetryConfig retry;
  /// Overload control plane (docs/ALGORITHMS.md §10); both rungs default
  /// off, and a config with both off schedules exactly as before (and keeps
  /// the zero-allocation steady state).
  AdmissionConfig admission;
  DegradeConfig degrade;
};

class Interconnect {
 public:
  explicit Interconnect(InterconnectConfig config);

  std::int32_t n_fibers() const noexcept { return config_.n_fibers; }
  std::int32_t k() const noexcept { return config_.scheme.k(); }
  const InterconnectConfig& config() const noexcept { return config_; }

  /// Advances one time slot: ages ongoing connections, schedules `arrivals`
  /// (all per-output-fiber schedules run on `pool` when given), and occupies
  /// the granted channels. Returns the slot's accounting.
  SlotStats step(std::span<const core::SlotRequest> arrivals,
                 util::ThreadPool* pool = nullptr);

  /// Advances W consecutive slots, one vector of arrivals per slot.
  /// Bit-identical to W successive step() calls — slots still execute
  /// serially (slot s+1 sees the fabric slot s left) — but the per-request
  /// validation of the whole window runs as one branchless pre-pass, which
  /// is what the amortization buys. Returns the summed accounting; if
  /// `per_slot` is non-empty it must have one entry per slot and receives
  /// each slot's individual stats.
  SlotStats step_batch(std::span<const std::vector<core::SlotRequest>> slots,
                       util::ThreadPool* pool = nullptr,
                       std::span<SlotStats> per_slot = {});

  /// Busy flags of the N*k input wavelength channels (fiber*k + wavelength)
  /// *for the upcoming slot* — i.e. connections that still hold after the
  /// next aging tick. Feed this to TrafficGenerator::next_slot so sources do
  /// not emit while their channel is mid-connection.
  std::vector<std::uint8_t> input_channel_busy() const;

  /// input_channel_busy() into a caller-owned buffer: resizes `out` to N*k
  /// and overwrites it. Capacity persists across slots, so a warm caller
  /// (the fleet's per-shard slot loop) performs no heap allocation.
  void input_channel_busy_into(std::vector<std::uint8_t>& out) const;

  /// Pre-sizes every per-port scheduling arena for the worst slot this
  /// fabric can be offered (N*k fresh arrivals plus full retry and ingress
  /// queues), so the step path performs zero heap allocations from the very
  /// first slot. Opt-in because the worst case is O(N^2 k) memory across
  /// ports: sim::Fleet calls it per shard — the zero-allocation serving
  /// contract — while one-shot experiment runs can skip it and absorb the
  /// rare high-water reallocation instead.
  void reserve_worst_case_scratch();

  /// Grants per output fiber in the most recent step (fairness accounting).
  const std::vector<std::uint64_t>& last_fiber_grants() const noexcept {
    return last_fiber_grants_;
  }

  std::uint64_t busy_output_channels() const noexcept;

  /// Flat N×k occupancy plane (1 = free), maintained incrementally on grant
  /// and expiry — the zero-rebuild availability input of the slot pipeline.
  /// Carries the packed bit plane too, so the masked kernels never re-pack.
  core::AvailabilityView availability_view() const noexcept {
    return core::AvailabilityView(avail_.data(), avail_bits_.data(),
                                  config_.n_fibers, config_.scheme.k());
  }

  /// The fault injector, or nullptr when the config enables no faults.
  const FaultInjector* fault_injector() const noexcept { return faults_.get(); }
  /// Requests currently parked in the retry queue.
  std::size_t retry_queue_depth() const noexcept { return retry_queue_.size(); }
  /// The admission control plane, or nullptr when disabled.
  const AdmissionControl* admission() const noexcept {
    return admission_.get();
  }
  /// Requests currently parked in the admission ingress queue.
  std::size_t ingress_queue_depth() const noexcept {
    return admission_ != nullptr ? admission_->queued() : 0;
  }
  /// True while degradation hysteresis holds the switch in O(k) mode.
  bool degraded_mode() const noexcept { return degraded_mode_; }
  /// Internal slot counter (slots stepped since construction or restore).
  std::uint64_t current_slot() const noexcept { return slot_; }

  /// Attaches (or detaches, with nullptr) a trace recorder, forwarded to the
  /// scheduler, fault injector, and admission plane. Telemetry is strictly an
  /// observer: it never alters decisions, RNG streams, or any checkpointed
  /// state, so a traced run and an untraced run of the same seed are
  /// bit-identical under sim::state_digest.
  void set_telemetry(obs::TraceRecorder* recorder) noexcept {
    telemetry_ = recorder;
    scheduler_.set_telemetry(recorder);
    if (faults_ != nullptr) faults_->set_telemetry(recorder);
    if (admission_ != nullptr) admission_->set_telemetry(recorder);
  }
  /// The attached recorder, or nullptr (checkpoint save/load events use it).
  obs::TraceRecorder* telemetry() const noexcept { return telemetry_; }

  /// Points the live deadline recorder at a trace's `deadline_overruns`
  /// vector (or detaches with nullptr): every slot whose wall clock overran
  /// `degrade.slot_deadline_ns` appends its slot index. The log is the
  /// replayable record of the run's one nondeterministic input.
  void set_deadline_log(std::vector<std::uint64_t>* log) noexcept {
    deadline_log_ = log;
  }
  /// Installs a recorded overrun script (strictly ascending slot indices):
  /// while set, deadline handling never reads the clock — a slot is treated
  /// as overrun exactly when its index appears in the script, which is what
  /// makes replay with wall-clock deadlines bit-exact. Detach with nullptr.
  void set_deadline_script(const std::vector<std::uint64_t>* script) noexcept;

  /// Checkpoint of the complete mutable state — occupancy plane, retry and
  /// ingress queues, per-port scheduler state, fault injector, degradation
  /// hysteresis — everything a bit-for-bit replay needs beyond the config
  /// (a geometry echo is stored and validated on restore). See
  /// sim/checkpoint.hpp for the framed stream-level API. Telemetry is never
  /// serialized: wall-clock trace state must not perturb the digest.
  void save_state(util::SnapshotWriter& w) const;
  void restore_state(util::SnapshotReader& r);

  /// The checkpoint payload is a fixed sequence of kSections independent
  /// sections (config echo, slot counter, output plane, input plane, retry
  /// queue, scheduler, faults, admission, hysteresis); save_state is exactly
  /// their concatenation in order. The delta-checkpoint layer
  /// (sim::CheckpointStore) serializes sections individually to diff them
  /// frame-to-frame. Occupancy is stored as absolute expiry slots, so a
  /// connection's section bytes do not change as it merely ages.
  static constexpr std::size_t kSections = 9;
  /// Serializes one section (0 <= section < kSections) into `w`.
  void save_section(std::size_t section, util::SnapshotWriter& w) const;

 private:
  struct PendingRetry {
    core::SlotRequest request;
    std::int32_t attempts = 0;     ///< retry attempts already consumed
    std::uint64_t due_slot = 0;    ///< re-offer at this internal slot
  };

  /// Shared body of step()/step_batch(). `valid_flags`, if non-null, holds
  /// one 0/1 byte per arrival — the pre-computed result of the validation
  /// predicate (step_batch's one-pass pre-validation); null means validate
  /// inline.
  SlotStats step_impl(std::span<const core::SlotRequest> arrivals,
                      util::ThreadPool* pool,
                      const std::uint8_t* valid_flags);
  void step_no_disturb(std::span<const core::SlotRequest> arrivals,
                       const std::vector<core::HealthMask>* health,
                       util::ThreadPool* pool, SlotStats& stats,
                       core::SlotBudget* budget,
                       const std::uint8_t* valid_flags);
  void step_rearrange(std::span<const core::SlotRequest> arrivals,
                      const std::vector<core::HealthMask>* health,
                      util::ThreadPool* pool, SlotStats& stats,
                      core::SlotBudget* budget,
                      const std::uint8_t* valid_flags);
  /// Tears down ongoing connections whose channel, converter, or fiber
  /// failed (kNoDisturb policy; kRearrange re-homes instead).
  void teardown_faulted(const std::vector<core::HealthMask>& health,
                        SlotStats& stats);
  /// Re-offers due retry-queue entries, ahead of fresh arrivals.
  void run_retries(const std::vector<core::HealthMask>* health,
                   util::ThreadPool* pool, SlotStats& stats,
                   core::SlotBudget* budget);
  /// Refills the token buckets and schedules ingress-queue releases, after
  /// retries and before fresh arrivals (they have waited longer).
  void run_ingress(const std::vector<core::HealthMask>* health,
                   util::ThreadPool* pool, SlotStats& stats,
                   core::SlotBudget* budget);
  /// Schedules new arrivals strict-priority class by class (§VI extension);
  /// single-class slots collapse to one scheduling pass. `valid_flags` as in
  /// step_impl.
  void schedule_new_arrivals(std::span<const core::SlotRequest> arrivals,
                             const std::vector<core::HealthMask>* health,
                             util::ThreadPool* pool, SlotStats& stats,
                             core::SlotBudget* budget,
                             const std::uint8_t* valid_flags);
  enum class Defer : std::uint8_t {
    kParked,           ///< queued for retry (deferred_faulted)
    kBudgetExhausted,  ///< out of attempts -> rejected_faulted
    kQueueFull,        ///< retry queue at cap -> overload shed
  };
  /// Parks a fault-rejected request for retry if budget and queue capacity
  /// allow; otherwise says which limit was hit (the caller counts the drop).
  Defer try_defer(const core::SlotRequest& request, std::int32_t attempts,
                  SlotStats& stats);
  /// Counts a non-granted decision into `stats` (shared by every
  /// scheduling pass; `attempts` seeds the retry deferral).
  void count_rejection(const core::SlotRequest& request,
                       core::RejectReason reason, std::int32_t attempts,
                       SlotStats& stats);
  /// Degradation hysteresis update at the end of a budgeted slot;
  /// `deadline_overrun` is the slot's wall-clock verdict (measured live or
  /// scripted from a trace) and latches degraded mode by itself.
  void update_hysteresis(const core::SlotBudget& budget,
                         bool deadline_overrun);
  void release_input(std::int32_t input_fiber, core::Wavelength wavelength);
  void age_connections();
  void occupy(std::int32_t output_fiber, core::Channel channel,
              const core::SlotRequest& request, std::int32_t remaining);
  /// From-scratch rebuild of the occupancy masks; debug cross-check of the
  /// incrementally maintained `avail_` plane only.
  std::vector<std::vector<std::uint8_t>> availability() const;

  InterconnectConfig config_;
  core::DistributedScheduler scheduler_;
  std::unique_ptr<FaultInjector> faults_;  // null when faults disabled
  std::unique_ptr<AdmissionControl> admission_;  // null when disabled
  // SoA per-output-channel connection state, index fiber*k + channel
  // (replaces the old vector<vector<ChannelState>>): the aging sweep walks
  // one narrow column driven by the occupancy bits instead of striding
  // 24-byte structs, and expiry touches only the columns it must reset.
  std::vector<std::int32_t> out_remaining_;    // slots left, 0 = free
  std::vector<std::int32_t> out_input_fiber_;  // kNone when free
  std::vector<std::int32_t> out_wavelength_;   // kNone when free
  std::vector<std::uint64_t> out_id_;          // 0 when free
  std::vector<std::uint8_t> avail_;  // flat N×k plane, 1 = free; updated in
                                     // lockstep with the state (no rebuild)
  // Packed form of avail_, mask_words(k) words per fiber (wave_mask layout):
  // maintained in the same places as the byte plane, consumed by the masked
  // kernels through availability_view() and by the aging sweep.
  std::vector<std::uint64_t> avail_bits_;
  std::vector<std::int32_t> input_remaining_;         // [fiber*k + w]
  std::vector<std::uint64_t> last_fiber_grants_;
  std::vector<PendingRetry> retry_queue_;
  std::uint64_t slot_ = 0;  // internal slot counter (retry due times)
  // Degradation hysteresis: once a slot degrades, stay degraded until the
  // offered work has fit the budget for `recovery_slots` consecutive slots.
  bool degraded_mode_ = false;
  std::int32_t calm_slots_ = 0;
  obs::TraceRecorder* telemetry_ = nullptr;  // observer only, never serialized
  // Deadline replay plumbing (see set_deadline_log/set_deadline_script).
  // Neither is serialized: the log's content rides in the sim::Trace, and a
  // replay re-installs the script itself — after a restore mid-script the
  // cursor is recomputed from the restored slot counter.
  std::vector<std::uint64_t>* deadline_log_ = nullptr;
  const std::vector<std::uint64_t>* deadline_script_ = nullptr;
  std::size_t script_cursor_ = 0;

  // Reusable per-slot scratch: capacity persists across steps, so the
  // scheduling path of a steady-state slot performs no heap allocation.
  std::vector<core::SlotRequest> valid_;        // validated fresh arrivals
  std::vector<core::SlotRequest> batch_;        // one class / retry batch
  std::vector<PendingRetry> due_;               // retries due this slot
  std::vector<PendingRetry> retry_later_;       // retries still waiting
  std::vector<core::PortDecision> decisions_;   // scheduler output
  std::vector<core::SlotRequest> continuing_;   // kRearrange lifted conns
  std::vector<std::int32_t> continuing_remaining_;
  std::vector<core::SlotRequest> released_;     // ingress-queue drain batch
  std::vector<std::uint8_t> batch_flags_;       // step_batch validity pre-pass
  std::vector<std::uint64_t> fiber_grants_in_;  // slot grants per INPUT fiber
                                                // (adaptive-admission feedback)
  std::vector<std::int32_t> charge_order_;      // degradation charge order,
                                                // rebuilt per slot (derived)
};

}  // namespace wdm::sim
