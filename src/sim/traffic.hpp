// Synthetic slotted traffic for the WDM interconnect (the paper's setting:
// optical packets arriving at the beginning of each time slot, unicast, no
// buffers).
//
// Arrival processes:
//  * Bernoulli — each idle input wavelength channel carries a new packet
//    with probability `load`, i.i.d. per slot (the standard model in the
//    paper's references [11][13][14]);
//  * On-off (bursty) — each input channel is a two-state Markov source; ON
//    emits one packet per slot toward a per-burst destination. For a given
//    offered load and mean burst length b: p(off->on) = load/((1-load) b),
//    p(on->off) = 1/b.
//
// Destinations are uniform or Zipf-skewed hotspots. Holding times (Section
// V) are 1 slot, a fixed D, or geometric with a given mean.
#pragma once

#include <cstdint>
#include <vector>

#include "core/distributed.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"

namespace wdm::sim {

enum class ArrivalProcess : std::uint8_t { kBernoulli, kOnOff };
enum class DestinationPattern : std::uint8_t { kUniform, kHotspot };
enum class HoldingTime : std::uint8_t { kSingleSlot, kFixed, kGeometric };

struct TrafficConfig {
  double load = 0.5;  ///< offered load per input wavelength channel, [0, 1]
  ArrivalProcess arrivals = ArrivalProcess::kBernoulli;
  double mean_burst_length = 8.0;  ///< on-off: mean ON duration in slots
  DestinationPattern destinations = DestinationPattern::kUniform;
  double hotspot_alpha = 1.0;  ///< Zipf exponent for kHotspot
  HoldingTime holding = HoldingTime::kSingleSlot;
  double mean_holding = 1.0;  ///< slots; kFixed rounds, kGeometric mean
  /// QoS class mix: class_mix[c] is the probability a new request belongs
  /// to priority class c (0 = highest). Must sum to ~1. Default: one class.
  std::vector<double> class_mix = {1.0};
};

class TrafficGenerator {
 public:
  TrafficGenerator(std::int32_t n_fibers, std::int32_t k, TrafficConfig config,
                   std::uint64_t seed);

  std::int32_t n_fibers() const noexcept { return n_fibers_; }
  std::int32_t k() const noexcept { return k_; }
  const TrafficConfig& config() const noexcept { return config_; }

  /// New requests for one slot. `input_channel_busy`, if nonempty (size
  /// N*k, index fiber*k + wavelength), suppresses arrivals on input channels
  /// still occupied by a multi-slot connection.
  std::vector<core::SlotRequest> next_slot(
      const std::vector<std::uint8_t>& input_channel_busy = {});

  /// next_slot() into a caller-owned buffer: clears `out` and fills it with
  /// the slot's requests. Capacity persists across slots, so a warm caller
  /// (the fleet's per-shard slot loop) performs no heap allocation.
  void next_slot_into(const std::vector<std::uint8_t>& input_channel_busy,
                      std::vector<core::SlotRequest>& out);

  /// Total requests generated so far.
  std::uint64_t generated() const noexcept { return next_id_; }

  /// Checkpoint of the generator's mutable state (RNG stream, per-channel
  /// burst state, id counter) so a live simulation can resume bit-for-bit.
  void save_state(util::SnapshotWriter& w) const;
  void restore_state(util::SnapshotReader& r);

 private:
  std::int32_t sample_destination();
  std::int32_t sample_duration();
  std::int32_t sample_priority();

  std::int32_t n_fibers_;
  std::int32_t k_;
  TrafficConfig config_;
  util::Rng rng_;
  util::ZipfSampler zipf_;
  // On-off per-channel state: current burst destination, or -1 when OFF.
  std::vector<std::int32_t> burst_dest_;
  double p_on_;   // off -> on
  double p_off_;  // on -> off
  std::uint64_t next_id_ = 0;
};

}  // namespace wdm::sim
