#include "sim/obs_export.hpp"

#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"

namespace wdm::sim {

void register_metrics(obs::Registry& registry,
                      const MetricsCollector& metrics, bool per_fiber) {
  registry.counter("wdm_slots_total", "Slots stepped", metrics.slots());
  registry.counter("wdm_arrivals_total", "Fresh requests offered",
                   metrics.raw_arrivals());
  registry.counter("wdm_offered_total",
                   "Offered requests (fresh + retries + ingress releases)",
                   metrics.arrivals());
  registry.counter("wdm_granted_total", "Requests granted", metrics.granted());
  registry.counter("wdm_rejected_total", "Requests rejected",
                   metrics.losses());
  registry.counter("wdm_rejected_malformed_total",
                   "Rejections for malformed fields",
                   metrics.rejected_malformed());
  registry.counter("wdm_rejected_faulted_total",
                   "Rejections for faulted hardware with no retry budget",
                   metrics.rejected_faulted());
  registry.counter("wdm_shed_overload_total",
                   "Requests shed by overload control",
                   metrics.shed_overload());
  registry.counter("wdm_deferred_faulted_total",
                   "Requests parked in the retry queue",
                   metrics.deferred_faulted());
  registry.counter("wdm_deferred_overload_total",
                   "Arrivals parked in the admission ingress queue",
                   metrics.deferred_overload());
  registry.counter("wdm_ingress_releases_total",
                   "Requests released from the ingress queue",
                   metrics.ingress_releases());
  registry.counter("wdm_degraded_ports_total",
                   "Port-slots scheduled with the degraded O(k) kernel",
                   metrics.degraded_ports());
  registry.counter("wdm_degraded_slots_total",
                   "Slots with at least one degraded port",
                   metrics.degraded_slots());
  registry.counter("wdm_retry_attempts_total",
                   "Requests re-offered from the retry queue",
                   metrics.retry_attempts());
  registry.counter("wdm_retry_successes_total",
                   "Retry attempts that ended in a grant",
                   metrics.retry_successes());
  registry.counter("wdm_preempted_total",
                   "Ongoing connections preempted mid-hold",
                   metrics.preempted());
  registry.counter("wdm_dropped_faulted_total",
                   "Ongoing connections torn down by hardware faults",
                   metrics.dropped_faulted());
  registry.counter("wdm_busy_channel_slots_total",
                   "Sum over slots of occupied output channels",
                   metrics.busy_channel_slots());
  const auto& arrivals_pc = metrics.arrivals_per_class();
  const auto& granted_pc = metrics.granted_per_class();
  for (std::size_t cls = 0; cls < arrivals_pc.size(); ++cls) {
    registry.counter("wdm_class_arrivals_total", "Fresh arrivals by QoS class",
                     arrivals_pc[cls],
                     "class=\"" + std::to_string(cls) + "\"");
  }
  for (std::size_t cls = 0; cls < granted_pc.size(); ++cls) {
    registry.counter("wdm_class_granted_total", "Grants by QoS class",
                     granted_pc[cls],
                     "class=\"" + std::to_string(cls) + "\"");
  }
  registry.gauge("wdm_loss_probability", "P(offered request rejected)",
                 metrics.loss_probability());
  registry.gauge("wdm_throughput_per_channel",
                 "Granted requests per slot per output channel",
                 metrics.throughput_per_channel());
  registry.gauge("wdm_utilization", "Mean fraction of output channels busy",
                 metrics.utilization());
  registry.gauge("wdm_fiber_fairness",
                 "Jain fairness index of per-fiber grants",
                 metrics.fiber_fairness());
  if (per_fiber) {
    const auto& fiber_grants = metrics.fiber_grants();
    for (std::size_t fiber = 0; fiber < fiber_grants.size(); ++fiber) {
      registry.counter("wdm_fiber_grants_total",
                       "Grants by output fiber (opt-in cardinality)",
                       static_cast<std::uint64_t>(fiber_grants[fiber]),
                       "fiber=\"" + std::to_string(fiber) + "\"");
    }
  }
}

void register_fleet_metrics(obs::Registry& registry, const Fleet& fleet,
                            bool per_fiber) {
  const MetricsCollector merged = fleet.merged_metrics();
  register_metrics(registry, merged, per_fiber);
  registry.gauge("wdm_fleet_shards", "Shards served by this fleet",
                 static_cast<double>(fleet.shards()));
  registry.gauge("wdm_fleet_pinned",
                 "1 when CPU pinning was requested and applied on every "
                 "shard, 0 otherwise (portable no-op fallback)",
                 fleet.pinned() ? 1.0 : 0.0);
  registry.gauge("wdm_fleet_serving_shards",
                 "Shards currently serving the slot barrier",
                 static_cast<double>(fleet.serving_shards()));
  registry.counter("wdm_shard_restarts_total",
                   "Successful shard restarts (quarantine -> rejoin)",
                   fleet.total_restarts());
  registry.counter("wdm_recovery_discards_total",
                   "Checkpoint frames discarded during recovery "
                   "(torn/corrupt/unchained)",
                   fleet.recovery_discards());
  registry.counter("wdm_blackbox_dumps_total",
                   "Shard black-box dumps persisted to disk",
                   fleet.black_box_dumps());
  // Fleet mode flies per-shard recorders, so the single-fabric stage
  // latency series (wdm_stage_duration_ns{stage=...}) is recovered by
  // merging the shard histograms — Histogram::merge is exact, the buckets
  // are shared. Ring counters are summed the same way.
  bool any_flight = false;
  std::uint64_t trace_events = 0;
  std::uint64_t trace_dropped = 0;
  std::vector<obs::Histogram> stages(
      static_cast<std::size_t>(obs::Stage::kCount));
  for (std::size_t shard = 0; shard < fleet.shards(); ++shard) {
    const obs::FlightRecorder* flight = fleet.shard_flight(shard);
    if (flight == nullptr) continue;
    any_flight = true;
    trace_events += flight->recorder().recorded();
    trace_dropped += flight->recorder().dropped();
    for (std::size_t s = 0; s < stages.size(); ++s) {
      stages[s].merge(
          flight->recorder().stage_histogram(static_cast<obs::Stage>(s)));
    }
  }
  if (any_flight) {
    registry.counter("wdm_trace_events_total",
                     "Trace events recorded (including overwritten)",
                     trace_events);
    registry.counter("wdm_trace_events_dropped_total",
                     "Trace events lost to ring wrap-around", trace_dropped);
    for (std::size_t s = 0; s < stages.size(); ++s) {
      if (stages[s].count() == 0) continue;
      registry.histogram(
          "wdm_stage_duration_ns", "Pipeline stage wall-clock duration",
          stages[s],
          std::string("stage=\"") +
              obs::to_string(static_cast<obs::Stage>(s)) + "\"");
    }
  }
  for (std::size_t shard = 0; shard < fleet.shards(); ++shard) {
    const MetricsCollector& m = fleet.shard_metrics(shard);
    const std::string label = "shard=\"" + std::to_string(shard) + "\"";
    registry.counter("wdm_shard_slots_total", "Slots stepped by shard",
                     m.slots(), label);
    registry.counter("wdm_shard_arrivals_total",
                     "Fresh requests offered by shard", m.raw_arrivals(),
                     label);
    registry.counter("wdm_shard_granted_total", "Requests granted by shard",
                     m.granted(), label);
    registry.counter("wdm_shard_rejected_total", "Requests rejected by shard",
                     m.losses(), label);
    registry.gauge("wdm_shard_health",
                   "Shard supervision state (0=serving 1=quarantined "
                   "2=restarting 3=failed)",
                   static_cast<double>(
                       static_cast<std::uint8_t>(fleet.shard_health(shard))),
                   label);
    registry.counter("wdm_shard_restarts",
                     "Successful restarts of this shard",
                     fleet.shard_restarts(shard), label);
  }
}

}  // namespace wdm::sim
