#include "sim/checkpoint_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <system_error>
#include <utility>

#include "obs/telemetry.hpp"
#include "util/check.hpp"
#include "util/snapshot.hpp"
#include "util/timer.hpp"

namespace wdm::sim {

namespace {

namespace fs = std::filesystem;

/// Leading payload byte. 0/1 are the stream checkpoints of sim/checkpoint.hpp
/// (kInterconnectOnly/kWithTraffic); the store's frames continue the space.
constexpr std::uint8_t kFullFrame = 2;
constexpr std::uint8_t kDeltaFrame = 3;

/// Delta per-section modes.
constexpr std::uint8_t kUnchanged = 0;
constexpr std::uint8_t kReplace = 1;
constexpr std::uint8_t kPatch = 2;

/// Sanity bound for the section count field of a hostile/corrupt frame.
constexpr std::uint32_t kMaxSections = 64;

/// Record width a section is diffed at. Record-structured sections use
/// their natural stride (keyed by Interconnect::save_section index: 2 =
/// output plane, u64 expiry + two i32 + u64 id; 3 = input plane, u64
/// expiry); everything else falls back to 8-byte words, which localises
/// small dirty regions — an RNG counter, a token value — inside otherwise
/// byte-stable sections. The last record may be shorter than the stride
/// (section size need not divide evenly); both sides derive its length from
/// the section size, so it is never encoded.
std::size_t section_record_size(std::size_t section) {
  if (section == 2) return 24;
  if (section == 3) return 8;
  return 8;
}

std::size_t record_length(std::size_t section_size, std::size_t rec,
                          std::size_t index) {
  return std::min(rec, section_size - index * rec);
}

/// FNV-1a64 over the concatenation of all section byte vectors — the
/// "reconstructed payload" digest that chains delta frames together.
std::uint64_t sections_digest(
    const std::vector<std::vector<std::uint8_t>>& sections) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& section : sections) {
    for (const std::uint8_t b : section) {
      h ^= b;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

struct FrameName {
  std::uint64_t seq = 0;
  std::uint64_t slot = 0;
  bool full = false;
  std::string path;
};

/// Parses "ckpt-<seq>-<slot>-{full|delta}.wdmsnap"; nullopt for anything
/// else (foreign files in the directory are simply not checkpoint frames).
std::optional<FrameName> parse_frame_name(const fs::path& path) {
  const std::string name = path.filename().string();
  constexpr std::string_view prefix = "ckpt-";
  constexpr std::string_view suffix = ".wdmsnap";
  if (name.size() <= prefix.size() + suffix.size() ||
      name.compare(0, prefix.size(), prefix) != 0 ||
      name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return std::nullopt;
  }
  const std::string body =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  const std::size_t d1 = body.find('-');
  if (d1 == std::string::npos) return std::nullopt;
  const std::size_t d2 = body.find('-', d1 + 1);
  if (d2 == std::string::npos) return std::nullopt;
  FrameName f;
  try {
    f.seq = std::stoull(body.substr(0, d1));
    f.slot = std::stoull(body.substr(d1 + 1, d2 - d1 - 1));
  } catch (const std::exception&) {
    return std::nullopt;
  }
  const std::string kind = body.substr(d2 + 1);
  if (kind == "full") {
    f.full = true;
  } else if (kind == "delta") {
    f.full = false;
  } else {
    return std::nullopt;
  }
  f.path = path.string();
  return f;
}

std::vector<FrameName> scan_frames(const std::string& dir) {
  std::vector<FrameName> entries;
  std::error_code ec;
  for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (auto f = parse_frame_name(it->path())) entries.push_back(std::move(*f));
  }
  std::sort(entries.begin(), entries.end(),
            [](const FrameName& a, const FrameName& b) { return a.seq < b.seq; });
  return entries;
}

/// Durable atomic publication: all-or-nothing under the final name.
void publish_frame(const std::string& dir, const std::string& path,
                   const std::string& bytes) {
  const std::string tmp = dir + "/.ckpt.tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  WDM_CHECK_MSG(fd >= 0, "cannot create checkpoint temp file " + tmp);
  std::size_t off = 0;
  bool ok = true;
  while (ok && off < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      ok = false;
    } else {
      off += static_cast<std::size_t>(n);
    }
  }
  // The frame is not durable until its bytes are (fsync), and it must never
  // become visible under the final name before that — hence tmp -> rename.
  ok = ok && ::fsync(fd) == 0;
  ::close(fd);
  WDM_CHECK_MSG(ok, "checkpoint frame write/fsync failed: " + tmp);
  WDM_CHECK_MSG(::rename(tmp.c_str(), path.c_str()) == 0,
                "checkpoint frame rename failed: " + path);
  // Make the rename itself durable; best-effort (some filesystems refuse
  // directory fds), the frame content is already safe either way.
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

void record_checkpoint_event(const Interconnect& interconnect) {
  obs::TraceRecorder* recorder = interconnect.telemetry();
  if (recorder == nullptr || !recorder->at(obs::TraceDetail::kSlots)) return;
  obs::TraceEvent e;
  e.ts_ns = util::now_ns();
  e.slot = interconnect.current_slot();
  e.kind = obs::EventKind::kCheckpointSave;
  recorder->record(e);
}

}  // namespace

CheckpointStore::CheckpointStore(CheckpointPolicy policy)
    : policy_(std::move(policy)) {
  WDM_CHECK_MSG(!policy_.dir.empty(), "checkpoint store needs a directory");
  WDM_CHECK_MSG(policy_.full_every >= 1 && policy_.keep_fulls >= 1,
                "checkpoint policy: full_every >= 1 and keep_fulls >= 1");
  fs::create_directories(policy_.dir);
  // Continue the sequence past any frames already on disk (a crashed run's):
  // names never collide, and recover_latest can still read the old chain
  // until the first new full retires it.
  for (const auto& f : scan_frames(policy_.dir)) {
    next_seq_ = std::max(next_seq_, f.seq + 1);
  }
}

std::string CheckpointStore::write(const Interconnect& interconnect,
                                   const TrafficGenerator* traffic) {
  std::vector<std::vector<std::uint8_t>> sections;
  sections.reserve(Interconnect::kSections + (traffic != nullptr ? 1 : 0));
  for (std::size_t s = 0; s < Interconnect::kSections; ++s) {
    util::SnapshotWriter w;
    interconnect.save_section(s, w);
    sections.push_back(w.payload());
  }
  if (traffic != nullptr) {
    util::SnapshotWriter w;
    traffic->save_state(w);
    sections.push_back(w.payload());
  }
  const std::uint64_t slot = interconnect.current_slot();
  const std::uint64_t digest = sections_digest(sections);
  const bool full = prev_sections_.empty() ||
                    sections.size() != prev_sections_.size() ||
                    deltas_since_full_ + 1 >= policy_.full_every;

  util::SnapshotWriter w;
  w.u8(full ? kFullFrame : kDeltaFrame);
  w.u64(slot);
  w.u8(traffic != nullptr ? 1 : 0);
  if (full) {
    w.u32(static_cast<std::uint32_t>(sections.size()));
    for (const auto& section : sections) w.vec_u8(section);
  } else {
    w.u64(prev_slot_);
    w.u64(prev_digest_);
    w.u32(static_cast<std::uint32_t>(sections.size()));
    for (std::size_t s = 0; s < sections.size(); ++s) {
      const auto& neu = sections[s];
      const auto& old = prev_sections_[s];
      if (neu == old) {
        w.u8(kUnchanged);
        continue;
      }
      const std::size_t rec = section_record_size(s);
      if (neu.size() == old.size() && !neu.empty()) {
        const std::size_t records = (neu.size() + rec - 1) / rec;
        std::size_t changed = 0;
        std::size_t patch_bytes = 8;  // u32 record size + u32 count
        for (std::size_t i = 0; i < records; ++i) {
          const std::size_t len = record_length(neu.size(), rec, i);
          if (std::memcmp(neu.data() + i * rec, old.data() + i * rec, len) !=
              0) {
            changed += 1;
            patch_bytes += 4 + len;
          }
        }
        // Sparse only when it actually wins over a whole-section replace.
        if (patch_bytes < 8 + neu.size()) {
          w.u8(kPatch);
          w.u32(static_cast<std::uint32_t>(rec));
          w.u32(static_cast<std::uint32_t>(changed));
          for (std::size_t i = 0; i < records; ++i) {
            const std::size_t len = record_length(neu.size(), rec, i);
            if (std::memcmp(neu.data() + i * rec, old.data() + i * rec,
                            len) != 0) {
              w.u32(static_cast<std::uint32_t>(i));
              w.bytes(std::span<const std::uint8_t>(neu.data() + i * rec, len));
            }
          }
          continue;
        }
      }
      w.u8(kReplace);
      w.vec_u8(neu);
    }
    // Digest of the state this delta reconstructs to — recovery verifies it
    // after applying the patches, so a bad apply can never restore silently.
    w.u64(digest);
  }

  std::ostringstream frame;
  w.write_to(frame);
  const std::string bytes = frame.str();

  char name[96];
  std::snprintf(name, sizeof name, "ckpt-%08llu-%llu-%s.wdmsnap",
                static_cast<unsigned long long>(next_seq_),
                static_cast<unsigned long long>(slot), full ? "full" : "delta");
  const std::string path = policy_.dir + "/" + name;
  publish_frame(policy_.dir, path, bytes);
  record_checkpoint_event(interconnect);

  frames_.push_back(FrameInfo{slot, full, bytes.size(), path});
  prev_sections_ = std::move(sections);
  prev_slot_ = slot;
  prev_digest_ = digest;
  next_seq_ += 1;
  if (full) {
    deltas_since_full_ = 0;
    prune();
  } else {
    deltas_since_full_ += 1;
  }
  return path;
}

void CheckpointStore::prune() {
  // Retention by chain: keep the newest keep_fulls fulls and every frame
  // from the oldest kept full onward (its deltas); everything earlier —
  // including adopted frames from a previous run — is retired. Deletion is
  // best-effort: a frame we fail to unlink is garbage recover_latest will
  // discard, not a correctness problem.
  const std::vector<FrameName> entries = scan_frames(policy_.dir);
  std::vector<std::uint64_t> full_seqs;
  for (const auto& e : entries) {
    if (e.full) full_seqs.push_back(e.seq);
  }
  if (full_seqs.size() <= policy_.keep_fulls) return;
  std::sort(full_seqs.rbegin(), full_seqs.rend());
  const std::uint64_t cutoff = full_seqs[policy_.keep_fulls - 1];
  for (const auto& e : entries) {
    if (e.seq >= cutoff) continue;
    std::error_code ec;
    fs::remove(e.path, ec);
  }
  std::erase_if(frames_, [&](const FrameInfo& f) {
    const auto parsed = parse_frame_name(f.path);
    return parsed.has_value() && parsed->seq < cutoff;
  });
}

RecoveryReport recover_latest(const std::string& dir,
                              Interconnect& interconnect,
                              TrafficGenerator* traffic,
                              std::uint64_t max_slot) {
  RecoveryReport report;
  const std::vector<FrameName> entries = scan_frames(dir);

  // Walk the frames oldest to newest, carrying the newest fully verified
  // state: a full resets the chain, a delta extends it iff its named base
  // matches the carried state byte for byte (slot + digest) and its own
  // reconstruction digest checks out. A frame that fails any of this is
  // discarded with its reason — and any delta chained on a discarded frame
  // fails the base check naturally, so a verified prefix is all that can
  // survive.
  bool have_chain = false;
  std::vector<std::vector<std::uint8_t>> chain;
  std::uint64_t chain_slot = 0;
  std::uint64_t chain_digest = 0;
  bool chain_traffic = false;
  std::string chain_path;
  std::uint64_t chain_len = 0;

  for (const auto& e : entries) {
    try {
      std::ifstream is(e.path, std::ios::binary);
      if (!is) throw std::runtime_error("cannot open frame file");
      util::SnapshotReader r(is);
      const std::uint8_t kind = r.u8();
      if (kind == kFullFrame) {
        const std::uint64_t slot = r.u64();
        if (slot > max_slot) continue;  // valid, just newer than wanted
        const bool has_traffic = r.u8() != 0;
        const std::uint32_t n_sections = r.u32();
        WDM_CHECK_MSG(n_sections >= 1 && n_sections <= kMaxSections,
                      "implausible section count");
        std::vector<std::vector<std::uint8_t>> sections;
        sections.reserve(n_sections);
        for (std::uint32_t s = 0; s < n_sections; ++s) {
          sections.push_back(r.vec_u8());
        }
        WDM_CHECK_MSG(r.exhausted(), "frame has trailing bytes");
        chain = std::move(sections);
        chain_slot = slot;
        chain_digest = sections_digest(chain);
        chain_traffic = has_traffic;
        chain_path = e.path;
        chain_len = 1;
        have_chain = true;
      } else if (kind == kDeltaFrame) {
        const std::uint64_t slot = r.u64();
        if (slot > max_slot) continue;  // valid, just newer than wanted
        const bool has_traffic = r.u8() != 0;
        const std::uint64_t base_slot = r.u64();
        const std::uint64_t base_digest = r.u64();
        const std::uint32_t n_sections = r.u32();
        if (!have_chain) {
          throw std::runtime_error("delta frame with no verified base");
        }
        if (base_slot != chain_slot || base_digest != chain_digest) {
          throw std::runtime_error(
              "delta base does not match the preceding verified frame");
        }
        WDM_CHECK_MSG(n_sections == chain.size(),
                      "delta section count does not match its base");
        std::vector<std::vector<std::uint8_t>> next = chain;
        for (std::uint32_t s = 0; s < n_sections; ++s) {
          const std::uint8_t mode = r.u8();
          if (mode == kUnchanged) continue;
          if (mode == kReplace) {
            next[s] = r.vec_u8();
            continue;
          }
          WDM_CHECK_MSG(mode == kPatch, "unknown delta section mode");
          const std::uint32_t rec = r.u32();
          const std::uint32_t count = r.u32();
          WDM_CHECK_MSG(rec >= 1 && !next[s].empty(),
                        "patch against an empty section");
          const std::size_t records = (next[s].size() + rec - 1) / rec;
          for (std::uint32_t p = 0; p < count; ++p) {
            const std::uint32_t index = r.u32();
            WDM_CHECK_MSG(index < records, "patch record index out of range");
            const std::size_t len = record_length(next[s].size(), rec, index);
            const auto bytes = r.raw(len);
            std::memcpy(next[s].data() +
                            static_cast<std::size_t>(index) * rec,
                        bytes.data(), len);
          }
        }
        const std::uint64_t full_digest = r.u64();
        WDM_CHECK_MSG(r.exhausted(), "frame has trailing bytes");
        WDM_CHECK_MSG(sections_digest(next) == full_digest,
                      "delta reconstruction digest mismatch");
        chain = std::move(next);
        chain_slot = slot;
        chain_digest = full_digest;
        chain_traffic = has_traffic;
        chain_path = e.path;
        chain_len += 1;
      } else {
        throw std::runtime_error(
            "not a checkpoint-store frame (stream checkpoint kind byte)");
      }
    } catch (const std::exception& ex) {
      report.discarded.push_back(e.path);
      report.reasons.push_back(ex.what());
    }
  }

  if (!have_chain) return report;
  if (chain_traffic != (traffic != nullptr)) {
    report.discarded.push_back(chain_path);
    report.reasons.push_back(
        chain_traffic
            ? "frame carries traffic state but no generator was given"
            : "a traffic generator was given but the frame carries none");
    return report;
  }
  try {
    std::vector<std::uint8_t> payload;
    std::size_t total = 0;
    for (const auto& section : chain) total += section.size();
    payload.reserve(total);
    for (const auto& section : chain) {
      payload.insert(payload.end(), section.begin(), section.end());
    }
    util::SnapshotReader r = util::SnapshotReader::from_payload(
        std::move(payload));
    interconnect.restore_state(r);
    if (traffic != nullptr) traffic->restore_state(r);
    WDM_CHECK_MSG(r.exhausted(),
                  "reconstructed payload has trailing bytes");
  } catch (const std::exception& ex) {
    report.discarded.push_back(chain_path);
    report.reasons.push_back(ex.what());
    return report;
  }
  report.recovered = true;
  report.slot = interconnect.current_slot();
  report.used = chain_path;
  report.frames_applied = chain_len;
  return report;
}

}  // namespace wdm::sim
