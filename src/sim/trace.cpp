#include "sim/trace.hpp"

#include <algorithm>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/interconnect.hpp"
#include "sim/traffic.hpp"
#include "util/check.hpp"

namespace wdm::sim {

std::uint64_t Trace::total_requests() const noexcept {
  std::uint64_t total = 0;
  for (const auto& slot : slots) total += slot.size();
  return total;
}

void write_trace(std::ostream& os, const Trace& trace) {
  // v1 when there is nothing a v1 reader would miss; v2 adds `D,slot`
  // deadline-overrun event lines and a seventh `priority` column on request
  // lines (a v1 reader rejects those loudly rather than silently replaying
  // without the downgrades / with every request demoted to class 0).
  bool classed = false;
  for (const auto& slot : trace.slots) {
    for (const auto& r : slot) classed = classed || r.priority != 0;
  }
  const bool v2 = classed || !trace.deadline_overruns.empty();
  os << "# wdmsched trace v" << (v2 ? 2 : 1) << "\n";
  os << "# n_fibers=" << trace.n_fibers << " k=" << trace.k
     << " slots=" << trace.slots.size() << "\n";
  os << "# slot,input_fiber,wavelength,output_fiber,id,duration"
     << (v2 ? ",priority" : "") << "\n";
  for (const std::uint64_t slot : trace.deadline_overruns) {
    os << "D," << slot << '\n';
  }
  for (std::size_t slot = 0; slot < trace.slots.size(); ++slot) {
    for (const auto& r : trace.slots[slot]) {
      os << slot << ',' << r.input_fiber << ',' << r.wavelength << ','
         << r.output_fiber << ',' << r.id << ',' << r.duration;
      if (v2) os << ',' << r.priority;
      os << '\n';
    }
  }
}

Trace read_trace(std::istream& is) {
  Trace trace;
  std::string line;
  bool got_header = false;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Parse the dimension header if present.
      std::size_t pos = line.find("n_fibers=");
      if (pos != std::string::npos) {
        std::istringstream hs(line.substr(pos + 9));
        hs >> trace.n_fibers;
        pos = line.find("k=");
        WDM_CHECK_MSG(pos != std::string::npos, "malformed trace header");
        std::istringstream ks(line.substr(pos + 2));
        ks >> trace.k;
        // `slots=` restores trailing empty slots (nothing below references
        // them, so without it an N-slot trace ending in idle slots would
        // round-trip shorter than it was written). Optional for older
        // traces; request lines may still extend past it.
        pos = line.find("slots=");
        if (pos != std::string::npos) {
          std::istringstream ss(line.substr(pos + 6));
          std::uint64_t declared = 0;
          if (ss >> declared) {
            WDM_CHECK_MSG(declared <= kMaxTraceSlots,
                          "trace header slot count implausibly large");
            if (declared > trace.slots.size()) {
              trace.slots.resize(static_cast<std::size_t>(declared));
            }
          }
        }
        got_header = true;
      }
      continue;
    }
    if (line[0] == 'D') {
      // Deadline-overrun event (v2): `D,slot`. Order in the file is not
      // trusted; the vector is sorted after the parse.
      std::istringstream ds(line.substr(1));
      char comma = 0;
      std::uint64_t slot = 0;
      if (!(ds >> comma >> slot) || comma != ',') {
        throw std::invalid_argument("malformed trace event line: " + line);
      }
      WDM_CHECK_MSG(slot < kMaxTraceSlots,
                    "trace event slot index implausibly large");
      trace.deadline_overruns.push_back(slot);
      continue;
    }
    std::istringstream ls(line);
    std::uint64_t slot = 0;
    core::SlotRequest r;
    char comma = 0;
    if (!(ls >> slot >> comma >> r.input_fiber >> comma >> r.wavelength >>
          comma >> r.output_fiber >> comma >> r.id >> comma >> r.duration)) {
      throw std::invalid_argument("malformed trace line: " + line);
    }
    // Optional v2 seventh column; a v1 line leaves priority at class 0.
    if (ls >> comma >> r.priority && comma != ',') {
      throw std::invalid_argument("malformed trace line: " + line);
    }
    // Guard the one field that sizes our own allocation; out-of-range
    // *request* fields are kept as-is — the interconnect rejects them
    // per-request at replay (RejectReason accounting), so one bad line
    // costs one grant, not the whole replay.
    WDM_CHECK_MSG(slot < kMaxTraceSlots, "trace slot index implausibly large");
    if (slot >= trace.slots.size()) trace.slots.resize(slot + 1);
    trace.slots[slot].push_back(r);
  }
  WDM_CHECK_MSG(got_header, "trace is missing its dimension header");
  std::sort(trace.deadline_overruns.begin(), trace.deadline_overruns.end());
  trace.deadline_overruns.erase(std::unique(trace.deadline_overruns.begin(),
                                            trace.deadline_overruns.end()),
                                trace.deadline_overruns.end());
  return trace;
}

Trace capture_trace(TrafficGenerator& generator, std::int32_t n_fibers,
                    std::int32_t k, std::uint64_t slots) {
  WDM_CHECK_MSG(generator.n_fibers() == n_fibers && generator.k() == k,
                "generator dimensions must match the trace");
  Trace trace;
  trace.n_fibers = n_fibers;
  trace.k = k;
  trace.slots.reserve(slots);
  for (std::uint64_t s = 0; s < slots; ++s) {
    trace.slots.push_back(generator.next_slot());
  }
  return trace;
}

std::vector<SlotStats> replay_trace(const Trace& trace,
                                    Interconnect& interconnect) {
  WDM_CHECK_MSG(interconnect.n_fibers() == trace.n_fibers &&
                    interconnect.k() == trace.k,
                "interconnect dimensions must match the trace");
  std::vector<SlotStats> stats;
  stats.reserve(trace.slots.size());
  for (const auto& slot : trace.slots) {
    stats.push_back(interconnect.step(slot));
  }
  return stats;
}

}  // namespace wdm::sim
