#include "sim/fleet.hpp"

#include <algorithm>
#include <exception>
#include <span>

#include "sim/checkpoint.hpp"
#include "util/check.hpp"
#include "util/cpu_affinity.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"
#include "util/threadpool.hpp"

namespace wdm::sim {

namespace {
/// Label base for shard master-seed substreams (see util::derive_stream_seed):
/// "FLEET" + shard index. Labeled, not sequential, so changing the shard
/// count never shifts the seeds of the shards that already existed.
constexpr std::uint64_t kFleetShardLabel = 0x464c454554ULL;
}  // namespace

/// Everything one shard owns. Constructed inside the (optionally pinned)
/// driver thread so first-touch page placement follows the pin, and
/// destroyed by that same thread on shutdown.
struct Fleet::Shard {
  std::unique_ptr<Interconnect> interconnect;
  std::unique_ptr<TrafficGenerator> traffic;
  std::unique_ptr<MetricsCollector> metrics;
  std::unique_ptr<util::ThreadPool> pool;  // null when the group is just the driver
  std::unique_ptr<CheckpointStore> store;  // null until open_checkpoints
  // Reusable per-slot scratch — the zero-allocation warm path.
  std::vector<std::uint8_t> busy;
  std::vector<core::SlotRequest> arrivals;
  SlotStats last;            // most recent slot's accounting
  std::uint64_t total_arrivals = 0;
  std::uint64_t total_granted = 0;
  bool pinned = false;
  std::exception_ptr error;  // first failure; rethrown at the barrier
};

Fleet::Fleet(FleetConfig config) : config_(std::move(config)) {
  WDM_CHECK_MSG(config_.shards > 0, "a fleet needs at least one shard");
  WDM_CHECK_MSG(
      config_.shard_seeds.empty() ||
          config_.shard_seeds.size() == config_.shards,
      "shard_seeds must be empty or name a seed for every shard");

  seeds_.resize(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    seeds_[i] = config_.shard_seeds.empty()
                    ? util::derive_stream_seed(config_.seed,
                                               kFleetShardLabel + i)
                    : config_.shard_seeds[i];
  }

  // The oversubscription clamp (one pool per shard must not multiply into
  // more workers than the machine has): group size includes the driver.
  group_threads_ = util::ThreadPool::clamped_partition_threads(
      config_.threads_per_shard, config_.shards, config_.max_total_threads);

  shards_.resize(config_.shards);
  drivers_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    drivers_.emplace_back([this, i] { driver_main(i); });
  }
  // Wait for every driver to pin, build its shard, and check in; surface
  // the first construction failure as our own.
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [this] { return ready_ == shards_.size(); });
  bool all_pinned = config_.pin_cpus;
  for (auto& shard : shards_) {
    if (shard->error) {
      lock.unlock();
      stop_drivers_and_rethrow(shard->error);
    }
    all_pinned = all_pinned && shard->pinned;
  }
  pinned_ = all_pinned;
}

void Fleet::stop_drivers_and_rethrow(std::exception_ptr error) {
  {
    const std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& d : drivers_) {
    if (d.joinable()) d.join();
  }
  std::rethrow_exception(error);
}

Fleet::~Fleet() {
  {
    const std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& d : drivers_) {
    if (d.joinable()) d.join();
  }
}

void Fleet::driver_main(std::size_t index) {
  auto shard = std::make_unique<Shard>();
  try {
    if (config_.pin_cpus) {
      // Contiguous block per shard: groups land side by side, so on NUMA
      // hosts a shard's threads share one node as long as blocks do not
      // straddle a node boundary. Wraps when shards exceed the CPU count.
      const std::size_t cpus = util::available_cpus();
      const std::size_t block = std::max<std::size_t>(
          1, std::min(group_threads_, cpus / std::max<std::size_t>(
                                                 1, config_.shards)));
      const std::size_t first = (index * block) % cpus;
      shard->pinned = util::pin_current_thread_block(
          static_cast<int>(first), static_cast<int>(block));
    }
    // Per-shard seeding mirrors run_simulation: one seeder per shard, the
    // interconnect and traffic streams drawn from it in a fixed order.
    util::Rng seeder(seeds_[index]);
    InterconnectConfig icfg = config_.interconnect;
    icfg.seed = seeder.next();
    const std::uint64_t traffic_seed = seeder.next();
    shard->interconnect = std::make_unique<Interconnect>(icfg);
    // The fleet's serving contract is zero warm-path allocation, so pay the
    // worst-case arena memory up front rather than absorbing rare per-port
    // high-water reallocations mid-serve.
    shard->interconnect->reserve_worst_case_scratch();
    shard->traffic = std::make_unique<TrafficGenerator>(
        icfg.n_fibers, icfg.scheme.k(), config_.traffic, traffic_seed);
    shard->metrics =
        std::make_unique<MetricsCollector>(icfg.n_fibers, icfg.scheme.k());
    // Worst-case scratch: one busy flag and at most one fresh arrival per
    // input channel per slot, so the warm slot loop never reallocates.
    const std::size_t channels = static_cast<std::size_t>(icfg.n_fibers) *
                                 static_cast<std::size_t>(icfg.scheme.k());
    shard->busy.reserve(channels);
    shard->arrivals.reserve(channels);
    if (group_threads_ > 1) {
      // Constructed on this (possibly pinned) thread so the workers inherit
      // the affinity mask on Linux; group size counts the driver, hence -1.
      shard->pool = std::make_unique<util::ThreadPool>(group_threads_ - 1);
    }
  } catch (...) {
    shard->error = std::current_exception();
  }

  Shard* self = shard.get();
  {
    const std::lock_guard lock(mu_);
    shards_[index] = std::move(shard);
    ++ready_;
  }
  done_cv_.notify_all();

  std::uint64_t done = 0;
  std::unique_lock lock(mu_);
  for (;;) {
    cv_.wait(lock, [&] { return stop_ || target_slots_ > done; });
    if (stop_) break;
    const std::uint64_t target = target_slots_;
    lock.unlock();
    if (self->error == nullptr) {
      try {
        while (done < target) {
          run_shard_slot(*self);
          ++done;
        }
      } catch (...) {
        self->error = std::current_exception();
      }
    }
    done = target;  // an errored shard stops stepping but keeps the barrier
    lock.lock();
    if (--running_ == 0) done_cv_.notify_all();
  }
  // Tear down on the owning thread (symmetric with construction).
  lock.unlock();
  self->pool.reset();
}

void Fleet::run_shard_slot(Shard& shard) {
  shard.interconnect->input_channel_busy_into(shard.busy);
  shard.traffic->next_slot_into(shard.busy, shard.arrivals);
  shard.last = shard.interconnect->step(
      std::span<const core::SlotRequest>(shard.arrivals), shard.pool.get());
  shard.total_arrivals += shard.last.arrivals;
  shard.total_granted += shard.last.granted;
  shard.metrics->record_slot(shard.last);
  const auto& grants = shard.interconnect->last_fiber_grants();
  for (std::int32_t fiber = 0; fiber < shard.interconnect->n_fibers();
       ++fiber) {
    shard.metrics->record_fiber_grants(
        fiber, grants[static_cast<std::size_t>(fiber)]);
  }
}

void Fleet::advance(std::uint64_t slots) {
  if (slots == 0) return;
  std::unique_lock lock(mu_);
  target_slots_ += slots;
  running_ = shards_.size();
  cv_.notify_all();
  done_cv_.wait(lock, [this] { return running_ == 0; });
  slot_ += slots;
  for (auto& shard : shards_) {
    if (shard->error) {
      const std::exception_ptr error = shard->error;
      lock.unlock();
      std::rethrow_exception(error);
    }
  }
}

void Fleet::step() {
  advance(1);
  // Aggregate outside the barrier on the caller: SmallVec-backed per-class
  // columns keep this allocation-free.
  last_stats_ = SlotStats{};
  for (const auto& shard : shards_) last_stats_.add(shard->last);
}

void Fleet::run(std::uint64_t slots) {
  advance(slots);
  last_stats_ = SlotStats{};
  for (const auto& shard : shards_) last_stats_.add(shard->last);
}

std::uint64_t Fleet::shard_seed(std::size_t shard) const {
  WDM_CHECK_MSG(shard < seeds_.size(), "shard index out of range");
  return seeds_[shard];
}

std::uint64_t Fleet::total_arrivals() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->total_arrivals;
  return total;
}

std::uint64_t Fleet::total_granted() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->total_granted;
  return total;
}

void Fleet::reset_counters() {
  for (auto& shard : shards_) {
    shard->metrics = std::make_unique<MetricsCollector>(
        shard->interconnect->n_fibers(), shard->interconnect->k());
    shard->total_arrivals = 0;
    shard->total_granted = 0;
  }
}

const Interconnect& Fleet::shard_interconnect(std::size_t shard) const {
  WDM_CHECK_MSG(shard < shards_.size(), "shard index out of range");
  return *shards_[shard]->interconnect;
}

const MetricsCollector& Fleet::shard_metrics(std::size_t shard) const {
  WDM_CHECK_MSG(shard < shards_.size(), "shard index out of range");
  return *shards_[shard]->metrics;
}

MetricsCollector Fleet::merged_metrics() const {
  MetricsCollector merged(config_.interconnect.n_fibers,
                          config_.interconnect.scheme.k());
  for (const auto& shard : shards_) merged.merge(*shard->metrics);
  return merged;
}

std::uint64_t Fleet::fleet_digest() const {
  // FNV-1a64 over the ordered little-endian shard digests: shard order is
  // part of the fingerprint (shard i is a distinct seeded stream).
  std::vector<std::uint8_t> bytes;
  bytes.reserve(shards_.size() * 8);
  for (const auto& shard : shards_) {
    std::uint64_t d = state_digest(*shard->interconnect);
    for (int b = 0; b < 8; ++b) {
      bytes.push_back(static_cast<std::uint8_t>(d & 0xff));
      d >>= 8;
    }
  }
  return util::fnv1a64(bytes);
}

void Fleet::open_checkpoints(const CheckpointPolicy& policy) {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    CheckpointPolicy shard_policy = policy;
    shard_policy.dir = policy.dir + "/shard-" + std::to_string(i);
    shards_[i]->store = std::make_unique<CheckpointStore>(shard_policy);
  }
}

void Fleet::write_checkpoint() {
  for (auto& shard : shards_) {
    WDM_CHECK_MSG(shard->store != nullptr,
                  "write_checkpoint needs open_checkpoints first");
    shard->store->write(*shard->interconnect, shard->traffic.get());
  }
}

FleetRecovery Fleet::resume_from(const std::string& dir) {
  FleetRecovery out;
  out.shards.reserve(shards_.size());
  bool all = true;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    RecoveryReport report =
        recover_latest(dir + "/shard-" + std::to_string(i),
                       *shards_[i]->interconnect, shards_[i]->traffic.get());
    all = all && report.recovered;
    out.shards.push_back(std::move(report));
  }
  if (!all) return out;
  const std::uint64_t slot = out.shards.front().slot;
  for (const auto& report : out.shards) {
    if (report.slot != slot) return out;  // chains disagree: not a fleet state
  }
  out.recovered = true;
  out.slot = slot;
  slot_ = slot;
  return out;
}

}  // namespace wdm::sim
