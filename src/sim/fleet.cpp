#include "sim/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <span>
#include <sstream>

#include "sim/checkpoint.hpp"
#include "sim/obs_export.hpp"
#include "util/check.hpp"
#include "util/cpu_affinity.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"
#include "util/threadpool.hpp"
#include "util/timer.hpp"

namespace wdm::sim {

namespace {
/// Label base for shard master-seed substreams (see util::derive_stream_seed):
/// "FLEET" + shard index. Labeled, not sequential, so changing the shard
/// count never shifts the seeds of the shards that already existed.
constexpr std::uint64_t kFleetShardLabel = 0x464c454554ULL;
/// fleet_digest contribution of a shard with no live state (kFailed after a
/// watchdog abandonment): a fixed dead marker, never a valid state digest.
constexpr std::uint64_t kDeadShardDigest = 0xFA11EDFA11EDFA11ULL;
/// Backoff doubling cap: 2^20 fleet slots is already "never" for any test
/// or drill horizon; capping keeps the shift well-defined.
constexpr std::uint32_t kMaxBackoffDoublings = 20;
}  // namespace

const char* to_string(ShardHealth health) noexcept {
  switch (health) {
    case ShardHealth::kServing: return "serving";
    case ShardHealth::kQuarantined: return "quarantined";
    case ShardHealth::kRestarting: return "restarting";
    case ShardHealth::kFailed: return "failed";
  }
  return "?";
}

/// Everything one shard owns. Constructed inside the (optionally pinned)
/// driver thread so first-touch page placement follows the pin, and
/// destroyed by that same thread on shutdown — except a watchdog-abandoned
/// shard, which is parked in retired_ until its stuck driver winds down.
struct Fleet::Shard {
  std::unique_ptr<Interconnect> interconnect;
  std::unique_ptr<TrafficGenerator> traffic;
  std::unique_ptr<MetricsCollector> metrics;
  std::unique_ptr<util::ThreadPool> pool;  // null when the group is just the driver
  std::unique_ptr<CheckpointStore> store;  // null until open_checkpoints
  /// Always-on trace ring + stage histograms, created once per shard index
  /// and deliberately NOT reset by restarts — a post-crash black box must
  /// show the slots leading up to the crash, not an empty ring.
  std::unique_ptr<obs::FlightRecorder> flight;
  /// Post-mortem handoff for watchdog abandonment: the watchdog may not
  /// touch this shard's ring (its stuck driver may still be writing it), so
  /// it snapshots the supervisor here under mu_ and the ring's owner — the
  /// winding-down driver itself — assembles the dump at join time.
  struct PendingDump {
    const char* reason = "watchdog-stall";
    std::uint64_t slot = 0;
    bool failed = false;  ///< budget exhausted at abandonment
    Supervisor sup;       ///< supervisor snapshot at abandonment
  };
  std::unique_ptr<PendingDump> pending_dump;  // guarded by mu_
  // Reusable per-slot scratch — the zero-allocation warm path.
  std::vector<std::uint8_t> busy;
  std::vector<core::SlotRequest> arrivals;
  SlotStats last;            // most recent slot's accounting
  std::uint64_t total_arrivals = 0;
  std::uint64_t total_granted = 0;
  bool pinned = false;
  std::exception_ptr error;  // first failure; rethrown at the barrier
                             // (unsupervised mode only)
  /// Absolute fleet slots this shard has completed. Written by the driver
  /// outside the lock (one release store per slot — the zero-alloc warm
  /// path), read with acquire by the barrier predicate and the watchdog, so
  /// a reader that observes done==target also observes every non-atomic
  /// field (last, totals, metrics) the driver wrote before publishing.
  std::atomic<std::uint64_t> done{0};
  /// Set by the watchdog when this shard's driver is declared stuck: the
  /// driver must discard its in-flight round and exit; a replacement owns
  /// the shard index from now on.
  std::atomic<bool> abandoned{false};
};

Fleet::Fleet(FleetConfig config) : config_(std::move(config)) {
  WDM_CHECK_MSG(config_.shards > 0, "a fleet needs at least one shard");
  WDM_CHECK_MSG(
      config_.shard_seeds.empty() ||
          config_.shard_seeds.size() == config_.shards,
      "shard_seeds must be empty or name a seed for every shard");
  for (const ShardFaultEvent& event : config_.shard_faults) {
    WDM_CHECK_MSG(event.shard < config_.shards,
                  "shard_faults names a shard the fleet does not have");
  }

  seeds_.resize(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    seeds_[i] = config_.shard_seeds.empty()
                    ? util::derive_stream_seed(config_.seed,
                                               kFleetShardLabel + i)
                    : config_.shard_seeds[i];
  }

  shard_fault_index_.resize(config_.shards);
  for (std::size_t e = 0; e < config_.shard_faults.size(); ++e) {
    shard_fault_index_[config_.shard_faults[e].shard].push_back(e);
  }
  if (!config_.shard_faults.empty()) {
    fault_fired_ =
        std::make_unique<std::atomic<bool>[]>(config_.shard_faults.size());
    for (std::size_t e = 0; e < config_.shard_faults.size(); ++e) {
      fault_fired_[e].store(false, std::memory_order_relaxed);
    }
  }

  supervisors_.resize(config_.shards);
  watchdog_progress_.assign(config_.shards, 0);

  if (!config_.blackbox_dir.empty()) {
    blackbox_ = std::make_unique<obs::BlackBoxWriter>(config_.blackbox_dir);
  }

  // The oversubscription clamp (one pool per shard must not multiply into
  // more workers than the machine has): group size includes the driver.
  group_threads_ = util::ThreadPool::clamped_partition_threads(
      config_.threads_per_shard, config_.shards, config_.max_total_threads);

  shards_.resize(config_.shards);
  drivers_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    drivers_.emplace_back([this, i] { driver_main(i, /*replacement=*/false); });
  }
  // Wait for every driver to pin, build its shard, and check in; surface
  // the first construction failure as our own. Supervision covers serving,
  // not bring-up: a shard that cannot even construct is a config error.
  std::unique_lock lock(mu_);
  done_cv_.wait(lock, [this] { return ready_ == shards_.size(); });
  bool all_pinned = config_.pin_cpus;
  for (auto& shard : shards_) {
    if (shard->error) {
      lock.unlock();
      stop_drivers_and_rethrow(shard->error);
    }
    all_pinned = all_pinned && shard->pinned;
  }
  pinned_ = all_pinned;
}

void Fleet::stop_drivers_and_rethrow(std::exception_ptr error) {
  {
    const std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& d : drivers_) {
    if (d.joinable()) d.join();
  }
  std::rethrow_exception(error);
}

Fleet::~Fleet() {
  {
    const std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // A driver stuck in a genuinely unbounded livelock would block this join
  // forever: the watchdog restores *service* by replacing it, it cannot
  // reclaim the thread. Scripted stalls are finite, so drills and tests
  // always wind down.
  for (auto& d : drivers_) {
    if (d.joinable()) d.join();
  }
}

void Fleet::maybe_pin(std::size_t index, Shard& shard) {
  if (!config_.pin_cpus) return;
  // Contiguous block per shard: groups land side by side, so on NUMA
  // hosts a shard's threads share one node as long as blocks do not
  // straddle a node boundary. Wraps when shards exceed the CPU count.
  const std::size_t cpus = util::available_cpus();
  const std::size_t block = std::max<std::size_t>(
      1, std::min(group_threads_,
                  cpus / std::max<std::size_t>(1, config_.shards)));
  const std::size_t first = (index * block) % cpus;
  shard.pinned = util::pin_current_thread_block(static_cast<int>(first),
                                                static_cast<int>(block));
}

void Fleet::build_shard_state(std::size_t index, Shard& shard) {
  // Per-shard seeding mirrors run_simulation: one seeder per shard, the
  // interconnect and traffic streams drawn from it in a fixed order.
  util::Rng seeder(seeds_[index]);
  InterconnectConfig icfg = config_.interconnect;
  icfg.seed = seeder.next();
  const std::uint64_t traffic_seed = seeder.next();
  shard.interconnect = std::make_unique<Interconnect>(icfg);
  // The fleet's serving contract is zero warm-path allocation, so pay the
  // worst-case arena memory up front rather than absorbing rare per-port
  // high-water reallocations mid-serve.
  shard.interconnect->reserve_worst_case_scratch();
  // The flight recorder outlives restarts (the ring keeps pre-crash
  // history); a rebuilt interconnect just re-attaches to it. Observer only:
  // digests are identical with it on or off.
  if (config_.flight.enabled && shard.flight == nullptr) {
    shard.flight = std::make_unique<obs::FlightRecorder>(config_.flight);
  }
  if (shard.flight != nullptr) {
    shard.interconnect->set_telemetry(&shard.flight->recorder());
  }
  shard.traffic = std::make_unique<TrafficGenerator>(
      icfg.n_fibers, icfg.scheme.k(), config_.traffic, traffic_seed);
  shard.metrics =
      std::make_unique<MetricsCollector>(icfg.n_fibers, icfg.scheme.k());
  // Worst-case scratch: one busy flag and at most one fresh arrival per
  // input channel per slot, so the warm slot loop never reallocates.
  const std::size_t channels = static_cast<std::size_t>(icfg.n_fibers) *
                               static_cast<std::size_t>(icfg.scheme.k());
  shard.busy.reserve(channels);
  shard.arrivals.reserve(channels);
  if (group_threads_ > 1 && shard.pool == nullptr) {
    // Constructed on this (possibly pinned) thread so the workers inherit
    // the affinity mask on Linux; group size counts the driver, hence -1.
    shard.pool = std::make_unique<util::ThreadPool>(group_threads_ - 1);
  }
}

void Fleet::driver_main(std::size_t index, bool replacement) {
  Shard* self = nullptr;
  if (!replacement) {
    auto shard = std::make_unique<Shard>();
    maybe_pin(index, *shard);
    try {
      build_shard_state(index, *shard);
    } catch (...) {
      shard->error = std::current_exception();
    }
    self = shard.get();
    {
      const std::lock_guard lock(mu_);
      shards_[index] = std::move(shard);
      ++ready_;
    }
    done_cv_.notify_all();
  } else {
    // Watchdog replacement: the caller already installed a fresh Shard
    // shell; this thread pins like the original driver and fills it via the
    // restart path (so arenas are first-touched on the replacement thread).
    {
      const std::lock_guard lock(mu_);
      self = shards_[index].get();
    }
    maybe_pin(index, *self);
  }

  std::unique_lock lock(mu_);
  const bool supervised = config_.supervision.enabled;
  for (;;) {
    cv_.wait(lock, [&] {
      if (stop_ || self->abandoned.load(std::memory_order_relaxed)) {
        return true;
      }
      if (!supervised) {
        return self->done.load(std::memory_order_relaxed) < target_slots_;
      }
      const Supervisor& sup = supervisors_[index];
      switch (sup.health) {
        case ShardHealth::kServing:
          return self->done.load(std::memory_order_relaxed) < target_slots_;
        case ShardHealth::kQuarantined:
          return sup.attempts < config_.supervision.restart_budget &&
                 sup.eligible_target <= target_slots_;
        case ShardHealth::kRestarting:
          return true;  // claimed by the watchdog for this thread
        case ShardHealth::kFailed:
          return false;  // parked until stop
      }
      return false;
    });
    if (stop_ || self->abandoned.load(std::memory_order_relaxed)) break;

    if (supervised && supervisors_[index].health != ShardHealth::kServing) {
      attempt_restart(lock, index, *self);
      done_cv_.notify_all();
      continue;
    }

    const std::uint64_t target = target_slots_;
    lock.unlock();
    if (self->error == nullptr) {
      try {
        while (self->done.load(std::memory_order_relaxed) < target &&
               !self->abandoned.load(std::memory_order_relaxed)) {
          run_shard_slot(index, *self);
          // Release-publish: pairs with the acquire loads in
          // barrier_satisfied() so the advance() caller reading
          // done==target also sees this slot's non-atomic shard state.
          self->done.fetch_add(1, std::memory_order_release);
        }
      } catch (...) {
        handle_shard_error(index, *self, std::current_exception());
      }
    }
    lock.lock();
    if (!supervised && self->error != nullptr) {
      // An errored unsupervised shard stops stepping but keeps the barrier.
      self->done.store(target, std::memory_order_release);
    }
    done_cv_.notify_all();
  }
  // A watchdog-abandoned driver assembles the post-mortem the watchdog
  // could not take for it (see Shard::PendingDump) before tearing down on
  // the owning thread (symmetric with construction). The capture runs here,
  // off the serving path — the replacement driver owns the index already —
  // and the writer thread does the disk IO.
  std::unique_ptr<Shard::PendingDump> dump = std::move(self->pending_dump);
  lock.unlock();
  if (dump != nullptr && blackbox_ != nullptr && self->flight != nullptr) {
    blackbox_->enqueue(make_black_box(index, *self, dump->reason,
                                      /*watchdog=*/true, dump->slot,
                                      dump->failed, dump->sup));
  }
  self->pool.reset();
}

void Fleet::maybe_inject_fault(std::size_t index, Shard& shard) {
  const std::vector<std::size_t>& events = shard_fault_index_[index];
  if (events.empty()) return;
  const std::uint64_t slot = shard.done.load(std::memory_order_relaxed);
  for (const std::size_t e : events) {
    const ShardFaultEvent& event = config_.shard_faults[e];
    if (event.slot != slot) continue;
    if (fault_fired_[e].exchange(true, std::memory_order_acq_rel)) continue;
    if (event.kind == ShardFaultKind::kStall) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(event.stall_ns));
    } else {
      throw ShardCrashInjected("injected shard crash (scripted), shard " +
                               std::to_string(index) + " at slot " +
                               std::to_string(slot));
    }
  }
}

void Fleet::run_shard_slot(std::size_t index, Shard& shard) {
  maybe_inject_fault(index, shard);
  shard.interconnect->input_channel_busy_into(shard.busy);
  shard.traffic->next_slot_into(shard.busy, shard.arrivals);
  shard.last = shard.interconnect->step(
      std::span<const core::SlotRequest>(shard.arrivals), shard.pool.get());
  shard.total_arrivals += shard.last.arrivals;
  shard.total_granted += shard.last.granted;
  shard.metrics->record_slot(shard.last);
  const auto& grants = shard.interconnect->last_fiber_grants();
  for (std::int32_t fiber = 0; fiber < shard.interconnect->n_fibers();
       ++fiber) {
    shard.metrics->record_fiber_grants(
        fiber, grants[static_cast<std::size_t>(fiber)]);
  }
}

void Fleet::handle_shard_error(std::size_t index, Shard& shard,
                               std::exception_ptr error) {
  const std::lock_guard lock(mu_);
  if (!config_.supervision.enabled) {
    shard.error = error;
    // Unsupervised crashes still leave forensics: advance() will rethrow,
    // and the black box explains what the shard was doing when it died.
    enqueue_black_box(index, shard, "crash-unsupervised", /*watchdog=*/false,
                      shard.done.load(std::memory_order_relaxed),
                      /*failed=*/false);
    return;
  }
  if (shard.abandoned.load(std::memory_order_relaxed)) {
    // A watchdog-abandoned driver throwing while it drains its in-flight
    // slot is acting on the retired shard: supervisors_[index] belongs to
    // the replacement that now owns the index, so the error is moot.
    return;
  }
  // Supervised: the exception is consumed here — quarantine (or fail when
  // the budget is already gone) instead of poisoning the barrier.
  Supervisor& sup = supervisors_[index];
  const std::uint64_t at = shard.done.load(std::memory_order_relaxed);
  stage_event(obs::EventKind::kShardQuarantine, at, index, sup.attempts,
              /*detail=*/0);
  if (sup.attempts >= config_.supervision.restart_budget) {
    sup.health = ShardHealth::kFailed;
    stage_event(obs::EventKind::kShardFailed, at, index, sup.attempts, 0);
    enqueue_black_box(index, shard, "crash-budget-exhausted",
                      /*watchdog=*/false, at, /*failed=*/true);
  } else {
    sup.health = ShardHealth::kQuarantined;
    const std::uint32_t doublings =
        std::min(sup.attempts, kMaxBackoffDoublings);
    sup.eligible_target =
        at + (config_.supervision.backoff_slots << doublings);
    enqueue_black_box(index, shard, "crash", /*watchdog=*/false, at,
                      /*failed=*/false);
  }
}

void Fleet::attempt_restart(std::unique_lock<std::mutex>& lock,
                            std::size_t index, Shard& shard) {
  Supervisor& sup = supervisors_[index];
  const std::uint64_t target = target_slots_;
  sup.health = ShardHealth::kRestarting;
  ++sup.attempts;
  stage_event(obs::EventKind::kShardRestart, target, index, sup.attempts, 0);
  const bool have_chain = checkpoint_policy_.has_value();
  lock.unlock();

  bool ok = false;
  std::uint64_t recovered_slot = 0;
  std::uint64_t discards = 0;
  std::vector<std::string> discard_reasons;
  try {
    // Fresh state on this thread: the crashed interconnect may be torn
    // mid-step and the pool may hold poisoned workers — rebuild both. The
    // derived seeds make the rebuild bit-identical to the original bring-up.
    shard.pool.reset();
    shard.store.reset();
    shard.interconnect.reset();
    shard.traffic.reset();
    shard.metrics.reset();
    build_shard_state(index, shard);
    if (have_chain) {
      CheckpointPolicy policy = *checkpoint_policy_;
      policy.dir = shard_checkpoint_dir(index);
      RecoveryReport report = recover_latest(policy.dir, *shard.interconnect,
                                             shard.traffic.get());
      discards = report.discarded.size();
      discard_reasons = std::move(report.reasons);
      if (report.recovered) recovered_slot = report.slot;
      // A fresh store never adopts an on-disk chain as a delta base: the
      // first frame after a restart is a full, so the shard's chain re-links
      // with the fleet's cadence going forward.
      shard.store = std::make_unique<CheckpointStore>(policy);
    }
    // Metrics are observers and are not checkpointed: the restarted shard
    // re-accumulates from its recovery slot.
    shard.total_arrivals = 0;
    shard.total_granted = 0;
    shard.done.store(recovered_slot, std::memory_order_release);
    // Replay forward to the fleet slot. Deterministic: the recovered (or
    // fresh) state plus the shard's own seeded streams reproduce exactly
    // the slots an uncrashed shard would have served.
    while (shard.done.load(std::memory_order_relaxed) < target &&
           !shard.abandoned.load(std::memory_order_relaxed)) {
      run_shard_slot(index, shard);
      shard.done.fetch_add(1, std::memory_order_release);
    }
    ok = !shard.abandoned.load(std::memory_order_relaxed);
  } catch (...) {
    ok = false;
  }

  lock.lock();
  recovery_discards_ += discards;
  const std::uint64_t at = shard.done.load(std::memory_order_relaxed);
  // The attempt is history the moment it resolves — the shard's black box
  // manifest replays this list to explain how supervision got here.
  RestartRecord record;
  record.attempt = sup.attempts;
  record.began_at_slot = target;
  record.ok = ok;
  record.recovered_slot = recovered_slot;
  record.discards = discards;
  sup.history.push_back(record);
  constexpr std::size_t kMaxDiscardReasons = 16;
  for (std::string& reason : discard_reasons) {
    if (sup.discard_reasons.size() >= kMaxDiscardReasons) break;
    sup.discard_reasons.push_back(std::move(reason));
  }
  if (ok) {
    sup.health = ShardHealth::kServing;
    ++sup.restarts;
    stage_event(obs::EventKind::kShardRejoin, at, index, recovered_slot, 0);
  } else if (sup.attempts >= config_.supervision.restart_budget) {
    sup.health = ShardHealth::kFailed;
    stage_event(obs::EventKind::kShardFailed, at, index, sup.attempts, 0);
    enqueue_black_box(index, shard, "restart-budget-exhausted",
                      /*watchdog=*/false, at, /*failed=*/true);
  } else {
    sup.health = ShardHealth::kQuarantined;
    stage_event(obs::EventKind::kShardQuarantine, at, index, sup.attempts, 0);
    const std::uint32_t doublings =
        std::min(sup.attempts, kMaxBackoffDoublings);
    sup.eligible_target =
        at + (config_.supervision.backoff_slots << doublings);
    enqueue_black_box(index, shard, "restart-failed", /*watchdog=*/false, at,
                      /*failed=*/false);
  }
}

void Fleet::quarantine_stuck_shard(std::size_t index) {
  Supervisor& sup = supervisors_[index];
  Shard& stuck = *shards_[index];
  stuck.abandoned.store(true, std::memory_order_relaxed);
  const std::uint64_t at = stuck.done.load(std::memory_order_acquire);
  stage_event(obs::EventKind::kShardQuarantine, at, index, sup.attempts,
              /*detail=*/1);
  // The stuck driver may still be mid-step inside the old state, so the
  // old Shard is retired (destroyed only after its thread winds down at
  // shutdown) and a fresh shell takes the index. The shell keeps an empty
  // metrics collector so exports never see a null shard.
  auto shell = std::make_unique<Shard>();
  shell->metrics = std::make_unique<MetricsCollector>(
      config_.interconnect.n_fibers, config_.interconnect.scheme.k());
  if (config_.flight.enabled) {
    shell->flight = std::make_unique<obs::FlightRecorder>(config_.flight);
  }
  retired_.push_back(std::move(shards_[index]));
  shards_[index] = std::move(shell);
  bool failed = false;
  if (sup.attempts >= config_.supervision.restart_budget) {
    sup.health = ShardHealth::kFailed;
    stage_event(obs::EventKind::kShardFailed, at, index, sup.attempts, 1);
    failed = true;
  } else {
    sup.health = ShardHealth::kQuarantined;
    const std::uint32_t doublings =
        std::min(sup.attempts, kMaxBackoffDoublings);
    sup.eligible_target =
        at + (config_.supervision.backoff_slots << doublings);
    drivers_.emplace_back(
        [this, index] { driver_main(index, /*replacement=*/true); });
  }
  // This thread must not snapshot the retired ring (the stuck driver may
  // wake mid-step and still be writing it); leave the supervisor snapshot
  // for the ring's owner to assemble the dump when it winds down.
  if (blackbox_ != nullptr) {
    Shard& old = *retired_.back();
    auto dump = std::make_unique<Shard::PendingDump>();
    dump->slot = at;
    dump->failed = failed;
    dump->sup = sup;
    old.pending_dump = std::move(dump);
  }
}

bool Fleet::barrier_satisfied() const {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (config_.supervision.enabled) {
      const Supervisor& sup = supervisors_[i];
      if (sup.health == ShardHealth::kFailed) continue;
      if (sup.health == ShardHealth::kQuarantined &&
          (sup.attempts >= config_.supervision.restart_budget ||
           sup.eligible_target > target_slots_)) {
        continue;  // backing off: the barrier degrades to the survivors
      }
      if (sup.health == ShardHealth::kRestarting) {
        // The replay inside attempt_restart drives done back up to target,
        // but the rejoin (kServing + restart counters) is published under
        // mu_ after the replay lands. Gating on health — not the raw done
        // counter — keeps advance() from returning mid-rejoin with the
        // shard still counted out of serving.
        return false;
      }
    }
    // Acquire pairs with the drivers' release publications: once every
    // shard reads done >= target here, the caller may touch the shards'
    // non-atomic state (aggregate_last_stats, totals, digests) race-free.
    if (shards_[i]->done.load(std::memory_order_acquire) < target_slots_) {
      return false;
    }
  }
  return true;
}

void Fleet::advance(std::uint64_t slots) {
  if (slots == 0) return;
  std::unique_lock lock(mu_);
  target_slots_ += slots;
  cv_.notify_all();
  const bool watchdog = config_.supervision.enabled &&
                        config_.supervision.watchdog_ns > 0;
  if (!watchdog) {
    done_cv_.wait(lock, [this] { return barrier_satisfied(); });
  } else {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      watchdog_progress_[i] = shards_[i]->done.load(std::memory_order_acquire);
    }
    const auto period =
        std::chrono::nanoseconds(config_.supervision.watchdog_ns);
    while (!barrier_satisfied()) {
      if (done_cv_.wait_for(lock, period,
                            [this] { return barrier_satisfied(); })) {
        break;
      }
      // Deadline passed with the barrier still open: any serving shard that
      // made no slot progress over the whole period is stuck or livelocked.
      // (Quarantined shards are excluded already; restarting shards are
      // exempt — recovery does file IO that is not slot progress.)
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        if (supervisors_[i].health != ShardHealth::kServing) continue;
        const std::uint64_t done =
            shards_[i]->done.load(std::memory_order_acquire);
        if (done >= target_slots_) continue;
        if (done != watchdog_progress_[i]) {
          watchdog_progress_[i] = done;
          continue;
        }
        quarantine_stuck_shard(i);
      }
    }
  }
  slot_ = target_slots_;
  if (!config_.supervision.enabled) {
    for (auto& shard : shards_) {
      if (shard->error) {
        const std::exception_ptr error = shard->error;
        lock.unlock();
        std::rethrow_exception(error);
      }
    }
  }
  // Drain staged supervision events on the caller thread — the recorder is
  // single-writer and this is the only thread that ever writes it.
  if (telemetry_ != nullptr && !pending_obs_.empty()) {
    for (const obs::TraceEvent& event : pending_obs_) {
      telemetry_->record(event);
    }
    pending_obs_.clear();
  }
}

void Fleet::aggregate_last_stats() {
  // Aggregate outside the barrier on the caller: SmallVec-backed per-class
  // columns keep this allocation-free. Only serving shards contribute — a
  // quarantined shard's last slot is stale history.
  last_stats_ = SlotStats{};
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (config_.supervision.enabled &&
        supervisors_[i].health != ShardHealth::kServing) {
      continue;
    }
    last_stats_.add(shards_[i]->last);
  }
}

void Fleet::step() {
  advance(1);
  aggregate_last_stats();
}

void Fleet::run(std::uint64_t slots) {
  advance(slots);
  aggregate_last_stats();
}

std::uint64_t Fleet::shard_seed(std::size_t shard) const {
  WDM_CHECK_MSG(shard < seeds_.size(), "shard index out of range");
  return seeds_[shard];
}

std::uint64_t Fleet::total_arrivals() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->total_arrivals;
  return total;
}

std::uint64_t Fleet::total_granted() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->total_granted;
  return total;
}

void Fleet::reset_counters() {
  for (auto& shard : shards_) {
    shard->metrics = std::make_unique<MetricsCollector>(
        config_.interconnect.n_fibers, config_.interconnect.scheme.k());
    shard->total_arrivals = 0;
    shard->total_granted = 0;
  }
}

const Interconnect& Fleet::shard_interconnect(std::size_t shard) const {
  WDM_CHECK_MSG(shard < shards_.size(), "shard index out of range");
  WDM_CHECK_MSG(shards_[shard]->interconnect != nullptr,
                "shard has no live state (failed before restart)");
  return *shards_[shard]->interconnect;
}

const MetricsCollector& Fleet::shard_metrics(std::size_t shard) const {
  WDM_CHECK_MSG(shard < shards_.size(), "shard index out of range");
  return *shards_[shard]->metrics;
}

MetricsCollector Fleet::merged_metrics() const {
  MetricsCollector merged(config_.interconnect.n_fibers,
                          config_.interconnect.scheme.k());
  for (const auto& shard : shards_) merged.merge(*shard->metrics);
  return merged;
}

std::uint64_t Fleet::fleet_digest() const {
  // FNV-1a64 over the ordered little-endian shard digests: shard order is
  // part of the fingerprint (shard i is a distinct seeded stream).
  std::vector<std::uint8_t> bytes;
  bytes.reserve(shards_.size() * 8);
  for (const auto& shard : shards_) {
    std::uint64_t d = shard->interconnect != nullptr
                          ? state_digest(*shard->interconnect)
                          : kDeadShardDigest;
    for (int b = 0; b < 8; ++b) {
      bytes.push_back(static_cast<std::uint8_t>(d & 0xff));
      d >>= 8;
    }
  }
  return util::fnv1a64(bytes);
}

ShardHealth Fleet::shard_health(std::size_t shard) const {
  WDM_CHECK_MSG(shard < supervisors_.size(), "shard index out of range");
  const std::lock_guard lock(mu_);
  return supervisors_[shard].health;
}

std::uint64_t Fleet::shard_restarts(std::size_t shard) const {
  WDM_CHECK_MSG(shard < supervisors_.size(), "shard index out of range");
  const std::lock_guard lock(mu_);
  return supervisors_[shard].restarts;
}

std::uint64_t Fleet::total_restarts() const {
  const std::lock_guard lock(mu_);
  std::uint64_t total = 0;
  for (const Supervisor& sup : supervisors_) total += sup.restarts;
  return total;
}

std::size_t Fleet::serving_shards() const {
  const std::lock_guard lock(mu_);
  std::size_t serving = 0;
  for (const Supervisor& sup : supervisors_) {
    if (sup.health == ShardHealth::kServing) ++serving;
  }
  return serving;
}

std::uint64_t Fleet::recovery_discards() const {
  const std::lock_guard lock(mu_);
  return recovery_discards_;
}

void Fleet::set_telemetry(obs::TraceRecorder* recorder) {
  const std::lock_guard lock(mu_);
  telemetry_ = recorder;
}

void Fleet::stage_event(obs::EventKind kind, std::uint64_t slot,
                        std::size_t shard, std::uint64_t b,
                        std::uint8_t detail) {
  if (telemetry_ == nullptr) return;
  obs::TraceEvent event;
  event.ts_ns = util::now_ns();
  event.slot = slot;
  event.a = shard;
  event.b = b;
  event.fiber = -1;
  event.kind = kind;
  event.detail = detail;
  pending_obs_.push_back(event);
}

obs::BlackBoxDump Fleet::make_black_box(std::size_t index, Shard& shard,
                                        const char* reason, bool watchdog,
                                        std::uint64_t at, bool failed,
                                        const Supervisor& sup) const {
  obs::BlackBoxDump dump;
  dump.name = "shard-" + std::to_string(index) + "-slot-" + std::to_string(at);

  const obs::TraceRecorder& recorder = shard.flight->recorder();
  recorder.snapshot(dump.events);
  // Append the supervision trigger so the trace explains itself: the last
  // record in the black box is always the decision that caused the dump.
  obs::TraceEvent trigger;
  trigger.ts_ns = util::now_ns();
  trigger.slot = at;
  trigger.a = index;
  trigger.b = sup.attempts;
  trigger.fiber = -1;
  trigger.kind = failed ? obs::EventKind::kShardFailed
                        : obs::EventKind::kShardQuarantine;
  trigger.detail = watchdog ? 1 : 0;
  dump.events.push_back(trigger);

  // metrics.prom: the standard counter set (so scripts/check_telemetry.py
  // validates it unchanged), the stage latency histograms, and the
  // supervision counters at dump time.
  const std::string shard_label = obs::label("shard", std::to_string(index));
  if (shard.metrics != nullptr) {
    register_metrics(dump.metrics, *shard.metrics);
  }
  obs::register_recorder(dump.metrics, recorder);
  dump.metrics.gauge("wdm_shard_health",
                     "Shard supervision state (0=serving 1=quarantined "
                     "2=restarting 3=failed)",
                     static_cast<double>(static_cast<std::uint8_t>(sup.health)),
                     shard_label);
  dump.metrics.counter("wdm_shard_restarts",
                       "Successful restarts of this shard", sup.restarts,
                       shard_label);
  dump.metrics.counter("wdm_shard_restart_attempts",
                       "Restart attempts consumed by this shard", sup.attempts,
                       shard_label);

  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"wdm-blackbox-v1\",\n"
     << "  \"shard\": " << index << ",\n"
     << "  \"slot\": " << at << ",\n"
     << "  \"reason\": \"" << obs::json_escape(reason) << "\",\n"
     << "  \"watchdog\": " << (watchdog ? "true" : "false") << ",\n"
     << "  \"health\": \"" << to_string(sup.health) << "\",\n"
     << "  \"shard_seed\": " << seeds_[index] << ",\n"
     << "  \"attempts\": " << sup.attempts << ",\n"
     << "  \"restarts\": " << sup.restarts << ",\n"
     << "  \"restart_budget\": " << config_.supervision.restart_budget << ",\n"
     << "  \"backoff_slots\": " << config_.supervision.backoff_slots << ",\n"
     << "  \"eligible_slot\": " << sup.eligible_target << ",\n"
     << "  \"trace_events\": " << recorder.recorded() << ",\n"
     << "  \"trace_dropped\": " << recorder.dropped() << ",\n"
     << "  \"restart_history\": [";
  for (std::size_t r = 0; r < sup.history.size(); ++r) {
    const RestartRecord& rec = sup.history[r];
    os << (r == 0 ? "\n" : ",\n")
       << "    {\"attempt\": " << rec.attempt
       << ", \"began_at_slot\": " << rec.began_at_slot
       << ", \"ok\": " << (rec.ok ? "true" : "false")
       << ", \"recovered_slot\": " << rec.recovered_slot
       << ", \"discards\": " << rec.discards << "}";
  }
  os << (sup.history.empty() ? "],\n" : "\n  ],\n")
     << "  \"recovery_discard_reasons\": [";
  for (std::size_t r = 0; r < sup.discard_reasons.size(); ++r) {
    os << (r == 0 ? "\n" : ",\n") << "    \""
       << obs::json_escape(sup.discard_reasons[r]) << '"';
  }
  os << (sup.discard_reasons.empty() ? "]\n" : "\n  ]\n") << "}\n";
  dump.manifest_json = os.str();
  return dump;
}

void Fleet::enqueue_black_box(std::size_t index, Shard& shard,
                              const char* reason, bool watchdog,
                              std::uint64_t at, bool failed) {
  if (blackbox_ == nullptr || shard.flight == nullptr) return;
  blackbox_->enqueue(make_black_box(index, shard, reason, watchdog, at,
                                    failed, supervisors_[index]));
}

const obs::FlightRecorder* Fleet::shard_flight(std::size_t shard) const {
  WDM_CHECK_MSG(shard < shards_.size(), "shard index out of range");
  return shards_[shard]->flight.get();
}

std::uint64_t Fleet::black_box_dumps() const {
  return blackbox_ != nullptr ? blackbox_->written() : 0;
}

void Fleet::flush_black_boxes() {
  if (blackbox_ != nullptr) blackbox_->flush();
}

std::string Fleet::shard_checkpoint_dir(std::size_t index) const {
  return checkpoint_policy_->dir + "/shard-" + std::to_string(index);
}

void Fleet::open_checkpoints(const CheckpointPolicy& policy) {
  {
    const std::lock_guard lock(mu_);
    checkpoint_policy_ = policy;
  }
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    CheckpointPolicy shard_policy = policy;
    shard_policy.dir = shard_checkpoint_dir(i);
    shards_[i]->store = std::make_unique<CheckpointStore>(shard_policy);
  }
}

void Fleet::write_checkpoint() {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    if (config_.supervision.enabled) {
      const std::lock_guard lock(mu_);
      if (supervisors_[i].health != ShardHealth::kServing) continue;
    }
    Shard& shard = *shards_[i];
    WDM_CHECK_MSG(shard.store != nullptr,
                  "write_checkpoint needs open_checkpoints first");
    shard.store->write(*shard.interconnect, shard.traffic.get());
  }
}

FleetRecovery Fleet::resume_from(const std::string& dir) {
  FleetRecovery out;
  out.shards.reserve(shards_.size());
  bool all = true;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    RecoveryReport report =
        recover_latest(dir + "/shard-" + std::to_string(i),
                       *shards_[i]->interconnect, shards_[i]->traffic.get());
    all = all && report.recovered;
    out.shards.push_back(std::move(report));
  }
  // A crash can land mid write_checkpoint, leaving some shards one frame
  // ahead of others. Negotiate the newest slot every chain can agree on:
  // re-recover any shard ahead of the minimum, bounded to it. The minimum
  // can only move down, so this converges in at most `shards` rounds.
  while (all) {
    std::uint64_t min_slot = out.shards.front().slot;
    bool agree = true;
    for (const auto& report : out.shards) {
      agree = agree && report.slot == out.shards.front().slot;
      min_slot = std::min(min_slot, report.slot);
    }
    if (agree) break;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (out.shards[i].slot <= min_slot) continue;
      out.shards[i] = recover_latest(
          dir + "/shard-" + std::to_string(i), *shards_[i]->interconnect,
          shards_[i]->traffic.get(), min_slot);
      all = all && out.shards[i].recovered;
    }
  }
  {
    const std::lock_guard lock(mu_);
    for (const auto& report : out.shards) {
      recovery_discards_ += report.discarded.size();
    }
  }
  if (!all) return out;
  const std::uint64_t slot = out.shards.front().slot;
  out.recovered = true;
  out.slot = slot;
  {
    const std::lock_guard lock(mu_);
    // Re-seat the barrier at the restored slot: done counters are absolute
    // fleet slots, and the restored interconnects sit exactly there.
    target_slots_ = slot;
    for (auto& shard : shards_) {
      shard->done.store(slot, std::memory_order_relaxed);
    }
  }
  slot_ = slot;
  return out;
}

}  // namespace wdm::sim
