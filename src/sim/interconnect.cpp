#include "sim/interconnect.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace wdm::sim {

Interconnect::Interconnect(InterconnectConfig config)
    : config_(std::move(config)),
      scheduler_(config_.n_fibers, config_.scheme, config_.algorithm,
                 config_.arbitration, config_.seed) {
  WDM_CHECK_MSG(config_.n_fibers > 0, "need at least one fiber");
  if (config_.converter_budget >= 0) {
    scheduler_.set_converter_budget(config_.converter_budget);
  }
  out_state_.assign(
      static_cast<std::size_t>(config_.n_fibers),
      std::vector<ChannelState>(static_cast<std::size_t>(k())));
  const auto n_input_channels = static_cast<std::size_t>(config_.n_fibers) *
                                static_cast<std::size_t>(k());
  input_remaining_.assign(n_input_channels, 0);
  last_fiber_grants_.assign(static_cast<std::size_t>(config_.n_fibers), 0);
}

std::uint64_t Interconnect::busy_output_channels() const noexcept {
  std::uint64_t busy = 0;
  for (const auto& fiber : out_state_) {
    for (const auto& ch : fiber) busy += ch.remaining > 0 ? 1u : 0u;
  }
  return busy;
}

void Interconnect::age_connections() {
  for (auto& fiber : out_state_) {
    for (auto& ch : fiber) {
      if (ch.remaining > 0) {
        ch.remaining -= 1;
        if (ch.remaining == 0) ch = ChannelState{};
      }
    }
  }
  for (auto& remaining : input_remaining_) {
    if (remaining > 0) remaining -= 1;
  }
}

std::vector<std::uint8_t> Interconnect::input_channel_busy() const {
  std::vector<std::uint8_t> busy(input_remaining_.size(), 0);
  for (std::size_t i = 0; i < input_remaining_.size(); ++i) {
    // Busy *next* slot: the connection survives the upcoming aging tick.
    busy[i] = input_remaining_[i] > 1 ? 1 : 0;
  }
  return busy;
}

void Interconnect::occupy(std::int32_t output_fiber, core::Channel channel,
                          const core::SlotRequest& request,
                          std::int32_t remaining) {
  auto& ch = out_state_[static_cast<std::size_t>(output_fiber)]
                       [static_cast<std::size_t>(channel)];
  WDM_CHECK_MSG(ch.remaining == 0, "granted channel is already occupied");
  ch = ChannelState{remaining, request.input_fiber, request.wavelength,
                    request.id};
  const std::size_t in = static_cast<std::size_t>(request.input_fiber) *
                             static_cast<std::size_t>(k()) +
                         static_cast<std::size_t>(request.wavelength);
  input_remaining_[in] = remaining;
}

std::vector<std::vector<std::uint8_t>> Interconnect::availability() const {
  std::vector<std::vector<std::uint8_t>> masks(
      static_cast<std::size_t>(config_.n_fibers),
      std::vector<std::uint8_t>(static_cast<std::size_t>(k()), 1));
  for (std::size_t fiber = 0; fiber < out_state_.size(); ++fiber) {
    for (std::size_t ch = 0; ch < out_state_[fiber].size(); ++ch) {
      if (out_state_[fiber][ch].remaining > 0) masks[fiber][ch] = 0;
    }
  }
  return masks;
}

SlotStats Interconnect::step(std::span<const core::SlotRequest> arrivals,
                             util::ThreadPool* pool) {
  age_connections();
  last_fiber_grants_.assign(last_fiber_grants_.size(), 0);
  return config_.policy == OccupiedPolicy::kNoDisturb
             ? step_no_disturb(arrivals, pool)
             : step_rearrange(arrivals, pool);
}

void Interconnect::schedule_new_arrivals(
    std::span<const core::SlotRequest> arrivals, util::ThreadPool* pool,
    SlotStats& stats) {
  stats.arrivals += arrivals.size();

  // Per-request validation of externally supplied data (trace replay, user
  // workloads): a malformed request is dropped and counted, never thrown on.
  // The scheduler re-validates what it can see, but the input-fiber upper
  // bound — needed before occupy() touches per-input-channel state — is only
  // known here.
  std::vector<core::SlotRequest> valid;
  valid.reserve(arrivals.size());
  for (const auto& r : arrivals) {
    const bool ok = r.input_fiber >= 0 && r.input_fiber < config_.n_fibers &&
                    r.output_fiber >= 0 && r.output_fiber < config_.n_fibers &&
                    r.wavelength >= 0 && r.wavelength < k() &&
                    r.duration >= 1 && r.priority >= 0;
    if (!ok) {
      stats.rejected += 1;
      stats.rejected_malformed += 1;
      continue;
    }
    valid.push_back(r);
  }

  // Partition by QoS class (strict priority, 0 = highest); the common
  // single-class case stays a single scheduling pass.
  std::int32_t max_class = 0;
  for (const auto& r : valid) {
    max_class = std::max(max_class, r.priority);
  }
  if (!valid.empty()) {
    // Always record per-class; a multi-class *run* can still have
    // single-class slots, and the driver must see them (it collapses the
    // vectors at report time if the whole run was single-class).
    stats.arrivals_per_class.resize(static_cast<std::size_t>(max_class) + 1, 0);
    stats.granted_per_class.resize(static_cast<std::size_t>(max_class) + 1, 0);
  }

  for (std::int32_t cls = 0; cls <= max_class; ++cls) {
    std::vector<core::SlotRequest> batch;
    for (const auto& r : valid) {
      if (r.priority == cls) batch.push_back(r);
    }
    if (batch.empty()) continue;
    stats.arrivals_per_class[static_cast<std::size_t>(cls)] += batch.size();
    // Availability reflects everything higher classes just took.
    const auto masks = availability();
    const auto decisions = scheduler_.schedule_slot(batch, &masks, pool);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (!decisions[i].granted) {
        stats.rejected += 1;
        if (core::is_malformed(decisions[i].reason)) {
          stats.rejected_malformed += 1;
        }
        continue;
      }
      stats.granted += 1;
      stats.granted_per_class[static_cast<std::size_t>(cls)] += 1;
      occupy(batch[i].output_fiber, decisions[i].channel, batch[i],
             batch[i].duration);
      last_fiber_grants_[static_cast<std::size_t>(batch[i].output_fiber)] += 1;
    }
  }
}

SlotStats Interconnect::step_no_disturb(
    std::span<const core::SlotRequest> arrivals, util::ThreadPool* pool) {
  SlotStats stats;
  schedule_new_arrivals(arrivals, pool, stats);
  stats.busy_channels = busy_output_channels();
  return stats;
}

SlotStats Interconnect::step_rearrange(
    std::span<const core::SlotRequest> arrivals, util::ThreadPool* pool) {
  SlotStats stats;

  // Phase 1: lift ongoing connections out of the fabric and re-schedule them
  // with the whole fiber free. They were simultaneously placed a slot ago,
  // so a full placement exists and the maximum matching saturates them all.
  std::vector<core::SlotRequest> continuing;
  std::vector<std::int32_t> continuing_remaining;
  for (std::size_t fiber = 0; fiber < out_state_.size(); ++fiber) {
    for (auto& ch : out_state_[fiber]) {
      if (ch.remaining == 0) continue;
      continuing.push_back(core::SlotRequest{
          ch.input_fiber, ch.wavelength, static_cast<std::int32_t>(fiber),
          ch.id, ch.remaining});
      continuing_remaining.push_back(ch.remaining);
      ch = ChannelState{};
    }
  }
  if (!continuing.empty()) {
    const auto decisions = scheduler_.schedule_slot(continuing, nullptr, pool);
    for (std::size_t i = 0; i < continuing.size(); ++i) {
      if (decisions[i].granted) {
        occupy(continuing[i].output_fiber, decisions[i].channel, continuing[i],
               continuing_remaining[i]);
      } else {
        // Cannot happen for a maximum matching (see above); accounted
        // defensively so a scheduler bug surfaces in the metrics.
        stats.preempted += 1;
      }
    }
  }

  // Phase 2: new arrivals compete for the channels left over.
  schedule_new_arrivals(arrivals, pool, stats);
  stats.busy_channels = busy_output_channels();
  return stats;
}

}  // namespace wdm::sim
