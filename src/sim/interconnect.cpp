#include "sim/interconnect.hpp"

#include <algorithm>
#include <bit>

#include "core/wave_mask.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace wdm::sim {

namespace {

/// Label for the fault injector's RNG substream (see util::derive_stream_seed):
/// independent of the scheduler streams that consume the config seed itself.
constexpr std::uint64_t kFaultStreamLabel = 0xFA171ULL;

}  // namespace

Interconnect::Interconnect(InterconnectConfig config)
    : config_(std::move(config)),
      scheduler_(config_.n_fibers, config_.scheme, config_.algorithm,
                 config_.arbitration, config_.seed) {
  WDM_CHECK_MSG(config_.n_fibers > 0, "need at least one fiber");
  WDM_CHECK_MSG(config_.retry.max_retries >= 0 &&
                    config_.retry.backoff_base >= 1 &&
                    config_.retry.backoff_factor >= 1,
                "retry config: max_retries >= 0, backoff >= 1");
  if (config_.converter_budget >= 0) {
    scheduler_.set_converter_budget(config_.converter_budget);
  }
  if (config_.faults.enabled()) {
    faults_ = std::make_unique<FaultInjector>(
        config_.n_fibers, k(), config_.faults,
        util::derive_stream_seed(config_.seed, kFaultStreamLabel));
  }
  WDM_CHECK_MSG(config_.degrade.recovery_slots >= 1,
                "degrade config: recovery_slots >= 1");
  if (config_.admission.enabled) {
    admission_ =
        std::make_unique<AdmissionControl>(config_.n_fibers, config_.admission);
  }
  const auto n_channels = static_cast<std::size_t>(config_.n_fibers) *
                          static_cast<std::size_t>(k());
  out_remaining_.assign(n_channels, 0);
  out_input_fiber_.assign(n_channels, core::kNone);
  out_wavelength_.assign(n_channels, core::kNone);
  out_id_.assign(n_channels, 0);
  avail_.assign(n_channels, 1);  // N*k output plane, all channels free
  const std::size_t wpf = core::mask_words(k());
  avail_bits_.assign(static_cast<std::size_t>(config_.n_fibers) * wpf, 0);
  for (std::int32_t fiber = 0; fiber < config_.n_fibers; ++fiber) {
    core::mask_fill(avail_bits_.data() + static_cast<std::size_t>(fiber) * wpf,
                    k());
  }
  input_remaining_.assign(n_channels, 0);
  last_fiber_grants_.assign(static_cast<std::size_t>(config_.n_fibers), 0);
  fiber_grants_in_.assign(static_cast<std::size_t>(config_.n_fibers), 0);
  charge_order_.assign(static_cast<std::size_t>(config_.n_fibers), 0);

  // Pre-size the per-slot scratch to its worst case so the warm step path
  // never reallocates mid-run: per-slot arrivals and lifted connections are
  // both bounded by the N*k channel count. Without this, high-water creep
  // under random traffic (a slot that beats every previous slot's arrival
  // or active-connection count) costs a rare mid-run reallocation, which
  // breaks the fleet-level zero-allocation contract
  // (tests/test_zero_alloc.cpp drives a live 4-shard fleet).
  valid_.reserve(n_channels);
  batch_.reserve(n_channels);
  decisions_.reserve(n_channels);
  continuing_.reserve(n_channels);
  continuing_remaining_.reserve(n_channels);
  batch_flags_.reserve(n_channels);
  if (config_.retry.max_retries > 0) {
    retry_queue_.reserve(config_.retry.queue_capacity);
    due_.reserve(config_.retry.queue_capacity);
    retry_later_.reserve(config_.retry.queue_capacity);
  }
  if (config_.admission.enabled) {
    released_.reserve(config_.admission.queue_capacity);
  }
}

void Interconnect::reserve_worst_case_scratch() {
  // Worst slot batch: every input channel offers a fresh request and both
  // bounded queues drain entirely into the same slot — and all of it can
  // target a single output fiber.
  std::size_t worst = static_cast<std::size_t>(config_.n_fibers) *
                      static_cast<std::size_t>(k());
  if (config_.retry.max_retries > 0) worst += config_.retry.queue_capacity;
  if (config_.admission.enabled) worst += config_.admission.queue_capacity;
  scheduler_.reserve_batches(worst);
}

void Interconnect::set_deadline_script(
    const std::vector<std::uint64_t>* script) noexcept {
  deadline_script_ = script;
  script_cursor_ = 0;
  if (script != nullptr) {
    script_cursor_ = static_cast<std::size_t>(
        std::lower_bound(script->begin(), script->end(), slot_) -
        script->begin());
  }
}

std::uint64_t Interconnect::busy_output_channels() const noexcept {
  // busy = Nk − free, one popcount per mask word of the maintained bit plane.
  std::int32_t free_channels = 0;
  const std::size_t wpf = core::mask_words(k());
  for (std::int32_t fiber = 0; fiber < config_.n_fibers; ++fiber) {
    free_channels += core::mask_popcount(
        avail_bits_.data() + static_cast<std::size_t>(fiber) * wpf, k());
  }
  return static_cast<std::uint64_t>(config_.n_fibers) *
             static_cast<std::uint64_t>(k()) -
         static_cast<std::uint64_t>(free_channels);
}

void Interconnect::age_connections() {
  const std::int32_t kk = k();
  const std::size_t wpf = core::mask_words(kk);
  // Branchless decrement sweep over the whole SoA remaining column (the
  // compiler vectorizes it), collecting the channels that just expired into
  // a per-word bitmask; only those take the scattered release writes.
  for (std::int32_t fiber = 0; fiber < config_.n_fibers; ++fiber) {
    const std::size_t base =
        static_cast<std::size_t>(fiber) * static_cast<std::size_t>(kk);
    std::uint64_t* bits =
        avail_bits_.data() + static_cast<std::size_t>(fiber) * wpf;
    for (std::size_t wi = 0; wi < wpf; ++wi) {
      const std::size_t lo = wi << 6;
      const std::size_t lanes =
          std::min<std::size_t>(64, static_cast<std::size_t>(kk) - lo);
      std::uint64_t freed = 0;
      for (std::size_t b = 0; b < lanes; ++b) {
        const std::int32_t r = out_remaining_[base + lo + b];
        out_remaining_[base + lo + b] = r - (r > 0 ? 1 : 0);
        freed |= static_cast<std::uint64_t>(r == 1) << b;
      }
      bits[wi] |= freed;
      while (freed != 0) {
        const int b = std::countr_zero(freed);
        freed &= freed - 1;
        const std::size_t i = base + lo + static_cast<std::size_t>(b);
        out_input_fiber_[i] = core::kNone;
        out_wavelength_[i] = core::kNone;
        out_id_[i] = 0;
        avail_[i] = 1;
      }
    }
  }
  for (auto& remaining : input_remaining_) {
    remaining -= remaining > 0 ? 1 : 0;
  }
}

std::vector<std::uint8_t> Interconnect::input_channel_busy() const {
  std::vector<std::uint8_t> busy;
  input_channel_busy_into(busy);
  return busy;
}

void Interconnect::input_channel_busy_into(
    std::vector<std::uint8_t>& out) const {
  out.resize(input_remaining_.size());
  for (std::size_t i = 0; i < input_remaining_.size(); ++i) {
    // Busy *next* slot: the connection survives the upcoming aging tick.
    out[i] = input_remaining_[i] > 1 ? 1 : 0;
  }
}

void Interconnect::release_input(std::int32_t input_fiber,
                                 core::Wavelength wavelength) {
  const std::size_t in = static_cast<std::size_t>(input_fiber) *
                             static_cast<std::size_t>(k()) +
                         static_cast<std::size_t>(wavelength);
  input_remaining_[in] = 0;
}

void Interconnect::occupy(std::int32_t output_fiber, core::Channel channel,
                          const core::SlotRequest& request,
                          std::int32_t remaining) {
  const std::size_t i = static_cast<std::size_t>(output_fiber) *
                            static_cast<std::size_t>(k()) +
                        static_cast<std::size_t>(channel);
  WDM_CHECK_MSG(out_remaining_[i] == 0, "granted channel is already occupied");
  out_remaining_[i] = remaining;
  out_input_fiber_[i] = request.input_fiber;
  out_wavelength_[i] = request.wavelength;
  out_id_[i] = request.id;
  avail_[i] = 0;
  core::mask_clear(avail_bits_.data() + static_cast<std::size_t>(output_fiber) *
                                            core::mask_words(k()),
                   channel);
  const std::size_t in = static_cast<std::size_t>(request.input_fiber) *
                             static_cast<std::size_t>(k()) +
                         static_cast<std::size_t>(request.wavelength);
  input_remaining_[in] = remaining;
}

std::vector<std::vector<std::uint8_t>> Interconnect::availability() const {
  const auto kk = static_cast<std::size_t>(k());
  std::vector<std::vector<std::uint8_t>> masks(
      static_cast<std::size_t>(config_.n_fibers),
      std::vector<std::uint8_t>(kk, 1));
  for (std::size_t fiber = 0; fiber < masks.size(); ++fiber) {
    for (std::size_t ch = 0; ch < kk; ++ch) {
      if (out_remaining_[fiber * kk + ch] > 0) masks[fiber][ch] = 0;
    }
  }
  return masks;
}

void Interconnect::teardown_faulted(
    const std::vector<core::HealthMask>& health, SlotStats& stats) {
  const auto kk = static_cast<std::size_t>(k());
  const std::size_t wpf = core::mask_words(k());
  for (std::size_t fiber = 0; fiber < health.size(); ++fiber) {
    const auto& mask = health[fiber];
    for (std::size_t u = 0; u < kk; ++u) {
      const std::size_t i = fiber * kk + u;
      if (out_remaining_[i] == 0) continue;
      const auto channel_health = mask.channel(static_cast<core::Channel>(u));
      // A converter fault only kills connections that are actually
      // converting; a straight-through connection (wavelength == channel)
      // keeps flowing without the converter.
      const bool dead =
          mask.fiber_faulted ||
          channel_health == core::ChannelHealth::kChannelFaulted ||
          (channel_health == core::ChannelHealth::kConverterFaulted &&
           out_wavelength_[i] != static_cast<core::Wavelength>(u));
      if (!dead) continue;
      stats.dropped_faulted += 1;
      release_input(out_input_fiber_[i], out_wavelength_[i]);
      out_remaining_[i] = 0;
      out_input_fiber_[i] = core::kNone;
      out_wavelength_[i] = core::kNone;
      out_id_[i] = 0;
      avail_[i] = 1;
      core::mask_set(avail_bits_.data() + fiber * wpf,
                     static_cast<std::int32_t>(u));
    }
  }
}

Interconnect::Defer Interconnect::try_defer(const core::SlotRequest& request,
                                            std::int32_t attempts,
                                            SlotStats& stats) {
  if (attempts >= config_.retry.max_retries) return Defer::kBudgetExhausted;
  if (retry_queue_.size() >= config_.retry.queue_capacity) {
    return Defer::kQueueFull;
  }
  // Exponential backoff, capped so the delay arithmetic cannot overflow.
  std::uint64_t delay = static_cast<std::uint64_t>(config_.retry.backoff_base);
  for (std::int32_t a = 0; a < attempts && delay < (1ULL << 20); ++a) {
    delay *= static_cast<std::uint64_t>(config_.retry.backoff_factor);
  }
  retry_queue_.push_back(PendingRetry{request, attempts + 1, slot_ + delay});
  stats.deferred_faulted += 1;
  return Defer::kParked;
}

void Interconnect::count_rejection(const core::SlotRequest& request,
                                   core::RejectReason reason,
                                   std::int32_t attempts, SlotStats& stats) {
  if (reason == core::RejectReason::kFaulted) {
    switch (try_defer(request, attempts, stats)) {
      case Defer::kParked:
        return;
      case Defer::kBudgetExhausted:
        stats.rejected += 1;
        stats.rejected_faulted += 1;
        return;
      case Defer::kQueueFull:
        // The hardware fault is real, but the drop happened because the
        // retry queue is at its cap — a load condition, counted as an
        // overload shed so the conservation law stays exact at the cap.
        stats.rejected += 1;
        stats.shed_overload += 1;
        return;
    }
  }
  stats.rejected += 1;
  if (core::is_malformed(reason)) stats.rejected_malformed += 1;
}

SlotStats Interconnect::step(std::span<const core::SlotRequest> arrivals,
                             util::ThreadPool* pool) {
  return step_impl(arrivals, pool, nullptr);
}

SlotStats Interconnect::step_batch(
    std::span<const std::vector<core::SlotRequest>> slots,
    util::ThreadPool* pool, std::span<SlotStats> per_slot) {
  WDM_CHECK_MSG(per_slot.empty() || per_slot.size() == slots.size(),
                "per_slot must be empty or one entry per slot");
  // One-pass branchless pre-validation of the whole window. Same predicate,
  // same outcome per request as the inline check in schedule_new_arrivals —
  // only the control flow is hoisted out of the per-slot loop.
  std::size_t total = 0;
  for (const auto& s : slots) total += s.size();
  batch_flags_.resize(total);
  const std::int32_t n = config_.n_fibers;
  const std::int32_t kk = k();
  std::size_t pos = 0;
  for (const auto& s : slots) {
    for (const auto& r : s) {
      batch_flags_[pos++] = static_cast<std::uint8_t>(
          static_cast<int>(r.input_fiber >= 0) &
          static_cast<int>(r.input_fiber < n) &
          static_cast<int>(r.output_fiber >= 0) &
          static_cast<int>(r.output_fiber < n) &
          static_cast<int>(r.wavelength >= 0) &
          static_cast<int>(r.wavelength < kk) &
          static_cast<int>(r.duration >= 1) &
          static_cast<int>(r.priority >= 0));
    }
  }

  SlotStats sum;
  std::size_t offset = 0;
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const SlotStats stats =
        step_impl(slots[s], pool, batch_flags_.data() + offset);
    offset += slots[s].size();
    sum.arrivals += stats.arrivals;
    sum.granted += stats.granted;
    sum.rejected += stats.rejected;
    sum.rejected_malformed += stats.rejected_malformed;
    sum.rejected_faulted += stats.rejected_faulted;
    sum.shed_overload += stats.shed_overload;
    sum.deferred_faulted += stats.deferred_faulted;
    sum.deferred_overload += stats.deferred_overload;
    sum.ingress_releases += stats.ingress_releases;
    sum.degraded_ports += stats.degraded_ports;
    sum.retry_attempts += stats.retry_attempts;
    sum.retry_successes += stats.retry_successes;
    sum.preempted += stats.preempted;
    sum.dropped_faulted += stats.dropped_faulted;
    sum.busy_channels = stats.busy_channels;  // last slot's occupancy
    if (stats.arrivals_per_class.size() > sum.arrivals_per_class.size()) {
      sum.arrivals_per_class.resize(stats.arrivals_per_class.size(), 0);
      sum.granted_per_class.resize(stats.granted_per_class.size(), 0);
    }
    for (std::size_t c = 0; c < stats.arrivals_per_class.size(); ++c) {
      sum.arrivals_per_class[c] += stats.arrivals_per_class[c];
      sum.granted_per_class[c] += stats.granted_per_class[c];
    }
    if (!per_slot.empty()) per_slot[s] = stats;
  }
  return sum;
}

SlotStats Interconnect::step_impl(std::span<const core::SlotRequest> arrivals,
                                  util::ThreadPool* pool,
                                  const std::uint8_t* valid_flags) {
  const bool trace_slots =
      telemetry_ != nullptr && telemetry_->at(obs::TraceDetail::kSlots);
  const std::uint64_t step_t0 = trace_slots ? util::now_ns() : 0;
  scheduler_.set_trace_slot(slot_);

  {
    const obs::StageTimer aging_timer(telemetry_, obs::Stage::kAging, slot_);
    age_connections();
  }
  last_fiber_grants_.assign(last_fiber_grants_.size(), 0);
  fiber_grants_in_.assign(fiber_grants_in_.size(), 0);

  const std::vector<core::HealthMask>* health = nullptr;
  if (faults_ != nullptr) {
    const obs::StageTimer fault_timer(telemetry_, obs::Stage::kFaults, slot_);
    faults_->tick();
    // Healthy slots skip the degraded scheduling path entirely.
    if (faults_->any_fault()) health = &faults_->health();
  }

  SlotStats stats;
  core::SlotBudget budget;
  core::SlotBudget* budget_ptr = nullptr;
  std::uint64_t slot_start_ns = 0;
  if (config_.degrade.enabled()) {
    budget.op_budget = config_.degrade.op_budget;
    if (config_.degrade.slot_deadline_ns > 0 && deadline_script_ == nullptr) {
      slot_start_ns = util::now_ns();
    }
    budget.force_degraded = degraded_mode_;
    // Rotate the budget plan's charge order with the slot counter, so the
    // ports past the budget's edge move around the ring instead of always
    // being the highest-numbered (degradation fairness). slot_ is
    // checkpointed, so replays rotate identically.
    budget.rotation = static_cast<std::int32_t>(
        slot_ % static_cast<std::uint64_t>(config_.n_fibers));
    if (admission_ != nullptr) {
      // Degradation charge order weighted by ingress backlog: output fibers
      // with the deepest parked demand are charged (and so scheduled exact)
      // first; ties keep the rotated ring order. Derived from checkpointed
      // state only — replays rebuild the identical order. Stable insertion
      // sort: N is small and the warm path must not allocate.
      const std::int32_t n = config_.n_fibers;
      for (std::int32_t i = 0; i < n; ++i) {
        charge_order_[static_cast<std::size_t>(i)] =
            static_cast<std::int32_t>((i + budget.rotation) % n);
      }
      for (std::int32_t i = 1; i < n; ++i) {
        const std::int32_t fiber = charge_order_[static_cast<std::size_t>(i)];
        const std::uint32_t depth = admission_->queued_for_output(fiber);
        std::int32_t j = i;
        while (j > 0 &&
               admission_->queued_for_output(
                   charge_order_[static_cast<std::size_t>(j - 1)]) < depth) {
          charge_order_[static_cast<std::size_t>(j)] =
              charge_order_[static_cast<std::size_t>(j - 1)];
          j -= 1;
        }
        charge_order_[static_cast<std::size_t>(j)] = fiber;
      }
      budget.charge_order = charge_order_.data();
    }
    budget_ptr = &budget;
  }
  if (config_.policy == OccupiedPolicy::kNoDisturb) {
    step_no_disturb(arrivals, health, pool, stats, budget_ptr, valid_flags);
  } else {
    step_rearrange(arrivals, health, pool, stats, budget_ptr, valid_flags);
  }
  if (budget_ptr != nullptr) {
    stats.degraded_ports = static_cast<std::uint64_t>(budget.degraded_ports);
    // The slot's wall-clock verdict: measured once here (slot granularity),
    // or taken from the installed script — never both, so a replay is
    // clock-free end to end.
    bool deadline_overrun = false;
    std::uint64_t measured_ns = 0;  // 0 on the scripted (replay) path
    if (config_.degrade.slot_deadline_ns > 0) {
      if (deadline_script_ != nullptr) {
        const auto& script = *deadline_script_;
        while (script_cursor_ < script.size() &&
               script[script_cursor_] < slot_) {
          script_cursor_ += 1;
        }
        if (script_cursor_ < script.size() &&
            script[script_cursor_] == slot_) {
          deadline_overrun = true;
          script_cursor_ += 1;
        }
      } else {
        measured_ns = util::now_ns() - slot_start_ns;
        deadline_overrun = measured_ns > config_.degrade.slot_deadline_ns;
        if (deadline_overrun && deadline_log_ != nullptr) {
          deadline_log_->push_back(slot_);
        }
      }
      if (deadline_overrun && trace_slots) {
        obs::TraceEvent e;
        e.ts_ns = util::now_ns();
        e.slot = slot_;
        e.a = measured_ns;
        e.b = config_.degrade.slot_deadline_ns;
        e.kind = obs::EventKind::kDeadlineOverrun;
        telemetry_->record(e);
      }
    }
    update_hysteresis(budget, deadline_overrun);
  }
  if (admission_ != nullptr) admission_->observe_slot(fiber_grants_in_);
  stats.busy_channels = busy_output_channels();
  if (trace_slots) {
    telemetry_->record_stage(obs::Stage::kSlot, slot_, step_t0, util::now_ns(),
                             stats.arrivals, stats.granted);
  }
  slot_ += 1;
#ifndef NDEBUG
  // The incrementally maintained planes (bytes and packed bits) must agree
  // with a from-scratch rebuild after every step (debug builds only; the
  // rebuild is O(Nk)).
  const auto rebuilt = availability();
  const std::size_t wpf = core::mask_words(k());
  for (std::size_t fiber = 0; fiber < rebuilt.size(); ++fiber) {
    for (std::size_t u = 0; u < rebuilt[fiber].size(); ++u) {
      WDM_DCHECK(avail_[fiber * static_cast<std::size_t>(k()) + u] ==
                 rebuilt[fiber][u]);
      WDM_DCHECK(core::mask_test(avail_bits_.data() + fiber * wpf,
                                 static_cast<std::int32_t>(u)) ==
                 (rebuilt[fiber][u] != 0));
    }
  }
#endif
  return stats;
}

void Interconnect::update_hysteresis(const core::SlotBudget& budget,
                                     bool deadline_overrun) {
  // "Overloaded" is judged against what exact-everywhere scheduling would
  // have cost (ops_exact_estimate), not against what was charged — a slot
  // held degraded by hysteresis charges little, which must not read as calm.
  // A deadline overrun is overload by itself: it both blocks recovery and
  // latches degraded mode even when no port was op-budget-downgraded (a
  // deadline-only config degrades the *next* slot — slot granularity).
  bool overloaded = deadline_overrun;
  if (config_.degrade.op_budget > 0 &&
      budget.ops_exact_estimate > config_.degrade.op_budget) {
    overloaded = true;
  }
  const auto record_flip = [this](obs::EventKind kind) {
    if (telemetry_ == nullptr || !telemetry_->at(obs::TraceDetail::kSlots)) {
      return;
    }
    obs::TraceEvent e;
    e.ts_ns = util::now_ns();
    e.slot = slot_;
    e.kind = kind;
    telemetry_->record(e);
  };
  if (!degraded_mode_) {
    if (budget.degraded_ports > 0 || deadline_overrun) {
      degraded_mode_ = true;
      calm_slots_ = 0;
      record_flip(obs::EventKind::kDegradeEnter);
    }
    return;
  }
  if (overloaded) {
    calm_slots_ = 0;
    return;
  }
  calm_slots_ += 1;
  if (calm_slots_ >= config_.degrade.recovery_slots) {
    degraded_mode_ = false;
    calm_slots_ = 0;
    record_flip(obs::EventKind::kDegradeExit);
  }
}

void Interconnect::run_retries(const std::vector<core::HealthMask>* health,
                               util::ThreadPool* pool, SlotStats& stats,
                               core::SlotBudget* budget) {
  if (retry_queue_.empty()) return;
  const obs::StageTimer retry_timer(telemetry_, obs::Stage::kRetry, slot_);
  due_.clear();
  retry_later_.clear();
  due_.reserve(retry_queue_.size());
  retry_later_.reserve(retry_queue_.size());
  for (auto& pending : retry_queue_) {
    (pending.due_slot <= slot_ ? due_ : retry_later_).push_back(pending);
  }
  // Swap instead of move-assign so both buffers keep their capacity.
  std::swap(retry_queue_, retry_later_);
  if (due_.empty()) return;

  stats.retry_attempts += due_.size();
  const std::uint64_t successes_before = stats.retry_successes;
  batch_.clear();
  batch_.reserve(due_.size());
  for (const auto& pending : due_) batch_.push_back(pending.request);
  decisions_.resize(batch_.size());
  scheduler_.schedule_slot_into(batch_, availability_view(), health, pool,
                                decisions_, budget);
  for (std::size_t i = 0; i < due_.size(); ++i) {
    if (decisions_[i].granted) {
      stats.granted += 1;
      stats.retry_successes += 1;
      occupy(batch_[i].output_fiber, decisions_[i].channel, batch_[i],
             batch_[i].duration);
      last_fiber_grants_[static_cast<std::size_t>(batch_[i].output_fiber)] += 1;
      fiber_grants_in_[static_cast<std::size_t>(batch_[i].input_fiber)] += 1;
      continue;
    }
    count_rejection(batch_[i], decisions_[i].reason, due_[i].attempts, stats);
  }
  if (telemetry_ != nullptr && telemetry_->at(obs::TraceDetail::kFull)) {
    obs::TraceEvent e;
    e.ts_ns = util::now_ns();
    e.slot = slot_;
    e.a = due_.size();
    e.b = stats.retry_successes - successes_before;
    e.kind = obs::EventKind::kRetryDrain;
    telemetry_->record(e);
  }
}

void Interconnect::run_ingress(const std::vector<core::HealthMask>* health,
                               util::ThreadPool* pool, SlotStats& stats,
                               core::SlotBudget* budget) {
  if (admission_ == nullptr) return;
  const obs::StageTimer ingress_timer(telemetry_, obs::Stage::kIngress, slot_);
  admission_->begin_slot();
  released_.clear();
  admission_->drain(released_, stats);
  if (released_.empty()) return;
  if (telemetry_ != nullptr && telemetry_->at(obs::TraceDetail::kFull)) {
    obs::TraceEvent e;
    e.ts_ns = util::now_ns();
    e.slot = slot_;
    e.a = released_.size();
    e.kind = obs::EventKind::kIngressRelease;
    telemetry_->record(e);
  }
  // Released requests are scheduled as their own batch between retries and
  // fresh arrivals (they have waited longer than anything arriving now).
  // Like retries, they are tracked by the ingress_* counters only, never in
  // the per-class arrival accounting.
  decisions_.resize(released_.size());
  scheduler_.schedule_slot_into(released_, availability_view(), health, pool,
                                decisions_, budget);
  for (std::size_t i = 0; i < released_.size(); ++i) {
    if (decisions_[i].granted) {
      stats.granted += 1;
      occupy(released_[i].output_fiber, decisions_[i].channel, released_[i],
             released_[i].duration);
      last_fiber_grants_[static_cast<std::size_t>(released_[i].output_fiber)] +=
          1;
      fiber_grants_in_[static_cast<std::size_t>(released_[i].input_fiber)] += 1;
      continue;
    }
    count_rejection(released_[i], decisions_[i].reason, 0, stats);
  }
}

void Interconnect::schedule_new_arrivals(
    std::span<const core::SlotRequest> arrivals,
    const std::vector<core::HealthMask>* health, util::ThreadPool* pool,
    SlotStats& stats, core::SlotBudget* budget,
    const std::uint8_t* valid_flags) {
  stats.arrivals += arrivals.size();

  // Per-request validation of externally supplied data (trace replay, user
  // workloads): a malformed request is dropped and counted, never thrown on.
  // The scheduler re-validates what it can see, but the input-fiber upper
  // bound — needed before occupy() touches per-input-channel state — is only
  // known here. step_batch pre-computes the same predicate for the whole
  // window (`valid_flags`); the outcome per request is identical. The copy
  // into valid_ is lazy: an all-valid slot (the steady-state common case)
  // schedules straight off the caller's span.
  valid_.clear();
  bool copied = false;
  std::int32_t max_class = 0;
  for (std::size_t idx = 0; idx < arrivals.size(); ++idx) {
    const auto& r = arrivals[idx];
    const bool ok =
        valid_flags != nullptr
            ? valid_flags[idx] != 0
            : r.input_fiber >= 0 && r.input_fiber < config_.n_fibers &&
                  r.output_fiber >= 0 && r.output_fiber < config_.n_fibers &&
                  r.wavelength >= 0 && r.wavelength < k() &&
                  r.duration >= 1 && r.priority >= 0;
    if (!ok) {
      stats.rejected += 1;
      stats.rejected_malformed += 1;
      if (!copied) {
        valid_.assign(arrivals.begin(),
                      arrivals.begin() + static_cast<std::ptrdiff_t>(idx));
        copied = true;
      }
      continue;
    }
    max_class = std::max(max_class, r.priority);
    if (copied) valid_.push_back(r);
  }
  std::span<const core::SlotRequest> admitted =
      copied ? std::span<const core::SlotRequest>(valid_) : arrivals;

  // Admission: fresh arrivals pass through the token buckets after the
  // ingress queue drained (run_ingress), so queued requests get the slot's
  // tokens first. Non-admitted requests are queued or shed inside offer().
  // Compaction mutates the vector, so this path always owns a copy.
  if (admission_ != nullptr) {
    const obs::StageTimer admission_timer(telemetry_, obs::Stage::kAdmission,
                                          slot_);
    if (!copied) valid_.assign(admitted.begin(), admitted.end());
    std::size_t kept = 0;
    for (const auto& r : valid_) {
      if (admission_->offer(r, stats) == AdmissionControl::Verdict::kAdmit) {
        valid_[kept++] = r;
      }
    }
    valid_.resize(kept);
    admitted = valid_;
    // Shedding may have removed the only request of the highest class; the
    // per-class accounting below sizes itself off what actually survived.
    max_class = 0;
    for (const auto& r : admitted) {
      max_class = std::max(max_class, r.priority);
    }
  }

  // Partition by QoS class (strict priority, 0 = highest); the common
  // single-class case stays a single scheduling pass — and schedules the
  // admitted span in place, with no per-class copy.
  if (!admitted.empty()) {
    // Always record per-class; a multi-class *run* can still have
    // single-class slots, and the driver must see them (it collapses the
    // vectors at report time if the whole run was single-class).
    stats.arrivals_per_class.resize(static_cast<std::size_t>(max_class) + 1, 0);
    stats.granted_per_class.resize(static_cast<std::size_t>(max_class) + 1, 0);
  }

  for (std::int32_t cls = 0; cls <= max_class; ++cls) {
    std::span<const core::SlotRequest> cls_batch;
    if (max_class == 0) {
      cls_batch = admitted;
    } else {
      batch_.clear();
      batch_.reserve(admitted.size());
      for (const auto& r : admitted) {
        if (r.priority == cls) batch_.push_back(r);
      }
      cls_batch = batch_;
    }
    if (cls_batch.empty()) continue;
    stats.arrivals_per_class[static_cast<std::size_t>(cls)] += cls_batch.size();
    // Availability reflects everything higher classes just took.
    decisions_.resize(cls_batch.size());
    scheduler_.schedule_slot_into(cls_batch, availability_view(), health, pool,
                                  decisions_, budget);
    for (std::size_t i = 0; i < cls_batch.size(); ++i) {
      if (!decisions_[i].granted) {
        count_rejection(cls_batch[i], decisions_[i].reason, 0, stats);
        continue;
      }
      stats.granted += 1;
      stats.granted_per_class[static_cast<std::size_t>(cls)] += 1;
      occupy(cls_batch[i].output_fiber, decisions_[i].channel, cls_batch[i],
             cls_batch[i].duration);
      last_fiber_grants_[static_cast<std::size_t>(cls_batch[i].output_fiber)] +=
          1;
      fiber_grants_in_[static_cast<std::size_t>(cls_batch[i].input_fiber)] += 1;
    }
  }
}

void Interconnect::step_no_disturb(
    std::span<const core::SlotRequest> arrivals,
    const std::vector<core::HealthMask>* health, util::ThreadPool* pool,
    SlotStats& stats, core::SlotBudget* budget,
    const std::uint8_t* valid_flags) {
  // Under kNoDisturb a connection is pinned to its exact channel, so losing
  // that channel (or its converter mid-conversion, or the fiber) kills the
  // connection outright.
  if (health != nullptr) teardown_faulted(*health, stats);
  run_retries(health, pool, stats, budget);
  run_ingress(health, pool, stats, budget);
  schedule_new_arrivals(arrivals, health, pool, stats, budget, valid_flags);
}

void Interconnect::step_rearrange(
    std::span<const core::SlotRequest> arrivals,
    const std::vector<core::HealthMask>* health, util::ThreadPool* pool,
    SlotStats& stats, core::SlotBudget* budget,
    const std::uint8_t* valid_flags) {
  // Phase 1: lift ongoing connections out of the fabric and re-schedule them
  // with the whole fiber free. On healthy hardware they were simultaneously
  // placed a slot ago, so a full placement exists and the maximum matching
  // saturates them all. Under faults the surviving graph may be smaller: the
  // health-aware schedule re-homes whoever still fits, and the rest are
  // genuine fault casualties.
  continuing_.clear();
  continuing_remaining_.clear();
  const auto kk = static_cast<std::size_t>(k());
  const std::size_t wpf = core::mask_words(k());
  for (std::int32_t fiber = 0; fiber < config_.n_fibers; ++fiber) {
    for (std::size_t u = 0; u < kk; ++u) {
      const std::size_t i = static_cast<std::size_t>(fiber) * kk + u;
      if (out_remaining_[i] == 0) continue;
      continuing_.push_back(core::SlotRequest{out_input_fiber_[i],
                                              out_wavelength_[i], fiber,
                                              out_id_[i], out_remaining_[i]});
      continuing_remaining_.push_back(out_remaining_[i]);
      out_remaining_[i] = 0;
      out_input_fiber_[i] = core::kNone;
      out_wavelength_[i] = core::kNone;
      out_id_[i] = 0;
      avail_[i] = 1;
      core::mask_set(
          avail_bits_.data() + static_cast<std::size_t>(fiber) * wpf,
          static_cast<std::int32_t>(u));
    }
  }
  if (!continuing_.empty()) {
    // Phase 1 sees the whole fabric free: an empty view, like the old null
    // availability pointer, means every channel is schedulable. Re-homing
    // runs exact even under a blown budget (no SlotBudget): the "continuing
    // connections are always re-placeable" invariant rests on the matching
    // being maximum, which the approximation does not guarantee.
    decisions_.resize(continuing_.size());
    scheduler_.schedule_slot_into(continuing_, core::AvailabilityView{},
                                  health, pool, decisions_);
    for (std::size_t i = 0; i < continuing_.size(); ++i) {
      if (decisions_[i].granted) {
        occupy(continuing_[i].output_fiber, decisions_[i].channel,
               continuing_[i], continuing_remaining_[i]);
      } else {
        // With faults active this is a connection the surviving graph could
        // not re-home; without, it cannot happen for a maximum matching (see
        // above) and is accounted defensively so a scheduler bug surfaces.
        release_input(continuing_[i].input_fiber, continuing_[i].wavelength);
        if (health != nullptr) {
          stats.dropped_faulted += 1;
        } else {
          stats.preempted += 1;
        }
      }
    }
  }

  // Phase 2: retries, ingress releases, then new arrivals compete for the
  // channels left over.
  run_retries(health, pool, stats, budget);
  run_ingress(health, pool, stats, budget);
  schedule_new_arrivals(arrivals, health, pool, stats, budget, valid_flags);
}

void Interconnect::save_section(std::size_t section,
                                util::SnapshotWriter& w) const {
  switch (section) {
    case 0:
      // Geometry/config echo, validated on restore: a checkpoint only
      // restores into an interconnect built from the same config.
      w.i32(config_.n_fibers);
      w.i32(k());
      w.u8(static_cast<std::uint8_t>(config_.scheme.kind()));
      w.i32(config_.scheme.e());
      w.i32(config_.scheme.f());
      w.u8(static_cast<std::uint8_t>(config_.algorithm));
      w.u8(static_cast<std::uint8_t>(config_.arbitration));
      w.u8(static_cast<std::uint8_t>(config_.policy));
      w.u64(config_.seed);
      return;
    case 1:
      w.u64(slot_);
      return;
    case 2:
      // Output occupancy plane, one fixed 24-byte record per channel, with
      // the hold stored as its absolute expiry slot (0 = free): a connection
      // ages by slot_ advancing, not by its record changing, so an unchanged
      // channel diffs to zero bytes between delta checkpoints.
      for (std::size_t i = 0; i < out_remaining_.size(); ++i) {
        w.u64(out_remaining_[i] > 0
                  ? slot_ + static_cast<std::uint64_t>(out_remaining_[i])
                  : 0);
        w.i32(out_input_fiber_[i]);
        w.i32(out_wavelength_[i]);
        w.u64(out_id_[i]);
      }
      return;
    case 3:
      // Input-channel plane, same expiry encoding (8-byte records).
      for (const std::int32_t remaining : input_remaining_) {
        w.u64(remaining > 0 ? slot_ + static_cast<std::uint64_t>(remaining)
                            : 0);
      }
      return;
    case 4:
      w.u64(retry_queue_.size());
      for (const auto& pending : retry_queue_) {
        w.i32(pending.request.input_fiber);
        w.i32(pending.request.wavelength);
        w.i32(pending.request.output_fiber);
        w.u64(pending.request.id);
        w.i32(pending.request.duration);
        w.i32(pending.request.priority);
        w.i32(pending.attempts);
        w.u64(pending.due_slot);
      }
      return;
    case 5:
      scheduler_.save_state(w);
      return;
    case 6:
      w.u8(faults_ != nullptr ? 1 : 0);
      if (faults_ != nullptr) faults_->save_state(w);
      return;
    case 7:
      w.u8(admission_ != nullptr ? 1 : 0);
      if (admission_ != nullptr) admission_->save_state(w);
      return;
    case 8:
      w.u8(degraded_mode_ ? 1 : 0);
      w.i32(calm_slots_);
      return;
    default:
      WDM_CHECK_MSG(false, "save_section: section index out of range");
  }
}

void Interconnect::save_state(util::SnapshotWriter& w) const {
  // Exactly the concatenation of the kSections sections, so the flat stream
  // checkpoint, the sectioned full frame, and a reconstructed delta chain
  // all share one payload layout (and one state_digest).
  for (std::size_t s = 0; s < kSections; ++s) save_section(s, w);
}

void Interconnect::restore_state(util::SnapshotReader& r) {
  // S0: config echo.
  WDM_CHECK_MSG(
      r.i32() == config_.n_fibers && r.i32() == k() &&
          r.u8() == static_cast<std::uint8_t>(config_.scheme.kind()) &&
          r.i32() == config_.scheme.e() && r.i32() == config_.scheme.f() &&
          r.u8() == static_cast<std::uint8_t>(config_.algorithm) &&
          r.u8() == static_cast<std::uint8_t>(config_.arbitration) &&
          r.u8() == static_cast<std::uint8_t>(config_.policy) &&
          r.u64() == config_.seed,
      "snapshot was taken from a different interconnect config");

  // S1 before S2/S3: the expiry decode below needs the restored slot counter.
  slot_ = r.u64();
  const auto kk = static_cast<std::size_t>(k());
  const std::size_t wpf = core::mask_words(k());
  for (std::size_t i = 0; i < out_remaining_.size(); ++i) {
    const std::uint64_t expiry = r.u64();
    WDM_CHECK_MSG(expiry == 0 || (expiry > slot_ && expiry - slot_ <=
                                                       0x7fffffffull),
                  "snapshot occupancy expiry is not ahead of its slot");
    out_remaining_[i] =
        expiry == 0 ? 0 : static_cast<std::int32_t>(expiry - slot_);
    out_input_fiber_[i] = r.i32();
    out_wavelength_[i] = r.i32();
    out_id_[i] = r.u64();
    // The flat planes are rebuilt from the occupancy they mirror, so they
    // cannot disagree after a restore.
    avail_[i] = out_remaining_[i] > 0 ? 0 : 1;
  }
  for (std::int32_t fiber = 0; fiber < config_.n_fibers; ++fiber) {
    std::uint64_t* bits =
        avail_bits_.data() + static_cast<std::size_t>(fiber) * wpf;
    core::mask_fill(bits, k());
    for (std::size_t u = 0; u < kk; ++u) {
      if (out_remaining_[static_cast<std::size_t>(fiber) * kk + u] > 0) {
        core::mask_clear(bits, static_cast<std::int32_t>(u));
      }
    }
  }
  for (auto& remaining : input_remaining_) {
    const std::uint64_t expiry = r.u64();
    WDM_CHECK_MSG(expiry == 0 || (expiry > slot_ && expiry - slot_ <=
                                                       0x7fffffffull),
                  "snapshot input-channel expiry is not ahead of its slot");
    remaining = expiry == 0 ? 0 : static_cast<std::int32_t>(expiry - slot_);
  }
  retry_queue_.clear();
  const std::uint64_t pending_count = r.u64();
  WDM_CHECK_MSG(pending_count <= config_.retry.queue_capacity,
                "snapshot retry queue exceeds this config's capacity");
  for (std::uint64_t i = 0; i < pending_count; ++i) {
    PendingRetry pending;
    pending.request.input_fiber = r.i32();
    pending.request.wavelength = r.i32();
    pending.request.output_fiber = r.i32();
    pending.request.id = r.u64();
    pending.request.duration = r.i32();
    pending.request.priority = r.i32();
    pending.attempts = r.i32();
    pending.due_slot = r.u64();
    retry_queue_.push_back(pending);
  }
  scheduler_.restore_state(r);
  const bool had_faults = r.u8() != 0;
  WDM_CHECK_MSG(had_faults == (faults_ != nullptr),
                "snapshot fault-injection state does not match this config");
  if (faults_ != nullptr) faults_->restore_state(r);
  const bool had_admission = r.u8() != 0;
  WDM_CHECK_MSG(had_admission == (admission_ != nullptr),
                "snapshot admission state does not match this config");
  if (admission_ != nullptr) admission_->restore_state(r);
  degraded_mode_ = r.u8() != 0;
  calm_slots_ = r.i32();
  last_fiber_grants_.assign(last_fiber_grants_.size(), 0);
  fiber_grants_in_.assign(fiber_grants_in_.size(), 0);
  // A restore can land mid-script (checkpoint/restore inside a replay):
  // re-seat the script cursor on the restored slot counter.
  if (deadline_script_ != nullptr) set_deadline_script(deadline_script_);
}

}  // namespace wdm::sim
