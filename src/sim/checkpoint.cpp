#include "sim/checkpoint.hpp"

#include <ostream>

#include "obs/telemetry.hpp"
#include "util/check.hpp"
#include "util/snapshot.hpp"
#include "util/timer.hpp"

namespace wdm::sim {

namespace {

/// Leading payload byte: does this frame carry traffic-generator state?
constexpr std::uint8_t kInterconnectOnly = 0;
constexpr std::uint8_t kWithTraffic = 1;

/// Checkpoint save/load instants. Recorded into the interconnect's attached
/// recorder (if any) — strictly after the snapshot bytes are produced or
/// consumed, so telemetry can never leak into the digest.
void record_checkpoint(const Interconnect& interconnect, obs::EventKind kind) {
  obs::TraceRecorder* recorder = interconnect.telemetry();
  if (recorder == nullptr || !recorder->at(obs::TraceDetail::kSlots)) return;
  obs::TraceEvent e;
  e.ts_ns = util::now_ns();
  e.slot = interconnect.current_slot();
  e.kind = kind;
  recorder->record(e);
}

}  // namespace

void save_checkpoint(std::ostream& os, const Interconnect& interconnect) {
  util::SnapshotWriter w;
  w.u8(kInterconnectOnly);
  interconnect.save_state(w);
  w.write_to(os);
  record_checkpoint(interconnect, obs::EventKind::kCheckpointSave);
}

void save_checkpoint(std::ostream& os, const Interconnect& interconnect,
                     const TrafficGenerator& traffic) {
  util::SnapshotWriter w;
  w.u8(kWithTraffic);
  interconnect.save_state(w);
  traffic.save_state(w);
  w.write_to(os);
  record_checkpoint(interconnect, obs::EventKind::kCheckpointSave);
}

void load_checkpoint(std::istream& is, Interconnect& interconnect) {
  util::SnapshotReader r(is);
  WDM_CHECK_MSG(r.u8() == kInterconnectOnly,
                "checkpoint carries traffic state; load it with a generator");
  interconnect.restore_state(r);
  WDM_CHECK_MSG(r.exhausted(), "checkpoint has trailing bytes");
  record_checkpoint(interconnect, obs::EventKind::kCheckpointLoad);
}

void load_checkpoint(std::istream& is, Interconnect& interconnect,
                     TrafficGenerator& traffic) {
  util::SnapshotReader r(is);
  WDM_CHECK_MSG(r.u8() == kWithTraffic,
                "checkpoint carries no traffic state");
  interconnect.restore_state(r);
  traffic.restore_state(r);
  WDM_CHECK_MSG(r.exhausted(), "checkpoint has trailing bytes");
  record_checkpoint(interconnect, obs::EventKind::kCheckpointLoad);
}

std::uint64_t state_digest(const Interconnect& interconnect) {
  util::SnapshotWriter w;
  interconnect.save_state(w);
  return w.digest();
}

std::vector<SlotStats> replay_from(const Trace& trace,
                                   std::uint64_t first_slot,
                                   Interconnect& interconnect) {
  WDM_CHECK_MSG(trace.n_fibers == interconnect.n_fibers() &&
                    trace.k == interconnect.k(),
                "trace geometry does not match the interconnect");
  WDM_CHECK_MSG(first_slot <= trace.slots.size(),
                "replay start is past the end of the trace");
  // Wall-clock deadline downgrades are the run's one nondeterministic input;
  // the recorded run logged each overrun into the trace, and installing that
  // log as the script makes the replay clock-free — the same slots degrade,
  // bit for bit, regardless of the replaying machine's speed.
  interconnect.set_deadline_script(&trace.deadline_overruns);
  std::vector<SlotStats> stats;
  stats.reserve(trace.slots.size() - static_cast<std::size_t>(first_slot));
  for (std::size_t s = static_cast<std::size_t>(first_slot);
       s < trace.slots.size(); ++s) {
    stats.push_back(interconnect.step(trace.slots[s]));
  }
  interconnect.set_deadline_script(nullptr);
  return stats;
}

}  // namespace wdm::sim
