#include "sim/async.hpp"

#include <cmath>
#include <queue>
#include <vector>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace wdm::sim {

namespace {

struct Departure {
  double time;
  std::int32_t fiber;
  core::Channel channel;

  bool operator>(const Departure& other) const noexcept {
    return time > other.time;
  }
};

double exponential(util::Rng& rng, double mean) {
  // Inversion with u in (0, 1].
  const double u = 1.0 - rng.uniform01();
  return -mean * std::log(u);
}

}  // namespace

AsyncReport run_async_simulation(const AsyncConfig& config) {
  WDM_CHECK_MSG(config.n_fibers > 0, "need at least one fiber");
  WDM_CHECK_MSG(config.load >= 0.0, "offered load must be nonnegative");
  WDM_CHECK_MSG(config.mean_holding > 0.0, "holding time must be positive");
  WDM_CHECK_MSG(config.arrivals > 0, "need at least one measured arrival");

  const std::int32_t k = config.scheme.k();
  const auto n_channels = static_cast<double>(config.n_fibers) *
                          static_cast<double>(k);
  // Total Poisson arrival rate so that per-input-channel offered load is
  // config.load erlangs.
  const double total_rate = n_channels * config.load / config.mean_holding;
  WDM_CHECK_MSG(total_rate > 0.0, "offered load must be positive");

  util::Rng rng(config.seed);
  std::vector<std::vector<std::uint8_t>> busy(
      static_cast<std::size_t>(config.n_fibers),
      std::vector<std::uint8_t>(static_cast<std::size_t>(k), 0));
  std::priority_queue<Departure, std::vector<Departure>, std::greater<>> heap;

  double now = 0.0;           // simulation clock (last processed event)
  double arrival_clock = 0.0; // Poisson arrival process
  std::uint64_t busy_count = 0;
  double busy_area = 0.0;     // integral of busy_count over the window
  double window_start = 0.0;
  bool measuring = false;
  util::Proportion blocked;

  const std::uint64_t total_arrivals = config.warmup + config.arrivals;
  for (std::uint64_t n = 0; n < total_arrivals; ++n) {
    arrival_clock += exponential(rng, 1.0 / total_rate);
    // Release connections that depart before this arrival, integrating the
    // busy-channel count over each inter-event interval.
    while (!heap.empty() && heap.top().time <= arrival_clock) {
      const auto dep = heap.top();
      heap.pop();
      if (measuring) {
        busy_area += static_cast<double>(busy_count) * (dep.time - now);
      }
      now = dep.time;
      busy[static_cast<std::size_t>(dep.fiber)]
          [static_cast<std::size_t>(dep.channel)] = 0;
      busy_count -= 1;
    }
    if (measuring) {
      busy_area += static_cast<double>(busy_count) * (arrival_clock - now);
    }
    now = arrival_clock;
    if (n == config.warmup) {
      measuring = true;
      window_start = now;
      busy_area = 0.0;
    }

    // The arrival: uniform source wavelength, uniform destination fiber.
    const auto w = static_cast<core::Wavelength>(
        rng.uniform_below(static_cast<std::uint64_t>(k)));
    const auto dest = static_cast<std::int32_t>(
        rng.uniform_below(static_cast<std::uint64_t>(config.n_fibers)));

    // FCFS channel grab: free admissible channels of the destination fiber.
    core::Channel chosen = core::kNone;
    if (config.policy == FitPolicy::kFirstFit) {
      // First-fit in channel-index order (not adjacency order): scan the
      // admissible set and keep the lowest index.
      for (const core::Channel v : config.scheme.adjacency_list(w)) {
        if (busy[static_cast<std::size_t>(dest)][static_cast<std::size_t>(v)]) {
          continue;
        }
        if (chosen == core::kNone || v < chosen) chosen = v;
      }
    } else {
      std::int32_t free_seen = 0;
      for (const core::Channel v : config.scheme.adjacency_list(w)) {
        if (busy[static_cast<std::size_t>(dest)][static_cast<std::size_t>(v)]) {
          continue;
        }
        free_seen += 1;
        if (rng.uniform_below(static_cast<std::uint64_t>(free_seen)) == 0) {
          chosen = v;  // reservoir sample: uniform over free admissible
        }
      }
    }

    const bool is_blocked = chosen == core::kNone;
    if (measuring) blocked.add(is_blocked);
    if (!is_blocked) {
      busy[static_cast<std::size_t>(dest)][static_cast<std::size_t>(chosen)] = 1;
      busy_count += 1;
      heap.push(Departure{now + exponential(rng, config.mean_holding), dest,
                          chosen});
    }
  }

  AsyncReport report;
  report.arrivals = blocked.trials();
  report.blocked = blocked.successes();
  report.blocking_probability = blocked.value();
  report.blocking_wilson_low = blocked.wilson_low();
  report.blocking_wilson_high = blocked.wilson_high();
  const double window = now - window_start;
  report.utilization = window > 0.0 ? busy_area / (window * n_channels) : 0.0;
  return report;
}

double erlang_b(std::int32_t servers, double erlangs) {
  WDM_CHECK_MSG(servers >= 0, "server count must be nonnegative");
  WDM_CHECK_MSG(erlangs >= 0.0, "offered traffic must be nonnegative");
  // Stable recurrence: B(0) = 1; B(m) = a B(m-1) / (m + a B(m-1)).
  double b = 1.0;
  for (std::int32_t m = 1; m <= servers; ++m) {
    b = erlangs * b / (static_cast<double>(m) + erlangs * b);
  }
  return b;
}

}  // namespace wdm::sim
