#include "sim/analysis.hpp"

#include <cmath>

#include "util/check.hpp"

namespace wdm::sim {

double binomial_pmf(std::int32_t n, double q, std::int32_t x) {
  WDM_CHECK(n >= 0 && x >= 0 && x <= n);
  WDM_CHECK(q >= 0.0 && q <= 1.0);
  if (q == 0.0) return x == 0 ? 1.0 : 0.0;
  if (q == 1.0) return x == n ? 1.0 : 0.0;
  const double log_pmf = std::lgamma(n + 1.0) - std::lgamma(x + 1.0) -
                         std::lgamma(n - x + 1.0) + x * std::log(q) +
                         (n - x) * std::log1p(-q);
  return std::exp(log_pmf);
}

double slotted_loss_no_conversion(std::int32_t n_fibers, double p) {
  WDM_CHECK_MSG(n_fibers > 0, "need at least one fiber");
  WDM_CHECK_MSG(p > 0.0 && p <= 1.0, "offered load must be in (0, 1]");
  // Arrivals at one output channel: Binomial(N, p/N). One is served, the
  // rest are lost. Per-request loss = 1 - P(channel serves) / E[arrivals].
  const double q = p / static_cast<double>(n_fibers);
  const double p_served =
      1.0 - std::pow(1.0 - q, static_cast<double>(n_fibers));
  return 1.0 - p_served / p;
}

double slotted_loss_full_range(std::int32_t n_fibers, std::int32_t k,
                               double p) {
  WDM_CHECK_MSG(n_fibers > 0 && k > 0, "dimensions must be positive");
  WDM_CHECK_MSG(p > 0.0 && p <= 1.0, "offered load must be in (0, 1]");
  // Arrivals at one output fiber: B ~ Binomial(N k, p/N); it serves
  // min(B, k). E[B] = k p.
  const std::int32_t trials = n_fibers * k;
  const double q = p / static_cast<double>(n_fibers);
  double served = 0.0;
  for (std::int32_t b = 0; b <= trials; ++b) {
    served += binomial_pmf(trials, q, b) * static_cast<double>(std::min(b, k));
  }
  const double offered = static_cast<double>(k) * p;
  return 1.0 - served / offered;
}

}  // namespace wdm::sim
