// Closed-form loss analysis for the slotted interconnect's corner cases.
//
// Under Bernoulli uniform traffic (each input channel fires with probability
// p, destination uniform over N fibers) the slotted system decomposes
// exactly at the two extremes of conversion:
//
//  * d = 1 (no conversion): each output channel (fiber, wavelength) is an
//    independent slotted loss system fed Binomial(N, p/N) arrivals and
//    serving at most one — loss = 1 - (1 - (1 - p/N)^N) / p.
//  * d = k (full range): a whole output fiber pools its k channels and is
//    fed Binomial(N k, p/N) arrivals, serving at most k —
//    loss = (E[B] - E[min(B, k)]) / E[B].
//
// These formulas validate the simulator analytically (test_analysis.cpp):
// the measured loss must fall inside the batch-means CI of the closed form.
// Limited-range 1 < d < k has no product-form solution — that is exactly
// why the paper (and this library) simulate it.
#pragma once

#include <cstdint>

namespace wdm::sim {

/// Exact per-request loss probability, slotted, d = 1, Bernoulli(p) sources,
/// uniform destinations over n_fibers. p in (0, 1].
double slotted_loss_no_conversion(std::int32_t n_fibers, double p);

/// Exact per-request loss probability, slotted, full-range conversion.
double slotted_loss_full_range(std::int32_t n_fibers, std::int32_t k, double p);

/// Binomial(n, q) probability mass at exactly x successes (numerically
/// stable log-space evaluation; exposed for the tests).
double binomial_pmf(std::int32_t n, double q, std::int32_t x);

}  // namespace wdm::sim
