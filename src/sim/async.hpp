// Asynchronous (unslotted) operation — the wavelength-routing regime the
// paper contrasts against in Section I: "the packet arrivals ... were
// assumed to be asynchronous, thus eliminates the need for a scheduling
// algorithm since the requests have a natural order and are assumed to be
// served according to the 'first come first served' rule" [11][13][14].
//
// Model: a continuous-time Erlang loss system. Connection requests arrive
// as a Poisson process, each carrying a uniformly random source wavelength
// and destination fiber; holding times are exponential. A request is served
// immediately (FCFS — no batching, no matching): it takes a free admissible
// channel of its destination fiber per the conversion scheme, chosen
// first-fit or uniformly at random, and is *blocked* (lost) if none is
// free. Input-side blocking is not modelled, matching the single-node
// analyses of the paper's references.
//
// This substrate exists so experiment E9 can show what the paper's slotted
// scheduling buys: at equal offered load, batching a slot's requests and
// computing a maximum matching loses fewer requests than first-come-first-
// served channel grabbing, and the gap grows with contention.
#pragma once

#include <cstdint>

#include "core/conversion.hpp"

namespace wdm::sim {

enum class FitPolicy : std::uint8_t {
  kFirstFit,   ///< lowest-index free admissible channel
  kRandomFit,  ///< uniform over free admissible channels
};

struct AsyncConfig {
  std::int32_t n_fibers = 8;
  core::ConversionScheme scheme = core::ConversionScheme::circular(8, 1, 1);
  /// Offered load per input wavelength channel: arrival rate x mean holding
  /// divided across the N*k input channels, i.e. total arrival rate is
  /// n_fibers * k * load / mean_holding.
  double load = 0.5;
  double mean_holding = 1.0;  ///< exponential mean (time units)
  FitPolicy policy = FitPolicy::kFirstFit;
  std::uint64_t arrivals = 200000;  ///< measured arrivals
  std::uint64_t warmup = 20000;     ///< discarded leading arrivals
  std::uint64_t seed = 1;
};

struct AsyncReport {
  std::uint64_t arrivals = 0;
  std::uint64_t blocked = 0;
  double blocking_probability = 0.0;
  double blocking_wilson_low = 0.0;
  double blocking_wilson_high = 0.0;
  /// Time-averaged fraction of busy output channels (measured window).
  double utilization = 0.0;
};

/// Runs the FCFS continuous-time loss simulation to completion.
AsyncReport run_async_simulation(const AsyncConfig& config);

/// Erlang-B blocking probability for `servers` servers at offered traffic
/// `erlangs` — the analytic check for the full-range (M/M/k/k per fiber)
/// and no-conversion (M/M/1/1 per channel) corners of the async model.
double erlang_b(std::int32_t servers, double erlangs);

}  // namespace wdm::sim
