// Fault injection for the interconnect: scripted and stochastic failure /
// repair events over converters, output channels, and whole output fibers.
//
// A real interconnect serving heavy traffic loses hardware at runtime; this
// module turns those losses into the per-fiber core::HealthMask vector the
// schedulers consume, so degradation is a first-class scheduling constraint
// instead of an invisible error.
//
// Two event sources, combinable:
//
//  * scripted — an explicit list of (slot, component, fail/repair) events,
//    for reproducible drills ("cut fiber 3 at slot 2000, splice it at 6000");
//  * stochastic — every component alternates up/down as a two-state Markov
//    chain with per-slot failure probability 1/MTBF and repair probability
//    1/MTTR (geometric up- and down-times, the standard memoryless model).
//
// Determinism contract: the injector owns an independent RNG stream (seeded
// via util::derive_stream_seed, never shared with traffic or scheduling) and
// draws exactly one variate per stochastic component per slot regardless of
// state, so a fault schedule replays bit-for-bit from its seed and enabling
// faults never perturbs the arrival sequence of the same master seed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/health.hpp"
#include "obs/telemetry.hpp"
#include "util/rng.hpp"
#include "util/snapshot.hpp"

namespace wdm::sim {

enum class FaultKind : std::uint8_t {
  kConverter,  ///< one channel's wavelength converter (adjacency -> d = 1)
  kChannel,    ///< one output wavelength channel (unusable entirely)
  kFiber,      ///< one whole output fiber (everything rejected kFaulted)
};

/// One scripted failure or repair, applied at the start of `slot`.
struct FaultEvent {
  std::uint64_t slot = 0;
  FaultKind kind = FaultKind::kChannel;
  std::int32_t fiber = 0;
  std::int32_t channel = 0;  ///< ignored for kFiber
  bool repair = false;       ///< false = fail, true = repair
};

/// Geometric up/down times for one fault class; mtbf == 0 disables the
/// class. Both times are in slots and must be >= 1 when enabled.
struct MtbfMttr {
  double mtbf = 0.0;
  double mttr = 0.0;
  bool enabled() const noexcept { return mtbf > 0.0; }
};

struct FaultConfig {
  std::vector<FaultEvent> script;
  MtbfMttr converters;
  MtbfMttr channels;
  MtbfMttr fibers;

  bool enabled() const noexcept {
    return !script.empty() || converters.enabled() || channels.enabled() ||
           fibers.enabled();
  }
};

class FaultInjector {
 public:
  /// Validates the script against the (n_fibers, k) geometry up front;
  /// `seed` should come from util::derive_stream_seed so the fault stream is
  /// independent of every other consumer of the master seed.
  FaultInjector(std::int32_t n_fibers, std::int32_t k, FaultConfig config,
                std::uint64_t seed);

  /// Advances one slot: applies scripted events for the new slot index
  /// (starting at 0), then one stochastic transition per enabled component.
  void tick();

  /// Slots ticked so far.
  std::uint64_t slots() const noexcept { return slots_; }

  /// Current per-output-fiber health, one mask per fiber, channels always
  /// materialised (size k).
  const std::vector<core::HealthMask>& health() const noexcept {
    return health_;
  }

  /// True while any component is down — lets callers skip the degraded
  /// scheduling path entirely on healthy slots.
  bool any_fault() const noexcept { return down_components_ > 0; }
  std::int64_t down_components() const noexcept { return down_components_; }

  std::uint64_t failures_injected() const noexcept { return failures_; }
  std::uint64_t repairs_applied() const noexcept { return repairs_; }

  /// Attaches (or detaches) a trace recorder: every state flip — scripted or
  /// stochastic — records a kFaultFail / kFaultRepair instant. Observer only:
  /// it never touches the RNG stream and is not serialized.
  void set_telemetry(obs::TraceRecorder* recorder) noexcept {
    telemetry_ = recorder;
  }

  /// Checkpoint of the injector's mutable state (RNG stream, script cursor,
  /// per-component up/down flags); the health masks are rebuilt on restore.
  void save_state(util::SnapshotWriter& w) const;
  void restore_state(util::SnapshotReader& r);

 private:
  void apply(FaultKind kind, std::int32_t fiber, std::int32_t channel,
             bool repair);
  /// Returns true when the component actually flipped state.
  bool set_state(std::uint8_t& down, bool make_down);
  void record_fault(FaultKind kind, std::int32_t fiber, std::int32_t channel,
                    bool repair);
  void rebuild_health();

  std::int32_t n_fibers_;
  std::int32_t k_;
  FaultConfig config_;  // script sorted by slot in the constructor
  util::Rng rng_;
  std::size_t next_event_ = 0;
  std::uint64_t slots_ = 0;
  std::vector<std::uint8_t> converter_down_;  // [fiber * k + channel]
  std::vector<std::uint8_t> channel_down_;    // [fiber * k + channel]
  std::vector<std::uint8_t> fiber_down_;      // [fiber]
  std::int64_t down_components_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t repairs_ = 0;
  std::vector<core::HealthMask> health_;
  obs::TraceRecorder* telemetry_ = nullptr;
};

}  // namespace wdm::sim
