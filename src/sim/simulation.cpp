#include "sim/simulation.hpp"

#include <algorithm>
#include <memory>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace wdm::sim {

SimulationReport run_simulation(const SimulationConfig& config) {
  WDM_CHECK_MSG(config.slots > 0, "simulation needs at least one measured slot");

  util::Rng seeder(config.seed);
  InterconnectConfig icfg = config.interconnect;
  icfg.seed = seeder.next();
  Interconnect interconnect(icfg);
  TrafficGenerator traffic(icfg.n_fibers, icfg.scheme.k(), config.traffic,
                           seeder.next());
  MetricsCollector metrics(icfg.n_fibers, icfg.scheme.k());

  std::unique_ptr<util::ThreadPool> pool;
  if (config.threads > 0) {
    pool = std::make_unique<util::ThreadPool>(config.threads);
  }

  const util::Stopwatch clock;
  // Method of batch means: 30 contiguous batches of measured slots give a
  // correlation-robust CI on the loss probability.
  constexpr std::uint64_t kBatches = 30;
  const std::uint64_t batch_len = std::max<std::uint64_t>(1, config.slots / kBatches);
  util::RunningStats batch_means;
  std::uint64_t batch_arrivals = 0;
  std::uint64_t batch_losses = 0;
  std::uint64_t in_batch = 0;

  for (std::uint64_t slot = 0; slot < config.warmup + config.slots; ++slot) {
    const auto arrivals = traffic.next_slot(interconnect.input_channel_busy());
    const SlotStats stats = interconnect.step(arrivals, pool.get());
    if (slot < config.warmup) continue;
    metrics.record_slot(stats);
    batch_arrivals += stats.arrivals;
    batch_losses += stats.rejected;
    if (++in_batch == batch_len) {
      if (batch_arrivals > 0) {
        batch_means.add(static_cast<double>(batch_losses) /
                        static_cast<double>(batch_arrivals));
      }
      batch_arrivals = batch_losses = 0;
      in_batch = 0;
    }
    for (std::int32_t fiber = 0; fiber < icfg.n_fibers; ++fiber) {
      metrics.record_fiber_grants(
          fiber,
          interconnect.last_fiber_grants()[static_cast<std::size_t>(fiber)]);
    }
  }

  SimulationReport report;
  report.slots = metrics.slots();
  report.arrivals = metrics.arrivals();
  report.losses = metrics.losses();
  report.offered_load = config.traffic.load;
  report.loss_probability = metrics.loss_probability();
  report.loss_wilson_low = metrics.loss_wilson_low();
  report.loss_wilson_high = metrics.loss_wilson_high();
  report.loss_batch_ci = batch_means.ci95_halfwidth();
  report.throughput_per_channel = metrics.throughput_per_channel();
  report.utilization = metrics.utilization();
  report.fiber_fairness = metrics.fiber_fairness();
  report.preemptions = metrics.preempted();
  report.rejected_faulted = metrics.rejected_faulted();
  report.dropped_faulted = metrics.dropped_faulted();
  report.retry_attempts = metrics.retry_attempts();
  report.retry_successes = metrics.retry_successes();
  report.shed_overload = metrics.shed_overload();
  report.deferred_overload = metrics.deferred_overload();
  report.ingress_releases = metrics.ingress_releases();
  report.degraded_ports = metrics.degraded_ports();
  report.degraded_slots = metrics.degraded_slots();
  if (const auto* injector = interconnect.fault_injector()) {
    report.fault_failures = injector->failures_injected();
    report.fault_repairs = injector->repairs_applied();
  }
  report.wall_seconds = clock.elapsed_s();
  if (metrics.arrivals_per_class().size() > 1) {
    // Per-class vectors are only meaningful for multi-class traffic.
    report.class_arrivals = metrics.arrivals_per_class();
    const auto& granted_pc = metrics.granted_per_class();
    report.class_losses.resize(report.class_arrivals.size(), 0);
    for (std::size_t c = 0; c < report.class_arrivals.size(); ++c) {
      const std::uint64_t granted =
          c < granted_pc.size() ? granted_pc[c] : 0;
      report.class_losses[c] = report.class_arrivals[c] - granted;
    }
  }
  return report;
}

}  // namespace wdm::sim
