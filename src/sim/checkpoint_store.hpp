// Crash-safe incremental checkpointing (overload ladder rung three, grown
// up: sim/checkpoint.hpp serializes one frame to a stream you already hold
// open; this store owns a *directory* of frames and makes each one durable).
//
// Frames come in two kinds, both standard util::SnapshotWriter frames
// (versioned, FNV-1a64-digested):
//
//  * full  — the interconnect's kSections state sections (plus, optionally,
//    the traffic generator's as one more section), each length-prefixed;
//  * delta — only the sections that changed since the *previous frame in
//    the chain*, as whole-section replacements or, for the fixed-record
//    occupancy planes, sparse per-record patches. A delta names its base
//    (slot + digest of the base's reconstructed payload) and carries the
//    digest of its own reconstructed payload, so a recovery can verify every
//    link of the chain before trusting it.
//
// Because occupancy is serialized as absolute expiry slots (see
// Interconnect::save_section), a connection's bytes do not change while it
// merely ages — a steady-state delta carries the churn, not the fabric.
//
// Durability: a frame is written to a temp file, fsync'd, renamed into
// place, and the directory fsync'd — a crash at any instant leaves either
// the previous set of frames or the previous set plus one complete new
// frame, never a torn one under the final name. recover_latest() walks the
// directory, discards torn/corrupt/unchained frames with reasons, and
// restores the newest state a fully verified full+delta prefix reaches — so
// a SIGKILL costs at most one checkpoint interval.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/interconnect.hpp"
#include "sim/traffic.hpp"

namespace wdm::sim {

struct CheckpointPolicy {
  /// Directory the frames live in (created if missing).
  std::string dir;
  /// Every `full_every`-th frame is a full (1 = every frame full, no deltas).
  std::uint32_t full_every = 8;
  /// Full-frame chains retained after each new full: older chains (the full
  /// and its deltas) are pruned. Minimum 1; 2 keeps one complete fallback
  /// chain in case the newest full is lost with the machine.
  std::uint32_t keep_fulls = 2;
};

/// Writes full/delta checkpoint frames into a directory with atomic
/// publication and chain-aware retention. The first frame after construction
/// is always a full (the store never adopts an on-disk chain as a delta
/// base — it only numbers its files after them).
class CheckpointStore {
 public:
  explicit CheckpointStore(CheckpointPolicy policy);

  const CheckpointPolicy& policy() const noexcept { return policy_; }

  /// One published frame (this store's own writes only).
  struct FrameInfo {
    std::uint64_t slot = 0;
    bool full = false;
    std::uint64_t bytes = 0;  ///< whole frame on disk, header included
    std::string path;
  };

  /// Serializes the current state (and the traffic generator's, if given —
  /// give it either every time or never, a chain must not mix) as a full or
  /// delta frame per the cadence, publishes it atomically, prunes retired
  /// chains after each full, and returns the published path.
  std::string write(const Interconnect& interconnect,
                    const TrafficGenerator* traffic = nullptr);

  /// Frames this store has published, oldest first (pruned ones removed).
  const std::vector<FrameInfo>& frames() const noexcept { return frames_; }

 private:
  void prune();

  CheckpointPolicy policy_;
  std::uint64_t next_seq_ = 0;       // monotonic file sequence number
  std::uint32_t deltas_since_full_ = 0;
  std::vector<FrameInfo> frames_;
  // The previous frame's sections and identity — what the next delta diffs
  // against and names as its base.
  std::vector<std::vector<std::uint8_t>> prev_sections_;
  std::uint64_t prev_slot_ = 0;
  std::uint64_t prev_digest_ = 0;
};

/// What recover_latest did: which frame's state was restored (if any), every
/// frame it had to discard, and why.
struct RecoveryReport {
  bool recovered = false;
  std::uint64_t slot = 0;    ///< restored slot counter (when recovered)
  std::string used;          ///< path of the last frame applied
  std::uint64_t frames_applied = 0;  ///< chain length behind `used`
  std::vector<std::string> discarded;  ///< paths rejected, oldest first
  std::vector<std::string> reasons;    ///< parallel to `discarded`
};

/// Scans `dir` for checkpoint frames, verifies them (frame digests, delta
/// base chaining, reconstructed-payload digests), and restores the newest
/// fully verified state into `interconnect` (and `traffic`, which must be
/// given iff the frames carry traffic state). Torn, corrupt, or unchained
/// frames are discarded with a reason, falling back to the best earlier
/// full+delta prefix; recovery only fails (recovered = false) when no
/// verified chain exists at all. Never throws on corrupt input — corrupt
/// frames are data, not bugs.
///
/// `max_slot` bounds the recovery: frames past it are skipped outright (not
/// discarded — they are valid, just newer than wanted), so the restored
/// state is the newest verified one at or before `max_slot`. Fleet resume
/// uses this to negotiate the newest slot every shard's chain can agree on
/// when a crash left some shards a frame ahead of others.
RecoveryReport recover_latest(
    const std::string& dir, Interconnect& interconnect,
    TrafficGenerator* traffic = nullptr,
    std::uint64_t max_slot = ~static_cast<std::uint64_t>(0));

}  // namespace wdm::sim
