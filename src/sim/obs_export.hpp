// Bridge from the simulation's metric accumulators to the obs exporters.
//
// Kept out of sim/metrics.hpp so the collector itself stays free of any
// exporter dependency: the slot loop records into MetricsCollector as
// before, and a caller that wants a Prometheus snapshot builds a Registry
// at export time (snapshotting is O(counters), nowhere near the hot path).
#pragma once

#include "obs/registry.hpp"
#include "sim/fleet.hpp"
#include "sim/metrics.hpp"

namespace wdm::sim {

/// Registers every MetricsCollector counter — one series per SlotStats
/// counter the collector accumulates, plus the derived ratios — under the
/// `wdm_` prefix. Call once per snapshot on a fresh or reused Registry.
/// `per_fiber` additionally emits wdm_fiber_grants_total{fiber="i"} — one
/// series per output fiber, so it is opt-in (N series of extra cardinality
/// per scrape; keep it off for large fabrics unless you need the breakdown).
void register_metrics(obs::Registry& registry,
                      const MetricsCollector& metrics, bool per_fiber = false);

/// Fleet export: the merged collector's counters exactly as
/// register_metrics would emit them (one fleet-wide series per counter),
/// plus a bounded per-shard breakdown — four series per shard
/// (wdm_shard_slots_total / wdm_shard_arrivals_total /
/// wdm_shard_granted_total / wdm_shard_rejected_total, each labeled
/// shard="i") and one wdm_fleet_shards gauge. Cardinality is 4F + the flat
/// set, never per-shard × per-fiber; the full per-fiber breakdown stays
/// behind `per_fiber` and is emitted for the merged view only
/// (docs/OBSERVABILITY.md, shard-label schema).
void register_fleet_metrics(obs::Registry& registry, const Fleet& fleet,
                            bool per_fiber = false);

}  // namespace wdm::sim
