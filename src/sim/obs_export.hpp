// Bridge from the simulation's metric accumulators to the obs exporters.
//
// Kept out of sim/metrics.hpp so the collector itself stays free of any
// exporter dependency: the slot loop records into MetricsCollector as
// before, and a caller that wants a Prometheus snapshot builds a Registry
// at export time (snapshotting is O(counters), nowhere near the hot path).
#pragma once

#include "obs/registry.hpp"
#include "sim/metrics.hpp"

namespace wdm::sim {

/// Registers every MetricsCollector counter — one series per SlotStats
/// counter the collector accumulates, plus the derived ratios — under the
/// `wdm_` prefix. Call once per snapshot on a fresh or reused Registry.
void register_metrics(obs::Registry& registry,
                      const MetricsCollector& metrics);

}  // namespace wdm::sim
