// Admission control: the first rung of the overload ladder.
//
// An interconnect driven past saturation must not melt down in the scheduler
// — it should refuse work early, predictably, and observably. This module
// implements the refusal: per-input-fiber token buckets meter how many fresh
// requests each fiber may inject per slot, and requests that arrive out of
// tokens wait in a bounded ingress queue partitioned by QoS class instead of
// competing for the fabric. When the queue is full the configured drop
// policy decides who is shed: the newcomer (tail drop) or the newest request
// of the worst queued class (priority-aware shedding).
//
// Accounting contract (enforced by MetricsCollector's conservation law):
// every offered request ends exactly one of granted / rejected / deferred,
// and every queued request is later released (drained into scheduling or
// evicted by the shed policy) exactly once:
//
//   granted + rejected + deferred_faulted + deferred_overload
//       == arrivals + retry_attempts + ingress_releases
//
// Shed drops count as `rejected` with the `shed_overload` subset flag —
// deliberate policy drops, disjoint from malformed and faulted rejections.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "core/distributed.hpp"
#include "obs/telemetry.hpp"
#include "sim/metrics.hpp"
#include "util/snapshot.hpp"

namespace wdm::sim {

/// Who is dropped when a request arrives out of tokens and the ingress
/// queue is full.
enum class DropPolicy : std::uint8_t {
  kTailDrop,      ///< shed the arriving request
  kPriorityShed,  ///< evict the newest queued request of a strictly worse
                  ///< class to make room; shed the arrival if none is worse
};

struct AdmissionConfig {
  bool enabled = false;
  /// Token-bucket refill per input fiber per slot (fresh requests a fiber
  /// may inject per slot, sustained). Fractional rates accumulate.
  double tokens_per_slot = 1.0;
  /// Bucket depth: the largest burst one fiber may inject at once.
  double bucket_depth = 4.0;
  /// Total ingress-queue bound across all QoS classes; 0 queues nothing
  /// (out-of-tokens requests are shed immediately).
  std::size_t queue_capacity = 64;
  DropPolicy drop_policy = DropPolicy::kTailDrop;
};

/// Token buckets + bounded per-class ingress queues for one interconnect.
/// The caller owns the slot loop: begin_slot() refills, drain() releases
/// queued requests that have tokens again, offer() meters fresh arrivals.
class AdmissionControl {
 public:
  AdmissionControl(std::int32_t n_fibers, AdmissionConfig config);

  const AdmissionConfig& config() const noexcept { return config_; }

  /// Refills every fiber's token bucket (call once at the start of a slot,
  /// before drain/offer).
  void begin_slot();

  /// Releases queued requests whose input fiber has a token again into
  /// `out`, consuming one token each — strict class order, FIFO within a
  /// class; entries whose fiber is still dry stay queued in order. Each
  /// release counts in `stats.ingress_releases`.
  void drain(std::vector<core::SlotRequest>& out, SlotStats& stats);

  enum class Verdict : std::uint8_t {
    kAdmit,   ///< token consumed; schedule the request this slot
    kQueued,  ///< parked in the ingress queue (deferred_overload)
    kShed,    ///< dropped (rejected + shed_overload)
  };

  /// Admission decision for one fresh, already-validated arrival. Queue,
  /// shed, and eviction accounting is recorded on `stats`; an admitted
  /// request is the caller's to schedule (and count granted/rejected).
  Verdict offer(const core::SlotRequest& request, SlotStats& stats);

  /// Requests currently parked across all class queues.
  std::size_t queued() const noexcept { return queued_; }

  /// Attaches (or detaches) a trace recorder: offer() records queue and shed
  /// decisions as instants at kFull detail. Observer only — the trace slot
  /// counter below is deliberately not serialized.
  void set_telemetry(obs::TraceRecorder* recorder) noexcept {
    telemetry_ = recorder;
  }

  void save_state(util::SnapshotWriter& w) const;
  void restore_state(util::SnapshotReader& r);

 private:
  std::deque<core::SlotRequest>& class_queue(std::int32_t priority);
  void record_admission(obs::EventKind kind, const core::SlotRequest& request,
                        bool evicted);

  AdmissionConfig config_;
  std::vector<double> tokens_;  // per input fiber
  std::vector<std::deque<core::SlotRequest>> queues_;  // per QoS class
  std::size_t queued_ = 0;
  // Scratch for drain()'s stable partition; capacity persists.
  std::vector<core::SlotRequest> keep_;
  obs::TraceRecorder* telemetry_ = nullptr;
  std::uint64_t trace_slot_ = 0;  // bumped in begin_slot; trace labels only
};

}  // namespace wdm::sim
