// Admission control: the first rung of the overload ladder.
//
// An interconnect driven past saturation must not melt down in the scheduler
// — it should refuse work early, predictably, and observably. This module
// implements the refusal: per-input-fiber token buckets meter how many fresh
// requests each fiber may inject per slot, and requests that arrive out of
// tokens wait in a bounded ingress queue partitioned by QoS class instead of
// competing for the fabric. When the queue is full the configured drop
// policy decides who is shed: the newcomer (tail drop) or the newest request
// of the worst queued class (priority-aware shedding).
//
// Accounting contract (enforced by MetricsCollector's conservation law):
// every offered request ends exactly one of granted / rejected / deferred,
// and every queued request is later released (drained into scheduling or
// evicted by the shed policy) exactly once:
//
//   granted + rejected + deferred_faulted + deferred_overload
//       == arrivals + retry_attempts + ingress_releases
//
// Shed drops count as `rejected` with the `shed_overload` subset flag —
// deliberate policy drops, disjoint from malformed and faulted rejections.
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "core/distributed.hpp"
#include "obs/telemetry.hpp"
#include "sim/metrics.hpp"
#include "util/snapshot.hpp"

namespace wdm::sim {

/// Who is dropped when a request arrives out of tokens and the ingress
/// queue is full.
enum class DropPolicy : std::uint8_t {
  kTailDrop,      ///< shed the arriving request
  kPriorityShed,  ///< evict the newest queued request of a strictly worse
                  ///< class to make room; shed the arrival if none is worse
};

/// Closed-loop token-rate adaptation (docs/ALGORITHMS.md §11). When enabled,
/// each input fiber carries a fixed-size controller block — an EWMA estimate
/// of its granted rate, its sampled ingress backlog, and two hysteresis hold
/// counters — and its bucket refill follows
///
///     target_f = clamp((ewma_f + backlog_f / update_every) * headroom,
///                      min_tokens_per_slot, max_tokens_per_slot)
///
/// recomputed every `update_every` slots, applied only after `hold_ticks`
/// consecutive ticks outside the deadband. Entirely slot-count-driven (no
/// wall clock), serialized in checkpoints, and WDM_CHECK-bounded: the
/// applied rate can never leave [min, max].
struct AdaptiveAdmissionConfig {
  bool enabled = false;
  /// Rate floor: an idle fiber keeps at least this trickle, so it can ramp
  /// back up (grants feed the estimate, and a zero rate would grant nothing).
  double min_tokens_per_slot = 0.25;
  /// Rate ceiling, the safety clamp against controller runaway.
  double max_tokens_per_slot = 16.0;
  /// EWMA weight of the newest slot's grant count (0 < alpha <= 1).
  double alpha = 0.125;
  /// Rate target as a multiple of the grant estimate: > 1 leaves room to
  /// probe above the observed rate, so the estimate can grow under rising
  /// offered load instead of self-limiting.
  double headroom = 1.25;
  /// Slots between controller ticks (rate recomputations).
  std::int32_t update_every = 16;
  /// Consecutive out-of-deadband ticks before the rate actually moves.
  std::int32_t hold_ticks = 2;
  /// |target - rate| below this is noise: holds reset instead of building.
  double deadband = 0.125;
};

struct AdmissionConfig {
  bool enabled = false;
  /// Token-bucket refill per input fiber per slot (fresh requests a fiber
  /// may inject per slot, sustained). Fractional rates accumulate. With the
  /// adaptive controller on this is only the initial rate (clamped into
  /// [adaptive.min, adaptive.max]).
  double tokens_per_slot = 1.0;
  /// Bucket depth: the largest burst one fiber may inject at once.
  double bucket_depth = 4.0;
  /// Total ingress-queue bound across all QoS classes; 0 queues nothing
  /// (out-of-tokens requests are shed immediately).
  std::size_t queue_capacity = 64;
  DropPolicy drop_policy = DropPolicy::kTailDrop;
  AdaptiveAdmissionConfig adaptive;
};

/// Token buckets + bounded per-class ingress queues for one interconnect.
/// The caller owns the slot loop: begin_slot() refills, drain() releases
/// queued requests that have tokens again, offer() meters fresh arrivals.
class AdmissionControl {
 public:
  AdmissionControl(std::int32_t n_fibers, AdmissionConfig config);

  const AdmissionConfig& config() const noexcept { return config_; }

  /// Refills every fiber's token bucket (call once at the start of a slot,
  /// before drain/offer).
  void begin_slot();

  /// Releases queued requests whose input fiber has a token again into
  /// `out`, consuming one token each — strict class order, FIFO within a
  /// class; entries whose fiber is still dry stay queued in order. Each
  /// release counts in `stats.ingress_releases`.
  void drain(std::vector<core::SlotRequest>& out, SlotStats& stats);

  enum class Verdict : std::uint8_t {
    kAdmit,   ///< token consumed; schedule the request this slot
    kQueued,  ///< parked in the ingress queue (deferred_overload)
    kShed,    ///< dropped (rejected + shed_overload)
  };

  /// Admission decision for one fresh, already-validated arrival. Queue,
  /// shed, and eviction accounting is recorded on `stats`; an admitted
  /// request is the caller's to schedule (and count granted/rejected).
  Verdict offer(const core::SlotRequest& request, SlotStats& stats);

  /// Closed-loop feedback, called once at the end of every slot with the
  /// slot's grants per *input* fiber (what the buckets meter). Updates each
  /// fiber's EWMA grant estimate every slot and, every
  /// `adaptive.update_every` slots, re-derives its token rate (see
  /// AdaptiveAdmissionConfig). No-op unless the adaptive controller is
  /// enabled. Slot-count-driven: the controller's tick counter is part of
  /// the checkpointed state, never the wall clock.
  void observe_slot(std::span<const std::uint64_t> grants_per_input_fiber);

  /// Requests currently parked across all class queues.
  std::size_t queued() const noexcept { return queued_; }
  /// Parked requests destined to one output fiber (the degradation charge
  /// order weights by this — deepest backlog charged first).
  std::uint32_t queued_for_output(std::int32_t output_fiber) const {
    return queued_per_output_[static_cast<std::size_t>(output_fiber)];
  }
  /// Parked requests from one input fiber (controller backlog term).
  std::uint32_t queued_for_input(std::int32_t input_fiber) const {
    return queued_per_input_[static_cast<std::size_t>(input_fiber)];
  }
  /// The token rate currently applied to one input fiber's bucket (the
  /// static config rate unless the adaptive controller has moved it).
  double token_rate(std::int32_t input_fiber) const;
  /// The controller's EWMA grant-per-slot estimate for one input fiber
  /// (0 when the adaptive controller is disabled).
  double grant_estimate(std::int32_t input_fiber) const;

  /// Attaches (or detaches) a trace recorder: offer() records queue and shed
  /// decisions as instants at kFull detail. Observer only — the trace slot
  /// counter below is deliberately not serialized.
  void set_telemetry(obs::TraceRecorder* recorder) noexcept {
    telemetry_ = recorder;
  }

  void save_state(util::SnapshotWriter& w) const;
  void restore_state(util::SnapshotReader& r);

 private:
  /// Per-input-fiber controller block (fixed-size, `eeft_sched`-style): the
  /// complete adaptive state of one fiber, serialized as-is in checkpoints.
  struct FiberController {
    double grant_ewma = 0.0;        ///< EWMA grants/slot estimate
    double rate = 0.0;              ///< tokens/slot currently applied
    std::uint32_t queue_depth = 0;  ///< ingress backlog at the last tick
    std::int32_t raise_hold = 0;    ///< consecutive above-deadband ticks
    std::int32_t lower_hold = 0;    ///< consecutive below-deadband ticks
  };

  std::deque<core::SlotRequest>& class_queue(std::int32_t priority);
  void record_admission(obs::EventKind kind, const core::SlotRequest& request,
                        bool evicted);
  void record_rate_update(std::int32_t fiber, const FiberController& ctrl);
  /// One controller tick for one fiber: derive the clamped target rate and
  /// move `rate` if the hysteresis holds agree.
  void controller_tick(std::int32_t fiber, FiberController& ctrl);
  void note_queued(const core::SlotRequest& request, std::int32_t delta);
  double clamp_rate(double rate) const noexcept;

  AdmissionConfig config_;
  std::vector<double> tokens_;  // per input fiber
  std::vector<std::deque<core::SlotRequest>> queues_;  // per QoS class
  std::size_t queued_ = 0;
  // Ingress backlog indexed both ways, maintained on every queue push / pop /
  // eviction: per input fiber for the controller's backlog term, per output
  // fiber for the degradation charge order. Rebuilt from the queues on
  // restore (derived, but O(queued) to recompute per slot otherwise).
  std::vector<std::uint32_t> queued_per_input_;
  std::vector<std::uint32_t> queued_per_output_;
  // Adaptive controller state: one block per input fiber plus the tick
  // counter that drives update cadence. Both checkpointed (empty when the
  // controller is disabled).
  std::vector<FiberController> controllers_;
  std::uint64_t ctrl_slots_ = 0;
  // Scratch for drain()'s stable partition; capacity persists.
  std::vector<core::SlotRequest> keep_;
  obs::TraceRecorder* telemetry_ = nullptr;
  std::uint64_t trace_slot_ = 0;  // bumped in begin_slot; trace labels only
};

}  // namespace wdm::sim
