// Versioned binary snapshots for deterministic checkpoint/replay.
//
// A snapshot is a little-endian byte stream framed as
//
//     magic "WDMSNAP1" | version u32 | payload size u64 | FNV-1a64 digest |
//     payload bytes
//
// written by SnapshotWriter and consumed by SnapshotReader. The digest is
// over the payload, so a truncated or bit-flipped checkpoint is rejected at
// load time instead of silently restoring corrupt scheduler state. The same
// payload bytes double as the state fingerprint: fnv1a64 over them is the
// digest that checkpoint/replay tests compare bit-for-bit.
//
// Encoding is deliberately dumb: fixed-width integers written byte by byte
// (endianness-independent), vectors as u64 length + elements. Every consumer
// bumps kSnapshotVersion when its layout changes; readers reject unknown
// versions rather than guessing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace wdm::util {

/// Bump when any serialised layout changes; readers reject other versions.
/// v3: the interconnect payload became sectioned (delta-checkpoint support),
/// occupancy counters are stored as absolute expiry slots, the v2 wall-clock-
/// deadline flag is gone (deadline downgrades replay as sim::Trace events),
/// and the admission section carries the adaptive-controller blocks.
inline constexpr std::uint32_t kSnapshotVersion = 3;

/// FNV-1a 64-bit over a byte range (the snapshot digest primitive).
std::uint64_t fnv1a64(std::span<const std::uint8_t> bytes) noexcept;

/// Accumulates a snapshot payload in memory; frame + payload are written out
/// in one piece by write_to so a crash mid-save never leaves a half-frame.
class SnapshotWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v);
  void i64(std::int64_t v);
  void f64(double v);
  void bytes(std::span<const std::uint8_t> v);

  void vec_u8(const std::vector<std::uint8_t>& v);
  void vec_i32(const std::vector<std::int32_t>& v);
  void vec_u64(const std::vector<std::uint64_t>& v);
  void vec_f64(const std::vector<double>& v);

  /// FNV-1a64 of the payload accumulated so far.
  std::uint64_t digest() const noexcept;
  std::size_t size() const noexcept { return payload_.size(); }

  /// The raw payload bytes accumulated so far (the delta-checkpoint layer
  /// slices state into per-section byte vectors through this).
  const std::vector<std::uint8_t>& payload() const noexcept { return payload_; }

  /// Writes magic + version + size + digest + payload. Throws on stream
  /// failure (a checkpoint the caller cannot trust must not look saved).
  void write_to(std::ostream& os) const;

 private:
  std::vector<std::uint8_t> payload_;
};

/// Parses one snapshot frame up front (magic, version, digest check), then
/// hands out typed reads. Truncation or type-length mismatch throws.
class SnapshotReader {
 public:
  /// Reads and verifies the whole frame from `is`.
  explicit SnapshotReader(std::istream& is);

  /// Wraps already-framed-and-verified payload bytes (no magic / version /
  /// digest header) — the recovery path reconstructs a full payload from a
  /// delta chain in memory and re-reads it through the same typed API.
  static SnapshotReader from_payload(std::vector<std::uint8_t> payload);

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32();
  std::int64_t i64();
  double f64();

  std::vector<std::uint8_t> vec_u8();
  std::vector<std::int32_t> vec_i32();
  std::vector<std::uint64_t> vec_u64();
  std::vector<double> vec_f64();

  /// Reads exactly `n` raw payload bytes (no length prefix) — the delta-
  /// checkpoint patch records are fixed-size and self-describing.
  std::vector<std::uint8_t> raw(std::uint64_t n);

  /// True when every payload byte has been consumed.
  bool exhausted() const noexcept { return cursor_ == payload_.size(); }
  /// Digest of the verified payload (equals the writer's digest()).
  std::uint64_t digest() const noexcept { return digest_; }

 private:
  SnapshotReader() = default;

  void need(std::uint64_t n) const;
  /// Bounds-checks a vector prefix: `count` elements of `elem_size` bytes
  /// must fit in the remaining payload. Division-based, so a hostile length
  /// can neither overflow the check nor size an allocation.
  void need_elems(std::uint64_t count, std::size_t elem_size) const;

  std::vector<std::uint8_t> payload_;
  std::size_t cursor_ = 0;
  std::uint64_t digest_ = 0;
};

}  // namespace wdm::util
